// Command benchjson measures the serving stack's performance envelope —
// ingest throughput, per-method inference epoch latency, assignment
// QPS — and writes it as a schema'd JSON report (BENCH_<n>.json) that is
// checked into the repo root as one point on the performance trajectory.
//
// Usage:
//
//	benchjson [-out BENCH_9.json] [-scale 0.1] [-seed 1] [-repeats 5]
//	          [-baseline BENCH_9.json] [-max-regress 0.20]
//	          [-http-duration 2s] [-min-http-speedup 5]
//	          [-query-duration 2s] [-telemetry-duration 2s]
//	          [-max-telemetry-overhead 0.03] [-validate file.json]
//
// With -validate, no measurement runs: the named report is checked
// against the schema and the process exits (this is the cheap CI step).
//
// With -baseline, after measuring, the fresh report's normalized epoch
// latencies are gated against the baseline file: any method whose
// normalized latency grew by more than -max-regress fails the run. The
// comparison uses calibration-normalized values, so a slower CI runner
// does not read as a regression.
//
// The report also records the HTTP serving-path pair — single-answer
// JSON vs batched binary ingest, answers/sec each, driven by
// internal/loadgen against an in-process server. -min-http-speedup
// fails the run unless the batched path sustains at least that multiple
// of the single-answer path (0 disables; -http-duration 0 skips the
// measurement entirely).
//
// The query section drives the three canned relational views
// (disagreement, worker-quality-drop, spend-vs-budget) round-robin
// against an in-process service and records queries/sec and rows/sec
// (-query-duration 0 skips it).
//
// The telemetry section measures instrumentation overhead: batched
// ingest with the full telemetry plane (registry, stream metrics,
// request-ID middleware) vs without. -max-telemetry-overhead fails the
// run if the instruments cost more than that throughput fraction
// (-telemetry-duration 0 skips the measurement).
//
// To regenerate the checked-in baseline on a quiet machine:
//
//	go run ./cmd/benchjson -out BENCH_9.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"truthinference/internal/benchjson"
	"truthinference/internal/buildinfo"
)

func main() {
	var (
		out          = flag.String("out", "BENCH_9.json", "report file to write")
		scale        = flag.Float64("scale", 0.1, "dataset scale in (0, 1] (1 = the paper's full sizes)")
		seed         = flag.Int64("seed", 1, "dataset generation seed")
		repeats      = flag.Int("repeats", 5, "timing repetitions per measurement (minimum wins)")
		baseline     = flag.String("baseline", "", "baseline report to gate against (empty = no gate)")
		maxRegress   = flag.Float64("max-regress", 0.20, "max allowed normalized epoch-latency growth vs baseline (0.20 = +20%)")
		httpDur      = flag.Duration("http-duration", 2*time.Second, "per-mode window for the HTTP single-vs-batched ingest measurement (0 = skip)")
		minHTTPSpeed = flag.Float64("min-http-speedup", 5, "fail unless batched HTTP ingest sustains this multiple of the single-answer path (0 = no gate)")
		queryDur     = flag.Duration("query-duration", 2*time.Second, "window for the canned-view query measurement (0 = skip)")
		telemetryDur = flag.Duration("telemetry-duration", 2*time.Second, "per-mode window for the instrumented-vs-uninstrumented ingest measurement (0 = skip)")
		maxOverhead  = flag.Float64("max-telemetry-overhead", 0.03, "fail if telemetry costs more than this fraction of batched ingest throughput (0 = no gate)")
		validate     = flag.String("validate", "", "validate this report file and exit (no measurement)")
	)
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("benchjson"))
		return
	}
	fmt.Fprintln(os.Stderr, buildinfo.String("benchjson"))

	if err := run(*out, *scale, *seed, *repeats, *baseline, *maxRegress, *httpDur, *minHTTPSpeed, *queryDur, *telemetryDur, *maxOverhead, *validate); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, scale float64, seed int64, repeats int, baseline string, maxRegress float64, httpDur time.Duration, minHTTPSpeed float64, queryDur, telemetryDur time.Duration, maxOverhead float64, validate string) error {
	if validate != "" {
		r, err := benchjson.Load(validate)
		if err != nil {
			return err
		}
		fmt.Printf("%s: schema v%d, %d epoch-latency entries, valid\n",
			validate, r.SchemaVersion, len(r.EpochLatency))
		return nil
	}
	if !(scale > 0 && scale <= 1) {
		return fmt.Errorf("-scale %v out of range: want 0 < scale <= 1", scale)
	}
	if repeats < 1 {
		return fmt.Errorf("-repeats %d out of range: want >= 1", repeats)
	}
	if !(maxRegress >= 0) {
		return fmt.Errorf("-max-regress %v out of range: want >= 0", maxRegress)
	}

	benchID := strings.TrimSuffix(filepath.Base(out), ".json")
	r, err := benchjson.Measure(benchID, scale, seed, repeats)
	if err != nil {
		return err
	}
	if httpDur > 0 {
		h, err := benchjson.MeasureHTTPIngest(r.CalibrationNs, seed, httpDur)
		if err != nil {
			return fmt.Errorf("http ingest: %w", err)
		}
		r.HTTPIngest = h
	}
	if queryDur > 0 {
		q, err := benchjson.MeasureQuery(r.CalibrationNs, seed, scale, queryDur)
		if err != nil {
			return fmt.Errorf("query views: %w", err)
		}
		r.Query = q
	}
	if telemetryDur > 0 {
		tel, err := benchjson.MeasureTelemetry(r.CalibrationNs, seed, telemetryDur)
		if err != nil {
			return fmt.Errorf("telemetry overhead: %w", err)
		}
		r.Telemetry = tel
	}
	if err := benchjson.Validate(r); err != nil {
		return fmt.Errorf("fresh report failed validation: %w", err)
	}

	fmt.Printf("calibration %.0f ns; ingest %.0f answers/s; assign %.0f QPS\n",
		r.CalibrationNs, r.Ingest.OpsPerSec, r.Assign.OpsPerSec)
	for _, e := range r.EpochLatency {
		fmt.Printf("  %-6s %-22s %12.0f ns/epoch  (normalized %.4f)\n",
			e.Method, e.Dataset, e.NsPerEpoch, e.Normalized)
	}
	if h := r.HTTPIngest; h != nil {
		fmt.Printf("http ingest: single %.0f answers/s, batched %.0f answers/s (%.1fx)\n",
			h.SingleAnswersPerSec, h.BatchAnswersPerSec, h.Speedup)
		if minHTTPSpeed > 0 && h.Speedup < minHTTPSpeed {
			return fmt.Errorf("batched HTTP ingest speedup %.1fx below the required %.1fx floor", h.Speedup, minHTTPSpeed)
		}
	}
	if q := r.Query; q != nil {
		fmt.Printf("query views: %.0f queries/s, %.0f rows/s over %d answers\n",
			q.QueriesPerSec, q.RowsPerSec, q.Answers)
	}
	if tel := r.Telemetry; tel != nil {
		fmt.Printf("telemetry: uninstrumented %.0f answers/s, instrumented %.0f answers/s (overhead %.1f%%)\n",
			tel.UninstrumentedAnswersPerSec, tel.InstrumentedAnswersPerSec, tel.OverheadFrac*100)
		if maxOverhead > 0 && tel.OverheadFrac > maxOverhead {
			return fmt.Errorf("telemetry overhead %.1f%% exceeds the %.1f%% budget",
				tel.OverheadFrac*100, maxOverhead*100)
		}
	}

	if baseline != "" {
		base, err := benchjson.Load(baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if err := benchjson.Compare(base, r, maxRegress); err != nil {
			return err
		}
		fmt.Printf("epoch latencies within +%.0f%% of %s\n", maxRegress*100, baseline)
	}

	if err := r.Write(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
