// Command loadgen drives mixed single-answer JSON and batched binary
// ingest traffic against a running truthserve and reports what the
// server sustained. It is the CI smoke driver for the batched ingest
// path: -require-min-rate fails the run if the accepted answers/sec
// floor is not met, and -require-backpressure fails it if the server
// never shed load with 429 + Retry-After (i.e. backpressure never
// engaged under the offered overload).
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 [-project default]
//	        [-workers 4] [-duration 5s] [-single-ratio 0]
//	        [-batch 500] [-frames 4] [-tasks 2000] [-task-workers 200]
//	        [-seed 1] [-honor-retry-after] [-json]
//	        [-require-min-rate 0] [-require-backpressure]
//	        [-version]
//
// Exit status: 0 on success, 1 when a -require-* gate fails or the
// run itself errored, 2 on bad flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"truthinference/internal/buildinfo"
	"truthinference/internal/loadgen"
)

func main() {
	var cfg loadgen.Config
	var jsonOut, requireBackpressure, version bool
	var requireMinRate float64
	flag.StringVar(&cfg.BaseURL, "url", "http://127.0.0.1:8080", "truthserve base URL")
	flag.StringVar(&cfg.Project, "project", "default", "project id (empty = legacy unprefixed routes)")
	flag.IntVar(&cfg.Workers, "workers", 4, "concurrent client goroutines")
	flag.DurationVar(&cfg.Duration, "duration", 5*time.Second, "how long to drive traffic")
	flag.Float64Var(&cfg.SingleRatio, "single-ratio", 0, "fraction of requests sent as single-answer JSON POSTs (0 = all batched)")
	flag.IntVar(&cfg.BatchSize, "batch", 500, "answers per frame on the batched path")
	flag.IntVar(&cfg.FramesPerRequest, "frames", 4, "frames per batched request")
	flag.IntVar(&cfg.NumTasks, "tasks", 2000, "generated task id space")
	flag.IntVar(&cfg.NumWorkers, "task-workers", 200, "generated worker id space")
	flag.Int64Var(&cfg.Seed, "seed", 1, "traffic seed")
	flag.BoolVar(&cfg.HonorRetryAfter, "honor-retry-after", false, "sleep out the server's Retry-After after each 429 instead of hammering")
	flag.BoolVar(&jsonOut, "json", false, "emit the result as JSON on stdout")
	flag.Float64Var(&requireMinRate, "require-min-rate", 0, "exit 1 unless accepted answers/sec reaches this floor (0 = no gate)")
	flag.BoolVar(&requireBackpressure, "require-backpressure", false, "exit 1 unless the server shed at least one request with 429")
	flag.BoolVar(&version, "version", false, "print build info and exit")
	flag.Parse()
	if version {
		fmt.Println(buildinfo.String("loadgen"))
		return
	}

	res, err := cfg.Run(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	} else {
		fmt.Printf("loadgen: %.1fs  requests=%d (single=%d batch=%d)  accepted=%d answers (%.0f/s)  shed=%d (%d answers)  errors=%d\n",
			res.Elapsed.Seconds(), res.Requests, res.SingleRequests, res.BatchRequests,
			res.AnswersAccepted, res.AnswersPerSec, res.Shed, res.AnswersShed, res.Errors)
		if res.LastVersion > 0 {
			fmt.Printf("loadgen: server version %d, durable through %d\n", res.LastVersion, res.LastDurable)
		}
		if s := res.SingleLatency; s != nil {
			fmt.Printf("loadgen: single latency  n=%d  p50=%.2fms p95=%.2fms p99=%.2fms\n", s.Count, s.P50Ms, s.P95Ms, s.P99Ms)
		}
		if b := res.BatchLatency; b != nil {
			fmt.Printf("loadgen: batch latency   n=%d  p50=%.2fms p95=%.2fms p99=%.2fms\n", b.Count, b.P50Ms, b.P95Ms, b.P99Ms)
		}
	}

	failed := false
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d request errors (first: %s)\n", res.Errors, res.FirstError)
		failed = true
	}
	if res.RetryAfterMissing > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d of %d 429 responses lacked a Retry-After header\n", res.RetryAfterMissing, res.Shed)
		failed = true
	}
	if requireMinRate > 0 && res.AnswersPerSec < requireMinRate {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: sustained %.0f answers/s, below the required floor %.0f\n", res.AnswersPerSec, requireMinRate)
		failed = true
	}
	if requireBackpressure && res.Shed == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL: backpressure never engaged (no 429 observed under the offered load)")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
