// Command truthinfer runs one truth-inference method on a dataset stored
// in the repository's TSV format and reports the inferred truth, worker
// qualities and (when ground truth is available) the §6.1.2 metrics.
//
// Usage:
//
//	truthinfer -method D&S -data path/to/base [-seed 1] [-maxiter 0]
//	           [-out inferred.tsv] [-golden 0.1] [-qualification]
//	           [-parallelism 0]
//
// -parallelism fans the method's EM hot loops out over that many
// goroutines (0 = all CPUs, 1 = sequential); the inferred result is
// bit-identical at every parallelism level.
//
// -data expects the base path of a <base>.answers.tsv / <base>.truth.tsv
// pair (see cmd/datagen to produce the five benchmark datasets).
// -golden p hides a random fraction p of the known truths as golden tasks
// (hidden test); -qualification initializes worker qualities from a
// simulated qualification test (§6.3.2).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	ti "truthinference"
	"truthinference/internal/buildinfo"
	"truthinference/internal/experiment"
	"truthinference/internal/randx"
)

func main() {
	var (
		method        = flag.String("method", "MV", "method name (see -list)")
		data          = flag.String("data", "", "dataset base path (expects <base>.answers.tsv)")
		seed          = flag.Int64("seed", 1, "random seed")
		maxIter       = flag.Int("maxiter", 0, "iteration cap (0 = method default)")
		out           = flag.String("out", "", "optional path for the inferred truth TSV")
		goldenFrac    = flag.Float64("golden", 0, "fraction of known truths to feed back as golden tasks")
		qualification = flag.Bool("qualification", false, "initialize worker qualities from a simulated qualification test")
		parallelism   = flag.Int("parallelism", 0, "worker goroutines for the EM hot loops (0 = all CPUs, 1 = sequential)")
		list          = flag.Bool("list", false, "list available methods and exit")
	)
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("truthinfer"))
		return
	}
	fmt.Fprintln(os.Stderr, buildinfo.String("truthinfer"))

	if *list {
		for _, m := range ti.NewRegistry() {
			caps := m.Capabilities()
			fmt.Printf("%-8s task-types=%v worker-model=%q technique=%q golden=%v qualification=%v\n",
				m.Name(), caps.TaskTypes, caps.WorkerModel, caps.Technique, caps.Golden, caps.Qualification)
		}
		return
	}
	// Resolve the method before any dataset work, so a typo fails fast
	// with the full registered-method list instead of a bare error after
	// an expensive load.
	m, err := ti.GetMethod(*method)
	if err != nil {
		fatal("%v", err)
	}
	if *data == "" {
		fatal("missing -data (base path of <base>.answers.tsv)")
	}
	d, err := ti.LoadDataset(*data)
	if err != nil {
		fatal("load dataset: %v", err)
	}
	par := *parallelism
	if par == 0 {
		par = ti.AutoParallelism
	}
	opts := ti.Options{Seed: *seed, MaxIterations: *maxIter, Parallelism: par}
	evalTruth := d.Truth
	if *goldenFrac > 0 {
		golden, eval := d.SplitGolden(*goldenFrac, randx.New(*seed))
		opts.Golden = golden
		evalTruth = eval
		fmt.Printf("hidden test: %d golden tasks, evaluating on %d\n", len(golden), len(eval))
	}
	if *qualification {
		acc, mse := experiment.QualificationVectors(d, *seed)
		opts.QualificationAccuracy = acc
		opts.QualificationError = mse
	}

	res, err := m.Infer(d, opts)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("dataset %s: %d tasks, %d workers, %d answers (redundancy %.1f)\n",
		d.Name, d.NumTasks, d.NumWorkers, len(d.Answers), d.Redundancy())
	fmt.Printf("method %s: %d iterations, converged=%v\n", *method, res.Iterations, res.Converged)
	if len(evalTruth) > 0 {
		if d.Categorical() {
			fmt.Printf("Accuracy = %.2f%%  F1 = %.2f%%\n",
				100*ti.Accuracy(res.Truth, evalTruth), 100*ti.F1(res.Truth, evalTruth))
		} else {
			fmt.Printf("MAE = %.3f  RMSE = %.3f\n",
				ti.MAE(res.Truth, evalTruth), ti.RMSE(res.Truth, evalTruth))
		}
	}

	// Top and bottom workers by estimated quality.
	type wq struct {
		w int
		q float64
	}
	qs := make([]wq, d.NumWorkers)
	for w, q := range res.WorkerQuality {
		qs[w] = wq{w, q}
	}
	sort.Slice(qs, func(i, j int) bool { return qs[i].q > qs[j].q })
	show := 5
	if show > len(qs) {
		show = len(qs)
	}
	fmt.Println("top workers by estimated quality:")
	for _, x := range qs[:show] {
		fmt.Printf("  worker %4d  quality %8.4f  answers %d\n", x.w, x.q, len(d.WorkerAnswers(x.w)))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create %s: %v", *out, err)
		}
		defer f.Close()
		for i, v := range res.Truth {
			if d.Categorical() {
				fmt.Fprintf(f, "%d\t%d\n", i, int(v))
			} else {
				fmt.Fprintf(f, "%d\t%g\n", i, v)
			}
		}
		fmt.Printf("wrote inferred truth for %d tasks to %s\n", len(res.Truth), *out)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "truthinfer: "+format+"\n", args...)
	os.Exit(1)
}
