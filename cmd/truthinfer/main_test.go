package main

import (
	"strings"
	"testing"

	ti "truthinference"
)

func TestGetMethodKnown(t *testing.T) {
	for _, name := range ti.MethodNames() {
		m, err := ti.GetMethod(name)
		if err != nil {
			t.Fatalf("GetMethod(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("GetMethod(%q).Name() = %q", name, m.Name())
		}
	}
}

func TestGetMethodUnknownListsRegistry(t *testing.T) {
	_, err := ti.GetMethod("NotAMethod")
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"NotAMethod"`) {
		t.Errorf("error does not name the offender: %s", msg)
	}
	// The error must enumerate the full registry so the fix for a typo is
	// in the message itself.
	for _, name := range ti.MethodNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list registered method %q: %s", name, msg)
		}
	}
}
