// Command truthserve is the online truth-inference daemon: a
// multi-tenant registry of crowdsourcing projects, each with its own
// mutable sharded answer store, its own method/seed/epoch configuration
// re-run warm-started as batches arrive, its own optional task-assignment
// ledger, and — with -wal-dir set — its own write-ahead-log namespace,
// recovered to a bit-identical store on the next start.
//
// Usage:
//
//	truthserve -method D&S [-addr :8080] [-type decision] [-choices 2]
//	           [-seed 1] [-maxiter 0] [-parallelism 0] [-shards 8]
//	           [-cold] [-auto-refresh=true] [-data path/to/base]
//	           [-wal-dir dir] [-snapshot-every 256]
//	           [-assign-policy uncertainty] [-budget 0] [-redundancy 3]
//	           [-lease-ttl 1m] [-golden-pass 0] [-golden-fails 0]
//	           [-min-quality 0] [-quality-drop 0] [-quality-min-answers 0]
//	           [-collusion-threshold 0] [-collusion-overlap 0]
//	           [-collusion-partners 0] [-down-weight-only]
//	           [-projects projects.json]
//	           [-ingest-rate 0] [-ingest-burst 0] [-max-answers 0]
//	           [-version]
//
// The per-project flags above configure the reserved *default* project,
// which serves the legacy unprefixed routes — a single-project
// deployment upgrades in place with no flag changes. Additional projects
// come from -projects (a JSON object mapping project id → config, the
// same shape the admin API accepts) and from the admin API at runtime;
// when durable they are recorded in <wal-dir>/projects.json and
// recovered on the next boot. Each project's config carries what the
// flags carry: method, task_type, choices, seed, max_iter, parallelism,
// shards, cold_start, no_auto_refresh, data, snapshot_every, and an
// optional assign block {policy, redundancy, budget, lease_ttl}.
//
// The API (see internal/stream, internal/assign and internal/tenant for
// the wire formats):
//
//	POST   /v1/admin/projects        create a project {"id":..,"config":{..}}
//	GET    /v1/admin/projects        list projects + per-tenant stats
//	GET    /v1/admin/projects/{id}   one project's stats
//	DELETE /v1/admin/projects/{id}   close + delete a project
//	*      /v1/projects/{id}/...     that project's API:
//	  POST ../ingest        append answers/tasks/workers/truths (JSON)
//	  POST ../ingest-batch  batched binary ingest (CRC-framed batch
//	                        stream; the ack reports accepted vs durable)
//	  POST ../refresh       run one inference epoch now
//	  POST ../query         relational reads: canned views or a σ/π/⋈/
//	                        aggregate plan AST over answers, posteriors,
//	                        worker quality and ledger state (internal/query)
//	  GET  ../truth/{task}, ../truths, ../worker/{id}, ../stats, ../healthz
//	  GET  ../assign, POST ../complete, GET ../assignstats  (with assign config)
//	*      /v1/...                   legacy routes → the default project
//	                                 (DEPRECATED: responses carry a
//	                                 Deprecation header; use
//	                                 /v1/projects/default/...)
//
// On SIGINT/SIGTERM the daemon drains gracefully: the HTTP listener
// stops accepting, in-flight requests finish, and every project drains
// concurrently — in-flight inference epochs finish, WALs are fsynced and
// compacted into final snapshots — before the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"truthinference/internal/assign"
	"truthinference/internal/buildinfo"
	"truthinference/internal/stream"
	"truthinference/internal/tenant"
)

// config is the parsed flag set; run is driven by it so tests can start
// the daemon without a process boundary.
type config struct {
	method        string
	taskType      string
	choices       int
	seed          int64
	maxIter       int
	parallelism   int
	shards        int
	cold          bool
	autoRefresh   bool
	data          string
	walDir        string
	snapshotEvery int
	assignPolicy  string
	budget        int
	redundancy    int
	leaseTTL      time.Duration
	// defense flags (the assignment ledger's adversarial-crowd
	// defenses; they require -assign-policy)
	goldenPass         int
	goldenFails        int
	minQuality         float64
	qualityDrop        float64
	qualityMinAnswers  int
	collusionThreshold float64
	collusionOverlap   int
	collusionPartners  int
	downWeightOnly     bool
	projectsFile       string
	ratePerSec         float64
	rateBurst          int
	maxAnswers         int
	debugAddr          string
	slowRequest        time.Duration
}

// defaultProject maps the legacy per-daemon flags onto the default
// project's config — the backward-compatibility bridge: old flag sets
// keep meaning exactly what they meant.
func (c config) defaultProject() tenant.Config {
	pc := tenant.Config{
		Method:        c.method,
		TaskType:      c.taskType,
		Choices:       c.choices,
		Seed:          c.seed,
		MaxIter:       c.maxIter,
		Parallelism:   c.parallelism,
		Shards:        c.shards,
		ColdStart:     c.cold,
		NoAutoRefresh: !c.autoRefresh,
		Data:          c.data,
		SnapshotEvery: c.snapshotEvery,
	}
	if pc.SnapshotEvery == 0 {
		pc.SnapshotEvery = -1 // flag 0 meant "only on shutdown"
	}
	if c.assignPolicy != "" {
		pc.Assign = &assign.Spec{
			Policy:     c.assignPolicy,
			Redundancy: c.redundancy,
			Budget:     c.budget,
			LeaseTTL:   assign.Duration(c.leaseTTL),
			// The -budget flag has always counted per daemon run
			// (operators pass the remaining budget on restart); only
			// config-defined projects get the charge-existing semantics,
			// because their manifest recovery leaves no place to pass a
			// remainder.
			NoChargeExisting: true,
			Defense:          c.defenseSpec(),
		}
	}
	if c.ratePerSec > 0 || c.maxAnswers > 0 {
		pc.Limits = &stream.Limits{
			RatePerSec: c.ratePerSec,
			Burst:      c.rateBurst,
			MaxAnswers: c.maxAnswers,
		}
	}
	return pc
}

// defenseSpec maps the defense flags onto the default project's
// DefenseSpec, or nil when no detector is armed.
func (c config) defenseSpec() *assign.DefenseSpec {
	spec := &assign.DefenseSpec{
		GoldenPass:          c.goldenPass,
		GoldenFails:         c.goldenFails,
		MinQuality:          c.minQuality,
		QualityDrop:         c.qualityDrop,
		QualityMinAnswers:   c.qualityMinAnswers,
		CollusionThreshold:  c.collusionThreshold,
		CollusionMinOverlap: c.collusionOverlap,
		CollusionPartners:   c.collusionPartners,
		DownWeightOnly:      c.downWeightOnly,
	}
	if !spec.Enabled() {
		return nil
	}
	return spec
}

func main() {
	var cfg config
	var addr string
	flag.StringVar(&addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.method, "method", "D&S", "default project's method (see truthinfer -list)")
	flag.StringVar(&cfg.taskType, "type", "decision", "default project's task type: decision, single-choice, numeric")
	flag.IntVar(&cfg.choices, "choices", 2, "number of choices for single-choice stores")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed (fixed per project so epochs are reproducible)")
	flag.IntVar(&cfg.maxIter, "maxiter", 0, "iteration cap per epoch (0 = method default)")
	flag.IntVar(&cfg.parallelism, "parallelism", 0, "worker goroutines for the EM hot loops (0 = all CPUs, 1 = sequential)")
	flag.IntVar(&cfg.shards, "shards", 0, "store shard count (0 = default; contention only, state is shard-count independent)")
	flag.BoolVar(&cfg.cold, "cold", false, "disable warm starts; re-run every epoch from cold initialization")
	flag.BoolVar(&cfg.autoRefresh, "auto-refresh", true, "re-infer in the background after every ingested batch")
	flag.StringVar(&cfg.data, "data", "", "optional dataset base path to preload (expects <base>.answers.tsv)")
	flag.StringVar(&cfg.walDir, "wal-dir", "", "root directory for per-project write-ahead logs + snapshots (empty = not durable)")
	flag.IntVar(&cfg.snapshotEvery, "snapshot-every", 256, "batches between compacted snapshots when -wal-dir is set (0 = only on shutdown)")
	flag.StringVar(&cfg.assignPolicy, "assign-policy", "", "enable the default project's assignment endpoints with this policy: random, least-answered, uncertainty (empty = disabled)")
	flag.IntVar(&cfg.budget, "budget", 0, "global answer budget for assignment, counted per daemon run (0 = unlimited; on restart pass the remaining budget)")
	flag.IntVar(&cfg.redundancy, "redundancy", assign.DefaultRedundancy, "per-task answer cap for assignment")
	flag.DurationVar(&cfg.leaseTTL, "lease-ttl", assign.DefaultLeaseTTL, "how long a worker holds an assignment before it is reclaimed")
	flag.IntVar(&cfg.goldenPass, "golden-pass", 0, "golden tasks a worker must answer correctly before earning real assignments (0 = gate off; needs -assign-policy and ingested golden truth)")
	flag.IntVar(&cfg.goldenFails, "golden-fails", 0, "wrong golden answers before a worker is banned (0 = default when the gate is on)")
	flag.Float64Var(&cfg.minQuality, "min-quality", 0, "ban workers whose estimated probability-correct stays below this floor (0 = off; needs -assign-policy)")
	flag.Float64Var(&cfg.qualityDrop, "quality-drop", 0, "ban workers whose estimated quality stays this far below its peak — the sleeper detector (0 = off; needs -assign-policy)")
	flag.IntVar(&cfg.qualityMinAnswers, "quality-min-answers", 0, "minimum delivered answers before the quality detectors judge a worker (0 = default)")
	flag.Float64Var(&cfg.collusionThreshold, "collusion-threshold", 0, "flag worker pairs whose wrong-agreement rate reaches this fraction (0 = off; needs -assign-policy)")
	flag.IntVar(&cfg.collusionOverlap, "collusion-overlap", 0, "minimum co-answered tasks before a pair can be flagged for collusion (0 = default)")
	flag.IntVar(&cfg.collusionPartners, "collusion-partners", 0, "distinct flagged partners that trigger the action on a worker (0 = default)")
	flag.BoolVar(&cfg.downWeightOnly, "down-weight-only", false, "quality/collusion detections down-weight workers instead of banning them (golden-gate failures always ban)")
	flag.StringVar(&cfg.projectsFile, "projects", "", "optional JSON file of additional projects to create at boot (id -> config)")
	flag.Float64Var(&cfg.ratePerSec, "ingest-rate", 0, "default project's sustained ingest admission rate in answers/sec (0 = unlimited); violations shed with 429 + Retry-After")
	flag.IntVar(&cfg.rateBurst, "ingest-burst", 0, "token-bucket burst capacity in answers for -ingest-rate (0 = one second's worth)")
	flag.IntVar(&cfg.maxAnswers, "max-answers", 0, "default project's lifetime answer quota (0 = unlimited)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "private listen address for net/http/pprof and a second /metrics mount (empty = disabled; keep off the public network)")
	flag.DurationVar(&cfg.slowRequest, "slow-request", time.Second, "log requests slower than this threshold (0 = disabled)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("truthserve"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("%v", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if err := run(ctx, cfg, ln, logger); err != nil {
		fatal("%v", err)
	}
}

// run starts the daemon on ln and blocks until ctx is cancelled (a
// signal in production, test cancellation in the regression suite) or
// the server fails. On cancellation it drains: HTTP shutdown, then every
// project concurrently (in-flight epoch, WAL fsync + final snapshot) —
// and returns nil.
func run(ctx context.Context, cfg config, ln net.Listener, logger *slog.Logger) error {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	logger.Info("starting", "build", buildinfo.String("truthserve"))

	// The default project's config is validated before anything else so a
	// typoed flag is immediately actionable.
	if cfg.assignPolicy == "" && cfg.defenseSpec() != nil {
		return errors.New("defense flags need -assign-policy: the defenses live in the assignment ledger")
	}
	defCfg := cfg.defaultProject()
	if err := defCfg.Validate(); err != nil {
		return err
	}
	// Boot-file projects are parsed and validated before the registry
	// opens any durable state, for the same fail-fast reason.
	var boot map[string]tenant.Config
	if cfg.projectsFile != "" {
		data, err := os.ReadFile(cfg.projectsFile)
		if err != nil {
			return err
		}
		if boot, err = tenant.DecodeProjects(data); err != nil {
			return err
		}
	}

	reg := tenant.NewRegistry(cfg.walDir, logger)
	reg.SlowRequest = cfg.slowRequest
	drained := false
	defer func() {
		if !drained {
			reg.Close()
		}
	}()
	if err := reg.Bootstrap(defCfg); err != nil {
		return err
	}
	// Manifest projects recover first (they carry the config a previous
	// run persisted), then the boot file fills in any that are new.
	if err := reg.Recover(); err != nil {
		return err
	}
	for id, pc := range boot {
		if _, ok := reg.Get(id); ok {
			logger.Warn("project already recovered from the manifest; boot-file entry ignored", "project", id)
			continue
		}
		if _, err := reg.Create(id, pc); err != nil {
			return fmt.Errorf("create project %q: %w", id, err)
		}
	}
	// Every namespace is recovered and every boot project exists: the
	// daemon is ready. /v1/readyz flips to 200 and truthserve_ready to 1.
	reg.SetReady()

	// The debug listener is a separate private mux: pprof profiles and a
	// second /metrics mount, never exposed on the serving address.
	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("GET /metrics", reg.Telemetry().Handler())
		debugSrv = &http.Server{Handler: dmux}
		go debugSrv.Serve(dln)
		logger.Info("debug listener up", "addr", dln.Addr().String())
	}

	srv := &http.Server{Handler: reg.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Info("serving", "projects", len(reg.List()), "addr", ln.Addr().String(), "durable", reg.Durable())

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish.
	logger.Info("signal received, draining")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logger.Warn("HTTP shutdown", "err", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("listener", "err", err)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	// Fan the drain out across every tenant: each finishes its in-flight
	// epoch, fsyncs its WAL and compacts a final snapshot.
	drained = true
	if err := reg.Close(); err != nil {
		return fmt.Errorf("drain projects: %w", err)
	}
	logger.Info("drained, exiting")
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "truthserve: "+format+"\n", args...)
	os.Exit(1)
}
