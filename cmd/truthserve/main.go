// Command truthserve is the online truth-inference daemon: it keeps a
// mutable answer store, re-runs the configured method warm-started from
// the previous posterior as batches arrive, and serves truths, worker
// qualities and statistics over an HTTP JSON API while inference runs in
// the background.
//
// Usage:
//
//	truthserve -method D&S [-addr :8080] [-type decision] [-choices 2]
//	           [-seed 1] [-maxiter 0] [-parallelism 0] [-cold]
//	           [-auto-refresh=true] [-data path/to/base]
//
// -type declares the task family of the live store (decision,
// single-choice with -choices ℓ, or numeric); -data instead preloads a
// <base>.answers.tsv / <base>.truth.tsv pair and keeps ingesting on top
// of it. -cold disables warm starts (every epoch re-runs from cold
// initialization). MV, Mean and Median skip re-inference entirely: their
// truths are maintained exactly, in O(delta) per ingested batch.
//
// The API (see internal/stream for the wire formats):
//
//	POST /v1/ingest        append answers/tasks/workers/truths
//	POST /v1/refresh       run one inference epoch now
//	GET  /v1/truth/{task}  one task's truth + confidence
//	GET  /v1/truths        all truths + the store version they reflect
//	GET  /v1/worker/{id}   a worker's estimated quality
//	GET  /v1/stats         store + serving statistics
//	GET  /v1/healthz       liveness probe
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	ti "truthinference"
	"truthinference/internal/dataset"
	"truthinference/internal/stream"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		method      = flag.String("method", "D&S", "method to serve (see truthinfer -list)")
		taskType    = flag.String("type", "decision", "task type of the live store: decision, single-choice, numeric")
		choices     = flag.Int("choices", 2, "number of choices for single-choice stores")
		seed        = flag.Int64("seed", 1, "random seed (fixed per daemon so epochs are reproducible)")
		maxIter     = flag.Int("maxiter", 0, "iteration cap per epoch (0 = method default)")
		parallelism = flag.Int("parallelism", 0, "worker goroutines for the EM hot loops (0 = all CPUs, 1 = sequential)")
		cold        = flag.Bool("cold", false, "disable warm starts; re-run every epoch from cold initialization")
		autoRefresh = flag.Bool("auto-refresh", true, "re-infer in the background after every ingested batch")
		data        = flag.String("data", "", "optional dataset base path to preload (expects <base>.answers.tsv)")
	)
	flag.Parse()

	m, err := ti.GetMethod(*method)
	if err != nil {
		// The error lists every registered method, so a typo on the
		// command line is immediately actionable.
		fatal("%v", err)
	}

	var store *stream.Store
	if *data != "" {
		d, err := ti.LoadDataset(*data)
		if err != nil {
			fatal("load dataset: %v", err)
		}
		store = stream.NewStoreFrom(d)
		log.Printf("preloaded %s: %d tasks, %d workers, %d answers", d.Name, d.NumTasks, d.NumWorkers, len(d.Answers))
	} else {
		typ, err := parseTaskType(*taskType)
		if err != nil {
			fatal("%v", err)
		}
		store, err = stream.NewStore("live", typ, *choices)
		if err != nil {
			fatal("%v", err)
		}
	}

	par := *parallelism
	if par == 0 {
		par = ti.AutoParallelism
	}
	svc, err := stream.NewService(store, stream.Config{
		Method:      m,
		Options:     ti.Options{Seed: *seed, MaxIterations: *maxIter, Parallelism: par},
		ColdStart:   *cold,
		AutoRefresh: *autoRefresh,
	})
	if err != nil {
		fatal("%v", err)
	}
	defer svc.Close()
	if *data != "" {
		if err := svc.Refresh(); err != nil {
			fatal("initial inference: %v", err)
		}
		st := svc.Stats()
		log.Printf("initial %s epoch: %d iterations, converged=%v", st.Method, st.Iterations, st.Converged)
	}

	log.Printf("truthserve: serving %s on %s (warm_start=%v auto_refresh=%v)", m.Name(), *addr, !*cold, *autoRefresh)
	if err := http.ListenAndServe(*addr, svc.Handler()); err != nil {
		fatal("%v", err)
	}
}

// parseTaskType maps the -type flag onto the dataset task families.
func parseTaskType(s string) (dataset.TaskType, error) {
	switch s {
	case "decision":
		return dataset.Decision, nil
	case "single-choice":
		return dataset.SingleChoice, nil
	case "numeric":
		return dataset.Numeric, nil
	default:
		return 0, fmt.Errorf("unknown task type %q (valid: decision, single-choice, numeric)", s)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "truthserve: "+format+"\n", args...)
	os.Exit(1)
}
