// Command truthserve is the online truth-inference daemon: it keeps a
// mutable sharded answer store, re-runs the configured method
// warm-started from the previous posterior as batches arrive, and serves
// truths, worker qualities and statistics over an HTTP JSON API while
// inference runs in the background. With -wal-dir set the daemon is
// durable: every ingested batch is appended to a write-ahead log,
// compacted into snapshots every -snapshot-every batches, and replayed
// on the next start to a bit-identical store.
//
// Usage:
//
//	truthserve -method D&S [-addr :8080] [-type decision] [-choices 2]
//	           [-seed 1] [-maxiter 0] [-parallelism 0] [-shards 8]
//	           [-cold] [-auto-refresh=true] [-data path/to/base]
//	           [-wal-dir dir] [-snapshot-every 256]
//	           [-assign-policy uncertainty] [-budget 0] [-redundancy 3]
//	           [-lease-ttl 1m] [-version]
//
// -type declares the task family of the live store (decision,
// single-choice with -choices ℓ, or numeric); -data instead preloads a
// <base>.answers.tsv / <base>.truth.tsv pair and keeps ingesting on top
// of it. -cold disables warm starts (every epoch re-runs from cold
// initialization). MV, Mean and Median skip re-inference entirely: their
// truths are maintained exactly, in O(delta) per ingested batch.
//
// -assign-policy enables the task-assignment control plane (see
// internal/assign): workers GET /v1/assign to lease the best task under
// the chosen policy (random, least-answered, or uncertainty — the
// QASCA-style expected-accuracy router driven by the live posterior),
// POST /v1/complete to deliver the answer and retire the lease, and
// GET /v1/assignstats to watch the ledger. -budget caps total routed
// answers (0 = unlimited), -redundancy caps answers per task, and
// -lease-ttl bounds how long a worker may sit on an assignment before it
// is reclaimed and re-issued.
//
// On SIGINT/SIGTERM the daemon drains gracefully: the HTTP listener
// stops accepting, in-flight requests and the in-flight inference epoch
// finish, the WAL is fsynced (and compacted into a final snapshot when
// durable), and the process exits 0.
//
// The API (see internal/stream for the wire formats):
//
//	POST /v1/ingest        append answers/tasks/workers/truths
//	POST /v1/refresh       run one inference epoch now
//	GET  /v1/truth/{task}  one task's truth + confidence
//	GET  /v1/truths        all truths + the store version they reflect
//	GET  /v1/worker/{id}   a worker's estimated quality
//	GET  /v1/stats         store + serving statistics
//	GET  /v1/healthz       liveness probe
//	GET  /v1/assign        lease a task for ?worker=N   (with -assign-policy)
//	POST /v1/complete      deliver an answer, retire the lease
//	GET  /v1/assignstats   assignment ledger statistics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	ti "truthinference"
	"truthinference/internal/assign"
	"truthinference/internal/buildinfo"
	"truthinference/internal/dataset"
	"truthinference/internal/stream"
	"truthinference/internal/stream/wal"
)

// config is the parsed flag set; run is driven by it so tests can start
// the daemon without a process boundary.
type config struct {
	method        string
	taskType      string
	choices       int
	seed          int64
	maxIter       int
	parallelism   int
	shards        int
	cold          bool
	autoRefresh   bool
	data          string
	walDir        string
	snapshotEvery int
	assignPolicy  string
	budget        int
	redundancy    int
	leaseTTL      time.Duration
}

func main() {
	var cfg config
	var addr string
	flag.StringVar(&addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.method, "method", "D&S", "method to serve (see truthinfer -list)")
	flag.StringVar(&cfg.taskType, "type", "decision", "task type of the live store: decision, single-choice, numeric")
	flag.IntVar(&cfg.choices, "choices", 2, "number of choices for single-choice stores")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed (fixed per daemon so epochs are reproducible)")
	flag.IntVar(&cfg.maxIter, "maxiter", 0, "iteration cap per epoch (0 = method default)")
	flag.IntVar(&cfg.parallelism, "parallelism", 0, "worker goroutines for the EM hot loops (0 = all CPUs, 1 = sequential)")
	flag.IntVar(&cfg.shards, "shards", stream.DefaultShards, "store shard count (contention only; state is shard-count independent)")
	flag.BoolVar(&cfg.cold, "cold", false, "disable warm starts; re-run every epoch from cold initialization")
	flag.BoolVar(&cfg.autoRefresh, "auto-refresh", true, "re-infer in the background after every ingested batch")
	flag.StringVar(&cfg.data, "data", "", "optional dataset base path to preload (expects <base>.answers.tsv)")
	flag.StringVar(&cfg.walDir, "wal-dir", "", "directory for the write-ahead log + snapshots (empty = not durable)")
	flag.IntVar(&cfg.snapshotEvery, "snapshot-every", 256, "batches between compacted snapshots when -wal-dir is set (0 = only on shutdown)")
	flag.StringVar(&cfg.assignPolicy, "assign-policy", "", "enable task-assignment endpoints with this policy: random, least-answered, uncertainty (empty = disabled)")
	flag.IntVar(&cfg.budget, "budget", 0, "global answer budget for assignment, counted per daemon run (0 = unlimited; on restart pass the remaining budget)")
	flag.IntVar(&cfg.redundancy, "redundancy", assign.DefaultRedundancy, "per-task answer cap for assignment")
	flag.DurationVar(&cfg.leaseTTL, "lease-ttl", assign.DefaultLeaseTTL, "how long a worker holds an assignment before it is reclaimed")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("truthserve"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("%v", err)
	}
	if err := run(ctx, cfg, ln, log.Printf); err != nil {
		fatal("%v", err)
	}
}

// run starts the daemon on ln and blocks until ctx is cancelled (a
// signal in production, test cancellation in the regression suite) or
// the server fails. On cancellation it drains: HTTP shutdown, in-flight
// epoch, WAL fsync + final snapshot — and returns nil.
func run(ctx context.Context, cfg config, ln net.Listener, logf func(string, ...any)) error {
	logf("%s starting", buildinfo.String("truthserve"))
	m, err := ti.GetMethod(cfg.method)
	if err != nil {
		// The error lists every registered method, so a typo on the
		// command line is immediately actionable.
		return err
	}
	// Resolve the assignment policy before any store work, for the same
	// fail-fast reason.
	var policy assign.Policy
	if cfg.assignPolicy != "" {
		if policy, err = assign.ParsePolicy(cfg.assignPolicy); err != nil {
			return err
		}
	}

	// fresh builds the store the daemon starts from when there is no
	// durable state to recover. It must be deterministic across restarts
	// (the WAL replays on top of it).
	fresh := func() (*stream.Store, error) {
		if cfg.data != "" {
			d, err := ti.LoadDataset(cfg.data)
			if err != nil {
				return nil, fmt.Errorf("load dataset: %w", err)
			}
			logf("preloaded %s: %d tasks, %d workers, %d answers", d.Name, d.NumTasks, d.NumWorkers, len(d.Answers))
			return stream.NewStoreAt(d, 1, cfg.shards), nil
		}
		typ, err := parseTaskType(cfg.taskType)
		if err != nil {
			return nil, err
		}
		return stream.NewStoreN("live", typ, cfg.choices, cfg.shards)
	}

	var store *stream.Store
	var persist *wal.Persister
	if cfg.walDir != "" {
		if err := os.MkdirAll(cfg.walDir, 0o755); err != nil {
			return err
		}
		base := filepath.Join(cfg.walDir, "truthserve")
		p, rec, err := wal.Open(base, fresh, wal.Options{SnapshotEvery: cfg.snapshotEvery, Shards: cfg.shards})
		if err != nil {
			return fmt.Errorf("recover %s: %w", base, err)
		}
		defer p.Close()
		if rec.TailErr != nil {
			logf("WARNING: WAL tail damaged, recovered the consistent prefix: %v", rec.TailErr)
		}
		tasks, workers, answers := rec.Store.Dims()
		logf("recovered store at version %d (snapshot@%d + %d WAL records): %d tasks, %d workers, %d answers",
			rec.Store.Version(), rec.SnapshotVersion, rec.Replayed, tasks, workers, answers)
		store, persist = rec.Store, p
	} else {
		if store, err = fresh(); err != nil {
			return err
		}
	}

	par := cfg.parallelism
	if par == 0 {
		par = ti.AutoParallelism
	}
	svcCfg := stream.Config{
		Method:      m,
		Options:     ti.Options{Seed: cfg.seed, MaxIterations: cfg.maxIter, Parallelism: par},
		ColdStart:   cfg.cold,
		AutoRefresh: cfg.autoRefresh,
	}
	if persist != nil {
		svcCfg.Persist = persist
	}
	svc, err := stream.NewService(store, svcCfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	if store.Version() > 0 {
		// Preloaded or recovered state: publish an initial result so the
		// API serves immediately instead of 409ing until the first batch.
		if err := svc.Refresh(); err != nil {
			return fmt.Errorf("initial inference: %w", err)
		}
		st := svc.Stats()
		logf("initial %s epoch: %d iterations, converged=%v", st.Method, st.Iterations, st.Converged)
	}

	handler := svc.Handler()
	if policy != nil {
		ledger, err := assign.NewLedger(svc, assign.Config{
			Policy:     policy,
			Redundancy: cfg.redundancy,
			Budget:     cfg.budget,
			LeaseTTL:   cfg.leaseTTL,
			Seed:       cfg.seed,
		})
		if err != nil {
			return err
		}
		// Completed assignments land in the store as one-answer batches;
		// Complete holds the ledger lock across the ingest so a lease is
		// consumed exactly when its answer is committed.
		assignAPI := assign.Handler(ledger, func(task, worker int, value float64) (uint64, error) {
			return svc.Ingest(stream.Batch{Answers: []dataset.Answer{
				{Task: task, Worker: worker, Value: value},
			}})
		})
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		for _, pattern := range []string{"GET /v1/assign", "POST /v1/complete", "GET /v1/assignstats"} {
			mux.Handle(pattern, assignAPI)
		}
		handler = mux
		logf("truthserve: assignment enabled (policy=%s redundancy=%d budget=%d lease_ttl=%s)",
			policy.Name(), cfg.redundancy, cfg.budget, cfg.leaseTTL)
	}

	srv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logf("truthserve: serving %s on %s (warm_start=%v auto_refresh=%v shards=%d durable=%v)",
		m.Name(), ln.Addr(), !cfg.cold, cfg.autoRefresh, store.Shards(), persist != nil)

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish.
	logf("truthserve: signal received, draining")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logf("truthserve: HTTP shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("truthserve: listener: %v", err)
	}
	// Finish the in-flight inference epoch and fsync the WAL.
	if err := svc.Close(); err != nil {
		logf("truthserve: %v", err)
	}
	if persist != nil {
		// Compact on clean shutdown so the next boot recovers from the
		// snapshot alone.
		if err := persist.Snapshot(); err != nil {
			logf("truthserve: final snapshot: %v", err)
		}
		if err := persist.Close(); err != nil {
			return fmt.Errorf("close WAL: %w", err)
		}
	}
	logf("truthserve: drained, exiting")
	return nil
}

// parseTaskType maps the -type flag onto the dataset task families.
func parseTaskType(s string) (dataset.TaskType, error) {
	switch s {
	case "decision":
		return dataset.Decision, nil
	case "single-choice":
		return dataset.SingleChoice, nil
	case "numeric":
		return dataset.Numeric, nil
	default:
		return 0, fmt.Errorf("unknown task type %q (valid: decision, single-choice, numeric)", s)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "truthserve: "+format+"\n", args...)
	os.Exit(1)
}
