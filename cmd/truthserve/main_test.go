package main

import (
	"strings"
	"testing"

	ti "truthinference"
	"truthinference/internal/dataset"
)

func TestParseTaskType(t *testing.T) {
	cases := map[string]dataset.TaskType{
		"decision":      dataset.Decision,
		"single-choice": dataset.SingleChoice,
		"numeric":       dataset.Numeric,
	}
	for s, want := range cases {
		got, err := parseTaskType(s)
		if err != nil || got != want {
			t.Errorf("parseTaskType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := parseTaskType("tabular"); err == nil || !strings.Contains(err.Error(), "decision") {
		t.Errorf("invalid type error should list the valid ones: %v", err)
	}
}

func TestUnknownMethodErrorListsRegistry(t *testing.T) {
	_, err := ti.GetMethod("Oops")
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	for _, name := range ti.MethodNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list %q: %s", name, err)
		}
	}
}
