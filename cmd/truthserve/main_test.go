package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	ti "truthinference"
	"truthinference/internal/dataset"
	"truthinference/internal/tenant"
	"truthinference/internal/testutil"
)

func TestParseTaskType(t *testing.T) {
	cases := map[string]dataset.TaskType{
		"decision":      dataset.Decision,
		"single-choice": dataset.SingleChoice,
		"numeric":       dataset.Numeric,
	}
	for s, want := range cases {
		got, err := tenant.ParseTaskType(s)
		if err != nil || got != want {
			t.Errorf("ParseTaskType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := tenant.ParseTaskType("tabular"); err == nil || !strings.Contains(err.Error(), "decision") {
		t.Errorf("invalid type error should list the valid ones: %v", err)
	}
}

func TestUnknownMethodErrorListsRegistry(t *testing.T) {
	_, err := ti.GetMethod("Oops")
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	for _, name := range ti.MethodNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list %q: %s", name, err)
		}
	}
}

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, the cancel that plays the role of SIGTERM, and the channel run's
// result arrives on.
func startDaemon(t *testing.T, cfg config) (baseURL string, sigterm context.CancelFunc, done chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan error, 1)
	go func() { done <- run(ctx, cfg, ln, testutil.Logger(t)) }()
	baseURL = "http://" + ln.Addr().String()
	waitHealthy(t, baseURL)
	return baseURL, cancel, done
}

func waitHealthy(t *testing.T, baseURL string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

func postIngest(t *testing.T, baseURL, body string) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/ingest", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("ingest: HTTP %d: %s", resp.StatusCode, msg.String())
	}
}

func getStats(t *testing.T, baseURL string) map[string]any {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGracefulShutdown is the regression test for the SIGTERM path:
// cancelling the daemon's context (what the signal handler does) must
// stop the HTTP server, finish in-flight work, and return nil — not
// kill the process mid-epoch.
func TestGracefulShutdown(t *testing.T) {
	baseURL, sigterm, done := startDaemon(t, config{
		method: "MV", taskType: "decision", choices: 2, seed: 1,
		shards: 4, autoRefresh: true,
	})
	postIngest(t, baseURL, `{"answers":[{"task":0,"worker":0,"value":1},{"task":0,"worker":1,"value":1},{"task":1,"worker":0,"value":0}]}`)

	sigterm()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within 15s of the signal")
	}
	// The listener really is closed.
	if _, err := http.Get(baseURL + "/v1/healthz"); err == nil {
		t.Fatal("healthz still reachable after shutdown")
	}
}

// TestShutdownPersistsAndRecovers restarts the daemon against the same
// -wal-dir and checks the second boot serves exactly the state the
// first one ingested: the kill-and-recover contract end to end over
// HTTP.
func TestShutdownPersistsAndRecovers(t *testing.T) {
	walDir := t.TempDir()
	cfg := config{
		method: "MV", taskType: "decision", choices: 2, seed: 1,
		shards: 4, autoRefresh: true, walDir: walDir, snapshotEvery: 2,
	}

	baseURL, sigterm, done := startDaemon(t, cfg)
	postIngest(t, baseURL, `{"num_tasks":3,"num_workers":3}`)
	postIngest(t, baseURL, `{"answers":[{"task":0,"worker":0,"value":1},{"task":0,"worker":1,"value":1},{"task":1,"worker":2,"value":0}]}`)
	postIngest(t, baseURL, `{"answers":[{"task":2,"worker":1,"value":1}],"truth":{"2":1}}`)
	want := getStats(t, baseURL)
	sigterm()
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(walDir, "truthserve.snap")); err != nil {
		t.Fatalf("clean shutdown left no snapshot: %v", err)
	}

	baseURL2, sigterm2, done2 := startDaemon(t, cfg)
	got := getStats(t, baseURL2)
	for _, k := range []string{"tasks", "workers", "answers", "store_version"} {
		if got[k] != want[k] {
			t.Errorf("recovered %s = %v, want %v", k, got[k], want[k])
		}
	}
	// Truths survive too: task 0 had two votes for 1.
	resp, err := http.Get(baseURL2 + "/v1/truth/0")
	if err != nil {
		t.Fatal(err)
	}
	var truth struct {
		Truth float64 `json:"truth"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&truth); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if truth.Truth != 1 {
		t.Errorf("recovered truth for task 0 = %v, want 1", truth.Truth)
	}
	// Ingestion continues on the recovered store.
	postIngest(t, baseURL2, `{"answers":[{"task":1,"worker":1,"value":0}]}`)
	sigterm2()
	if err := <-done2; err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// TestAssignmentEndpoints drives the assignment control plane end to
// end over HTTP: lease → answer → complete → stats, with the budget and
// self-exclusion rails enforced by the daemon.
func TestAssignmentEndpoints(t *testing.T) {
	baseURL, sigterm, done := startDaemon(t, config{
		method: "MV", taskType: "decision", choices: 2, seed: 1,
		shards: 4, autoRefresh: true,
		assignPolicy: "uncertainty", budget: 4, redundancy: 2, leaseTTL: time.Minute,
	})
	defer func() {
		sigterm()
		if err := <-done; err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}()
	postIngest(t, baseURL, `{"num_tasks":3,"num_workers":5}`)

	// Worker 0 leases a task and answers it.
	resp, err := http.Get(baseURL + "/v1/assign?worker=0")
	if err != nil {
		t.Fatal(err)
	}
	var lease struct {
		LeaseID uint64 `json:"lease_id"`
		Task    int    `json:"task"`
		Worker  int    `json:"worker"`
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assign: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lease.Worker != 0 || lease.Task < 0 || lease.Task >= 3 {
		t.Fatalf("implausible lease: %+v", lease)
	}

	body := fmt.Sprintf(`{"lease_id":%d,"worker":0,"value":1}`, lease.LeaseID)
	cresp, err := http.Post(baseURL+"/v1/complete", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	if cresp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(cresp.Body)
		t.Fatalf("complete: HTTP %d: %s", cresp.StatusCode, msg.String())
	}
	cresp.Body.Close()

	// The completed answer landed in the serving store.
	if st := getStats(t, baseURL); st["answers"].(float64) != 1 {
		t.Fatalf("store holds %v answers after completion, want 1", st["answers"])
	}
	// The ledger accounts for it.
	aresp, err := http.Get(baseURL + "/v1/assignstats")
	if err != nil {
		t.Fatal(err)
	}
	var ast map[string]any
	if err := json.NewDecoder(aresp.Body).Decode(&ast); err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if ast["policy"] != "uncertainty" || ast["completed"].(float64) != 1 {
		t.Fatalf("assignstats = %v", ast)
	}
	if ast["budget_remaining"].(float64) != 3 {
		t.Fatalf("budget_remaining = %v, want 3", ast["budget_remaining"])
	}

	// Self-exclusion over HTTP: worker 0 drains its remaining eligible
	// tasks (2 more), then gets 404.
	for i := 0; i < 2; i++ {
		r, err := http.Get(baseURL + "/v1/assign?worker=0")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("assign %d: HTTP %d", i+2, r.StatusCode)
		}
	}
	r, err := http.Get(baseURL + "/v1/assign?worker=0")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("assign after seeing every task: HTTP %d, want 404", r.StatusCode)
	}
	// Worker 0 holds 3 of the budget's 4 slots (1 completed + 2 leased);
	// worker 1 takes the last one, then a fresh worker gets 409.
	r, err = http.Get(baseURL + "/v1/assign?worker=1")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("assign of the last budget slot: HTTP %d, want 200", r.StatusCode)
	}
	r, err = http.Get(baseURL + "/v1/assign?worker=2")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("assign beyond budget: HTTP %d, want 409", r.StatusCode)
	}
}

// TestStatsReportsShardsAndWALOverHTTP pins the operator-facing /v1/stats
// additions end to end: shard count always, WAL status when durable.
func TestStatsReportsShardsAndWALOverHTTP(t *testing.T) {
	baseURL, sigterm, done := startDaemon(t, config{
		method: "MV", taskType: "decision", choices: 2, seed: 1,
		shards: 4, autoRefresh: true, walDir: t.TempDir(), snapshotEvery: 100,
	})
	defer func() {
		sigterm()
		if err := <-done; err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}()
	postIngest(t, baseURL, `{"answers":[{"task":0,"worker":0,"value":1}]}`)
	st := getStats(t, baseURL)
	if st["shards"].(float64) != 4 {
		t.Errorf("stats shards = %v, want 4", st["shards"])
	}
	if st["durable"] != true {
		t.Errorf("stats durable = %v, want true", st["durable"])
	}
	wal, ok := st["wal"].(map[string]any)
	if !ok {
		t.Fatalf("stats wal missing: %v", st)
	}
	if wal["records_since_snapshot"].(float64) != 1 {
		t.Errorf("records_since_snapshot = %v, want 1", wal["records_since_snapshot"])
	}
}

// TestRunFailsFastOnBadConfig keeps config errors fatal (and readable)
// rather than silently serving a misconfigured daemon.
func TestRunFailsFastOnBadConfig(t *testing.T) {
	for _, cfg := range []config{
		{method: "Oops", taskType: "decision", choices: 2},
		{method: "MV", taskType: "tabular", choices: 2},
		{method: "Mean", taskType: "decision", choices: 2},                                   // type mismatch
		{method: "MV", taskType: "decision", choices: 2, assignPolicy: "qasca"},              // unknown policy
		{method: "MV", taskType: "decision", choices: 2, assignPolicy: "random", budget: -1}, // invalid ledger config
	} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		err = run(ctx, cfg, ln, nil)
		cancel()
		ln.Close()
		if err == nil {
			t.Errorf("run with %+v succeeded, want config error", cfg)
		}
	}
}

// TestProjectsFileBootsTenants boots the daemon with a -projects file,
// drives the tenant through its /v1/projects/{id}/... routes, and checks
// the legacy unprefixed routes still address the default project — the
// in-place upgrade contract for single-project deployments.
func TestProjectsFileBootsTenants(t *testing.T) {
	projects := filepath.Join(t.TempDir(), "projects.json")
	if err := os.WriteFile(projects, []byte(`{
		"imgs": {"method": "MV", "task_type": "single-choice", "choices": 4,
		         "assign": {"policy": "least-answered", "redundancy": 2, "lease_ttl": "1m"}}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	baseURL, sigterm, done := startDaemon(t, config{
		method: "MV", taskType: "decision", choices: 2, seed: 1,
		autoRefresh: true, projectsFile: projects,
	})
	defer func() {
		sigterm()
		if err := <-done; err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}()

	// Legacy route → default project; prefixed route → tenant.
	postIngest(t, baseURL, `{"answers":[{"task":0,"worker":0,"value":1}]}`)
	resp, err := http.Post(baseURL+"/v1/projects/imgs/ingest", "application/json",
		bytes.NewBufferString(`{"answers":[{"task":0,"worker":0,"value":3},{"task":1,"worker":1,"value":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant ingest: HTTP %d", resp.StatusCode)
	}

	// No cross-talk: each project's stats count only its own answers.
	if st := getStats(t, baseURL); st["answers"].(float64) != 1 || st["name"] != "default" {
		t.Fatalf("default project stats = %v", st)
	}
	tresp, err := http.Get(baseURL + "/v1/projects/imgs/stats")
	if err != nil {
		t.Fatal(err)
	}
	var tst map[string]any
	if err := json.NewDecoder(tresp.Body).Decode(&tst); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tst["answers"].(float64) != 2 || tst["name"] != "imgs" {
		t.Fatalf("tenant stats = %v", tst)
	}

	// The tenant has assignment endpoints; the default project does not.
	aresp, err := http.Get(baseURL + "/v1/projects/imgs/assign?worker=7")
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Errorf("tenant assign: HTTP %d, want 200", aresp.StatusCode)
	}
	dresp, err := http.Get(baseURL + "/v1/assign?worker=7")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("default assign: HTTP %d, want 404 (no assignment configured)", dresp.StatusCode)
	}

	// The admin listing shows both, default first.
	lresp, err := http.Get(baseURL + "/v1/admin/projects")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Projects []struct {
			ID string `json:"id"`
		} `json:"projects"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(listing.Projects) != 2 || listing.Projects[0].ID != "default" || listing.Projects[1].ID != "imgs" {
		t.Fatalf("admin listing = %+v", listing)
	}
}

// TestRunFailsFastOnBadProjectsFile is the table-driven error-path suite
// for daemon config parsing: every malformed -projects file must abort
// the boot with a readable error, never serve a half-configured daemon.
func TestRunFailsFastOnBadProjectsFile(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"unknown field":  `{"p1": {"method": "MV", "typo_knob": 3}}`,
		"unknown method": `{"p1": {"method": "Oops"}}`,
		"bad task type":  `{"p1": {"method": "MV", "task_type": "tabular"}}`,
		"type mismatch":  `{"p1": {"method": "Mean"}}`,
		"bad policy":     `{"p1": {"method": "MV", "assign": {"policy": "qasca"}}}`,
		"bad lease ttl":  `{"p1": {"method": "MV", "assign": {"policy": "random", "lease_ttl": "soon"}}}`,
		"bad id":         `{"p 1": {"method": "MV"}}`,
		"reserved id":    `{"default": {"method": "MV"}}`,
		"negative budget": `{"p1": {"method": "MV",
			"assign": {"policy": "random", "budget": -1}}}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			file := filepath.Join(t.TempDir(), "projects.json")
			if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			err = run(ctx, config{method: "MV", taskType: "decision", choices: 2, projectsFile: file}, ln, nil)
			if err == nil {
				t.Fatalf("run accepted projects file %q", body)
			}
		})
	}
	t.Run("missing file", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		err = run(ctx, config{method: "MV", taskType: "decision", choices: 2,
			projectsFile: filepath.Join(t.TempDir(), "absent.json")}, ln, nil)
		if err == nil {
			t.Fatal("run accepted a missing projects file")
		}
	})
}

// TestServeErrorIsReturned pins the pre-fix failure mode: if the
// listener dies (rather than a signal arriving), run reports it instead
// of hanging.
func TestServeErrorIsReturned(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, config{method: "MV", taskType: "decision", choices: 2, shards: 2}, ln, nil)
	}()
	waitHealthy(t, "http://"+ln.Addr().String())
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run returned nil after the listener died")
		}
		if !strings.Contains(err.Error(), "serve") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not notice the dead listener")
	}
}
