package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	ti "truthinference"
	"truthinference/internal/dataset"
)

func TestParseTaskType(t *testing.T) {
	cases := map[string]dataset.TaskType{
		"decision":      dataset.Decision,
		"single-choice": dataset.SingleChoice,
		"numeric":       dataset.Numeric,
	}
	for s, want := range cases {
		got, err := parseTaskType(s)
		if err != nil || got != want {
			t.Errorf("parseTaskType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := parseTaskType("tabular"); err == nil || !strings.Contains(err.Error(), "decision") {
		t.Errorf("invalid type error should list the valid ones: %v", err)
	}
}

func TestUnknownMethodErrorListsRegistry(t *testing.T) {
	_, err := ti.GetMethod("Oops")
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	for _, name := range ti.MethodNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list %q: %s", name, err)
		}
	}
}

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, the cancel that plays the role of SIGTERM, and the channel run's
// result arrives on.
func startDaemon(t *testing.T, cfg config) (baseURL string, sigterm context.CancelFunc, done chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan error, 1)
	go func() { done <- run(ctx, cfg, ln, t.Logf) }()
	baseURL = "http://" + ln.Addr().String()
	waitHealthy(t, baseURL)
	return baseURL, cancel, done
}

func waitHealthy(t *testing.T, baseURL string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

func postIngest(t *testing.T, baseURL, body string) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/ingest", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("ingest: HTTP %d: %s", resp.StatusCode, msg.String())
	}
}

func getStats(t *testing.T, baseURL string) map[string]any {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGracefulShutdown is the regression test for the SIGTERM path:
// cancelling the daemon's context (what the signal handler does) must
// stop the HTTP server, finish in-flight work, and return nil — not
// kill the process mid-epoch.
func TestGracefulShutdown(t *testing.T) {
	baseURL, sigterm, done := startDaemon(t, config{
		method: "MV", taskType: "decision", choices: 2, seed: 1,
		shards: 4, autoRefresh: true,
	})
	postIngest(t, baseURL, `{"answers":[{"task":0,"worker":0,"value":1},{"task":0,"worker":1,"value":1},{"task":1,"worker":0,"value":0}]}`)

	sigterm()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within 15s of the signal")
	}
	// The listener really is closed.
	if _, err := http.Get(baseURL + "/v1/healthz"); err == nil {
		t.Fatal("healthz still reachable after shutdown")
	}
}

// TestShutdownPersistsAndRecovers restarts the daemon against the same
// -wal-dir and checks the second boot serves exactly the state the
// first one ingested: the kill-and-recover contract end to end over
// HTTP.
func TestShutdownPersistsAndRecovers(t *testing.T) {
	walDir := t.TempDir()
	cfg := config{
		method: "MV", taskType: "decision", choices: 2, seed: 1,
		shards: 4, autoRefresh: true, walDir: walDir, snapshotEvery: 2,
	}

	baseURL, sigterm, done := startDaemon(t, cfg)
	postIngest(t, baseURL, `{"num_tasks":3,"num_workers":3}`)
	postIngest(t, baseURL, `{"answers":[{"task":0,"worker":0,"value":1},{"task":0,"worker":1,"value":1},{"task":1,"worker":2,"value":0}]}`)
	postIngest(t, baseURL, `{"answers":[{"task":2,"worker":1,"value":1}],"truth":{"2":1}}`)
	want := getStats(t, baseURL)
	sigterm()
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(walDir, "truthserve.snap")); err != nil {
		t.Fatalf("clean shutdown left no snapshot: %v", err)
	}

	baseURL2, sigterm2, done2 := startDaemon(t, cfg)
	got := getStats(t, baseURL2)
	for _, k := range []string{"tasks", "workers", "answers", "store_version"} {
		if got[k] != want[k] {
			t.Errorf("recovered %s = %v, want %v", k, got[k], want[k])
		}
	}
	// Truths survive too: task 0 had two votes for 1.
	resp, err := http.Get(baseURL2 + "/v1/truth/0")
	if err != nil {
		t.Fatal(err)
	}
	var truth struct {
		Truth float64 `json:"truth"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&truth); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if truth.Truth != 1 {
		t.Errorf("recovered truth for task 0 = %v, want 1", truth.Truth)
	}
	// Ingestion continues on the recovered store.
	postIngest(t, baseURL2, `{"answers":[{"task":1,"worker":1,"value":0}]}`)
	sigterm2()
	if err := <-done2; err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// TestRunFailsFastOnBadConfig keeps config errors fatal (and readable)
// rather than silently serving a misconfigured daemon.
func TestRunFailsFastOnBadConfig(t *testing.T) {
	for _, cfg := range []config{
		{method: "Oops", taskType: "decision", choices: 2},
		{method: "MV", taskType: "tabular", choices: 2},
		{method: "Mean", taskType: "decision", choices: 2}, // type mismatch
	} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		err = run(ctx, cfg, ln, func(string, ...any) {})
		cancel()
		ln.Close()
		if err == nil {
			t.Errorf("run with %+v succeeded, want config error", cfg)
		}
	}
}

// TestServeErrorIsReturned pins the pre-fix failure mode: if the
// listener dies (rather than a signal arriving), run reports it instead
// of hanging.
func TestServeErrorIsReturned(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, config{method: "MV", taskType: "decision", choices: 2, shards: 2}, ln, func(string, ...any) {})
	}()
	waitHealthy(t, "http://"+ln.Addr().String())
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run returned nil after the listener died")
		}
		if !strings.Contains(err.Error(), "serve") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not notice the dead listener")
	}
}
