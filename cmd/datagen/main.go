// Command datagen emits the five calibrated synthetic benchmark datasets
// (Table 5) in the repository's TSV format, one <name>.answers.tsv /
// <name>.truth.tsv pair per dataset.
//
// Usage:
//
//	datagen [-dir data] [-seed 1] [-scale 1] [-only D_Product]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"truthinference/internal/buildinfo"
	"truthinference/internal/dataset"
	"truthinference/internal/simulate"
)

func main() {
	var (
		dir   = flag.String("dir", "data", "output directory")
		seed  = flag.Int64("seed", 1, "generation seed")
		scale = flag.Float64("scale", 1, "dataset size scale in (0,1]")
		only  = flag.String("only", "", "generate only this dataset (paper name, e.g. D_Product)")
	)
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("datagen"))
		return
	}
	fmt.Fprintln(os.Stderr, buildinfo.String("datagen"))

	if !(*scale > 0 && *scale <= 1) {
		fatal("-scale %v out of range: want 0 < scale <= 1 (1 = the paper's full dataset sizes)", *scale)
	}
	kinds := simulate.Kinds
	if *only != "" {
		k, err := simulate.KindFromName(*only)
		if err != nil {
			fatal("%v", err)
		}
		kinds = []simulate.Kind{k}
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal("mkdir %s: %v", *dir, err)
	}
	for _, k := range kinds {
		d := simulate.GenerateScaled(k, *seed, *scale)
		base := filepath.Join(*dir, d.Name)
		if err := dataset.SaveFiles(base, d); err != nil {
			fatal("save %s: %v", base, err)
		}
		s := dataset.ComputeStats(d)
		fmt.Printf("%-11s → %s.{answers,truth}.tsv  (%d tasks, %d answers, %d workers, consistency %.2f)\n",
			d.Name, base, s.NumTasks, s.NumAnswers, s.NumWorkers, s.Consistency)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
