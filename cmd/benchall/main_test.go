package main

import (
	"strings"
	"testing"

	ti "truthinference"
)

func TestSelectMethodsAll(t *testing.T) {
	ms, err := selectMethods("")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(ti.MethodNames()) {
		t.Fatalf("empty spec selected %d methods, want %d", len(ms), len(ti.MethodNames()))
	}
}

func TestSelectMethodsSubsetKeepsRegistryOrder(t *testing.T) {
	ms, err := selectMethods(" D&S , MV ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Name() != "MV" || ms[1].Name() != "D&S" {
		names := make([]string, len(ms))
		for i, m := range ms {
			names[i] = m.Name()
		}
		t.Fatalf("selected %v, want [MV D&S] in registry order", names)
	}
}

func TestSelectMethodsUnknownListsRegistry(t *testing.T) {
	_, err := selectMethods("MV,Bogus")
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"Bogus"`) {
		t.Errorf("error does not name the offender: %s", msg)
	}
	for _, name := range ti.MethodNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list registered method %q: %s", name, msg)
		}
	}
}

func TestMethodsForTypeFilters(t *testing.T) {
	all, err := selectMethods("")
	if err != nil {
		t.Fatal(err)
	}
	r := runner{methods: all}
	for _, m := range r.methodsForType(ti.Numeric) {
		if !m.Capabilities().SupportsType(ti.Numeric) {
			t.Errorf("%s selected for numeric tasks it does not support", m.Name())
		}
	}
	if len(r.methodsForType(ti.Decision)) == 0 || len(r.methodsForType(ti.Numeric)) == 0 {
		t.Error("task-type filters returned empty sets")
	}
}
