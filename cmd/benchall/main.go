// Command benchall regenerates every table and figure of the paper's
// evaluation section (Section 6) on the calibrated synthetic datasets.
//
// Usage:
//
//	benchall [-exp all|table5|fig2|fig3|consistency|fig4|fig5|fig6|table6|table7|fig7|fig8|fig9]
//	         [-scale 0.15] [-repeats 3] [-seed 1] [-maxiter 0] [-parallelism 0]
//	         [-methods "MV,D&S,GLAD"]
//
// -methods restricts the method-comparison experiments to a subset of the
// registry (the per-figure task-type filters still apply on top). An
// unknown name aborts with the full registered list.
//
// -scale scales dataset sizes (1 = the paper's full sizes; smaller values
// keep the worker mixture and redundancy but bound runtime). The default
// favors a complete run in a few minutes; use -scale 1 for full scale.
//
// -parallelism sets how many (method × dataset × repetition) experiment
// cells run concurrently; 0 (the default) uses every available CPU and 1
// forces the sequential order. Reported quality numbers (accuracy, F1,
// MAE, RMSE, iteration counts) are identical at every parallelism level.
// Per-method running times (the Table-6 Time column) are wall-clock
// measurements and inflate under CPU contention from sibling cells — use
// -parallelism 1 when comparing the paper's efficiency ordering.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	ti "truthinference"
	"truthinference/internal/buildinfo"
	"truthinference/internal/dataset"
	"truthinference/internal/experiment"
	"truthinference/internal/simulate"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (all, table5, fig2, fig3, consistency, fig4, fig5, fig6, table6, table7, fig7, fig8, fig9)")
		scale       = flag.Float64("scale", 0.15, "dataset size scale in (0,1]")
		repeats     = flag.Int("repeats", 3, "repetitions to average for stochastic experiments")
		seed        = flag.Int64("seed", 1, "base random seed")
		maxIter     = flag.Int("maxiter", 0, "cap iterative methods (0 = method defaults)")
		parallelism = flag.Int("parallelism", 0, "concurrent experiment cells (0 = all CPUs, 1 = sequential)")
		methods     = flag.String("methods", "", "comma-separated method filter (empty = all 17; unknown names list the registry)")
	)
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("benchall"))
		return
	}
	fmt.Fprintln(os.Stderr, buildinfo.String("benchall"))

	if !(*scale > 0 && *scale <= 1) {
		fmt.Fprintf(os.Stderr, "benchall: -scale %v out of range: want 0 < scale <= 1 (1 = the paper's full dataset sizes)\n", *scale)
		os.Exit(1)
	}
	if *repeats < 1 {
		fmt.Fprintf(os.Stderr, "benchall: -repeats %d out of range: want >= 1\n", *repeats)
		os.Exit(1)
	}
	selected, err := selectMethods(*methods)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
	par := *parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	r := runner{
		cfg:     experiment.Config{Seed: *seed, Repeats: *repeats, MaxIterations: *maxIter, Parallelism: par},
		scale:   *scale,
		seed:    *seed,
		methods: selected,
	}
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table5", "consistency", "fig2", "fig3", "fig4", "fig5", "fig6", "table6", "table7", "fig7", "fig8", "fig9"}
	}
	for _, id := range ids {
		if err := r.run(strings.TrimSpace(id)); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
	}
}

type runner struct {
	cfg     experiment.Config
	scale   float64
	seed    int64
	methods []ti.Method
	cache   map[simulate.Kind]*dataset.Dataset
}

// selectMethods resolves a comma-separated method filter against the core
// registry, preserving registry order. An empty spec selects all methods;
// an unknown name fails with the full registered list so the caller can
// see every valid spelling ("D&S", "VI-BP", "LFC_N", …).
func selectMethods(spec string) ([]ti.Method, error) {
	registry := ti.NewRegistry()
	if strings.TrimSpace(spec) == "" {
		return registry, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = false
		}
	}
	var out []ti.Method
	for _, m := range registry {
		if _, ok := want[m.Name()]; ok {
			want[m.Name()] = true
			out = append(out, m)
		}
	}
	for name, found := range want {
		if !found {
			return nil, fmt.Errorf("unknown method %q (registered: %s)", name, strings.Join(ti.MethodNames(), ", "))
		}
	}
	return out, nil
}

// methodsForType filters the selected methods down to those applicable to
// datasets of type t (the per-figure subsets of the paper).
func (r *runner) methodsForType(t ti.TaskType) []ti.Method {
	var out []ti.Method
	for _, m := range r.methods {
		if m.Capabilities().SupportsType(t) {
			out = append(out, m)
		}
	}
	return out
}

func (r *runner) data(k simulate.Kind) *dataset.Dataset {
	if r.cache == nil {
		r.cache = map[simulate.Kind]*dataset.Dataset{}
	}
	if d, ok := r.cache[k]; ok {
		return d
	}
	d := simulate.GenerateScaled(k, r.seed, r.scale)
	r.cache[k] = d
	return d
}

func (r *runner) run(id string) error {
	switch id {
	case "table5":
		var stats []dataset.Stats
		for _, k := range simulate.Kinds {
			stats = append(stats, dataset.ComputeStats(r.data(k)))
		}
		fmt.Println("=== Table 5: dataset statistics ===")
		fmt.Println(experiment.RenderStatsTable(stats))
	case "consistency":
		fmt.Println("=== §6.2.1 data consistency C ===")
		for _, k := range simulate.Kinds {
			d := r.data(k)
			fmt.Printf("%-11s C = %.2f\n", d.Name, dataset.Consistency(d))
		}
		fmt.Println()
	case "fig2":
		fmt.Println("=== Figure 2: worker redundancy histograms ===")
		for _, k := range simulate.Kinds {
			d := r.data(k)
			edges, counts := dataset.RedundancyHistogram(d, 10)
			fmt.Print(experiment.RenderHistogram(
				fmt.Sprintf("%s (%d workers, #tasks answered)", d.Name, d.NumWorkers), edges, counts))
		}
		fmt.Println()
	case "fig3":
		fmt.Println("=== Figure 3: worker quality histograms ===")
		for _, k := range simulate.Kinds {
			d := r.data(k)
			if d.Categorical() {
				q := dataset.WorkerAccuracy(d)
				edges, counts := dataset.QualityHistogram(q, 0, 1, 10)
				fmt.Print(experiment.RenderHistogram(
					fmt.Sprintf("%s (worker accuracy, mean %.2f)", d.Name, dataset.MeanWorkerQuality(q)), edges, counts))
			} else {
				q := dataset.WorkerRMSE(d)
				edges, counts := dataset.QualityHistogram(q, 0, 50, 10)
				fmt.Print(experiment.RenderHistogram(
					fmt.Sprintf("%s (worker RMSE, mean %.1f)", d.Name, dataset.MeanWorkerQuality(q)), edges, counts))
			}
		}
		fmt.Println()
	case "fig4":
		fmt.Println("=== Figure 4: redundancy sweep, decision-making ===")
		d := r.data(simulate.DProduct)
		pts := experiment.RedundancySweep(r.methodsForType(ti.Decision), d, []int{1, 2, 3}, r.cfg)
		fmt.Print(experiment.RenderSweep("D_Product", pts, experiment.MetricAccuracy))
		fmt.Println()
		fmt.Print(experiment.RenderSweep("D_Product", pts, experiment.MetricF1))
		fmt.Println()
		d = r.data(simulate.DPosSent)
		pts = experiment.RedundancySweep(r.methodsForType(ti.Decision), d, []int{1, 5, 10, 15, 20}, r.cfg)
		fmt.Print(experiment.RenderSweep("D_PosSent", pts, experiment.MetricAccuracy))
		fmt.Println()
		fmt.Print(experiment.RenderSweep("D_PosSent", pts, experiment.MetricF1))
		fmt.Println()
	case "fig5":
		fmt.Println("=== Figure 5: redundancy sweep, single-label ===")
		d := r.data(simulate.SRel)
		pts := experiment.RedundancySweep(r.methodsForType(ti.SingleChoice), d, []int{1, 2, 3, 4, 5}, r.cfg)
		fmt.Print(experiment.RenderSweep("S_Rel", pts, experiment.MetricAccuracy))
		fmt.Println()
		d = r.data(simulate.SAdult)
		pts = experiment.RedundancySweep(r.methodsForType(ti.SingleChoice), d, []int{1, 3, 5, 7, 9}, r.cfg)
		fmt.Print(experiment.RenderSweep("S_Adult", pts, experiment.MetricAccuracy))
		fmt.Println()
	case "fig6":
		fmt.Println("=== Figure 6: redundancy sweep, numeric ===")
		d := r.data(simulate.NEmotion)
		pts := experiment.RedundancySweep(r.methodsForType(ti.Numeric), d, []int{1, 2, 4, 6, 8, 10}, r.cfg)
		fmt.Print(experiment.RenderSweep("N_Emotion", pts, experiment.MetricMAE))
		fmt.Println()
		fmt.Print(experiment.RenderSweep("N_Emotion", pts, experiment.MetricRMSE))
		fmt.Println()
	case "table6":
		fmt.Println("=== Table 6: quality and running time, complete data ===")
		for _, k := range simulate.Kinds {
			d := r.data(k)
			scores := experiment.FullComparison(r.methods, d, r.cfg)
			fmt.Print(experiment.RenderScores(d.Name, d.Categorical(), scores))
			fmt.Println()
		}
	case "table7":
		fmt.Println("=== Table 7: effect of qualification test ===")
		for _, k := range simulate.Kinds {
			d := r.data(k)
			res := experiment.QualificationTest(r.methods, d, r.cfg)
			fmt.Print(experiment.RenderQualification(d.Name, d.Categorical(), res))
			fmt.Println()
		}
	case "fig7":
		fmt.Println("=== Figure 7: hidden test, decision-making ===")
		for _, k := range []simulate.Kind{simulate.DProduct, simulate.DPosSent} {
			d := r.data(k)
			pts := experiment.HiddenTest(r.methods, d, []int{0, 10, 20, 30, 40, 50}, r.cfg)
			fmt.Print(experiment.RenderHidden(d.Name, pts, experiment.MetricAccuracy))
			fmt.Println()
			fmt.Print(experiment.RenderHidden(d.Name, pts, experiment.MetricF1))
			fmt.Println()
		}
	case "fig8":
		fmt.Println("=== Figure 8: hidden test, single-label ===")
		for _, k := range []simulate.Kind{simulate.SRel, simulate.SAdult} {
			d := r.data(k)
			pts := experiment.HiddenTest(r.methods, d, []int{0, 10, 20, 30, 40, 50}, r.cfg)
			fmt.Print(experiment.RenderHidden(d.Name, pts, experiment.MetricAccuracy))
			fmt.Println()
		}
	case "fig9":
		fmt.Println("=== Figure 9: hidden test, numeric ===")
		d := r.data(simulate.NEmotion)
		pts := experiment.HiddenTest(r.methods, d, []int{0, 10, 20, 30, 40, 50}, r.cfg)
		fmt.Print(experiment.RenderHidden(d.Name, pts, experiment.MetricMAE))
		fmt.Println()
		fmt.Print(experiment.RenderHidden(d.Name, pts, experiment.MetricRMSE))
		fmt.Println()
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
