package truthinference

// Allocation-regression gate for the CSR sweep kernels. The columnar
// refactor's contract is that once Infer has built its per-call state
// (CSR arrays, posteriors, scratch), each additional E/M sweep performs
// zero heap allocations on the sequential path. testing.AllocsPerRun
// can't see "per sweep" directly, so the test measures the same Infer
// at two iteration caps on a crowd noisy enough that neither run
// converges early; the difference divided by the extra iterations is
// the per-sweep cost, which must be exactly zero.

import (
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/testutil"
)

// allocGateCrowd is noisy enough (45%-accurate workers over 3 choices)
// that D&S keeps moving its confusion matrices and PM keeps flipping
// labels well past the caps used below: with Tolerance pinned to an
// unreachable 1e-300, neither method converges before iteration 10.
func allocGateCrowd() *dataset.Dataset {
	acc := make([]float64, 15)
	for w := range acc {
		acc[w] = 0.45
	}
	return testutil.Categorical(testutil.CrowdSpec{
		NumTasks:   80,
		NumWorkers: 15,
		NumChoices: 3,
		Redundancy: 5,
		Accuracies: acc,
		Seed:       11,
	})
}

func TestSweepAllocationRegression(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	d := allocGateCrowd()
	const loCap, hiCap = 4, 10
	for _, name := range []string{"D&S", "PM"} {
		t.Run(name, func(t *testing.T) {
			m, err := GetMethod(name)
			if err != nil {
				t.Fatal(err)
			}
			optsAt := func(cap int) core.Options {
				return core.Options{Seed: 7, MaxIterations: cap, Tolerance: 1e-300, Parallelism: 1}
			}
			// The measurement is only valid if both runs execute exactly
			// their cap's worth of sweeps.
			for _, cap := range []int{loCap, hiCap} {
				r, err := m.Infer(d, optsAt(cap))
				if err != nil {
					t.Fatal(err)
				}
				if r.Iterations != cap || r.Converged {
					t.Fatalf("%s converged early (iters=%d, cap=%d): crowd no longer exercises the sweep gate", name, r.Iterations, cap)
				}
			}
			measure := func(cap int) float64 {
				opts := optsAt(cap)
				return testing.AllocsPerRun(10, func() {
					if _, err := m.Infer(d, opts); err != nil {
						t.Fatal(err)
					}
				})
			}
			lo := measure(loCap)
			hi := measure(hiCap)
			perSweep := (hi - lo) / float64(hiCap-loCap)
			if perSweep != 0 {
				t.Fatalf("%s allocates per sweep: %.2f allocs/iteration (%.0f at %d iters vs %.0f at %d iters)",
					name, perSweep, hi, hiCap, lo, loCap)
			}
		})
	}
}
