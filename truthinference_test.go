package truthinference

import (
	"math"
	"reflect"
	"testing"

	"truthinference/internal/testutil"
)

// categoricalMethods returns every method applicable to the given planted
// crowd's task type.
func applicable(d *Dataset) []Method {
	return MethodsForType(d.Type)
}

// TestAllMethodsRecoverEasyDecisionCrowd: with uniformly competent workers
// (accuracy 0.8) and redundancy 5, every decision-making method must beat
// 85% accuracy — a basic correctness bar for all 14 implementations.
func TestAllMethodsRecoverEasyDecisionCrowd(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{
		NumTasks: 300, NumWorkers: 25, Redundancy: 5, Seed: 7,
	})
	for _, m := range applicable(d) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			res, err := m.Infer(d, Options{Seed: 3})
			if err != nil {
				t.Fatalf("Infer: %v", err)
			}
			acc := testutil.AccuracyOf(d.Truth, res.Truth)
			t.Logf("accuracy %.3f (iters %d)", acc, res.Iterations)
			if acc < 0.85 {
				t.Errorf("accuracy %.3f < 0.85 on easy crowd", acc)
			}
		})
	}
}

// TestAllMethodsRecoverEasySingleChoiceCrowd repeats the bar for 4-choice
// tasks and the 10 single-choice methods.
func TestAllMethodsRecoverEasySingleChoiceCrowd(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{
		NumTasks: 300, NumWorkers: 25, NumChoices: 4, Redundancy: 5, Seed: 11,
	})
	for _, m := range applicable(d) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			res, err := m.Infer(d, Options{Seed: 3})
			if err != nil {
				t.Fatalf("Infer: %v", err)
			}
			acc := testutil.AccuracyOf(d.Truth, res.Truth)
			t.Logf("accuracy %.3f (iters %d)", acc, res.Iterations)
			if acc < 0.85 {
				t.Errorf("accuracy %.3f < 0.85 on easy 4-choice crowd", acc)
			}
		})
	}
}

// TestWorkerModelsBeatSpammers: when 40% of workers are coin-flippers,
// worker-modeling methods must (a) still recover the truth and (b) assign
// the spammers lower quality than the good workers on average.
func TestWorkerModelsBeatSpammers(t *testing.T) {
	const nw = 30
	acc := make([]float64, nw)
	for w := range acc {
		if w < 12 {
			acc[w] = 0.5 // spammers
		} else {
			acc[w] = 0.85
		}
	}
	d := testutil.Categorical(testutil.CrowdSpec{
		NumTasks: 400, NumWorkers: nw, Redundancy: 7, Accuracies: acc, Seed: 13,
	})
	for _, m := range applicable(d) {
		m := m
		if m.Name() == "MV" {
			continue // MV has no worker model by design
		}
		t.Run(m.Name(), func(t *testing.T) {
			res, err := m.Infer(d, Options{Seed: 5})
			if err != nil {
				t.Fatalf("Infer: %v", err)
			}
			got := testutil.AccuracyOf(d.Truth, res.Truth)
			if got < 0.85 {
				t.Errorf("accuracy %.3f < 0.85 with spammers present", got)
			}
			var spamQ, goodQ float64
			for w := 0; w < nw; w++ {
				if w < 12 {
					spamQ += res.WorkerQuality[w]
				} else {
					goodQ += res.WorkerQuality[w]
				}
			}
			spamQ /= 12
			goodQ /= nw - 12
			if spamQ >= goodQ {
				t.Errorf("mean spammer quality %.3f >= mean good quality %.3f", spamQ, goodQ)
			}
		})
	}
}

// TestNumericMethodsRecoverTruth: numeric methods must land within a small
// RMSE of the planted truth when workers are unbiased.
func TestNumericMethodsRecoverTruth(t *testing.T) {
	d := testutil.Numeric(testutil.NumericSpec{
		NumTasks: 300, NumWorkers: 20, Redundancy: 8, Seed: 17,
	})
	for _, m := range applicable(d) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			res, err := m.Infer(d, Options{Seed: 5})
			if err != nil {
				t.Fatalf("Infer: %v", err)
			}
			rmse := RMSE(res.Truth, d.Truth)
			t.Logf("RMSE %.2f (iters %d)", rmse, res.Iterations)
			// Noise sigma 10 over 8 answers → ideal ≈ 3.5; leave headroom.
			if rmse > 6 {
				t.Errorf("RMSE %.2f > 6 on easy numeric crowd", rmse)
			}
		})
	}
}

// TestVarianceAwareNumericBeatsMean: when workers have wildly different
// noise levels, the variance-modeling methods must beat plain Mean.
func TestVarianceAwareNumericBeatsMean(t *testing.T) {
	const nw = 20
	sig := make([]float64, nw)
	for w := range sig {
		if w < 10 {
			sig[w] = 2
		} else {
			sig[w] = 40
		}
	}
	d := testutil.Numeric(testutil.NumericSpec{
		NumTasks: 300, NumWorkers: nw, Redundancy: 8, Sigmas: sig, Seed: 19,
	})
	mean, err := Infer("Mean", d, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	meanRMSE := RMSE(mean.Truth, d.Truth)
	for _, name := range []string{"LFC_N", "PM", "CATD"} {
		res, err := Infer(name, d, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		got := RMSE(res.Truth, d.Truth)
		t.Logf("%s RMSE %.2f vs Mean %.2f", name, got, meanRMSE)
		if got >= meanRMSE {
			t.Errorf("%s RMSE %.2f should beat Mean %.2f under heteroscedastic workers", name, got, meanRMSE)
		}
	}
}

// TestDeterminism: equal options must produce byte-identical results for
// every method, including the Gibbs samplers.
func TestDeterminism(t *testing.T) {
	dec := testutil.Categorical(testutil.CrowdSpec{NumTasks: 80, NumWorkers: 12, Redundancy: 4, Seed: 23})
	num := testutil.Numeric(testutil.NumericSpec{NumTasks: 60, NumWorkers: 10, Redundancy: 5, Seed: 23})
	for _, m := range NewRegistry() {
		m := m
		d := dec
		if !m.Capabilities().SupportsType(dec.Type) {
			d = num
			if !m.Capabilities().SupportsType(num.Type) {
				continue
			}
		}
		t.Run(m.Name(), func(t *testing.T) {
			a, err := m.Infer(d, Options{Seed: 99})
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := m.Infer(d, Options{Seed: 99})
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if !reflect.DeepEqual(a.Truth, b.Truth) {
				t.Error("truth differs between identical runs")
			}
			if !reflect.DeepEqual(a.WorkerQuality, b.WorkerQuality) {
				t.Error("worker quality differs between identical runs")
			}
		})
	}
}

// TestCapabilityEnforcement: running a method outside its Table-4 task
// types, or with unsupported golden/qualification options, must return the
// sentinel errors rather than garbage.
func TestCapabilityEnforcement(t *testing.T) {
	dec := testutil.Categorical(testutil.CrowdSpec{NumTasks: 20, NumWorkers: 6, Redundancy: 3, Seed: 29})
	num := testutil.Numeric(testutil.NumericSpec{NumTasks: 20, NumWorkers: 6, Redundancy: 3, Seed: 29})
	for _, m := range NewRegistry() {
		caps := m.Capabilities()
		var wrong *Dataset
		switch {
		case !caps.SupportsType(Numeric):
			wrong = num
		case !caps.SupportsType(Decision):
			wrong = dec
		default:
			wrong = nil // PM and CATD support every task type
		}
		if wrong != nil {
			if _, err := m.Infer(wrong, Options{}); err == nil {
				t.Errorf("%s: expected task-type error on %s dataset", m.Name(), wrong.Type)
			}
		}
		var right *Dataset
		if caps.SupportsType(Decision) {
			right = dec
		} else {
			right = num
		}
		if !caps.Golden {
			if _, err := m.Infer(right, Options{Golden: map[int]float64{0: right.Truth[0]}}); err == nil {
				t.Errorf("%s: expected golden-unsupported error", m.Name())
			}
		}
		if !caps.Qualification {
			qa := make([]float64, right.NumWorkers)
			if _, err := m.Infer(right, Options{QualificationAccuracy: qa}); err == nil {
				t.Errorf("%s: expected qualification-unsupported error", m.Name())
			}
		}
	}
}

// TestGoldenTasksArePinned: golden truths must be returned verbatim for
// golden-capable categorical methods.
func TestGoldenTasksArePinned(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 100, NumWorkers: 12, Redundancy: 4, Seed: 31})
	golden := map[int]float64{0: d.Truth[0], 1: d.Truth[1], 2: d.Truth[2]}
	for _, m := range applicable(d) {
		if !m.Capabilities().Golden {
			continue
		}
		res, err := m.Infer(d, Options{Seed: 5, Golden: golden})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for task, v := range golden {
			if res.Truth[task] != v {
				t.Errorf("%s: golden task %d inferred %v, want %v", m.Name(), task, res.Truth[task], v)
			}
		}
	}
}

// TestRegistryShape: 17 methods, unique names, and the paper's Table-4
// task-type counts (14 decision, 10 single-choice, 5 numeric).
func TestRegistryShape(t *testing.T) {
	reg := NewRegistry()
	if len(reg) != 17 {
		t.Fatalf("registry has %d methods, want 17", len(reg))
	}
	seen := map[string]bool{}
	for _, m := range reg {
		if seen[m.Name()] {
			t.Errorf("duplicate method name %q", m.Name())
		}
		seen[m.Name()] = true
	}
	if n := len(MethodsForType(Decision)); n != 14 {
		t.Errorf("decision-making methods = %d, want 14", n)
	}
	if n := len(MethodsForType(SingleChoice)); n != 10 {
		t.Errorf("single-choice methods = %d, want 10", n)
	}
	if n := len(MethodsForType(Numeric)); n != 5 {
		t.Errorf("numeric methods = %d, want 5", n)
	}
	if _, err := GetMethod("nope"); err == nil {
		t.Error("GetMethod(nope) should fail")
	}
	m, err := GetMethod("D&S")
	if err != nil || m.Name() != "D&S" {
		t.Errorf("GetMethod(D&S) = %v, %v", m, err)
	}
}

// TestPaperRunningExample reproduces the §3 worked example (Table 2):
// 6 entity-resolution tasks, 3 workers, truths v*_1 = v*_6 = T. PM must
// converge to the correct truth and rank w3 highest; MV must get the five
// decided tasks right given its random tie-break on t1.
func TestPaperRunningExample(t *testing.T) {
	// Tasks t1..t6 → ids 0..5; workers w1..w3 → 0..2; T=1, F=0.
	answers := []Answer{
		{Task: 0, Worker: 0, Value: 0}, {Task: 1, Worker: 0, Value: 1}, {Task: 2, Worker: 0, Value: 1},
		{Task: 3, Worker: 0, Value: 0}, {Task: 4, Worker: 0, Value: 0}, {Task: 5, Worker: 0, Value: 0},
		{Task: 1, Worker: 1, Value: 0}, {Task: 2, Worker: 1, Value: 0}, {Task: 3, Worker: 1, Value: 1},
		{Task: 4, Worker: 1, Value: 1}, {Task: 5, Worker: 1, Value: 0},
		{Task: 0, Worker: 2, Value: 1}, {Task: 1, Worker: 2, Value: 0}, {Task: 2, Worker: 2, Value: 0},
		{Task: 3, Worker: 2, Value: 0}, {Task: 4, Worker: 2, Value: 0}, {Task: 5, Worker: 2, Value: 1},
	}
	truth := map[int]float64{0: 1, 1: 0, 2: 0, 3: 0, 4: 0, 5: 1}
	d, err := NewDataset("paper-table2", Decision, 2, 6, 3, answers, truth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Infer("PM", d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's converged PM result: v*_1 = v*_6 = T, others F.
	want := []float64{1, 0, 0, 0, 0, 1}
	for i, v := range want {
		if res.Truth[i] != v {
			t.Errorf("PM truth[t%d] = %v, want %v", i+1, res.Truth[i], v)
		}
	}
	// w3 must end with the highest quality, w1 the lowest (§3: qualities
	// ≈ 4.9e-15, 0.29, 16.09).
	q := res.WorkerQuality
	if !(q[2] > q[1] && q[1] > q[0]) {
		t.Errorf("PM qualities = %v, want q_w3 > q_w2 > q_w1", q)
	}
	// MV gets t2..t6 right (4 F's + t6 wrong per the paper: MV infers
	// v*_6 = F incorrectly). Check MV matches the paper's analysis.
	mv, err := Infer("MV", d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if mv.Truth[i] != 0 {
			t.Errorf("MV truth[t%d] = %v, want F", i+1, mv.Truth[i])
		}
	}
	if mv.Truth[5] != 0 {
		t.Errorf("MV truth[t6] = %v; the paper's analysis has MV incorrectly inferring F", mv.Truth[5])
	}
}

// TestMetricsMatchHandComputation checks the Eq. 3–5 implementations on a
// tiny hand-computed instance.
func TestMetricsMatchHandComputation(t *testing.T) {
	inferred := []float64{1, 0, 1, 1}
	truth := map[int]float64{0: 1, 1: 1, 2: 0, 3: 1}
	if got := Accuracy(inferred, truth); got != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", got)
	}
	// positives: predicted {0,2,3}, true {0,1,3}, tp = {0,3}.
	p, r := PrecisionRecall(inferred, truth)
	if math.Abs(p-2.0/3) > 1e-12 || math.Abs(r-2.0/3) > 1e-12 {
		t.Errorf("P/R = %v/%v, want 2/3 each", p, r)
	}
	if got := F1(inferred, truth); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1 = %v, want 2/3", got)
	}
	inf := []float64{1, 3}
	tr := map[int]float64{0: 2, 1: 1}
	if got := MAE(inf, tr); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("MAE = %v, want 1.5", got)
	}
	if got := RMSE(inf, tr); math.Abs(got-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("RMSE = %v, want sqrt(2.5)", got)
	}
}
