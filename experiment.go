package truthinference

import (
	"truthinference/internal/experiment"
)

// Experiment-harness aliases: the Section-6 evaluation machinery exposed
// through the public API. See internal/experiment for full documentation.
type (
	// ExperimentConfig controls seeds, repetition counts and iteration
	// caps for the harness functions below.
	ExperimentConfig = experiment.Config
	// Score is one method's averaged evaluation on one dataset setup.
	Score = experiment.Score
	// SweepPoint is one redundancy level of a Figure-4/5/6 series.
	SweepPoint = experiment.SweepPoint
	// HiddenPoint is one golden-percentage level of a Figure-7/8/9 series.
	HiddenPoint = experiment.HiddenPoint
	// QualificationResult pairs with/without-qualification scores (Table 7).
	QualificationResult = experiment.QualificationResult
	// Metric selects which Score field a rendered series plots.
	Metric = experiment.Metric
)

// Metric selectors for the renderers.
const (
	MetricAccuracy = experiment.MetricAccuracy
	MetricF1       = experiment.MetricF1
	MetricMAE      = experiment.MetricMAE
	MetricRMSE     = experiment.MetricRMSE
)

// RunFullComparison reproduces one dataset's Table-6 column group: every
// applicable method evaluated on the complete dataset.
func RunFullComparison(methods []Method, d *Dataset, cfg ExperimentConfig) []Score {
	return experiment.FullComparison(methods, d, cfg)
}

// RunRedundancySweep reproduces Figures 4–6: per-task answer sub-sampling
// at each redundancy in rs, averaged over cfg.Repeats.
func RunRedundancySweep(methods []Method, d *Dataset, rs []int, cfg ExperimentConfig) []SweepPoint {
	return experiment.RedundancySweep(methods, d, rs, cfg)
}

// RunQualificationTest reproduces Table 7 for the qualification-capable
// methods.
func RunQualificationTest(methods []Method, d *Dataset, cfg ExperimentConfig) []QualificationResult {
	return experiment.QualificationTest(methods, d, cfg)
}

// RunHiddenTest reproduces Figures 7–9 for the golden-capable methods.
func RunHiddenTest(methods []Method, d *Dataset, percents []int, cfg ExperimentConfig) []HiddenPoint {
	return experiment.HiddenTest(methods, d, percents, cfg)
}

// QualificationVectors simulates a qualification test (§6.3.2): bootstrap
// 20 of each worker's truth-bearing answers and return the per-worker
// accuracy (categorical) or mean-squared-error (numeric) vector for
// Options.QualificationAccuracy / Options.QualificationError.
func QualificationVectors(d *Dataset, seed int64) (accuracy, mse []float64) {
	return experiment.QualificationVectors(d, seed)
}

// RenderScores formats a Table-6 column group as text.
func RenderScores(name string, categorical bool, scores []Score) string {
	return experiment.RenderScores(name, categorical, scores)
}

// RenderSweep formats a redundancy sweep as a methods × redundancy table.
func RenderSweep(name string, points []SweepPoint, metric Metric) string {
	return experiment.RenderSweep(name, points, metric)
}

// RenderHidden formats a hidden-test series as a methods × percentage table.
func RenderHidden(name string, points []HiddenPoint, metric Metric) string {
	return experiment.RenderHidden(name, points, metric)
}

// RenderQualification formats Table 7 for one dataset.
func RenderQualification(name string, categorical bool, results []QualificationResult) string {
	return experiment.RenderQualification(name, categorical, results)
}
