package truthinference_test

// Property-based / metamorphic suite for the whole method registry. A
// truth-inference method's output must not depend on bookkeeping
// accidents of the input encoding, so for every registered method, on
// small seeded random crowds, we assert three invariances:
//
//   - answer-permutation: shuffling the order of the answer log leaves
//     the inferred truths unchanged;
//   - worker-relabeling: renaming workers by any bijection leaves the
//     inferred truths unchanged;
//   - label-symmetry: reversing the label alphabet of a categorical
//     dataset reverses the inferred truths and nothing else.
//
// Exact equality is demanded of deterministic methods. The transforms
// reorder floating-point accumulations and re-key the per-entity hashed
// RNG streams, so methods with stochastic steps (the Gibbs samplers
// BCC/CBCC) and the most tie-prone optimizers are held to a high minimum
// agreement instead of bit equality — the tolerance is the point: the
// paper's methods are only trustworthy up to these symmetries.

import (
	"math"
	"math/rand"
	"testing"

	ti "truthinference"
	"truthinference/internal/dataset"
	"truthinference/internal/testutil"
)

// metaOptions caps iterations so non-converging optimizers still run a
// fixed, comparable number of steps on both sides of a transform.
var metaOptions = ti.Options{Seed: 5, MaxIterations: 30}

// Transform names, used to key the per-method agreement floors.
const (
	permutation = "permutation"
	relabeling  = "relabeling"
	labelFlip   = "label-flip"
)

// minAgreement is the floor for the fraction of tasks whose inferred
// truth must match across a transform; 1 means exact. Methods leave the
// exact tier only for structural reasons, each pinned here:
//
//   - BCC/CBCC draw Gibbs chains from per-(sweep,entity) hashed RNG
//     streams, so relabeling workers or flipping labels re-keys the
//     streams and resamples the chain — agreement is statistical, not
//     bitwise (~0.83 observed on these crowds; floor 0.8).
//   - GLAD's gradient descent stops at an iteration cap, and a permuted
//     answer log reorders its floating-point accumulations, so
//     near-boundary tasks can land on the other side (~0.98 observed;
//     floor 0.9).
//   - MV, Minimax, Multi and PM break posterior ties by hashing
//     (seed, task) to a label — a label-alphabet flip changes which
//     tied label the hash picks, so they are label-symmetric only off
//     ties (~0.93–0.98 observed; floor 0.9).
func minAgreement(transform, method string) float64 {
	switch method {
	case "BCC", "CBCC":
		return 0.8
	case "GLAD":
		if transform == permutation {
			return 0.9
		}
	case "MV", "Minimax", "Multi", "PM":
		if transform == labelFlip {
			return 0.9
		}
	}
	return 1
}

// metaCrowds returns the seeded random datasets a method is exercised
// on, one per supported task family.
func metaCrowds(m ti.Method, seed int64) []*dataset.Dataset {
	var out []*dataset.Dataset
	caps := m.Capabilities()
	if caps.SupportsType(ti.Decision) {
		out = append(out, testutil.Categorical(testutil.CrowdSpec{
			NumTasks: 40, NumWorkers: 9, NumChoices: 2, Redundancy: 5, Seed: seed,
		}))
	}
	if caps.SupportsType(ti.SingleChoice) {
		out = append(out, testutil.Categorical(testutil.CrowdSpec{
			NumTasks: 30, NumWorkers: 8, NumChoices: 4, Redundancy: 5, Seed: seed + 1,
		}))
	}
	if caps.SupportsType(ti.Numeric) {
		out = append(out, testutil.Numeric(testutil.NumericSpec{
			NumTasks: 30, NumWorkers: 8, Redundancy: 4, Seed: seed + 2,
		}))
	}
	return out
}

// rebuild clones d with the given answers (and optionally truth).
func rebuild(t *testing.T, d *dataset.Dataset, answers []dataset.Answer, truth map[int]float64, workers int) *dataset.Dataset {
	t.Helper()
	if truth == nil {
		truth = d.Truth
	}
	if workers == 0 {
		workers = d.NumWorkers
	}
	nd, err := ti.NewDataset(d.Name, d.Type, d.NumChoices, d.NumTasks, workers, answers, truth)
	if err != nil {
		t.Fatalf("rebuild %s: %v", d.Name, err)
	}
	return nd
}

// permuteAnswers returns d with its answer log in a seeded shuffled
// order (same multiset of answers, different bookkeeping order).
func permuteAnswers(t *testing.T, d *dataset.Dataset, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	answers := append([]dataset.Answer(nil), d.Answers...)
	rng.Shuffle(len(answers), func(i, j int) { answers[i], answers[j] = answers[j], answers[i] })
	return rebuild(t, d, answers, nil, 0)
}

// relabelWorkers returns d with worker ids renamed by a seeded random
// bijection.
func relabelWorkers(t *testing.T, d *dataset.Dataset, seed int64) *dataset.Dataset {
	perm := rand.New(rand.NewSource(seed)).Perm(d.NumWorkers)
	answers := make([]dataset.Answer, len(d.Answers))
	for i, a := range d.Answers {
		answers[i] = dataset.Answer{Task: a.Task, Worker: perm[a.Worker], Value: a.Value}
	}
	return rebuild(t, d, answers, nil, 0)
}

// flipLabels returns a categorical d with the label alphabet reversed
// (label k becomes ℓ-1-k) in both answers and ground truth.
func flipLabels(t *testing.T, d *dataset.Dataset) *dataset.Dataset {
	ell := float64(d.NumChoices)
	answers := make([]dataset.Answer, len(d.Answers))
	for i, a := range d.Answers {
		answers[i] = dataset.Answer{Task: a.Task, Worker: a.Worker, Value: ell - 1 - a.Value}
	}
	truth := make(map[int]float64, len(d.Truth))
	for k, v := range d.Truth {
		truth[k] = ell - 1 - v
	}
	return rebuild(t, d, answers, truth, 0)
}

// agreement returns the fraction of tasks whose inferred truths match:
// exactly for categorical labels, within a relative tolerance for
// numeric estimates (the transforms legitimately reorder float sums).
func agreement(got, want []float64, numeric bool) float64 {
	if len(got) != len(want) {
		return 0
	}
	match := 0
	for i := range got {
		if numeric {
			if math.Abs(got[i]-want[i]) <= 1e-6*math.Max(1, math.Abs(want[i])) {
				match++
			}
		} else if got[i] == want[i] {
			match++
		}
	}
	return float64(match) / float64(math.Max(1, float64(len(got))))
}

// checkInvariance runs method on base and variant and asserts the truth
// vectors agree up to the method's floor. mapBack post-processes the
// variant's truths back into base coordinates (identity for permutation
// and relabeling, a label flip for symmetry).
func checkInvariance(t *testing.T, transform string, m ti.Method, base, variant *dataset.Dataset, mapBack func([]float64) []float64) {
	t.Helper()
	resBase, err := m.Infer(base, metaOptions)
	if err != nil {
		t.Fatalf("%s on %s: %v", m.Name(), base.Name, err)
	}
	resVar, err := m.Infer(variant, metaOptions)
	if err != nil {
		t.Fatalf("%s on %s of %s: %v", m.Name(), transform, base.Name, err)
	}
	got := resVar.Truth
	if mapBack != nil {
		got = mapBack(got)
	}
	floor := minAgreement(transform, m.Name())
	if agr := agreement(got, resBase.Truth, base.Type == ti.Numeric); agr < floor {
		t.Errorf("%s on %s: agreement %.3f < %.3f after %s", m.Name(), base.Name, agr, floor, transform)
	}
}

func TestAnswerPermutationInvariance(t *testing.T) {
	for _, m := range ti.NewRegistry() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{3, 17} {
				for _, d := range metaCrowds(m, seed) {
					checkInvariance(t, permutation, m, d, permuteAnswers(t, d, seed*31+7), nil)
				}
			}
		})
	}
}

func TestWorkerRelabelingInvariance(t *testing.T) {
	for _, m := range ti.NewRegistry() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{3, 17} {
				for _, d := range metaCrowds(m, seed) {
					checkInvariance(t, relabeling, m, d, relabelWorkers(t, d, seed*13+5), nil)
				}
			}
		})
	}
}

// TestLabelSymmetry applies where the method treats the label alphabet
// symmetrically (every categorical method in the registry does — their
// priors are label-uniform). Reversing the alphabet must reverse the
// output and nothing else.
func TestLabelSymmetry(t *testing.T) {
	for _, m := range ti.NewRegistry() {
		m := m
		if !m.Capabilities().SupportsType(ti.Decision) && !m.Capabilities().SupportsType(ti.SingleChoice) {
			continue // numeric-only methods have no label alphabet
		}
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{3, 17} {
				for _, d := range metaCrowds(m, seed) {
					if d.Type == ti.Numeric {
						continue
					}
					ell := float64(d.NumChoices)
					unflip := func(truths []float64) []float64 {
						out := make([]float64, len(truths))
						for i, v := range truths {
							out[i] = ell - 1 - v
						}
						return out
					}
					checkInvariance(t, labelFlip, m, d, flipLabels(t, d), unflip)
				}
			}
		})
	}
}
