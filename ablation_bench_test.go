package truthinference

// Ablation benches mirroring the paper's §6.3.4 factor analysis. Each
// bench isolates one modeling choice the evaluation section credits —
// worker model granularity, priors, inference family, qualification via
// golden tasks, latent dimensionality — and reports the quality delta
// that choice buys on the dataset where the paper says it matters.

import (
	"fmt"
	"testing"

	"truthinference/internal/experiment"
	"truthinference/internal/methods/ds"
	"truthinference/internal/methods/lfc"
	"truthinference/internal/methods/multi"
	"truthinference/internal/methods/vi"
	"truthinference/internal/methods/zc"
	"truthinference/internal/simulate"
)

// BenchmarkAblationWorkerModel compares the worker-probability chassis
// (ZC) against the confusion-matrix chassis (D&S) on D_Product, where the
// asymmetric per-class accuracies make the difference (§6.3.4 "Worker
// Models"). Reported metrics: F1 of each.
func BenchmarkAblationWorkerModel(b *testing.B) {
	d := simulate.GenerateScaled(simulate.DProduct, 1, benchScale)
	var zcF1, dsF1 float64
	for i := 0; i < b.N; i++ {
		zr, err := zc.New().Infer(d, Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		dr, err := ds.New().Infer(d, Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		zcF1 = F1(zr.Truth, d.Truth)
		dsF1 = F1(dr.Truth, d.Truth)
	}
	b.ReportMetric(100*zcF1, "zc_f1%")
	b.ReportMetric(100*dsF1, "ds_f1%")
}

// BenchmarkAblationPriors compares D&S (maximum likelihood) against LFC
// (the same EM with Dirichlet priors) on the sparse, low-quality S_Rel
// crowd where the paper finds the priors buy robustness.
func BenchmarkAblationPriors(b *testing.B) {
	d := simulate.GenerateScaled(simulate.SRel, 1, benchScale)
	var dsAcc, lfcAcc float64
	for i := 0; i < b.N; i++ {
		dr, err := ds.New().Infer(d, Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		lr, err := lfc.New().Infer(d, Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		dsAcc = Accuracy(dr.Truth, d.Truth)
		lfcAcc = Accuracy(lr.Truth, d.Truth)
	}
	b.ReportMetric(100*dsAcc, "ds_acc%")
	b.ReportMetric(100*lfcAcc, "lfc_acc%")
}

// BenchmarkAblationInference compares point estimation (ZC) against the
// Bayesian mean-field estimator over the same worker-probability model
// (VI-MF) — the §5.3(1) "Optimization Function" axis.
func BenchmarkAblationInference(b *testing.B) {
	d := simulate.GenerateScaled(simulate.DProduct, 1, benchScale)
	var zcAcc, mfAcc float64
	for i := 0; i < b.N; i++ {
		zr, err := zc.New().Infer(d, Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		mr, err := vi.NewMF().Infer(d, Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		zcAcc = Accuracy(zr.Truth, d.Truth)
		mfAcc = Accuracy(mr.Truth, d.Truth)
	}
	b.ReportMetric(100*zcAcc, "zc_acc%")
	b.ReportMetric(100*mfAcc, "vimf_acc%")
}

// BenchmarkAblationQualification measures what qualification-test
// initialization buys ZC on the sparse D_Product crowd (the dataset where
// Table 7 reports the largest benefit, because 3 answers per task leave
// worker qualities otherwise under-determined).
func BenchmarkAblationQualification(b *testing.B) {
	d := simulate.GenerateScaled(simulate.DProduct, 1, benchScale)
	var plain, seeded float64
	for i := 0; i < b.N; i++ {
		pr, err := zc.New().Infer(d, Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		acc, _ := experiment.QualificationVectors(d, int64(i))
		sr, err := zc.New().Infer(d, Options{Seed: int64(i), QualificationAccuracy: acc})
		if err != nil {
			b.Fatal(err)
		}
		plain = F1(pr.Truth, d.Truth)
		seeded = F1(sr.Truth, d.Truth)
	}
	b.ReportMetric(100*plain, "plain_f1%")
	b.ReportMetric(100*seeded, "qualified_f1%")
}

// BenchmarkAblationLatentDims sweeps Multi's latent dimensionality K (the
// latent-topics knob of §4.1.2) on D_Product.
func BenchmarkAblationLatentDims(b *testing.B) {
	d := simulate.GenerateScaled(simulate.DProduct, 1, benchScale)
	for _, k := range []int{1, 2, 4} {
		k := k
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := (&multi.Multi{K: k}).Infer(d, Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				acc = Accuracy(res.Truth, d.Truth)
			}
			b.ReportMetric(100*acc, "accuracy%")
		})
	}
}
