package truthinference

// Engine equivalence suite — the regression gate for the parallel
// inference engine: for every parallelized method, Parallelism: 8 must
// produce byte-identical Result.Truth and per-worker quality estimates to
// Parallelism: 1 on all five simulated benchmark datasets. Any chunk-
// layout-dependent arithmetic, shared-RNG ordering, or data race that
// slips into a hot loop shows up here as a float mismatch (and under
// `go test -race` as a race report).

import (
	"fmt"
	"testing"

	"truthinference/internal/simulate"
)

// parallelMethods names every method whose hot loops fan out over the
// engine pool.
var parallelMethods = []string{
	"D&S", "GLAD", "ZC", "LFC", "PM", "CATD",
	"BCC", "CBCC", "Minimax", "VI-BP", "VI-MF", "LFC_N",
}

// equivScale keeps the five datasets small enough that the full
// methods × datasets matrix stays fast even under the race detector.
const equivScale = 0.03

func TestParallelMatchesSequential(t *testing.T) {
	for _, kind := range simulate.Kinds {
		d := simulate.GenerateScaled(kind, 1, equivScale)
		for _, name := range parallelMethods {
			m, err := GetMethod(name)
			if err != nil {
				t.Fatal(err)
			}
			if !m.Capabilities().SupportsType(d.Type) {
				continue
			}
			t.Run(fmt.Sprintf("%s/%s", d.Name, name), func(t *testing.T) {
				opts := Options{Seed: 7, MaxIterations: 15}
				seqOpts, parOpts := opts, opts
				seqOpts.Parallelism = 1
				parOpts.Parallelism = 8
				seq, err := m.Infer(d, seqOpts)
				if err != nil {
					t.Fatal(err)
				}
				par, err := m.Infer(d, parOpts)
				if err != nil {
					t.Fatal(err)
				}
				if len(seq.Truth) != len(par.Truth) {
					t.Fatalf("truth length %d vs %d", len(seq.Truth), len(par.Truth))
				}
				for i := range seq.Truth {
					if seq.Truth[i] != par.Truth[i] {
						t.Fatalf("truth[%d]: sequential %v, parallel %v", i, seq.Truth[i], par.Truth[i])
					}
				}
				if len(seq.WorkerQuality) != len(par.WorkerQuality) {
					t.Fatalf("quality length %d vs %d", len(seq.WorkerQuality), len(par.WorkerQuality))
				}
				for w := range seq.WorkerQuality {
					if seq.WorkerQuality[w] != par.WorkerQuality[w] {
						t.Fatalf("workerQuality[%d]: sequential %v, parallel %v",
							w, seq.WorkerQuality[w], par.WorkerQuality[w])
					}
				}
				if seq.Iterations != par.Iterations || seq.Converged != par.Converged {
					t.Fatalf("loop accounting differs: sequential (%d, %v), parallel (%d, %v)",
						seq.Iterations, seq.Converged, par.Iterations, par.Converged)
				}
			})
		}
	}
}

// TestParallelMatchesSequentialWithGolden repeats the gate with hidden-
// test golden tasks pinned, exercising the golden paths of the parallel
// loops for the golden-capable methods.
func TestParallelMatchesSequentialWithGolden(t *testing.T) {
	d := simulate.GenerateScaled(simulate.DProduct, 1, equivScale)
	golden := map[int]float64{}
	n := 0
	for task, v := range d.Truth {
		golden[task] = v
		if n++; n >= 10 {
			break
		}
	}
	for _, name := range parallelMethods {
		m, err := GetMethod(name)
		if err != nil {
			t.Fatal(err)
		}
		caps := m.Capabilities()
		if !caps.SupportsType(d.Type) || !caps.Golden {
			continue
		}
		t.Run(name, func(t *testing.T) {
			seq, err := m.Infer(d, Options{Seed: 3, MaxIterations: 10, Golden: golden, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := m.Infer(d, Options{Seed: 3, MaxIterations: 10, Golden: golden, Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			for i := range seq.Truth {
				if seq.Truth[i] != par.Truth[i] {
					t.Fatalf("truth[%d]: sequential %v, parallel %v", i, seq.Truth[i], par.Truth[i])
				}
			}
		})
	}
}
