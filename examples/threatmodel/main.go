// Threat model: pit adversarial crowds against the assignment ledger's
// defenses. Four canonical attack archetypes — a colluding clique,
// uniform spammers, sleepers that build reputation then burn it, and
// copy-paste workers — each run twice through the same closed loop at
// the same seed and budget: once undefended, once with the defense
// tuned to counter that attack (golden qualification gates, online
// quality change-detection, pairwise collusion scoring).
//
// The attack × method matrix then shows which attacks hurt which
// inference methods when nobody defends. On a dense board MV's
// redundancy absorbs uncorrelated noise but a clique drags it down,
// while D&S is hit across the board: its EM mis-credits correlated
// adversaries as reliable workers and down-weights the honest crowd.
//
//	go run ./examples/threatmodel
package main

import (
	"fmt"
	"log"

	"truthinference/internal/assign"
	"truthinference/internal/core"
	"truthinference/internal/methods/ds"
	"truthinference/internal/simulate/closedloop"
)

// attack pairs a crowd with the defense tuned against it.
type attack struct {
	name    string
	cfg     closedloop.LoopConfig
	defense *assign.DefenseSpec
}

func main() {
	// A dense board — 100 tasks at redundancy 9 — so per-worker quality
	// estimates and pairwise overlaps carry real signal.
	base := closedloop.LoopConfig{
		Tasks: 100, Choices: 4, Seed: 11, Budget: 900, Redundancy: 9,
		GoldenTasks: 8, AccuracyLo: 0.65, AccuracyHi: 0.85,
	}
	withDS := func(cfg closedloop.LoopConfig) closedloop.LoopConfig {
		cfg.Method = ds.New()
		cfg.RefreshEvery = 40
		return cfg
	}

	collusion := base
	collusion.Tasks, collusion.Choices = 300, 2
	collusion.GoldenTasks, collusion.AccuracyLo = 12, 0.62
	collusion.Crowd = &closedloop.CrowdSpec{Honest: 24, Colluders: 8}
	spammer := withDS(base)
	spammer.Crowd = &closedloop.CrowdSpec{Honest: 24, Spammers: 8}
	sleeper := withDS(base)
	sleeper.Crowd = &closedloop.CrowdSpec{Honest: 24, Sleepers: 8, SleeperAfter: 8, SleeperAccuracy: 0.15}
	copycat := base
	copycat.AccuracyLo = 0.62
	copycat.Crowd = &closedloop.CrowdSpec{Honest: 24, Copycats: 8}

	attacks := []attack{
		{"collusion", collusion, &assign.DefenseSpec{GoldenPass: 2, GoldenFails: 3}},
		{"spammer", spammer, &assign.DefenseSpec{GoldenPass: 2, GoldenFails: 3, MinQuality: 0.28, QualityMinAnswers: 12}},
		{"sleeper", sleeper, &assign.DefenseSpec{QualityDrop: 0.3, QualityMinAnswers: 12}},
		{"copy-paste", copycat, &assign.DefenseSpec{CollusionThreshold: 0.35, CollusionMinOverlap: 6}},
	}

	fmt.Println("defended vs undefended, same seed, same budget (uncertainty policy)")
	fmt.Printf("\n%-12s %-12s %-10s %-8s %-10s\n", "attack", "undefended", "defended", "banned", "downweighted")
	for _, a := range attacks {
		undef, err := closedloop.ClosedLoop(a.cfg, "uncertainty")
		if err != nil {
			log.Fatal(err)
		}
		defended := a.cfg
		defended.Defense = a.defense
		def, err := closedloop.ClosedLoop(defended, "uncertainty")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-12.4f %-10.4f %-8d %-10d\n",
			a.name, undef.Accuracy, def.Accuracy, def.Banned, def.DownWeighted)
	}

	// The attack × method matrix, everyone undefended: which attacks
	// break which methods at a fixed budget.
	fmt.Println("\nattack x method accuracy, undefended (same seed, same budget)")
	matrixBase := base
	matrixBase.RefreshEvery = 40
	methods := []core.Method{nil, ds.New()} // nil = incremental MV
	names := []string{"MV", "D&S"}
	rows, err := closedloop.AttackMatrix(matrixBase, "uncertainty", methods,
		closedloop.StandardAttacks(24, 8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s", "attack")
	for _, n := range names {
		fmt.Printf("  %-8s", n)
	}
	fmt.Println()
	for i, row := range rows {
		fmt.Printf("%-12s", closedloop.StandardAttacks(24, 8)[i].Name)
		for _, r := range row {
			fmt.Printf("  %-8.4f", r.Accuracy)
		}
		fmt.Println()
	}
	fmt.Println("\nNo method defends itself: adversaries poison D&S's worker model")
	fmt.Println("(EM credits the agreeing ring and down-weights honest workers), and a")
	fmt.Println("large enough clique outvotes MV. The ledger's defenses are method-")
	fmt.Println("independent: golden gates at the door, quality change-detection, and")
	fmt.Println("pairwise correlation scoring over the answer stream.")
}
