// Sentiment analysis with golden tasks: the D_PosSent workload (§6.1.1)
// with the two quality-control techniques the paper evaluates —
// qualification tests (§6.3.2, Table 7) and hidden tests (§6.3.3,
// Figure 7) — applied through the public API.
//
//	go run ./examples/sentiment
package main

import (
	"fmt"
	"log"

	"math/rand"

	ti "truthinference"
)

func main() {
	d := ti.SimulateDatasetScaled(ti.DPosSent, 11, 0.5)
	fmt.Printf("dataset %s: %d tweets × %d answers each, %d workers\n\n",
		d.Name, d.NumTasks, int(d.Redundancy()), d.NumWorkers)

	const method = "ZC"

	// Plain unsupervised inference.
	base, err := ti.Infer(method, d, ti.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s unsupervised:          Accuracy %.2f%%\n", method, 100*ti.Accuracy(base.Truth, d.Truth))

	// Qualification test: every worker answers 20 golden tasks before
	// starting; their measured accuracy initializes the worker model.
	acc, _ := ti.QualificationVectors(d, 3)
	qual, err := ti.Infer(method, d, ti.Options{Seed: 3, QualificationAccuracy: acc})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s + qualification test:  Accuracy %.2f%%\n", method, 100*ti.Accuracy(qual.Truth, d.Truth))

	// Hidden test: 20% of the tasks are golden tasks whose truth is known
	// and pinned during inference; evaluation uses the remaining 80%.
	golden, eval := d.SplitGolden(0.2, rand.New(rand.NewSource(3)))
	hidden, err := ti.Infer(method, d, ti.Options{Seed: 3, Golden: golden})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s + 20%% hidden test:     Accuracy %.2f%% (on the %d non-golden tasks)\n",
		method, 100*ti.Accuracy(hidden.Truth, eval), len(eval))

	fmt.Println()
	fmt.Println("The paper's finding (§6.3.2–6.3.3): with 20 answers per task the")
	fmt.Println("unsupervised estimate is already near its ceiling, so golden-task")
	fmt.Println("supervision moves D_PosSent little — the gains show up on sparse")
	fmt.Println("datasets like D_Product instead.")
}
