// Entity resolution: the paper's motivating workload (§1, D_Product).
//
// This example simulates the D_Product benchmark — thousands of "are
// these two products the same?" decision tasks with a heavily skewed
// truth (most pairs differ) and workers who are far better at spotting
// differences than sameness — and shows why Accuracy is misleading and
// F1-score is the metric that separates the methods (§6.1.2), and why
// confusion-matrix methods win it (§6.3.1(4)).
//
//	go run ./examples/entityresolution
package main

import (
	"fmt"
	"log"

	ti "truthinference"
)

func main() {
	// A 20%-scale D_Product: ≈1600 tasks, 3 answers each.
	d := ti.SimulateDatasetScaled(ti.DProduct, 42, 0.2)
	stats := ti.ComputeStats(d)
	fmt.Printf("dataset %s: %d tasks, %d answers, %d workers (consistency %.2f)\n\n",
		d.Name, stats.NumTasks, stats.NumAnswers, stats.NumWorkers, stats.Consistency)

	// The naive baseline the paper warns about: declare every pair
	// "different". Accuracy looks great, F1 is zero.
	allDifferent := make([]float64, d.NumTasks)
	fmt.Printf("%-22s Accuracy %6.2f%%   F1 %6.2f%%\n", "always-\"different\"",
		100*ti.Accuracy(allDifferent, d.Truth), 100*ti.F1(allDifferent, d.Truth))

	for _, method := range []string{"MV", "ZC", "PM", "D&S", "LFC", "BCC"} {
		res, err := ti.Infer(method, d, ti.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s Accuracy %6.2f%%   F1 %6.2f%%\n", method,
			100*ti.Accuracy(res.Truth, d.Truth), 100*ti.F1(res.Truth, d.Truth))
	}

	fmt.Println()
	fmt.Println("Note the gap: Accuracy barely separates the methods (the 0.12:0.88")
	fmt.Println("truth skew lets even always-\"different\" score ≈88%), while F1 exposes")
	fmt.Println("it — and the confusion-matrix methods (D&S, LFC, BCC), which model a")
	fmt.Println("worker's per-class behaviour, beat the single-probability methods.")
}
