// Quickstart: build a tiny crowdsourced dataset by hand — the paper's §3
// running example (Table 2) — and run Majority Voting, PM and D&S on it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ti "truthinference"
)

func main() {
	// Table 2 of the paper: six entity-resolution tasks t1..t6 over the
	// products of Table 1, answered by three workers. Label 1 = "T" (the
	// two products are the same), label 0 = "F".
	answers := []ti.Answer{
		// w1 answers every task.
		{Task: 0, Worker: 0, Value: 0}, {Task: 1, Worker: 0, Value: 1}, {Task: 2, Worker: 0, Value: 1},
		{Task: 3, Worker: 0, Value: 0}, {Task: 4, Worker: 0, Value: 0}, {Task: 5, Worker: 0, Value: 0},
		// w2 skips t1.
		{Task: 1, Worker: 1, Value: 0}, {Task: 2, Worker: 1, Value: 0}, {Task: 3, Worker: 1, Value: 1},
		{Task: 4, Worker: 1, Value: 1}, {Task: 5, Worker: 1, Value: 0},
		// w3 answers every task.
		{Task: 0, Worker: 2, Value: 1}, {Task: 1, Worker: 2, Value: 0}, {Task: 2, Worker: 2, Value: 0},
		{Task: 3, Worker: 2, Value: 0}, {Task: 4, Worker: 2, Value: 0}, {Task: 5, Worker: 2, Value: 1},
	}
	// Ground truth: only (r1=r2) and (r3=r4) are the same product.
	truth := map[int]float64{0: 1, 1: 0, 2: 0, 3: 0, 4: 0, 5: 1}

	d, err := ti.NewDataset("table2", ti.Decision, 2, 6, 3, answers, truth)
	if err != nil {
		log.Fatal(err)
	}

	for _, method := range []string{"MV", "PM", "D&S"} {
		res, err := ti.Infer(method, d, ti.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s truth:", method)
		for i, v := range res.Truth {
			label := "F"
			if v == 1 {
				label = "T"
			}
			fmt.Printf(" t%d=%s", i+1, label)
		}
		fmt.Printf("  (accuracy %.0f%%)\n", 100*ti.Accuracy(res.Truth, d.Truth))
		fmt.Printf("     worker qualities: w1=%.3g w2=%.3g w3=%.3g\n",
			res.WorkerQuality[0], res.WorkerQuality[1], res.WorkerQuality[2])
	}
	fmt.Println()
	fmt.Println("The paper's §3 walk-through: PM converges to v*_1 = v*_6 = T and")
	fmt.Println("ranks w3 highest — compare the qualities printed above.")
}
