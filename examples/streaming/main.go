// Streaming: run the online inference subsystem in-process — ingest a
// simulated benchmark dataset in batches, refresh a warm-started D&S
// service after each one, and watch the posterior stay fresh while the
// answer set grows. The same Service powers the cmd/truthserve HTTP
// daemon; here it is driven directly through the Go API.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	ti "truthinference"
	"truthinference/internal/methods/ds"
	"truthinference/internal/simulate"
	"truthinference/internal/stream"
)

func main() {
	// A small calibrated copy of the paper's D_Product dataset plays the
	// role of the live answer feed.
	full := simulate.GenerateScaled(simulate.DProduct, 7, 0.05)
	fmt.Printf("simulated feed: %d tasks, %d workers, %d answers\n\n",
		full.NumTasks, full.NumWorkers, len(full.Answers))

	store, err := stream.NewStore(full.Name, full.Type, full.NumChoices)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := stream.NewService(store, stream.Config{
		Method:  ds.New(),
		Options: ti.Options{Seed: 1, Tolerance: 1e-3, Parallelism: ti.AutoParallelism},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// Publish the task/worker ranges up front (as a platform would when
	// posting tasks), then stream the answers in five batches. Each
	// refresh re-runs D&S warm-started from the previous epoch's
	// posterior; the per-epoch iteration counts track how far each new
	// batch actually moved the posterior.
	const batches = 5
	per := (len(full.Answers) + batches - 1) / batches
	for k := 0; k < batches; k++ {
		lo, hi := k*per, (k+1)*per
		if hi > len(full.Answers) {
			hi = len(full.Answers)
		}
		b := stream.Batch{Answers: full.Answers[lo:hi]}
		if k == 0 {
			b.NumTasks, b.NumWorkers = full.NumTasks, full.NumWorkers
		}
		if k == batches-1 {
			b.Truth = full.Truth
		}
		if _, err := svc.Ingest(b); err != nil {
			log.Fatal(err)
		}
		if err := svc.Refresh(); err != nil {
			log.Fatal(err)
		}
		st := svc.Stats()
		truths, _, err := svc.Truths()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: %5d answers ingested | epoch %d: %2d iterations (%.1f ms) | accuracy so far %.2f%%\n",
			k+1, st.Answers, st.Epochs, st.Iterations, st.LastInferMS,
			100*ti.Accuracy(truths, full.Truth))
	}

	// The equivalence contract: a cold one-shot run over the final data
	// agrees with the stream's final warm-started epoch.
	oneShot, err := ds.New().Infer(full, ti.Options{Seed: 1, Tolerance: 1e-3, Parallelism: ti.AutoParallelism})
	if err != nil {
		log.Fatal(err)
	}
	streamed, _, err := svc.Truths()
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	for i := range streamed {
		if streamed[i] == oneShot.Truth[i] {
			agree++
		}
	}
	fmt.Printf("\nstreamed vs one-shot batch labels: %d/%d identical (%.2f%%)\n",
		agree, len(streamed), 100*float64(agree)/float64(len(streamed)))

	// Single-task serving, as the HTTP API would answer GET /v1/truth/0.
	info, err := svc.Truth(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task 0: truth=%v confidence=%.3f (store version %d)\n", info.Truth, info.Confidence, info.Version)
}
