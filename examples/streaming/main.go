// Streaming: run the online inference subsystem in-process — ingest a
// simulated benchmark dataset in batches, refresh a warm-started D&S
// service after each one, and watch the posterior stay fresh while the
// answer set grows. The same Service powers the cmd/truthserve HTTP
// daemon; here it is driven directly through the Go API. The finale is
// a kill-and-recover demo: the stream is cut mid-way with the state on
// a write-ahead log, "crashes", and recovers to a bit-identical store
// that finishes the stream with the same answers.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	ti "truthinference"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/methods/ds"
	"truthinference/internal/simulate"
	"truthinference/internal/stream"
	"truthinference/internal/stream/wal"
)

func main() {
	// A small calibrated copy of the paper's D_Product dataset plays the
	// role of the live answer feed.
	full := simulate.GenerateScaled(simulate.DProduct, 7, 0.05)
	fmt.Printf("simulated feed: %d tasks, %d workers, %d answers\n\n",
		full.NumTasks, full.NumWorkers, len(full.Answers))

	store, err := stream.NewStore(full.Name, full.Type, full.NumChoices)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := stream.NewService(store, stream.Config{
		Method:  ds.New(),
		Options: ti.Options{Seed: 1, Tolerance: 1e-3, Parallelism: ti.AutoParallelism},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// Publish the task/worker ranges up front (as a platform would when
	// posting tasks), then stream the answers in five batches. Each
	// refresh re-runs D&S warm-started from the previous epoch's
	// posterior; the per-epoch iteration counts track how far each new
	// batch actually moved the posterior.
	const batches = 5
	per := (len(full.Answers) + batches - 1) / batches
	for k := 0; k < batches; k++ {
		lo, hi := k*per, (k+1)*per
		if hi > len(full.Answers) {
			hi = len(full.Answers)
		}
		b := stream.Batch{Answers: full.Answers[lo:hi]}
		if k == 0 {
			b.NumTasks, b.NumWorkers = full.NumTasks, full.NumWorkers
		}
		if k == batches-1 {
			b.Truth = full.Truth
		}
		if _, err := svc.Ingest(b); err != nil {
			log.Fatal(err)
		}
		if err := svc.Refresh(); err != nil {
			log.Fatal(err)
		}
		st := svc.Stats()
		truths, _, err := svc.Truths()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: %5d answers ingested | epoch %d: %2d iterations (%.1f ms) | accuracy so far %.2f%%\n",
			k+1, st.Answers, st.Epochs, st.Iterations, st.LastInferMS,
			100*ti.Accuracy(truths, full.Truth))
	}

	// The equivalence contract: a cold one-shot run over the final data
	// agrees with the stream's final warm-started epoch.
	oneShot, err := ds.New().Infer(full, ti.Options{Seed: 1, Tolerance: 1e-3, Parallelism: ti.AutoParallelism})
	if err != nil {
		log.Fatal(err)
	}
	streamed, _, err := svc.Truths()
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	for i := range streamed {
		if streamed[i] == oneShot.Truth[i] {
			agree++
		}
	}
	fmt.Printf("\nstreamed vs one-shot batch labels: %d/%d identical (%.2f%%)\n",
		agree, len(streamed), 100*float64(agree)/float64(len(streamed)))

	// Single-task serving, as the HTTP API would answer GET /v1/truth/0.
	info, err := svc.Truth(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task 0: truth=%v confidence=%.3f (store version %d)\n", info.Truth, info.Confidence, info.Version)

	killAndRecover(full)
}

// killAndRecover is the durability walkthrough: stream the first half
// of the feed into an MV service backed by a write-ahead log, abandon
// the process state ("crash"), recover a bit-identical store from
// <dir>/demo.snap + <dir>/demo.wal, finish the stream on it, and check
// the final truths match a one-shot batch run.
func killAndRecover(full *dataset.Dataset) {
	dir, err := os.MkdirTemp("", "truthserve-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "demo")
	fresh := func() (*stream.Store, error) {
		return stream.NewStore(full.Name, full.Type, full.NumChoices)
	}

	fmt.Printf("\n-- kill and recover (WAL at %s) --\n", base)
	const batches = 6
	per := (len(full.Answers) + batches - 1) / batches
	batch := func(k int) stream.Batch {
		lo, hi := k*per, (k+1)*per
		if hi > len(full.Answers) {
			hi = len(full.Answers)
		}
		b := stream.Batch{Answers: full.Answers[lo:hi]}
		if k == 0 {
			b.NumTasks, b.NumWorkers = full.NumTasks, full.NumWorkers
		}
		return b
	}

	// Life before the crash: half the stream, durably logged. Automatic
	// compaction stays off so the abandoned persister has no background
	// compaction racing the recovery below — a real crash kills that
	// goroutine, but an in-process demo merely leaks it.
	p, rec, err := wal.Open(base, fresh, wal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := stream.NewService(rec.Store, stream.Config{
		Method: direct.NewMV(), Options: ti.Options{Seed: 1}, Persist: p,
	})
	if err != nil {
		log.Fatal(err)
	}
	for k := 0; k < batches/2; k++ {
		if _, err := svc.Ingest(batch(k)); err != nil {
			log.Fatal(err)
		}
	}
	preCrash, _ := rec.Store.Snapshot()
	preVersion := rec.Store.Version()
	fmt.Printf("ingested %d/%d batches (%d answers, version %d), then CRASH — no clean shutdown\n",
		batches/2, batches, len(preCrash.Answers), preVersion)
	// The crash: the service and persister are simply abandoned.

	// The next boot replays snapshot + WAL to a bit-identical store.
	p2, rec2, err := wal.Open(base, fresh, wal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	recovered, _ := rec2.Store.Snapshot()
	fmt.Printf("recovered: snapshot@%d + %d WAL records → version %d, %d answers (bit-identical: %v)\n",
		rec2.SnapshotVersion, rec2.Replayed, rec2.Store.Version(), len(recovered.Answers),
		rec2.Store.Version() == preVersion && identicalAnswers(recovered, preCrash))

	// Finish the stream on the recovered store.
	svc2, err := stream.NewService(rec2.Store, stream.Config{
		Method: direct.NewMV(), Options: ti.Options{Seed: 1}, Persist: p2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc2.Close()
	for k := batches / 2; k < batches; k++ {
		if _, err := svc2.Ingest(batch(k)); err != nil {
			log.Fatal(err)
		}
	}
	if err := p2.Close(); err != nil {
		log.Fatal(err)
	}

	streamed, _, err := svc2.Truths()
	if err != nil {
		log.Fatal(err)
	}
	oneShot, err := direct.NewMV().Infer(full, ti.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	for i := range streamed {
		if streamed[i] == oneShot.Truth[i] {
			agree++
		}
	}
	fmt.Printf("crash-recovered stream vs one-shot MV: %d/%d truths bit-identical\n", agree, len(streamed))
}

// identicalAnswers reports whether two datasets hold the same answers
// in the same global order.
func identicalAnswers(a, b *dataset.Dataset) bool {
	if len(a.Answers) != len(b.Answers) {
		return false
	}
	for i := range a.Answers {
		if a.Answers[i] != b.Answers[i] {
			return false
		}
	}
	return true
}
