// Assignment: close the loop between task assignment and truth
// inference. A simulated crowd of noisy workers repeatedly asks the
// assignment ledger which task to answer next; every answer streams into
// a live inference service whose refreshed posterior steers the next
// assignment. The three policies are compared at the same answer
// budgets over the same hidden crowd — uncertainty routing (QASCA-style
// expected-accuracy gain) squeezes more accuracy out of every budget
// than random assignment.
//
// The same ledger powers the cmd/truthserve HTTP endpoints
// (GET /v1/assign, POST /v1/complete, GET /v1/assignstats); here it is
// driven directly through the Go API.
//
//	go run ./examples/assignment
package main

import (
	"fmt"
	"log"

	"truthinference/internal/simulate/closedloop"
)

func main() {
	cfg := closedloop.LoopConfig{
		Tasks:      300,
		Workers:    40,
		Choices:    2,
		Seed:       5,
		Redundancy: 9,
		// One in ten workers walks away from an assignment: those leases
		// expire and the ledger re-issues the task to someone else.
		AbandonProb: 0.1,
	}
	policies := []string{"random", "least-answered", "uncertainty"}
	budgets := []int{300, 600, 900, 1500}

	fmt.Printf("closed-loop accuracy vs budget (%d tasks, %d workers, crowd accuracy 0.55–0.8)\n\n",
		cfg.Tasks, cfg.Workers)
	fmt.Printf("%-8s", "budget")
	for _, p := range policies {
		fmt.Printf("  %-14s", p)
	}
	fmt.Println()

	rows, err := closedloop.AccuracyVsBudget(cfg, policies, budgets)
	if err != nil {
		log.Fatal(err)
	}
	for i, row := range rows {
		fmt.Printf("%-8d", budgets[i])
		for _, r := range row {
			fmt.Printf("  %-14s", fmt.Sprintf("%.4f", r.Accuracy))
		}
		fmt.Println()
	}

	// Show the lease machinery at work: the last (biggest-budget) runs
	// all had abandoning workers, so leases expired and were re-issued.
	last := rows[len(rows)-1]
	fmt.Println()
	for _, r := range last {
		fmt.Printf("%-14s issued=%-5d collected=%-5d expired=%-4d rounds=%d\n",
			r.Policy, r.Issued, r.Collected, r.Expired, r.Rounds)
	}
}
