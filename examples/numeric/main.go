// Numeric tasks: the N_Emotion workload (§6.1.1) — workers score the
// emotional intensity of texts in [-100, 100] — evaluated with MAE and
// RMSE (Eq. 5), reproducing the paper's surprising numeric finding: the
// plain Mean beats every worker-modeling method (§6.3.1, Figure 6).
//
//	go run ./examples/numeric
package main

import (
	"fmt"
	"log"
	"sort"

	ti "truthinference"
)

func main() {
	d := ti.SimulateDataset(ti.NEmotion, 5)
	fmt.Printf("dataset %s: %d texts × %d scores each from %d workers\n\n",
		d.Name, d.NumTasks, int(d.Redundancy()), d.NumWorkers)

	type row struct {
		method    string
		mae, rmse float64
	}
	var rows []row
	for _, m := range ti.MethodsForType(ti.Numeric) {
		res, err := m.Infer(d, ti.Options{Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{m.Name(), ti.MAE(res.Truth, d.Truth), ti.RMSE(res.Truth, d.Truth)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].rmse < rows[j].rmse })

	fmt.Printf("%-8s %8s %8s\n", "Method", "MAE", "RMSE")
	for _, r := range rows {
		fmt.Printf("%-8s %8.2f %8.2f\n", r.method, r.mae, r.rmse)
	}

	fmt.Println()
	fmt.Println("Why Mean wins (§6.3.1): every worker carries a systematic bias and")
	fmt.Println("every task a shared ambiguity offset. Averaging many workers cancels")
	fmt.Println("the biases; quality-weighting (PM, CATD) concentrates weight on a few")
	fmt.Println("low-variance workers whose biases then do not cancel.")
}
