module truthinference

go 1.22
