package assign

import (
	"encoding/json"
	"testing"
	"time"
)

func TestSpecValidateAndBuild(t *testing.T) {
	bad := []Spec{
		{},                // no policy
		{Policy: "qasca"}, // unknown policy
		{Policy: "random", Redundancy: -1},
		{Policy: "random", Budget: -1},
		{Policy: "random", LeaseTTL: Duration(-time.Second)},
		{Policy: "random", PriorQuality: -0.1},
		{Policy: "random", PriorQuality: 1},
	}
	for _, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("Spec %+v validated", sp)
		}
		if _, err := sp.Ledger(newFakeSource(0, 2), 1, nil); err == nil {
			t.Errorf("Spec %+v built a ledger", sp)
		}
	}

	sp := Spec{Policy: "least-answered", Redundancy: 2, Budget: 9, LeaseTTL: Duration(45 * time.Second)}
	l, err := sp.Ledger(newFakeSource(3, 2), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Policy != "least-answered" || st.Redundancy != 2 || st.Budget != 9 || st.LeaseTTLMS != 45000 {
		t.Fatalf("built ledger stats = %+v", st)
	}
}

func TestDurationJSON(t *testing.T) {
	// String form round-trips through the canonical representation.
	var d Duration
	for raw, want := range map[string]time.Duration{
		`"90s"`:   90 * time.Second,
		`"2m30s"`: 150 * time.Second,
		`1000000`: time.Millisecond, // bare nanoseconds
	} {
		if err := json.Unmarshal([]byte(raw), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if time.Duration(d) != want {
			t.Errorf("unmarshal %s = %v, want %v", raw, time.Duration(d), want)
		}
	}
	out, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(out) != `"1m30s"` {
		t.Errorf("marshal = %s, %v", out, err)
	}
	for _, raw := range []string{`"soonish"`, `true`, `{}`, `"12"`} {
		if err := json.Unmarshal([]byte(raw), &d); err == nil {
			t.Errorf("unmarshal %s accepted", raw)
		}
	}
}
