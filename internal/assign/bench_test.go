package assign

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// BenchmarkAssignPolicies measures one full assign+complete round trip
// per policy over a mid-sized task board with a live posterior — the
// control-plane hot path a serving daemon pays per worker request. The
// CI bench job tracks it in the benchmark artifact.
func BenchmarkAssignPolicies(b *testing.B) {
	const tasks = 2048
	for _, name := range PolicyNames() {
		b.Run(name, func(b *testing.B) {
			src := newFakeSource(tasks, 4)
			src.post = make([][]float64, tasks)
			for i := range src.post {
				p := 0.25 + 0.7*float64(i%13)/13
				rest := (1 - p) / 3
				src.post[i] = []float64{p, rest, rest, rest}
			}
			pol, err := ParsePolicy(name)
			if err != nil {
				b.Fatal(err)
			}
			l, err := NewLedger(src, Config{
				Policy:     pol,
				Redundancy: 1 << 30, // never cap: steady-state scoring cost
				LeaseTTL:   time.Hour,
				Seed:       1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh worker id each round keeps self-exclusion from
				// draining the board while measuring the full scan.
				w := i
				lease, err := l.Assign(w)
				if errors.Is(err, ErrNoTask) {
					b.Fatal("board drained — raise redundancy")
				} else if err != nil {
					b.Fatal(err)
				}
				if err := l.Complete(lease.ID, w, nil); err != nil {
					b.Fatal(fmt.Errorf("complete: %w", err))
				}
			}
		})
	}
}
