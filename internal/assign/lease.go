package assign

import (
	"container/heap"
	"time"
)

// Lease is one outstanding assignment: the named worker holds task until
// Expires, after which the ledger reclaims it and may re-issue the task
// to a different worker. Lease ids are unique for the ledger's lifetime
// (an expired id is never reused), so a late Complete on a reclaimed
// lease fails instead of redeeming someone else's work.
type Lease struct {
	ID      uint64    `json:"lease_id"`
	Task    int       `json:"task"`
	Worker  int       `json:"worker"`
	Expires time.Time `json:"expires_at"`
	// Golden marks a qualification lease: the task carries recorded
	// ground truth and the answer will be graded by the defense layer
	// (see DefenseSpec.GoldenPass).
	Golden bool `json:"golden,omitempty"`
}

// expiryEntry is one heap slot. Entries are never removed eagerly on
// Complete — the heap pops them lazily when their deadline passes and
// skips ids no longer in the live lease map — so Complete stays O(1).
type expiryEntry struct {
	id      uint64
	expires time.Time
}

// expiryHeap is a min-heap of lease deadlines (earliest first).
type expiryHeap []expiryEntry

func (h expiryHeap) Len() int            { return len(h) }
func (h expiryHeap) Less(i, j int) bool  { return h[i].expires.Before(h[j].expires) }
func (h expiryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)         { *h = append(*h, x.(expiryEntry)) }
func (h *expiryHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *expiryHeap) push(e expiryEntry) { heap.Push(h, e) }
func (h *expiryHeap) pop() expiryEntry   { return heap.Pop(h).(expiryEntry) }
