package assign

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"truthinference/internal/api"
)

// The HTTP face of the assignment ledger, mounted by cmd/truthserve next
// to the inference API:
//
//	GET  /v1/assign?worker=3   lease the best task for worker 3
//	POST /v1/complete          {"lease_id":1,"worker":3,"value":1}
//	GET  /v1/assignstats       ledger statistics
//
// Completing a lease delivers the answer into the serving store (through
// the IngestFunc the daemon wires in) and retires the lease atomically:
// either both happen or neither.
//
// Status mapping: no eligible task → 404, budget exhausted → 409,
// unknown/expired lease → 410, wrong or banned worker → 403, malformed
// request or rejected answer → 400/422. Errors use the shared envelope
// from internal/api.

// IngestFunc delivers one completed answer into the serving store; the
// daemon adapts stream.Service.Ingest to it. A delivery that fails
// because the store has been closed (its project was deleted) should
// return an error wrapping ErrStoreClosed so the completion maps to
// HTTP 410 rather than a misleading rejected-answer 422.
type IngestFunc func(task, worker int, value float64) (version uint64, err error)

// ErrStoreClosed marks a completion whose answer could not be delivered
// because the serving store is closed (the project was deleted while
// the worker held the lease).
var ErrStoreClosed = errors.New("assign: serving store is closed")

// Handler returns the assignment API over the ledger. ingest must be
// non-nil; it runs under the ledger lock when a lease is redeemed.
func Handler(l *Ledger, ingest IngestFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/assign", func(w http.ResponseWriter, r *http.Request) {
		worker, err := strconv.Atoi(r.URL.Query().Get("worker"))
		if err != nil {
			api.Error(w, http.StatusBadRequest, fmt.Errorf("worker id %q is not an integer", r.URL.Query().Get("worker")))
			return
		}
		lease, err := l.Assign(worker)
		if err != nil {
			api.Error(w, assignStatus(err), err)
			return
		}
		api.WriteJSON(w, http.StatusOK, lease)
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req api.CompleteRequest
		if !api.DecodeJSON(w, r, api.MaxAdminBody, &req) {
			return
		}
		var version uint64
		// The value-carrying completion path lets the defense layer grade
		// golden answers and record them for collusion scoring.
		err := l.CompleteValue(req.LeaseID, req.Worker, req.Value, func(task int) error {
			v, ierr := ingest(task, req.Worker, req.Value)
			version = v
			return ierr
		})
		if err != nil {
			api.Error(w, assignStatus(err), err)
			return
		}
		api.WriteJSON(w, http.StatusOK, api.CompleteResponse{
			LeaseID: req.LeaseID,
			Version: version,
		})
	})
	mux.HandleFunc("GET /v1/assignstats", func(w http.ResponseWriter, _ *http.Request) {
		api.WriteJSON(w, http.StatusOK, l.Stats())
	})
	return mux
}

// assignStatus maps ledger errors onto HTTP statuses.
func assignStatus(err error) int {
	switch {
	case errors.Is(err, ErrNoTask):
		return http.StatusNotFound
	case errors.Is(err, ErrBudgetExhausted):
		return http.StatusConflict
	case errors.Is(err, ErrLeaseNotFound):
		return http.StatusGone
	case errors.Is(err, ErrStoreClosed):
		return http.StatusGone
	case errors.Is(err, ErrLeaseWorker):
		return http.StatusForbidden
	case errors.Is(err, ErrWorkerBanned):
		return http.StatusForbidden
	default:
		// A rejected answer (delivery failure) or an invalid worker id.
		return http.StatusUnprocessableEntity
	}
}
