package assign

import (
	"truthinference/internal/telemetry"
)

// Metrics is the ledger's instrument bundle, bound to one tenant at
// construction. A nil *Metrics is inert — every observer no-ops — so
// uninstrumented ledgers (tests, the closed-loop simulator) pay one
// branch per event.
type Metrics struct {
	issued          *telemetry.Counter
	completed       *telemetry.Counter
	expired         *telemetry.Counter
	outstanding     *telemetry.Gauge
	budgetRemaining *telemetry.Gauge

	// Defense instruments (see defense.go): bans by reason, the
	// quarantined-worker gauge (banned + down-weighted), collusion pair
	// flags, and golden-task grading outcomes.
	bans           *telemetry.CounterVec
	tenant         string
	quarantined    *telemetry.Gauge
	collusionFlags *telemetry.Counter
	goldenPassed   *telemetry.Counter
	goldenFailed   *telemetry.Counter
}

// NewMetrics registers the assignment instruments on reg with a
// per-tenant label. Returns nil — an inert bundle — for a nil registry.
func NewMetrics(reg *telemetry.Registry, tenant string) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		issued: reg.Counter("truthserve_assign_leases_issued_total",
			"Leases issued to workers, by tenant.",
			"tenant").With(tenant),
		completed: reg.Counter("truthserve_assign_leases_completed_total",
			"Leases redeemed with a delivered answer, by tenant.",
			"tenant").With(tenant),
		expired: reg.Counter("truthserve_assign_leases_expired_total",
			"Leases reclaimed after their TTL passed, by tenant.",
			"tenant").With(tenant),
		outstanding: reg.Gauge("truthserve_assign_leases_outstanding",
			"Live leases currently held by workers, by tenant.",
			"tenant").With(tenant),
		budgetRemaining: reg.Gauge("truthserve_assign_budget_remaining",
			"Uncommitted answer budget (-1 when unlimited), by tenant.",
			"tenant").With(tenant),
		bans: reg.Counter("truthserve_assign_worker_bans_total",
			"Workers banned by the defense layer, by tenant and reason (golden, quality, collusion).",
			"tenant", "reason"),
		tenant: tenant,
		quarantined: reg.Gauge("truthserve_assign_workers_quarantined",
			"Workers currently banned or down-weighted by the defense layer, by tenant.",
			"tenant").With(tenant),
		collusionFlags: reg.Counter("truthserve_assign_collusion_flags_total",
			"Distinct worker pairs flagged by the collusion detector, by tenant (each pair counts twice, once per member).",
			"tenant").With(tenant),
		goldenPassed: reg.Counter("truthserve_assign_golden_passed_total",
			"Golden-task answers graded correct, by tenant.",
			"tenant").With(tenant),
		goldenFailed: reg.Counter("truthserve_assign_golden_failed_total",
			"Golden-task answers graded wrong, by tenant.",
			"tenant").With(tenant),
	}
}

func (m *Metrics) observeIssued() {
	if m == nil {
		return
	}
	m.issued.Inc()
}

func (m *Metrics) observeCompleted() {
	if m == nil {
		return
	}
	m.completed.Inc()
}

func (m *Metrics) observeExpired(n int) {
	if m == nil || n == 0 {
		return
	}
	m.expired.Add(uint64(n))
}

func (m *Metrics) observeState(outstanding, budgetRemaining int) {
	if m == nil {
		return
	}
	m.outstanding.Set(float64(outstanding))
	m.budgetRemaining.Set(float64(budgetRemaining))
}

func (m *Metrics) observeBan(reason string) {
	if m == nil {
		return
	}
	m.bans.With(m.tenant, reason).Inc()
	m.quarantined.Add(1)
}

func (m *Metrics) observeDownWeighted() {
	if m == nil {
		return
	}
	m.quarantined.Add(1)
}

func (m *Metrics) observeCollusionFlag() {
	if m == nil {
		return
	}
	m.collusionFlags.Inc()
}

func (m *Metrics) observeGolden(passed bool) {
	if m == nil {
		return
	}
	if passed {
		m.goldenPassed.Inc()
		return
	}
	m.goldenFailed.Inc()
}
