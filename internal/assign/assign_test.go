package assign

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeSource is an in-memory Source with settable serving state.
type fakeSource struct {
	mu        sync.Mutex
	tasks     int
	workers   int
	ell       int
	storeVer  uint64
	resultVer uint64
	counts    []int
	pairs     [][2]int // existing (task, worker) answers for ForEachAnswer
	post      [][]float64
	postErr   error
	quality   map[int]float64
}

func newFakeSource(tasks, ell int) *fakeSource {
	return &fakeSource{
		tasks: tasks, ell: ell,
		storeVer: 1, resultVer: 1,
		counts:  make([]int, tasks),
		quality: map[int]float64{},
	}
}

func (f *fakeSource) Dims() (int, int, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var answers int
	for _, c := range f.counts {
		answers += c
	}
	return f.tasks, f.workers, answers
}
func (f *fakeSource) StoreVersion() uint64 { f.mu.Lock(); defer f.mu.Unlock(); return f.storeVer }
func (f *fakeSource) ResultVersion() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resultVer
}
func (f *fakeSource) TaskAnswerCounts() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.counts...)
}
func (f *fakeSource) Posteriors() ([][]float64, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.postErr != nil {
		return nil, 0, f.postErr
	}
	out := make([][]float64, len(f.post))
	for i, row := range f.post {
		out[i] = append([]float64(nil), row...)
	}
	return out, f.resultVer, nil
}
func (f *fakeSource) Entropies() ([]float64, uint64, error) {
	post, v, err := f.Posteriors()
	if err != nil {
		return nil, 0, err
	}
	ent := make([]float64, len(post))
	for i, row := range post {
		for _, p := range row {
			if p > 0 {
				ent[i] -= p * math.Log(p)
			}
		}
	}
	return ent, v, nil
}
func (f *fakeSource) WorkerQuality(w int) (float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	q, ok := f.quality[w]
	if !ok {
		return 0, errors.New("no estimate")
	}
	return q, nil
}
func (f *fakeSource) NumChoices() int { return f.ell }
func (f *fakeSource) ForEachAnswer(fn func(task, worker int)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range f.pairs {
		fn(p[0], p[1])
	}
}

// addAnswer records one collected answer and bumps the store version.
func (f *fakeSource) addAnswer(task int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[task]++
	f.storeVer++
}

// fakeClock is a deterministic settable clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func mustLedger(t *testing.T, src Source, cfg Config) *Ledger {
	t.Helper()
	l, err := NewLedger(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"random", "least-answered", "uncertainty"} {
		p, err := ParsePolicy(name)
		if err != nil || p.Name() != name {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	_, err := ParsePolicy("qasca")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-policy error does not list %q: %v", name, err)
		}
	}
}

func TestNewLedgerValidation(t *testing.T) {
	src := newFakeSource(2, 2)
	pol := Random{}
	for _, cfg := range []Config{
		{},                                    // no policy
		{Policy: pol, Redundancy: -1},         // negative redundancy
		{Policy: pol, Budget: -3},             // negative budget
		{Policy: pol, LeaseTTL: -time.Second}, // negative TTL
	} {
		if _, err := NewLedger(src, cfg); err == nil {
			t.Errorf("NewLedger accepted invalid config %+v", cfg)
		}
	}
	if _, err := NewLedger(nil, Config{Policy: pol}); err == nil {
		t.Error("NewLedger accepted nil source")
	}
}

func TestExpectedAccuracyGain(t *testing.T) {
	uniform := []float64{0.5, 0.5}
	confident := []float64{0.95, 0.05}
	// Chance-level worker: no information, zero gain.
	if g := ExpectedAccuracyGain(uniform, 0.5); g != 0 {
		t.Errorf("gain at chance quality = %v, want 0", g)
	}
	// The gain grows with worker quality...
	g7, g9 := ExpectedAccuracyGain(uniform, 0.7), ExpectedAccuracyGain(uniform, 0.9)
	if !(g9 > g7 && g7 > 0) {
		t.Errorf("gain not increasing in quality: q=0.7→%v, q=0.9→%v", g7, g9)
	}
	// ...and an uncertain task gains more than a confident one.
	if gu, gc := ExpectedAccuracyGain(uniform, 0.8), ExpectedAccuracyGain(confident, 0.8); gu <= gc {
		t.Errorf("uniform gain %v not above confident gain %v", gu, gc)
	}
	// Never negative, even where one answer cannot flip the argmax.
	if g := ExpectedAccuracyGain([]float64{1, 0}, 0.9); g < 0 {
		t.Errorf("gain on a settled posterior = %v, want ≥ 0", g)
	}
}

func TestQualityToProb(t *testing.T) {
	cases := []struct {
		q    float64
		ell  int
		want float64
	}{
		{0.8, 2, 0.8},
		{math.NaN(), 2, 0.5}, // no estimate → chance
		{0.1, 4, 0.25},       // sub-chance clamps to chance
		{3.7, 2, 1 - 1e-9},   // PM/CATD-style weight clamps below 1
		{-1, 3, 1 / 3.0},     // negative clamps to chance
	}
	for _, c := range cases {
		if got := QualityToProb(c.q, c.ell); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QualityToProb(%v, %d) = %v, want %v", c.q, c.ell, got, c.want)
		}
	}
}

func TestUncertaintyRoutesToUncertainTask(t *testing.T) {
	src := newFakeSource(3, 2)
	src.post = [][]float64{{0.99, 0.01}, {0.5, 0.5}, {0.9, 0.1}}
	src.counts = []int{3, 2, 3} // the load backing each row's confidence
	src.quality[7] = 0.8
	l := mustLedger(t, src, Config{Policy: Uncertainty{}, Redundancy: 5})
	lease, err := l.Assign(7)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Task != 1 {
		t.Errorf("uncertainty assigned task %d, want the 0.5/0.5 task 1", lease.Task)
	}
}

func TestLeastAnsweredBalances(t *testing.T) {
	src := newFakeSource(3, 2)
	src.counts = []int{2, 0, 1}
	l := mustLedger(t, src, Config{Policy: LeastAnswered{}, Redundancy: 5})
	lease, err := l.Assign(0)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Task != 1 {
		t.Errorf("least-answered assigned task %d, want the empty task 1", lease.Task)
	}
	// The outstanding lease counts as load: task 1 and 2 now tie at load
	// 1, and ties go to the lowest id.
	lease2, err := l.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	if lease2.Task != 1 {
		t.Errorf("second assignment got task %d, want 1 (tie at load 1, lowest id wins)", lease2.Task)
	}
	// With both leases outstanding the load is [2,2,1]: the next worker
	// lands on task 2 — outstanding leases really do count.
	lease3, err := l.Assign(2)
	if err != nil {
		t.Fatal(err)
	}
	if lease3.Task != 2 {
		t.Errorf("third assignment got task %d, want 2 (leases count as load)", lease3.Task)
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int {
		src := newFakeSource(20, 2)
		l := mustLedger(t, src, Config{Policy: Random{}, Redundancy: 1, Seed: seed})
		var tasks []int
		for w := 0; w < 10; w++ {
			lease, err := l.Assign(w)
			if err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, lease.Task)
		}
		return tasks
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %v vs %v", i, a, b)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 issued identical sequences (hash not seed-dependent?)")
	}
}

func TestSelfExclusion(t *testing.T) {
	src := newFakeSource(2, 2)
	l := mustLedger(t, src, Config{Policy: LeastAnswered{}, Redundancy: 10})
	seenTasks := map[int]bool{}
	for i := 0; i < 2; i++ {
		lease, err := l.Assign(5)
		if err != nil {
			t.Fatal(err)
		}
		if seenTasks[lease.Task] {
			t.Fatalf("worker 5 assigned task %d twice", lease.Task)
		}
		seenTasks[lease.Task] = true
	}
	if _, err := l.Assign(5); !errors.Is(err, ErrNoTask) {
		t.Fatalf("third assignment for worker 5 = %v, want ErrNoTask", err)
	}
	// A different worker still gets tasks.
	if _, err := l.Assign(6); err != nil {
		t.Fatalf("worker 6 blocked: %v", err)
	}
}

func TestRedundancyCap(t *testing.T) {
	src := newFakeSource(1, 2)
	src.counts = []int{1} // one answer already collected out of band
	l := mustLedger(t, src, Config{Policy: LeastAnswered{}, Redundancy: 2})
	if _, err := l.Assign(0); err != nil {
		t.Fatal(err)
	}
	// collected(1) + outstanding(1) == cap: no worker can get the task.
	if _, err := l.Assign(1); !errors.Is(err, ErrNoTask) {
		t.Fatalf("assignment beyond the redundancy cap = %v, want ErrNoTask", err)
	}
}

func TestBudgetCountsOutstandingAndCompleted(t *testing.T) {
	src := newFakeSource(10, 2)
	l := mustLedger(t, src, Config{Policy: LeastAnswered{}, Redundancy: 5, Budget: 2})
	l1, err := l.Assign(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Assign(1); err != nil {
		t.Fatal(err)
	}
	// Two outstanding leases fully commit the budget of 2.
	if _, err := l.Assign(2); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("assignment beyond budget = %v, want ErrBudgetExhausted", err)
	}
	// Completing does not free budget — the answer is spent.
	if err := l.Complete(l1.ID, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Assign(3); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("assignment after completion = %v, want ErrBudgetExhausted", err)
	}
	st := l.Stats()
	if st.BudgetRemaining != 0 {
		t.Errorf("BudgetRemaining = %d, want 0", st.BudgetRemaining)
	}
}

func TestLeaseExpiryReclaimAndBudgetReturn(t *testing.T) {
	src := newFakeSource(1, 2)
	clock := newFakeClock()
	l := mustLedger(t, src, Config{
		Policy: LeastAnswered{}, Redundancy: 1, Budget: 1,
		LeaseTTL: time.Minute, Now: clock.Now,
	})
	lease, err := l.Assign(0)
	if err != nil {
		t.Fatal(err)
	}
	// Budget and redundancy are fully committed while the lease lives.
	if _, err := l.Assign(1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted while lease outstanding, got %v", err)
	}
	clock.Advance(time.Minute) // exactly the deadline: expired (not After)
	// The abandoned lease is reclaimed: budget returns, the task is
	// re-issuable — but not to the worker who abandoned it.
	lease2, err := l.Assign(1)
	if err != nil {
		t.Fatalf("assignment after reclaim: %v", err)
	}
	if lease2.Task != lease.Task {
		t.Errorf("reclaimed task %d re-issued as %d", lease.Task, lease2.Task)
	}
	if lease2.ID == lease.ID {
		t.Error("lease id reused after expiry")
	}
	// The original worker's late Complete must fail — the task is leased
	// to someone else and the budget cannot admit both answers.
	if err := l.Complete(lease.ID, 0, nil); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("late Complete on expired lease = %v, want ErrLeaseNotFound", err)
	}
	if st := l.Stats(); st.Expired != 1 {
		t.Errorf("Stats.Expired = %d, want 1", st.Expired)
	}
	// And the abandoning worker never sees the task again — even after
	// the replacement lease expires too.
	clock.Advance(2 * time.Minute)
	if _, err := l.Assign(0); !errors.Is(err, ErrNoTask) {
		t.Fatalf("abandoning worker re-assigned the task: %v", err)
	}
}

func TestCompleteValidation(t *testing.T) {
	src := newFakeSource(2, 2)
	l := mustLedger(t, src, Config{Policy: LeastAnswered{}})
	lease, err := l.Assign(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Complete(lease.ID, 4, nil); !errors.Is(err, ErrLeaseWorker) {
		t.Fatalf("Complete by wrong worker = %v, want ErrLeaseWorker", err)
	}
	if err := l.Complete(999, 3, nil); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("Complete of unknown lease = %v, want ErrLeaseNotFound", err)
	}
	// A failing delivery keeps the lease alive for a retry.
	boom := errors.New("store rejected the answer")
	if err := l.Complete(lease.ID, 3, func(int) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("failed delivery = %v, want the delivery error", err)
	}
	if err := l.Complete(lease.ID, 3, nil); err != nil {
		t.Fatalf("retry after failed delivery: %v", err)
	}
	// Double-complete fails: the lease was consumed.
	if err := l.Complete(lease.ID, 3, nil); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("double Complete = %v, want ErrLeaseNotFound", err)
	}
}

func TestCacheInvalidatesOnEpochBoundary(t *testing.T) {
	src := newFakeSource(2, 2)
	src.post = [][]float64{{0.5, 0.5}, {0.99, 0.01}}
	src.quality[0] = 0.9
	src.quality[1] = 0.9
	l := mustLedger(t, src, Config{Policy: Uncertainty{}, Redundancy: 10})
	if lease, _ := l.Assign(0); lease.Task != 0 {
		t.Fatalf("assigned task %d, want the uncertain task 0", lease.Task)
	}
	// Publish a new epoch in which the OTHER task is the uncertain one.
	// Without the version-keyed cache invalidation the ledger would keep
	// scoring from the stale posterior.
	src.mu.Lock()
	src.post = [][]float64{{0.99, 0.01}, {0.5, 0.5}}
	src.resultVer++
	src.mu.Unlock()
	if lease, _ := l.Assign(1); lease.Task != 1 {
		t.Fatalf("after epoch boundary assigned task %d, want newly-uncertain task 1", lease.Task)
	}
}

func TestStoreGrowthExtendsLedger(t *testing.T) {
	src := newFakeSource(1, 2)
	l := mustLedger(t, src, Config{Policy: LeastAnswered{}, Redundancy: 1})
	if _, err := l.Assign(0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Assign(1); !errors.Is(err, ErrNoTask) {
		t.Fatalf("want ErrNoTask on a full 1-task store, got %v", err)
	}
	// The store grows (a new task is posted): the ledger picks it up on
	// the next request via the store-version sync.
	src.mu.Lock()
	src.tasks = 2
	src.counts = append(src.counts, 0)
	src.storeVer++
	src.mu.Unlock()
	lease, err := l.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Task != 1 {
		t.Errorf("assigned task %d, want the new task 1", lease.Task)
	}
}

func TestStatsShape(t *testing.T) {
	src := newFakeSource(4, 2)
	src.post = [][]float64{{0.5, 0.5}, {0.5, 0.5}, {1, 0}, {1, 0}}
	l := mustLedger(t, src, Config{Policy: Uncertainty{}, Redundancy: 2, Budget: 10, LeaseTTL: time.Second})
	if _, err := l.Assign(0); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Policy != "uncertainty" || st.Redundancy != 2 || st.Budget != 10 {
		t.Errorf("config fields wrong: %+v", st)
	}
	if st.Outstanding != 1 || st.Issued != 1 || st.Completed != 0 {
		t.Errorf("lease accounting wrong: %+v", st)
	}
	if st.BudgetRemaining != 9 {
		t.Errorf("BudgetRemaining = %d, want 9", st.BudgetRemaining)
	}
	if st.EligibleTasks != 4 {
		t.Errorf("EligibleTasks = %d, want 4 (one lease on a cap-2 task)", st.EligibleTasks)
	}
	// Two uniform rows (ln 2 each) + two settled rows (0) → mean ln2/2.
	if want := math.Log(2) / 2; math.Abs(st.MeanEntropy-want) > 1e-12 {
		t.Errorf("MeanEntropy = %v, want %v", st.MeanEntropy, want)
	}
}

func TestNoPosteriorFallsBackToLeastAnswered(t *testing.T) {
	src := newFakeSource(3, 2)
	src.postErr = errors.New("no result yet")
	src.counts = []int{2, 0, 1}
	l := mustLedger(t, src, Config{Policy: Uncertainty{}, Redundancy: 5})
	lease, err := l.Assign(0)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Task != 1 {
		t.Errorf("cold-start uncertainty assigned task %d, want least-answered task 1", lease.Task)
	}
}

// TestSelfExclusionSeededFromExistingAnswers pins the recovery/preload
// contract: a worker whose answer is already in the store (ingested out
// of band, or recovered from a WAL after a restart) is never assigned
// that task, even though this ledger instance never leased it.
func TestSelfExclusionSeededFromExistingAnswers(t *testing.T) {
	src := newFakeSource(2, 2)
	src.counts = []int{1, 1}
	src.pairs = [][2]int{{0, 5}, {1, 5}, {0, 6}}
	l := mustLedger(t, src, Config{Policy: LeastAnswered{}, Redundancy: 10})
	// Worker 5 answered both tasks before this ledger existed.
	if _, err := l.Assign(5); !errors.Is(err, ErrNoTask) {
		t.Fatalf("worker 5 re-assigned a task it already answered: %v", err)
	}
	// Worker 6 answered only task 0: it must get task 1.
	lease, err := l.Assign(6)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Task != 1 {
		t.Fatalf("worker 6 assigned task %d, want 1 (it already answered 0)", lease.Task)
	}
	// A fresh worker sees everything.
	if _, err := l.Assign(7); err != nil {
		t.Fatal(err)
	}
}

func TestAssignRejectsNegativeWorker(t *testing.T) {
	l := mustLedger(t, newFakeSource(1, 2), Config{Policy: Random{}})
	if _, err := l.Assign(-1); err == nil {
		t.Fatal("negative worker id accepted")
	}
}

// TestLedgerDeterministicReplay pins the determinism contract the
// closed-loop simulation tests rely on: same seed, same request
// sequence, same source state → identical leases, for every policy.
func TestLedgerDeterministicReplay(t *testing.T) {
	for name := range policies {
		t.Run(name, func(t *testing.T) {
			run := func() []Lease {
				src := newFakeSource(30, 2)
				src.post = make([][]float64, 30)
				for i := range src.post {
					p := 0.5 + float64(i%7)/16
					src.post[i] = []float64{p, 1 - p}
				}
				pol, err := ParsePolicy(name)
				if err != nil {
					t.Fatal(err)
				}
				clock := newFakeClock()
				l := mustLedger(t, src, Config{Policy: pol, Redundancy: 2, Seed: 11, Now: clock.Now})
				var leases []Lease
				for i := 0; i < 40; i++ {
					w := i % 8
					lease, err := l.Assign(w)
					if err != nil {
						continue
					}
					leases = append(leases, lease)
					if i%3 == 0 {
						if err := l.Complete(lease.ID, w, func(task int) error {
							src.addAnswer(task)
							return nil
						}); err != nil {
							t.Fatal(err)
						}
					}
					clock.Advance(time.Second)
				}
				return leases
			}
			a, b := run(), run()
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("replay diverged:\n%v\n%v", a, b)
			}
		})
	}
}
