package assign

import (
	"fmt"
	"math"
	"sort"

	"truthinference/internal/randx"
)

// Policy scores candidate tasks for one assignment request. The ledger
// evaluates Score over every eligible task (under the redundancy cap,
// not yet seen by the worker) and issues a lease on the highest-scoring
// one, ties going to the lowest task id. Implementations must be pure
// functions of the request context — the ledger relies on that for its
// deterministic replayability.
type Policy interface {
	// Name is the registry key (`-assign-policy` value).
	Name() string
	// Score returns the desirability of routing task to the requesting
	// worker. Only the ordering within one request matters.
	Score(c *Request, task int) float64
}

// Request is the scoring context of one assignment request: the
// requesting worker, its estimated probability of answering correctly,
// and the ledger's cached view of the serving state. Posterior rows and
// entropies reflect the result version the ledger last synced at (an
// epoch boundary); Load is live redundancy accounting (collected answers
// plus outstanding leases per task).
type Request struct {
	// Worker is the requesting worker id.
	Worker int
	// Quality is the worker's probability of answering a task correctly,
	// mapped from the serving method's quality estimate and clamped to
	// [1/ℓ, 1); workers the method has no estimate for get the ledger's
	// prior.
	Quality float64
	// Seq is the ledger's assignment sequence number (the random policy
	// hashes it so consecutive requests spread instead of repeating).
	Seq uint64
	// Seed is the ledger seed; all policy randomness must derive from it.
	Seed int64
	// Choices is ℓ for categorical stores (0 for numeric).
	Choices int
	// Load[t] is task t's collected answers plus outstanding leases.
	Load []int
	// Posterior[t] is task t's posterior over the ℓ labels at the last
	// epoch boundary; nil when the serving method publishes none (numeric
	// methods, or an iterative method before its first epoch).
	Posterior [][]float64
	// Entropy[t] is the Shannon entropy of Posterior[t] (nats).
	Entropy []float64

	// uniform is the 1/ℓ row served for tasks beyond the last epoch's
	// posterior range; the ledger builds it once per request.
	uniform []float64
	// scratch is a ℓ-sized buffer policies may overwrite per Score call
	// (the ledger scores tasks one at a time under its lock).
	scratch []float64
}

// posteriorRow returns task's posterior row, or the uniform row for
// tasks beyond the last epoch's range (new tasks are maximally
// uncertain). It returns nil when no posterior is available at all.
func (c *Request) posteriorRow(task int) []float64 {
	if c.Posterior == nil {
		return nil
	}
	if task < len(c.Posterior) {
		return c.Posterior[task]
	}
	return c.uniform
}

// ---------------------------------------------------------------------------
// The three built-in policies.

// Random assigns uniformly at random among eligible tasks — the baseline
// every smarter policy must beat. The "randomness" is a deterministic
// hash of (seed, sequence, task), so a ledger replayed from the same
// seed issues the same leases.
type Random struct{}

func (Random) Name() string { return "random" }

func (Random) Score(c *Request, task int) float64 {
	return float64(randx.Mix(c.Seed, int64(c.Seq), int64(task)))
}

// LeastAnswered balances redundancy: it routes the worker to the task
// with the fewest collected-plus-outstanding answers, the classic
// round-robin task board.
type LeastAnswered struct{}

func (LeastAnswered) Name() string { return "least-answered" }

func (LeastAnswered) Score(c *Request, task int) float64 {
	return -float64(c.Load[task])
}

// Uncertainty is the QASCA-style expected-accuracy policy: it routes the
// worker to the task whose posterior the worker's answer is expected to
// sharpen the most. For posterior p over ℓ labels and a worker who is
// correct with probability q (errors uniform over the other labels), the
// score is the expected gain in the task's top posterior mass after one
// more answer:
//
//	gain(p, q) = Σ_a max_z p(z)·Pr(a|z) − max_z p(z),
//	Pr(a|z)    = q if a == z else (1−q)/(ℓ−1)
//
// which is 0 for an uninformative worker (q = 1/ℓ) and grows with both
// the posterior's entropy and the worker's quality — confident tasks and
// useless workers both score near zero.
//
// The served posterior is Laplace-smoothed by the task's current load n
// (collected answers + in-flight leases) before scoring:
//
//	p̃(z) = (n·p(z) + 1) / (n + ℓ)
//
// A raw posterior is overconfident at low redundancy — MV's vote share
// calls a task settled after a single answer, and one EM epoch can push
// a one-answer task to 0.99 — which would starve second opinions
// entirely. Smoothing restores the pseudo-count view: a task with no
// answers is exactly uniform, a 1–1 tie stays maximally uncertain, and
// the smoothing vanishes as real redundancy accumulates. Counting
// in-flight leases in n also tempers pile-ons: a task with three
// outstanding assignments already has three answers coming.
//
// When the serving method exposes no posterior at all (numeric stores,
// or an iterative method before its first epoch) the policy degrades to
// least-answered so cold starts still spread redundancy sensibly.
type Uncertainty struct{}

func (Uncertainty) Name() string { return "uncertainty" }

func (Uncertainty) Score(c *Request, task int) float64 {
	row := c.posteriorRow(task)
	if c.Choices < 2 || row == nil {
		return -float64(c.Load[task])
	}
	n := float64(c.Load[task])
	ell := len(row)
	if cap(c.scratch) < ell {
		c.scratch = make([]float64, ell)
	}
	smoothed := c.scratch[:ell]
	denom := n + float64(ell)
	for k, p := range row {
		smoothed[k] = (n*p + 1) / denom
	}
	return ExpectedAccuracyGain(smoothed, c.Quality)
}

// ExpectedAccuracyGain returns the expected increase of max_z p(z) after
// observing one answer from a worker with probability-correct q (errors
// uniform over the other ℓ−1 labels). It is ≥ 0 for q ≥ 1/ℓ and exactly
// 0 at q = 1/ℓ (an uninformative answer cannot sharpen the posterior).
func ExpectedAccuracyGain(p []float64, q float64) float64 {
	ell := len(p)
	if ell < 2 {
		return 0
	}
	off := (1 - q) / float64(ell-1)
	var cur float64
	for _, x := range p {
		if x > cur {
			cur = x
		}
	}
	var exp float64
	for a := 0; a < ell; a++ {
		// max_z p(z)·Pr(a|z): the top joint mass if the worker answers a.
		var best float64
		for z := 0; z < ell; z++ {
			pr := off
			if a == z {
				pr = q
			}
			if j := p[z] * pr; j > best {
				best = j
			}
		}
		exp += best
	}
	gain := exp - cur
	if gain < 0 {
		// Guard against float rounding; the true gain is never negative.
		return 0
	}
	return gain
}

// QualityToProb maps a method-specific worker-quality estimate onto a
// probability of answering correctly, clamped to [1/ℓ, 1−1e-9]. Scales
// above 1 (PM/CATD weights) clamp to the top; NaN or sub-chance values
// clamp to chance, so an adversarial estimate never inverts the score.
func QualityToProb(quality float64, ell int) float64 {
	lo := 0.0
	if ell >= 2 {
		lo = 1 / float64(ell)
	}
	if math.IsNaN(quality) || quality < lo {
		return lo
	}
	if hi := 1 - 1e-9; quality > hi {
		return hi
	}
	return quality
}

// policies is the registry behind ParsePolicy and the -assign-policy flag.
var policies = map[string]func() Policy{
	"random":         func() Policy { return Random{} },
	"least-answered": func() Policy { return LeastAnswered{} },
	"uncertainty":    func() Policy { return Uncertainty{} },
}

// PolicyNames lists the registered policy names, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(policies))
	for n := range policies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParsePolicy resolves a policy name; an unknown name errors with the
// full registry so a flag typo is immediately actionable.
func ParsePolicy(name string) (Policy, error) {
	if mk, ok := policies[name]; ok {
		return mk(), nil
	}
	return nil, fmt.Errorf("assign: unknown policy %q (valid: %v)", name, PolicyNames())
}
