// Package assign is the online task-assignment subsystem: the control
// plane that decides which task a requesting worker should answer next,
// closing the loop the paper (Zheng et al., PVLDB'17) frames alongside
// truth inference. A Ledger hands out time-limited task leases scored by
// a pluggable Policy — random, least-answered redundancy balancing, or
// QASCA-style uncertainty routing driven by the serving method's
// posterior — under three safety rails:
//
//   - a per-task redundancy cap (collected answers + outstanding leases
//     never exceed it),
//   - a global answer budget (completed + outstanding never exceed it,
//     so the crowd's spend is bounded even with leases in flight), and
//   - self-exclusion (a worker is never assigned the same task twice —
//     even after its earlier lease expired, and even when its earlier
//     answer arrived out of band: the ledger seeds its exclusion sets
//     from the store's existing answers at construction, so preloaded
//     datasets and daemon restarts are covered).
//
// The budget is accounted per ledger instance by default; with
// Config.ChargeExisting (the Spec config layer's default) it instead
// caps the store's live answer total, so the accounting is continuous
// across restarts and a durable deployment rebooted with the same
// config resumes with exactly the remaining budget.
//
// Leases expire after the configured TTL and are reclaimed lazily on the
// next ledger operation, so abandoned assignments flow back into the
// eligible pool instead of starving the task.
//
// The ledger reads the serving state through the Source interface, which
// *stream.Service satisfies structurally: posteriors and entropies are
// cached per result version and re-fetched only when a new inference
// epoch publishes (the epoch boundary), per-task answer counts re-sync
// whenever the store version moves, and worker qualities are read per
// request. cmd/truthserve mounts the HTTP face (GET /v1/assign,
// POST /v1/complete, GET /v1/assignstats) next to the inference API, and
// internal/simulate drives the whole loop end-to-end for policy
// comparison.
package assign

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Source is the serving-state surface the ledger scores from.
// *stream.Service implements it; tests use lightweight fakes.
type Source interface {
	// Dims returns the store's current task/worker/answer counts.
	Dims() (tasks, workers, answers int)
	// StoreVersion bumps on every ingested batch; the ledger re-syncs its
	// answer-count cache when it moves.
	StoreVersion() uint64
	// ResultVersion bumps when a new inference result publishes; the
	// ledger invalidates its cached posterior scores when it moves.
	ResultVersion() uint64
	// TaskAnswerCounts returns the per-task collected answer counts.
	TaskAnswerCounts() []int
	// Posteriors returns per-task posterior rows and the result version
	// they reflect; an error means no posterior is available (yet).
	Posteriors() ([][]float64, uint64, error)
	// Entropies returns the per-task posterior Shannon entropies.
	Entropies() ([]float64, uint64, error)
	// WorkerQuality returns the method's quality estimate for one worker.
	// Methods that model workers uniformly (MV/Mean/Median) report 1 for
	// every worker; routing then reduces to pure posterior uncertainty,
	// which matches those methods' equal-weight worker model. An error
	// (no estimate yet — e.g. an iterative method before its first
	// epoch, or an unseen worker) falls back to Config.PriorQuality.
	WorkerQuality(worker int) (float64, error)
	// NumChoices returns ℓ for categorical stores, 0 for numeric.
	NumChoices() int
	// ForEachAnswer streams every (task, worker) pair already in the
	// store. NewLedger seeds the self-exclusion sets from it, so workers
	// are never assigned tasks they answered out of band — in a
	// preloaded dataset, or before a daemon restart recovered the store.
	ForEachAnswer(f func(task, worker int))
}

// Defaults for Config zero values.
const (
	DefaultRedundancy   = 3
	DefaultLeaseTTL     = time.Minute
	DefaultPriorQuality = 0.7
)

// Config parameterizes a Ledger.
type Config struct {
	// Policy scores candidate tasks; required (see ParsePolicy).
	Policy Policy
	// Redundancy caps each task's collected answers + outstanding leases.
	// 0 means DefaultRedundancy; negative is rejected.
	Redundancy int
	// Budget caps the total answers the ledger will route (completed +
	// outstanding leases, plus — with ChargeExisting — answers already
	// in the store at construction). 0 means unlimited.
	Budget int
	// ChargeExisting makes Budget a cap on the store's *total* answers
	// (the live answer count plus outstanding leases) instead of on this
	// instance's routed spend. The accounting is continuous across
	// restarts: recovered, preloaded and directly-ingested answers all
	// count, so a durable deployment rebooted with the same config
	// resumes with exactly the remaining budget — no manual
	// remaining-budget arithmetic. The multi-tenant config layer
	// (assign.Spec) sets it unless Spec.NoChargeExisting opts back into
	// per-instance accounting.
	ChargeExisting bool
	// LeaseTTL is how long a worker holds an assignment before it is
	// reclaimed and re-issuable. 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Seed drives the random policy's hashing; ledgers with equal seeds
	// and request sequences issue identical leases.
	Seed int64
	// PriorQuality is the probability-correct assumed for workers the
	// serving method has no estimate for (new workers, or any worker
	// before the first epoch). 0 means DefaultPriorQuality.
	PriorQuality float64
	// Now is the ledger's clock; nil means time.Now. Tests and the
	// closed-loop simulator inject a fake clock for deterministic expiry.
	Now func() time.Time
	// Metrics, when non-nil, receives lease lifecycle and budget
	// observations (see NewMetrics). Nil disables instrumentation.
	Metrics *Metrics
	// Defense, when non-nil and enabled, arms the adversarial-crowd
	// defense layer: golden-task qualification gates, quality
	// change-detection, and pairwise collusion scoring (see DefenseSpec
	// in defense.go). Requires a categorical source.
	Defense *DefenseSpec
}

// Sentinel errors of the assignment API.
var (
	// ErrBudgetExhausted: the global answer budget is fully committed.
	ErrBudgetExhausted = errors.New("assign: answer budget exhausted")
	// ErrNoTask: no task is currently eligible for this worker (all are
	// at their redundancy cap or already seen by the worker).
	ErrNoTask = errors.New("assign: no eligible task for this worker")
	// ErrLeaseNotFound: the lease id is unknown — never issued, already
	// completed, or expired and reclaimed.
	ErrLeaseNotFound = errors.New("assign: lease unknown, completed, or expired")
	// ErrLeaseWorker: the lease exists but belongs to another worker.
	ErrLeaseWorker = errors.New("assign: lease is held by a different worker")
)

// Ledger is the concurrency-safe assignment state: outstanding leases,
// per-task redundancy accounting, per-worker exclusion sets, and the
// cached scoring view of the serving state. All methods are safe for
// concurrent use; a single mutex guards the state (assignment is a
// control-plane operation — the data-plane hot path, answer ingestion,
// never takes this lock).
type Ledger struct {
	cfg Config
	src Source
	now func() time.Time

	mu sync.Mutex
	// Per-task state, grown on demand to the store's task range.
	outstanding []int              // leases in flight per task
	seen        []map[int]struct{} // workers ever assigned each task (self-exclusion)

	// Cached serving state. counts re-syncs when the store version moves;
	// posterior/entropy re-sync when the result version moves (the epoch
	// boundary).
	counts    []int
	countsVer uint64
	countsOK  bool
	post      [][]float64
	entropy   []float64
	postVer   uint64
	postOK    bool
	uniform   []float64

	leases map[uint64]Lease
	expiry expiryHeap
	// issued counts successful assignments; it doubles as the lease-id
	// counter (ids are 1-based, so id == issued after the increment) and
	// as the random policy's stream position (0-based, before it).
	issued   uint64
	redeemed uint64
	expired  uint64

	// def is the defense layer's state (nil when disabled); see
	// defense.go.
	def *defense
}

// budgetCommittedLocked returns the spend counted against the budget:
// with ChargeExisting, the store's live answer total (recovered,
// preloaded, direct and routed alike) plus outstanding leases; without
// it, the legacy per-instance count of routed answers.
func (l *Ledger) budgetCommittedLocked() int {
	if l.cfg.ChargeExisting {
		_, _, answers := l.src.Dims()
		return answers + len(l.leases)
	}
	return int(l.redeemed) + len(l.leases)
}

// NewLedger validates the config and builds an empty ledger over the
// source.
func NewLedger(src Source, cfg Config) (*Ledger, error) {
	if src == nil {
		return nil, errors.New("assign: Source is required")
	}
	if cfg.Policy == nil {
		return nil, errors.New("assign: Config.Policy is required (see ParsePolicy)")
	}
	if cfg.Redundancy < 0 {
		return nil, fmt.Errorf("assign: negative redundancy %d", cfg.Redundancy)
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("assign: negative budget %d", cfg.Budget)
	}
	if cfg.LeaseTTL < 0 {
		return nil, fmt.Errorf("assign: negative lease TTL %v", cfg.LeaseTTL)
	}
	if cfg.Redundancy == 0 {
		cfg.Redundancy = DefaultRedundancy
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.PriorQuality == 0 {
		cfg.PriorQuality = DefaultPriorQuality
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	ell := src.NumChoices()
	l := &Ledger{
		cfg:    cfg,
		src:    src,
		now:    now,
		leases: map[uint64]Lease{},
	}
	if ell >= 2 {
		l.uniform = make([]float64, ell)
		for i := range l.uniform {
			l.uniform[i] = 1 / float64(ell)
		}
	}
	// Seed the self-exclusion sets from whatever the store already holds
	// (a preloaded dataset, or a recovered snapshot+WAL after a restart):
	// "a worker never sees a task twice" covers answers the ledger did
	// not route, too.
	tasks, _, _ := src.Dims()
	l.outstanding = make([]int, tasks)
	l.seen = make([]map[int]struct{}, tasks)
	src.ForEachAnswer(func(task, worker int) {
		if task < 0 || task >= len(l.seen) || worker < 0 {
			return
		}
		if l.seen[task] == nil {
			l.seen[task] = map[int]struct{}{}
		}
		l.seen[task][worker] = struct{}{}
	})
	if cfg.Defense.Enabled() {
		def, err := newDefense(*cfg.Defense, ell)
		if err != nil {
			return nil, err
		}
		l.def = def
		// Defense state rebuilds from the store like the exclusion sets:
		// the golden pool from recorded truth, then pass/fail tallies and
		// the collusion record replayed from the stored answers — so a
		// worker qualified (or banned) before a restart stays so after.
		l.refreshGoldenLocked()
		if avs, ok := src.(AnswerValueSource); ok {
			avs.ForEachAnswerValue(func(task, worker int, value float64) {
				if task < 0 || worker < 0 {
					return
				}
				l.recordLocked(task, worker, value)
			})
		}
	}
	return l, nil
}

// Policy returns the ledger's scoring policy.
func (l *Ledger) Policy() Policy { return l.cfg.Policy }

// Assign picks the best eligible task for the worker and issues a lease
// on it. It returns ErrBudgetExhausted when the global budget is fully
// committed and ErrNoTask when every task is at its redundancy cap or
// already seen by this worker (a later reclaim or ingest can make tasks
// eligible again — except for seen ones, which are excluded forever).
func (l *Ledger) Assign(worker int) (Lease, error) {
	if worker < 0 {
		return Lease{}, fmt.Errorf("assign: negative worker id %d", worker)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	l.reclaimLocked(now)
	if l.def != nil && l.def.state(worker).banned {
		return Lease{}, fmt.Errorf("%w (worker %d: %s)", ErrWorkerBanned, worker, l.def.state(worker).banReason)
	}
	if l.cfg.Budget > 0 && l.budgetCommittedLocked() >= l.cfg.Budget {
		return Lease{}, ErrBudgetExhausted
	}
	l.syncLocked()

	// An unqualified worker is routed only golden tasks: its probe
	// answers are graded against recorded truth (and anchored by it, so
	// they can't poison inference) until it passes the gate or spends
	// its golden chances. Golden leases bypass the redundancy cap — the
	// gate must not starve on a popular golden pool — but respect the
	// budget and self-exclusion like any lease.
	if l.def.gateActiveLocked() && !l.def.qualifiedLocked(worker) {
		t := l.goldenTaskLocked(worker)
		if t < 0 {
			return Lease{}, ErrNoTask
		}
		return l.issueLocked(t, worker, now, true), nil
	}

	req := &Request{
		Worker:    worker,
		Quality:   l.workerProbLocked(worker),
		Seq:       l.issued,
		Seed:      l.cfg.Seed,
		Choices:   l.src.NumChoices(),
		Load:      l.loadLocked(),
		Posterior: l.post,
		Entropy:   l.entropy,
		uniform:   l.uniform,
	}
	best, bestScore := -1, 0.0
	for t := range req.Load {
		if req.Load[t] >= l.cfg.Redundancy {
			continue
		}
		if _, taken := l.seen[t][worker]; taken {
			continue
		}
		if s := l.cfg.Policy.Score(req, t); best == -1 || s > bestScore {
			best, bestScore = t, s
		}
	}
	if best == -1 {
		return Lease{}, ErrNoTask
	}
	return l.issueLocked(best, worker, now, false), nil
}

// issueLocked creates, registers and returns a lease on task for worker;
// the caller holds l.mu and has already enforced budget and eligibility.
func (l *Ledger) issueLocked(task, worker int, now time.Time, golden bool) Lease {
	l.issued++
	lease := Lease{ID: l.issued, Task: task, Worker: worker, Expires: now.Add(l.cfg.LeaseTTL), Golden: golden}
	l.leases[lease.ID] = lease
	l.expiry.push(expiryEntry{id: lease.ID, expires: lease.Expires})
	for len(l.outstanding) <= task {
		l.outstanding = append(l.outstanding, 0)
		l.seen = append(l.seen, nil)
	}
	l.outstanding[task]++
	if l.seen[task] == nil {
		l.seen[task] = map[int]struct{}{}
	}
	l.seen[task][worker] = struct{}{}
	l.cfg.Metrics.observeIssued()
	l.publishGaugesLocked()
	return lease
}

// Complete redeems a lease: deliver (when non-nil) is invoked with the
// leased task while the ledger lock is held, and the lease is consumed
// only if it returns nil — so delivering the answer into the serving
// store and retiring the lease are atomic with respect to every other
// ledger operation. An expired lease fails with ErrLeaseNotFound even if
// the deadline passed only just now: its task may already be re-leased,
// and the budget must not admit both answers.
//
// Complete never sees the answer's value, so the defense layer cannot
// grade or correlate it; defense-enabled deployments should redeem
// through CompleteValue (the HTTP handler does).
func (l *Ledger) Complete(id uint64, worker int, deliver func(task int) error) error {
	return l.CompleteValue(id, worker, math.NaN(), deliver)
}

// CompleteValue is Complete carrying the delivered answer's value, which
// the defense layer grades against golden truth and records for
// collusion scoring. A NaN value records nothing.
func (l *Ledger) CompleteValue(id uint64, worker int, value float64, deliver func(task int) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reclaimLocked(l.now())
	lease, ok := l.leases[id]
	if !ok {
		return ErrLeaseNotFound
	}
	if lease.Worker != worker {
		return fmt.Errorf("%w (lease %d)", ErrLeaseWorker, id)
	}
	if deliver != nil {
		if err := deliver(lease.Task); err != nil {
			return err
		}
	}
	delete(l.leases, id)
	l.outstanding[lease.Task]--
	l.redeemed++
	l.recordLocked(lease.Task, worker, value)
	l.cfg.Metrics.observeCompleted()
	l.publishGaugesLocked()
	return nil
}

// reclaimLocked expires every lease whose deadline passed: the task's
// outstanding count drops (so it becomes re-issuable to other workers)
// while the original worker stays in the task's seen set — a worker
// never sees a task twice, even one it abandoned.
func (l *Ledger) reclaimLocked(now time.Time) {
	reclaimed := 0
	for len(l.expiry) > 0 && !l.expiry[0].expires.After(now) {
		e := l.expiry.pop()
		lease, ok := l.leases[e.id]
		if !ok {
			continue // completed before its deadline; stale heap entry
		}
		delete(l.leases, e.id)
		l.outstanding[lease.Task]--
		l.expired++
		reclaimed++
	}
	if reclaimed > 0 {
		l.cfg.Metrics.observeExpired(reclaimed)
		l.publishGaugesLocked()
	}
}

// publishGaugesLocked refreshes the outstanding-lease and
// budget-remaining gauges after a lease-state transition; the caller
// holds l.mu. The budget arithmetic mirrors Stats.
func (l *Ledger) publishGaugesLocked() {
	if l.cfg.Metrics == nil {
		return
	}
	remaining := -1
	if l.cfg.Budget > 0 {
		if remaining = l.cfg.Budget - l.budgetCommittedLocked(); remaining < 0 {
			remaining = 0
		}
	}
	l.cfg.Metrics.observeState(len(l.leases), remaining)
}

// syncLocked refreshes the cached serving state: answer counts when the
// store version moved, posterior + entropy when the result version moved
// (the epoch boundary), and the per-task slices when the store grew.
func (l *Ledger) syncLocked() {
	if sv := l.src.StoreVersion(); !l.countsOK || sv != l.countsVer {
		l.counts = l.src.TaskAnswerCounts()
		l.countsVer = sv
		l.countsOK = true
	}
	if rv := l.src.ResultVersion(); !l.postOK || rv != l.postVer {
		if post, v, err := l.src.Posteriors(); err == nil {
			ent, _, _ := l.src.Entropies()
			l.post, l.entropy, l.postVer = post, ent, v
		} else {
			l.post, l.entropy, l.postVer = nil, nil, rv
		}
		l.postOK = true
	}
	for len(l.outstanding) < len(l.counts) {
		l.outstanding = append(l.outstanding, 0)
		l.seen = append(l.seen, nil)
	}
	l.refreshGoldenLocked()
	l.defenseSweepLocked()
}

// loadLocked returns per-task collected + outstanding counts (the
// redundancy accounting policies see). The slice is rebuilt per request;
// its length always matches l.counts after syncLocked.
func (l *Ledger) loadLocked() []int {
	load := make([]int, len(l.counts))
	for t := range load {
		load[t] = l.counts[t] + l.outstanding[t]
	}
	return load
}

// workerProbLocked maps the serving method's quality estimate for worker
// onto a probability-correct, falling back to the configured prior for
// workers without an estimate.
func (l *Ledger) workerProbLocked(worker int) float64 {
	ell := l.src.NumChoices()
	if l.def != nil {
		if st, ok := l.def.workers[worker]; ok && st.downWeighted {
			// A down-weighted worker scores at chance: its answers are
			// routed as carrying no information.
			return QualityToProb(0, ell)
		}
	}
	if q, err := l.src.WorkerQuality(worker); err == nil {
		return QualityToProb(q, ell)
	}
	return QualityToProb(l.cfg.PriorQuality, ell)
}

// Leases reclaims due leases and returns a snapshot of the outstanding
// ones, ordered by id (issue order). This is the query plane's read
// surface over assignment state — every returned lease is live as of
// the call.
func (l *Ledger) Leases() []Lease {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reclaimLocked(l.now())
	out := make([]Lease, 0, len(l.leases))
	for _, lease := range l.leases {
		out = append(out, lease)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats is a consistent snapshot of the ledger (the JSON shape of
// GET /v1/assignstats).
type Stats struct {
	Policy     string  `json:"policy"`
	Redundancy int     `json:"redundancy"`
	Budget     int     `json:"budget"` // 0 = unlimited
	LeaseTTLMS float64 `json:"lease_ttl_ms"`
	// Outstanding is the number of live leases.
	Outstanding int `json:"outstanding"`
	// Issued / Completed / Expired partition every lease ever created:
	// live ones are issued − completed − expired.
	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	Expired   uint64 `json:"expired"`
	// BudgetRemaining is the uncommitted budget (−1 when unlimited).
	// With Config.ChargeExisting the committed side is the store's live
	// answer total plus outstanding leases.
	BudgetRemaining int `json:"budget_remaining"`
	// EligibleTasks counts tasks still under their redundancy cap.
	EligibleTasks int `json:"eligible_tasks"`
	// MeanEntropy is the mean posterior entropy (nats) over all tasks at
	// the last epoch boundary; 0 when no posterior is available.
	MeanEntropy float64 `json:"mean_entropy"`
	// ResultVersion is the epoch the cached scores reflect.
	ResultVersion uint64 `json:"result_version"`
	// Defense accounting (all zero when the defense layer is disabled):
	// banned and down-weighted workers, distinct flagged collusion
	// pairs, and the golden-pool size.
	BannedWorkers       int `json:"banned_workers,omitempty"`
	DownWeightedWorkers int `json:"down_weighted_workers,omitempty"`
	CollusionPairs      int `json:"collusion_pairs,omitempty"`
	GoldenPool          int `json:"golden_pool,omitempty"`
}

// Stats reclaims due leases, re-syncs the caches, and reports the
// ledger's state.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reclaimLocked(l.now())
	l.syncLocked()
	st := Stats{
		Policy:          l.cfg.Policy.Name(),
		Redundancy:      l.cfg.Redundancy,
		Budget:          l.cfg.Budget,
		LeaseTTLMS:      float64(l.cfg.LeaseTTL.Microseconds()) / 1000,
		Outstanding:     len(l.leases),
		Issued:          l.issued,
		Completed:       l.redeemed,
		Expired:         l.expired,
		BudgetRemaining: -1,
		ResultVersion:   l.postVer,
	}
	if l.cfg.Budget > 0 {
		if st.BudgetRemaining = l.cfg.Budget - l.budgetCommittedLocked(); st.BudgetRemaining < 0 {
			st.BudgetRemaining = 0
		}
	}
	for t := range l.counts {
		if l.counts[t]+l.outstanding[t] < l.cfg.Redundancy {
			st.EligibleTasks++
		}
	}
	if len(l.entropy) > 0 {
		var sum float64
		for _, h := range l.entropy {
			sum += h
		}
		st.MeanEntropy = sum / float64(len(l.entropy))
	}
	if l.def != nil {
		st.CollusionPairs = l.def.pairs / 2 // each flagged pair is recorded on both workers
		st.GoldenPool = len(l.def.goldenIDs)
		for _, wd := range l.def.workers {
			if wd.banned {
				st.BannedWorkers++
			}
			if wd.downWeighted {
				st.DownWeightedWorkers++
			}
		}
	}
	return st
}
