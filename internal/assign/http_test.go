package assign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startAPI builds a ledger over a fake source and serves the assignment
// API; completed answers land in the fake source's counts.
func startAPI(t *testing.T, src *fakeSource, cfg Config) (*httptest.Server, *Ledger) {
	t.Helper()
	l, err := NewLedger(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(l, func(task, worker int, value float64) (uint64, error) {
		if value < 0 {
			return 0, errors.New("value rejected")
		}
		src.addAnswer(task)
		return src.StoreVersion(), nil
	}))
	t.Cleanup(srv.Close)
	return srv, l
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: HTTP %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func postJSON(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s %s: HTTP %d, want %d", url, body, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHTTPAssignCompleteLoop(t *testing.T) {
	src := newFakeSource(2, 2)
	srv, _ := startAPI(t, src, Config{Policy: LeastAnswered{}, Redundancy: 2, Budget: 4})

	lease := getJSON(t, srv.URL+"/v1/assign?worker=3", http.StatusOK)
	id := uint64(lease["lease_id"].(float64))
	task := int(lease["task"].(float64))
	if lease["worker"].(float64) != 3 {
		t.Fatalf("lease for wrong worker: %v", lease)
	}

	done := postJSON(t, srv.URL+"/v1/complete",
		fmt.Sprintf(`{"lease_id":%d,"worker":3,"value":1}`, id), http.StatusOK)
	if done["version"].(float64) < 1 {
		t.Fatalf("complete did not report an ingest version: %v", done)
	}
	if got := src.TaskAnswerCounts()[task]; got != 1 {
		t.Fatalf("completed answer not delivered: counts[%d] = %d", task, got)
	}

	st := getJSON(t, srv.URL+"/v1/assignstats", http.StatusOK)
	if st["policy"] != "least-answered" || st["completed"].(float64) != 1 {
		t.Fatalf("assignstats wrong: %v", st)
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	src := newFakeSource(1, 2)
	srv, l := startAPI(t, src, Config{Policy: LeastAnswered{}, Redundancy: 1, Budget: 1})

	// Malformed worker id.
	getJSON(t, srv.URL+"/v1/assign?worker=nope", http.StatusBadRequest)

	lease, err := l.Assign(0)
	if err != nil {
		t.Fatal(err)
	}
	// Budget committed → 409.
	getJSON(t, srv.URL+"/v1/assign?worker=1", http.StatusConflict)
	// Wrong worker on complete → 403.
	postJSON(t, srv.URL+"/v1/complete",
		fmt.Sprintf(`{"lease_id":%d,"worker":9,"value":1}`, lease.ID), http.StatusForbidden)
	// Rejected answer (delivery failure) → 422, lease stays redeemable.
	postJSON(t, srv.URL+"/v1/complete",
		fmt.Sprintf(`{"lease_id":%d,"worker":0,"value":-1}`, lease.ID), http.StatusUnprocessableEntity)
	postJSON(t, srv.URL+"/v1/complete",
		fmt.Sprintf(`{"lease_id":%d,"worker":0,"value":1}`, lease.ID), http.StatusOK)
	// Unknown/expired lease → 410.
	postJSON(t, srv.URL+"/v1/complete",
		fmt.Sprintf(`{"lease_id":%d,"worker":0,"value":1}`, lease.ID), http.StatusGone)
	// Malformed body → 400.
	postJSON(t, srv.URL+"/v1/complete", `{"lease_id":`, http.StatusBadRequest)
	// Budget spent and the only task capped → no task for a fresh worker
	// would be budget-exhausted first; stats still serve.
	st := getJSON(t, srv.URL+"/v1/assignstats", http.StatusOK)
	if st["budget_remaining"].(float64) != 0 {
		t.Fatalf("budget_remaining = %v, want 0", st["budget_remaining"])
	}
}

func TestHTTPNoTask(t *testing.T) {
	src := newFakeSource(1, 2)
	srv, _ := startAPI(t, src, Config{Policy: Random{}, Redundancy: 1, LeaseTTL: time.Hour})
	getJSON(t, srv.URL+"/v1/assign?worker=0", http.StatusOK)
	// Task capped by the outstanding lease → 404 for another worker.
	getJSON(t, srv.URL+"/v1/assign?worker=1", http.StatusNotFound)
}
