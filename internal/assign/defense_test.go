package assign

import (
	"errors"
	"strings"
	"testing"
)

// defenseSource wraps fakeSource with the optional defense surfaces:
// golden truth, stored answer values, and a per-epoch quality history.
type defenseSource struct {
	*fakeSource
	golden map[int]float64
	stored [][3]float64 // (task, worker, value)
	hist   [][]float64
}

func (d *defenseSource) ForEachGolden(f func(task int, truth float64)) {
	for t, v := range d.golden {
		f(t, v)
	}
}

func (d *defenseSource) ForEachAnswerValue(f func(task, worker int, value float64)) {
	for _, a := range d.stored {
		f(int(a[0]), int(a[1]), a[2])
	}
}

func (d *defenseSource) QualityHistory() ([][]float64, uint64) {
	out := make([][]float64, len(d.hist))
	for i, row := range d.hist {
		out[i] = append([]float64(nil), row...)
	}
	return out, d.ResultVersion()
}

// uniformPost fills every task's posterior with argmax at label 0.
func uniformPost(tasks int) [][]float64 {
	post := make([][]float64, tasks)
	for i := range post {
		post[i] = []float64{0.8, 0.2}
	}
	return post
}

func newDefenseSource(tasks int) *defenseSource {
	f := newFakeSource(tasks, 2)
	f.workers = 16
	f.post = uniformPost(tasks)
	return &defenseSource{fakeSource: f, golden: map[int]float64{}}
}

func defendedLedger(t *testing.T, src Source, spec *DefenseSpec) (*Ledger, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	l := mustLedger(t, src, Config{
		Policy:  LeastAnswered{},
		Budget:  1000,
		Seed:    1,
		Now:     clk.Now,
		Defense: spec,
	})
	return l, clk
}

func completeLabel(t *testing.T, l *Ledger, id uint64, worker int, label float64) {
	t.Helper()
	if err := l.CompleteValue(id, worker, label, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDefenseSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec DefenseSpec
		ok   bool
	}{
		{"zero is fine", DefenseSpec{}, true},
		{"full valid", DefenseSpec{GoldenPass: 2, GoldenFails: 3, QualityDrop: 0.2, MinQuality: 0.4, QualityMinAnswers: 10, CollusionThreshold: 0.3, CollusionMinOverlap: 5, CollusionPartners: 2}, true},
		{"negative golden pass", DefenseSpec{GoldenPass: -1}, false},
		{"negative golden fails", DefenseSpec{GoldenFails: -2}, false},
		{"drop above 1", DefenseSpec{QualityDrop: 1.5}, false},
		{"negative floor", DefenseSpec{MinQuality: -0.1}, false},
		{"negative min answers", DefenseSpec{QualityMinAnswers: -1}, false},
		{"collusion threshold above 1", DefenseSpec{CollusionThreshold: 2}, false},
		{"negative overlap", DefenseSpec{CollusionMinOverlap: -1}, false},
		{"negative partners", DefenseSpec{CollusionPartners: -3}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.spec.Validate(); (err == nil) != c.ok {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
			}
		})
	}
	var nilSpec *DefenseSpec
	if err := nilSpec.Validate(); err != nil {
		t.Fatalf("nil spec must validate: %v", err)
	}
	if nilSpec.Enabled() {
		t.Fatal("nil spec reports enabled")
	}
	if (&DefenseSpec{DownWeightOnly: true}).Enabled() {
		t.Fatal("spec with no detector thresholds reports enabled")
	}
}

func TestDefenseNeedsCategoricalSource(t *testing.T) {
	src := newFakeSource(4, 0) // a numeric store: no label alphabet
	src.workers = 4
	_, err := NewLedger(src, Config{
		Policy:  LeastAnswered{},
		Defense: &DefenseSpec{GoldenPass: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "categorical") {
		t.Fatalf("defended ledger over a numeric source: err = %v, want categorical error", err)
	}
}

func TestGoldenGateQualifiesThenServesRealTasks(t *testing.T) {
	src := newDefenseSource(6)
	src.golden = map[int]float64{0: 1, 1: 0}
	l, _ := defendedLedger(t, src, &DefenseSpec{GoldenPass: 1})

	lease, err := l.Assign(7)
	if err != nil {
		t.Fatal(err)
	}
	if !lease.Golden || lease.Task != 0 {
		t.Fatalf("unqualified worker got lease %+v, want golden task 0", lease)
	}
	completeLabel(t, l, lease.ID, 7, 1) // correct: golden truth is 1

	lease, err = l.Assign(7)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Golden {
		t.Fatalf("qualified worker still routed a golden gate lease: %+v", lease)
	}

	sus := l.Suspects()
	if len(sus) != 1 || sus[0].Worker != 7 || !sus[0].Qualified || sus[0].GoldenPassed != 1 {
		t.Fatalf("suspects = %+v, want worker 7 qualified", sus)
	}
}

func TestGoldenGateBansAfterRepeatedFails(t *testing.T) {
	src := newDefenseSource(6)
	src.golden = map[int]float64{0: 1, 1: 0, 2: 1}
	l, _ := defendedLedger(t, src, &DefenseSpec{GoldenPass: 2, GoldenFails: 2})

	for i := 0; i < 2; i++ {
		lease, err := l.Assign(3)
		if err != nil {
			t.Fatal(err)
		}
		if !lease.Golden {
			t.Fatalf("attempt %d: lease %+v is not golden", i, lease)
		}
		wrong := 1 - src.golden[lease.Task]
		completeLabel(t, l, lease.ID, 3, wrong)
	}
	if _, err := l.Assign(3); !errors.Is(err, ErrWorkerBanned) {
		t.Fatalf("Assign after 2 golden fails: %v, want ErrWorkerBanned", err)
	}
	sus := l.Suspects()
	if len(sus) != 1 || !sus[0].Banned || sus[0].BanReason != "golden" {
		t.Fatalf("suspects = %+v, want golden ban", sus)
	}
	if st := l.Stats(); st.BannedWorkers != 1 || st.GoldenPool != 3 {
		t.Fatalf("stats = %+v, want 1 banned, golden pool 3", st)
	}
}

func TestGoldenGateInertWhilePoolEmpty(t *testing.T) {
	// A gate with no golden truth posted yet must not lock the project:
	// workers get real leases until the operator ingests truth.
	src := newDefenseSource(4)
	l, _ := defendedLedger(t, src, &DefenseSpec{GoldenPass: 1})
	lease, err := l.Assign(0)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Golden {
		t.Fatalf("empty golden pool still issued a gate lease: %+v", lease)
	}

	// Posting golden truth arms the gate for the next worker.
	src.mu.Lock()
	src.storeVer++
	src.mu.Unlock()
	src.golden[2] = 1
	lease, err = l.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	if !lease.Golden || lease.Task != 2 {
		t.Fatalf("gate did not arm after truth ingest: %+v", lease)
	}
}

func TestAbandonedGoldenLeaseSpendsTheChance(t *testing.T) {
	// An expired golden lease keeps the worker in the task's seen set
	// (a worker never sees a task twice, even abandoned), so a one-task
	// pool is spent for that worker — but reissues to everyone else.
	src := newDefenseSource(4)
	src.golden = map[int]float64{0: 1}
	l, clk := defendedLedger(t, src, &DefenseSpec{GoldenPass: 1})
	lease, err := l.Assign(0)
	if err != nil {
		t.Fatal(err)
	}
	if !lease.Golden {
		t.Fatalf("lease %+v not golden", lease)
	}
	clk.Advance(2 * DefaultLeaseTTL)
	if _, err := l.Assign(0); !errors.Is(err, ErrNoTask) {
		t.Fatalf("abandoning worker reassigned: %v, want ErrNoTask", err)
	}
	other, err := l.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	if !other.Golden || other.Task != 0 {
		t.Fatalf("reclaimed golden task not reissued to another worker: %+v", other)
	}
}

func TestQualityFloorBansOnlySustainedLows(t *testing.T) {
	src := newDefenseSource(8)
	// Quality 0.55 sits above the binary chance clamp (0.5) but below the
	// 0.7 floor. Worker 0 healthy, worker 1 sustained low, worker 2 a
	// single-epoch dip (noise), worker 3 low but with too few answers.
	src.hist = [][]float64{
		{0.9, 0.55, 0.9, 0.55},
		{0.9, 0.55, 0.55, 0.55},
	}
	for w := 0; w < 3; w++ {
		for task := 0; task < 4; task++ {
			src.stored = append(src.stored, [3]float64{float64(task), float64(w), 1})
		}
	}
	src.stored = append(src.stored, [3]float64{0, 3, 1})
	l, _ := defendedLedger(t, src, &DefenseSpec{MinQuality: 0.7, QualityMinAnswers: 2})

	banned := map[int]bool{}
	for _, s := range l.Suspects() {
		banned[s.Worker] = s.Banned
	}
	if banned[0] || !banned[1] || banned[2] || banned[3] {
		t.Fatalf("bans = %v, want only worker 1 (sustained low with enough answers)", banned)
	}
	if _, err := l.Assign(1); !errors.Is(err, ErrWorkerBanned) {
		t.Fatalf("banned worker assigned: %v", err)
	}
}

func TestQualityDropDetectsSustainedCollapse(t *testing.T) {
	src := newDefenseSource(8)
	// Worker 1 collapses 0.9 → 0.55 and stays there; worker 2 has one
	// bad epoch then recovers (the estimate was noise, not a sleeper).
	src.hist = [][]float64{
		{0.9, 0.9, 0.9},
		{0.9, 0.9, 0.55},
		{0.9, 0.55, 0.9},
		{0.9, 0.55, 0.9},
	}
	for w := 0; w < 3; w++ {
		for task := 0; task < 4; task++ {
			src.stored = append(src.stored, [3]float64{float64(task), float64(w), 1})
		}
	}
	l, _ := defendedLedger(t, src, &DefenseSpec{QualityDrop: 0.3, QualityMinAnswers: 2})

	state := map[int]Suspect{}
	for _, s := range l.Suspects() {
		state[s.Worker] = s
	}
	if state[0].Banned || !state[1].Banned || state[2].Banned {
		t.Fatalf("suspects = %+v, want only worker 1 banned", state)
	}
	if state[1].BanReason != "quality" || state[1].QualityDrop < 0.3 {
		t.Fatalf("worker 1 dossier = %+v, want quality ban with recorded drop", state[1])
	}
}

func TestDownWeightOnlyKeepsWorkersAssignable(t *testing.T) {
	src := newDefenseSource(8)
	src.hist = [][]float64{{0.9, 0.55}, {0.9, 0.55}}
	for task := 0; task < 4; task++ {
		src.stored = append(src.stored, [3]float64{float64(task), 1, 1})
	}
	l, _ := defendedLedger(t, src, &DefenseSpec{MinQuality: 0.7, QualityMinAnswers: 2, DownWeightOnly: true})

	sus := l.Suspects()
	if len(sus) == 0 {
		t.Fatal("no suspects")
	}
	var w1 Suspect
	for _, s := range sus {
		if s.Worker == 1 {
			w1 = s
		}
	}
	if w1.Banned || !w1.DownWeighted {
		t.Fatalf("worker 1 = %+v, want down-weighted not banned", w1)
	}
	if _, err := l.Assign(1); err != nil {
		t.Fatalf("down-weighted worker must stay assignable: %v", err)
	}
	if st := l.Stats(); st.DownWeightedWorkers != 1 || st.BannedWorkers != 0 {
		t.Fatalf("stats = %+v, want 1 down-weighted, 0 banned", st)
	}
}

func TestCollusionFlagsWrongAgreementPairs(t *testing.T) {
	src := newDefenseSource(8)
	// Workers 3 and 4 agree on the non-consensus label (1) on four
	// shared tasks; workers 0 and 1 answer the consensus label on the
	// same tasks (agreeing, but correctly).
	for task := 0; task < 4; task++ {
		src.stored = append(src.stored,
			[3]float64{float64(task), 3, 1}, [3]float64{float64(task), 4, 1},
			[3]float64{float64(task), 0, 0}, [3]float64{float64(task), 1, 0},
		)
	}
	// Break worker 0/1's perfect agreement so only the ring could trip
	// the identical-stream rule.
	src.stored = append(src.stored, [3]float64{4, 0, 0}, [3]float64{4, 1, 1})
	l, _ := defendedLedger(t, src, &DefenseSpec{CollusionThreshold: 0.8, CollusionMinOverlap: 3, CollusionPartners: 1})

	state := map[int]Suspect{}
	for _, s := range l.Suspects() {
		state[s.Worker] = s
	}
	if !state[3].Banned || !state[4].Banned {
		t.Fatalf("wrong-agreeing pair not banned: %+v / %+v", state[3], state[4])
	}
	if state[3].BanReason != "collusion" || state[3].CollusionScore < 0.8 || state[3].CollusionPartners != 1 {
		t.Fatalf("worker 3 dossier = %+v", state[3])
	}
	if state[0].Banned || state[1].Banned {
		t.Fatalf("consensus-agreeing pair banned: %+v / %+v", state[0], state[1])
	}
	if st := l.Stats(); st.CollusionPairs != 1 {
		t.Fatalf("stats = %+v, want 1 collusion pair", st)
	}
}

func TestCollusionFlagsPerfectParrots(t *testing.T) {
	// A copy-paste pair that always matches the consensus never shows
	// wrong-agreement — the identical-stream rule must flag it anyway.
	src := newDefenseSource(8)
	for task := 0; task < 5; task++ {
		src.stored = append(src.stored,
			[3]float64{float64(task), 5, 0}, [3]float64{float64(task), 6, 0},
		)
	}
	l, _ := defendedLedger(t, src, &DefenseSpec{CollusionThreshold: 0.8, CollusionMinOverlap: 5, CollusionPartners: 1})

	state := map[int]Suspect{}
	for _, s := range l.Suspects() {
		state[s.Worker] = s
	}
	if !state[5].Banned || !state[6].Banned || state[5].CollusionScore != 1 {
		t.Fatalf("parrot pair not flagged: %+v / %+v", state[5], state[6])
	}
}

func TestDefenseStateRebuildsFromStore(t *testing.T) {
	// A daemon restart constructs a fresh ledger over the same store;
	// qualification and bans must be replayed from the persisted
	// answers, not reset.
	src := newDefenseSource(8)
	src.golden = map[int]float64{0: 1, 1: 0}
	spec := &DefenseSpec{GoldenPass: 1, GoldenFails: 2}

	l1, _ := defendedLedger(t, src, spec)
	lease, err := l1.Assign(2)
	if err != nil {
		t.Fatal(err)
	}
	completeLabel(t, l1, lease.ID, 2, src.golden[lease.Task]) // qualify worker 2
	for i := 0; i < 2; i++ {
		lease, err = l1.Assign(9)
		if err != nil {
			t.Fatal(err)
		}
		completeLabel(t, l1, lease.ID, 9, 1-src.golden[lease.Task]) // worker 9 fails out
	}
	// Persist what the ledger collected, as the stream store would.
	src.stored = append(src.stored,
		[3]float64{0, 2, src.golden[0]},
		[3]float64{0, 9, 1 - src.golden[0]},
		[3]float64{1, 9, 1 - src.golden[1]},
	)

	l2, _ := defendedLedger(t, src, spec)
	state := map[int]Suspect{}
	for _, s := range l2.Suspects() {
		state[s.Worker] = s
	}
	if !state[2].Qualified || state[2].Banned {
		t.Fatalf("restart lost worker 2's qualification: %+v", state[2])
	}
	if !state[9].Banned || state[9].BanReason != "golden" {
		t.Fatalf("restart lost worker 9's ban: %+v", state[9])
	}
	if _, err := l2.Assign(9); !errors.Is(err, ErrWorkerBanned) {
		t.Fatalf("rebuilt ledger assigned a banned worker: %v", err)
	}
}

func TestSuspectsNilWithoutDefense(t *testing.T) {
	src := newFakeSource(4, 2)
	src.workers = 4
	l := mustLedger(t, src, Config{Policy: LeastAnswered{}, Budget: 10, Now: newFakeClock().Now})
	if sus := l.Suspects(); sus != nil {
		t.Fatalf("undefended ledger returned suspects: %+v", sus)
	}
	if st := l.Stats(); st.BannedWorkers != 0 || st.GoldenPool != 0 {
		t.Fatalf("undefended stats carry defense counters: %+v", st)
	}
}
