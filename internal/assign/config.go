package assign

import (
	"encoding/json"
	"fmt"
	"time"
)

// Spec is the serializable face of Config: the JSON shape a multi-tenant
// daemon stores per project (and accepts over its admin API) to describe
// that project's assignment control plane. Validate rejects a bad spec
// without touching any serving state, so config errors fail fast at
// project creation; Ledger builds the live ledger from it.
type Spec struct {
	// Policy is the scoring policy name (see ParsePolicy): "random",
	// "least-answered" or "uncertainty". Required.
	Policy string `json:"policy"`
	// Redundancy caps each task's collected answers + outstanding leases
	// (0 = DefaultRedundancy).
	Redundancy int `json:"redundancy,omitempty"`
	// Budget caps the store's total answers (live answer count plus
	// outstanding leases — Config.ChargeExisting), so a durable project
	// that restarts under the same config resumes with the remaining
	// budget rather than a fresh cap. 0 = unlimited.
	Budget int `json:"budget,omitempty"`
	// NoChargeExisting restores the legacy per-instance budget
	// accounting: answers already in the store are NOT charged, and the
	// operator passes the remaining budget on each restart. The daemon
	// sets it for the flag-configured default project, whose -budget
	// flag has always meant per-run spend.
	NoChargeExisting bool `json:"no_charge_existing,omitempty"`
	// LeaseTTL is how long a worker holds an assignment, as a Go
	// duration string like "45s" (empty = DefaultLeaseTTL).
	LeaseTTL Duration `json:"lease_ttl,omitempty"`
	// PriorQuality is the probability-correct assumed for workers the
	// serving method has no estimate for (0 = DefaultPriorQuality).
	PriorQuality float64 `json:"prior_quality,omitempty"`
	// Defense configures the adversarial-crowd defense layer: golden
	// qualification gates, quality change-detection, and collusion
	// scoring (see DefenseSpec). Omitted or all-zero = no defenses.
	Defense *DefenseSpec `json:"defense,omitempty"`
}

// Validate checks the spec without building anything: the policy name
// must parse and the numeric rails must be non-negative.
func (sp Spec) Validate() error {
	if sp.Policy == "" {
		return fmt.Errorf("assign: spec has no policy (valid: %v)", PolicyNames())
	}
	if _, err := ParsePolicy(sp.Policy); err != nil {
		return err
	}
	if sp.Redundancy < 0 {
		return fmt.Errorf("assign: negative redundancy %d", sp.Redundancy)
	}
	if sp.Budget < 0 {
		return fmt.Errorf("assign: negative budget %d", sp.Budget)
	}
	if sp.LeaseTTL < 0 {
		return fmt.Errorf("assign: negative lease TTL %v", time.Duration(sp.LeaseTTL))
	}
	if sp.PriorQuality < 0 || sp.PriorQuality >= 1 {
		return fmt.Errorf("assign: prior quality %v outside [0,1)", sp.PriorQuality)
	}
	if err := sp.Defense.Validate(); err != nil {
		return err
	}
	return nil
}

// Ledger builds the live ledger the spec describes over src, seeded with
// the project's seed (so a project's whole behavior — inference and
// assignment — replays from one number). m, when non-nil, is the
// per-tenant instrument bundle the ledger records lease lifecycle and
// budget observations into.
func (sp Spec) Ledger(src Source, seed int64, m *Metrics) (*Ledger, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	policy, err := ParsePolicy(sp.Policy)
	if err != nil {
		return nil, err
	}
	return NewLedger(src, Config{
		Policy:         policy,
		Redundancy:     sp.Redundancy,
		Budget:         sp.Budget,
		ChargeExisting: !sp.NoChargeExisting,
		LeaseTTL:       time.Duration(sp.LeaseTTL),
		Seed:           seed,
		PriorQuality:   sp.PriorQuality,
		Metrics:        m,
		Defense:        sp.Defense,
	})
}

// Duration is a time.Duration that marshals as a Go duration string
// ("45s", "2m30s") and unmarshals from either a string or a JSON number
// of nanoseconds, so configs stay human-readable.
type Duration time.Duration

// MarshalJSON renders the duration as its canonical string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "1m30s" strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("assign: bad duration %q: %w", s, perr)
		}
		*d = Duration(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("assign: duration must be a string like \"45s\" or nanoseconds, got %s", data)
	}
	*d = Duration(n)
	return nil
}
