package assign

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file is the ledger's adversarial-crowd defense layer, the control
// half of ROADMAP item 4's threat model (the attack half lives in
// internal/simulate/closedloop). Three independent detectors run behind
// one serializable DefenseSpec:
//
//   - a golden-task qualification gate: a worker must pass GoldenPass
//     tasks with operator-recorded ground truth before earning real
//     leases, and is banned after GoldenFails wrong golden answers —
//     qualification answers land on truth-anchored tasks, so an
//     adversary's probe spends budget without poisoning inference;
//   - online quality change-detection over the serving method's
//     per-epoch worker-quality history (stream.Service retains it),
//     catching sleepers whose estimated quality collapses mid-stream
//     after a trustworthy start; and
//   - a pairwise answer-correlation collusion score: pairs that answer
//     the same tasks with the same non-consensus label far more often
//     than independent errors explain are flagged, and workers flagged
//     with CollusionPartners or more distinct partners are banned —
//     catching colluding cliques and copy-paste rings while the
//     min-overlap and multi-partner requirements protect honest workers
//     who merely share a mistake.
//
// All defense state rebuilds from the store at construction (golden
// truth, answers, and worker ids are all persisted), so qualification
// and correlation decisions survive a daemon restart exactly like the
// ledger's self-exclusion sets do.

// Defaults for DefenseSpec zero values (applied when the gate they
// parameterize is enabled).
const (
	DefaultGoldenFails       = 2
	DefaultQualityMinAnswers = 8
	DefaultCollusionOverlap  = 8
	DefaultCollusionPartners = 2
)

// ErrWorkerBanned is returned by Assign for workers the defense layer
// has banned; it maps to HTTP 403.
var ErrWorkerBanned = errors.New("assign: worker is banned by the defense layer")

// DefenseSpec is the serializable configuration of the ledger's defense
// layer. The zero value (and a nil pointer) disables every defense; each
// detector activates independently when its threshold is set.
type DefenseSpec struct {
	// GoldenPass is the number of golden tasks (tasks with recorded
	// ground truth) a worker must answer correctly before it is issued
	// real leases (0 = gate off). While unqualified, a worker is routed
	// only golden tasks. The gate is inert until golden truth is
	// ingested (Batch.Truth) — an empty pool gates nobody.
	GoldenPass int `json:"golden_pass,omitempty"`
	// GoldenFails bans a worker after this many wrong golden answers
	// (0 = DefaultGoldenFails when the gate is on). Failures count even
	// after qualification, so golden tasks double as honeypots.
	GoldenFails int `json:"golden_fails,omitempty"`
	// QualityDrop triggers the action when a worker's probability-correct
	// stays this far below its peak over the retained epoch history for
	// two consecutive epochs (one epoch's estimate can be noise; a
	// sleeper's collapse is sustained). 0 = off. Only meaningful under
	// iterative serving methods — the incremental ones model workers
	// uniformly and publish no history.
	QualityDrop float64 `json:"quality_drop,omitempty"`
	// MinQuality triggers the action when a worker's probability-correct
	// stays below this floor for two consecutive epochs (0 = off).
	MinQuality float64 `json:"min_quality,omitempty"`
	// QualityMinAnswers is the minimum delivered answers a worker needs
	// before the quality detectors will judge it
	// (0 = DefaultQualityMinAnswers). A method's estimate over a handful
	// of answers is noise, not evidence.
	QualityMinAnswers int `json:"quality_min_answers,omitempty"`
	// CollusionThreshold flags a pair of workers when the fraction of
	// their co-answered tasks on which they agreed on a non-consensus
	// label reaches it (0 = off). Consensus is the serving posterior's
	// argmax at the epoch boundary. A pair whose answers are identical on
	// every co-answered task is flagged regardless of the score: a
	// copy-paste ring big enough to capture the consensus hides from the
	// wrong-agreement rate, but cannot hide identical answer streams.
	CollusionThreshold float64 `json:"collusion_threshold,omitempty"`
	// CollusionMinOverlap is the minimum co-answered tasks before a pair
	// can be flagged (0 = DefaultCollusionOverlap).
	CollusionMinOverlap int `json:"collusion_min_overlap,omitempty"`
	// CollusionPartners is the number of distinct flagged partners that
	// triggers the action on a worker (0 = DefaultCollusionPartners).
	// Requiring several protects an honest worker whose answers one
	// copycat happens to replay.
	CollusionPartners int `json:"collusion_partners,omitempty"`
	// DownWeightOnly makes the quality and collusion detectors
	// down-weight a worker (score it at chance for routing) instead of
	// banning it. Golden-gate failures always ban: the gate is an entry
	// check, not a posterior judgement.
	DownWeightOnly bool `json:"down_weight_only,omitempty"`
}

// Enabled reports whether any detector is active.
func (d *DefenseSpec) Enabled() bool {
	return d != nil && (d.GoldenPass > 0 || d.QualityDrop > 0 || d.MinQuality > 0 || d.CollusionThreshold > 0)
}

// Validate rejects out-of-range thresholds without building anything.
func (d *DefenseSpec) Validate() error {
	if d == nil {
		return nil
	}
	if d.GoldenPass < 0 || d.GoldenFails < 0 {
		return fmt.Errorf("assign: negative golden gate (pass %d, fails %d)", d.GoldenPass, d.GoldenFails)
	}
	if d.QualityDrop < 0 || d.QualityDrop > 1 {
		return fmt.Errorf("assign: quality drop %v outside [0,1]", d.QualityDrop)
	}
	if d.MinQuality < 0 || d.MinQuality > 1 {
		return fmt.Errorf("assign: min quality %v outside [0,1]", d.MinQuality)
	}
	if d.QualityMinAnswers < 0 {
		return fmt.Errorf("assign: negative quality min answers %d", d.QualityMinAnswers)
	}
	if d.CollusionThreshold < 0 || d.CollusionThreshold > 1 {
		return fmt.Errorf("assign: collusion threshold %v outside [0,1]", d.CollusionThreshold)
	}
	if d.CollusionMinOverlap < 0 || d.CollusionPartners < 0 {
		return fmt.Errorf("assign: negative collusion gate (overlap %d, partners %d)",
			d.CollusionMinOverlap, d.CollusionPartners)
	}
	return nil
}

// GoldenSource is the optional source surface the golden gate reads:
// tasks with operator-recorded ground truth. *stream.Service implements
// it; sources that don't leave the gate inert.
type GoldenSource interface {
	ForEachGolden(f func(task int, truth float64))
}

// AnswerValueSource is the optional source surface defense state
// rebuilds from at construction: every stored answer with its value.
type AnswerValueSource interface {
	ForEachAnswerValue(f func(task, worker int, value float64))
}

// QualityHistorian is the optional source surface quality
// change-detection reads: the last epochs' worker-quality vectors,
// oldest first. *stream.Service implements it.
type QualityHistorian interface {
	QualityHistory() (hist [][]float64, version uint64)
}

// taskAnswer is one recorded categorical answer the collusion detector
// correlates over.
type taskAnswer struct {
	worker, label int
}

// workerDefense is one worker's defense dossier.
type workerDefense struct {
	answers      int // delivered answers recorded with a value
	goldenPassed int
	goldenFailed int
	banned       bool
	banReason    string // "golden" | "quality" | "collusion"
	downWeighted bool
	// collusionScore is the worst flagged pair's wrong-agreement rate;
	// partners holds the distinct flagged counterparties.
	collusionScore float64
	partners       map[int]struct{}
	// qualityDrop is the detected peak-to-current probability drop.
	qualityDrop float64
}

// defense is the ledger's defense state, guarded by the ledger mutex.
type defense struct {
	spec DefenseSpec

	golden    map[int]int // golden task → label
	goldenIDs []int       // sorted golden task ids (deterministic routing)
	goldenVer uint64      // store version the pool reflects

	workers map[int]*workerDefense
	byTask  map[int][]taskAnswer // task → recorded answers (collusion only)
	pairs   int                  // total flagged pairs

	sweepVer uint64 // result version of the last detection sweep
	sweepOK  bool
}

// newDefense validates and normalizes the spec. The source must be
// categorical: golden grading and answer correlation compare labels.
func newDefense(spec DefenseSpec, ell int) (*defense, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ell < 2 {
		return nil, errors.New("assign: defenses need a categorical store (golden grading and collusion compare labels)")
	}
	if spec.GoldenPass > 0 && spec.GoldenFails == 0 {
		spec.GoldenFails = DefaultGoldenFails
	}
	if (spec.QualityDrop > 0 || spec.MinQuality > 0) && spec.QualityMinAnswers == 0 {
		spec.QualityMinAnswers = DefaultQualityMinAnswers
	}
	if spec.CollusionThreshold > 0 {
		if spec.CollusionMinOverlap == 0 {
			spec.CollusionMinOverlap = DefaultCollusionOverlap
		}
		if spec.CollusionPartners == 0 {
			spec.CollusionPartners = DefaultCollusionPartners
		}
	}
	return &defense{spec: spec, workers: map[int]*workerDefense{}}, nil
}

// state returns (creating on demand) the worker's dossier.
func (d *defense) state(worker int) *workerDefense {
	st, ok := d.workers[worker]
	if !ok {
		st = &workerDefense{}
		d.workers[worker] = st
	}
	return st
}

// refreshGoldenLocked rebuilds the golden pool from the source when the
// store version moved (golden truth can be posted at any time).
func (l *Ledger) refreshGoldenLocked() {
	d := l.def
	if d == nil || d.spec.GoldenPass == 0 {
		return
	}
	gs, ok := l.src.(GoldenSource)
	if !ok {
		return
	}
	if sv := l.src.StoreVersion(); d.golden != nil && sv == d.goldenVer {
		return
	}
	d.goldenVer = l.src.StoreVersion()
	d.golden = map[int]int{}
	gs.ForEachGolden(func(task int, truth float64) {
		d.golden[task] = int(truth)
	})
	d.goldenIDs = d.goldenIDs[:0]
	for t := range d.golden {
		d.goldenIDs = append(d.goldenIDs, t)
	}
	sort.Ints(d.goldenIDs)
}

// gateActiveLocked reports whether the qualification gate can gate
// anybody: it needs a non-empty golden pool, or every worker would be
// locked out before the operator posts any truth.
func (d *defense) gateActiveLocked() bool {
	return d != nil && d.spec.GoldenPass > 0 && len(d.goldenIDs) > 0
}

// qualifiedLocked reports whether the worker has passed the gate.
func (d *defense) qualifiedLocked(worker int) bool {
	return d.state(worker).goldenPassed >= d.spec.GoldenPass
}

// goldenTaskLocked picks the lowest-id golden task the worker has not
// seen (deterministic), or -1 when its golden chances are spent.
func (l *Ledger) goldenTaskLocked(worker int) int {
	for _, t := range l.def.goldenIDs {
		if t < 0 || t >= len(l.seen) {
			continue
		}
		if _, taken := l.seen[t][worker]; !taken {
			return t
		}
	}
	return -1
}

// recordLocked feeds one delivered answer into the defense state: the
// collusion detector's per-task record, and — when the task is golden —
// the worker's pass/fail tally. NaN values (the value-less Complete
// path) record nothing.
func (l *Ledger) recordLocked(task, worker int, value float64) {
	d := l.def
	if d == nil || math.IsNaN(value) {
		return
	}
	label := int(value)
	d.state(worker).answers++
	if d.spec.CollusionThreshold > 0 {
		if d.byTask == nil {
			d.byTask = map[int][]taskAnswer{}
		}
		d.byTask[task] = append(d.byTask[task], taskAnswer{worker: worker, label: label})
	}
	if d.spec.GoldenPass == 0 {
		return
	}
	truth, golden := d.golden[task]
	if !golden {
		return
	}
	st := d.state(worker)
	if st.banned {
		return
	}
	if label == truth {
		st.goldenPassed++
		l.cfg.Metrics.observeGolden(true)
		return
	}
	st.goldenFailed++
	l.cfg.Metrics.observeGolden(false)
	if st.goldenFailed >= d.spec.GoldenFails {
		// Golden failures always ban — the gate is an entry check.
		st.banned = true
		st.banReason = "golden"
		l.cfg.Metrics.observeBan("golden")
	}
}

// actionLocked applies the configured detection action (ban, or
// down-weight with DownWeightOnly) to a worker.
func (l *Ledger) actionLocked(st *workerDefense, reason string) {
	if st.banned {
		return
	}
	if l.def.spec.DownWeightOnly {
		if !st.downWeighted {
			st.downWeighted = true
			l.cfg.Metrics.observeDownWeighted()
		}
		return
	}
	st.banned = true
	st.banReason = reason
	l.cfg.Metrics.observeBan(reason)
}

// defenseSweepLocked runs the epoch-boundary detectors: quality
// change-detection over the source's per-epoch history, then the
// pairwise collusion scan against the freshly cached posterior. It runs
// at most once per result version — syncLocked calls it after updating
// the posterior cache.
func (l *Ledger) defenseSweepLocked() {
	d := l.def
	if d == nil {
		return
	}
	if d.sweepOK && l.postVer == d.sweepVer {
		return
	}
	d.sweepVer, d.sweepOK = l.postVer, true
	l.qualitySweepLocked()
	l.collusionSweepLocked()
}

// qualitySweepLocked applies the MinQuality floor and QualityDrop
// change-detector over the source's retained per-epoch quality history.
func (l *Ledger) qualitySweepLocked() {
	d := l.def
	if d.spec.QualityDrop == 0 && d.spec.MinQuality == 0 {
		return
	}
	qh, ok := l.src.(QualityHistorian)
	if !ok {
		return
	}
	hist, _ := qh.QualityHistory()
	if len(hist) == 0 {
		return
	}
	ell := l.src.NumChoices()
	cur := hist[len(hist)-1]
	for w, q := range cur {
		// Only judge workers with enough delivered answers for the
		// method's estimate to mean anything.
		if st, ok := d.workers[w]; !ok || st.answers < d.spec.QualityMinAnswers {
			continue
		}
		p := QualityToProb(q, ell)
		// The drop is measured from the peak of the epochs *before* the
		// last two, and must hold in both of the last two — a single
		// epoch's estimate over sparse new answers is noise, a sleeper's
		// collapse persists.
		prev := p
		if n := len(hist) - 1; n >= 1 && w < len(hist[n-1]) {
			prev = QualityToProb(hist[n-1][w], ell)
		}
		peak := math.Max(p, prev)
		for _, row := range hist[:max(len(hist)-2, 0)] {
			if w < len(row) {
				if pp := QualityToProb(row[w], ell); pp > peak {
					peak = pp
				}
			}
		}
		drop := peak - math.Max(p, prev)
		low := d.spec.MinQuality > 0 && math.Max(p, prev) < d.spec.MinQuality
		fell := d.spec.QualityDrop > 0 && drop >= d.spec.QualityDrop
		if !low && !fell {
			continue
		}
		st := d.state(w)
		if drop > st.qualityDrop {
			st.qualityDrop = drop
		}
		l.actionLocked(st, "quality")
	}
}

// collusionSweepLocked scores every co-answering pair by its
// wrong-agreement rate against the current posterior consensus, flags
// pairs past the threshold, and actions workers with enough distinct
// flagged partners.
func (l *Ledger) collusionSweepLocked() {
	d := l.def
	if d.spec.CollusionThreshold == 0 || len(d.byTask) == 0 || len(l.post) == 0 {
		return
	}
	type pairStat struct{ overlap, agree, wrong int }
	pairs := map[[2]int]*pairStat{}
	for t, answers := range d.byTask {
		if t < 0 || t >= len(l.post) || len(answers) < 2 {
			continue
		}
		row := l.post[t]
		if len(row) == 0 {
			continue
		}
		consensus := 0
		for k, p := range row {
			if p > row[consensus] {
				consensus = k
			}
		}
		for i := 0; i < len(answers); i++ {
			for j := i + 1; j < len(answers); j++ {
				a, b := answers[i], answers[j]
				if a.worker == b.worker {
					continue
				}
				key := [2]int{a.worker, b.worker}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				ps, ok := pairs[key]
				if !ok {
					ps = &pairStat{}
					pairs[key] = ps
				}
				ps.overlap++
				if a.label == b.label {
					ps.agree++
					if a.label != consensus {
						ps.wrong++
					}
				}
			}
		}
	}
	for key, ps := range pairs {
		if ps.overlap < d.spec.CollusionMinOverlap {
			continue
		}
		score := float64(ps.wrong) / float64(ps.overlap)
		if ps.agree == ps.overlap {
			// Perfect parroting over the whole overlap window is never
			// honest — flag even when the ring has captured the consensus.
			score = 1
		}
		if score < d.spec.CollusionThreshold {
			continue
		}
		for _, w := range []int{key[0], key[1]} {
			other := key[0] + key[1] - w
			st := d.state(w)
			if st.partners == nil {
				st.partners = map[int]struct{}{}
			}
			if _, seen := st.partners[other]; !seen {
				st.partners[other] = struct{}{}
				d.pairs++
				l.cfg.Metrics.observeCollusionFlag()
			}
			if score > st.collusionScore {
				st.collusionScore = score
			}
		}
	}
	for _, st := range d.workers {
		if len(st.partners) >= d.spec.CollusionPartners && d.spec.CollusionPartners > 0 {
			l.actionLocked(st, "collusion")
		}
	}
}

// Suspect is one worker's defense dossier as the query plane reads it
// (the rows behind the `suspects` relation and the worker-suspect view).
type Suspect struct {
	Worker       int    `json:"worker"`
	Qualified    bool   `json:"qualified"`
	GoldenPassed int    `json:"golden_passed"`
	GoldenFailed int    `json:"golden_failed"`
	Banned       bool   `json:"banned"`
	BanReason    string `json:"ban_reason,omitempty"`
	DownWeighted bool   `json:"down_weighted"`
	// CollusionScore is the worst flagged pair's wrong-agreement rate;
	// CollusionPartners counts distinct flagged counterparties.
	CollusionScore    float64 `json:"collusion_score,omitempty"`
	CollusionPartners int     `json:"collusion_partners,omitempty"`
	// QualityDrop is the detected peak-to-current probability drop.
	QualityDrop float64 `json:"quality_drop,omitempty"`
}

// Suspects reclaims, re-syncs (running any due detection sweep), and
// returns every worker's defense dossier, ordered by worker id. It
// returns nil when the defense layer is disabled.
func (l *Ledger) Suspects() []Suspect {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.def == nil {
		return nil
	}
	l.reclaimLocked(l.now())
	l.syncLocked()
	gate := l.def.spec.GoldenPass
	out := make([]Suspect, 0, len(l.def.workers))
	for w, st := range l.def.workers {
		out = append(out, Suspect{
			Worker:            w,
			Qualified:         gate == 0 || st.goldenPassed >= gate,
			GoldenPassed:      st.goldenPassed,
			GoldenFailed:      st.goldenFailed,
			Banned:            st.banned,
			BanReason:         st.banReason,
			DownWeighted:      st.downWeighted,
			CollusionScore:    st.collusionScore,
			CollusionPartners: len(st.partners),
			QualityDrop:       st.qualityDrop,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}
