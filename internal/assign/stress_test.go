package assign

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLeaseExpiryReclaimRace is the -race stress test for the ledger's
// expiry/reclaim machinery: many workers assign and complete against a
// tiny real-clock TTL while the source keeps publishing new epochs and
// answer counts, so reclaims, completions and cache re-syncs constantly
// interleave. The CI race job runs it under -race; the final accounting
// invariants catch lost or double-counted leases even without a data
// race.
func TestLeaseExpiryReclaimRace(t *testing.T) {
	const (
		tasks      = 64
		workers    = 16
		iters      = 300
		redundancy = 4
	)
	src := newFakeSource(tasks, 2)
	src.post = make([][]float64, tasks)
	for i := range src.post {
		src.post[i] = []float64{0.5, 0.5}
	}
	l, err := NewLedger(src, Config{
		Policy:     Uncertainty{},
		Redundancy: redundancy,
		LeaseTTL:   200 * time.Microsecond, // so short that reclaims race completions
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}

	var delivered atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lease, err := l.Assign(w)
				if err != nil {
					if errors.Is(err, ErrNoTask) {
						continue
					}
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if i%4 == 0 {
					// Abandon: let the lease expire and be reclaimed.
					continue
				}
				if i%8 == 1 {
					time.Sleep(300 * time.Microsecond) // usually past the TTL
				}
				err = l.Complete(lease.ID, w, func(task int) error {
					delivered.Add(1)
					src.addAnswer(task)
					return nil
				})
				// Expired-underneath-us is expected; anything else is a bug.
				if err != nil && !errors.Is(err, ErrLeaseNotFound) {
					t.Errorf("worker %d complete: %v", w, err)
					return
				}
				if err != nil {
					// The delivery ran but the lease had expired? Complete
					// reclaims BEFORE delivering, so a failed Complete must
					// not have delivered — delivered is re-checked at the end
					// against the ledger's own count.
					_ = err
				}
			}
		}(w)
	}
	// A background epoch publisher keeps invalidating the score cache.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			src.mu.Lock()
			src.resultVer++
			src.mu.Unlock()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)

	// Drain every remaining lease by letting it expire.
	time.Sleep(2 * time.Millisecond)
	st := l.Stats()
	if st.Outstanding != 0 {
		t.Fatalf("leases still outstanding after drain: %+v", st)
	}
	if st.Issued != st.Completed+st.Expired {
		t.Fatalf("lease accounting does not balance: issued %d != completed %d + expired %d",
			st.Issued, st.Completed, st.Expired)
	}
	if got := uint64(delivered.Load()); got != st.Completed {
		t.Fatalf("delivered %d answers but ledger counted %d completions", got, st.Completed)
	}
	// Self-exclusion held under the race: no task collected more answers
	// than distinct workers.
	for task, c := range src.TaskAnswerCounts() {
		if c > workers {
			t.Fatalf("task %d has %d answers from %d workers — a worker answered twice", task, c, workers)
		}
	}
}
