package buildinfo

import (
	"runtime"
	"strings"
	"testing"
)

func TestStringCarriesBinaryVersionAndGo(t *testing.T) {
	s := String("truthserve")
	for _, want := range []string{"truthserve", Version, runtime.Version()} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestStringRespectsLinkTimeVersion(t *testing.T) {
	old := Version
	defer func() { Version = old }()
	Version = "v9.9.9-test"
	if s := String("datagen"); !strings.Contains(s, "v9.9.9-test") {
		t.Errorf("String() = %q, missing overridden version", s)
	}
}
