// Package buildinfo is the shared build-identity helper behind the
// -version flag and the startup banner of every binary under cmd/. It
// combines the link-time release string with whatever the Go toolchain
// embedded (go version, VCS revision, dirty bit), so operators can read
// exactly which build is serving from a log line or `truthserve -version`.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Version is the release identifier, overridable at link time:
//
//	go build -ldflags "-X truthinference/internal/buildinfo.Version=v1.2.0"
//
// The default "dev" marks local, untagged builds.
var Version = "dev"

// String renders the one-line build banner for the named binary, e.g.
//
//	truthserve dev (go1.24.0, rev 8d078d7, dirty)
//
// Fields the toolchain did not embed (no VCS metadata in a module-cache
// build, tests) are omitted rather than faked.
func String(binary string) string {
	details := []string{runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			details = append(details, "rev "+rev)
			if dirty {
				details = append(details, "dirty")
			}
		}
	}
	return fmt.Sprintf("%s %s (%s)", binary, Version, strings.Join(details, ", "))
}
