//go:build race

package testutil

// RaceEnabled reports whether the binary was built with -race. The race
// runtime instruments every memory access and changes allocator
// behaviour, so allocation-regression tests skip themselves when it is
// on.
const RaceEnabled = true
