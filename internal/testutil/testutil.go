// Package testutil provides small planted-truth crowd generators shared by
// the method test suites: crowds with known worker accuracies where a
// correct inference method must recover the planted truth.
package testutil

import (
	"bytes"
	"log/slog"
	"testing"

	"math/rand"

	"truthinference/internal/dataset"
)

// CrowdSpec describes a planted-truth categorical crowd.
type CrowdSpec struct {
	NumTasks   int
	NumWorkers int
	NumChoices int
	Redundancy int
	// Accuracies[w] is worker w's probability of answering the truth;
	// errors spread uniformly over the other choices. Defaults to 0.8
	// for all workers when nil.
	Accuracies []float64
	Seed       int64
}

// Categorical builds a planted-truth decision or single-choice crowd.
func Categorical(spec CrowdSpec) *dataset.Dataset {
	if spec.NumChoices == 0 {
		spec.NumChoices = 2
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	acc := spec.Accuracies
	if acc == nil {
		acc = make([]float64, spec.NumWorkers)
		for w := range acc {
			acc[w] = 0.8
		}
	}
	truth := make(map[int]float64, spec.NumTasks)
	var answers []dataset.Answer
	for i := 0; i < spec.NumTasks; i++ {
		tv := rng.Intn(spec.NumChoices)
		truth[i] = float64(tv)
		perm := rng.Perm(spec.NumWorkers)
		r := spec.Redundancy
		if r > spec.NumWorkers {
			r = spec.NumWorkers
		}
		for _, w := range perm[:r] {
			l := tv
			if rng.Float64() > acc[w] {
				shift := 1 + rng.Intn(spec.NumChoices-1)
				l = (tv + shift) % spec.NumChoices
			}
			answers = append(answers, dataset.Answer{Task: i, Worker: w, Value: float64(l)})
		}
	}
	typ := dataset.Decision
	if spec.NumChoices > 2 {
		typ = dataset.SingleChoice
	}
	d, err := dataset.New("testcrowd", typ, spec.NumChoices, spec.NumTasks, spec.NumWorkers, answers, truth)
	if err != nil {
		panic("testutil: invalid crowd: " + err.Error())
	}
	return d
}

// NumericSpec describes a planted-truth numeric crowd.
type NumericSpec struct {
	NumTasks   int
	NumWorkers int
	Redundancy int
	// Sigmas[w] is worker w's answer noise; defaults to 10 when nil.
	Sigmas []float64
	// Biases[w] is worker w's systematic offset; defaults to 0 when nil.
	Biases []float64
	// TruthScale is the std-dev of planted truths (default 50).
	TruthScale float64
	Seed       int64
}

// Numeric builds a planted-truth numeric crowd.
func Numeric(spec NumericSpec) *dataset.Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.TruthScale == 0 {
		spec.TruthScale = 50
	}
	sig := spec.Sigmas
	if sig == nil {
		sig = make([]float64, spec.NumWorkers)
		for w := range sig {
			sig[w] = 10
		}
	}
	bias := spec.Biases
	if bias == nil {
		bias = make([]float64, spec.NumWorkers)
	}
	truth := make(map[int]float64, spec.NumTasks)
	var answers []dataset.Answer
	for i := 0; i < spec.NumTasks; i++ {
		tv := spec.TruthScale * rng.NormFloat64()
		truth[i] = tv
		perm := rng.Perm(spec.NumWorkers)
		r := spec.Redundancy
		if r > spec.NumWorkers {
			r = spec.NumWorkers
		}
		for _, w := range perm[:r] {
			answers = append(answers, dataset.Answer{
				Task: i, Worker: w,
				Value: tv + bias[w] + sig[w]*rng.NormFloat64(),
			})
		}
	}
	d, err := dataset.New("testcrowd-numeric", dataset.Numeric, 0, spec.NumTasks, spec.NumWorkers, answers, truth)
	if err != nil {
		panic("testutil: invalid numeric crowd: " + err.Error())
	}
	return d
}

// AccuracyOf scores inferred labels against the planted truth.
func AccuracyOf(truthMap map[int]float64, inferred []float64) float64 {
	correct := 0
	for t, v := range truthMap {
		if int(inferred[t]) == int(v) {
			correct++
		}
	}
	return float64(correct) / float64(len(truthMap))
}

// Logger bridges a *slog.Logger onto the test log, so daemon components
// that take structured loggers stay chatty under -v without writing to
// the process stderr.
func Logger(tb testing.TB) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{tb}, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

type testWriter struct{ tb testing.TB }

func (w testWriter) Write(p []byte) (int, error) {
	w.tb.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}
