// Package golden is the end-to-end regression corpus: three tiny
// checked-in datasets (testdata/*.answers.tsv + *.truth.tsv) and, for
// every method applicable to each, the exact truth vector it inferred
// when the corpus was last blessed (testdata/truths.json). The
// table-driven test diffs current output against the goldens, so any
// change to any method's numerical behavior — intended or not — shows up
// as a reviewable diff of this directory.
//
// Regenerate after an intended behavior change with:
//
//	go test ./internal/testutil/golden -update
package golden

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	ti "truthinference"
	"truthinference/internal/testutil"
)

var update = flag.Bool("update", false, "rewrite the golden datasets and expected truths")

// goldenOptions is the fixed inference configuration of the corpus.
var goldenOptions = ti.Options{Seed: 7, MaxIterations: 50}

// corpus describes the three checked-in datasets. The generator specs
// stay here so -update rebuilds the TSVs and the expected truths from
// the same source of randomness.
var corpus = []struct {
	name     string
	generate func() *ti.Dataset
}{
	{"decision", func() *ti.Dataset {
		return testutil.Categorical(testutil.CrowdSpec{
			NumTasks: 12, NumWorkers: 5, NumChoices: 2, Redundancy: 4, Seed: 2,
		})
	}},
	{"choice4", func() *ti.Dataset {
		return testutil.Categorical(testutil.CrowdSpec{
			NumTasks: 10, NumWorkers: 6, NumChoices: 4, Redundancy: 4, Seed: 3,
		})
	}},
	{"numeric", func() *ti.Dataset {
		return testutil.Numeric(testutil.NumericSpec{
			NumTasks: 8, NumWorkers: 5, Redundancy: 3, Seed: 4,
		})
	}},
}

func truthsPath() string { return filepath.Join("testdata", "truths.json") }

// TestGoldenTruths infers every applicable method over every corpus
// dataset and diffs the truth vector against the blessed golden. Exact
// for categorical labels; numeric estimates tolerate 1e-9 relative
// (cross-platform float scheduling), which is far below any behavioral
// change worth catching.
func TestGoldenTruths(t *testing.T) {
	goldens := map[string]map[string][]float64{}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	} else {
		data, err := os.ReadFile(truthsPath())
		if err != nil {
			t.Fatalf("golden truths missing (run with -update to bless): %v", err)
		}
		if err := json.Unmarshal(data, &goldens); err != nil {
			t.Fatal(err)
		}
	}

	for _, c := range corpus {
		c := c
		t.Run(c.name, func(t *testing.T) {
			base := filepath.Join("testdata", c.name)
			if *update {
				if err := ti.SaveDataset(base, c.generate()); err != nil {
					t.Fatal(err)
				}
			}
			d, err := ti.LoadDataset(base)
			if err != nil {
				t.Fatalf("load corpus dataset (run with -update to bless): %v", err)
			}
			if *update {
				goldens[c.name] = map[string][]float64{}
			}
			for _, m := range ti.MethodsForType(d.Type) {
				res, err := m.Infer(d, goldenOptions)
				if err != nil {
					t.Errorf("%s: %v", m.Name(), err)
					continue
				}
				if *update {
					goldens[c.name][m.Name()] = res.Truth
					continue
				}
				want, ok := goldens[c.name][m.Name()]
				if !ok {
					t.Errorf("%s: no golden truth recorded (run with -update to bless)", m.Name())
					continue
				}
				diffTruths(t, m.Name(), d.Type == ti.Numeric, res.Truth, want)
			}
		})
	}

	if *update {
		data, err := json.MarshalIndent(goldens, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(truthsPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden corpus rewritten; review and commit the testdata diff")
	}
}

func diffTruths(t *testing.T, method string, numeric bool, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d truths, golden has %d", method, len(got), len(want))
		return
	}
	for i := range got {
		if numeric {
			if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				t.Errorf("%s: task %d = %v, golden %v", method, i, got[i], want[i])
			}
		} else if got[i] != want[i] {
			t.Errorf("%s: task %d = %v, golden %v", method, i, got[i], want[i])
		}
	}
}
