package testutil

import (
	"testing"

	"truthinference/internal/core"
)

// RequireIdenticalResults fails the test unless got reproduces want bit
// for bit across every populated Result field. The kernel cross-check
// tests use it to prove a memory-layout rewrite (CSR kernels vs the
// pre-refactor map loops) left the arithmetic untouched: no tolerance,
// float equality is exact.
func RequireIdenticalResults(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		t.Fatalf("%s: iterations/converged (%d,%v), reference (%d,%v)",
			label, got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
	requireIdenticalVec(t, label, "Truth", got.Truth, want.Truth)
	requireIdenticalVec(t, label, "WorkerQuality", got.WorkerQuality, want.WorkerQuality)
	requireIdenticalVec(t, label, "WorkerVariance", got.WorkerVariance, want.WorkerVariance)
	if len(got.Posterior) != len(want.Posterior) {
		t.Fatalf("%s: %d posterior rows, reference %d", label, len(got.Posterior), len(want.Posterior))
	}
	for i := range want.Posterior {
		requireIdenticalVec(t, label, "Posterior row", got.Posterior[i], want.Posterior[i])
	}
	if len(got.Confusion) != len(want.Confusion) {
		t.Fatalf("%s: %d confusion matrices, reference %d", label, len(got.Confusion), len(want.Confusion))
	}
	for w := range want.Confusion {
		if len(got.Confusion[w]) != len(want.Confusion[w]) {
			t.Fatalf("%s: worker %d confusion has %d rows, reference %d",
				label, w, len(got.Confusion[w]), len(want.Confusion[w]))
		}
		for j := range want.Confusion[w] {
			requireIdenticalVec(t, label, "Confusion row", got.Confusion[w][j], want.Confusion[w][j])
		}
	}
}

func requireIdenticalVec(t *testing.T, label, field string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %s has %d entries, reference %d", label, field, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: %s[%d] = %v, reference %v (must be bit-identical)",
				label, field, i, got[i], want[i])
		}
	}
}
