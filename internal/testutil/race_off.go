//go:build !race

package testutil

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = false
