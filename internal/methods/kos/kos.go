// Package kos implements KOS (Karger, Oh, Shah, "Iterative learning for
// reliable crowdsourcing systems", NIPS 2011) as surveyed in §5.3(1) of
// the paper: a belief-propagation-style message-passing algorithm for
// decision-making tasks.
//
// Answers are mapped to A_{iw} ∈ {+1,-1} (label 1 → +1, label 0 → -1).
// Two message families are iterated on the task–worker bipartite graph:
//
//	x_{i→w} = Σ_{w'∈W_i \ {w}} A_{iw'} · y_{w'→i}   (task messages)
//	y_{w→i} = Σ_{i'∈T^w \ {i}} A_{i'w} · x_{i'→w}   (worker messages)
//
// Worker messages start from N(1,1) draws (the original paper's random
// initialization that breaks symmetry), and the final decision is
// sign(Σ_{w∈W_i} A_{iw} · y_{w→i}). Messages are L2-normalized each round
// to prevent overflow; the decision is invariant to this scaling.
package kos

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/randx"
)

// DefaultRounds is the number of message-passing rounds when
// Options.MaxIterations is zero; KOS converges in O(log n) rounds.
const DefaultRounds = 20

// KOS is the message-passing method.
type KOS struct{}

// New returns a KOS instance.
func New() *KOS { return &KOS{} }

// Name implements core.Method.
func (*KOS) Name() string { return "KOS" }

// Capabilities implements core.Method (Table 4 row: decision-making only,
// worker probability, PGM; no qualification or golden support).
func (*KOS) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:   []dataset.TaskType{dataset.Decision},
		TaskModel:   "none",
		WorkerModel: "worker probability",
		Technique:   core.PGM,
	}
}

// Infer implements core.Method.
func (m *KOS) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	rng := randx.New(opts.Seed)
	rounds := DefaultRounds
	if opts.MaxIterations > 0 {
		rounds = opts.MaxIterations
	}

	nEdges := len(d.Answers)
	sign := make([]float64, nEdges) // A_{iw}
	for e, a := range d.Answers {
		if a.Label() == 1 {
			sign[e] = 1
		} else {
			sign[e] = -1
		}
	}

	x := make([]float64, nEdges) // x_{i→w} indexed by answer/edge
	y := make([]float64, nEdges) // y_{w→i}
	for e := range y {
		y[e] = 1 + rng.NormFloat64()
	}

	// Per-task and per-worker aggregate sums let each round run in
	// O(edges) instead of O(edges · degree).
	taskSum := make([]float64, d.NumTasks)
	workerSum := make([]float64, d.NumWorkers)

	for round := 0; round < rounds; round++ {
		// Task messages: x_{i→w} = taskSum_i - A_{iw} y_{w→i}.
		for i := range taskSum {
			taskSum[i] = 0
		}
		for e, a := range d.Answers {
			taskSum[a.Task] += sign[e] * y[e]
		}
		for e, a := range d.Answers {
			x[e] = taskSum[a.Task] - sign[e]*y[e]
		}
		// Worker messages: y_{w→i} = workerSum_w - A_{iw} x_{i→w}.
		for w := range workerSum {
			workerSum[w] = 0
		}
		for e, a := range d.Answers {
			workerSum[a.Worker] += sign[e] * x[e]
		}
		for e, a := range d.Answers {
			y[e] = workerSum[a.Worker] - sign[e]*x[e]
		}
		normalizeL2(y)
	}

	// Final beliefs and decisions.
	for i := range taskSum {
		taskSum[i] = 0
	}
	for e, a := range d.Answers {
		taskSum[a.Task] += sign[e] * y[e]
	}
	truth := make([]float64, d.NumTasks)
	for i, b := range taskSum {
		switch {
		case b > 0:
			truth[i] = 1
		case b < 0:
			truth[i] = 0
		default:
			truth[i] = float64(rng.Intn(2))
		}
	}

	// Worker quality summary: the normalized reliability estimate
	// Σ A x / |T^w| (positive ⇒ better than random).
	quality := make([]float64, d.NumWorkers)
	counts := make([]float64, d.NumWorkers)
	for e, a := range d.Answers {
		quality[a.Worker] += sign[e] * x[e]
		counts[a.Worker]++
	}
	for w := range quality {
		if counts[w] > 0 {
			quality[w] /= counts[w]
		}
	}

	return &core.Result{
		Truth:         truth,
		WorkerQuality: quality,
		Iterations:    rounds,
		Converged:     true,
	}, nil
}

func normalizeL2(xs []float64) {
	var ss float64
	for _, v := range xs {
		ss += v * v
	}
	if ss == 0 {
		return
	}
	norm := math.Sqrt(ss / float64(len(xs)))
	for i := range xs {
		xs[i] /= norm
	}
}
