package kos

import (
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/testutil"
)

func TestKOSRecoversEasyCrowd(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 400, NumWorkers: 25, Redundancy: 6, Seed: 1})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.9 {
		t.Errorf("accuracy %.3f < 0.9", got)
	}
}

// TestKOSMaliciousWorkersGetNegativeReliability: KOS's reliability
// estimate y is signed — a worker who systematically inverts the truth
// should end with negative estimated reliability, which the decision rule
// then exploits (the anti-correlation is information, not noise).
func TestKOSMaliciousWorkers(t *testing.T) {
	const nw = 20
	acc := make([]float64, nw)
	for w := range acc {
		if w < 5 {
			acc[w] = 0.1 // malicious: almost always wrong
		} else {
			acc[w] = 0.85
		}
	}
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 400, NumWorkers: nw, Redundancy: 6, Accuracies: acc, Seed: 3})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.9 {
		t.Errorf("accuracy %.3f < 0.9 with malicious workers", got)
	}
	for w := 0; w < 5; w++ {
		if res.WorkerQuality[w] >= 0 {
			t.Errorf("malicious worker %d reliability %.3f not negative", w, res.WorkerQuality[w])
		}
	}
	for w := 5; w < nw; w++ {
		if res.WorkerQuality[w] <= 0 {
			t.Errorf("honest worker %d reliability %.3f not positive", w, res.WorkerQuality[w])
		}
	}
}

func TestKOSDecisionOnly(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 10, NumWorkers: 5, NumChoices: 4, Redundancy: 3, Seed: 5})
	if _, err := New().Infer(d, core.Options{}); err == nil {
		t.Error("KOS must reject single-choice datasets (Table 4)")
	}
}

func TestKOSEmptyTasksGetRandomLabel(t *testing.T) {
	d, err := dataset.New("empty", dataset.Decision, 2, 3, 2, []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Truth {
		if v != 0 && v != 1 {
			t.Errorf("task %d label %v invalid", i, v)
		}
	}
}

func TestKOSRoundsOption(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 50, NumWorkers: 8, Redundancy: 4, Seed: 7})
	res, err := New().Infer(d, core.Options{Seed: 2, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", res.Iterations)
	}
}
