package vi

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/testutil"
)

func TestBothVariantsRecoverEasyCrowd(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 400, NumWorkers: 25, Redundancy: 6, Seed: 1})
	for _, m := range []*VI{NewMF(), NewBP()} {
		res, err := m.Infer(d, core.Options{Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.9 {
			t.Errorf("%s accuracy %.3f < 0.9", m.Name(), got)
		}
	}
}

func TestPosteriorReliabilityOrdering(t *testing.T) {
	const nw = 20
	acc := make([]float64, nw)
	for w := range acc {
		if w < 10 {
			acc[w] = 0.6
		} else {
			acc[w] = 0.95
		}
	}
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 400, NumWorkers: nw, Redundancy: 6, Accuracies: acc, Seed: 3})
	for _, m := range []*VI{NewMF(), NewBP()} {
		res, err := m.Infer(d, core.Options{Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		var lo, hi float64
		for w := 0; w < nw; w++ {
			q := res.WorkerQuality[w]
			if q <= 0 || q >= 1 {
				t.Fatalf("%s: posterior mean reliability %v outside (0,1)", m.Name(), q)
			}
			if w < 10 {
				lo += q
			} else {
				hi += q
			}
		}
		if lo/10 >= hi/10 {
			t.Errorf("%s: weak workers %.3f not below strong %.3f", m.Name(), lo/10, hi/10)
		}
	}
}

func TestMFBayesianShrinkage(t *testing.T) {
	// A worker with very few answers must have a reliability estimate
	// shrunk toward the Beta prior mean, unlike a prolific worker with
	// the same empirical accuracy — the Bayesian-estimator property that
	// separates VI methods from ZC's point estimates (§5.3(1)).
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 200, NumWorkers: 10, Redundancy: 5, Seed: 5})
	res, err := NewMF().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	priorMean := PriorA / (PriorA + PriorB)
	// Every estimate stays strictly inside (0,1) and the population mean
	// is pulled above the prior mean (competent crowd).
	var mean float64
	for _, q := range res.WorkerQuality {
		mean += q
	}
	mean /= float64(len(res.WorkerQuality))
	if mean <= priorMean {
		t.Errorf("population reliability %.3f not above prior mean %.3f on a competent crowd", mean, priorMean)
	}
}

func TestVariantCapabilities(t *testing.T) {
	mf, bp := NewMF(), NewBP()
	if !mf.Capabilities().Golden || !mf.Capabilities().Qualification {
		t.Error("VI-MF must support golden and qualification (§6.3.2–6.3.3)")
	}
	if bp.Capabilities().Golden || bp.Capabilities().Qualification {
		t.Error("VI-BP must not support golden or qualification")
	}
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 10, NumWorkers: 4, NumChoices: 4, Redundancy: 3, Seed: 7})
	if _, err := mf.Infer(d, core.Options{}); err == nil {
		t.Error("VI methods must reject single-choice datasets (Table 4)")
	}
}

func TestMFGoldenAndQualification(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 80, NumWorkers: 8, Redundancy: 4, Seed: 9})
	golden := map[int]float64{0: d.Truth[0], 1: d.Truth[1]}
	res, err := NewMF().Infer(d, core.Options{Seed: 2, Golden: golden})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range golden {
		if res.Truth[id] != v {
			t.Errorf("golden task %d not pinned", id)
		}
	}
	qa := make([]float64, 8)
	for i := range qa {
		qa[i] = 0.9
	}
	if _, err := NewMF().Infer(d, core.Options{Seed: 2, QualificationAccuracy: qa}); err != nil {
		t.Errorf("qualification run failed: %v", err)
	}
}

func TestBPPosteriorsValid(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 100, NumWorkers: 10, Redundancy: 4, Seed: 11})
	res, err := NewBP().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Posterior {
		sum := row[0] + row[1]
		if math.Abs(sum-1) > 1e-9 || row[0] < 0 || row[1] < 0 {
			t.Fatalf("task %d posterior %v invalid", i, row)
		}
	}
}
