// Package vi implements VI-BP and VI-MF (Liu, Peng, Ihler, "Variational
// inference for crowdsourcing", NIPS 2012) as surveyed in §5.3(1) of the
// paper. Both are Bayesian estimators: instead of the point estimate of
// ZC they place Beta(A, B) priors on every worker's reliability q_w and
// estimate the truth by (approximately) integrating q_w out:
//
//	Pr(v*_i = z | V) = ∫ Pr(v*_i = z, {q_w} | V) d{q_w}
//
// VI-MF approximates the integral with a mean-field factorization
// q({v*}, {q_w}) = Π_i μ_i(v*_i) Π_w Beta(q_w; a_w, b_w); the coordinate
// updates use digamma expectations E[ln q] = ψ(a) - ψ(a+b).
//
// VI-BP runs the same Beta-posterior computation on the task–worker graph
// with belief-propagation-style cavity messages: worker w's message to
// task i uses a Beta posterior that excludes task i's own belief, and task
// i's message to worker w excludes worker w's message — the KOS recursion
// generalized to arbitrary priors (§5.3: "a more general model based on
// KOS").
package vi

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// Beta prior hyperparameters on worker reliability. (2,1) encodes the mild
// optimism that workers beat coin flips, the default in the original
// implementation.
const (
	PriorA = 2.0
	PriorB = 1.0
)

// Variant selects the approximate-inference flavor.
type Variant int

const (
	// MeanField is VI-MF.
	MeanField Variant = iota
	// BeliefPropagation is VI-BP.
	BeliefPropagation
)

// VI is the variational-inference method in one of its two variants.
type VI struct {
	variant Variant
}

// NewMF returns VI-MF.
func NewMF() *VI { return &VI{variant: MeanField} }

// NewBP returns VI-BP.
func NewBP() *VI { return &VI{variant: BeliefPropagation} }

// Name implements core.Method.
func (m *VI) Name() string {
	if m.variant == MeanField {
		return "VI-MF"
	}
	return "VI-BP"
}

// Capabilities implements core.Method. Table 4 restricts both variants to
// decision-making tasks; per §6.3.2–6.3.3 only VI-MF accepts
// qualification-test initialization and golden tasks.
func (m *VI) Capabilities() core.Capabilities {
	caps := core.Capabilities{
		TaskTypes:   []dataset.TaskType{dataset.Decision},
		TaskModel:   "none",
		WorkerModel: "confusion matrix",
		Technique:   core.PGM,
	}
	if m.variant == MeanField {
		caps.Qualification = true
		caps.Golden = true
	}
	return caps
}

// Infer implements core.Method.
func (m *VI) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	if m.variant == MeanField {
		return m.inferMF(d, opts)
	}
	return m.inferBP(d, opts)
}

// inferMF runs the mean-field coordinate ascent.
func (m *VI) inferMF(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	rng := randx.New(opts.Seed)

	// Beta posterior parameters per worker.
	a := make([]float64, d.NumWorkers)
	b := make([]float64, d.NumWorkers)
	for w := range a {
		a[w], b[w] = PriorA, PriorB
		if opts.QualificationAccuracy != nil && !math.IsNaN(opts.QualificationAccuracy[w]) {
			// A qualification test with g golden tasks acts as g
			// pseudo-observations split by the measured accuracy.
			const g = 20
			acc := mathx.Clamp(opts.QualificationAccuracy[w], 0, 1)
			a[w] += g * acc
			b[w] += g * (1 - acc)
		}
		// A warm start rebuilds the converged Beta posterior from the
		// reported posterior-mean reliability: at a fixed point
		// a ≈ PriorA + n·q̄ with one pseudo-observation per answer the
		// worker holds in the current dataset.
		if qw := opts.WarmStart.QualityOr(w, math.NaN()); !math.IsNaN(qw) {
			n := float64(len(d.WorkerAnswers(w)))
			acc := mathx.Clamp(qw, 0.01, 0.99)
			a[w] = PriorA + n*acc
			b[w] = PriorB + n*(1-acc)
		}
	}

	pool := opts.EnginePool()
	post := core.UniformPosterior(d.NumTasks, 2)
	prevA := make([]float64, d.NumWorkers)
	// Per-worker digamma expectations, refreshed once per iteration: the
	// task update reads E[ln q_w] once per answer, and digamma is far too
	// expensive to recompute |W_i| times per task.
	elnq := make([]float64, d.NumWorkers)
	eln1q := make([]float64, d.NumWorkers)

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				dab := mathx.Digamma(a[w] + b[w])
				elnq[w] = mathx.Digamma(a[w]) - dab
				eln1q[w] = mathx.Digamma(b[w]) - dab
			}
		})
		// Task update: μ_i(z) ∝ exp Σ_w [1{v=z}E ln q + 1{v≠z}E ln(1-q)],
		// fanned out over tasks.
		pool.For(d.NumTasks, func(ilo, ihi int) {
			var logw [2]float64
			for i := ilo; i < ihi; i++ {
				logw[0], logw[1] = 0, 0
				for _, ai := range d.TaskAnswers(i) {
					ans := d.Answers[ai]
					l := ans.Label()
					logw[l] += elnq[ans.Worker]
					logw[1-l] += eln1q[ans.Worker]
				}
				mathx.NormalizeLog(logw[:])
				post[i][0], post[i][1] = logw[0], logw[1]
			}
		})
		core.PinGolden(post, opts.Golden)

		// Worker update: Beta(a,b) with expected correct/incorrect
		// counts, fanned out over workers.
		copy(prevA, a)
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				aw, bw := PriorA, PriorB
				for _, ai := range d.WorkerAnswers(w) {
					ans := d.Answers[ai]
					pCorrect := post[ans.Task][ans.Label()]
					aw += pCorrect
					bw += 1 - pCorrect
				}
				a[w], b[w] = aw, bw
			}
		})

		if core.MaxAbsDiff(a, prevA) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	truth := core.PosteriorLabels(post, opts.Golden, rng.Intn)
	quality := make([]float64, d.NumWorkers)
	for w := range quality {
		quality[w] = a[w] / (a[w] + b[w]) // posterior mean reliability
	}
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: quality,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// inferBP runs the cavity-message version on the bipartite graph. Edge e
// corresponds to answer e; mu[e] is the task→worker message (probability
// that the worker's answer on this edge is correct, excluding the
// worker's own influence).
func (m *VI) inferBP(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	rng := randx.New(opts.Seed)
	nEdges := len(d.Answers)

	mu := make([]float64, nEdges) // task→worker cavity: Pr(edge answer correct)
	for e := range mu {
		// Always consume the random draw so edges on tasks outside the
		// warm state initialize identically with or without one.
		mu[e] = 0.5 + 0.1*rng.NormFloat64()
		mu[e] = mathx.Clamp(mu[e], 0.05, 0.95)
		// A warm start replaces the random message with the previous
		// epoch's belief that this edge's answer is correct.
		a := d.Answers[e]
		if row := opts.WarmStart.PosteriorRow(a.Task, 2); row != nil {
			mu[e] = mathx.Clamp(row[a.Label()], 0.05, 0.95)
		}
	}
	// Worker sums of μ over their edges, to form cavity Beta posteriors.
	pool := opts.EnginePool()
	wSum := make([]float64, d.NumWorkers)
	wCount := make([]float64, d.NumWorkers)
	prevMu := make([]float64, nEdges)

	post := core.UniformPosterior(d.NumTasks, 2)
	taskLog0 := make([]float64, d.NumTasks)
	taskLog1 := make([]float64, d.NumTasks)
	edgeLog0 := make([]float64, nEdges)
	edgeLog1 := make([]float64, nEdges)

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevMu, mu)
		// Accumulate worker totals once per round, fanned out over
		// workers (each sum spans only that worker's edges, in ascending
		// edge order).
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				idxs := d.WorkerAnswers(w)
				var s float64
				for _, e := range idxs {
					s += mu[e]
				}
				wSum[w], wCount[w] = s, float64(len(idxs))
			}
		})
		// Worker→task messages: digamma expectations of the cavity Beta
		// posterior (excluding edge e itself), fanned out over edges —
		// then per-task log-odds with all workers included, fanned out
		// over tasks, so each edge's own contribution can be subtracted
		// to form the cavity.
		pool.For(nEdges, func(elo, ehi int) {
			for e := elo; e < ehi; e++ {
				ans := d.Answers[e]
				aCav := PriorA + wSum[ans.Worker] - mu[e]
				bCav := PriorB + (wCount[ans.Worker] - 1) - (wSum[ans.Worker] - mu[e])
				if bCav < 1e-6 {
					bCav = 1e-6
				}
				elnq := mathx.Digamma(aCav) - mathx.Digamma(aCav+bCav)
				eln1q := mathx.Digamma(bCav) - mathx.Digamma(aCav+bCav)
				if ans.Label() == 1 {
					edgeLog1[e], edgeLog0[e] = elnq, eln1q
				} else {
					edgeLog0[e], edgeLog1[e] = elnq, eln1q
				}
			}
		})
		pool.For(d.NumTasks, func(ilo, ihi int) {
			for i := ilo; i < ihi; i++ {
				var l0, l1 float64
				for _, e := range d.TaskAnswers(i) {
					l0 += edgeLog0[e]
					l1 += edgeLog1[e]
				}
				taskLog0[i], taskLog1[i] = l0, l1
			}
		})
		// Update task→worker cavity messages and beliefs, fanned out
		// over edges and tasks respectively.
		pool.For(nEdges, func(elo, ehi int) {
			for e := elo; e < ehi; e++ {
				ans := d.Answers[e]
				l0 := taskLog0[ans.Task] - edgeLog0[e]
				l1 := taskLog1[ans.Task] - edgeLog1[e]
				// Probability that the edge's answer equals the truth
				// under the cavity belief.
				p1 := mathx.Logistic(l1 - l0)
				if ans.Label() == 1 {
					mu[e] = mathx.Clamp(p1, 1e-6, 1-1e-6)
				} else {
					mu[e] = mathx.Clamp(1-p1, 1e-6, 1-1e-6)
				}
			}
		})
		pool.For(d.NumTasks, func(ilo, ihi int) {
			var logw [2]float64
			for i := ilo; i < ihi; i++ {
				logw[0], logw[1] = taskLog0[i], taskLog1[i]
				mathx.NormalizeLog(logw[:])
				post[i][0], post[i][1] = logw[0], logw[1]
			}
		})

		if core.MaxAbsDiff(mu, prevMu) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	truth := core.PosteriorLabels(post, nil, rng.Intn)
	quality := make([]float64, d.NumWorkers)
	for w := range quality {
		if wCount[w] > 0 {
			quality[w] = (PriorA + wSum[w]) / (PriorA + PriorB + wCount[w])
		} else {
			quality[w] = PriorA / (PriorA + PriorB)
		}
	}
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: quality,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}
