package zc

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/testutil"
)

func TestZCRecoversAndRanksWorkers(t *testing.T) {
	const nw = 20
	acc := make([]float64, nw)
	for w := range acc {
		if w < 5 {
			acc[w] = 0.55
		} else {
			acc[w] = 0.9
		}
	}
	d := testutil.Categorical(testutil.CrowdSpec{
		NumTasks: 400, NumWorkers: nw, Redundancy: 6, Accuracies: acc, Seed: 1,
	})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.9 {
		t.Errorf("accuracy %.3f < 0.9", got)
	}
	// Estimated worker probabilities must separate the two groups.
	for w := 0; w < nw; w++ {
		q := res.WorkerQuality[w]
		if w < 5 && q > 0.75 {
			t.Errorf("weak worker %d got quality %.3f", w, q)
		}
		if w >= 5 && q < 0.75 {
			t.Errorf("strong worker %d got quality %.3f", w, q)
		}
	}
	if !res.Converged {
		t.Error("ZC did not converge on an easy crowd")
	}
}

func TestZCPosteriorRowsAreDistributions(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 50, NumWorkers: 8, NumChoices: 4, Redundancy: 4, Seed: 3})
	res, err := New().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Posterior {
		var sum float64
		for _, p := range row {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("task %d posterior %v invalid", i, row)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("task %d posterior sums to %v", i, sum)
		}
	}
}

func TestZCQualificationInitialization(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 10, Redundancy: 3, Seed: 5})
	qa := make([]float64, 10)
	for w := range qa {
		qa[w] = 0.95
		if w == 0 {
			qa[w] = math.NaN() // keep default for worker 0
		}
	}
	res, err := New().Infer(d, core.Options{Seed: 1, QualificationAccuracy: qa, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	// After one iteration from a 0.95 start the high-prior workers should
	// still carry higher quality than the default-start worker would at
	// the same point; mostly we assert the option is accepted and the
	// result is sane.
	for w, q := range res.WorkerQuality {
		if q <= 0 || q >= 1 {
			t.Errorf("worker %d quality %v outside (0,1)", w, q)
		}
	}
}

func TestZCGoldenImprovesOnAdversarialCrowd(t *testing.T) {
	// A crowd of mostly-malicious workers (accuracy 0.3): unsupervised ZC
	// locks onto the inverted labeling; golden tasks should pull the
	// truth assignments of the golden subset to the pinned values.
	const nw = 10
	acc := make([]float64, nw)
	for w := range acc {
		acc[w] = 0.3
	}
	d := testutil.Categorical(testutil.CrowdSpec{
		NumTasks: 100, NumWorkers: nw, Redundancy: 5, Accuracies: acc, Seed: 7,
	})
	golden := map[int]float64{}
	for i := 0; i < 30; i++ {
		golden[i] = d.Truth[i]
	}
	res, err := New().Infer(d, core.Options{Seed: 1, Golden: golden})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range golden {
		if res.Truth[id] != v {
			t.Fatalf("golden task %d not pinned", id)
		}
	}
	// With 30% of truths pinned, the malicious workers' qualities should
	// be driven below 0.5.
	var mean float64
	for _, q := range res.WorkerQuality {
		mean += q
	}
	mean /= nw
	if mean >= 0.5 {
		t.Errorf("mean estimated quality %.3f should be < 0.5 for a malicious crowd with golden supervision", mean)
	}
}

func TestZCDegenerateDatasets(t *testing.T) {
	// No answers at all: posteriors stay uniform and nothing panics.
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 5, NumWorkers: 3, Redundancy: 0, Seed: 9})
	res, err := New().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truth) != 5 {
		t.Fatalf("truth length %d", len(res.Truth))
	}
	for _, row := range res.Posterior {
		if math.Abs(row[0]-0.5) > 1e-9 {
			t.Errorf("empty-task posterior %v, want uniform", row)
		}
	}
}
