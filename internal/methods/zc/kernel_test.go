package zc

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
	"truthinference/internal/testutil"
)

// inferMapReference is the pre-refactor ZC loop, preserved verbatim: it
// walks the per-task/per-worker index slices, recomputes log(q_w) and
// log((1-q_w)/(ℓ-1)) per answer, and allocates its E-step scratch per
// chunk. The CSR kernels must reproduce it bit for bit.
func inferMapReference(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	rng := randx.New(opts.Seed)
	ell := float64(d.NumChoices)

	q := make([]float64, d.NumWorkers)
	for w := range q {
		q[w] = DefaultInitialQuality
		if opts.QualificationAccuracy != nil && !math.IsNaN(opts.QualificationAccuracy[w]) {
			q[w] = mathx.Clamp(opts.QualificationAccuracy[w], qualityFloor, 1-qualityFloor)
		}
		q[w] = mathx.Clamp(opts.WarmStart.QualityOr(w, q[w]), qualityFloor, 1-qualityFloor)
	}

	pool := opts.EnginePool()
	post := core.UniformPosterior(d.NumTasks, d.NumChoices)
	prevQ := make([]float64, d.NumWorkers)

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		pool.For(d.NumTasks, func(ilo, ihi int) {
			logw := make([]float64, d.NumChoices)
			for i := ilo; i < ihi; i++ {
				for k := range logw {
					logw[k] = 0
				}
				for _, ai := range d.TaskAnswers(i) {
					a := d.Answers[ai]
					qw := mathx.Clamp(q[a.Worker], qualityFloor, 1-qualityFloor)
					logCorrect := math.Log(qw)
					logWrong := math.Log((1 - qw) / (ell - 1))
					for k := 0; k < d.NumChoices; k++ {
						if a.Label() == k {
							logw[k] += logCorrect
						} else {
							logw[k] += logWrong
						}
					}
				}
				mathx.NormalizeLog(logw)
				copy(post[i], logw)
			}
		})
		core.PinGolden(post, opts.Golden)

		copy(prevQ, q)
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				idxs := d.WorkerAnswers(w)
				if len(idxs) == 0 {
					continue
				}
				var s float64
				for _, ai := range idxs {
					a := d.Answers[ai]
					s += post[a.Task][a.Label()]
				}
				q[w] = mathx.Clamp(s/float64(len(idxs)), qualityFloor, 1-qualityFloor)
			}
		})

		if core.MaxAbsDiff(q, prevQ) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	truth := core.PosteriorLabels(post, opts.Golden, rng.Intn)
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: q,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// TestKernelMatchesMapImplementation cross-checks the CSR kernels against
// the pre-refactor map loops on the golden-corpus dataset shapes: every
// field of the result must match bit for bit at 1 and 4 workers.
func TestKernelMatchesMapImplementation(t *testing.T) {
	corpus := []*dataset.Dataset{
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 12, NumWorkers: 5, NumChoices: 2, Redundancy: 4, Seed: 2}),
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 10, NumWorkers: 6, NumChoices: 4, Redundancy: 4, Seed: 3}),
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 12, NumChoices: 3, Redundancy: 7, Seed: 9}),
	}
	for _, d := range corpus {
		for _, par := range []int{1, 4} {
			opts := core.Options{Seed: 7, MaxIterations: 50, Parallelism: par}
			want, err := inferMapReference(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := New().Infer(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireIdenticalResults(t, "zc", got, want)
		}
	}
}
