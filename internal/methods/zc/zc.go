// Package zc implements ZC (Demartini, Difallah, Cudré-Mauroux,
// "ZenCrowd", WWW 2012) as surveyed in §5.3(1) of the paper: an
// expectation–maximization method that models each worker with a single
// worker probability q_w ∈ [0,1] and maximizes the likelihood of the
// observed answers Pr(V | {q_w}) with the task truths as latent variables.
//
// E-step (truth): Pr(v*_i = z) ∝ Π_{w ∈ W_i} q_w^{1[v^w_i = z]} ·
// ((1-q_w)/(ℓ-1))^{1[v^w_i ≠ z]}, computed in log space.
//
// M-step (quality): q_w = Σ_{i ∈ T^w} Pr(v*_i = v^w_i) / |T^w|, i.e. the
// expected fraction of tasks the worker answered correctly.
//
// ZC accepts qualification-test initialization (q_w set from golden-task
// accuracy, §6.3.2) and hidden-test golden tasks (their posteriors pinned
// to the known truth during the E-step, §6.3.3).
package zc

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// DefaultInitialQuality is the optimistic prior used when no qualification
// test is provided: workers are assumed mostly reliable, which is the
// standard symmetric-breaking initialization for EM truth inference.
const DefaultInitialQuality = 0.8

// qualityFloor keeps q_w strictly inside (0,1) so log-likelihood terms stay
// finite even for workers the E-step judges always wrong (or right).
const qualityFloor = 1e-4

// ZC is the ZenCrowd EM method.
type ZC struct{}

// New returns a ZC instance.
func New() *ZC { return &ZC{} }

// Name implements core.Method.
func (*ZC) Name() string { return "ZC" }

// Capabilities implements core.Method (Table 4 row: decision-making and
// single-choice tasks, no task model, worker probability, PGM).
func (*ZC) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:     []dataset.TaskType{dataset.Decision, dataset.SingleChoice},
		TaskModel:     "none",
		WorkerModel:   "worker probability",
		Technique:     core.PGM,
		Qualification: true,
		Golden:        true,
	}
}

// Infer implements core.Method.
func (m *ZC) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	rng := randx.New(opts.Seed)
	ell := float64(d.NumChoices)

	q := make([]float64, d.NumWorkers)
	for w := range q {
		q[w] = DefaultInitialQuality
		if opts.QualificationAccuracy != nil && !math.IsNaN(opts.QualificationAccuracy[w]) {
			q[w] = mathx.Clamp(opts.QualificationAccuracy[w], qualityFloor, 1-qualityFloor)
		}
		// A warm start resumes the previous epoch's worker probabilities.
		q[w] = mathx.Clamp(opts.WarmStart.QualityOr(w, q[w]), qualityFloor, 1-qualityFloor)
	}

	pool := opts.EnginePool()
	c := dataset.BuildCSR(d)
	post := core.UniformPosterior(d.NumTasks, d.NumChoices)
	prevQ := make([]float64, d.NumWorkers)
	logCorrect := make([]float64, d.NumWorkers)
	logWrong := make([]float64, d.NumWorkers)

	// Per-worker log terms, taken once per iteration instead of once per
	// answer in the E-step: q_w is constant within an E-step, so these are
	// the same math.Log values the per-answer form produced.
	logStep := func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			qw := mathx.Clamp(q[w], qualityFloor, 1-qualityFloor)
			logCorrect[w] = math.Log(qw)
			logWrong[w] = math.Log((1 - qw) / (ell - 1))
		}
	}
	// E-step: task posteriors from current worker qualities, fanned out
	// over tasks (each goroutine owns disjoint post rows, computed in
	// place — same op sequence as the old scratch-then-copy).
	eStep := func(_, ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			row := post[i]
			for k := range row {
				row[k] = 0
			}
			for p := c.TaskOff[i]; p < c.TaskOff[i+1]; p++ {
				w := c.TaskWorker[p]
				lab := int(c.TaskLabel[p])
				lc, lw := logCorrect[w], logWrong[w]
				for k := range row {
					if lab == k {
						row[k] += lc
					} else {
						row[k] += lw
					}
				}
			}
			mathx.NormalizeLog(row)
		}
	}
	// M-step: expected accuracy per worker, fanned out over workers.
	mStep := func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			deg := c.WorkerDegree(w)
			if deg == 0 {
				continue
			}
			var s float64
			for p := c.WorkerOff[w]; p < c.WorkerOff[w+1]; p++ {
				s += post[c.WorkerTask[p]][c.WorkerLabel[p]]
			}
			q[w] = mathx.Clamp(s/float64(deg), qualityFloor, 1-qualityFloor)
		}
	}

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		pool.ForSlot(d.NumWorkers, logStep)
		pool.ForSlot(d.NumTasks, eStep)
		core.PinGolden(post, opts.Golden)

		copy(prevQ, q)
		pool.ForSlot(d.NumWorkers, mStep)

		if core.MaxAbsDiff(q, prevQ) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	truth := core.PosteriorLabels(post, opts.Golden, rng.Intn)
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: q,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}
