// Package zc implements ZC (Demartini, Difallah, Cudré-Mauroux,
// "ZenCrowd", WWW 2012) as surveyed in §5.3(1) of the paper: an
// expectation–maximization method that models each worker with a single
// worker probability q_w ∈ [0,1] and maximizes the likelihood of the
// observed answers Pr(V | {q_w}) with the task truths as latent variables.
//
// E-step (truth): Pr(v*_i = z) ∝ Π_{w ∈ W_i} q_w^{1[v^w_i = z]} ·
// ((1-q_w)/(ℓ-1))^{1[v^w_i ≠ z]}, computed in log space.
//
// M-step (quality): q_w = Σ_{i ∈ T^w} Pr(v*_i = v^w_i) / |T^w|, i.e. the
// expected fraction of tasks the worker answered correctly.
//
// ZC accepts qualification-test initialization (q_w set from golden-task
// accuracy, §6.3.2) and hidden-test golden tasks (their posteriors pinned
// to the known truth during the E-step, §6.3.3).
package zc

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// DefaultInitialQuality is the optimistic prior used when no qualification
// test is provided: workers are assumed mostly reliable, which is the
// standard symmetric-breaking initialization for EM truth inference.
const DefaultInitialQuality = 0.8

// qualityFloor keeps q_w strictly inside (0,1) so log-likelihood terms stay
// finite even for workers the E-step judges always wrong (or right).
const qualityFloor = 1e-4

// ZC is the ZenCrowd EM method.
type ZC struct{}

// New returns a ZC instance.
func New() *ZC { return &ZC{} }

// Name implements core.Method.
func (*ZC) Name() string { return "ZC" }

// Capabilities implements core.Method (Table 4 row: decision-making and
// single-choice tasks, no task model, worker probability, PGM).
func (*ZC) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:     []dataset.TaskType{dataset.Decision, dataset.SingleChoice},
		TaskModel:     "none",
		WorkerModel:   "worker probability",
		Technique:     core.PGM,
		Qualification: true,
		Golden:        true,
	}
}

// Infer implements core.Method.
func (m *ZC) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	rng := randx.New(opts.Seed)
	ell := float64(d.NumChoices)

	q := make([]float64, d.NumWorkers)
	for w := range q {
		q[w] = DefaultInitialQuality
		if opts.QualificationAccuracy != nil && !math.IsNaN(opts.QualificationAccuracy[w]) {
			q[w] = mathx.Clamp(opts.QualificationAccuracy[w], qualityFloor, 1-qualityFloor)
		}
		// A warm start resumes the previous epoch's worker probabilities.
		q[w] = mathx.Clamp(opts.WarmStart.QualityOr(w, q[w]), qualityFloor, 1-qualityFloor)
	}

	pool := opts.EnginePool()
	post := core.UniformPosterior(d.NumTasks, d.NumChoices)
	prevQ := make([]float64, d.NumWorkers)

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		// E-step: task posteriors from current worker qualities, fanned
		// out over tasks (each goroutine owns disjoint post rows).
		pool.For(d.NumTasks, func(ilo, ihi int) {
			logw := make([]float64, d.NumChoices)
			for i := ilo; i < ihi; i++ {
				for k := range logw {
					logw[k] = 0
				}
				for _, ai := range d.TaskAnswers(i) {
					a := d.Answers[ai]
					qw := mathx.Clamp(q[a.Worker], qualityFloor, 1-qualityFloor)
					logCorrect := math.Log(qw)
					logWrong := math.Log((1 - qw) / (ell - 1))
					for k := 0; k < d.NumChoices; k++ {
						if a.Label() == k {
							logw[k] += logCorrect
						} else {
							logw[k] += logWrong
						}
					}
				}
				mathx.NormalizeLog(logw)
				copy(post[i], logw)
			}
		})
		core.PinGolden(post, opts.Golden)

		// M-step: expected accuracy per worker, fanned out over workers.
		copy(prevQ, q)
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				idxs := d.WorkerAnswers(w)
				if len(idxs) == 0 {
					continue
				}
				var s float64
				for _, ai := range idxs {
					a := d.Answers[ai]
					s += post[a.Task][a.Label()]
				}
				q[w] = mathx.Clamp(s/float64(len(idxs)), qualityFloor, 1-qualityFloor)
			}
		})

		if core.MaxAbsDiff(q, prevQ) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	truth := core.PosteriorLabels(post, opts.Golden, rng.Intn)
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: q,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}
