package minimax

import (
	"math/rand"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
)

// easyCrowd builds a binary dataset with uniformly competent workers.
func easyCrowd(t *testing.T, numTasks, numWorkers, redundancy int, acc float64, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	truth := make(map[int]float64, numTasks)
	var answers []dataset.Answer
	for i := 0; i < numTasks; i++ {
		tv := rng.Intn(2)
		truth[i] = float64(tv)
		perm := rng.Perm(numWorkers)
		for _, w := range perm[:redundancy] {
			l := tv
			if rng.Float64() > acc {
				l = 1 - tv
			}
			answers = append(answers, dataset.Answer{Task: i, Worker: w, Value: float64(l)})
		}
	}
	d, err := dataset.New("easy", dataset.Decision, 2, numTasks, numWorkers, answers, truth)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMinimaxEasyCrowd(t *testing.T) {
	d := easyCrowd(t, 200, 20, 5, 0.8, 42)
	res, err := New().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < d.NumTasks; i++ {
		if int(res.Truth[i]) == int(d.Truth[i]) {
			correct++
		}
	}
	acc := float64(correct) / float64(d.NumTasks)
	t.Logf("minimax accuracy on easy crowd: %.3f (iters %d, converged %v)", acc, res.Iterations, res.Converged)
	if acc < 0.85 {
		t.Fatalf("minimax accuracy %.3f below 0.85 on easy crowd", acc)
	}
}
