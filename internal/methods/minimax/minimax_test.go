package minimax

import (
	"reflect"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/testutil"
)

// majorityVote is the MV baseline the minimax-entropy model must beat on
// crowds with planted quality structure (first index wins ties — the
// deterministic variant is enough for a baseline).
func majorityVote(d *dataset.Dataset) []float64 {
	out := make([]float64, d.NumTasks)
	votes := make([]float64, d.NumChoices)
	for i := 0; i < d.NumTasks; i++ {
		for k := range votes {
			votes[k] = 0
		}
		for _, ai := range d.TaskAnswers(i) {
			votes[d.Answers[ai].Label()]++
		}
		best := 0
		for k := 1; k < d.NumChoices; k++ {
			if votes[k] > votes[best] {
				best = k
			}
		}
		out[i] = float64(best)
	}
	return out
}

// TestMinimaxConvergesOnSeparableCrowd: on a cleanly separable crowd
// (uniformly competent workers, ample redundancy) the coordinate descent
// must report convergence before the iteration cap and recover the
// planted truth.
func TestMinimaxConvergesOnSeparableCrowd(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 200, NumWorkers: 20, Redundancy: 5, Seed: 42})
	res, err := New().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("not converged after %d iterations", res.Iterations)
	}
	if res.Iterations >= DefaultOuterIterations {
		t.Errorf("took %d iterations, want < %d", res.Iterations, DefaultOuterIterations)
	}
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.85 {
		t.Errorf("accuracy %.3f < 0.85 on separable crowd", got)
	}
}

// TestMinimaxDeterministicAcrossRuns: equal options must reproduce the
// identical result, including the parallel path (Gibbs-free, but the
// truth update involves tie-breaking and fan-out).
func TestMinimaxDeterministicAcrossRuns(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 120, NumWorkers: 12, NumChoices: 3, Redundancy: 4, Seed: 7})
	for _, par := range []int{1, 4} {
		a, err := New().Infer(d, core.Options{Seed: 11, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		b, err := New().Infer(d, core.Options{Seed: 11, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Truth, b.Truth) {
			t.Errorf("parallelism %d: truth not deterministic under equal seeds", par)
		}
		if !reflect.DeepEqual(a.WorkerQuality, b.WorkerQuality) {
			t.Errorf("parallelism %d: worker quality not deterministic under equal seeds", par)
		}
	}
}

// TestMinimaxBeatsMVOnSpammerCrowd: with half the crowd answering at
// chance, per-worker modeling must beat the unweighted majority vote.
func TestMinimaxBeatsMVOnSpammerCrowd(t *testing.T) {
	const nw = 16
	acc := make([]float64, nw)
	for w := range acc {
		if w < nw/2 {
			acc[w] = 0.5 // spammers
		} else {
			acc[w] = 0.92
		}
	}
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 400, NumWorkers: nw, Redundancy: 6, Accuracies: acc, Seed: 5})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mv := testutil.AccuracyOf(d.Truth, majorityVote(d))
	mm := testutil.AccuracyOf(d.Truth, res.Truth)
	t.Logf("minimax %.3f vs MV %.3f", mm, mv)
	if mm <= mv {
		t.Errorf("minimax accuracy %.3f not above MV %.3f on spammer crowd", mm, mv)
	}
	if mm < 0.9 {
		t.Errorf("minimax accuracy %.3f < 0.9 on spammer crowd", mm)
	}
}

// TestMinimaxQualitySeparatesSpammers: the τ-derived skill summary must
// rank competent workers above chance-level ones.
func TestMinimaxQualitySeparatesSpammers(t *testing.T) {
	const nw = 12
	acc := make([]float64, nw)
	for w := range acc {
		if w%2 == 0 {
			acc[w] = 0.5
		} else {
			acc[w] = 0.9
		}
	}
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 300, NumWorkers: nw, Redundancy: 6, Accuracies: acc, Seed: 9})
	res, err := New().Infer(d, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var spam, good float64
	for w := 0; w < nw; w++ {
		if w%2 == 0 {
			spam += res.WorkerQuality[w]
		} else {
			good += res.WorkerQuality[w]
		}
	}
	if spam/(nw/2) >= good/(nw/2) {
		t.Errorf("spammer mean quality %.3f not below good %.3f", spam/(nw/2), good/(nw/2))
	}
}

// TestMinimaxGoldenPinned mirrors the golden-task checks of the other
// golden-capable suites.
func TestMinimaxGoldenPinned(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 8, Redundancy: 4, Seed: 15})
	golden := map[int]float64{0: d.Truth[0], 1: d.Truth[1], 2: d.Truth[2]}
	res, err := New().Infer(d, core.Options{Seed: 1, Golden: golden})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range golden {
		if res.Truth[id] != v {
			t.Errorf("golden task %d = %v, want %v", id, res.Truth[id], v)
		}
	}
}

// TestMinimaxRejectsQualification: §6.3.2 lists Minimax among the methods
// without a qualification entry point.
func TestMinimaxRejectsQualification(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 20, NumWorkers: 5, Redundancy: 3, Seed: 17})
	if _, err := New().Infer(d, core.Options{QualificationAccuracy: make([]float64, 5)}); err == nil {
		t.Error("Minimax must reject qualification initialization")
	}
}
