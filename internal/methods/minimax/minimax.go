// Package minimax implements Minimax (Zhou, Basu, Mao, Platt, "Learning
// from the wisdom of crowds by minimax entropy", NIPS 2012) as surveyed in
// §5.2(3) of the paper.
//
// The model assumes worker w's answers on task i are generated from a
// per-(task, worker) distribution π^w_{i,·} constrained on two margins:
// per-task answer counts and per-worker confusion counts. The minimax
// entropy solution has the exponential-family form
//
//	π^w_{i,k} ∝ exp(σ_{i,k} + τ^w_{j,k})   given the truth of i is j,
//
// where σ are task parameters (the "diverse skills"/task confusability
// part) and τ^w worker parameters. Inference alternates:
//
//  1. fitting (σ, τ) by L2-regularized gradient ascent on the expected
//     log-likelihood under the current truth distribution μ (the dual of
//     the regularized minimax entropy program), and
//  2. updating μ_i(j) ∝ exp Σ_{w∈W_i} log π^w_{i,j,v^w_i}.
//
// Minimax supports hidden-test golden tasks (μ pinned) but, matching
// §6.3.2, not qualification-test initialization (its worker parameters
// are confusion-style matrices fit jointly with task parameters, with no
// single-number entry point).
package minimax

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// Gradient-ascent hyperparameters of the inner dual fit.
const (
	gradSteps    = 15
	learningRate = 0.1
	// l2Sigma regularizes the per-task parameters much more strongly than
	// l2Tau regularizes the per-worker confusion parameters: with a weak
	// penalty the task parameters σ absorb each task's answer marginal
	// entirely, leaving no evidence for the truth update (the degeneracy
	// the regularized minimax-entropy formulation of Zhou et al. controls
	// with separate α/β penalties).
	l2Sigma = 1.0
	l2Tau   = 0.05
	// tauAnchor is the diagonal value the τ regularizer pulls toward:
	// instead of shrinking to zero (a uniform worker), unconstrained or
	// weakly-constrained rows shrink to a mildly diagonal matrix. Without
	// the anchor, a label that currently owns few tasks has near-zero τ
	// rows whose combination with the per-task σ behaves like a saturated
	// model — it out-scores the honest confusion rows on any answer
	// pattern and the labels flip en masse (catastrophic on imbalanced
	// crowds like D_Product).
	tauAnchor  = 1.0
	paramClamp = 6.0
	// DefaultOuterIterations bounds the alternation when
	// Options.MaxIterations is zero. The coordinate descent settles into
	// a small label-churn orbit rather than a fixed point on skewed
	// crowds; the churn criterion below usually stops it first, this cap
	// bounds the worst case (the paper itself reports Minimax among the
	// slowest methods, §6.3.1(2)).
	DefaultOuterIterations = 30
	// churnFraction: the loop is declared converged when fewer than this
	// fraction of labels changed in an iteration.
	churnFraction = 0.001
	// muDamping blends the previous truth distribution into each update;
	// it suppresses the two-cycle label oscillations of hard-EM without
	// changing the fixed points.
	muDamping = 0.4
	// voteTether adds the (smoothed, log-scaled) raw vote distribution as
	// pseudo-evidence to every truth update. Hard-EM on crowds with
	// *systematic class-structured* confusion (e.g. graders that shift
	// every judgment one grade) otherwise drifts monotonically into the
	// shifted labeling, which is a perfectly self-consistent fixed point
	// of the unanchored model. The tether keeps the truth distribution in
	// the basin of the observed votes while still letting the worker
	// model overturn individual tasks.
	voteTether = 2.0
)

// Minimax is the minimax-entropy optimization method.
type Minimax struct{}

// New returns a Minimax instance.
func New() *Minimax { return &Minimax{} }

// Name implements core.Method.
func (*Minimax) Name() string { return "Minimax" }

// Capabilities implements core.Method (Table 4 row: decision-making and
// single-choice, no task model column but diverse-skills worker model,
// optimization technique).
func (*Minimax) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:   []dataset.TaskType{dataset.Decision, dataset.SingleChoice},
		TaskModel:   "none",
		WorkerModel: "diverse skills",
		Technique:   core.Optimization,
		Golden:      true,
	}
}

// Infer implements core.Method.
func (m *Minimax) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	rng := randx.New(opts.Seed)
	ell := d.NumChoices

	// μ: current soft truth assignment, initialized by majority voting.
	mu := core.UniformPosterior(d.NumTasks, ell)
	for i := 0; i < d.NumTasks; i++ {
		row := mu[i]
		for k := range row {
			row[k] = 0.1 // light smoothing so no label starts at zero
		}
		for _, ai := range d.TaskAnswers(i) {
			row[d.Answers[ai].Label()]++
		}
		mathx.Normalize(row)
	}
	core.PinGolden(mu, opts.Golden)
	muInit := make([][]float64, d.NumTasks)
	for i, row := range mu {
		muInit[i] = append([]float64(nil), row...)
	}

	sigma := make([]float64, d.NumTasks*ell)     // σ_{i,k}
	tau := make([]float64, d.NumWorkers*ell*ell) // τ^w_{j,k}
	for idx := range tau {
		if (idx/ell)%ell == idx%ell {
			tau[idx] = tauAnchor // start at the regularizer's anchor
		}
	}
	tauRow := func(w, j int) []float64 {
		base := (w*ell + j) * ell
		return tau[base : base+ell]
	}
	sigmaRow := func(i int) []float64 { return sigma[i*ell : (i+1)*ell] }

	pool := opts.EnginePool()
	gradSigma := make([]float64, len(sigma))
	gradTau := make([]float64, len(tau))
	// gbuf[e*ell+k] caches each answer's softmax residual (1[v=k] - π_k)
	// for the current gradient step: it is computed once per answer in a
	// parallel pass over answers, then consumed by the per-task σ pass
	// and the per-worker τ pass — each gradient entry is owned by exactly
	// one loop index, so the fan-out needs no shared accumulators.
	gbuf := make([]float64, len(d.Answers)*ell)
	// Per-degree normalizers: each answer's contribution is divided by
	// its task's (for σ) or worker's (for τ) answer count, so the ascent
	// step size is independent of crowd size and no parameter slams into
	// the clamp on heavy workers (hundreds of answers would otherwise
	// scale the raw gradient far past any usable learning rate).
	taskDeg := make([]float64, d.NumTasks)
	for i := range taskDeg {
		taskDeg[i] = float64(len(d.TaskAnswers(i)))
		if taskDeg[i] == 0 {
			taskDeg[i] = 1
		}
	}
	workerDeg := make([]float64, d.NumWorkers)
	for w := range workerDeg {
		workerDeg[w] = float64(len(d.WorkerAnswers(w)))
		if workerDeg[w] == 0 {
			workerDeg[w] = 1
		}
	}
	pi := make([]float64, ell) // scratch softmax
	prevMu := make([]float64, d.NumTasks*ell)
	flatMu := func() []float64 {
		out := prevMu
		for i, row := range mu {
			copy(out[i*ell:(i+1)*ell], row)
		}
		return out
	}
	muSnapshot := make([]float64, d.NumTasks*ell)

	maxIter := DefaultOuterIterations
	if opts.MaxIterations > 0 {
		maxIter = opts.MaxIterations
	}
	var iter int
	converged := false
	for iter = 1; iter <= maxIter; iter++ {
		copy(muSnapshot, flatMu())

		// Inner dual fit of (σ, τ) by gradient ascent against the current
		// hard labels (argmax of μ). Fitting against the soft μ is
		// unstable here: a soft truth distribution spreads each answer's
		// evidence over all rows of τ^w, the rows wash out, the next μ
		// becomes softer still, and the loop collapses to the uniform
		// fixed point. Hard assignments (the classic hard-EM variant of
		// the same coordinate descent) keep the worker constraints sharp.
		hard := hardLabels(mu)
		for step := 0; step < gradSteps; step++ {
			// Pass 1: per-answer softmax residuals into gbuf (each
			// answer owns its ℓ-wide slice).
			pool.For(len(d.Answers), func(elo, ehi int) {
				pi := make([]float64, ell)
				for e := elo; e < ehi; e++ {
					a := d.Answers[e]
					sr := sigmaRow(a.Task)
					tr := tauRow(a.Worker, hard[a.Task])
					softmax(sr, tr, pi)
					row := gbuf[e*ell : (e+1)*ell]
					for k := 0; k < ell; k++ {
						ind := 0.0
						if a.Label() == k {
							ind = 1
						}
						row[k] = ind - pi[k]
					}
				}
			})
			// Pass 2: σ gradient per task. With degree-normalized data
			// gradients (≤ 1 in magnitude) a unit penalty suffices to
			// stop σ from absorbing each task's answer marginal (the
			// degeneracy the regularized minimax-entropy formulation
			// controls with its per-task slack term).
			pool.For(d.NumTasks, func(ilo, ihi int) {
				for i := ilo; i < ihi; i++ {
					gs := gradSigma[i*ell : (i+1)*ell]
					for k := range gs {
						gs[k] = -l2Sigma * sigma[i*ell+k]
					}
					for _, e := range d.TaskAnswers(i) {
						row := gbuf[e*ell : (e+1)*ell]
						for k := 0; k < ell; k++ {
							gs[k] += row[k] / taskDeg[i]
						}
					}
				}
			})
			// Pass 3: τ gradient per worker (row j = the hard label of
			// the answered task).
			pool.For(d.NumWorkers, func(wlo, whi int) {
				for w := wlo; w < whi; w++ {
					gt := gradTau[w*ell*ell : (w+1)*ell*ell]
					for jk := range gt {
						anchor := 0.0
						if jk/ell == jk%ell { // diagonal of a τ^w row block
							anchor = tauAnchor
						}
						gt[jk] = -l2Tau * (tau[w*ell*ell+jk] - anchor)
					}
					for _, e := range d.WorkerAnswers(w) {
						a := d.Answers[e]
						j := hard[a.Task]
						row := gbuf[e*ell : (e+1)*ell]
						for k := 0; k < ell; k++ {
							gt[j*ell+k] += row[k] / workerDeg[w]
						}
					}
				}
			})
			for idx := range sigma {
				sigma[idx] = mathx.Clamp(sigma[idx]+learningRate*gradSigma[idx], -paramClamp, paramClamp)
			}
			for idx := range tau {
				tau[idx] = mathx.Clamp(tau[idx]+learningRate*gradTau[idx], -paramClamp, paramClamp)
			}
		}

		// Truth update: μ_i(j) ∝ exp Σ_w log π^w_{i,j,v^w_i}, fanned out
		// over tasks (each goroutine owns disjoint μ rows).
		pool.For(d.NumTasks, func(ilo, ihi int) {
			logw := make([]float64, ell)
			piLocal := make([]float64, ell)
			for i := ilo; i < ihi; i++ {
				for j := range logw {
					logw[j] = 0
				}
				sr := sigmaRow(i)
				for _, ai := range d.TaskAnswers(i) {
					a := d.Answers[ai]
					for j := 0; j < ell; j++ {
						tr := tauRow(a.Worker, j)
						softmax(sr, tr, piLocal)
						logw[j] += math.Log(math.Max(piLocal[a.Label()], 1e-12))
					}
				}
				for j := range logw {
					logw[j] += voteTether * math.Log(muInit[i][j])
				}
				mathx.NormalizeLog(logw)
				for j := range logw {
					mu[i][j] = muDamping*mu[i][j] + (1-muDamping)*logw[j]
				}
			}
		})
		core.PinGolden(mu, opts.Golden)

		// Converge on the soft distribution or, since only the argmax
		// determines the output, on near-stability of the hard labels
		// (which also halts the small label-churn orbits the inner fit
		// can enter on skewed crowds).
		if core.MaxAbsDiff(flatMu(), muSnapshot) < opts.Tol() ||
			labelChurn(hard, hardLabels(mu)) <= churnFraction*float64(d.NumTasks) {
			converged = true
			break
		}
	}
	if iter > maxIter {
		iter = maxIter
	}

	truth := core.PosteriorLabels(mu, opts.Golden, rng.Intn)
	// Worker quality summary: mean diagonal of the implied confusion
	// matrices averaged over that worker's tasks is expensive; use the
	// softmax of τ's diagonal as the scale-free skill summary.
	quality := make([]float64, d.NumWorkers)
	for w := 0; w < d.NumWorkers; w++ {
		var s float64
		zero := make([]float64, ell)
		for j := 0; j < ell; j++ {
			softmax(zero, tauRow(w, j), pi)
			s += pi[j]
		}
		quality[w] = s / float64(ell)
	}
	return &core.Result{
		Truth:         truth,
		Posterior:     mu,
		WorkerQuality: quality,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// hardLabels returns the per-task argmax of μ (first index on ties, which
// the smoothed majority-vote initialization makes vanishingly rare).
func hardLabels(mu [][]float64) []int {
	out := make([]int, len(mu))
	for i, row := range mu {
		best := 0
		for k := 1; k < len(row); k++ {
			if row[k] > row[best] {
				best = k
			}
		}
		out[i] = best
	}
	return out
}

// labelChurn counts positions where the two label vectors differ.
func labelChurn(a, b []int) float64 {
	var n float64
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// softmax writes softmax(a+b) into out.
func softmax(a, b, out []float64) {
	maxv := math.Inf(-1)
	for k := range out {
		v := a[k] + b[k]
		out[k] = v
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for k := range out {
		out[k] = math.Exp(out[k] - maxv)
		sum += out[k]
	}
	for k := range out {
		out[k] /= sum
	}
}
