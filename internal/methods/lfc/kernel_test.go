package lfc

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/testutil"
)

// inferNumericMapReference is the pre-refactor LFC_N loop, preserved
// verbatim for the cold path (no warm start): index-slice walks of the
// precision-weighted truth step and per-worker variance step. The CSR
// kernels must reproduce it bit for bit. (LFC itself delegates to the D&S
// chassis, whose kernel cross-check lives in package ds.)
func inferNumericMapReference(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	truth := make([]float64, d.NumTasks)
	for i := 0; i < d.NumTasks; i++ {
		idxs := d.TaskAnswers(i)
		if len(idxs) == 0 {
			continue
		}
		var s float64
		for _, ai := range idxs {
			s += d.Answers[ai].Value
		}
		truth[i] = s / float64(len(idxs))
	}
	pinGoldenNumeric(truth, opts.Golden)

	globalVar := answerVariance(d)
	if globalVar < varFloor {
		globalVar = 1
	}
	variance := make([]float64, d.NumWorkers)
	for w := range variance {
		variance[w] = globalVar
		if opts.QualificationError != nil && !math.IsNaN(opts.QualificationError[w]) {
			variance[w] = math.Max(opts.QualificationError[w], varFloor)
		}
	}

	pool := opts.EnginePool()
	prevTruth := make([]float64, d.NumTasks)
	prevVar := make([]float64, d.NumWorkers)
	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevTruth, truth)
		copy(prevVar, variance)
		pool.For(d.NumTasks, func(ilo, ihi int) {
			for i := ilo; i < ihi; i++ {
				if _, ok := opts.Golden[i]; ok {
					continue
				}
				idxs := d.TaskAnswers(i)
				if len(idxs) == 0 {
					continue
				}
				var num, den float64
				for _, ai := range idxs {
					a := d.Answers[ai]
					prec := 1 / math.Max(variance[a.Worker], varFloor)
					num += prec * a.Value
					den += prec
				}
				truth[i] = num / den
			}
		})
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				idxs := d.WorkerAnswers(w)
				if len(idxs) == 0 {
					continue
				}
				ss := varPriorScale
				for _, ai := range idxs {
					a := d.Answers[ai]
					dv := a.Value - truth[a.Task]
					ss += dv * dv
				}
				variance[w] = math.Max(ss/(float64(len(idxs))+varPriorShape), varFloor)
			}
		})
		if core.MaxAbsDiff(truth, prevTruth) < opts.Tol() &&
			core.MaxAbsDiff(variance, prevVar) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	quality := make([]float64, d.NumWorkers)
	for w := range quality {
		quality[w] = 1 / math.Sqrt(variance[w])
	}
	return &core.Result{
		Truth:          truth,
		WorkerQuality:  quality,
		WorkerVariance: append([]float64(nil), variance...),
		Iterations:     iter,
		Converged:      converged,
	}, nil
}

// TestKernelMatchesMapImplementation cross-checks LFC_N's CSR kernels
// against the pre-refactor map loops on the golden-corpus dataset shape
// plus a larger long-tail crowd, bit for bit at 1 and 4 workers.
func TestKernelMatchesMapImplementation(t *testing.T) {
	corpus := []*dataset.Dataset{
		testutil.Numeric(testutil.NumericSpec{NumTasks: 8, NumWorkers: 5, Redundancy: 3, Seed: 4}),
		testutil.Numeric(testutil.NumericSpec{NumTasks: 50, NumWorkers: 11, Redundancy: 6, Seed: 9}),
	}
	m := NewNumeric()
	for _, d := range corpus {
		for _, par := range []int{1, 4} {
			opts := core.Options{Seed: 7, MaxIterations: 50, Parallelism: par}
			want, err := inferNumericMapReference(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Infer(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireIdenticalResults(t, "lfc-n", got, want)
		}
	}
}
