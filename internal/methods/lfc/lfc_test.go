package lfc

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/testutil"
)

func TestLFCRecoversEasyCrowd(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 300, NumWorkers: 20, Redundancy: 5, Seed: 1})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.9 {
		t.Errorf("accuracy %.3f < 0.9", got)
	}
}

func TestLFCMoreRobustThanDSOnSparseCrowd(t *testing.T) {
	// Extremely sparse answers (redundancy 2, many workers): the
	// Dirichlet priors must keep LFC's confusion estimates bounded. We
	// only assert LFC stays above a floor — the paper's observation is
	// robustness, not dominance.
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 300, NumWorkers: 60, NumChoices: 4, Redundancy: 2, Seed: 3})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// With 2 answers per 4-choice task and accuracy-0.8 workers, the
	// information-theoretic ceiling is ≈ 0.8; anything above 0.65 shows
	// the priors kept the sparse confusion estimates usable.
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.65 {
		t.Errorf("accuracy %.3f < 0.65 on sparse crowd", got)
	}
}

func TestLFCCustomPriorsChangeSmoothing(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 50, NumWorkers: 40, Redundancy: 2, Seed: 5})
	weak := &LFC{Prior: 0.1, Boost: 1.0001}
	strong := &LFC{Prior: 50, Boost: 1.0001}
	rw, err := weak.Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := strong.Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Strong symmetric priors pull every diagonal toward 0.5; weak priors
	// let the data speak. Compare mean diagonals.
	var dw, ds float64
	for w := range rw.Confusion {
		dw += rw.Confusion[w][0][0]
		ds += rs.Confusion[w][0][0]
	}
	dw /= float64(len(rw.Confusion))
	ds /= float64(len(rs.Confusion))
	if math.Abs(ds-0.5) > math.Abs(dw-0.5) {
		t.Errorf("strong prior diagonal %.3f should be closer to 0.5 than weak %.3f", ds, dw)
	}
}

func TestLFCNRecoversWorkerVariances(t *testing.T) {
	const nw = 12
	sig := make([]float64, nw)
	for w := range sig {
		if w < 6 {
			sig[w] = 2
		} else {
			sig[w] = 25
		}
	}
	d := testutil.Numeric(testutil.NumericSpec{NumTasks: 400, NumWorkers: nw, Redundancy: 6, Sigmas: sig, Seed: 7})
	res, err := NewNumeric().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Precise workers must receive higher precision-style quality.
	var loQ, hiQ float64
	for w := 0; w < nw; w++ {
		if w < 6 {
			loQ += res.WorkerQuality[w]
		} else {
			hiQ += res.WorkerQuality[w]
		}
	}
	if loQ/6 <= hiQ/6 {
		t.Errorf("precise workers quality %.4f not above noisy %.4f", loQ/6, hiQ/6)
	}
	if !res.Converged {
		t.Error("LFC_N did not converge")
	}
}

func TestLFCNGoldenPinned(t *testing.T) {
	d := testutil.Numeric(testutil.NumericSpec{NumTasks: 50, NumWorkers: 8, Redundancy: 4, Seed: 9})
	golden := map[int]float64{0: d.Truth[0], 1: d.Truth[1]}
	res, err := NewNumeric().Infer(d, core.Options{Seed: 2, Golden: golden})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range golden {
		if res.Truth[id] != v {
			t.Errorf("golden task %d = %v, want %v", id, res.Truth[id], v)
		}
	}
}

func TestLFCNQualificationError(t *testing.T) {
	d := testutil.Numeric(testutil.NumericSpec{NumTasks: 50, NumWorkers: 6, Redundancy: 4, Seed: 11})
	qe := []float64{1, 1, 1, 400, 400, math.NaN()}
	res, err := NewNumeric().Infer(d, core.Options{Seed: 2, QualificationError: qe, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	// After a single iteration the initialization must still dominate:
	// workers seeded with tiny qualification error carry higher quality.
	if res.WorkerQuality[0] <= res.WorkerQuality[3] {
		t.Errorf("qualification-seeded precise worker %.4f not above noisy %.4f",
			res.WorkerQuality[0], res.WorkerQuality[3])
	}
}

func TestLFCNEmptyDataset(t *testing.T) {
	d := testutil.Numeric(testutil.NumericSpec{NumTasks: 4, NumWorkers: 3, Redundancy: 0, Seed: 13})
	res, err := NewNumeric().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Truth {
		if v != 0 {
			t.Errorf("task %d with no answers inferred %v, want 0", i, v)
		}
	}
}
