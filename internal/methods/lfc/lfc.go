// Package lfc implements LFC and LFC_N (Raykar et al., "Learning from
// crowds", JMLR 2010) as surveyed in §5.3(2) of the paper.
//
// LFC extends D&S by placing Beta/Dirichlet priors on each worker's
// confusion-matrix rows: q^w_{j,·} ~ Dir(α^w_{j,·}), which turns the
// maximum-likelihood M-step into a MAP step with pseudo-counts. The paper
// finds this smoothing makes LFC one of the most robust categorical
// methods (Table 6, §7 recommendations).
//
// LFC_N is the numeric variant: worker w's answer is modeled as
// v^w_i ~ N(v*_i, σ_w²); EM alternates the precision-weighted truth
// estimate with per-worker variance re-estimation, with an inverse-gamma
// prior keeping variances strictly positive.
package lfc

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/ds"
)

// DefaultPrior is the symmetric Dirichlet pseudo-count placed on each
// confusion row: the diagonal receives DiagonalBoost times more mass,
// encoding the prior belief that workers are better than random.
const (
	DefaultPrior  = 1.0
	DiagonalBoost = 2.0
)

// LFC is the categorical MAP-EM method.
type LFC struct {
	// Prior and Boost override the default pseudo-counts when non-zero;
	// they exist for the ablation benchmarks.
	Prior, Boost float64
}

// New returns an LFC instance with the default priors.
func New() *LFC { return &LFC{} }

// Name implements core.Method.
func (*LFC) Name() string { return "LFC" }

// Capabilities implements core.Method.
func (*LFC) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:     []dataset.TaskType{dataset.Decision, dataset.SingleChoice},
		TaskModel:     "none",
		WorkerModel:   "confusion matrix",
		Technique:     core.PGM,
		Qualification: true,
		Golden:        true,
	}
}

// Infer implements core.Method by delegating to the shared D&S EM chassis
// with Dirichlet pseudo-counts.
func (m *LFC) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	prior := m.Prior
	if prior == 0 {
		prior = DefaultPrior
	}
	boost := m.Boost
	if boost == 0 {
		boost = DiagonalBoost
	}
	return ds.RunWithPriors(d, opts, func(_, j, k int) float64 {
		if j == k {
			return prior * boost
		}
		return prior
	})
}

// Variance floors and prior pseudo-observations for LFC_N. The
// inverse-gamma prior (shape a0, scale b0) acts as a0 pseudo-answers with
// squared error b0, keeping σ_w² away from zero for workers whose answers
// exactly match the current truth estimate.
const (
	varPriorShape = 1.0
	varPriorScale = 1.0
	varFloor      = 1e-9
)

// LFCN is the numeric Gaussian EM method (LFC_N in the paper's tables).
type LFCN struct{}

// NewNumeric returns an LFC_N instance.
func NewNumeric() *LFCN { return &LFCN{} }

// Name implements core.Method.
func (*LFCN) Name() string { return "LFC_N" }

// Capabilities implements core.Method (Table 4 row: numeric tasks, worker
// variance model, PGM).
func (*LFCN) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:     []dataset.TaskType{dataset.Numeric},
		TaskModel:     "none",
		WorkerModel:   "worker variance",
		Technique:     core.PGM,
		Qualification: true,
		Golden:        true,
	}
}

// Infer implements core.Method.
func (m *LFCN) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	c := dataset.BuildCSR(d)
	// Initialize truth with per-task means and variances at the global
	// answer variance (or the qualification-test error when provided).
	// A warm start resumes the previous epoch's truth estimates instead.
	truth := make([]float64, d.NumTasks)
	for i := 0; i < d.NumTasks; i++ {
		deg := c.TaskDegree(i)
		if deg == 0 {
			continue
		}
		var s float64
		for p := c.TaskOff[i]; p < c.TaskOff[i+1]; p++ {
			s += c.TaskValue[p]
		}
		truth[i] = opts.WarmStart.TruthOr(i, s/float64(deg))
	}
	pinGoldenNumeric(truth, opts.Golden)

	globalVar := answerVariance(d)
	if globalVar < varFloor {
		globalVar = 1
	}
	variance := make([]float64, d.NumWorkers)
	for w := range variance {
		variance[w] = globalVar
		if opts.QualificationError != nil && !math.IsNaN(opts.QualificationError[w]) {
			variance[w] = math.Max(opts.QualificationError[w], varFloor)
		}
		// A warm start resumes the previous epoch's learned variances
		// alongside the truth estimates, so the EM restarts from its full
		// previous state instead of re-learning precisions from scratch.
		// Workers the state does not cover keep the global/qualification
		// initialization.
		variance[w] = math.Max(opts.WarmStart.VarianceOr(w, variance[w]), varFloor)
	}

	pool := opts.EnginePool()
	prevTruth := make([]float64, d.NumTasks)
	prevVar := make([]float64, d.NumWorkers)

	// Truth step: precision-weighted mean, fanned out over tasks.
	truthStep := func(_, ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			if _, ok := opts.Golden[i]; ok {
				continue
			}
			if c.TaskDegree(i) == 0 {
				continue
			}
			var num, den float64
			for p := c.TaskOff[i]; p < c.TaskOff[i+1]; p++ {
				prec := 1 / math.Max(variance[c.TaskWorker[p]], varFloor)
				num += prec * c.TaskValue[p]
				den += prec
			}
			truth[i] = num / den
		}
	}
	// Variance step: per-worker MSE with inverse-gamma smoothing, fanned
	// out over workers.
	varStep := func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			deg := c.WorkerDegree(w)
			if deg == 0 {
				continue
			}
			ss := varPriorScale
			for p := c.WorkerOff[w]; p < c.WorkerOff[w+1]; p++ {
				dv := c.WorkerValue[p] - truth[c.WorkerTask[p]]
				ss += dv * dv
			}
			variance[w] = math.Max(ss/(float64(deg)+varPriorShape), varFloor)
		}
	}

	// Basin re-anchoring on warm start: precisions carried over from a
	// low-redundancy prefix of a stream can be collapsed onto a worker the
	// prefix happened to agree with, and the first truth step would then
	// propagate that degenerate basin into the grown dataset — the failure
	// mode the old warm start avoided by discarding variances entirely.
	// Re-deriving every answering worker's variance from the warm truths
	// over the *current* data keeps the resumed state self-consistent: the
	// truths carry the converged signal, and the precisions re-anchor to
	// full-data residuals, so the EM descends into the same basin a cold
	// run reaches. Workers without answers keep their resumed variance.
	if opts.WarmStart != nil && len(opts.WarmStart.Truth) > 0 {
		pool.ForSlot(d.NumWorkers, varStep)
	}

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevTruth, truth)
		copy(prevVar, variance)
		pool.ForSlot(d.NumTasks, truthStep)
		pool.ForSlot(d.NumWorkers, varStep)
		// Converge on both parameter families: on the first iteration the
		// truth step reproduces the per-task means (all variances start
		// equal), so the truth delta alone would spuriously trip.
		if core.MaxAbsDiff(truth, prevTruth) < opts.Tol() &&
			core.MaxAbsDiff(variance, prevVar) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	quality := make([]float64, d.NumWorkers)
	for w := range quality {
		quality[w] = 1 / math.Sqrt(variance[w]) // precision-style summary
	}
	return &core.Result{
		Truth:          truth,
		WorkerQuality:  quality,
		WorkerVariance: append([]float64(nil), variance...),
		Iterations:     iter,
		Converged:      converged,
	}, nil
}

func pinGoldenNumeric(truth []float64, golden map[int]float64) {
	for t, v := range golden {
		if t >= 0 && t < len(truth) {
			truth[t] = v
		}
	}
}

func answerVariance(d *dataset.Dataset) float64 {
	n := len(d.Answers)
	if n == 0 {
		return 0
	}
	var mean float64
	for _, a := range d.Answers {
		mean += a.Value
	}
	mean /= float64(n)
	var ss float64
	for _, a := range d.Answers {
		dv := a.Value - mean
		ss += dv * dv
	}
	return ss / float64(n)
}
