package catd

import (
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
	"truthinference/internal/testutil"
)

// inferMapReference is the pre-refactor CATD loop, preserved verbatim:
// index-slice walks, per-chunk vote scratch, and the ArgmaxTieBreak +
// HashPick closure tie-break. The CSR kernels must reproduce it bit for
// bit.
func inferMapReference(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	pool := opts.EnginePool()

	chi := make([]float64, d.NumWorkers)
	for w := range chi {
		n := len(d.WorkerAnswers(w))
		if n == 0 {
			chi[w] = 0
			continue
		}
		chi[w] = mathx.ChiSquareQuantile(0.975, float64(n))
	}

	q := make([]float64, d.NumWorkers)
	for w := range q {
		q[w] = 1
	}
	applyQualification(d, opts, chi, q)
	if opts.WarmStart != nil {
		for w := range q {
			q[w] = opts.WarmStart.QualityOr(w, q[w])
		}
		normalizeWeights(q)
	}

	var scale []float64
	if !d.Categorical() {
		scale = taskScales(d)
	}

	truth := make([]float64, d.NumTasks)
	prevTruth := make([]float64, d.NumTasks)

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevTruth, truth)
		iter := iter
		pool.For(d.NumTasks, func(ilo, ihi int) {
			votes := make([]float64, d.NumChoices)
			for i := ilo; i < ihi; i++ {
				if gv, ok := opts.Golden[i]; ok {
					truth[i] = gv
					continue
				}
				idxs := d.TaskAnswers(i)
				if len(idxs) == 0 {
					continue
				}
				if d.Categorical() {
					for k := range votes {
						votes[k] = 0
					}
					for _, ai := range idxs {
						a := d.Answers[ai]
						votes[a.Label()] += q[a.Worker]
					}
					i := i
					truth[i] = float64(core.ArgmaxTieBreak(votes, func(n int) int {
						return randx.HashPick(n, opts.Seed, int64(iter), int64(i))
					}))
				} else {
					var num, den float64
					for _, ai := range idxs {
						a := d.Answers[ai]
						num += q[a.Worker] * a.Value
						den += q[a.Worker]
					}
					if den > 0 {
						truth[i] = num / den
					}
				}
			}
		})
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				idxs := d.WorkerAnswers(w)
				if len(idxs) == 0 {
					continue
				}
				var loss float64
				for _, ai := range idxs {
					a := d.Answers[ai]
					if d.Categorical() {
						if a.Label() != int(truth[a.Task]) {
							loss++
						}
					} else {
						dv := (a.Value - truth[a.Task]) / scale[a.Task]
						loss += dv * dv
					}
				}
				q[w] = chi[w] / (loss + lossEpsilon)
			}
		})
		normalizeWeights(q)

		var done bool
		if d.Categorical() {
			done = iter > 1 && core.MaxAbsDiff(truth, prevTruth) == 0
		} else {
			done = core.MaxAbsDiff(truth, prevTruth) < opts.Tol()
		}
		if done {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}
	return &core.Result{
		Truth:         truth,
		WorkerQuality: q,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// TestKernelMatchesMapImplementation cross-checks the CSR kernels against
// the pre-refactor map loops on the golden-corpus dataset shapes — both
// the categorical weighted-vote path (hash tie-breaks included) and the
// numeric weighted-mean path — bit for bit at 1 and 4 workers.
func TestKernelMatchesMapImplementation(t *testing.T) {
	corpus := []*dataset.Dataset{
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 12, NumWorkers: 5, NumChoices: 2, Redundancy: 4, Seed: 2}),
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 10, NumWorkers: 6, NumChoices: 4, Redundancy: 4, Seed: 3}),
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 12, NumChoices: 3, Redundancy: 6, Seed: 9}),
		testutil.Numeric(testutil.NumericSpec{NumTasks: 8, NumWorkers: 5, Redundancy: 3, Seed: 4}),
	}
	m := New()
	for _, d := range corpus {
		for _, par := range []int{1, 4} {
			opts := core.Options{Seed: 7, MaxIterations: 50, Parallelism: par}
			want, err := inferMapReference(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Infer(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireIdenticalResults(t, "catd/"+d.Name, got, want)
		}
	}
}
