// Package catd implements CATD (Li et al., "A confidence-aware approach
// for truth discovery on long-tail data", PVLDB 2014) as surveyed in
// §5.2(2) of the paper.
//
// CATD models each worker with a worker probability *scaled by a
// confidence coefficient*: because most workers answer only a few tasks
// (the long tail of Figure 2), a point estimate of their quality is
// unreliable, so CATD scales the weight by the chi-square upper-confidence
// coefficient χ²_{(0.975, |T^w|)}:
//
//	q_w = χ²_{(0.975, |T^w|)} / Σ_{i∈T^w} d(v^w_i, v*_i)
//
// and alternates this quality step with a weighted-aggregation truth step
// (weighted vote for categorical tasks, weighted mean for numeric ones).
// The chi-square quantile is computed by internal/mathx from scratch.
package catd

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
)

// lossEpsilon keeps quality weights finite for workers with zero loss.
const lossEpsilon = 1e-9

// CATD is the confidence-aware optimization method.
type CATD struct{}

// New returns a CATD instance.
func New() *CATD { return &CATD{} }

// Name implements core.Method.
func (*CATD) Name() string { return "CATD" }

// Capabilities implements core.Method (Table 4 row: all three task types,
// worker probability + confidence, optimization).
func (*CATD) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:     []dataset.TaskType{dataset.Decision, dataset.SingleChoice, dataset.Numeric},
		TaskModel:     "none",
		WorkerModel:   "worker probability + confidence",
		Technique:     core.Optimization,
		Qualification: true,
		Golden:        true,
	}
}

// Infer implements core.Method.
func (m *CATD) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	pool := opts.EnginePool()

	// Precompute each worker's chi-square confidence coefficient; it
	// depends only on |T^w|.
	chi := make([]float64, d.NumWorkers)
	for w := range chi {
		n := len(d.WorkerAnswers(w))
		if n == 0 {
			chi[w] = 0
			continue
		}
		chi[w] = mathx.ChiSquareQuantile(0.975, float64(n))
	}

	q := make([]float64, d.NumWorkers)
	for w := range q {
		q[w] = 1
	}
	applyQualification(d, opts, chi, q)
	if opts.WarmStart != nil {
		// Resume the previous epoch's confidence-scaled weights, then
		// restore the mean-1 scale over the mix of warm and cold entries.
		for w := range q {
			q[w] = opts.WarmStart.QualityOr(w, q[w])
		}
		normalizeWeights(q)
	}

	var scale []float64
	if !d.Categorical() {
		scale = taskScales(d)
	}

	c := dataset.BuildCSR(d)
	truth := make([]float64, d.NumTasks)
	prevTruth := make([]float64, d.NumTasks)
	categorical := d.Categorical()
	// Per-slot vote scratch; ForSlot keeps concurrent chunks on distinct
	// slots, replacing the old per-chunk allocation.
	votesBySlot := make([][]float64, pool.Workers())
	for s := range votesBySlot {
		votesBySlot[s] = make([]float64, d.NumChoices)
	}

	// Truth step, fanned out over tasks. Vote ties break on a hash of
	// (seed, iteration, task) so the pick is order-independent.
	var curIter int64
	truthStep := func(slot, ilo, ihi int) {
		votes := votesBySlot[slot]
		for i := ilo; i < ihi; i++ {
			if gv, ok := opts.Golden[i]; ok {
				truth[i] = gv
				continue
			}
			if c.TaskDegree(i) == 0 {
				continue
			}
			if categorical {
				for k := range votes {
					votes[k] = 0
				}
				for p := c.TaskOff[i]; p < c.TaskOff[i+1]; p++ {
					votes[c.TaskLabel[p]] += q[c.TaskWorker[p]]
				}
				truth[i] = float64(core.ArgmaxHashTie(votes, opts.Seed, curIter, int64(i)))
			} else {
				var num, den float64
				for p := c.TaskOff[i]; p < c.TaskOff[i+1]; p++ {
					qw := q[c.TaskWorker[p]]
					num += qw * c.TaskValue[p]
					den += qw
				}
				if den > 0 {
					truth[i] = num / den
				}
			}
		}
	}
	// Quality step: χ² coefficient over accumulated loss, fanned out over
	// workers; the mean-1 renormalization stays sequential.
	qualityStep := func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			if c.WorkerDegree(w) == 0 {
				continue
			}
			var loss float64
			for p := c.WorkerOff[w]; p < c.WorkerOff[w+1]; p++ {
				t := c.WorkerTask[p]
				if categorical {
					if int(c.WorkerLabel[p]) != int(truth[t]) {
						loss++
					}
				} else {
					dv := (c.WorkerValue[p] - truth[t]) / scale[t]
					loss += dv * dv
				}
			}
			q[w] = chi[w] / (loss + lossEpsilon)
		}
	}

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevTruth, truth)
		curIter = int64(iter)
		pool.ForSlot(d.NumTasks, truthStep)
		pool.ForSlot(d.NumWorkers, qualityStep)
		normalizeWeights(q)

		var done bool
		if d.Categorical() {
			done = iter > 1 && core.MaxAbsDiff(truth, prevTruth) == 0
		} else {
			done = core.MaxAbsDiff(truth, prevTruth) < opts.Tol()
		}
		if done {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}
	return &core.Result{
		Truth:         truth,
		WorkerQuality: q,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// applyQualification seeds qualities from qualification-test performance:
// accuracy a maps to the loss a worker with |T^w| answers would accrue,
// error e (numeric MSE) likewise.
func applyQualification(d *dataset.Dataset, opts core.Options, chi, q []float64) {
	for w := range q {
		n := float64(len(d.WorkerAnswers(w)))
		if n == 0 {
			continue
		}
		if opts.QualificationAccuracy != nil && !math.IsNaN(opts.QualificationAccuracy[w]) {
			expectedLoss := (1 - mathx.Clamp(opts.QualificationAccuracy[w], 0, 1)) * n
			q[w] = chi[w] / (expectedLoss + lossEpsilon)
		}
		if opts.QualificationError != nil && !math.IsNaN(opts.QualificationError[w]) {
			q[w] = chi[w] / (opts.QualificationError[w]*n + lossEpsilon)
		}
	}
	normalizeWeights(q)
}

// normalizeWeights rescales weights to mean 1; CATD's truth step is
// invariant to the scale, and the normalization keeps the convergence
// check and golden-task mixing numerically tame.
func normalizeWeights(q []float64) {
	var s float64
	n := 0
	for _, x := range q {
		if x > 0 {
			s += x
			n++
		}
	}
	if n == 0 || s <= 0 {
		return
	}
	mean := s / float64(n)
	for i := range q {
		q[i] /= mean
	}
}

// taskScales mirrors the CRH normalization used by package pm.
func taskScales(d *dataset.Dataset) []float64 {
	vals := make([]float64, 0, len(d.Answers))
	for _, a := range d.Answers {
		vals = append(vals, a.Value)
	}
	global := math.Sqrt(mathx.Variance(vals))
	if !(global > 0) {
		global = 1
	}
	floor := 0.01 * global
	out := make([]float64, d.NumTasks)
	buf := make([]float64, 0, 64)
	for i := 0; i < d.NumTasks; i++ {
		idxs := d.TaskAnswers(i)
		if len(idxs) == 0 {
			out[i] = global
			continue
		}
		buf = buf[:0]
		for _, ai := range idxs {
			buf = append(buf, d.Answers[ai].Value)
		}
		s := math.Sqrt(mathx.Variance(buf))
		if s < floor {
			s = floor
		}
		out[i] = s
	}
	return out
}
