package catd

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/testutil"
)

func TestCATDRecoversEasyCrowds(t *testing.T) {
	dec := testutil.Categorical(testutil.CrowdSpec{NumTasks: 300, NumWorkers: 20, Redundancy: 5, Seed: 1})
	res, err := New().Infer(dec, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := testutil.AccuracyOf(dec.Truth, res.Truth); got < 0.88 {
		t.Errorf("categorical accuracy %.3f < 0.88", got)
	}
	num := testutil.Numeric(testutil.NumericSpec{NumTasks: 300, NumWorkers: 15, Redundancy: 6, Seed: 1})
	nres, err := New().Infer(num, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ss float64
	for i, v := range nres.Truth {
		d := v - num.Truth[i]
		ss += d * d
	}
	if rmse := math.Sqrt(ss / float64(num.NumTasks)); rmse > 6 {
		t.Errorf("numeric RMSE %.2f > 6", rmse)
	}
}

// TestCATDConfidencePenalizesSparseWorkers is the method's core claim
// (§4.2.4): two workers with identical error *rates*, one with far more
// answers, must receive different weights — the prolific one higher —
// because χ²(0.975, n)/loss grows sub-linearly in n for the numerator but
// the loss grows linearly.
func TestCATDConfidenceCoefficient(t *testing.T) {
	// Construct: worker 0 answers 200 tasks, worker 1 answers 10, both
	// with zero errors against a crowd whose majority fixes the truth.
	var answers []dataset.Answer
	const n = 200
	truth := map[int]float64{}
	for i := 0; i < n; i++ {
		truth[i] = 1
		// Three filler workers lock the truth at 1.
		answers = append(answers,
			dataset.Answer{Task: i, Worker: 2, Value: 1},
			dataset.Answer{Task: i, Worker: 3, Value: 1},
			dataset.Answer{Task: i, Worker: 4, Value: 1},
		)
		answers = append(answers, dataset.Answer{Task: i, Worker: 0, Value: 1})
		if i < 10 {
			answers = append(answers, dataset.Answer{Task: i, Worker: 1, Value: 1})
		}
	}
	d, err := dataset.New("conf", dataset.Decision, 2, n, 5, answers, truth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkerQuality[0] <= res.WorkerQuality[1] {
		t.Errorf("prolific zero-error worker weight %.3f not above sparse one %.3f (χ² confidence scaling)",
			res.WorkerQuality[0], res.WorkerQuality[1])
	}
	// And the scaling must match the chi-square quantiles' ratio within
	// the loss-epsilon regularization: q0/q1 ≈ χ²(0.975,201)/χ²(0.975,13).
	wantRatio := mathx.ChiSquareQuantile(0.975, float64(len(d.WorkerAnswers(0)))) /
		mathx.ChiSquareQuantile(0.975, float64(len(d.WorkerAnswers(1))))
	gotRatio := res.WorkerQuality[0] / res.WorkerQuality[1]
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.01 {
		t.Errorf("weight ratio %.3f, want χ² ratio %.3f", gotRatio, wantRatio)
	}
}

func TestCATDDownweightsNoisyNumericWorkers(t *testing.T) {
	const nw = 10
	sig := make([]float64, nw)
	for w := range sig {
		if w < 5 {
			sig[w] = 1
		} else {
			sig[w] = 30
		}
	}
	d := testutil.Numeric(testutil.NumericSpec{NumTasks: 300, NumWorkers: nw, Redundancy: 6, Sigmas: sig, Seed: 3})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64
	for w := 0; w < nw; w++ {
		if w < 5 {
			lo += res.WorkerQuality[w]
		} else {
			hi += res.WorkerQuality[w]
		}
	}
	if lo/5 <= hi/5 {
		t.Errorf("precise workers weight %.3f not above noisy %.3f", lo/5, hi/5)
	}
}

func TestCATDGoldenPinned(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 50, NumWorkers: 8, Redundancy: 4, Seed: 5})
	golden := map[int]float64{1: d.Truth[1]}
	res, err := New().Infer(d, core.Options{Seed: 2, Golden: golden})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth[1] != d.Truth[1] {
		t.Error("golden task not pinned")
	}
}

func TestCATDQualificationVectors(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 50, NumWorkers: 5, Redundancy: 3, Seed: 7})
	qa := []float64{0.95, 0.55, 0.55, 0.55, math.NaN()}
	res, err := New().Infer(d, core.Options{Seed: 2, QualificationAccuracy: qa, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkerQuality[0] <= res.WorkerQuality[1] {
		t.Errorf("qualification-seeded strong worker %.3f not above weak %.3f",
			res.WorkerQuality[0], res.WorkerQuality[1])
	}
}
