package multi

import (
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/testutil"
)

func TestMultiRecoversEasyCrowd(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 300, NumWorkers: 20, Redundancy: 6, Seed: 1})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.85 {
		t.Errorf("accuracy %.3f < 0.85", got)
	}
}

func TestMultiHighRedundancyStable(t *testing.T) {
	// The regression this guards: per-degree gradient normalization.
	// With 20 answers per task the unnormalized ascent diverged.
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 150, NumWorkers: 25, Redundancy: 20, Seed: 3})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.9 {
		t.Errorf("accuracy %.3f < 0.9 at redundancy 20", got)
	}
}

func TestMultiAlignmentQuality(t *testing.T) {
	const nw = 20
	acc := make([]float64, nw)
	for w := range acc {
		if w < 10 {
			acc[w] = 0.55
		} else {
			acc[w] = 0.95
		}
	}
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 400, NumWorkers: nw, Redundancy: 6, Accuracies: acc, Seed: 5})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64
	for w := 0; w < nw; w++ {
		if w < 10 {
			lo += res.WorkerQuality[w]
		} else {
			hi += res.WorkerQuality[w]
		}
	}
	if lo/10 >= hi/10 {
		t.Errorf("weak workers alignment %.3f not below strong %.3f", lo/10, hi/10)
	}
}

func TestMultiLatentDimsConfigurable(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 100, NumWorkers: 10, Redundancy: 5, Seed: 7})
	for _, k := range []int{1, 2, 4} {
		res, err := (&Multi{K: k}).Infer(d, core.Options{Seed: 2})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.8 {
			t.Errorf("K=%d accuracy %.3f < 0.8", k, got)
		}
	}
}

func TestMultiDecisionOnly(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 10, NumWorkers: 4, NumChoices: 3, Redundancy: 3, Seed: 9})
	if _, err := New().Infer(d, core.Options{}); err == nil {
		t.Error("Multi must reject non-decision datasets (Table 4)")
	}
}
