// Package multi implements Multi (Welinder, Branson, Perona, Belongie,
// "The multidimensional wisdom of crowds", NIPS 2010) as surveyed in
// §5.3(3) of the paper: the diverse-skills model for decision-making
// tasks.
//
// Each task i is embedded as a latent vector x_i ∈ ℝ^K (latent topics);
// each worker w has a direction vector u_w ∈ ℝ^K (per-topic skill), a
// scalar bias τ_w (the worker's decision threshold) and, implicitly
// through ‖u_w‖, an answer variance. A worker answers "1" with
// probability
//
//	Pr(v^w_i = 1) = σ(⟨u_w, x_i⟩ − τ_w).
//
// Parameters are fit by MAP alternating gradient ascent with Gaussian
// priors: x_i ~ N(0, I), u_w ~ N(e₁, I) (anchoring the sign convention so
// the first latent dimension is the truth axis) and τ_w ~ N(0, 1). The
// inferred truth is the consensus half-space decision
// σ(⟨x_i, ū⟩ − τ̄) > ½ with ū, τ̄ the answer-count weighted mean worker.
//
// This is the MAP variant of Welinder's model: the original paper also
// derives the same alternating updates as approximate posterior maximization.
package multi

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// DefaultLatentDims is the latent dimensionality K (latent topics) when
// the field is zero.
const DefaultLatentDims = 2

// Gradient hyperparameters.
const (
	gradSteps    = 10
	learningRate = 0.1
	priorWeight  = 0.1
	clampLogit   = 8.0
)

// Multi is the multidimensional-wisdom method.
type Multi struct {
	// K overrides DefaultLatentDims when positive; exposed for the
	// latent-topic ablation bench.
	K int
}

// New returns a Multi instance with the default latent dimensionality.
func New() *Multi { return &Multi{} }

// Name implements core.Method.
func (*Multi) Name() string { return "Multi" }

// Capabilities implements core.Method (Table 4 row: decision-making only;
// latent topics task model; diverse skills + bias + variance worker
// model; PGM).
func (*Multi) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:   []dataset.TaskType{dataset.Decision},
		TaskModel:   "latent topics",
		WorkerModel: "diverse skills + bias + variance",
		Technique:   core.PGM,
	}
}

// Infer implements core.Method.
func (m *Multi) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	K := m.K
	if K <= 0 {
		K = DefaultLatentDims
	}
	rng := randx.New(opts.Seed)

	// Task embeddings: first coordinate seeded from the vote margin so
	// the truth axis starts aligned with the data; remaining coordinates
	// from small noise.
	x := make([]float64, d.NumTasks*K)
	for i := 0; i < d.NumTasks; i++ {
		idxs := d.TaskAnswers(i)
		pos := 0
		for _, ai := range idxs {
			if d.Answers[ai].Label() == 1 {
				pos++
			}
		}
		margin := 0.0
		if len(idxs) > 0 {
			margin = 2*float64(pos)/float64(len(idxs)) - 1
		}
		x[i*K] = margin
		for k := 1; k < K; k++ {
			x[i*K+k] = 0.1 * rng.NormFloat64()
		}
	}
	// Worker directions anchored near e₁; biases near zero.
	u := make([]float64, d.NumWorkers*K)
	tauB := make([]float64, d.NumWorkers)
	for w := 0; w < d.NumWorkers; w++ {
		u[w*K] = 1 + 0.1*rng.NormFloat64()
		for k := 1; k < K; k++ {
			u[w*K+k] = 0.1 * rng.NormFloat64()
		}
	}

	gx := make([]float64, len(x))
	gu := make([]float64, len(u))
	gt := make([]float64, len(tauB))
	prevX := make([]float64, len(x))
	// Per-degree normalizers keep the update scale independent of how
	// many answers a task or worker has: without them a worker with
	// hundreds of answers takes steps hundreds of times larger than the
	// prior terms and the ascent diverges on high-redundancy crowds.
	taskDeg := make([]float64, d.NumTasks)
	workerDeg := make([]float64, d.NumWorkers)
	for i := range taskDeg {
		taskDeg[i] = math.Max(1, float64(len(d.TaskAnswers(i))))
	}
	for w := range workerDeg {
		workerDeg[w] = math.Max(1, float64(len(d.WorkerAnswers(w))))
	}

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevX, x)
		for step := 0; step < gradSteps; step++ {
			for idx := range gx {
				gx[idx] = -priorWeight * x[idx]
			}
			for w := 0; w < d.NumWorkers; w++ {
				for k := 0; k < K; k++ {
					anchor := 0.0
					if k == 0 {
						anchor = 1
					}
					gu[w*K+k] = -priorWeight * (u[w*K+k] - anchor)
				}
				gt[w] = -priorWeight * tauB[w]
			}
			for _, a := range d.Answers {
				xi := x[a.Task*K : a.Task*K+K]
				uw := u[a.Worker*K : a.Worker*K+K]
				p := predict(xi, uw, tauB[a.Worker])
				y := 0.0
				if a.Label() == 1 {
					y = 1
				}
				g := y - p
				for k := 0; k < K; k++ {
					gx[a.Task*K+k] += g * uw[k] / taskDeg[a.Task]
					gu[a.Worker*K+k] += g * xi[k] / workerDeg[a.Worker]
				}
				gt[a.Worker] -= g / workerDeg[a.Worker]
			}
			for idx := range x {
				x[idx] += learningRate * gx[idx]
			}
			for idx := range u {
				u[idx] += learningRate * gu[idx]
			}
			for w := range tauB {
				tauB[w] += learningRate * gt[w]
			}
		}
		if core.MaxAbsDiff(x, prevX) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	// Consensus worker: answer-count weighted mean direction and bias.
	uBar := make([]float64, K)
	var tauBar, totalW float64
	for w := 0; w < d.NumWorkers; w++ {
		cnt := float64(len(d.WorkerAnswers(w)))
		if cnt == 0 {
			continue
		}
		for k := 0; k < K; k++ {
			uBar[k] += cnt * u[w*K+k]
		}
		tauBar += cnt * tauB[w]
		totalW += cnt
	}
	if totalW > 0 {
		for k := range uBar {
			uBar[k] /= totalW
		}
		tauBar /= totalW
	} else {
		uBar[0] = 1
	}

	truth := make([]float64, d.NumTasks)
	post := core.UniformPosterior(d.NumTasks, 2)
	for i := 0; i < d.NumTasks; i++ {
		p := predict(x[i*K:i*K+K], uBar, tauBar)
		post[i][1], post[i][0] = p, 1-p
		switch {
		case p > 0.5:
			truth[i] = 1
		case p < 0.5:
			truth[i] = 0
		default:
			truth[i] = float64(rng.Intn(2))
		}
	}

	// Worker quality summary: alignment of the worker's direction with
	// the consensus axis, scaled by magnitude (low-noise workers have
	// large, well-aligned directions).
	quality := make([]float64, d.NumWorkers)
	for w := 0; w < d.NumWorkers; w++ {
		var dot float64
		for k := 0; k < K; k++ {
			dot += u[w*K+k] * uBar[k]
		}
		quality[w] = dot
	}
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: quality,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

func predict(x, u []float64, tau float64) float64 {
	var dot float64
	for k := range x {
		dot += x[k] * u[k]
	}
	return mathx.Logistic(mathx.Clamp(dot-tau, -clampLogit, clampLogit))
}
