package pm

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/randx"
	"truthinference/internal/testutil"
)

// inferCategoricalMapReference is the pre-refactor PM coordinate descent,
// preserved verbatim: index-slice walks, per-chunk vote scratch, and the
// ArgmaxTieBreak + HashPick closure tie-break. The CSR kernels (with
// core.ArgmaxHashTie) must reproduce it bit for bit.
func inferCategoricalMapReference(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	pool := opts.EnginePool()
	q := initialQuality(d, opts, func(acc float64) float64 {
		return -math.Log(math.Max(1-acc, lossEpsilon))
	})
	warmQuality(opts, q)

	truth := make([]float64, d.NumTasks)
	prevTruth := make([]float64, d.NumTasks)
	losses := make([]float64, d.NumWorkers)

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevTruth, truth)
		iter := iter
		pool.For(d.NumTasks, func(ilo, ihi int) {
			votes := make([]float64, d.NumChoices)
			for i := ilo; i < ihi; i++ {
				if gv, ok := opts.Golden[i]; ok {
					truth[i] = gv
					continue
				}
				for k := range votes {
					votes[k] = 0
				}
				idxs := d.TaskAnswers(i)
				if len(idxs) == 0 {
					continue
				}
				for _, ai := range idxs {
					a := d.Answers[ai]
					votes[a.Label()] += q[a.Worker]
				}
				i := i
				truth[i] = float64(core.ArgmaxTieBreak(votes, func(n int) int {
					return randx.HashPick(n, opts.Seed, int64(iter), int64(i))
				}))
			}
		})
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				var loss float64
				for _, ai := range d.WorkerAnswers(w) {
					a := d.Answers[ai]
					if a.Label() != int(truth[a.Task]) {
						loss++
					}
				}
				losses[w] = loss
			}
		})
		maxLoss := lossEpsilon
		for _, loss := range losses {
			if loss > maxLoss {
				maxLoss = loss
			}
		}
		for w := range q {
			if len(d.WorkerAnswers(w)) == 0 {
				continue
			}
			q[w] = -math.Log((losses[w] + lossEpsilon) / (maxLoss + lossEpsilon))
			if q[w] == 0 {
				q[w] = 0
			}
		}
		if iter > 1 && core.MaxAbsDiff(truth, prevTruth) == 0 {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}
	return &core.Result{
		Truth:         truth,
		WorkerQuality: q,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// inferNumericMapReference is the pre-refactor numeric PM loop, preserved
// verbatim.
func inferNumericMapReference(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	q := initialQuality(d, opts, func(_ float64) float64 { return 1 })
	warmQuality(opts, q)
	scale := taskScales(d)

	pool := opts.EnginePool()
	truth := make([]float64, d.NumTasks)
	prevTruth := make([]float64, d.NumTasks)
	losses := make([]float64, d.NumWorkers)

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevTruth, truth)
		pool.For(d.NumTasks, func(ilo, ihi int) {
			for i := ilo; i < ihi; i++ {
				if gv, ok := opts.Golden[i]; ok {
					truth[i] = gv
					continue
				}
				idxs := d.TaskAnswers(i)
				if len(idxs) == 0 {
					continue
				}
				var num, den float64
				for _, ai := range idxs {
					a := d.Answers[ai]
					num += q[a.Worker] * a.Value
					den += q[a.Worker]
				}
				if den > 0 {
					truth[i] = num / den
				}
			}
		})
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				var loss float64
				for _, ai := range d.WorkerAnswers(w) {
					a := d.Answers[ai]
					dv := (a.Value - truth[a.Task]) / scale[a.Task]
					loss += dv * dv
				}
				losses[w] = loss
			}
		})
		maxLoss := lossEpsilon
		for _, loss := range losses {
			if loss > maxLoss {
				maxLoss = loss
			}
		}
		for w := range q {
			if len(d.WorkerAnswers(w)) == 0 {
				continue
			}
			qw := -math.Log((losses[w] + lossEpsilon) / (maxLoss + lossEpsilon))
			if qw <= 0 {
				qw = lossEpsilon
			}
			q[w] = qw
		}
		if core.MaxAbsDiff(truth, prevTruth) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}
	return &core.Result{
		Truth:         truth,
		WorkerQuality: q,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// TestKernelMatchesMapImplementation cross-checks the CSR kernels against
// the pre-refactor map loops on the golden-corpus dataset shapes — both
// the categorical weighted-vote path (including its hash tie-breaks) and
// the numeric weighted-mean path — bit for bit at 1 and 4 workers.
func TestKernelMatchesMapImplementation(t *testing.T) {
	categorical := []*dataset.Dataset{
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 12, NumWorkers: 5, NumChoices: 2, Redundancy: 4, Seed: 2}),
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 10, NumWorkers: 6, NumChoices: 4, Redundancy: 4, Seed: 3}),
		// Uniform worker qualities on the first iteration make exact vote
		// ties common, exercising the ArgmaxHashTie replacement.
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 12, NumChoices: 3, Redundancy: 6, Seed: 9}),
	}
	numeric := testutil.Numeric(testutil.NumericSpec{NumTasks: 8, NumWorkers: 5, Redundancy: 3, Seed: 4})
	m := New()
	for _, d := range categorical {
		for _, par := range []int{1, 4} {
			opts := core.Options{Seed: 7, MaxIterations: 50, Parallelism: par}
			want, err := inferCategoricalMapReference(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Infer(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireIdenticalResults(t, "pm-categorical", got, want)
		}
	}
	for _, par := range []int{1, 4} {
		opts := core.Options{Seed: 7, MaxIterations: 50, Parallelism: par}
		want, err := inferNumericMapReference(numeric, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Infer(numeric, opts)
		if err != nil {
			t.Fatal(err)
		}
		testutil.RequireIdenticalResults(t, "pm-numeric", got, want)
	}
}
