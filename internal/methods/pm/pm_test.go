package pm

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/testutil"
)

// TestPMPaperExample re-runs the §3 worked example at the package level,
// additionally checking the first-iteration quality values the paper
// derives by hand: q_w1 = -log(3/3) = 0, q_w2 = -log(2/3) ≈ 0.41,
// q_w3 = -log(1/3) ≈ 1.10.
func TestPMPaperExample(t *testing.T) {
	answers := []dataset.Answer{
		{Task: 0, Worker: 0, Value: 0}, {Task: 1, Worker: 0, Value: 1}, {Task: 2, Worker: 0, Value: 1},
		{Task: 3, Worker: 0, Value: 0}, {Task: 4, Worker: 0, Value: 0}, {Task: 5, Worker: 0, Value: 0},
		{Task: 1, Worker: 1, Value: 0}, {Task: 2, Worker: 1, Value: 0}, {Task: 3, Worker: 1, Value: 1},
		{Task: 4, Worker: 1, Value: 1}, {Task: 5, Worker: 1, Value: 0},
		{Task: 0, Worker: 2, Value: 1}, {Task: 1, Worker: 2, Value: 0}, {Task: 2, Worker: 2, Value: 0},
		{Task: 3, Worker: 2, Value: 0}, {Task: 4, Worker: 2, Value: 0}, {Task: 5, Worker: 2, Value: 1},
	}
	d, err := dataset.New("table2", dataset.Decision, 2, 6, 3, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	one, err := New().Infer(d, core.Options{Seed: 1, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantQ := []float64{0, -math.Log(2.0 / 3), -math.Log(1.0 / 3)}
	for w, want := range wantQ {
		if math.Abs(one.WorkerQuality[w]-want) > 1e-6 {
			t.Errorf("iteration-1 q_w%d = %.4f, want %.4f", w+1, one.WorkerQuality[w], want)
		}
	}
	full, err := New().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, 0, 0, 0, 1}
	for i, v := range want {
		if full.Truth[i] != v {
			t.Errorf("converged truth[t%d] = %v, want %v", i+1, full.Truth[i], v)
		}
	}
	if !full.Converged {
		t.Error("PM did not converge on the 6-task example")
	}
}

func TestPMNumericWeightedMean(t *testing.T) {
	// Two precise workers at the truth, one far-off worker: after
	// reweighting, the estimate must sit near the precise pair.
	answers := []dataset.Answer{}
	truth := map[int]float64{}
	for i := 0; i < 50; i++ {
		truth[i] = float64(10 * i)
		answers = append(answers,
			dataset.Answer{Task: i, Worker: 0, Value: truth[i] + 0.5},
			dataset.Answer{Task: i, Worker: 1, Value: truth[i] - 0.5},
			dataset.Answer{Task: i, Worker: 2, Value: truth[i] + 40},
		)
	}
	d, err := dataset.New("numeric", dataset.Numeric, 0, 50, 3, answers, truth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := 0; i < 50; i++ {
		if e := math.Abs(res.Truth[i] - truth[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 3 {
		t.Errorf("max error %.2f > 3; the off-by-40 worker was not downweighted (qualities %v)", maxErr, res.WorkerQuality)
	}
	if res.WorkerQuality[2] >= res.WorkerQuality[0] {
		t.Errorf("off worker quality %.4f not below precise worker %.4f", res.WorkerQuality[2], res.WorkerQuality[0])
	}
}

func TestPMGoldenNumericPinned(t *testing.T) {
	d := testutil.Numeric(testutil.NumericSpec{NumTasks: 40, NumWorkers: 6, Redundancy: 4, Seed: 3})
	golden := map[int]float64{0: d.Truth[0]}
	res, err := New().Infer(d, core.Options{Seed: 1, Golden: golden})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth[0] != d.Truth[0] {
		t.Errorf("golden numeric task not pinned: %v", res.Truth[0])
	}
}

func TestPMQualificationSeeding(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 40, NumWorkers: 4, Redundancy: 3, Seed: 5})
	qa := []float64{0.99, 0.5, 0.5, 0.5}
	res, err := New().Infer(d, core.Options{Seed: 1, QualificationAccuracy: qa, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truth) != 40 {
		t.Fatal("missing truth")
	}
}

func TestPMAllAgreeingWorkers(t *testing.T) {
	// Degenerate case: everyone gives identical answers; all losses are
	// zero, qualities must stay finite and truth must match the answers.
	answers := []dataset.Answer{}
	for i := 0; i < 10; i++ {
		for w := 0; w < 3; w++ {
			answers = append(answers, dataset.Answer{Task: i, Worker: w, Value: 1})
		}
	}
	d, err := dataset.New("agree", dataset.Decision, 2, 10, 3, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Truth {
		if v != 1 {
			t.Errorf("task %d inferred %v, want 1", i, v)
		}
	}
	for w, q := range res.WorkerQuality {
		if math.IsInf(q, 0) || math.IsNaN(q) {
			t.Errorf("worker %d quality %v not finite", w, q)
		}
	}
}
