// Package pm implements PM (Li et al., "Resolving conflicts in
// heterogeneous data by truth discovery and source reliability
// estimation", SIGMOD 2014; Aydin et al., AAAI 2014) as surveyed in
// §5.2(1) and worked through in the paper's §3 running example.
//
// PM minimizes  f({q_w},{v*_i}) = Σ_w q_w Σ_{i∈T^w} d(v^w_i, v*_i)
// by coordinate descent:
//
//	Step 1 (truth):   v*_i = argmin_v Σ_{w∈W_i} q_w · d(v^w_i, v)
//	                  (for categorical tasks: the quality-weighted vote)
//	Step 2 (quality): q_w = -log( Σ_{i∈T^w} d(v^w_i, v*_i)
//	                              / max_{w'} Σ_{i∈T^w'} d(v^{w'}_i, v*_i) )
//
// For categorical tasks d is the 0/1 loss; for numeric tasks d is the
// squared loss normalized by each task's answer spread, which makes the
// losses comparable across tasks of different scales (the standard CRH
// normalization).
package pm

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// lossEpsilon regularizes the -log quality step: a worker with zero
// accumulated loss would otherwise get infinite weight, and the worker
// with maximal loss zero weight forever. The paper's running example
// exhibits exactly this (q_{w1} → 4.9e-15), so the epsilon is kept tiny.
const lossEpsilon = 1e-12

// PM is the conflict-resolution optimization method.
type PM struct{}

// New returns a PM instance.
func New() *PM { return &PM{} }

// Name implements core.Method.
func (*PM) Name() string { return "PM" }

// Capabilities implements core.Method (Table 4 row: decision-making,
// single-choice and numeric tasks, worker probability, optimization).
func (*PM) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:     []dataset.TaskType{dataset.Decision, dataset.SingleChoice, dataset.Numeric},
		TaskModel:     "none",
		WorkerModel:   "worker probability",
		Technique:     core.Optimization,
		Qualification: true,
		Golden:        true,
	}
}

// Infer implements core.Method.
func (m *PM) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	if d.Categorical() {
		return m.inferCategorical(d, opts)
	}
	return m.inferNumeric(d, opts)
}

func (m *PM) inferCategorical(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	pool := opts.EnginePool()
	q := initialQuality(d, opts, func(acc float64) float64 {
		// Map qualification accuracy onto the PM weight scale: a worker
		// with error rate (1-acc) behaves like one whose normalized loss
		// is (1-acc), so seed with -log(1-acc).
		return -math.Log(math.Max(1-acc, lossEpsilon))
	})
	warmQuality(opts, q)

	truth := make([]float64, d.NumTasks)
	prevTruth := make([]float64, d.NumTasks)
	losses := make([]float64, d.NumWorkers)

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevTruth, truth)
		// Step 1: quality-weighted vote, fanned out over tasks. Vote
		// ties are broken by a hash of (seed, iteration, task) instead
		// of a shared RNG so the pick is the same at every parallelism
		// level.
		iter := iter
		pool.For(d.NumTasks, func(ilo, ihi int) {
			votes := make([]float64, d.NumChoices)
			for i := ilo; i < ihi; i++ {
				if gv, ok := opts.Golden[i]; ok {
					truth[i] = gv
					continue
				}
				for k := range votes {
					votes[k] = 0
				}
				idxs := d.TaskAnswers(i)
				if len(idxs) == 0 {
					continue
				}
				for _, ai := range idxs {
					a := d.Answers[ai]
					votes[a.Label()] += q[a.Worker]
				}
				i := i
				truth[i] = float64(core.ArgmaxTieBreak(votes, func(n int) int {
					return randx.HashPick(n, opts.Seed, int64(iter), int64(i))
				}))
			}
		})
		// Step 2: q_w = -log(loss_w / max loss). Per-worker losses fan
		// out; the max reduction stays sequential (O(workers)).
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				var loss float64
				for _, ai := range d.WorkerAnswers(w) {
					a := d.Answers[ai]
					if a.Label() != int(truth[a.Task]) {
						loss++
					}
				}
				losses[w] = loss
			}
		})
		maxLoss := lossEpsilon
		for _, loss := range losses {
			if loss > maxLoss {
				maxLoss = loss
			}
		}
		for w := range q {
			if len(d.WorkerAnswers(w)) == 0 {
				continue
			}
			q[w] = -math.Log((losses[w] + lossEpsilon) / (maxLoss + lossEpsilon))
			if q[w] == 0 {
				q[w] = 0 // normalize -0 from -log(1)
			}
		}
		if iter > 1 && core.MaxAbsDiff(truth, prevTruth) == 0 {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}
	return &core.Result{
		Truth:         truth,
		WorkerQuality: q,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

func (m *PM) inferNumeric(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	q := initialQuality(d, opts, func(_ float64) float64 { return 1 })
	if opts.QualificationError != nil {
		maxErr := lossEpsilon
		for _, e := range opts.QualificationError {
			if !math.IsNaN(e) && e > maxErr {
				maxErr = e
			}
		}
		for w := range q {
			if !math.IsNaN(opts.QualificationError[w]) {
				q[w] = -math.Log((opts.QualificationError[w] + lossEpsilon) / (maxErr + lossEpsilon))
				if q[w] <= 0 {
					q[w] = lossEpsilon
				}
			}
		}
	}
	warmQuality(opts, q)
	// Per-task scale for the CRH loss normalization.
	scale := taskScales(d)

	pool := opts.EnginePool()
	truth := make([]float64, d.NumTasks)
	prevTruth := make([]float64, d.NumTasks)
	losses := make([]float64, d.NumWorkers)

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevTruth, truth)
		// Step 1: weighted mean minimizes the weighted squared loss;
		// fanned out over tasks.
		pool.For(d.NumTasks, func(ilo, ihi int) {
			for i := ilo; i < ihi; i++ {
				if gv, ok := opts.Golden[i]; ok {
					truth[i] = gv
					continue
				}
				idxs := d.TaskAnswers(i)
				if len(idxs) == 0 {
					continue
				}
				var num, den float64
				for _, ai := range idxs {
					a := d.Answers[ai]
					num += q[a.Worker] * a.Value
					den += q[a.Worker]
				}
				if den > 0 {
					truth[i] = num / den
				}
			}
		})
		// Step 2: normalized squared losses → -log weights; per-worker
		// losses fan out, the max reduction stays sequential.
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				var loss float64
				for _, ai := range d.WorkerAnswers(w) {
					a := d.Answers[ai]
					dv := (a.Value - truth[a.Task]) / scale[a.Task]
					loss += dv * dv
				}
				losses[w] = loss
			}
		})
		maxLoss := lossEpsilon
		for _, loss := range losses {
			if loss > maxLoss {
				maxLoss = loss
			}
		}
		for w := range q {
			if len(d.WorkerAnswers(w)) == 0 {
				continue
			}
			qw := -math.Log((losses[w] + lossEpsilon) / (maxLoss + lossEpsilon))
			if qw <= 0 {
				qw = lossEpsilon // keep strictly positive weights
			}
			q[w] = qw
		}
		if core.MaxAbsDiff(truth, prevTruth) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}
	return &core.Result{
		Truth:         truth,
		WorkerQuality: q,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// warmQuality resumes the previous epoch's -log-scale weights for every
// worker a warm start covers; later arrivals keep their cold weights.
func warmQuality(opts core.Options, q []float64) {
	for w := range q {
		q[w] = opts.WarmStart.QualityOr(w, q[w])
	}
}

// initialQuality starts every worker at weight 1 (the paper's §3
// initialization) or maps a qualification-test accuracy through seed.
func initialQuality(d *dataset.Dataset, opts core.Options, seed func(acc float64) float64) []float64 {
	q := make([]float64, d.NumWorkers)
	for w := range q {
		q[w] = 1
		if opts.QualificationAccuracy != nil && !math.IsNaN(opts.QualificationAccuracy[w]) {
			q[w] = math.Max(seed(mathx.Clamp(opts.QualificationAccuracy[w], 0, 1)), lossEpsilon)
		}
	}
	return q
}

// taskScales returns a per-task normalizer: the standard deviation of the
// task's answers, floored at a small fraction of the dataset-wide spread
// so that unanimous tasks do not produce infinite losses.
func taskScales(d *dataset.Dataset) []float64 {
	global := 0.0
	{
		vals := make([]float64, 0, len(d.Answers))
		for _, a := range d.Answers {
			vals = append(vals, a.Value)
		}
		global = math.Sqrt(mathx.Variance(vals))
		if !(global > 0) {
			global = 1
		}
	}
	floor := 0.01 * global
	out := make([]float64, d.NumTasks)
	vals := make([]float64, 0, 64)
	for i := 0; i < d.NumTasks; i++ {
		idxs := d.TaskAnswers(i)
		if len(idxs) == 0 {
			out[i] = global
			continue
		}
		vals = vals[:0]
		for _, ai := range idxs {
			vals = append(vals, d.Answers[ai].Value)
		}
		s := math.Sqrt(mathx.Variance(vals))
		if s < floor {
			s = floor
		}
		out[i] = s
	}
	return out
}
