// Package pm implements PM (Li et al., "Resolving conflicts in
// heterogeneous data by truth discovery and source reliability
// estimation", SIGMOD 2014; Aydin et al., AAAI 2014) as surveyed in
// §5.2(1) and worked through in the paper's §3 running example.
//
// PM minimizes  f({q_w},{v*_i}) = Σ_w q_w Σ_{i∈T^w} d(v^w_i, v*_i)
// by coordinate descent:
//
//	Step 1 (truth):   v*_i = argmin_v Σ_{w∈W_i} q_w · d(v^w_i, v)
//	                  (for categorical tasks: the quality-weighted vote)
//	Step 2 (quality): q_w = -log( Σ_{i∈T^w} d(v^w_i, v*_i)
//	                              / max_{w'} Σ_{i∈T^w'} d(v^{w'}_i, v*_i) )
//
// For categorical tasks d is the 0/1 loss; for numeric tasks d is the
// squared loss normalized by each task's answer spread, which makes the
// losses comparable across tasks of different scales (the standard CRH
// normalization).
package pm

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// lossEpsilon regularizes the -log quality step: a worker with zero
// accumulated loss would otherwise get infinite weight, and the worker
// with maximal loss zero weight forever. The paper's running example
// exhibits exactly this (q_{w1} → 4.9e-15), so the epsilon is kept tiny.
const lossEpsilon = 1e-12

// PM is the conflict-resolution optimization method.
type PM struct{}

// New returns a PM instance.
func New() *PM { return &PM{} }

// Name implements core.Method.
func (*PM) Name() string { return "PM" }

// Capabilities implements core.Method (Table 4 row: decision-making,
// single-choice and numeric tasks, worker probability, optimization).
func (*PM) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:     []dataset.TaskType{dataset.Decision, dataset.SingleChoice, dataset.Numeric},
		TaskModel:     "none",
		WorkerModel:   "worker probability",
		Technique:     core.Optimization,
		Qualification: true,
		Golden:        true,
	}
}

// Infer implements core.Method.
func (m *PM) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	if d.Categorical() {
		return m.inferCategorical(d, opts)
	}
	return m.inferNumeric(d, opts)
}

func (m *PM) inferCategorical(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	pool := opts.EnginePool()
	q := initialQuality(d, opts, func(acc float64) float64 {
		// Map qualification accuracy onto the PM weight scale: a worker
		// with error rate (1-acc) behaves like one whose normalized loss
		// is (1-acc), so seed with -log(1-acc).
		return -math.Log(math.Max(1-acc, lossEpsilon))
	})
	warmQuality(opts, q)

	c := dataset.BuildCSR(d)
	truth := make([]float64, d.NumTasks)
	prevTruth := make([]float64, d.NumTasks)
	losses := make([]float64, d.NumWorkers)
	// Per-slot scratch: ForSlot guarantees concurrent chunks see distinct
	// slots, so one buffer per pool worker replaces the fresh scratch the
	// old per-chunk closure allocated. A slot may claim several chunks per
	// sweep, so its loss accumulator is zeroed before the sweep, never
	// inside it.
	votesBySlot := make([][]float64, pool.Workers())
	lossBySlot := make([][]float64, pool.Workers())
	for s := range votesBySlot {
		votesBySlot[s] = make([]float64, d.NumChoices)
		lossBySlot[s] = make([]float64, d.NumWorkers)
	}

	// Fused step 1 + loss count: the quality-weighted vote fans out over
	// tasks, and because the categorical 0/1 loss is an exact integer
	// count, each task can fold its answers' losses into a per-slot
	// accumulator on the spot — integer-valued float64 additions are exact
	// in any order, so the per-slot sums reduced in fixed slot order
	// reproduce the separate worker-major sweep bit for bit while visiting
	// every answer once instead of twice. Vote ties are broken by a hash
	// of (seed, iteration, task) instead of a shared RNG so the pick is
	// the same at every parallelism level. curIter is read through the
	// closure each sweep.
	var curIter int64
	hasGolden := len(opts.Golden) > 0
	truthStep := func(slot, ilo, ihi int) {
		// Hoist the CSR arrays into locals: the writes through votes and
		// lossW would otherwise force the compiler to reload the struct
		// fields' slice headers on every iteration.
		taskOff, taskLabel, taskWorker := c.TaskOff, c.TaskLabel, c.TaskWorker
		votes := votesBySlot[slot]
		lossW := lossBySlot[slot]
		for i := ilo; i < ihi; i++ {
			lo, hi := int(taskOff[i]), int(taskOff[i+1])
			// Reslicing to the task's band lets range drive the label loop
			// with a single up-front bounds check instead of one per answer.
			labels := taskLabel[lo:hi]
			workers := taskWorker[lo:hi]
			if gv, ok := goldenAt(opts.Golden, hasGolden, i); ok {
				truth[i] = gv
			} else {
				if lo == hi {
					continue
				}
				for k := range votes {
					votes[k] = 0
				}
				for j, lb := range labels {
					votes[lb] += q[workers[j]]
				}
				// core.ArgmaxHashTie, replicated inline: the call (and its
				// internal loop) is too large for the inliner, and this is
				// the hottest call site in the method.
				best := votes[0]
				pick, ties := 0, 1
				for k := 1; k < len(votes); k++ {
					switch x := votes[k]; {
					case x > best:
						best, pick, ties = x, k, 1
					case x == best:
						ties++
					}
				}
				if ties > 1 {
					rank := randx.HashPick3(ties, opts.Seed, curIter, int64(i))
					for k := pick; ; k++ {
						if votes[k] == best {
							if rank == 0 {
								pick = k
								break
							}
							rank--
						}
					}
				}
				truth[i] = float64(pick)
			}
			lab := int(truth[i])
			// Branchless 0/1 loss: the mismatch bit becomes a +0.0/+1.0
			// addend (a conditional move, not a ~half-mispredicted branch),
			// and adding +0.0 is exact, so the counts are unchanged.
			for j, lb := range labels {
				var miss float64
				if int(lb) != lab {
					miss = 1
				}
				lossW[workers[j]] += miss
			}
		}
	}
	if d.NumChoices == 2 {
		// Decision fast path: the two vote tallies live in registers
		// instead of the votes array, accumulated branchlessly — adding
		// q·0.0 to the other tally is an exact no-op, so the per-label
		// accumulation order (and hence every bit) matches the generic
		// kernel — and the two-way argmax + hash tie-break is inlined
		// (rank 0 keeps label 0, so the pick is the hash rank itself,
		// exactly ArgmaxHashTie's walk).
		truthStep = func(slot, ilo, ihi int) {
			taskOff, taskLabel, taskWorker := c.TaskOff, c.TaskLabel, c.TaskWorker
			lossW := lossBySlot[slot]
			for i := ilo; i < ihi; i++ {
				lo, hi := int(taskOff[i]), int(taskOff[i+1])
				labels := taskLabel[lo:hi]
				workers := taskWorker[lo:hi]
				if gv, ok := goldenAt(opts.Golden, hasGolden, i); ok {
					truth[i] = gv
				} else {
					if lo == hi {
						continue
					}
					var v0, v1 float64
					for j, lb := range labels {
						qw := q[workers[j]]
						fl := float64(lb)
						v0 += qw * (1 - fl)
						v1 += qw * fl
					}
					pick := 0
					switch {
					case v1 > v0:
						pick = 1
					case v1 == v0:
						pick = randx.HashPick3(2, opts.Seed, curIter, int64(i))
					}
					truth[i] = float64(pick)
				}
				lab := int(truth[i])
				for j, lb := range labels {
					var miss float64
					if int(lb) != lab {
						miss = 1
					}
					lossW[workers[j]] += miss
				}
			}
		}
	}

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevTruth, truth)
		curIter = int64(iter)
		for _, ls := range lossBySlot {
			for w := range ls {
				ls[w] = 0
			}
		}
		pool.ForSlot(d.NumTasks, truthStep)
		// Step 2: q_w = -log(loss_w / max loss). Reduce the per-slot
		// counts in fixed slot order, then the max reduction; both are
		// O(slots·workers), far off the hot path.
		copy(losses, lossBySlot[0])
		for s := 1; s < len(lossBySlot); s++ {
			for w, v := range lossBySlot[s] {
				losses[w] += v
			}
		}
		maxLoss := lossEpsilon
		for _, loss := range losses {
			if loss > maxLoss {
				maxLoss = loss
			}
		}
		for w := range q {
			if c.WorkerDegree(w) == 0 {
				continue
			}
			q[w] = -math.Log((losses[w] + lossEpsilon) / (maxLoss + lossEpsilon))
			if q[w] == 0 {
				q[w] = 0 // normalize -0 from -log(1)
			}
		}
		if iter > 1 && core.MaxAbsDiff(truth, prevTruth) == 0 {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}
	return &core.Result{
		Truth:         truth,
		WorkerQuality: q,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

func (m *PM) inferNumeric(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	q := initialQuality(d, opts, func(_ float64) float64 { return 1 })
	if opts.QualificationError != nil {
		maxErr := lossEpsilon
		for _, e := range opts.QualificationError {
			if !math.IsNaN(e) && e > maxErr {
				maxErr = e
			}
		}
		for w := range q {
			if !math.IsNaN(opts.QualificationError[w]) {
				q[w] = -math.Log((opts.QualificationError[w] + lossEpsilon) / (maxErr + lossEpsilon))
				if q[w] <= 0 {
					q[w] = lossEpsilon
				}
			}
		}
	}
	warmQuality(opts, q)
	// Per-task scale for the CRH loss normalization.
	scale := taskScales(d)

	pool := opts.EnginePool()
	c := dataset.BuildCSR(d)
	truth := make([]float64, d.NumTasks)
	prevTruth := make([]float64, d.NumTasks)
	losses := make([]float64, d.NumWorkers)

	// Step 1: weighted mean minimizes the weighted squared loss; fanned
	// out over tasks.
	truthStep := func(_, ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			if gv, ok := opts.Golden[i]; ok {
				truth[i] = gv
				continue
			}
			if c.TaskDegree(i) == 0 {
				continue
			}
			var num, den float64
			for p := c.TaskOff[i]; p < c.TaskOff[i+1]; p++ {
				qw := q[c.TaskWorker[p]]
				num += qw * c.TaskValue[p]
				den += qw
			}
			if den > 0 {
				truth[i] = num / den
			}
		}
	}
	// Step 2: normalized squared losses → -log weights; per-worker
	// losses fan out, the max reduction stays sequential.
	lossStep := func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			var loss float64
			for p := c.WorkerOff[w]; p < c.WorkerOff[w+1]; p++ {
				t := c.WorkerTask[p]
				dv := (c.WorkerValue[p] - truth[t]) / scale[t]
				loss += dv * dv
			}
			losses[w] = loss
		}
	}

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(prevTruth, truth)
		pool.ForSlot(d.NumTasks, truthStep)
		pool.ForSlot(d.NumWorkers, lossStep)
		maxLoss := lossEpsilon
		for _, loss := range losses {
			if loss > maxLoss {
				maxLoss = loss
			}
		}
		for w := range q {
			if c.WorkerDegree(w) == 0 {
				continue
			}
			qw := -math.Log((losses[w] + lossEpsilon) / (maxLoss + lossEpsilon))
			if qw <= 0 {
				qw = lossEpsilon // keep strictly positive weights
			}
			q[w] = qw
		}
		if core.MaxAbsDiff(truth, prevTruth) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}
	return &core.Result{
		Truth:         truth,
		WorkerQuality: q,
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// warmQuality resumes the previous epoch's -log-scale weights for every
// worker a warm start covers; later arrivals keep their cold weights.
func warmQuality(opts core.Options, q []float64) {
	for w := range q {
		q[w] = opts.WarmStart.QualityOr(w, q[w])
	}
}

// initialQuality starts every worker at weight 1 (the paper's §3
// initialization) or maps a qualification-test accuracy through seed.
func initialQuality(d *dataset.Dataset, opts core.Options, seed func(acc float64) float64) []float64 {
	q := make([]float64, d.NumWorkers)
	for w := range q {
		q[w] = 1
		if opts.QualificationAccuracy != nil && !math.IsNaN(opts.QualificationAccuracy[w]) {
			q[w] = math.Max(seed(mathx.Clamp(opts.QualificationAccuracy[w], 0, 1)), lossEpsilon)
		}
	}
	return q
}

// taskScales returns a per-task normalizer: the standard deviation of the
// task's answers, floored at a small fraction of the dataset-wide spread
// so that unanimous tasks do not produce infinite losses.
func taskScales(d *dataset.Dataset) []float64 {
	global := 0.0
	{
		vals := make([]float64, 0, len(d.Answers))
		for _, a := range d.Answers {
			vals = append(vals, a.Value)
		}
		global = math.Sqrt(mathx.Variance(vals))
		if !(global > 0) {
			global = 1
		}
	}
	floor := 0.01 * global
	out := make([]float64, d.NumTasks)
	vals := make([]float64, 0, 64)
	for i := 0; i < d.NumTasks; i++ {
		idxs := d.TaskAnswers(i)
		if len(idxs) == 0 {
			out[i] = global
			continue
		}
		vals = vals[:0]
		for _, ai := range idxs {
			vals = append(vals, d.Answers[ai].Value)
		}
		s := math.Sqrt(mathx.Variance(vals))
		if s < floor {
			s = floor
		}
		out[i] = s
	}
	return out
}

// goldenAt is the hot-loop golden lookup: the hoisted hasGolden flag
// turns the per-task map access into one predictable branch on the
// (typical) golden-free run.
func goldenAt(golden map[int]float64, hasGolden bool, i int) (float64, bool) {
	if !hasGolden {
		return 0, false
	}
	gv, ok := golden[i]
	return gv, ok
}
