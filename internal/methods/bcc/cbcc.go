package bcc

// This file implements CBCC (Venanzi et al., "Community-based Bayesian
// aggregation models for crowdsourcing", WWW 2014), which extends BCC
// with worker communities: each worker belongs to one of M communities,
// each community has a representative confusion matrix, and workers in
// the same community share very similar confusion matrices (paper
// §5.3(2)). It lives in this package because it reuses BCC's Gibbs
// chassis.

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// DefaultCommunities is the number of worker communities M when the field
// is zero; the original paper finds a handful of communities (good
// workers, spammers, biased workers) suffices.
const DefaultCommunities = 3

// CommunityStrength is the concentration of a worker's confusion prior
// around the community's representative matrix: the community row scaled
// by this factor acts as pseudo-counts for the worker's Dirichlet.
const CommunityStrength = 10.0

// CBCC is the community-based Bayesian confusion-matrix method.
type CBCC struct {
	// Communities overrides DefaultCommunities when positive.
	Communities int
}

// NewCBCC returns a CBCC instance with the default community count.
func NewCBCC() *CBCC { return &CBCC{} }

// Name implements core.Method.
func (*CBCC) Name() string { return "CBCC" }

// Capabilities implements core.Method.
func (*CBCC) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:   []dataset.TaskType{dataset.Decision, dataset.SingleChoice},
		TaskModel:   "none",
		WorkerModel: "confusion matrix (community)",
		Technique:   core.PGM,
	}
}

// Infer implements core.Method.
func (m *CBCC) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	M := m.Communities
	if M <= 0 {
		M = DefaultCommunities
	}
	sweeps := DefaultSweeps
	if opts.MaxIterations > 0 {
		sweeps = opts.MaxIterations
	}
	burn := int(BurnInFraction * float64(sweeps))
	rng := randx.New(opts.Seed)

	g := newGibbsState(d, rng, opts.Seed, opts.EnginePool())
	ell := d.NumChoices

	// Community state: representative matrices and worker memberships.
	comm := newConfusion(M, ell)
	for c := 0; c < M; c++ {
		// Stagger the initial diagonals so communities start distinct
		// (e.g. experts / average / spammers).
		diag := 0.9 - 0.3*float64(c)/math.Max(1, float64(M-1))
		off := (1 - diag) / float64(ell-1)
		for j := 0; j < ell; j++ {
			row := comm.row(c, j)
			for k := range row {
				if j == k {
					row[k] = diag
				} else {
					row[k] = off
				}
			}
		}
	}
	membership := make([]int, d.NumWorkers)
	for w := range membership {
		membership[w] = rng.Intn(M)
	}

	tally := make([]float64, d.NumTasks*ell)
	diagSum := make([]float64, d.NumWorkers)
	memTally := make([]int, d.NumWorkers*M)
	samples := 0

	communityPrior := func(w, j int) []float64 { return comm.row(membership[w], j) }

	for sweep := 0; sweep < sweeps; sweep++ {
		g.sampleConfusions(int64(sweep), communityPrior, CommunityStrength)
		g.sampleClassPrior(int64(sweep))
		g.sampleLabels(int64(sweep))
		sampleMemberships(int64(sweep), g, comm, membership)
		updateCommunities(g, comm, membership)
		if sweep >= burn {
			samples++
			for i, z := range g.labels {
				tally[i*ell+z]++
			}
			for w := 0; w < d.NumWorkers; w++ {
				var s float64
				for j := 0; j < ell; j++ {
					s += g.conf.row(w, j)[j]
				}
				diagSum[w] += s / float64(ell)
				memTally[w*M+membership[w]]++
			}
		}
	}
	if samples == 0 {
		samples = 1
	}

	// Modal community assignment over the post-burn-in samples (ties to
	// the lowest community id).
	community := make([]int, d.NumWorkers)
	for w := 0; w < d.NumWorkers; w++ {
		best := 0
		for c := 1; c < M; c++ {
			if memTally[w*M+c] > memTally[w*M+best] {
				best = c
			}
		}
		community[w] = best
	}

	post := make([][]float64, d.NumTasks)
	truth := make([]float64, d.NumTasks)
	for i := range post {
		row := tally[i*ell : (i+1)*ell]
		mathx.Normalize(row)
		post[i] = row
		truth[i] = float64(core.ArgmaxTieBreak(row, rng.Intn))
	}
	quality := make([]float64, d.NumWorkers)
	for w := range quality {
		quality[w] = diagSum[w] / float64(samples)
	}
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: quality,
		Community:     community,
		Iterations:    sweeps,
		Converged:     true,
	}, nil
}

// sampleMemberships re-draws every worker's community from the categorical
// likelihood of their current (label, answer) counts under each
// community's representative matrix, fanned out over workers — worker w
// draws from the (seed, sweep, saltMembership, w) stream.
func sampleMemberships(sweep int64, g *gibbsState, comm *confusion, membership []int) {
	g.refreshCounts()
	M := len(comm.flat) / (comm.ell * comm.ell)
	g.pool.For(g.d.NumWorkers, func(wlo, whi int) {
		logw := make([]float64, M)
		for w := wlo; w < whi; w++ {
			for c := 0; c < M; c++ {
				var ll float64
				for j := 0; j < g.d.NumChoices; j++ {
					cnt := g.counts.row(w, j)
					rep := comm.row(c, j)
					for k, n := range cnt {
						if n > 0 {
							ll += n * logOf(rep[k])
						}
					}
				}
				logw[c] = ll
			}
			mathx.NormalizeLog(logw)
			membership[w] = randx.Categorical(randx.Derived(g.seed, sweep, saltMembership, int64(w)), logw)
		}
	})
}

// updateCommunities recomputes each community's representative matrix as
// the smoothed aggregate of its members' counts.
func updateCommunities(g *gibbsState, comm *confusion, membership []int) {
	ell := g.d.NumChoices
	M := len(comm.flat) / (ell * ell)
	agg := newConfusion(M, ell)
	for i := range agg.flat {
		agg.flat[i] = 0
	}
	for w := 0; w < g.d.NumWorkers; w++ {
		c := membership[w]
		for j := 0; j < ell; j++ {
			cnt := g.counts.row(w, j)
			row := agg.row(c, j)
			for k, n := range cnt {
				row[k] += n
			}
		}
	}
	for c := 0; c < M; c++ {
		for j := 0; j < ell; j++ {
			row := agg.row(c, j)
			for k := range row {
				p := rowPriorOff
				if j == k {
					p = rowPriorDiag
				}
				row[k] += p
			}
			mathx.Normalize(row)
			copy(comm.row(c, j), row)
		}
	}
}
