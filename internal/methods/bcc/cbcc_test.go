package bcc

// Dedicated CBCC suite: community assignment recovery on planted
// two-community crowds, plus the standard determinism and accuracy
// checks shared by the other method suites.

import (
	"reflect"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/testutil"
)

// plantTwoCommunities describes exactly two sharply distinct worker
// populations: experts (even ids, accuracy 0.95) and spammers (odd ids,
// accuracy 0.5).
func plantTwoCommunities(nw int) (accs []float64, expert func(w int) bool) {
	accs = make([]float64, nw)
	for w := range accs {
		if w%2 == 0 {
			accs[w] = 0.95
		} else {
			accs[w] = 0.5
		}
	}
	return accs, func(w int) bool { return w%2 == 0 }
}

func TestCBCCRecoversEasyCrowd(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 300, NumWorkers: 20, Redundancy: 5, Seed: 11})
	res, err := NewCBCC().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The community prior trades a little per-worker fidelity for
	// robustness; 0.88 still certifies correct aggregation on this crowd.
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.88 {
		t.Errorf("accuracy %.3f < 0.88", got)
	}
}

// TestCBCCCommunityAssignmentRecovery plants two communities and demands
// that the modal Gibbs membership reported in Result.Community puts the
// experts and the spammers into two different communities, with at most
// a small fraction of workers on the wrong side.
func TestCBCCCommunityAssignmentRecovery(t *testing.T) {
	const nw = 20
	accs, expert := plantTwoCommunities(nw)
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 500, NumWorkers: nw, Redundancy: 6, Accuracies: accs, Seed: 13})
	res, err := (&CBCC{Communities: 2}).Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Community) != nw {
		t.Fatalf("Community has %d entries, want %d", len(res.Community), nw)
	}
	// Community ids are exchangeable, so score the best of the two
	// labelings.
	agree := 0
	for w, c := range res.Community {
		if (c == 0) == expert(w) {
			agree++
		}
	}
	if agree < nw/2 {
		agree = nw - agree
	}
	if agree < nw-2 {
		t.Errorf("community assignment recovers %d/%d workers, want >= %d", agree, nw, nw-2)
	}
}

// TestCBCCCommunityStructure checks that the community prior does not
// wash out individual quality differences between the planted
// populations.
func TestCBCCCommunityStructure(t *testing.T) {
	const nw = 20
	accs, expert := plantTwoCommunities(nw)
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 400, NumWorkers: nw, Redundancy: 6, Accuracies: accs, Seed: 13})
	res, err := (&CBCC{Communities: 2}).Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var expertQ, spamQ float64
	for w := 0; w < nw; w++ {
		if expert(w) {
			expertQ += res.WorkerQuality[w]
		} else {
			spamQ += res.WorkerQuality[w]
		}
	}
	if expertQ/10 <= spamQ/10 {
		t.Errorf("expert community quality %.3f not above spammer community %.3f", expertQ/10, spamQ/10)
	}
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.9 {
		t.Errorf("accuracy %.3f < 0.9", got)
	}
}

// TestCBCCDeterminism: equal seeds must reproduce the identical chain —
// truth, qualities and community assignments — at any parallelism.
func TestCBCCDeterminism(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 80, NumWorkers: 10, Redundancy: 4, Seed: 7})
	for _, par := range []int{1, 4} {
		a, err := NewCBCC().Infer(d, core.Options{Seed: 11, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewCBCC().Infer(d, core.Options{Seed: 11, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Truth, b.Truth) {
			t.Errorf("parallelism %d: Gibbs chain truth not deterministic", par)
		}
		if !reflect.DeepEqual(a.WorkerQuality, b.WorkerQuality) {
			t.Errorf("parallelism %d: worker quality not deterministic", par)
		}
		if !reflect.DeepEqual(a.Community, b.Community) {
			t.Errorf("parallelism %d: community assignment not deterministic", par)
		}
	}
}

func TestCBCCSweepOverride(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 30, NumWorkers: 5, Redundancy: 3, Seed: 9})
	res, err := NewCBCC().Infer(d, core.Options{Seed: 2, MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 15 {
		t.Errorf("sweeps = %d, want 15", res.Iterations)
	}
}

func TestCBCCNoGoldenSupport(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 20, NumWorkers: 5, Redundancy: 3, Seed: 15})
	if _, err := NewCBCC().Infer(d, core.Options{Golden: map[int]float64{0: 1}}); err == nil {
		t.Error("CBCC must reject golden tasks (§6.3.3 lists 9 golden-capable methods; CBCC is not among them)")
	}
}
