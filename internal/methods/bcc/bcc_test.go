package bcc

import (
	"math"
	"reflect"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/testutil"
)

func TestBCCRecoversEasyCrowd(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 300, NumWorkers: 20, Redundancy: 5, Seed: 1})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.9 {
		t.Errorf("accuracy %.3f < 0.9", got)
	}
}

func TestBCCPosteriorFromSamples(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 80, NumWorkers: 10, NumChoices: 3, Redundancy: 4, Seed: 3})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Posterior {
		var sum float64
		for _, p := range row {
			if p < 0 || p > 1 {
				t.Fatalf("task %d posterior %v invalid", i, row)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("task %d posterior sums to %v", i, sum)
		}
	}
}

func TestBCCQualitySeparatesSpammers(t *testing.T) {
	const nw = 16
	acc := make([]float64, nw)
	for w := range acc {
		if w < 8 {
			acc[w] = 0.5
		} else {
			acc[w] = 0.9
		}
	}
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 300, NumWorkers: nw, Redundancy: 6, Accuracies: acc, Seed: 5})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64
	for w := 0; w < nw; w++ {
		if w < 8 {
			lo += res.WorkerQuality[w]
		} else {
			hi += res.WorkerQuality[w]
		}
	}
	if lo/8 >= hi/8 {
		t.Errorf("spammer mean diag %.3f not below good %.3f", lo/8, hi/8)
	}
}

func TestBCCGibbsDeterminism(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 8, Redundancy: 4, Seed: 7})
	a, err := New().Infer(d, core.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Infer(d, core.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Truth, b.Truth) {
		t.Error("Gibbs chain not deterministic under equal seeds")
	}
}

func TestBCCSweepOverride(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 30, NumWorkers: 5, Redundancy: 3, Seed: 9})
	res, err := New().Infer(d, core.Options{Seed: 2, MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 15 {
		t.Errorf("sweeps = %d, want 15", res.Iterations)
	}
}

func TestBCCNoQualificationSupport(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 20, NumWorkers: 5, Redundancy: 3, Seed: 15})
	if _, err := New().Infer(d, core.Options{QualificationAccuracy: make([]float64, 5)}); err == nil {
		t.Error("BCC must reject qualification initialization (§6.3.2)")
	}
}
