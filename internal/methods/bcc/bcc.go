// Package bcc implements BCC (Kim & Ghahramani, "Bayesian classifier
// combination", AISTATS 2012) as surveyed in §5.3(2) of the paper.
//
// BCC is a fully Bayesian confusion-matrix model: it maximizes the
// posterior joint probability
//
//	Π_i Pr(v*_i | β) Π_w Pr(q^w | α) Π_i Π_{w∈W_i} Pr(v^w_i | q^w, v*_i)
//
// with Dirichlet priors α on each confusion row and β on the class prior,
// and infers the parameters by Gibbs sampling: alternately sampling every
// task's label from its conditional, every worker's confusion rows from
// their Dirichlet posteriors, and the class prior. After burn-in the
// label samples are accumulated and the posterior mode is reported — this
// is why BCC needs noticeably more iterations than the EM methods
// (paper §6.3.1(2)).
package bcc

import (
	"math"
	"math/rand"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/engine"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// Default Gibbs schedule: total sweeps when Options.MaxIterations is zero,
// with the first BurnInFraction discarded.
const (
	DefaultSweeps  = 120
	BurnInFraction = 0.33
)

// Dirichlet hyperparameters: each confusion row gets a diagonally boosted
// prior (workers are a priori better than random), the class prior a
// symmetric one.
const (
	rowPriorOff  = 1.0
	rowPriorDiag = 4.0
	classPrior   = 1.0
)

// Salt constants separating the per-entity RNG streams of one sweep: the
// chain draws every worker's confusion rows, every task's label, the
// class prior and (for CBCC) every worker's membership from independent
// streams keyed by (seed, sweep, salt, entity). Deriving streams instead
// of sharing one *rand.Rand is what lets the sweeps fan out over workers
// and tasks while staying bit-identical at every parallelism level.
const (
	saltConfusion  = 0x1EC5
	saltLabel      = 0x2A93
	saltClass      = 0x3B17
	saltMembership = 0x4D09
)

// BCC is the Gibbs-sampled Bayesian confusion-matrix method.
type BCC struct{}

// New returns a BCC instance.
func New() *BCC { return &BCC{} }

// Name implements core.Method.
func (*BCC) Name() string { return "BCC" }

// Capabilities implements core.Method (Table 4 row: decision-making and
// single-choice, confusion matrix, PGM; no qualification/golden support
// per §6.3.2–6.3.3).
func (*BCC) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:   []dataset.TaskType{dataset.Decision, dataset.SingleChoice},
		TaskModel:   "none",
		WorkerModel: "confusion matrix",
		Technique:   core.PGM,
	}
}

// Infer implements core.Method.
func (m *BCC) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	sweeps := DefaultSweeps
	if opts.MaxIterations > 0 {
		sweeps = opts.MaxIterations
	}
	burn := int(BurnInFraction * float64(sweeps))
	rng := randx.New(opts.Seed)

	g := newGibbsState(d, rng, opts.Seed, opts.EnginePool())
	tally := make([]float64, d.NumTasks*d.NumChoices)
	diagSum := make([]float64, d.NumWorkers)
	samples := 0

	for sweep := 0; sweep < sweeps; sweep++ {
		g.sampleConfusions(int64(sweep), nil, 0)
		g.sampleClassPrior(int64(sweep))
		g.sampleLabels(int64(sweep))
		if sweep >= burn {
			samples++
			for i, z := range g.labels {
				tally[i*d.NumChoices+z]++
			}
			for w := 0; w < d.NumWorkers; w++ {
				var s float64
				for j := 0; j < d.NumChoices; j++ {
					s += g.conf.row(w, j)[j]
				}
				diagSum[w] += s / float64(d.NumChoices)
			}
		}
	}
	if samples == 0 {
		samples = 1
	}

	post := make([][]float64, d.NumTasks)
	truth := make([]float64, d.NumTasks)
	for i := range post {
		row := tally[i*d.NumChoices : (i+1)*d.NumChoices]
		mathx.Normalize(row)
		post[i] = row
		truth[i] = float64(core.ArgmaxTieBreak(row, rng.Intn))
	}
	quality := make([]float64, d.NumWorkers)
	for w := range quality {
		quality[w] = diagSum[w] / float64(samples)
	}
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: quality,
		Iterations:    sweeps,
		Converged:     true,
	}, nil
}

// gibbsState holds the chain's variables; it is shared with the CBCC
// implementation in cbcc.go, which reuses the same chassis.
type gibbsState struct {
	d          *dataset.Dataset
	seed       int64        // base seed for per-(sweep, entity) RNG streams
	pool       *engine.Pool // fans sweep inner loops out over workers/tasks
	labels     []int        // current z_i
	conf       *confusion   // current per-worker confusion matrices
	classProbs []float64    // current class prior ρ
	// counts[w][j][k]: worker w's answers k on tasks currently labeled j.
	counts *confusion
}

func newGibbsState(d *dataset.Dataset, rng *rand.Rand, seed int64, pool *engine.Pool) *gibbsState {
	g := &gibbsState{
		d:          d,
		seed:       seed,
		pool:       pool,
		labels:     make([]int, d.NumTasks),
		conf:       newConfusion(d.NumWorkers, d.NumChoices),
		classProbs: make([]float64, d.NumChoices),
		counts:     newConfusion(d.NumWorkers, d.NumChoices),
	}
	// Initialize labels by majority vote with random tie-breaks: a good
	// chain start that matches the EM methods' initialization.
	votes := make([]float64, d.NumChoices)
	for i := 0; i < d.NumTasks; i++ {
		for k := range votes {
			votes[k] = 0
		}
		idxs := d.TaskAnswers(i)
		for _, ai := range idxs {
			votes[d.Answers[ai].Label()]++
		}
		if len(idxs) == 0 {
			g.labels[i] = rng.Intn(d.NumChoices)
			continue
		}
		g.labels[i] = core.ArgmaxTieBreak(votes, rng.Intn)
	}
	for k := range g.classProbs {
		g.classProbs[k] = 1 / float64(d.NumChoices)
	}
	return g
}

// refreshCounts rebuilds the (label, answer) count tensor from the current
// labels, fanned out over workers (each goroutine owns disjoint count
// rows).
func (g *gibbsState) refreshCounts() {
	g.pool.For(g.d.NumWorkers, func(wlo, whi int) {
		for w := wlo; w < whi; w++ {
			base := w * g.counts.ell * g.counts.ell
			rows := g.counts.flat[base : base+g.counts.ell*g.counts.ell]
			for i := range rows {
				rows[i] = 0
			}
			for _, ai := range g.d.WorkerAnswers(w) {
				a := g.d.Answers[ai]
				g.counts.row(w, g.labels[a.Task])[a.Label()]++
			}
		}
	})
}

// sampleConfusions draws each worker's confusion rows from their Dirichlet
// posteriors, fanned out over workers — worker w's rows come from the
// (seed, sweep, saltConfusion, w) stream, so the draw is independent of
// every other worker's. When communityPrior is non-nil (the CBCC
// extension), the prior pseudo-counts of worker w's row j are
// strength·community[cw[w]].row(j) instead of the flat diagonal prior.
func (g *gibbsState) sampleConfusions(sweep int64, communityPrior func(w, j int) []float64, strength float64) {
	g.refreshCounts()
	ell := g.d.NumChoices
	g.pool.For(g.d.NumWorkers, func(wlo, whi int) {
		alpha := make([]float64, ell)
		for w := wlo; w < whi; w++ {
			rng := randx.Derived(g.seed, sweep, saltConfusion, int64(w))
			for j := 0; j < ell; j++ {
				cnt := g.counts.row(w, j)
				if communityPrior != nil {
					base := communityPrior(w, j)
					for k := 0; k < ell; k++ {
						alpha[k] = strength*base[k] + cnt[k]
						if alpha[k] <= 0 {
							alpha[k] = 1e-3
						}
					}
				} else {
					for k := 0; k < ell; k++ {
						p := rowPriorOff
						if j == k {
							p = rowPriorDiag
						}
						alpha[k] = p + cnt[k]
					}
				}
				row := randx.Dirichlet(rng, alpha)
				copy(g.conf.row(w, j), row)
			}
		}
	})
}

// sampleClassPrior draws ρ from its Dirichlet posterior.
func (g *gibbsState) sampleClassPrior(sweep int64) {
	ell := g.d.NumChoices
	alpha := make([]float64, ell)
	for k := range alpha {
		alpha[k] = classPrior
	}
	for _, z := range g.labels {
		alpha[z]++
	}
	copy(g.classProbs, randx.Dirichlet(randx.Derived(g.seed, sweep, saltClass), alpha))
}

// sampleLabels draws each task's label from its full conditional, fanned
// out over tasks — task i's draw comes from the (seed, sweep, saltLabel,
// i) stream.
func (g *gibbsState) sampleLabels(sweep int64) {
	ell := g.d.NumChoices
	g.pool.For(g.d.NumTasks, func(ilo, ihi int) {
		logw := make([]float64, ell)
		for i := ilo; i < ihi; i++ {
			for k := 0; k < ell; k++ {
				logw[k] = logOf(g.classProbs[k])
			}
			for _, ai := range g.d.TaskAnswers(i) {
				a := g.d.Answers[ai]
				for j := 0; j < ell; j++ {
					logw[j] += logOf(g.conf.row(a.Worker, j)[a.Label()])
				}
			}
			mathx.NormalizeLog(logw)
			g.labels[i] = randx.Categorical(randx.Derived(g.seed, sweep, saltLabel, int64(i)), logw)
		}
	})
}

func logOf(x float64) float64 {
	if x < 1e-12 {
		x = 1e-12
	}
	return math.Log(x)
}

// confusion is a dense workers × ℓ × ℓ tensor backed by one slice.
type confusion struct {
	flat []float64
	ell  int
}

func newConfusion(workers, ell int) *confusion {
	return &confusion{flat: make([]float64, workers*ell*ell), ell: ell}
}

func (c *confusion) row(worker, j int) []float64 {
	base := (worker*c.ell + j) * c.ell
	return c.flat[base : base+c.ell]
}
