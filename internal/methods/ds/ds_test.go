package ds

import (
	"math"
	"math/rand"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/testutil"
)

// asymmetricCrowd plants workers whose per-class accuracy differs sharply
// (high on class 0, low on class 1) — the D_Product-style structure only a
// confusion matrix can represent.
func asymmetricCrowd(t *testing.T, seed int64) (*dataset.Dataset, [2]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const (
		n, nw, r    = 600, 15, 5
		acc0, acc1  = 0.95, 0.6
		posFraction = 0.2
	)
	truth := make(map[int]float64, n)
	var answers []dataset.Answer
	for i := 0; i < n; i++ {
		tv := 0
		if rng.Float64() < posFraction {
			tv = 1
		}
		truth[i] = float64(tv)
		perm := rng.Perm(nw)
		for _, w := range perm[:r] {
			acc := acc0
			if tv == 1 {
				acc = acc1
			}
			l := tv
			if rng.Float64() > acc {
				l = 1 - tv
			}
			answers = append(answers, dataset.Answer{Task: i, Worker: w, Value: float64(l)})
		}
	}
	d, err := dataset.New("asym", dataset.Decision, 2, n, nw, answers, truth)
	if err != nil {
		t.Fatal(err)
	}
	return d, [2]float64{acc0, acc1}
}

func TestDSRecoversAsymmetricConfusion(t *testing.T) {
	d, acc := asymmetricCrowd(t, 11)
	res, err := New().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.9 {
		t.Errorf("accuracy %.3f < 0.9", got)
	}
	// The learned confusion matrices must reflect the planted asymmetry:
	// mean q_00 close to 0.95, mean q_11 close to 0.6.
	var q00, q11 float64
	for _, conf := range res.Confusion {
		q00 += conf[0][0]
		q11 += conf[1][1]
	}
	q00 /= float64(len(res.Confusion))
	q11 /= float64(len(res.Confusion))
	if math.Abs(q00-acc[0]) > 0.08 {
		t.Errorf("mean q_00 = %.3f, want ≈ %.2f", q00, acc[0])
	}
	if math.Abs(q11-acc[1]) > 0.12 {
		t.Errorf("mean q_11 = %.3f, want ≈ %.2f", q11, acc[1])
	}
}

func TestDSConfusionRowsAreDistributions(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 80, NumWorkers: 10, NumChoices: 4, Redundancy: 4, Seed: 13})
	res, err := New().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for w, conf := range res.Confusion {
		for j, row := range conf {
			var sum float64
			for _, p := range row {
				if p <= 0 || p >= 1 {
					t.Fatalf("worker %d row %d has boundary probability %v", w, j, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("worker %d row %d sums to %v", w, j, sum)
			}
		}
	}
}

func TestDSClassPriorHandlesImbalance(t *testing.T) {
	// 90/10 imbalance with good workers: D&S must not collapse to the
	// majority class (F1 of the minority class must be positive and high).
	rng := rand.New(rand.NewSource(17))
	const n, nw, r = 500, 12, 5
	truth := make(map[int]float64, n)
	var answers []dataset.Answer
	for i := 0; i < n; i++ {
		tv := 0
		if rng.Float64() < 0.1 {
			tv = 1
		}
		truth[i] = float64(tv)
		perm := rng.Perm(nw)
		for _, w := range perm[:r] {
			l := tv
			if rng.Float64() > 0.85 {
				l = 1 - tv
			}
			answers = append(answers, dataset.Answer{Task: i, Worker: w, Value: float64(l)})
		}
	}
	d, err := dataset.New("imb", dataset.Decision, 2, n, nw, answers, truth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tp, fn := 0, 0
	for i := 0; i < n; i++ {
		if truth[i] == 1 {
			if res.Truth[i] == 1 {
				tp++
			} else {
				fn++
			}
		}
	}
	if recall := float64(tp) / float64(tp+fn); recall < 0.7 {
		t.Errorf("minority recall %.3f < 0.7 — D&S collapsed to the majority class", recall)
	}
}

func TestRunWithPriorsSmoothsSparseWorkers(t *testing.T) {
	// A worker with a single answer: with strong pseudo-counts the learned
	// row must stay close to the prior, not jump to a 0/1 matrix.
	answers := []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1},
		{Task: 0, Worker: 1, Value: 1},
		{Task: 0, Worker: 2, Value: 1},
		{Task: 1, Worker: 0, Value: 0},
		{Task: 1, Worker: 1, Value: 0},
		{Task: 1, Worker: 2, Value: 0},
		{Task: 0, Worker: 3, Value: 1}, // sparse worker
	}
	d, err := dataset.New("sparse", dataset.Decision, 2, 2, 4, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithPriors(d, core.Options{Seed: 1}, func(_, j, k int) float64 {
		if j == k {
			return 10
		}
		return 10
	})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Confusion[3][1]
	if math.Abs(row[1]-0.5) > 0.1 {
		t.Errorf("sparse worker row = %v; with symmetric pseudo-count 10 it should stay near 0.5", row)
	}
}

func TestDSGoldenPinned(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 8, Redundancy: 4, Seed: 19})
	golden := map[int]float64{3: d.Truth[3], 4: d.Truth[4]}
	res, err := New().Infer(d, core.Options{Seed: 1, Golden: golden})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range golden {
		if res.Truth[id] != v {
			t.Errorf("golden task %d = %v, want %v", id, res.Truth[id], v)
		}
	}
}
