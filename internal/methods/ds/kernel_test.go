package ds

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
	"truthinference/internal/testutil"
)

// runMapReference is the pre-refactor EM loop, preserved verbatim as a
// reference: it walks the dataset's per-task/per-worker index slices and
// Answer structs, takes math.Log per (answer, choice) in the E-step, and
// allocates its scratch per chunk. TestKernelMatchesMapImplementation
// cross-checks the CSR kernels in run() against it bit for bit.
func runMapReference(d *dataset.Dataset, opts core.Options, priors func(worker, j, k int) float64) (*core.Result, error) {
	rng := randx.New(opts.Seed)
	pool := opts.EnginePool()
	ell := d.NumChoices

	conf := newConfusion(d.NumWorkers, ell)
	initConfusion(conf, d, opts)
	for w := 0; w < d.NumWorkers; w++ {
		if mat := opts.WarmStart.ConfusionFor(w, ell); mat != nil {
			for j := 0; j < ell; j++ {
				copy(conf.row(w, j), mat[j])
			}
		}
	}

	classPrior := make([]float64, ell)
	for k := range classPrior {
		classPrior[k] = 1 / float64(ell)
	}

	post := core.UniformPosterior(d.NumTasks, ell)
	for i := 0; i < d.NumTasks; i++ {
		if warm := opts.WarmStart.PosteriorRow(i, ell); warm != nil {
			copy(post[i], warm)
			continue
		}
		row := post[i]
		for k := range row {
			row[k] = 0
		}
		idxs := d.TaskAnswers(i)
		for _, ai := range idxs {
			row[d.Answers[ai].Label()]++
		}
		if len(idxs) == 0 {
			for k := range row {
				row[k] = 1
			}
		}
		mathx.Normalize(row)
	}
	core.PinGolden(post, opts.Golden)

	flatPrev := make([]float64, d.NumWorkers*ell*ell)
	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(flatPrev, conf.flat)
		pool.For(d.NumWorkers, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				for j := 0; j < ell; j++ {
					row := conf.row(w, j)
					for k := range row {
						row[k] = Smoothing
						if priors != nil {
							row[k] += priors(w, j, k)
						}
					}
				}
				for _, ai := range d.WorkerAnswers(w) {
					a := d.Answers[ai]
					p := post[a.Task]
					for j := 0; j < ell; j++ {
						conf.row(w, j)[a.Label()] += p[j]
					}
				}
				for j := 0; j < ell; j++ {
					mathx.Normalize(conf.row(w, j))
				}
			}
		})
		for k := range classPrior {
			classPrior[k] = Smoothing
		}
		for i := 0; i < d.NumTasks; i++ {
			for k, p := range post[i] {
				classPrior[k] += p
			}
		}
		mathx.Normalize(classPrior)

		logPrior := make([]float64, ell)
		for k := 0; k < ell; k++ {
			logPrior[k] = math.Log(classPrior[k])
		}

		pool.For(d.NumTasks, func(ilo, ihi int) {
			logw := make([]float64, ell)
			for i := ilo; i < ihi; i++ {
				copy(logw, logPrior)
				for _, ai := range d.TaskAnswers(i) {
					a := d.Answers[ai]
					for j := 0; j < ell; j++ {
						logw[j] += math.Log(conf.row(a.Worker, j)[a.Label()])
					}
				}
				mathx.NormalizeLog(logw)
				copy(post[i], logw)
			}
		})
		core.PinGolden(post, opts.Golden)

		if core.MaxAbsDiff(conf.flat, flatPrev) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	truth := core.PosteriorLabels(post, opts.Golden, rng.Intn)
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: conf.diagMeans(),
		Confusion:     conf.matrices(),
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// kernelCorpus mirrors the categorical golden-corpus dataset specs
// (internal/testutil/golden) plus a denser crowd that exercises longer
// rows and tie-heavy posteriors.
func kernelCorpus() []*dataset.Dataset {
	return []*dataset.Dataset{
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 12, NumWorkers: 5, NumChoices: 2, Redundancy: 4, Seed: 2}),
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 10, NumWorkers: 6, NumChoices: 4, Redundancy: 4, Seed: 3}),
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 12, NumChoices: 3, Redundancy: 7, Seed: 9}),
	}
}

// TestKernelMatchesMapImplementation proves the CSR rewrite changed the
// memory layout and nothing else: on the golden-corpus dataset shapes the
// columnar kernels must reproduce the pre-refactor map/index loops bit for
// bit — truths, posteriors, confusion matrices, iteration counts — with
// and without LFC-style priors, at 1 and 4 workers.
func TestKernelMatchesMapImplementation(t *testing.T) {
	lfcPriors := func(_, j, k int) float64 {
		if j == k {
			return 2
		}
		return 1
	}
	for _, d := range kernelCorpus() {
		for _, par := range []int{1, 4} {
			for name, priors := range map[string]func(int, int, int) float64{"ds": nil, "lfc-priors": lfcPriors} {
				opts := core.Options{Seed: 7, MaxIterations: 50, Parallelism: par}
				want, err := runMapReference(d, opts, priors)
				if err != nil {
					t.Fatal(err)
				}
				got, err := run(d, opts, priors)
				if err != nil {
					t.Fatal(err)
				}
				testutil.RequireIdenticalResults(t, name, got, want)
			}
		}
	}
}
