// Package ds implements D&S (Dawid & Skene, "Maximum likelihood estimation
// of observer error-rates using the EM algorithm", Applied Statistics
// 1979), the classical confusion-matrix EM method of §5.3(2) and the
// paper's overall recommendation for categorical tasks.
//
// Each worker w is an ℓ×ℓ confusion matrix q^w with
// q^w[j][k] = Pr(v^w_i = k | v*_i = j); tasks carry a shared class prior.
// EM alternates task posteriors (E-step) with closed-form re-estimation of
// confusion matrices and priors (M-step), with a small Laplace smoothing
// term to keep estimates strictly positive.
package ds

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// Smoothing is the Laplace pseudo-count added to every confusion cell and
// prior bucket in the M-step. It keeps log-likelihood terms finite for
// sparse workers without meaningfully biasing dense ones.
const Smoothing = 0.01

// DS is the Dawid–Skene EM method.
type DS struct{}

// New returns a D&S instance.
func New() *DS { return &DS{} }

// Name implements core.Method.
func (*DS) Name() string { return "D&S" }

// Capabilities implements core.Method (Table 4 row: decision-making and
// single-choice, no task model, confusion matrix, PGM).
func (*DS) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:     []dataset.TaskType{dataset.Decision, dataset.SingleChoice},
		TaskModel:     "none",
		WorkerModel:   "confusion matrix",
		Technique:     core.PGM,
		Qualification: true,
		Golden:        true,
	}
}

// Infer implements core.Method.
func (m *DS) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	return run(d, opts, nil)
}

// RunWithPriors runs the Dawid–Skene EM with extra Dirichlet pseudo-counts
// added to each worker's confusion M-step: priors(w, j, k) is the
// pseudo-count α^w_{j,k} for worker w's row j, column k. Package lfc uses
// this hook to implement LFC (Raykar et al. 2010), which is exactly D&S
// with Beta/Dirichlet priors on the confusion rows (§5.3(2) "Priors").
func RunWithPriors(d *dataset.Dataset, opts core.Options, priors func(worker, j, k int) float64) (*core.Result, error) {
	return run(d, opts, priors)
}

// run is the shared EM core. priors, when non-nil, holds per-worker
// ℓ×ℓ pseudo-counts added to the confusion M-step (the LFC extension).
//
// The inner sweeps iterate the dataset's columnar CSR view and touch only
// buffers hoisted out of the iteration loop — once the EM loop starts, a
// full M+E sweep performs zero heap allocations (enforced by
// TestSweepAllocationRegression). The per-answer log in the E-step is
// replaced by a per-worker log-confusion table recomputed each iteration:
// the same math.Log values accumulated in the same order, so results stay
// bit-identical to the pre-columnar loops.
func run(d *dataset.Dataset, opts core.Options, priors func(worker, j, k int) float64) (*core.Result, error) {
	rng := randx.New(opts.Seed)
	pool := opts.EnginePool()
	ell := d.NumChoices
	c := dataset.BuildCSR(d)

	conf := newConfusion(d.NumWorkers, ell)
	initConfusion(conf, d, opts)
	// Resume confusion matrices from the previous epoch where available;
	// workers that joined after the warm state was captured keep the
	// diagonally dominant cold initialization.
	for w := 0; w < d.NumWorkers; w++ {
		if mat := opts.WarmStart.ConfusionFor(w, ell); mat != nil {
			for j := 0; j < ell; j++ {
				copy(conf.row(w, j), mat[j])
			}
		}
	}

	classPrior := make([]float64, ell)
	for k := range classPrior {
		classPrior[k] = 1 / float64(ell)
	}

	// Initialize posteriors from majority voting so the first M-step has
	// signal (standard D&S initialization); tasks covered by a warm state
	// resume from the previous epoch's posterior instead.
	post := core.UniformPosterior(d.NumTasks, ell)
	for i := 0; i < d.NumTasks; i++ {
		if warm := opts.WarmStart.PosteriorRow(i, ell); warm != nil {
			copy(post[i], warm)
			continue
		}
		row := post[i]
		for k := range row {
			row[k] = 0
		}
		deg := c.TaskDegree(i)
		for p := c.TaskOff[i]; p < c.TaskOff[i+1]; p++ {
			row[c.TaskLabel[p]]++
		}
		if deg == 0 {
			for k := range row {
				row[k] = 1
			}
		}
		mathx.Normalize(row)
	}
	core.PinGolden(post, opts.Golden)

	flatPrev := make([]float64, d.NumWorkers*ell*ell)
	logPrior := make([]float64, ell)
	logConf := newConfusion(d.NumWorkers, ell)

	// M-step: confusion matrices from posteriors, fanned out over
	// workers — each goroutine owns a disjoint band of conf.flat.
	mStep := func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			for j := 0; j < ell; j++ {
				row := conf.row(w, j)
				for k := range row {
					row[k] = Smoothing
					if priors != nil {
						row[k] += priors(w, j, k)
					}
				}
			}
			for p := c.WorkerOff[w]; p < c.WorkerOff[w+1]; p++ {
				pr := post[c.WorkerTask[p]]
				lab := c.WorkerLabel[p]
				for j := 0; j < ell; j++ {
					conf.row(w, j)[lab] += pr[j]
				}
			}
			for j := 0; j < ell; j++ {
				mathx.Normalize(conf.row(w, j))
			}
		}
	}
	// Log-confusion table: each worker's cells logged once per iteration
	// instead of once per (answer, choice) in the E-step — the dominant
	// cost on redundancy ≥ 2 datasets, removed without changing a bit.
	logStep := func(_, wlo, whi int) {
		base := wlo * ell * ell
		for x := base; x < whi*ell*ell; x++ {
			logConf.flat[x] = math.Log(conf.flat[x])
		}
	}
	// E-step: task posteriors from confusion matrices, fanned out over
	// tasks — each goroutine owns a disjoint set of post rows, computed
	// in place (same op sequence the old scratch-then-copy performed).
	eStep := func(_, ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			row := post[i]
			copy(row, logPrior)
			for p := c.TaskOff[i]; p < c.TaskOff[i+1]; p++ {
				lrow := logConf.workerRows(int(c.TaskWorker[p]))
				lab := int(c.TaskLabel[p])
				for j := 0; j < ell; j++ {
					row[j] += lrow[j*ell+lab]
				}
			}
			mathx.NormalizeLog(row)
		}
	}

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		copy(flatPrev, conf.flat)
		pool.ForSlot(d.NumWorkers, mStep)
		// Class prior: an O(tasks·ℓ) reduction, kept sequential so its
		// summation order never depends on the chunk layout.
		for k := range classPrior {
			classPrior[k] = Smoothing
		}
		for i := 0; i < d.NumTasks; i++ {
			for k, p := range post[i] {
				classPrior[k] += p
			}
		}
		mathx.Normalize(classPrior)
		for k := 0; k < ell; k++ {
			logPrior[k] = math.Log(classPrior[k])
		}

		pool.ForSlot(d.NumWorkers, logStep)
		pool.ForSlot(d.NumTasks, eStep)
		core.PinGolden(post, opts.Golden)

		if core.MaxAbsDiff(conf.flat, flatPrev) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	truth := core.PosteriorLabels(post, opts.Golden, rng.Intn)
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: conf.diagMeans(),
		Confusion:     conf.matrices(),
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// confusion is a dense workers × ℓ × ℓ tensor backed by one slice.
type confusion struct {
	flat []float64
	ell  int
}

func newConfusion(workers, ell int) *confusion {
	return &confusion{flat: make([]float64, workers*ell*ell), ell: ell}
}

func (c *confusion) row(worker, j int) []float64 {
	base := (worker*c.ell + j) * c.ell
	return c.flat[base : base+c.ell]
}

// workerRows returns the worker's full ℓ×ℓ block as one flat slice; cell
// (j, k) lives at index j*ell+k. The E-step walks it directly instead of
// re-slicing per row.
func (c *confusion) workerRows(worker int) []float64 {
	base := worker * c.ell * c.ell
	return c.flat[base : base+c.ell*c.ell]
}

// diagMeans summarizes each worker by the mean of the confusion diagonal —
// the expected accuracy under a uniform class prior.
func (c *confusion) diagMeans() []float64 {
	workers := len(c.flat) / (c.ell * c.ell)
	out := make([]float64, workers)
	for w := 0; w < workers; w++ {
		var s float64
		for j := 0; j < c.ell; j++ {
			s += c.row(w, j)[j]
		}
		out[w] = s / float64(c.ell)
	}
	return out
}

func (c *confusion) matrices() [][][]float64 {
	workers := len(c.flat) / (c.ell * c.ell)
	out := make([][][]float64, workers)
	for w := range out {
		mat := make([][]float64, c.ell)
		for j := range mat {
			mat[j] = append([]float64(nil), c.row(w, j)...)
		}
		out[w] = mat
	}
	return out
}

// initConfusion seeds each worker's matrix with a diagonally dominant
// stochastic matrix; with a qualification test the diagonal is the
// worker's measured golden-task accuracy.
func initConfusion(c *confusion, d *dataset.Dataset, opts core.Options) {
	ell := float64(c.ell)
	for w := 0; w < d.NumWorkers; w++ {
		diag := 0.7
		if opts.QualificationAccuracy != nil && !math.IsNaN(opts.QualificationAccuracy[w]) {
			diag = mathx.Clamp(opts.QualificationAccuracy[w], 0.05, 0.95)
		}
		off := (1 - diag) / (ell - 1)
		for j := 0; j < c.ell; j++ {
			row := c.row(w, j)
			for k := range row {
				if j == k {
					row[k] = diag
				} else {
					row[k] = off
				}
			}
		}
	}
}
