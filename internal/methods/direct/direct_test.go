package direct

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
)

func mustDataset(t *testing.T, typ dataset.TaskType, ell, n, w int, answers []dataset.Answer) *dataset.Dataset {
	t.Helper()
	d, err := dataset.New("t", typ, ell, n, w, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMVPluralityWins(t *testing.T) {
	d := mustDataset(t, dataset.SingleChoice, 3, 2, 4, []dataset.Answer{
		{Task: 0, Worker: 0, Value: 2}, {Task: 0, Worker: 1, Value: 2}, {Task: 0, Worker: 2, Value: 1},
		{Task: 1, Worker: 0, Value: 0}, {Task: 1, Worker: 3, Value: 0},
	})
	res, err := NewMV().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth[0] != 2 || res.Truth[1] != 0 {
		t.Errorf("MV truth = %v", res.Truth)
	}
	// Posterior rows must be normalized vote shares.
	if math.Abs(res.Posterior[0][2]-2.0/3) > 1e-12 {
		t.Errorf("posterior = %v", res.Posterior[0])
	}
}

func TestMVTieBreakIsUniformish(t *testing.T) {
	d := mustDataset(t, dataset.Decision, 2, 1, 2, []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 0},
	})
	counts := [2]int{}
	for seed := int64(0); seed < 400; seed++ {
		res, err := NewMV().Infer(d, core.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		counts[int(res.Truth[0])]++
	}
	// Both outcomes must occur with roughly equal frequency.
	if counts[0] < 120 || counts[1] < 120 {
		t.Errorf("tie-break counts %v not balanced", counts)
	}
}

func TestMVEmptyTaskGetsSomeLabel(t *testing.T) {
	d := mustDataset(t, dataset.Decision, 2, 2, 1, []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1},
	})
	res, err := NewMV().Infer(d, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l := int(res.Truth[1]); l != 0 && l != 1 {
		t.Errorf("empty task label = %d", l)
	}
}

func TestMeanExact(t *testing.T) {
	d := mustDataset(t, dataset.Numeric, 0, 2, 3, []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 2}, {Task: 0, Worker: 2, Value: 6},
	})
	res, err := NewMean().Infer(d, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth[0] != 3 {
		t.Errorf("Mean = %v, want 3", res.Truth[0])
	}
	if res.Truth[1] != 0 {
		t.Errorf("empty task Mean = %v, want 0", res.Truth[1])
	}
}

func TestMedianExact(t *testing.T) {
	d := mustDataset(t, dataset.Numeric, 0, 2, 4, []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 100}, {Task: 0, Worker: 2, Value: 2},
		{Task: 1, Worker: 0, Value: 4}, {Task: 1, Worker: 3, Value: 8},
	})
	res, err := NewMedian().Infer(d, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth[0] != 2 {
		t.Errorf("odd Median = %v, want 2 (robust to the outlier)", res.Truth[0])
	}
	if res.Truth[1] != 6 {
		t.Errorf("even Median = %v, want 6", res.Truth[1])
	}
}

func TestDirectTaskTypeGuards(t *testing.T) {
	num := mustDataset(t, dataset.Numeric, 0, 1, 1, []dataset.Answer{{Task: 0, Worker: 0, Value: 1}})
	dec := mustDataset(t, dataset.Decision, 2, 1, 1, []dataset.Answer{{Task: 0, Worker: 0, Value: 1}})
	if _, err := NewMV().Infer(num, core.Options{}); err == nil {
		t.Error("MV on numeric dataset should fail")
	}
	if _, err := NewMean().Infer(dec, core.Options{}); err == nil {
		t.Error("Mean on decision dataset should fail")
	}
	if _, err := NewMedian().Infer(dec, core.Options{}); err == nil {
		t.Error("Median on decision dataset should fail")
	}
}
