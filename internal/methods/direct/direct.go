// Package direct implements the three direct-computation baselines of the
// paper (§5.1): Majority Voting for categorical tasks, and Mean and Median
// for numeric tasks. None of them model workers or tasks; they aggregate
// answers in a single pass.
package direct

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// MV is Majority Voting: the truth of each task is the plurality answer,
// with uniformly random tie-breaking (the paper notes MV breaks the tie on
// t1 of the running example randomly).
type MV struct{}

// NewMV returns the Majority Voting baseline.
func NewMV() *MV { return &MV{} }

// Name implements core.Method.
func (*MV) Name() string { return "MV" }

// Capabilities implements core.Method; MV has no task or worker model.
func (*MV) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:   []dataset.TaskType{dataset.Decision, dataset.SingleChoice},
		TaskModel:   "none",
		WorkerModel: "none",
		Technique:   core.Direct,
	}
}

// Infer implements core.Method.
func (m *MV) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	post := make([][]float64, d.NumTasks)
	counts := make([]float64, d.NumTasks*d.NumChoices)
	for i := range post {
		post[i] = counts[i*d.NumChoices : (i+1)*d.NumChoices]
	}
	for _, a := range d.Answers {
		post[a.Task][a.Label()]++
	}
	truth := make([]float64, d.NumTasks)
	for i, row := range post {
		// The tie-break depends only on (seed, task), never on other
		// tasks' draws, so the streaming path (internal/stream) can
		// relabel just the tasks a delta touched and stay bit-identical
		// with a full batch run.
		truth[i] = float64(core.ArgmaxTieBreak(row, func(n int) int {
			return randx.HashPick(n, opts.Seed, int64(i))
		}))
		mathx.Normalize(row)
	}
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: uniformQuality(d.NumWorkers),
		Iterations:    1,
		Converged:     true,
	}, nil
}

// Mean regards the arithmetic mean of a task's answers as its truth
// (numeric baseline; the paper finds it the best method on N_Emotion).
type Mean struct{}

// NewMean returns the Mean baseline.
func NewMean() *Mean { return &Mean{} }

// Name implements core.Method.
func (*Mean) Name() string { return "Mean" }

// Capabilities implements core.Method.
func (*Mean) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:   []dataset.TaskType{dataset.Numeric},
		TaskModel:   "none",
		WorkerModel: "none",
		Technique:   core.Direct,
	}
}

// Infer implements core.Method. Tasks with no answers get 0.
func (m *Mean) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	truth := make([]float64, d.NumTasks)
	for i := 0; i < d.NumTasks; i++ {
		idxs := d.TaskAnswers(i)
		if len(idxs) == 0 {
			continue
		}
		var s float64
		for _, ai := range idxs {
			s += d.Answers[ai].Value
		}
		truth[i] = s / float64(len(idxs))
	}
	return &core.Result{
		Truth:         truth,
		WorkerQuality: uniformQuality(d.NumWorkers),
		Iterations:    1,
		Converged:     true,
	}, nil
}

// Median regards the median of a task's answers as its truth (numeric
// baseline robust to outliers).
type Median struct{}

// NewMedian returns the Median baseline.
func NewMedian() *Median { return &Median{} }

// Name implements core.Method.
func (*Median) Name() string { return "Median" }

// Capabilities implements core.Method.
func (*Median) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:   []dataset.TaskType{dataset.Numeric},
		TaskModel:   "none",
		WorkerModel: "none",
		Technique:   core.Direct,
	}
}

// Infer implements core.Method. Tasks with no answers get 0.
func (m *Median) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	truth := make([]float64, d.NumTasks)
	vals := make([]float64, 0, 64)
	for i := 0; i < d.NumTasks; i++ {
		idxs := d.TaskAnswers(i)
		if len(idxs) == 0 {
			continue
		}
		vals = vals[:0]
		for _, ai := range idxs {
			vals = append(vals, d.Answers[ai].Value)
		}
		med := mathx.Median(vals)
		if math.IsNaN(med) {
			med = 0
		}
		truth[i] = med
	}
	return &core.Result{
		Truth:         truth,
		WorkerQuality: uniformQuality(d.NumWorkers),
		Iterations:    1,
		Converged:     true,
	}, nil
}

func uniformQuality(n int) []float64 {
	q := make([]float64, n)
	for i := range q {
		q[i] = 1
	}
	return q
}
