// Package glad implements GLAD (Whitehill et al., "Whose vote should count
// more: Optimal integration of labels from labelers of unknown expertise",
// NIPS 2009) as surveyed in §5.3(1) of the paper: the ZC model extended
// with a per-task difficulty parameter.
//
// The probability that worker w answers task i correctly is
//
//	Pr(v^w_i = v*_i | α_w, β_i) = σ(α_w · β_i)
//
// where α_w ∈ ℝ is the worker's ability and β_i > 0 the task's easiness
// (the paper's d_i; higher = easier). EM alternates task posteriors with
// gradient ascent on (α, log β) over the expected complete log-likelihood,
// with standard-normal priors on α-1 and log β as in the original paper.
// Wrong answers spread the residual mass uniformly over the ℓ-1 remaining
// choices.
package glad

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// Gradient-ascent hyperparameters for the M-step. GLAD's original
// implementation uses conjugate gradient; a few fixed-rate ascent steps
// per EM iteration converge to the same stationary points on the
// benchmark sizes used here and keep the method dependency-free.
const (
	gradSteps    = 10
	learningRate = 0.05
	priorWeight  = 0.01 // weight of the Gaussian priors on α and log β
	clampAbility = 8.0  // |α·β| cap to keep the sigmoid away from saturation
)

// GLAD is the task-difficulty EM method.
type GLAD struct{}

// New returns a GLAD instance.
func New() *GLAD { return &GLAD{} }

// Name implements core.Method.
func (*GLAD) Name() string { return "GLAD" }

// Capabilities implements core.Method (Table 4 row: decision-making and
// single-choice, task difficulty model, worker probability, PGM).
func (*GLAD) Capabilities() core.Capabilities {
	return core.Capabilities{
		TaskTypes:     []dataset.TaskType{dataset.Decision, dataset.SingleChoice},
		TaskModel:     "task difficulty",
		WorkerModel:   "worker probability",
		Technique:     core.PGM,
		Qualification: true,
		Golden:        true,
	}
}

// Infer implements core.Method.
func (m *GLAD) Infer(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	if err := core.CheckSupport(m, d, opts); err != nil {
		return nil, err
	}
	rng := randx.New(opts.Seed)
	ell := float64(d.NumChoices)

	alpha := make([]float64, d.NumWorkers) // worker ability
	for w := range alpha {
		alpha[w] = 1
		if opts.QualificationAccuracy != nil && !math.IsNaN(opts.QualificationAccuracy[w]) {
			// σ(α·1) = accuracy at unit easiness → α = logit(acc).
			alpha[w] = mathx.Logit(mathx.Clamp(opts.QualificationAccuracy[w], 0.05, 0.95))
		}
		// A warm start resumes the previous epoch's abilities (GLAD's
		// WorkerQuality is α itself); task easiness is re-learned, since
		// the E-step and the β gradient recover it from α in a few
		// iterations.
		alpha[w] = opts.WarmStart.QualityOr(w, alpha[w])
	}
	logBeta := make([]float64, d.NumTasks) // log task easiness, β = e^{logBeta}

	pool := opts.EnginePool()
	c := dataset.BuildCSR(d)
	post := core.UniformPosterior(d.NumTasks, d.NumChoices)
	prevAlpha := make([]float64, d.NumWorkers)
	gradAlpha := make([]float64, d.NumWorkers)
	gradLogBeta := make([]float64, d.NumTasks)

	// E-step: posterior over the true label of each task, fanned out over
	// tasks — each goroutine owns disjoint post rows, computed in place
	// (same op sequence as the old scratch-then-copy). σ(α·β) depends on
	// the (worker, task) pair, so it stays per-answer.
	eStep := func(_, ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			row := post[i]
			for k := range row {
				row[k] = 0
			}
			beta := math.Exp(logBeta[i])
			for p := c.TaskOff[i]; p < c.TaskOff[i+1]; p++ {
				pc := correctProb(alpha[c.TaskWorker[p]], beta)
				logCorrect := math.Log(pc)
				logWrong := math.Log((1 - pc) / (ell - 1))
				lab := int(c.TaskLabel[p])
				for k := range row {
					if lab == k {
						row[k] += logCorrect
					} else {
						row[k] += logWrong
					}
				}
			}
			mathx.NormalizeLog(row)
		}
	}
	// M-step gradient passes: the single answers pass of the textbook
	// formulation is split into a per-worker pass (∂Q/∂α) and a per-task
	// pass (∂Q/∂ log β): each gradient entry is then owned by exactly one
	// loop index, which lets both passes fan out with no shared
	// accumulators and a summation order (the ascending answer order of
	// the CSR rows) that is independent of the chunk layout.
	alphaStep := func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			g := -priorWeight * (alpha[w] - 1) // N(1,1) prior on α
			for p := c.WorkerOff[w]; p < c.WorkerOff[w+1]; p++ {
				t := c.WorkerTask[p]
				beta := math.Exp(logBeta[t])
				s := correctProb(alpha[w], beta)
				// pCorrect = posterior probability the worker's
				// answer equals the truth; ∂Q/∂(αβ) = pCorrect - σ(αβ).
				g += (post[t][c.WorkerLabel[p]] - s) * beta
			}
			gradAlpha[w] = g
		}
	}
	betaStep := func(_, ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			g := -priorWeight * logBeta[i] // N(0,1) prior on log β
			beta := math.Exp(logBeta[i])
			for p := c.TaskOff[i]; p < c.TaskOff[i+1]; p++ {
				w := c.TaskWorker[p]
				s := correctProb(alpha[w], beta)
				g += (post[i][c.TaskLabel[p]] - s) * alpha[w] * beta
			}
			gradLogBeta[i] = g
		}
	}

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		pool.ForSlot(d.NumTasks, eStep)
		core.PinGolden(post, opts.Golden)

		// M-step: gradient ascent on the expected complete
		// log-likelihood Q(α, log β).
		copy(prevAlpha, alpha)
		for step := 0; step < gradSteps; step++ {
			pool.ForSlot(d.NumWorkers, alphaStep)
			pool.ForSlot(d.NumTasks, betaStep)
			for w := range alpha {
				alpha[w] += learningRate * gradAlpha[w]
			}
			for i := range logBeta {
				logBeta[i] = mathx.Clamp(logBeta[i]+learningRate*gradLogBeta[i], -5, 5)
			}
		}

		if core.MaxAbsDiff(alpha, prevAlpha) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	truth := core.PosteriorLabels(post, opts.Golden, rng.Intn)
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: append([]float64(nil), alpha...),
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// correctProb returns σ(α·β) clamped away from 0 and 1 so that logs stay
// finite; with ℓ choices the wrong-answer probability (1-σ)/(ℓ-1) then
// also stays positive.
func correctProb(alpha, beta float64) float64 {
	x := mathx.Clamp(alpha*beta, -clampAbility, clampAbility)
	return mathx.Logistic(x)
}
