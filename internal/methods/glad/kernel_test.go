package glad

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
	"truthinference/internal/testutil"
)

// inferMapReference is the pre-refactor GLAD loop, preserved verbatim: it
// walks the per-task/per-worker index slices and Answer structs, with the
// E-step scratch allocated per chunk. The CSR kernels must reproduce it
// bit for bit.
func inferMapReference(d *dataset.Dataset, opts core.Options) (*core.Result, error) {
	rng := randx.New(opts.Seed)
	ell := float64(d.NumChoices)

	alpha := make([]float64, d.NumWorkers)
	for w := range alpha {
		alpha[w] = 1
		if opts.QualificationAccuracy != nil && !math.IsNaN(opts.QualificationAccuracy[w]) {
			alpha[w] = mathx.Logit(mathx.Clamp(opts.QualificationAccuracy[w], 0.05, 0.95))
		}
		alpha[w] = opts.WarmStart.QualityOr(w, alpha[w])
	}
	logBeta := make([]float64, d.NumTasks)

	pool := opts.EnginePool()
	post := core.UniformPosterior(d.NumTasks, d.NumChoices)
	prevAlpha := make([]float64, d.NumWorkers)
	gradAlpha := make([]float64, d.NumWorkers)
	gradLogBeta := make([]float64, d.NumTasks)

	var iter int
	converged := false
	for iter = 1; iter <= opts.MaxIter(); iter++ {
		pool.For(d.NumTasks, func(ilo, ihi int) {
			logw := make([]float64, d.NumChoices)
			for i := ilo; i < ihi; i++ {
				for k := range logw {
					logw[k] = 0
				}
				beta := math.Exp(logBeta[i])
				for _, ai := range d.TaskAnswers(i) {
					a := d.Answers[ai]
					p := correctProb(alpha[a.Worker], beta)
					logCorrect := math.Log(p)
					logWrong := math.Log((1 - p) / (ell - 1))
					for k := 0; k < d.NumChoices; k++ {
						if a.Label() == k {
							logw[k] += logCorrect
						} else {
							logw[k] += logWrong
						}
					}
				}
				mathx.NormalizeLog(logw)
				copy(post[i], logw)
			}
		})
		core.PinGolden(post, opts.Golden)

		copy(prevAlpha, alpha)
		for step := 0; step < gradSteps; step++ {
			pool.For(d.NumWorkers, func(wlo, whi int) {
				for w := wlo; w < whi; w++ {
					g := -priorWeight * (alpha[w] - 1)
					for _, ai := range d.WorkerAnswers(w) {
						a := d.Answers[ai]
						beta := math.Exp(logBeta[a.Task])
						s := correctProb(alpha[w], beta)
						g += (post[a.Task][a.Label()] - s) * beta
					}
					gradAlpha[w] = g
				}
			})
			pool.For(d.NumTasks, func(ilo, ihi int) {
				for i := ilo; i < ihi; i++ {
					g := -priorWeight * logBeta[i]
					beta := math.Exp(logBeta[i])
					for _, ai := range d.TaskAnswers(i) {
						a := d.Answers[ai]
						s := correctProb(alpha[a.Worker], beta)
						g += (post[i][a.Label()] - s) * alpha[a.Worker] * beta
					}
					gradLogBeta[i] = g
				}
			})
			for w := range alpha {
				alpha[w] += learningRate * gradAlpha[w]
			}
			for i := range logBeta {
				logBeta[i] = mathx.Clamp(logBeta[i]+learningRate*gradLogBeta[i], -5, 5)
			}
		}

		if core.MaxAbsDiff(alpha, prevAlpha) < opts.Tol() {
			converged = true
			break
		}
	}
	if iter > opts.MaxIter() {
		iter = opts.MaxIter()
	}

	truth := core.PosteriorLabels(post, opts.Golden, rng.Intn)
	return &core.Result{
		Truth:         truth,
		Posterior:     post,
		WorkerQuality: append([]float64(nil), alpha...),
		Iterations:    iter,
		Converged:     converged,
	}, nil
}

// TestKernelMatchesMapImplementation cross-checks the CSR kernels against
// the pre-refactor map loops on the golden-corpus dataset shapes: every
// field of the result must match bit for bit at 1 and 4 workers. The
// iteration cap is lowered to keep GLAD's gradient M-step fast.
func TestKernelMatchesMapImplementation(t *testing.T) {
	corpus := []*dataset.Dataset{
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 12, NumWorkers: 5, NumChoices: 2, Redundancy: 4, Seed: 2}),
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 10, NumWorkers: 6, NumChoices: 4, Redundancy: 4, Seed: 3}),
		testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 12, NumChoices: 3, Redundancy: 7, Seed: 9}),
	}
	for _, d := range corpus {
		for _, par := range []int{1, 4} {
			opts := core.Options{Seed: 7, MaxIterations: 25, Parallelism: par}
			want, err := inferMapReference(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := New().Infer(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireIdenticalResults(t, "glad", got, want)
		}
	}
}
