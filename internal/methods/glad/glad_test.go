package glad

import (
	"math"
	"math/rand"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/testutil"
)

func TestGLADRecoversEasyCrowd(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 300, NumWorkers: 20, Redundancy: 5, Seed: 1})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.88 {
		t.Errorf("accuracy %.3f < 0.88", got)
	}
}

func TestGLADAbilityOrdering(t *testing.T) {
	const nw = 16
	acc := make([]float64, nw)
	for w := range acc {
		if w < 8 {
			acc[w] = 0.6
		} else {
			acc[w] = 0.95
		}
	}
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 400, NumWorkers: nw, Redundancy: 6, Accuracies: acc, Seed: 3})
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64
	for w := 0; w < nw; w++ {
		if w < 8 {
			lo += res.WorkerQuality[w]
		} else {
			hi += res.WorkerQuality[w]
		}
	}
	if lo/8 >= hi/8 {
		t.Errorf("mean ability of weak workers %.3f not below strong %.3f", lo/8, hi/8)
	}
}

// TestGLADLearnsTaskDifficulty plants two task populations: easy tasks
// answered with accuracy 0.95 and hard tasks with accuracy 0.55, by the
// same worker pool. GLAD's per-task β (log-easiness) must separate them —
// the capability that distinguishes it from ZC (§4.1.1).
func TestGLADLearnsTaskDifficulty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, nw, r = 400, 20, 7
	truth := make(map[int]float64, n)
	var answers []dataset.Answer
	hard := make([]bool, n)
	for i := 0; i < n; i++ {
		tv := rng.Intn(2)
		truth[i] = float64(tv)
		hard[i] = i%2 == 1
		acc := 0.95
		if hard[i] {
			acc = 0.55
		}
		perm := rng.Perm(nw)
		for _, w := range perm[:r] {
			l := tv
			if rng.Float64() > acc {
				l = 1 - tv
			}
			answers = append(answers, dataset.Answer{Task: i, Worker: w, Value: float64(l)})
		}
	}
	d, err := dataset.New("difficulty", dataset.Decision, 2, n, nw, answers, truth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Infer(d, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Recover the per-task correctness probability implied by the model:
	// the posterior margin is a monotone proxy for β; use posterior
	// confidence of the chosen label.
	var easyConf, hardConf float64
	var ne, nh int
	for i := 0; i < n; i++ {
		p := res.Posterior[i][int(res.Truth[i])]
		if hard[i] {
			hardConf += p
			nh++
		} else {
			easyConf += p
			ne++
		}
	}
	easyConf /= float64(ne)
	hardConf /= float64(nh)
	if easyConf <= hardConf {
		t.Errorf("easy-task confidence %.3f not above hard-task %.3f", easyConf, hardConf)
	}
	// Accuracy on easy tasks must be near-perfect.
	correctEasy, totalEasy := 0, 0
	for i := 0; i < n; i++ {
		if hard[i] {
			continue
		}
		totalEasy++
		if res.Truth[i] == truth[i] {
			correctEasy++
		}
	}
	if acc := float64(correctEasy) / float64(totalEasy); acc < 0.95 {
		t.Errorf("easy-task accuracy %.3f < 0.95", acc)
	}
}

func TestGLADQualificationLogitSeed(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 40, NumWorkers: 6, Redundancy: 3, Seed: 7})
	qa := []float64{0.95, 0.95, 0.95, 0.55, 0.55, math.NaN()}
	res, err := New().Infer(d, core.Options{Seed: 2, QualificationAccuracy: qa, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkerQuality[0] <= res.WorkerQuality[3] {
		t.Errorf("high-qualification worker ability %.3f not above low %.3f",
			res.WorkerQuality[0], res.WorkerQuality[3])
	}
}

func TestGLADGoldenPinned(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 8, Redundancy: 4, Seed: 9})
	golden := map[int]float64{0: d.Truth[0], 5: d.Truth[5]}
	res, err := New().Infer(d, core.Options{Seed: 2, Golden: golden})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range golden {
		if res.Truth[id] != v {
			t.Errorf("golden task %d not pinned", id)
		}
	}
}
