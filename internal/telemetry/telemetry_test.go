package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help", "tenant").With("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "help", "tenant").With("a"); again.Value() != 5 {
		t.Fatalf("get-or-create returned a fresh series: %d", again.Value())
	}
	if other := r.Counter("c_total", "help", "tenant").With("b"); other.Value() != 0 {
		t.Fatalf("distinct label tuple shared state: %d", other.Value())
	}

	g := r.Gauge("g", "help").With()
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Counter("x", "").With("v") != nil {
		t.Fatal("nil registry must yield nil instruments")
	}
	if r.Gauge("x", "").With() != nil || r.Histogram("x", "", LatencyBuckets).With() != nil {
		t.Fatal("nil registry must yield nil instruments")
	}
	if r.Expose() != "" {
		t.Fatal("nil registry must expose nothing")
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // uniform over [0.5, 7.5]
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	wantSum := 0.0
	for i := 0; i < 100; i++ {
		wantSum += float64(i%8) + 0.5
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	// Median of a uniform [0.5, 7.5] sample sits near 4; the bucket
	// estimator must land inside the (2, 4] bucket.
	p50 := h.Quantile(0.5)
	if p50 <= 2 || p50 > 4 {
		t.Fatalf("p50 = %v, want in (2, 4]", p50)
	}
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 = %v, want 8 (top finite bound)", q)
	}
	// Values beyond every bound land in +Inf and clamp to the top
	// finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Quantile(0.99); q != 1 {
		t.Fatalf("+Inf quantile = %v, want clamp to 1", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestRegistryRedefinitionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "help", "tenant")
	for name, fn := range map[string]func(){
		"kind":   func() { r.Gauge("m_total", "help", "tenant") },
		"arity":  func() { r.Counter("m_total", "help", "tenant", "route") },
		"labels": func() { r.Counter("m_total", "help", "route") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWrongLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("m_total", "help", "tenant")
	defer func() {
		if recover() == nil {
			t.Fatal("With() with wrong arity did not panic")
		}
	}()
	v.With("a", "b")
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help", "tenant")
	h := r.Histogram("h_seconds", "help", LatencyBuckets, "tenant")
	g := r.Gauge("g", "help", "tenant")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := string(rune('a' + w%2))
			for i := 0; i < per; i++ {
				c.With(tenant).Inc()
				h.With(tenant).Observe(0.001)
				g.With(tenant).Add(1)
				_ = r.Expose() // scrapes race against writes
			}
		}(w)
	}
	wg.Wait()
	total := c.With("a").Value() + c.With("b").Value()
	if total != workers*per {
		t.Fatalf("counter total = %d, want %d", total, workers*per)
	}
	if got := h.With("a").Count() + h.With("b").Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := g.With("a").Value() + g.With("b").Value(); got != workers*per {
		t.Fatalf("gauge total = %v, want %d", got, workers*per)
	}
}
