package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the header the middleware accepts from clients and
// echoes on every response. The internal/api error envelope copies it
// into the request_id field.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted client-supplied IDs so a hostile
// header cannot bloat logs or metrics.
const maxRequestIDLen = 128

type ctxKey int

const requestIDKey ctxKey = 0

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID extracts the request ID from ctx, or "" if none was stamped.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

var ridFallback atomic.Uint64

// newRequestID mints a 16-hex-char random ID, falling back to a process
// counter if the system randomness source fails.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		var c [8]byte
		n := ridFallback.Add(1)
		for i := range c {
			c[i] = byte(n >> (8 * i))
		}
		b = c
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts printable ASCII without spaces, bounded in
// length — anything else is replaced with a minted ID.
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] >= 0x7f {
			return false
		}
	}
	return true
}

// HTTPMetrics is the per-request instrument pair recorded by Middleware.
type HTTPMetrics struct {
	requests *CounterVec   // route, method, status, tenant
	duration *HistogramVec // route, tenant
}

// NewHTTPMetrics registers the request counter and latency histogram
// under the given name prefix (e.g. "truthserve"). Returns nil for a
// nil registry.
func NewHTTPMetrics(r *Registry, prefix string) *HTTPMetrics {
	if r == nil {
		return nil
	}
	return &HTTPMetrics{
		requests: r.Counter(prefix+"_http_requests_total",
			"HTTP requests served, by route, method, status, and tenant.",
			"route", "method", "status", "tenant"),
		duration: r.Histogram(prefix+"_http_request_seconds",
			"HTTP request latency in seconds, by route and tenant.",
			LatencyBuckets, "route", "tenant"),
	}
}

// RouteFunc classifies a request into a bounded-cardinality route label
// and a tenant label ("" when the request is not tenant-scoped).
type RouteFunc func(*http.Request) (route, tenant string)

// statusWriter records the status code written by the wrapped handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware stamps every request with a request ID (accepting a valid
// client-supplied X-Request-ID or minting one), echoes it in the
// response headers and context, records count/latency/status per route
// and tenant, and logs requests slower than slow (0 disables the slow
// log). Any of m and logger may be nil; routeOf nil falls back to the
// raw URL path as the route label (fine for tests, unbounded for
// production).
func Middleware(next http.Handler, m *HTTPMetrics, logger *slog.Logger, slow time.Duration, routeOf RouteFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = newRequestID()
		}
		// Set the response header before the handler runs so error
		// writers (internal/api.Error) can echo it into the envelope.
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(WithRequestID(r.Context(), id))

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		route, tenant := r.URL.Path, ""
		if routeOf != nil {
			route, tenant = routeOf(r)
		}
		if m != nil {
			m.requests.With(route, r.Method, statusText(sw.status), tenant).Inc()
			m.duration.With(route, tenant).Observe(elapsed.Seconds())
		}
		if logger != nil && slow > 0 && elapsed >= slow {
			logger.Warn("slow request",
				"request_id", id,
				"method", r.Method,
				"route", route,
				"tenant", tenant,
				"status", sw.status,
				"elapsed", elapsed)
		}
	})
}

// statusText renders a status code label without an allocation for the
// common codes.
func statusText(code int) string {
	switch code {
	case 200:
		return "200"
	case 201:
		return "201"
	case 202:
		return "202"
	case 204:
		return "204"
	case 400:
		return "400"
	case 404:
		return "404"
	case 409:
		return "409"
	case 413:
		return "413"
	case 429:
		return "429"
	case 500:
		return "500"
	case 503:
		return "503"
	}
	return itoa(code)
}

func itoa(n int) string {
	if n < 0 {
		n = 0
	}
	var buf [8]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(buf[i:])
}
