// Package telemetry is the daemon's dependency-free observability core:
// atomic counters, gauges, and fixed-bucket latency histograms organized
// into a Registry keyed by metric name + label values, exposed in
// Prometheus text format (see expose.go) and fed by the HTTP middleware
// (see middleware.go).
//
// The package is deliberately not named metrics: internal/metrics holds
// the paper's inference-quality metrics (accuracy/F1/MAE/RMSE), while
// this package holds operational telemetry about the serving stack.
//
// All instruments are nil-safe: calling Inc/Add/Set/Observe on a nil
// instrument is a no-op, so uninstrumented construction paths (tests,
// benchmarks measuring the uninstrumented baseline) simply pass nil and
// pay a single predictable branch.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric families a Registry can hold.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n events. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count. Safe on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value that can move both ways.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the value by delta (negative deltas decrement). Safe on a
// nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value. Safe on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution with cumulative Prometheus
// semantics: bucket i counts observations <= upper[i], plus an implicit
// +Inf bucket. Observations and scrapes are lock-free.
type Histogram struct {
	upper   []float64 // ascending strict upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// LatencyBuckets spans 100µs to 10s — the serving-path range from a
// cached in-memory hit to a badly stalled fsync.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// FsyncBuckets spans 10µs to 2.5s: group-commit fsyncs sit in the
// hundreds of microseconds on NVMe and tens of milliseconds on cloud
// block storage.
var FsyncBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// BatchSizeBuckets counts items per group commit (powers of two).
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// NewHistogram builds a standalone histogram (not registered anywhere)
// over the given ascending bucket upper bounds. Useful for callers like
// cmd/loadgen that want quantiles without exposition. Panics if buckets
// is empty or not strictly ascending.
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic("telemetry: histogram buckets must be strictly ascending")
		}
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	return &Histogram{
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1),
	}
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bucket whose upper bound admits v;
	// sort.SearchFloat64s finds the leftmost i with upper[i] >= v.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total number of observations. Safe on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the running total of observed values. Safe on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank, the same
// estimator Prometheus' histogram_quantile uses. Returns 0 when the
// histogram is empty or nil. Values landing in the +Inf bucket clamp to
// the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i == len(h.upper) { // +Inf bucket: clamp to last finite bound
			return h.upper[len(h.upper)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.upper[i-1]
		}
		hi := h.upper[i]
		frac := (rank - float64(prev)) / float64(n)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return h.upper[len(h.upper)-1]
}

// family is one named metric with a fixed kind, help string, label
// schema, and a series per distinct label-value tuple.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]any // label-tuple key -> *Counter | *Gauge | *Histogram
	keys   []string       // sorted view rebuilt on insert, for stable scrapes
}

// seriesKey joins label values with unit separators — a byte that cannot
// survive in practical label values, so distinct tuples never collide.
func seriesKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = append(b, v...)
	}
	return string(b)
}

func (f *family) get(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = mk()
	f.series[key] = s
	f.keys = append(f.keys, key)
	sort.Strings(f.keys)
	return s
}

// CounterVec is a counter family; With binds label values to one series.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family; With binds label values to one series.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family; With binds label values to one
// series.
type HistogramVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Safe on a nil receiver (returns a nil, no-op Counter).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(values, func() any { return &Counter{} }).(*Counter)
}

// With returns the gauge for the given label values, creating it on
// first use. Safe on a nil receiver (returns a nil, no-op Gauge).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(values, func() any { return &Gauge{} }).(*Gauge)
}

// With returns the histogram for the given label values, creating it on
// first use. Safe on a nil receiver (returns a nil, no-op Histogram).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	f := v.f
	return f.get(values, func() any { return NewHistogram(f.buckets) }).(*Histogram)
}

// Registry holds metric families and renders them as a Prometheus text
// scrape. The zero value is not usable; call NewRegistry. A nil
// *Registry is accepted by the NewXxxMetrics constructors across the
// repo and yields nil (no-op) instrument bundles.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted view rebuilt on insert
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) family(name, help string, kind Kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s redefined as %s (was %s)", name, kind, f.kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %s redefined with %d labels (was %d)", name, len(labels), len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: metric %s redefined with label %q (was %q)", name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  map[string]any{},
	}
	if kind == KindHistogram {
		// Validate eagerly so a bad bucket spec fails at registration,
		// not at the first Observe.
		NewHistogram(buckets)
	}
	r.families[name] = f
	r.names = append(r.names, name)
	sort.Strings(r.names)
	return f
}

// Counter registers (or fetches) a counter family. Get-or-create: a
// second call with the same name and label schema returns the same
// family, so per-tenant bundles can share one registry. Safe on a nil
// receiver (returns nil).
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, KindCounter, nil, labels)}
}

// Gauge registers (or fetches) a gauge family. Safe on a nil receiver.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, KindGauge, nil, labels)}
}

// Histogram registers (or fetches) a histogram family over the given
// bucket upper bounds. Safe on a nil receiver.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.family(name, help, KindHistogram, buckets, labels)}
}
