package telemetry

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestGoldenScrape pins the full exposition of a populated registry:
// family ordering, series ordering, HELP/TYPE lines, cumulative
// histogram buckets, and value formatting.
func TestGoldenScrape(t *testing.T) {
	r := NewRegistry()
	ing := r.Counter("ts_ingest_total", "Answers ingested.", "tenant")
	ing.With("beta").Add(7)
	ing.With("alpha").Add(3)
	r.Gauge("ts_ready", "1 once recovery completed.").With().Set(1)
	h := r.Histogram("ts_fsync_seconds", "Fsync latency.", []float64{0.001, 0.01}, "tenant")
	h.With("alpha").Observe(0.0005)
	h.With("alpha").Observe(0.002)
	h.With("alpha").Observe(5) // +Inf bucket

	want := strings.Join([]string{
		`# HELP ts_fsync_seconds Fsync latency.`,
		`# TYPE ts_fsync_seconds histogram`,
		`ts_fsync_seconds_bucket{tenant="alpha",le="0.001"} 1`,
		`ts_fsync_seconds_bucket{tenant="alpha",le="0.01"} 2`,
		`ts_fsync_seconds_bucket{tenant="alpha",le="+Inf"} 3`,
		`ts_fsync_seconds_sum{tenant="alpha"} 5.0025`,
		`ts_fsync_seconds_count{tenant="alpha"} 3`,
		`# HELP ts_ingest_total Answers ingested.`,
		`# TYPE ts_ingest_total counter`,
		`ts_ingest_total{tenant="alpha"} 3`,
		`ts_ingest_total{tenant="beta"} 7`,
		`# HELP ts_ready 1 once recovery completed.`,
		`# TYPE ts_ready gauge`,
		`ts_ready 1`,
	}, "\n") + "\n"

	if got := r.Expose(); got != want {
		t.Fatalf("scrape mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", `help with \ backslash`+"\nand newline", "name").
		With(`quo"te\slash` + "\nnewline").Inc()
	got := r.Expose()
	wantHelp := `# HELP m_total help with \\ backslash\nand newline`
	wantSeries := `m_total{name="quo\"te\\slash\nnewline"} 1`
	for _, want := range []string{wantHelp, wantSeries} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("scrape missing %q:\n%s", want, got)
		}
	}
}

// TestHistogramBucketMonotonicity feeds a histogram adversarial values
// (bucket boundaries, +Inf landers, negatives) and checks the exposed
// cumulative bucket counts never decrease and end at the series count.
func TestHistogramBucketMonotonicity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", LatencyBuckets).With()
	values := []float64{-1, 0, 0.0001, 0.00011, 0.001, 0.0025, 0.5, 1, 9.999, 10, 11, 1e6}
	for _, v := range values {
		h.Observe(v)
	}
	var prev uint64
	buckets := 0
	for _, line := range strings.Split(r.Expose(), "\n") {
		if !strings.HasPrefix(line, "h_seconds_bucket{") {
			continue
		}
		buckets++
		n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("cumulative count went backwards at %q (prev %d)", line, prev)
		}
		prev = n
	}
	if buckets != len(LatencyBuckets)+1 {
		t.Fatalf("exposed %d buckets, want %d (+Inf included)", buckets, len(LatencyBuckets)+1)
	}
	if prev != uint64(len(values)) {
		t.Fatalf("+Inf bucket = %d, want the full count %d", prev, len(values))
	}
}

func TestHandlerServesScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "help").With().Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Fatalf("scrape body missing series:\n%s", rec.Body.String())
	}
}

func TestEmptyFamiliesAreOmitted(t *testing.T) {
	r := NewRegistry()
	r.Counter("never_used_total", "help", "tenant") // registered, no series
	if got := r.Expose(); got != "" {
		t.Fatalf("series-less family leaked into the scrape:\n%s", got)
	}
}
