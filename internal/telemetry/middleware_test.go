package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"truthinference/internal/api"
)

func TestMiddlewareMintsRequestID(t *testing.T) {
	var seen string
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
	}), nil, nil, 0, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	echoed := rec.Header().Get(RequestIDHeader)
	if echoed == "" || echoed != seen {
		t.Fatalf("minted ID not propagated: header %q, context %q", echoed, seen)
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(echoed) {
		t.Fatalf("minted ID %q is not 16 hex chars", echoed)
	}
}

func TestMiddlewareAcceptsClientRequestID(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		nil, nil, 0, nil)
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(RequestIDHeader, "client-supplied-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "client-supplied-42" {
		t.Fatalf("client ID not echoed: %q", got)
	}

	// Hostile IDs (control bytes, oversized) are replaced, not echoed.
	for _, bad := range []string{"has space", "ctrl\x01byte", strings.Repeat("x", 200)} {
		req := httptest.NewRequest("GET", "/", nil)
		req.Header.Set(RequestIDHeader, bad)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if got := rec.Header().Get(RequestIDHeader); got == bad || got == "" {
			t.Fatalf("hostile ID %q survived as %q", bad, got)
		}
	}
}

// TestRequestIDReachesErrorEnvelope is the middleware/api contract: a
// handler failing through api.Error inside the middleware produces an
// envelope whose request_id matches the response header.
func TestRequestIDReachesErrorEnvelope(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		api.Error(w, http.StatusNotFound, errors.New("no such project"))
	}), nil, nil, 0, nil)
	req := httptest.NewRequest("GET", "/v1/projects/nope/stats", nil)
	req.Header.Set(RequestIDHeader, "trace-me-7")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	var env api.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Error.RequestID != "trace-me-7" {
		t.Fatalf("envelope request_id = %q, want trace-me-7", env.Error.RequestID)
	}
	if env.Error.Code != api.CodeNotFound {
		t.Fatalf("envelope code = %q, want not_found", env.Error.Code)
	}
}

func TestMiddlewareRecordsMetrics(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "ts")
	routeOf := func(r *http.Request) (string, string) { return "/v1/ingest", "alpha" }
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}), m, nil, 0, routeOf)
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/ingest", nil))
	}
	scrape := reg.Expose()
	want := `ts_http_requests_total{route="/v1/ingest",method="POST",status="429",tenant="alpha"} 3`
	if !strings.Contains(scrape, want+"\n") {
		t.Fatalf("scrape missing %q:\n%s", want, scrape)
	}
	if !strings.Contains(scrape, `ts_http_request_seconds_count{route="/v1/ingest",tenant="alpha"} 3`) {
		t.Fatalf("latency histogram not recorded:\n%s", scrape)
	}
}

func TestMiddlewareSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(5 * time.Millisecond)
	})
	h := Middleware(slow, nil, logger, time.Millisecond, nil)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/stats", nil))
	if !strings.Contains(buf.String(), "slow request") {
		t.Fatalf("no slow-request log line:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "request_id=") {
		t.Fatalf("slow-request log missing request_id:\n%s", buf.String())
	}

	buf.Reset()
	fast := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		nil, logger, time.Second, nil)
	fast.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if buf.Len() != 0 {
		t.Fatalf("fast request logged as slow:\n%s", buf.String())
	}
}

func TestStatusText(t *testing.T) {
	for code, want := range map[int]string{200: "200", 429: "429", 503: "503", 418: "418", 999: "999"} {
		if got := statusText(code); got != want {
			t.Fatalf("statusText(%d) = %q, want %q", code, got, want)
		}
	}
}
