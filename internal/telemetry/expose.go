package telemetry

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format version served
// by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Expose renders every registered family in Prometheus text format
// v0.0.4: families sorted by name, series sorted by label tuple, with
// # HELP / # TYPE headers and cumulative histogram buckets.
func (r *Registry) Expose() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.expose(&b)
	}
	return b.String()
}

// Handler serves the scrape at any path it is mounted on (conventionally
// GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_, _ = w.Write([]byte(r.Expose()))
	})
}

func (f *family) expose(b *strings.Builder) {
	f.mu.RLock()
	keys := append([]string(nil), f.keys...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.RUnlock()
	if len(series) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for i, s := range series {
		values := splitKey(keys[i], len(f.labels))
		switch m := s.(type) {
		case *Counter:
			b.WriteString(f.name)
			writeLabels(b, f.labels, values, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(m.Value(), 10))
			b.WriteByte('\n')
		case *Gauge:
			b.WriteString(f.name)
			writeLabels(b, f.labels, values, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(m.Value()))
			b.WriteByte('\n')
		case *Histogram:
			var cum uint64
			for j := range m.counts {
				cum += m.counts[j].Load()
				le := "+Inf"
				if j < len(m.upper) {
					le = formatFloat(m.upper[j])
				}
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, f.labels, values, "le", le)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
			}
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, f.labels, values, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(m.Sum()))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, f.labels, values, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(m.Count(), 10))
			b.WriteByte('\n')
		}
	}
}

// splitKey reverses seriesKey for n label values, padding with empty
// strings when trailing values were empty.
func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	parts := strings.SplitN(key, "\x1f", n)
	for len(parts) < n {
		parts = append(parts, "")
	}
	return parts
}

// writeLabels renders {a="x",b="y"}; extraName/extraValue append the
// histogram le label. Emits nothing for zero labels and no extra.
func writeLabels(b *strings.Builder, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
