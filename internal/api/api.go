// Package api is the shared wire surface of the serving stack: the one
// JSON error envelope every endpoint answers failures with, the typed
// request/response structs the stream, assign and tenant HTTP layers
// exchange, and the request-decoding helpers that enforce body-size
// caps uniformly.
//
// # Error envelope
//
// Every non-2xx response is
//
//	{"error":{"code":"<machine code>","message":"<human message>","request_id":"<id>"}}
//
// with a stable machine-readable code (see ErrorCode) alongside the HTTP
// status, so clients branch on codes instead of parsing prose; the
// request_id field (present when the request passed through the
// telemetry middleware) joins the failure to the server's structured
// logs. 429
// responses always carry a Retry-After header (seconds) — backpressure
// is actionable, not just an error.
//
// # Body caps
//
// Every JSON endpoint reads its body through http.MaxBytesReader with a
// per-endpoint cap (MaxAdminBody, MaxIngestBody, MaxBatchBody); an
// oversized body is a 413 with code "payload_too_large", never an
// unbounded allocation.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Body-size caps, per endpoint class. The JSON ingest cap admits a few
// hundred thousand answers per request; anything bigger belongs on the
// binary batch endpoint, whose cap matches the WAL's per-record bound.
const (
	// MaxAdminBody caps small control-plane bodies (project create,
	// lease complete, refresh).
	MaxAdminBody = 1 << 20 // 1 MiB
	// MaxIngestBody caps the JSON ingest body.
	MaxIngestBody = 8 << 20 // 8 MiB
	// MaxBatchBody caps the binary batch-ingest body (magic + frames).
	MaxBatchBody = 1 << 26 // 64 MiB
)

// ErrorCode is the machine-readable failure class in the error envelope.
type ErrorCode string

const (
	CodeBadRequest    ErrorCode = "bad_request"       // 400: malformed body, ids, framing
	CodeForbidden     ErrorCode = "forbidden"         // 403: lease held by another worker
	CodeNotFound      ErrorCode = "not_found"         // 404: unknown task/worker/project/route
	CodeConflict      ErrorCode = "conflict"          // 409: version conflict, duplicate id, budget
	CodeGone          ErrorCode = "gone"              // 410: deleted project, expired lease
	CodeTooLarge      ErrorCode = "payload_too_large" // 413: body over the endpoint cap
	CodeUnprocessable ErrorCode = "unprocessable"     // 422: semantically invalid request
	CodeRateLimited   ErrorCode = "rate_limited"      // 429: per-tenant rate/quota shed
	CodeInternal      ErrorCode = "internal"          // 5xx
)

// CodeFor maps an HTTP status onto its default error code.
func CodeFor(status int) ErrorCode {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusForbidden:
		return CodeForbidden
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusGone:
		return CodeGone
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusUnprocessableEntity:
		return CodeUnprocessable
	case http.StatusTooManyRequests:
		return CodeRateLimited
	default:
		return CodeInternal
	}
}

// ErrorBody is the inner object of the error envelope. RequestID echoes
// the X-Request-ID the telemetry middleware stamped on the response, so
// a client error report can be joined against the server's structured
// logs; it is empty on responses written outside the middleware (tests
// driving handlers directly).
type ErrorBody struct {
	Code      ErrorCode `json:"code"`
	Message   string    `json:"message"`
	RequestID string    `json:"request_id,omitempty"`
}

// ErrorEnvelope is the JSON shape of every non-2xx response.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Error writes the error envelope with the status's default code. The
// request ID, when the telemetry middleware has already stamped one on
// the response headers, rides along in the envelope.
func Error(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, ErrorEnvelope{Error: ErrorBody{
		Code:      CodeFor(status),
		Message:   err.Error(),
		RequestID: w.Header().Get("X-Request-ID"),
	}})
}

// RateLimited writes a 429 with code "rate_limited" and a Retry-After
// header of ceil(retryAfter) seconds (minimum 1 — a Retry-After of 0
// invites an immediate retry storm).
func RateLimited(w http.ResponseWriter, retryAfter time.Duration, err error) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	Error(w, http.StatusTooManyRequests, err)
}

// DecodeJSON decodes one JSON body into v with unknown fields rejected
// and the body capped at maxBytes. On failure it writes the error
// response itself (413 for an oversized body, 400 otherwise) and
// returns false; handlers simply return on false.
func DecodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			Error(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte cap", tooBig.Limit))
			return false
		}
		Error(w, http.StatusBadRequest, fmt.Errorf("decode request body: %w", err))
		return false
	}
	return true
}

// Answer is the JSON wire shape of one crowdsourced answer.
type Answer struct {
	Task   int     `json:"task"`
	Worker int     `json:"worker"`
	Value  float64 `json:"value"`
}

// IngestRequest is the body of POST /v1/ingest. Truth keys are strings
// because JSON objects cannot have integer keys.
type IngestRequest struct {
	Answers    []Answer           `json:"answers"`
	Truth      map[string]float64 `json:"truth,omitempty"`
	NumTasks   int                `json:"num_tasks,omitempty"`
	NumWorkers int                `json:"num_workers,omitempty"`
}

// IngestResponse is the body of a successful POST /v1/ingest.
type IngestResponse struct {
	Version  uint64 `json:"version"`
	Ingested int    `json:"ingested"`
	Tasks    int    `json:"tasks"`
	Workers  int    `json:"workers"`
	Answers  int    `json:"answers"`
}

// BatchIngestResponse is the body of a successful POST /v1/ingest-batch.
// Version is the store version after the last committed batch —
// "accepted". DurableVersion is the store version fsynced to the
// write-ahead log when the response was written — "durable"; a client
// that needs durability waits for DurableVersion >= its Version before
// treating the answers as safe. On a project without a WAL, Durable is
// false and DurableVersion 0: nothing is ever durable there.
type BatchIngestResponse struct {
	Batches        int    `json:"batches"`
	Ingested       int    `json:"ingested"`
	Version        uint64 `json:"version"`
	Durable        bool   `json:"durable"`
	DurableVersion uint64 `json:"durable_version"`
	Tasks          int    `json:"tasks"`
	Workers        int    `json:"workers"`
	Answers        int    `json:"answers"`
}

// CompleteRequest is the body of POST /v1/complete.
type CompleteRequest struct {
	LeaseID uint64  `json:"lease_id"`
	Worker  int     `json:"worker"`
	Value   float64 `json:"value"`
}

// CompleteResponse is the body of a successful POST /v1/complete.
type CompleteResponse struct {
	LeaseID uint64 `json:"lease_id"`
	Version uint64 `json:"version"`
}

// QueryRequest is the body of POST /v1/query: either the name of a
// canned view or a relational-plan AST (exactly one of the two). Plan
// stays raw here — internal/query owns the AST shape and decodes it
// strictly. Limit caps the returned rows (0 means the server default);
// the server also enforces a hard maximum.
type QueryRequest struct {
	View  string          `json:"view,omitempty"`
	Plan  json.RawMessage `json:"plan,omitempty"`
	Limit int             `json:"limit,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query. Every
// answer-sourced row reflects exactly StoreVersion; model-derived
// columns (posteriors, worker qualities) reflect ResultVersion, the
// inference epoch they were published at (0 when the query touched
// none). Truncated reports that the row limit cut the result short.
type QueryResponse struct {
	StoreVersion  uint64      `json:"store_version"`
	ResultVersion uint64      `json:"result_version,omitempty"`
	Cols          []string    `json:"cols"`
	Rows          [][]float64 `json:"rows"`
	Truncated     bool        `json:"truncated,omitempty"`
}

// CreateProjectRequest is the body of POST /v1/admin/projects; Config
// is the tenant config shape, decoded by the tenant layer.
type CreateProjectRequest struct {
	ID     string          `json:"id"`
	Config json.RawMessage `json:"config"`
}

// Health is the body of every healthz probe.
type Health struct {
	Status string `json:"status"`
}
