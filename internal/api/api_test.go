package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCodeFor(t *testing.T) {
	cases := []struct {
		status int
		want   ErrorCode
	}{
		{http.StatusBadRequest, CodeBadRequest},
		{http.StatusForbidden, CodeForbidden},
		{http.StatusNotFound, CodeNotFound},
		{http.StatusConflict, CodeConflict},
		{http.StatusGone, CodeGone},
		{http.StatusRequestEntityTooLarge, CodeTooLarge},
		{http.StatusUnprocessableEntity, CodeUnprocessable},
		{http.StatusTooManyRequests, CodeRateLimited},
		{http.StatusInternalServerError, CodeInternal},
		{http.StatusTeapot, CodeInternal},
	}
	for _, c := range cases {
		if got := CodeFor(c.status); got != c.want {
			t.Errorf("CodeFor(%d) = %q, want %q", c.status, got, c.want)
		}
	}
}

func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) ErrorEnvelope {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("unmarshal envelope: %v (body %q)", err, rec.Body.String())
	}
	return env
}

func TestErrorEnvelopeShape(t *testing.T) {
	rec := httptest.NewRecorder()
	Error(rec, http.StatusNotFound, errNamed("no such task"))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	env := decodeEnvelope(t, rec)
	if env.Error.Code != CodeNotFound || env.Error.Message != "no such task" {
		t.Fatalf("envelope = %+v", env)
	}
	// The wire shape must be exactly {"error":{"code","message"}}.
	var raw map[string]map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatalf("raw unmarshal: %v", err)
	}
	if len(raw) != 1 || len(raw["error"]) != 2 {
		t.Fatalf("unexpected wire shape: %v", raw)
	}
}

type errNamed string

func (e errNamed) Error() string { return string(e) }

func TestRateLimitedRetryAfter(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want string
	}{
		{0, "1"},
		{time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{10 * time.Second, "10"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		RateLimited(rec, c.wait, errNamed("slow down"))
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429", rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != c.want {
			t.Errorf("Retry-After for %v = %q, want %q", c.wait, got, c.want)
		}
		if env := decodeEnvelope(t, rec); env.Error.Code != CodeRateLimited {
			t.Errorf("code = %q, want rate_limited", env.Error.Code)
		}
	}
}

func TestDecodeJSON(t *testing.T) {
	type body struct {
		N int `json:"n"`
	}

	t.Run("ok", func(t *testing.T) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/", strings.NewReader(`{"n":7}`))
		var v body
		if !DecodeJSON(rec, req, 64, &v) {
			t.Fatalf("DecodeJSON failed: %s", rec.Body.String())
		}
		if v.N != 7 {
			t.Fatalf("n = %d, want 7", v.N)
		}
	})

	t.Run("unknown field", func(t *testing.T) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/", strings.NewReader(`{"n":7,"zzz":1}`))
		var v body
		if DecodeJSON(rec, req, 64, &v) {
			t.Fatal("DecodeJSON accepted an unknown field")
		}
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", rec.Code)
		}
		if env := decodeEnvelope(t, rec); env.Error.Code != CodeBadRequest {
			t.Fatalf("code = %q, want bad_request", env.Error.Code)
		}
	})

	t.Run("malformed", func(t *testing.T) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/", strings.NewReader(`{`))
		var v body
		if DecodeJSON(rec, req, 64, &v) {
			t.Fatal("DecodeJSON accepted malformed JSON")
		}
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", rec.Code)
		}
	})

	t.Run("oversized", func(t *testing.T) {
		rec := httptest.NewRecorder()
		big := `{"n":` + strings.Repeat("1", 100) + `}`
		req := httptest.NewRequest("POST", "/", strings.NewReader(big))
		var v body
		if DecodeJSON(rec, req, 16, &v) {
			t.Fatal("DecodeJSON accepted an oversized body")
		}
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413", rec.Code)
		}
		if env := decodeEnvelope(t, rec); env.Error.Code != CodeTooLarge {
			t.Fatalf("code = %q, want payload_too_large", env.Error.Code)
		}
	})
}

func TestWriteJSON(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusCreated, IngestResponse{Version: 3, Ingested: 2})
	if rec.Code != http.StatusCreated {
		t.Fatalf("status = %d, want 201", rec.Code)
	}
	var out IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Version != 3 || out.Ingested != 2 {
		t.Fatalf("round trip = %+v", out)
	}
}
