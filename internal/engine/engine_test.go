package engine

import (
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce checks the partition property for a spread
// of sizes and worker counts: every index visited exactly once.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000, 4097} {
		for _, workers := range []int{1, 2, 3, 8, 33} {
			visits := make([]int32, n)
			New(workers).For(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d workers=%d: bad chunk [%d,%d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, v)
				}
			}
		}
	}
}

// TestForDisjointWritesDeterministic runs a disjoint-write computation at
// several parallelism levels and demands byte-identical float output —
// the contract every parallel loop in the repository relies on.
func TestForDisjointWritesDeterministic(t *testing.T) {
	const n = 10_000
	compute := func(workers int) []float64 {
		out := make([]float64, n)
		New(workers).For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				// Accumulate in an i-owned order, as the methods do.
				var s float64
				for j := 0; j < 20; j++ {
					s += float64(i*j) * 1e-3
				}
				out[i] = s
			}
		})
		return out
	}
	want := compute(1)
	for _, workers := range []int{2, 4, 16} {
		got := compute(workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestEach(t *testing.T) {
	const n = 500
	seen := make([]int32, n)
	New(4).Each(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestNilAndZeroPoolRunInline(t *testing.T) {
	var nilPool *Pool
	var zero Pool
	for _, p := range []*Pool{nilPool, &zero} {
		if got := p.Workers(); got != 1 {
			t.Errorf("Workers() = %d, want 1", got)
		}
		sum := 0
		p.For(10, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum += i // safe: must run on the calling goroutine
			}
		})
		if sum != 45 {
			t.Errorf("inline sum = %d, want 45", sum)
		}
	}
}

func TestNewAutoWorkers(t *testing.T) {
	if got := New(0).Workers(); got < 1 {
		t.Errorf("New(0).Workers() = %d, want >= 1", got)
	}
	if got := New(-3).Workers(); got < 1 {
		t.Errorf("New(-3).Workers() = %d, want >= 1", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Errorf("New(5).Workers() = %d, want 5", got)
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in a chunk was swallowed")
		}
	}()
	New(4).For(1000, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 731 {
				panic("boom")
			}
		}
	})
}

func TestPersistentPoolMatchesTransient(t *testing.T) {
	const n = 10000
	want := make([]float64, n)
	New(4).For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = float64(i) * 1.5
		}
	})

	p := NewPersistent(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	// Several For calls reuse the same resident goroutines; every call
	// must cover every index exactly once with identical results.
	for round := 0; round < 5; round++ {
		got := make([]float64, n)
		p.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = float64(i) * 1.5
			}
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: index %d = %v, want %v", round, i, got[i], want[i])
			}
		}
	}
}

func TestPersistentPoolCloseThenFor(t *testing.T) {
	p := NewPersistent(3)
	p.Close()
	p.Close() // idempotent
	// After Close the pool falls back to transient spawning.
	var covered [100]bool
	p.For(len(covered), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i] = true
		}
	})
	for i, ok := range covered {
		if !ok {
			t.Fatalf("index %d not covered after Close", i)
		}
	}
}

func TestPersistentSingleWorkerNeverSpawns(t *testing.T) {
	p := NewPersistent(1)
	defer p.Close()
	sum := 0
	p.For(10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
}
