package engine

import (
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce checks the partition property for a spread
// of sizes and worker counts: every index visited exactly once.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000, 4097} {
		for _, workers := range []int{1, 2, 3, 8, 33} {
			visits := make([]int32, n)
			New(workers).For(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d workers=%d: bad chunk [%d,%d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, v)
				}
			}
		}
	}
}

// TestForDisjointWritesDeterministic runs a disjoint-write computation at
// several parallelism levels and demands byte-identical float output —
// the contract every parallel loop in the repository relies on.
func TestForDisjointWritesDeterministic(t *testing.T) {
	const n = 10_000
	compute := func(workers int) []float64 {
		out := make([]float64, n)
		New(workers).For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				// Accumulate in an i-owned order, as the methods do.
				var s float64
				for j := 0; j < 20; j++ {
					s += float64(i*j) * 1e-3
				}
				out[i] = s
			}
		})
		return out
	}
	want := compute(1)
	for _, workers := range []int{2, 4, 16} {
		got := compute(workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestForSlotSlotsAreExclusive checks the scratch contract: slots are in
// [0, Workers()), the caller always holds slot 0, and no two concurrent
// chunks ever share a slot — verified by marking a slot busy for the
// duration of each chunk and failing on any overlap.
func TestForSlotSlotsAreExclusive(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		p := New(workers)
		busy := make([]atomic.Bool, p.Workers())
		covered := make([]int32, 5000)
		p.ForSlot(len(covered), func(slot, lo, hi int) {
			if slot < 0 || slot >= p.Workers() {
				t.Errorf("workers=%d: slot %d outside [0,%d)", workers, slot, p.Workers())
			}
			if !busy[slot].CompareAndSwap(false, true) {
				t.Errorf("workers=%d: slot %d entered concurrently", workers, slot)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
			busy[slot].Store(false)
		})
		for i, v := range covered {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestForSlotSequentialInlineNoAlloc pins the zero-allocation property the
// CSR inference kernels rely on: a one-worker (or nil) pool must run
// ForSlot inline without allocating, so a sweep whose body is a pre-bound
// closure performs zero allocations per call.
func TestForSlotSequentialInlineNoAlloc(t *testing.T) {
	p := New(1)
	out := make([]float64, 256)
	body := func(slot, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i + slot)
		}
	}
	allocs := testing.AllocsPerRun(100, func() { p.ForSlot(len(out), body) })
	if allocs != 0 {
		t.Fatalf("sequential ForSlot allocated %.1f times per call, want 0", allocs)
	}
}

// TestForSlotScratchDeterministic runs a per-slot-scratch computation at
// several parallelism levels (the PM/CATD vote-buffer pattern) and demands
// byte-identical output.
func TestForSlotScratchDeterministic(t *testing.T) {
	const n, ell = 4000, 7
	compute := func(workers int) []float64 {
		p := New(workers)
		scratch := make([][]float64, p.Workers())
		for s := range scratch {
			scratch[s] = make([]float64, ell)
		}
		out := make([]float64, n)
		p.ForSlot(n, func(slot, lo, hi int) {
			buf := scratch[slot]
			for i := lo; i < hi; i++ {
				for k := range buf {
					buf[k] = float64((i+k)%ell) * 0.125
				}
				var s float64
				for _, v := range buf {
					s += v
				}
				out[i] = s
			}
		})
		return out
	}
	want := compute(1)
	for _, workers := range []int{2, 4, 16} {
		got := compute(workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestEach(t *testing.T) {
	const n = 500
	seen := make([]int32, n)
	New(4).Each(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestNilAndZeroPoolRunInline(t *testing.T) {
	var nilPool *Pool
	var zero Pool
	for _, p := range []*Pool{nilPool, &zero} {
		if got := p.Workers(); got != 1 {
			t.Errorf("Workers() = %d, want 1", got)
		}
		sum := 0
		p.For(10, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum += i // safe: must run on the calling goroutine
			}
		})
		if sum != 45 {
			t.Errorf("inline sum = %d, want 45", sum)
		}
	}
}

func TestNewAutoWorkers(t *testing.T) {
	if got := New(0).Workers(); got < 1 {
		t.Errorf("New(0).Workers() = %d, want >= 1", got)
	}
	if got := New(-3).Workers(); got < 1 {
		t.Errorf("New(-3).Workers() = %d, want >= 1", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Errorf("New(5).Workers() = %d, want 5", got)
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in a chunk was swallowed")
		}
	}()
	New(4).For(1000, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 731 {
				panic("boom")
			}
		}
	})
}

func TestPersistentPoolMatchesTransient(t *testing.T) {
	const n = 10000
	want := make([]float64, n)
	New(4).For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = float64(i) * 1.5
		}
	})

	p := NewPersistent(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	// Several For calls reuse the same resident goroutines; every call
	// must cover every index exactly once with identical results.
	for round := 0; round < 5; round++ {
		got := make([]float64, n)
		p.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = float64(i) * 1.5
			}
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: index %d = %v, want %v", round, i, got[i], want[i])
			}
		}
	}
}

func TestPersistentPoolCloseThenFor(t *testing.T) {
	p := NewPersistent(3)
	p.Close()
	p.Close() // idempotent
	// After Close the pool falls back to transient spawning.
	var covered [100]bool
	p.For(len(covered), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i] = true
		}
	})
	for i, ok := range covered {
		if !ok {
			t.Fatalf("index %d not covered after Close", i)
		}
	}
}

func TestPersistentSingleWorkerNeverSpawns(t *testing.T) {
	p := NewPersistent(1)
	defer p.Close()
	sum := 0
	p.For(10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
}
