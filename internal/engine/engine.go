// Package engine is the concurrency runtime behind the benchmark: a
// chunked worker pool that fans loop iterations out over goroutines while
// preserving bit-identical results between sequential and parallel runs.
//
// # Determinism contract
//
// Every parallel loop in this repository obeys one rule: the loop body for
// index i writes only to output slots owned by i (task i's posterior row,
// worker w's confusion rows, answer e's message) and performs any
// floating-point accumulation internally, in a fixed order that depends
// only on i (e.g. the ascending answer-index order of
// dataset.TaskAnswers). Under that contract the chunk layout and the
// number of workers only decide *which goroutine* executes an iteration,
// never the arithmetic — so Parallelism: 1 and Parallelism: 64 produce
// byte-identical floats, and no atomics or mutexes touch the numeric
// state. Cross-cutting reductions that cannot be restructured this way
// (e.g. finding a maximum loss) stay sequential; they are all O(tasks) or
// O(workers) and far off the hot path.
//
// # Chunking
//
// Pool.For splits [0, n) into contiguous chunks of roughly
// n/(workers·chunksPerWorker) iterations and lets the worker goroutines
// claim chunks off a shared atomic cursor. Small chunk counts execute
// inline on the calling goroutine; a pool with one worker never spawns at
// all, so the sequential path pays no synchronization cost.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunksPerWorker oversubscribes chunks relative to workers so that
// uneven iteration costs (long-tail workers, dense tasks) load-balance
// instead of serializing on the slowest chunk.
const chunksPerWorker = 4

// Pool executes chunked parallel loops with a fixed worker count. The
// zero value and a nil pool both run everything inline on the caller.
// Transient pools (New) are stateless and safe for concurrent use;
// persistent pools (NewPersistent) keep resident goroutines between For
// calls and must be Closed when no more loops will run.
type Pool struct {
	workers int
	// jobs, when non-nil, feeds loop bodies to the resident goroutines of
	// a persistent pool instead of spawning one goroutine per For call.
	jobs chan func()
}

// New returns a transient pool with the given number of workers. Values
// below 1 mean "one worker per available CPU" (runtime.GOMAXPROCS). Each
// For call spawns and joins its own goroutines.
func New(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// NewPersistent returns a pool whose workers-1 helper goroutines are
// spawned once and reused by every subsequent For call (the calling
// goroutine is always worker 0). The online inference driver keeps one
// persistent pool alive across re-inference epochs so the per-epoch
// goroutine start-up cost is paid once. Results are bit-identical to a
// transient pool of the same size. Close releases the helpers; Close must
// not be called concurrently with For.
func NewPersistent(workers int) *Pool {
	p := New(workers)
	if p.workers > 1 {
		// The helpers capture the channel value rather than reading the
		// struct field, so Close can nil the field without racing them.
		jobs := make(chan func())
		p.jobs = jobs
		for i := 1; i < p.workers; i++ {
			go func() {
				for f := range jobs {
					f()
				}
			}()
		}
	}
	return p
}

// Close stops a persistent pool's resident goroutines. It is a no-op for
// transient, nil, or already-closed pools. After Close the pool falls
// back to transient spawning, so a stray For still completes correctly.
func (p *Pool) Close() {
	if p == nil || p.jobs == nil {
		return
	}
	close(p.jobs)
	p.jobs = nil
}

// Workers reports the pool's worker count (1 for a nil or zero pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// For runs fn over every sub-range of [0, n), partitioned into chunks,
// using up to Workers goroutines. fn must follow the package determinism
// contract: writes restricted to slots owned by indices in [lo, hi), no
// shared mutable state. For blocks until every chunk completes; a panic
// in any chunk is re-raised on the calling goroutine.
func (p *Pool) For(n int, fn func(lo, hi int)) {
	p.ForSlot(n, func(_, lo, hi int) { fn(lo, hi) })
}

// ForSlot is For with scratch-buffer support: fn additionally receives a
// stable slot index in [0, Workers()) identifying the goroutine executing
// the chunk. Two chunks running concurrently always see distinct slots, so
// a caller can preallocate Workers() scratch buffers once and index them
// by slot inside fn — the allocation-free alternative to a fresh scratch
// per chunk. Slot assignment decides only which goroutine (and scratch
// buffer) executes a chunk, never the arithmetic, so the package
// determinism contract is unchanged. The calling goroutine is always slot
// 0; the sequential path (one worker or one chunk) runs fn(0, 0, n)
// inline with no allocation.
func (p *Pool) ForSlot(n int, fn func(slot, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := p.Workers()
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	chunk := n / (workers * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	numChunks := (n + chunk - 1) / chunk
	if numChunks == 1 {
		fn(0, 0, n)
		return
	}
	if workers > numChunks {
		workers = numChunks
	}

	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		panicV atomic.Value
	)
	body := func(slot int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicV.CompareAndSwap(nil, &panicked{r})
			}
		}()
		for {
			c := int(cursor.Add(1)) - 1
			if c >= numChunks {
				return
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(slot, lo, hi)
		}
	}
	wg.Add(workers)
	for i := 1; i < workers; i++ {
		slot := i
		if p.jobs != nil {
			p.jobs <- func() { body(slot) }
		} else {
			go body(slot)
		}
	}
	body(0) // the caller is worker 0
	wg.Wait()
	if pv := panicV.Load(); pv != nil {
		panic(pv.(*panicked).v)
	}
}

// Each runs fn for every index in [0, n); it is For with a single-index
// body, for loops whose per-iteration cost dwarfs the call overhead
// (experiment cells, whole-method inference runs).
func (p *Pool) Each(n int, fn func(i int)) {
	p.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// panicked wraps a recovered panic value for atomic.Value (which needs a
// consistent concrete type).
type panicked struct{ v any }
