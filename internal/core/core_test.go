package core

import (
	"errors"
	"math"
	"testing"

	"truthinference/internal/dataset"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.MaxIter() != DefaultMaxIterations {
		t.Errorf("MaxIter = %d", o.MaxIter())
	}
	if o.Tol() != DefaultTolerance {
		t.Errorf("Tol = %v", o.Tol())
	}
	o = Options{MaxIterations: 7, Tolerance: 0.5}
	if o.MaxIter() != 7 || o.Tol() != 0.5 {
		t.Errorf("overrides not honored: %d %v", o.MaxIter(), o.Tol())
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff([]float64{1, 2}, []float64{1, 5}); got != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", got)
	}
	if got := MaxAbsDiff([]float64{1}, []float64{1, 2}); !math.IsInf(got, 1) {
		t.Errorf("length mismatch should be +Inf, got %v", got)
	}
	if got := MaxAbsDiff(nil, nil); got != 0 {
		t.Errorf("empty diff = %v, want 0", got)
	}
}

func TestArgmaxTieBreak(t *testing.T) {
	pickCalled := false
	pick := func(n int) int { pickCalled = true; return n - 1 }
	if got := ArgmaxTieBreak([]float64{1, 3, 2}, pick); got != 1 {
		t.Errorf("argmax = %d, want 1", got)
	}
	if pickCalled {
		t.Error("pick invoked without a tie")
	}
	if got := ArgmaxTieBreak([]float64{3, 1, 3}, pick); got != 2 {
		t.Errorf("tie argmax with last-pick = %d, want 2", got)
	}
	if !pickCalled {
		t.Error("pick not invoked on tie")
	}
	if got := ArgmaxTieBreak(nil, pick); got != -1 {
		t.Errorf("empty argmax = %d, want -1", got)
	}
}

func TestPosteriorLabelsHonorsGolden(t *testing.T) {
	post := [][]float64{{0.9, 0.1}, {0.2, 0.8}}
	golden := map[int]float64{0: 1}
	labels := PosteriorLabels(post, golden, func(int) int { return 0 })
	if labels[0] != 1 {
		t.Errorf("golden label overridden: %v", labels[0])
	}
	if labels[1] != 1 {
		t.Errorf("argmax label = %v, want 1", labels[1])
	}
}

func TestUniformPosterior(t *testing.T) {
	p := UniformPosterior(3, 4)
	if len(p) != 3 || len(p[0]) != 4 {
		t.Fatalf("shape %dx%d", len(p), len(p[0]))
	}
	for _, row := range p {
		for _, v := range row {
			if v != 0.25 {
				t.Fatalf("entry %v, want 0.25", v)
			}
		}
	}
	// Rows must not alias each other.
	p[0][0] = 9
	if p[1][0] == 9 {
		t.Error("posterior rows alias")
	}
}

func TestPinGolden(t *testing.T) {
	post := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	PinGolden(post, map[int]float64{1: 0, 7: 1})
	if post[1][0] != 1 || post[1][1] != 0 {
		t.Errorf("pinned row = %v", post[1])
	}
	if post[0][0] != 0.5 {
		t.Error("unpinned row modified")
	}
}

// fakeMethod exercises CheckSupport.
type fakeMethod struct{ caps Capabilities }

func (fakeMethod) Name() string                                     { return "fake" }
func (m fakeMethod) Capabilities() Capabilities                     { return m.caps }
func (fakeMethod) Infer(*dataset.Dataset, Options) (*Result, error) { return nil, nil }

func TestCheckSupport(t *testing.T) {
	dec, err := dataset.New("d", dataset.Decision, 2, 2, 2,
		[]dataset.Answer{{Task: 0, Worker: 0, Value: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := fakeMethod{caps: Capabilities{TaskTypes: []dataset.TaskType{dataset.Numeric}}}
	if err := CheckSupport(m, dec, Options{}); !errors.Is(err, ErrTaskType) {
		t.Errorf("want ErrTaskType, got %v", err)
	}
	m = fakeMethod{caps: Capabilities{TaskTypes: []dataset.TaskType{dataset.Decision}}}
	if err := CheckSupport(m, dec, Options{Golden: map[int]float64{0: 1}}); !errors.Is(err, ErrGoldenUnsupported) {
		t.Errorf("want ErrGoldenUnsupported, got %v", err)
	}
	if err := CheckSupport(m, dec, Options{QualificationAccuracy: []float64{1, 1}}); !errors.Is(err, ErrQualificationUnsupported) {
		t.Errorf("want ErrQualificationUnsupported, got %v", err)
	}
	m.caps.Qualification = true
	if err := CheckSupport(m, dec, Options{QualificationAccuracy: []float64{1}}); err == nil {
		t.Error("want length-mismatch error")
	}
	if err := CheckSupport(m, dec, Options{QualificationAccuracy: []float64{1, 1}}); err != nil {
		t.Errorf("valid qualification rejected: %v", err)
	}
}

func TestWantQualification(t *testing.T) {
	if (Options{}).WantQualification() {
		t.Error("empty options should not want qualification")
	}
	if !(Options{QualificationAccuracy: []float64{1}}).WantQualification() {
		t.Error("accuracy vector should trigger qualification")
	}
	if !(Options{QualificationError: []float64{1}}).WantQualification() {
		t.Error("error vector should trigger qualification")
	}
}
