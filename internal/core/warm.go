// Warm-start state for online (streaming) inference: a finished run's
// posteriors and worker-quality estimates, packaged so the next epoch's
// run can resume from them instead of cold initialization. The online
// subsystem (internal/stream) carries a WarmState from one re-inference
// epoch to the next as answers keep arriving.
package core

// WarmState is resumable inference state extracted from a previous run's
// Result. Every field is optional; methods read only the parts that map
// onto their own parameterization (ZC its worker probabilities, D&S its
// confusion matrices, LFC_N its variances, …) and fall back to cold
// initialization for anything missing — including tasks and workers that
// joined the dataset after the state was captured, whose indices lie
// beyond the stored slices.
//
// All accessors are nil-receiver safe, so method implementations can
// consult opts.WarmStart unconditionally.
type WarmState struct {
	// Posterior holds tasks × choices posterior probabilities from the
	// previous epoch (categorical methods).
	Posterior [][]float64
	// WorkerQuality holds the previous per-worker scalar qualities, on
	// the owning method's scale.
	WorkerQuality []float64
	// WorkerVariance holds the previous per-worker answer variances of
	// Gaussian numeric methods (LFC_N), so a warm-started epoch resumes
	// the exact EM state — truth estimates *and* precisions — and
	// converges to the same basin as a cold run on the full data.
	WorkerVariance []float64
	// Confusion holds the previous per-worker ℓ×ℓ confusion matrices
	// (confusion-matrix methods).
	Confusion [][][]float64
	// Truth holds the previous inferred truths (numeric methods resume
	// their truth estimates directly).
	Truth []float64
}

// Warm packages the result into a deep-copied WarmState suitable for
// seeding the next epoch's run on a grown dataset.
func (r *Result) Warm() *WarmState {
	if r == nil {
		return nil
	}
	w := &WarmState{
		WorkerQuality:  append([]float64(nil), r.WorkerQuality...),
		WorkerVariance: append([]float64(nil), r.WorkerVariance...),
		Truth:          append([]float64(nil), r.Truth...),
	}
	if r.Posterior != nil {
		w.Posterior = make([][]float64, len(r.Posterior))
		for i, row := range r.Posterior {
			w.Posterior[i] = append([]float64(nil), row...)
		}
	}
	if r.Confusion != nil {
		w.Confusion = make([][][]float64, len(r.Confusion))
		for i, mat := range r.Confusion {
			cp := make([][]float64, len(mat))
			for j, row := range mat {
				cp[j] = append([]float64(nil), row...)
			}
			w.Confusion[i] = cp
		}
	}
	return w
}

// SeedPosterior copies warm posterior rows into post for every task the
// state covers, skipping rows whose choice count differs (the dataset's ℓ
// changed between epochs). Rows beyond the warm state keep their cold
// initialization.
func (w *WarmState) SeedPosterior(post [][]float64) {
	if w == nil {
		return
	}
	n := len(w.Posterior)
	if n > len(post) {
		n = len(post)
	}
	for i := 0; i < n; i++ {
		if len(w.Posterior[i]) == len(post[i]) {
			copy(post[i], w.Posterior[i])
		}
	}
}

// QualityOr returns the warm quality of the given worker, or def when the
// state is nil or does not cover the worker.
func (w *WarmState) QualityOr(worker int, def float64) float64 {
	if w == nil || worker < 0 || worker >= len(w.WorkerQuality) {
		return def
	}
	return w.WorkerQuality[worker]
}

// VarianceOr returns the warm answer variance of the given worker, or def
// when the state is nil or does not cover the worker.
func (w *WarmState) VarianceOr(worker int, def float64) float64 {
	if w == nil || worker < 0 || worker >= len(w.WorkerVariance) {
		return def
	}
	return w.WorkerVariance[worker]
}

// TruthOr returns the warm truth of the given task, or def when the state
// is nil or does not cover the task.
func (w *WarmState) TruthOr(task int, def float64) float64 {
	if w == nil || task < 0 || task >= len(w.Truth) {
		return def
	}
	return w.Truth[task]
}

// PosteriorRow returns the warm posterior row of the given task when the
// state covers it with exactly ell choices, and nil otherwise.
func (w *WarmState) PosteriorRow(task, ell int) []float64 {
	if w == nil || task < 0 || task >= len(w.Posterior) || len(w.Posterior[task]) != ell {
		return nil
	}
	return w.Posterior[task]
}

// ConfusionFor returns the warm ℓ×ℓ confusion matrix of the given worker
// when the state covers it with matching dimensions, and nil otherwise.
func (w *WarmState) ConfusionFor(worker, ell int) [][]float64 {
	if w == nil || worker < 0 || worker >= len(w.Confusion) {
		return nil
	}
	mat := w.Confusion[worker]
	if len(mat) != ell {
		return nil
	}
	for _, row := range mat {
		if len(row) != ell {
			return nil
		}
	}
	return mat
}
