// Package core defines the shared framework behind all 17 truth-inference
// methods: the Method interface, inference Options (seeds, convergence
// control, golden tasks for the hidden test, qualification-test
// initialization), the Result type, method capability metadata mirroring
// Table 4 of the paper, and convergence helpers for the iterative
// two-step loop of Algorithm 1.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"truthinference/internal/dataset"
	"truthinference/internal/engine"
	"truthinference/internal/randx"
)

// Defaults for iterative methods; individual methods may override via
// Options.
const (
	DefaultMaxIterations = 100
	DefaultTolerance     = 1e-4
)

// Options parameterizes a single inference run.
type Options struct {
	// Seed drives every random choice (initialization, Gibbs sampling,
	// tie-breaking). Two runs with equal options are byte-identical.
	Seed int64

	// MaxIterations bounds the Algorithm-1 loop. Zero means
	// DefaultMaxIterations.
	MaxIterations int

	// Tolerance is the convergence threshold on the parameter change
	// between iterations (the "10^-3-style" check the paper describes).
	// Zero means DefaultTolerance.
	Tolerance float64

	// Golden holds hidden-test golden tasks (§6.3.3): task id → known
	// truth. Methods that support golden tasks pin these truths during
	// the truth step and use them in the quality step. Methods that do
	// not support golden tasks return ErrGoldenUnsupported when Golden
	// is non-empty.
	Golden map[int]float64

	// QualificationAccuracy optionally initializes each worker's quality
	// from a qualification test (§6.3.2) for categorical tasks: entry w
	// is worker w's fraction of correctly answered golden tasks, or NaN
	// to keep the method's default initialization for that worker.
	QualificationAccuracy []float64

	// QualificationError optionally initializes numeric methods: entry w
	// is worker w's mean squared error on the qualification test, or NaN
	// to keep the default.
	QualificationError []float64

	// Parallelism is the number of goroutines the iterative methods fan
	// their EM hot loops out over (E-steps over tasks, M-steps over
	// workers, message passing over answers). 0 or 1 runs sequentially;
	// AutoParallelism uses one goroutine per available CPU. Results are
	// bit-identical at every parallelism level — see internal/engine for
	// the determinism contract.
	Parallelism int

	// Pool optionally supplies a pre-built worker pool for the EM hot
	// loops instead of a per-run transient one. The online inference
	// driver (internal/stream) sets it so every re-inference epoch reuses
	// one persistent pool's resident goroutines. When nil, methods build
	// a transient pool from Parallelism. The pool only decides which
	// goroutine executes an iteration, never the arithmetic, so results
	// stay bit-identical either way.
	Pool *engine.Pool

	// WarmStart optionally seeds the iterative methods from a previous
	// run's state (typically Result.Warm of the preceding epoch on a
	// smaller prefix of the same growing dataset) instead of cold
	// initialization. Methods without resumable parameters ignore it;
	// tasks and workers beyond the warm state get cold initialization.
	// Warm starts change only the EM starting point — on a converged
	// run the fixed point, and hence the inferred labels, match a cold
	// run within convergence tolerance.
	WarmStart *WarmState
}

// AutoParallelism requests one worker goroutine per available CPU
// (runtime.GOMAXPROCS) when assigned to Options.Parallelism.
const AutoParallelism = -1

// ErrGoldenUnsupported is returned by methods that cannot incorporate
// hidden-test golden tasks (§6.3.3 found only 9 of 17 can).
var ErrGoldenUnsupported = errors.New("method does not support golden tasks")

// ErrQualificationUnsupported is returned by methods that cannot be
// initialized from a qualification test (§6.3.2 found only 8 of 17 can).
var ErrQualificationUnsupported = errors.New("method does not support qualification-test initialization")

// ErrTaskType is returned when a method is run on a task type outside its
// Table-4 row.
var ErrTaskType = errors.New("method does not support this task type")

// MaxIter returns the effective iteration bound.
func (o Options) MaxIter() int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return DefaultMaxIterations
}

// Tol returns the effective convergence tolerance.
func (o Options) Tol() float64 {
	if o.Tolerance > 0 {
		return o.Tolerance
	}
	return DefaultTolerance
}

// Workers returns the effective worker-goroutine count: 1 when
// Parallelism is unset, runtime.GOMAXPROCS when it is negative
// (AutoParallelism), and Parallelism itself otherwise.
func (o Options) Workers() int {
	if o.Parallelism < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallelism == 0 {
		return 1
	}
	return o.Parallelism
}

// EnginePool returns the pool the method's hot loops should fan out on:
// the shared Pool when one was supplied, otherwise a transient pool with
// Workers goroutines.
func (o Options) EnginePool() *engine.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return engine.New(o.Workers())
}

// WantQualification reports whether any qualification initialization was
// provided.
func (o Options) WantQualification() bool {
	return len(o.QualificationAccuracy) > 0 || len(o.QualificationError) > 0
}

// Result is the output of one inference run: the inferred truth of every
// task, per-worker quality summaries, optional task posteriors and
// confusion matrices, and the loop accounting.
type Result struct {
	// Truth[i] is the inferred truth of task i: a label index for
	// categorical tasks or a value for numeric tasks. Tasks with no
	// answers get the method's prior guess (documented per method).
	Truth []float64

	// Posterior, when non-nil, holds tasks × choices posterior
	// probabilities for categorical methods.
	Posterior [][]float64

	// WorkerQuality[w] is a scalar quality summary for worker w; its
	// scale is method-specific (probability for ZC, weight for PM, …).
	WorkerQuality []float64

	// WorkerVariance, when non-nil, holds the learned per-worker answer
	// variances σ²_w of Gaussian numeric methods (LFC_N). It is the raw
	// model parameter behind the precision-style WorkerQuality summary,
	// carried separately so warm starts can resume the exact EM state
	// instead of re-learning variances from scratch (which is
	// basin-sensitive on low-redundancy prefixes of a stream).
	WorkerVariance []float64

	// Confusion, when non-nil, holds per-worker ℓ×ℓ confusion matrices
	// for confusion-matrix methods (D&S, LFC, BCC, CBCC, VI-*).
	Confusion [][][]float64

	// Community, when non-nil, holds the per-worker community assignment
	// of community-based methods (CBCC): the modal membership over the
	// post-burn-in Gibbs samples.
	Community []int

	// Iterations is the number of two-step iterations executed.
	Iterations int
	// Converged reports whether the parameter change fell below the
	// tolerance before MaxIterations.
	Converged bool
}

// Technique mirrors the "Techniques" column of Table 4.
type Technique string

const (
	Direct       Technique = "direct computation"
	Optimization Technique = "optimization"
	PGM          Technique = "probabilistic graphical model"
)

// Capabilities mirrors a method's Table-4 row plus the golden-task and
// qualification-test support discovered in §6.3.2–6.3.3.
type Capabilities struct {
	TaskTypes     []dataset.TaskType
	TaskModel     string // "none", "task difficulty", "latent topics"
	WorkerModel   string // "none", "worker probability", "confusion matrix", ...
	Technique     Technique
	Qualification bool // accepts Options.Qualification*
	Golden        bool // accepts Options.Golden
}

// SupportsType reports whether the method handles datasets of type t.
func (c Capabilities) SupportsType(t dataset.TaskType) bool {
	for _, tt := range c.TaskTypes {
		if tt == t {
			return true
		}
	}
	return false
}

// Method is one truth-inference algorithm under the Algorithm-1 framework.
type Method interface {
	// Name returns the paper's name for the method ("MV", "D&S", ...).
	Name() string
	// Capabilities describes supported task types, models and extensions.
	Capabilities() Capabilities
	// Infer runs the method on d. Implementations must not mutate d.
	Infer(d *dataset.Dataset, opts Options) (*Result, error)
}

// CheckSupport validates d and opts against m's capabilities, returning a
// descriptive error for unsupported combinations. Method implementations
// call this first in Infer.
func CheckSupport(m Method, d *dataset.Dataset, opts Options) error {
	caps := m.Capabilities()
	if !caps.SupportsType(d.Type) {
		return fmt.Errorf("%s on %s dataset %q: %w", m.Name(), d.Type, d.Name, ErrTaskType)
	}
	if len(opts.Golden) > 0 && !caps.Golden {
		return fmt.Errorf("%s: %w", m.Name(), ErrGoldenUnsupported)
	}
	if opts.WantQualification() && !caps.Qualification {
		return fmt.Errorf("%s: %w", m.Name(), ErrQualificationUnsupported)
	}
	if opts.QualificationAccuracy != nil && len(opts.QualificationAccuracy) != d.NumWorkers {
		return fmt.Errorf("%s: qualification accuracy vector has %d entries for %d workers", m.Name(), len(opts.QualificationAccuracy), d.NumWorkers)
	}
	if opts.QualificationError != nil && len(opts.QualificationError) != d.NumWorkers {
		return fmt.Errorf("%s: qualification error vector has %d entries for %d workers", m.Name(), len(opts.QualificationError), d.NumWorkers)
	}
	return nil
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// a and b; it is the convergence measure used by the iterative methods.
// Slices of unequal length return +Inf.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// ArgmaxTieBreak returns the index of the maximum of w; exact ties are
// broken by pick, which receives the number of tied candidates and returns
// the chosen rank (callers pass rng.Intn for random tie-breaks, or a
// deterministic function in tests). A single maximum never invokes pick.
func ArgmaxTieBreak(w []float64, pick func(n int) int) int {
	if len(w) == 0 {
		return -1
	}
	best := w[0]
	ties := []int{0}
	for i, x := range w[1:] {
		switch {
		case x > best:
			best = x
			ties = ties[:1]
			ties[0] = i + 1
		case x == best:
			ties = append(ties, i+1)
		}
	}
	if len(ties) == 1 {
		return ties[0]
	}
	return ties[pick(len(ties))]
}

// ArgmaxHashTie returns the index of the maximum of w with exact ties
// broken by randx.HashPick3(seed, iter, entity) — the allocation-free
// equivalent of ArgmaxTieBreak with a HashPick closure, used by the
// zero-allocation CSR truth sweeps of PM and CATD. For every input it
// returns exactly what
//
//	ArgmaxTieBreak(w, func(n int) int { return randx.HashPick(n, seed, iter, entity) })
//
// returns, without materializing the tie list or the closure: one pass
// finds the maximum and the tie count, and a second pass (ties only)
// locates the picked rank.
func ArgmaxHashTie(w []float64, seed, iter, entity int64) int {
	if len(w) == 0 {
		return -1
	}
	best := w[0]
	first, ties := 0, 1
	for i, x := range w[1:] {
		switch {
		case x > best:
			best = x
			first = i + 1
			ties = 1
		case x == best:
			ties++
		}
	}
	if ties == 1 {
		return first
	}
	rank := randx.HashPick3(ties, seed, iter, entity)
	for i := first; ; i++ {
		if w[i] == best {
			if rank == 0 {
				return i
			}
			rank--
		}
	}
}

// PosteriorLabels converts a tasks × choices posterior into hard labels
// with random tie-breaking via pick, honoring golden truths if given.
func PosteriorLabels(post [][]float64, golden map[int]float64, pick func(n int) int) []float64 {
	out := make([]float64, len(post))
	for i, p := range post {
		if gv, ok := golden[i]; ok {
			out[i] = gv
			continue
		}
		out[i] = float64(ArgmaxTieBreak(p, pick))
	}
	return out
}

// UniformPosterior allocates a tasks × choices matrix filled with 1/ℓ.
func UniformPosterior(numTasks, numChoices int) [][]float64 {
	flat := make([]float64, numTasks*numChoices)
	u := 1 / float64(numChoices)
	for i := range flat {
		flat[i] = u
	}
	out := make([][]float64, numTasks)
	for i := range out {
		out[i] = flat[i*numChoices : (i+1)*numChoices]
	}
	return out
}

// PinGolden overwrites posterior rows of golden tasks with the one-hot
// distribution of their known truth. It is the standard way the iterative
// methods incorporate hidden-test golden tasks in the truth step.
func PinGolden(post [][]float64, golden map[int]float64) {
	for t, v := range golden {
		if t < 0 || t >= len(post) {
			continue
		}
		row := post[t]
		for k := range row {
			row[k] = 0
		}
		l := int(v)
		if l >= 0 && l < len(row) {
			row[l] = 1
		}
	}
}
