package query_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"truthinference/internal/api"
	"truthinference/internal/dataset"
	"truthinference/internal/query"
	"truthinference/internal/stream"
)

func queryServer(t *testing.T, src query.Source, led query.Ledger) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(query.NewHandler(src, led, nil))
	t.Cleanup(srv.Close)
	return srv
}

func postQuery(t *testing.T, srv *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestQueryEndpointServesViewsAndPlans(t *testing.T) {
	srv := queryServer(t, golden(), nil)

	resp, body := postQuery(t, srv, `{"view":"disagreement"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("view: status = %d: %s", resp.StatusCode, body)
	}
	var out api.QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.StoreVersion != 7 || out.ResultVersion != 7 {
		t.Fatalf("versions = (%d, %d), want (7, 7)", out.StoreVersion, out.ResultVersion)
	}
	if len(out.Rows) != 1 || out.Truncated {
		t.Fatalf("disagreement response = %+v, want one row", out)
	}

	resp, body = postQuery(t, srv,
		`{"plan":{"op":"aggregate","by":["worker"],"aggs":[{"op":"count","as":"n"}],"input":{"op":"scan","relation":"answers"}}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status = %d: %s", resp.StatusCode, body)
	}
	out = api.QueryResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 || out.Cols[0] != "worker" || out.Cols[1] != "n" {
		t.Fatalf("aggregate response = %+v", out)
	}

	// The row limit truncates and says so.
	resp, body = postQuery(t, srv, `{"plan":{"op":"scan","relation":"answers"},"limit":4}`)
	out = api.QueryResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("%v: %s", err, body)
	}
	if resp.StatusCode != http.StatusOK || len(out.Rows) != 4 || !out.Truncated {
		t.Fatalf("limited scan = %d %+v, want 4 truncated rows", resp.StatusCode, out)
	}
}

func TestQueryEndpointStatusMapping(t *testing.T) {
	srv := queryServer(t, golden(), nil)
	cases := []struct {
		name, body string
		want       int
		code       api.ErrorCode
	}{
		{"malformed body", `{not json`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown field", `{"vieww":"x"}`, http.StatusBadRequest, api.CodeBadRequest},
		{"neither view nor plan", `{}`, http.StatusBadRequest, api.CodeBadRequest},
		{"both view and plan", `{"view":"disagreement","plan":{"op":"scan","relation":"answers"}}`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown view", `{"view":"profits"}`, http.StatusNotFound, api.CodeNotFound},
		{"malformed plan", `{"plan":{"op":"scan","surprise":1}}`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown relation", `{"plan":{"op":"scan","relation":"secrets"}}`, http.StatusUnprocessableEntity, api.CodeUnprocessable},
		{"hostile plan", `{"plan":{"op":"project","cols":["nope"],"input":{"op":"scan","relation":"answers"}}}`, http.StatusUnprocessableEntity, api.CodeUnprocessable},
		{"no ledger", `{"view":"spend-vs-budget"}`, http.StatusUnprocessableEntity, api.CodeUnprocessable},
		{"limit out of range", `{"view":"disagreement","limit":1000000}`, http.StatusUnprocessableEntity, api.CodeUnprocessable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postQuery(t, srv, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			var env api.ErrorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("not the error envelope: %v: %s", err, body)
			}
			if env.Error.Code != tc.code || env.Error.Message == "" {
				t.Fatalf("envelope = %+v, want code %q", env, tc.code)
			}
		})
	}
}

func TestQueryEndpointOversizedBody(t *testing.T) {
	srv := queryServer(t, golden(), nil)
	big := `{"view":"` + strings.Repeat("x", api.MaxAdminBody) + `"}`
	resp, body := postQuery(t, srv, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %.120s", resp.StatusCode, body)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != api.CodeTooLarge {
		t.Fatalf("envelope = %+v (%v)", env, err)
	}
}

func TestQueryEndpointUnavailableIs409(t *testing.T) {
	src := golden()
	src.postErr = stream.ErrNotInferred
	src.wqErr = stream.ErrNotInferred
	srv := queryServer(t, src, nil)
	for _, body := range []string{
		`{"view":"disagreement"}`,
		`{"view":"worker-quality-drop"}`,
		`{"plan":{"op":"scan","relation":"posterior"}}`,
	} {
		resp, data := postQuery(t, srv, body)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s: status = %d, want 409: %s", body, resp.StatusCode, data)
		}
		var env api.ErrorEnvelope
		if err := json.Unmarshal(data, &env); err != nil || env.Error.Code != api.CodeConflict {
			t.Fatalf("%s: envelope = %+v (%v)", body, env, err)
		}
	}
}

// TestQueryEndpointOverRealService drives the endpoint against a real
// MV service: the canned disagreement view must be empty (MV's
// posterior argmax is MV), and a plan joining answers with posteriors
// streams at the service's pinned version.
func TestQueryEndpointOverRealService(t *testing.T) {
	store, err := stream.NewStoreN("query-http", dataset.Decision, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc := newMVService(t, store)
	if _, err := svc.Ingest(stream.Batch{Answers: []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 1},
		{Task: 1, Worker: 0, Value: 0}, {Task: 1, Worker: 2, Value: 1},
		{Task: 2, Worker: 2, Value: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	srv := queryServer(t, svc, nil)

	resp, body := postQuery(t, srv, `{"view":"disagreement"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disagreement over MV: %d: %s", resp.StatusCode, body)
	}
	var out api.QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	// Task 1 is a 0-vs-1 tie: the view's mv relation breaks it low and
	// MV's vote-share posterior argmax breaks it low too, so even the
	// tie agrees — no disagreement rows on an MV project.
	if len(out.Rows) != 0 {
		t.Fatalf("MV disagreement rows = %v, want none", out.Rows)
	}

	resp, body = postQuery(t, srv,
		`{"plan":{"op":"join","inputs":[{"op":"scan","relation":"answers"},{"op":"scan","relation":"posterior_top"}]}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join plan: %d: %s", resp.StatusCode, body)
	}
	out = api.QueryResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 5 {
		t.Fatalf("answers⋈posterior_top rows = %d, want 5", len(out.Rows))
	}
	if out.StoreVersion != svc.StoreVersion() {
		t.Fatalf("response pinned at %d, store at %d", out.StoreVersion, svc.StoreVersion())
	}
}
