package query_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"truthinference/internal/assign"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/query"
	"truthinference/internal/stream"
)

// newMVService wraps a real store in an MV serving service — the
// structural query.Source the production wiring hands the catalog.
func newMVService(t *testing.T, store *stream.Store) *stream.Service {
	t.Helper()
	svc, err := stream.NewService(store, stream.Config{Method: direct.NewMV()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// fakeSource is a deterministic query.Source with a single-shard answer
// log and hand-set model surfaces — the golden fixture the operator and
// view tests assert exact rows against.
type fakeSource struct {
	answers   []dataset.Answer
	pinAt     int // Pin reports this count (defaults to len(answers))
	choices   int
	post      [][]float64
	postErr   error
	cur, prev []float64
	wqErr     error
	version   uint64
}

func (f *fakeSource) Pin() (uint64, int) {
	n := f.pinAt
	if n == 0 {
		n = len(f.answers)
	}
	return f.version, n
}
func (f *fakeSource) Shards() int { return 1 }
func (f *fakeSource) ScanShard(si, pos, beforeIdx int, dst []dataset.Answer) (int, int, bool) {
	if si != 0 {
		return 0, pos, true
	}
	n := 0
	for pos < len(f.answers) && n < len(dst) {
		if pos >= beforeIdx { // global idx == log position in one shard
			return n, pos, true
		}
		dst[n] = f.answers[pos]
		n++
		pos++
	}
	return n, pos, pos >= len(f.answers)
}
func (f *fakeSource) NumChoices() int { return f.choices }
func (f *fakeSource) Posteriors() ([][]float64, uint64, error) {
	if f.postErr != nil {
		return nil, 0, f.postErr
	}
	return f.post, f.version, nil
}
func (f *fakeSource) Entropies() ([]float64, uint64, error) {
	if f.postErr != nil {
		return nil, 0, f.postErr
	}
	ent := make([]float64, len(f.post))
	for i, row := range f.post {
		for _, p := range row {
			if p > 0 {
				ent[i] -= p * math.Log(p)
			}
		}
	}
	return ent, f.version, nil
}
func (f *fakeSource) WorkerQualities() (cur, prev []float64, version uint64, err error) {
	if f.wqErr != nil {
		return nil, nil, 0, f.wqErr
	}
	return f.cur, f.prev, f.version, nil
}

// fakeLedger is a fixed query.Ledger.
type fakeLedger struct {
	leases   []assign.Lease
	stats    assign.Stats
	suspects []assign.Suspect
}

func (f *fakeLedger) Leases() []assign.Lease     { return f.leases }
func (f *fakeLedger) Stats() assign.Stats        { return f.stats }
func (f *fakeLedger) Suspects() []assign.Suspect { return f.suspects }

// golden builds the shared fixture: 3 tasks × 3 workers of binary
// answers where MV and the posterior argmax disagree on task 2 only.
//
//	task 0: answers 1,1,0 → MV 1 (2/3); posterior favors 1 — agree
//	task 1: answers 0,0,0 → MV 0 (3/3); posterior favors 0 — agree
//	task 2: answers 1,1,0 → MV 1 (2/3); posterior favors 0 — DISAGREE
//	          (the model decided workers 0 and 1 are unreliable)
func golden() *fakeSource {
	return &fakeSource{
		answers: []dataset.Answer{
			{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 1}, {Task: 0, Worker: 2, Value: 0},
			{Task: 1, Worker: 0, Value: 0}, {Task: 1, Worker: 1, Value: 0}, {Task: 1, Worker: 2, Value: 0},
			{Task: 2, Worker: 0, Value: 1}, {Task: 2, Worker: 1, Value: 1}, {Task: 2, Worker: 2, Value: 0},
		},
		choices: 2,
		post:    [][]float64{{0.2, 0.8}, {0.9, 0.1}, {0.7, 0.3}},
		cur:     []float64{0.55, 0.60, 0.95},
		prev:    []float64{0.80, 0.55, 0.95},
		version: 7,
	}
}

func collectAll(t *testing.T, rel query.Relation) []query.Row {
	t.Helper()
	rows, truncated := query.Collect(rel, -1)
	if truncated {
		t.Fatal("unbounded Collect reported truncation")
	}
	return rows
}

func compileJSON(t *testing.T, c *query.Catalog, plan string) (query.Relation, error) {
	t.Helper()
	var node query.Node
	if err := json.Unmarshal([]byte(plan), &node); err != nil {
		t.Fatalf("bad test plan %s: %v", plan, err)
	}
	return query.Compile(c, &node)
}

func mustCompile(t *testing.T, c *query.Catalog, plan string) query.Relation {
	t.Helper()
	rel, err := compileJSON(t, c, plan)
	if err != nil {
		t.Fatalf("compile %s: %v", plan, err)
	}
	return rel
}

func TestScanSelectProjectLimit(t *testing.T) {
	c := query.NewCatalog(golden(), nil)
	rel := mustCompile(t, c, `{
		"op":"limit","n":2,"input":{
			"op":"project","cols":["task","worker"],"input":{
				"op":"select","where":{"op":"eq","col":"value","value":1},
				"input":{"op":"scan","relation":"answers"}}}}`)
	if got, want := fmt.Sprint(rel.Cols), "[task worker]"; got != want {
		t.Fatalf("cols = %v, want %v", got, want)
	}
	rows := collectAll(t, rel)
	want := []query.Row{{0, 0}, {0, 1}}
	if fmt.Sprint(rows) != fmt.Sprint(want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
}

func TestGroupAggregate(t *testing.T) {
	c := query.NewCatalog(golden(), nil)
	// Answers per worker plus their mean value.
	rel := mustCompile(t, c, `{
		"op":"aggregate","by":["worker"],
		"aggs":[{"op":"count","as":"n"},{"op":"avg","col":"value","as":"mean"}],
		"input":{"op":"scan","relation":"answers"}}`)
	rows := collectAll(t, rel)
	want := []query.Row{{0, 3, 2.0 / 3}, {1, 3, 2.0 / 3}, {2, 3, 0}}
	if fmt.Sprint(rows) != fmt.Sprint(want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
	// Global aggregate over zero rows still yields exactly one row.
	c2 := query.NewCatalog(&fakeSource{choices: 2}, nil)
	rel2 := mustCompile(t, c2, `{
		"op":"aggregate","aggs":[{"op":"count","as":"n"},{"op":"min","col":"value","as":"lo"}],
		"input":{"op":"scan","relation":"answers"}}`)
	rows2 := collectAll(t, rel2)
	if fmt.Sprint(rows2) != fmt.Sprint([]query.Row{{0, -1}}) {
		t.Fatalf("empty-input aggregate = %v, want [[0 -1]]", rows2)
	}
}

func TestJoinAnswersWithWorkersAndMV(t *testing.T) {
	c := query.NewCatalog(golden(), nil)
	// A three-way join exercising the greedy orderer: workers (rank 2)
	// seeds, mv folds in via... no shared column with workers — answers
	// must bridge. The orderer joins workers⋈answers (worker), then
	// ⋈mv (task).
	rel := mustCompile(t, c, `{
		"op":"join","inputs":[
			{"op":"scan","relation":"answers"},
			{"op":"scan","relation":"mv"},
			{"op":"scan","relation":"workers"}]}`)
	rows := collectAll(t, rel)
	if len(rows) != 9 {
		t.Fatalf("join produced %d rows, want 9 (one per answer)", len(rows))
	}
	for _, col := range []string{"task", "worker", "value", "mv_label", "mv_share", "quality", "drop"} {
		found := false
		for _, c := range rel.Cols {
			if c == col {
				found = true
			}
		}
		if !found {
			t.Fatalf("join schema %v is missing %q", rel.Cols, col)
		}
	}
}

func TestDisagreementViewGolden(t *testing.T) {
	c := query.NewCatalog(golden(), nil)
	rel, err := query.View(c, query.ViewDisagreement)
	if err != nil {
		t.Fatal(err)
	}
	rows := collectAll(t, rel)
	if len(rows) != 1 {
		t.Fatalf("disagreement rows = %v, want exactly task 2", rows)
	}
	get := func(col string) float64 {
		for i, c := range rel.Cols {
			if c == col {
				return rows[0][i]
			}
		}
		t.Fatalf("column %q missing from %v", col, rel.Cols)
		return 0
	}
	if get("task") != 2 || get("mv_label") != 1 || get("top_label") != 0 {
		t.Fatalf("disagreement row = %v (%v), want task 2: mv 1 vs top 0", rows[0], rel.Cols)
	}
	if math.Abs(get("mv_share")-2.0/3) > 1e-12 || get("top_p") != 0.7 {
		t.Fatalf("disagreement shares = %v (%v)", rows[0], rel.Cols)
	}
	if c.StoreVersion != 7 || c.ResultVersion != 7 {
		t.Fatalf("catalog versions = (%d, %d), want (7, 7)", c.StoreVersion, c.ResultVersion)
	}
}

func TestWorkerQualityDropViewGolden(t *testing.T) {
	c := query.NewCatalog(golden(), nil)
	rel, err := query.View(c, query.ViewWorkerQualityDrop)
	if err != nil {
		t.Fatal(err)
	}
	rows := collectAll(t, rel)
	// Only worker 0 dropped (0.80 → 0.55); worker 1 rose, worker 2 held.
	want := []query.Row{{0, 0.55, 0.80, 0.25}}
	if fmt.Sprint(rows) != fmt.Sprint(want) {
		t.Fatalf("drop rows = %v, want %v", rows, want)
	}
}

func TestSpendVsBudgetViewGolden(t *testing.T) {
	led := &fakeLedger{
		leases: []assign.Lease{{ID: 3, Task: 1, Worker: 2, Expires: time.UnixMilli(1000)}},
		stats:  assign.Stats{Budget: 100, BudgetRemaining: 40, Outstanding: 10, Completed: 50, Expired: 4},
	}
	c := query.NewCatalog(golden(), led)
	rel, err := query.View(c, query.ViewSpendVsBudget)
	if err != nil {
		t.Fatal(err)
	}
	rows := collectAll(t, rel)
	want := []query.Row{{100, 60, 40, 10, 50, 4}}
	if fmt.Sprint(rows) != fmt.Sprint(want) {
		t.Fatalf("budget row = %v, want %v", rows, want)
	}

	// The leases relation is queryable alongside.
	c2 := query.NewCatalog(golden(), led)
	rel2 := mustCompile(t, c2, `{"op":"scan","relation":"leases"}`)
	rows2 := collectAll(t, rel2)
	if fmt.Sprint(rows2) != fmt.Sprint([]query.Row{{3, 1, 2, 1000}}) {
		t.Fatalf("lease rows = %v", rows2)
	}

	// Without a ledger both relations are structural errors.
	c3 := query.NewCatalog(golden(), nil)
	if _, err := query.View(c3, query.ViewSpendVsBudget); !errors.Is(err, query.ErrNoLedger) {
		t.Fatalf("budget without ledger: err = %v, want ErrNoLedger", err)
	}
}

func TestUnavailableSurfaces(t *testing.T) {
	src := golden()
	src.postErr = errors.New("not inferred yet")
	src.wqErr = src.postErr
	c := query.NewCatalog(src, nil)
	for _, name := range []string{"posterior", "posterior_top", "entropy", "workers"} {
		_, err := compileJSON(t, c, fmt.Sprintf(`{"op":"scan","relation":%q}`, name))
		var unavailable query.ErrUnavailable
		if !errors.As(err, &unavailable) {
			t.Fatalf("scan %s before an epoch: err = %v, want ErrUnavailable", name, err)
		}
	}
	if _, err := query.View(c, query.ViewDisagreement); err == nil {
		t.Fatal("disagreement view compiled without a posterior")
	}
}

func TestHostileAST(t *testing.T) {
	cases := []struct {
		name, plan, wantErr string
	}{
		{"unknown op", `{"op":"explode"}`, "unknown operator"},
		{"unknown relation", `{"op":"scan","relation":"secrets"}`, "unknown relation"},
		{"unknown column", `{"op":"project","cols":["nope"],"input":{"op":"scan","relation":"answers"}}`, "unknown column"},
		{"unknown pred col", `{"op":"select","where":{"op":"eq","col":"nope","value":1},"input":{"op":"scan","relation":"answers"}}`, "unknown column"},
		{"pred without rhs", `{"op":"select","where":{"op":"eq","col":"task"},"input":{"op":"scan","relation":"answers"}}`, "requires col2 or value"},
		{"select without where", `{"op":"select","input":{"op":"scan","relation":"answers"}}`, "without a where"},
		{"cross join", `{"op":"join","inputs":[{"op":"scan","relation":"answers"},{"op":"scan","relation":"budget"}]}`, "share no columns"},
		{"join arity", `{"op":"join","inputs":[{"op":"scan","relation":"answers"}]}`, "at least 2"},
		{"unknown aggregate", `{"op":"aggregate","aggs":[{"op":"median","col":"value","as":"m"}],"input":{"op":"scan","relation":"answers"}}`, "unknown op"},
		{"negative limit", `{"op":"limit","n":-1,"input":{"op":"scan","relation":"answers"}}`, "n >= 0"},
		{"missing input", `{"op":"select","where":{"op":"eq","col":"task","value":0}}`, "requires an input"},
	}
	// Cross-join needs a ledger for the budget relation to resolve first.
	c := query.NewCatalog(golden(), &fakeLedger{})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := compileJSON(t, c, tc.plan)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	if _, err := query.Compile(c, nil); err == nil {
		t.Fatal("nil plan compiled")
	}
	// Oversized plan: a chain of MaxNodes+1 selects.
	deep := `{"op":"scan","relation":"answers"}`
	for i := 0; i < query.MaxNodes; i++ {
		deep = fmt.Sprintf(`{"op":"select","where":{"op":"ge","col":"task","value":0},"input":%s}`, deep)
	}
	if _, err := compileJSON(t, c, deep); err == nil || !strings.Contains(err.Error(), "max") {
		t.Fatalf("oversized plan: err = %v, want node-cap rejection", err)
	}
}

// TestPinnedScanUnderConcurrentIngest proves the tentpole consistency
// property on the real sharded store: a catalog pinned before a wave of
// concurrent ingests sees exactly the pinned answers — no more, no less
// — even while the store grows under it, and a catalog pinned after
// sees everything.
func TestPinnedScanUnderConcurrentIngest(t *testing.T) {
	store, err := stream.NewStoreN("query-pin", dataset.Decision, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	const initial = 100
	ans := make([]dataset.Answer, initial)
	for i := range ans {
		ans[i] = dataset.Answer{Task: i % 10, Worker: i % 7, Value: float64(i % 2)}
	}
	if _, _, err := store.Ingest(stream.Batch{Answers: ans}); err != nil {
		t.Fatal(err)
	}
	svc := newMVService(t, store)

	c := query.NewCatalog(svc, nil)
	if c.PinAnswers != initial {
		t.Fatalf("pinned %d answers, want %d", c.PinAnswers, initial)
	}
	rel := mustCompile(t, c, `{"op":"scan","relation":"answers"}`)

	// Read half the relation, then grow the store concurrently from
	// multiple goroutines while draining the rest.
	var got []query.Row
	for i := 0; i < initial/2; i++ {
		r, ok := rel.Next()
		if !ok {
			t.Fatalf("scan ended early at row %d", i)
		}
		got = append(got, r)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < 5; b++ {
				batch := make([]dataset.Answer, 20)
				for i := range batch {
					batch[i] = dataset.Answer{Task: (g*100 + b*20 + i) % 50, Worker: 7 + g, Value: 1}
				}
				if _, _, err := store.Ingest(stream.Batch{Answers: batch}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for {
		r, ok := rel.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	wg.Wait()

	if len(got) != initial {
		t.Fatalf("pinned scan returned %d rows, want exactly %d", len(got), initial)
	}
	// A fresh catalog pinned after the wave sees everything.
	c2 := query.NewCatalog(svc, nil)
	rows, _ := query.Collect(mustCompile(t, c2, `{"op":"scan","relation":"answers"}`), -1)
	if want := initial + 4*5*20; len(rows) != want {
		t.Fatalf("post-ingest scan returned %d rows, want %d", len(rows), want)
	}
}
