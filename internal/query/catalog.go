package query

import (
	"errors"
	"fmt"
	"math"

	"truthinference/internal/assign"
	"truthinference/internal/dataset"
)

// Source is the serving-state surface the catalog reads from.
// *stream.Service implements it structurally — this package never
// imports internal/stream, mirroring how internal/assign consumes the
// same service.
type Source interface {
	// Pin returns a consistent (store version, answer count) pair; every
	// answer-sourced relation in one query excludes answers at or beyond
	// the pinned count, so concurrent ingest cannot skew a result.
	Pin() (version uint64, answers int)
	// Shards returns the store's shard count (the ScanShard index space).
	Shards() int
	// ScanShard copies up to len(dst) answers of shard si starting at log
	// position pos, excluding global indices >= beforeIdx; it returns the
	// copied count, the next position, and whether the shard is drained.
	ScanShard(si, pos, beforeIdx int, dst []dataset.Answer) (n, next int, done bool)
	// NumChoices returns ℓ for categorical stores, 0 for numeric.
	NumChoices() int
	// Posteriors returns per-task posterior rows plus the result version
	// they reflect; errors mean no posterior exists (yet, or ever).
	Posteriors() ([][]float64, uint64, error)
	// Entropies returns per-task posterior entropies (nats).
	Entropies() ([]float64, uint64, error)
	// WorkerQualities returns current and previous-epoch worker-quality
	// vectors plus the result version they reflect.
	WorkerQualities() (cur, prev []float64, version uint64, err error)
}

// Ledger is the assignment-state surface (satisfied by *assign.Ledger);
// nil in a Catalog means the project has no assignment plane and the
// lease/budget relations are unavailable.
type Ledger interface {
	Leases() []assign.Lease
	Stats() assign.Stats
	// Suspects returns per-worker defense dossiers (nil when the
	// ledger's defense layer is disabled — the suspects relation is
	// then empty, not an error: no defenses means no suspects).
	Suspects() []assign.Suspect
}

// ErrNoLedger is returned for lease/budget relations on a project
// without an assignment ledger.
var ErrNoLedger = errors.New("query: project has no assignment ledger")

// ErrUnavailable wraps source errors that mean "the data this relation
// needs does not exist yet" (no posterior before the first epoch, no
// worker estimates yet). The HTTP layer maps it to 409: retry after an
// epoch, nothing is wrong with the query.
type ErrUnavailable struct{ Err error }

func (e ErrUnavailable) Error() string { return fmt.Sprintf("query: relation unavailable: %v", e.Err) }
func (e ErrUnavailable) Unwrap() error { return e.Err }

// scanChunk is the per-pull copy size of the answer scan: small enough
// that shard read-locks are held only briefly, large enough to amortize
// the lock acquisition across many rows.
const scanChunk = 512

// Cardinality ranks of the base relations, smallest first. The greedy
// join orderer and the build-side choice in HashJoin need only this
// ordering — the relations' shapes are known, so no statistics are
// collected (the janus-datalog approach named in ROADMAP item 3).
const (
	rankBudget  = 0 // exactly one row
	rankLeases  = 1 // outstanding leases (bounded by budget/redundancy)
	rankWorkers = 2 // one row per worker
	rankPerTask = 3 // one row per task (mv, posterior_top, entropy) or task×ℓ (posterior)
	rankAnswers = 4 // one row per answer — always the probe side
)

// relationRank maps every catalog relation to its cardinality class.
var relationRank = map[string]int{
	"budget":        rankBudget,
	"leases":        rankLeases,
	"workers":       rankWorkers,
	"suspects":      rankWorkers,
	"mv":            rankPerTask,
	"posterior_top": rankPerTask,
	"entropy":       rankPerTask,
	"posterior":     rankPerTask,
	"answers":       rankAnswers,
}

// RelationNames lists the catalog's base relations (documentation
// order: cheap to expensive).
var RelationNames = []string{"budget", "leases", "workers", "suspects", "mv", "posterior_top", "entropy", "posterior", "answers"}

// Catalog resolves base-relation names to lazily-evaluated Relations,
// all pinned to one store version captured at construction. Build one
// Catalog per query.
type Catalog struct {
	src    Source
	ledger Ledger

	// StoreVersion and pinned answer count captured by NewCatalog; every
	// answers/mv scan in this catalog sees exactly the first PinAnswers
	// answers, no matter how much is ingested concurrently.
	StoreVersion uint64
	PinAnswers   int
	// ResultVersion is the inference epoch backing any model-derived
	// relation the query touched (0 until one is touched or none exists).
	ResultVersion uint64
	// Scanned counts answers copied out of the store by this catalog's
	// scans — the query's real read cost, as opposed to the rows it
	// returned. Read it after the query has been collected; catalogs are
	// per-query and single-goroutine, so plain int is fine.
	Scanned int
}

// NewCatalog pins the store and returns a catalog for one query.
func NewCatalog(src Source, ledger Ledger) *Catalog {
	v, n := src.Pin()
	return &Catalog{src: src, ledger: ledger, StoreVersion: v, PinAnswers: n}
}

// Relation resolves a base relation by name. Unknown names are an
// error; names whose backing data does not exist yet return
// ErrUnavailable (or ErrNoLedger).
func (c *Catalog) Relation(name string) (Relation, error) {
	switch name {
	case "answers":
		return c.answers(), nil
	case "mv":
		return c.mv()
	case "posterior":
		return c.posterior()
	case "posterior_top":
		return c.posteriorTop()
	case "entropy":
		return c.entropy()
	case "workers":
		return c.workers()
	case "leases":
		return c.leases()
	case "suspects":
		return c.suspects()
	case "budget":
		return c.budget()
	default:
		return Relation{}, fmt.Errorf("query: unknown relation %q (have %v)", name, RelationNames)
	}
}

// answers streams (task, worker, value) straight off the sharded store:
// one chunk of scanChunk answers is copied per refill under a short
// shard read-lock, shards drained in order, everything at global index
// >= the pin excluded. No lock is ever held between Next calls.
func (c *Catalog) answers() Relation {
	var (
		buf      = make([]dataset.Answer, scanChunk)
		n, pos   int
		i        int
		si       int
		exhaust  = c.src.Shards() == 0 || c.PinAnswers == 0
		doneCur  bool
		haveFill bool
	)
	return Relation{Cols: []string{"task", "worker", "value"}, Next: func() (Row, bool) {
		for {
			if exhaust {
				return nil, false
			}
			if haveFill && i < n {
				a := buf[i]
				i++
				return Row{float64(a.Task), float64(a.Worker), a.Value}, true
			}
			if haveFill && doneCur {
				si++
				pos = 0
				haveFill = false
				if si >= c.src.Shards() {
					exhaust = true
					continue
				}
			}
			n, pos, doneCur = c.src.ScanShard(si, pos, c.PinAnswers, buf)
			c.Scanned += n
			i, haveFill = 0, true
			if n == 0 && !doneCur {
				// Defensive: a shard that returns no progress and claims
				// more data would loop forever; treat it as drained.
				doneCur = true
			}
		}
	}}
}

// mv derives the majority vote per task from the pinned answer scan:
// (task, mv_label, mv_share). State is O(tasks·ℓ) counts — never a copy
// of the answers. Ties break to the lowest label (deterministic, and
// independent of the serving method's hashed tie-break — callers
// comparing against a served MV should avoid tied datasets). Requires a
// categorical store.
func (c *Catalog) mv() (Relation, error) {
	ell := c.src.NumChoices()
	if ell < 2 {
		return Relation{}, fmt.Errorf("query: relation \"mv\" requires a categorical store")
	}
	var (
		counts [][]float64
		total  []float64
		built  bool
		task   int
	)
	build := func() {
		scan := c.answers()
		for {
			r, ok := scan.Next()
			if !ok {
				return
			}
			t, label := int(r[0]), int(r[2])
			for t >= len(counts) {
				counts = append(counts, make([]float64, ell))
				total = append(total, 0)
			}
			if label >= 0 && label < ell {
				counts[t][label]++
				total[t]++
			}
		}
	}
	return Relation{Cols: []string{"task", "mv_label", "mv_share"}, Next: func() (Row, bool) {
		if !built {
			build()
			built = true
		}
		for task < len(counts) {
			t := task
			task++
			if total[t] == 0 {
				continue // a task with no pinned answers has no vote
			}
			best := 0
			for k := 1; k < ell; k++ {
				if counts[t][k] > counts[t][best] {
					best = k
				}
			}
			return Row{float64(t), float64(best), counts[t][best] / total[t]}, true
		}
		return nil, false
	}}, nil
}

// posterior streams (task, label, p): one row per task × choice from
// the serving method's published posterior.
func (c *Catalog) posterior() (Relation, error) {
	post, v, err := c.src.Posteriors()
	if err != nil {
		return Relation{}, ErrUnavailable{err}
	}
	c.ResultVersion = v
	t, k := 0, 0
	return Relation{Cols: []string{"task", "label", "p"}, Next: func() (Row, bool) {
		for t < len(post) {
			if k < len(post[t]) {
				r := Row{float64(t), float64(k), post[t][k]}
				k++
				return r, true
			}
			t++
			k = 0
		}
		return nil, false
	}}, nil
}

// posteriorTop reduces the posterior to its argmax per task:
// (task, top_label, top_p). Ties break to the lowest label, matching mv.
func (c *Catalog) posteriorTop() (Relation, error) {
	post, v, err := c.src.Posteriors()
	if err != nil {
		return Relation{}, ErrUnavailable{err}
	}
	c.ResultVersion = v
	t := 0
	return Relation{Cols: []string{"task", "top_label", "top_p"}, Next: func() (Row, bool) {
		for t < len(post) {
			row := post[t]
			i := t
			t++
			if len(row) == 0 {
				continue
			}
			best := 0
			for k := 1; k < len(row); k++ {
				if row[k] > row[best] {
					best = k
				}
			}
			return Row{float64(i), float64(best), row[best]}, true
		}
		return nil, false
	}}, nil
}

// entropy streams (task, entropy): the per-task posterior Shannon
// entropy in nats.
func (c *Catalog) entropy() (Relation, error) {
	ent, v, err := c.src.Entropies()
	if err != nil {
		return Relation{}, ErrUnavailable{err}
	}
	c.ResultVersion = v
	t := 0
	return Relation{Cols: []string{"task", "entropy"}, Next: func() (Row, bool) {
		if t >= len(ent) {
			return nil, false
		}
		r := Row{float64(t), ent[t]}
		t++
		return r, true
	}}, nil
}

// workers streams (worker, quality, prev_quality, drop) where drop is
// the decline since the previous published epoch (0 before a second
// epoch exists and for workers first seen this epoch).
func (c *Catalog) workers() (Relation, error) {
	cur, prev, v, err := c.src.WorkerQualities()
	if err != nil {
		return Relation{}, ErrUnavailable{err}
	}
	c.ResultVersion = v
	w := 0
	return Relation{Cols: []string{"worker", "quality", "prev_quality", "drop"}, Next: func() (Row, bool) {
		if w >= len(cur) {
			return nil, false
		}
		q, pq := cur[w], prev[w]
		if math.IsNaN(q) {
			q = -1
		}
		if math.IsNaN(pq) {
			pq = -1
		}
		r := Row{float64(w), q, pq, pq - q}
		w++
		return r, true
	}}, nil
}

// leases streams the outstanding assignment leases:
// (lease_id, task, worker, expires_unix_ms).
func (c *Catalog) leases() (Relation, error) {
	if c.ledger == nil {
		return Relation{}, ErrNoLedger
	}
	leases := c.ledger.Leases()
	rows := make([]Row, len(leases))
	for i, l := range leases {
		rows[i] = Row{float64(l.ID), float64(l.Task), float64(l.Worker), float64(l.Expires.UnixMilli())}
	}
	return fromRows([]string{"lease_id", "task", "worker", "expires_unix_ms"}, rows), nil
}

// suspects streams the defense layer's per-worker dossiers:
// (worker, qualified, golden_passed, golden_failed, banned, ban_reason,
// down_weighted, collusion_score, collusion_partners, quality_drop,
// suspect). Booleans are 0/1; ban_reason is a code (0 none, 1 golden,
// 2 quality, 3 collusion); suspect summarizes "any detector has
// something on this worker". Empty when the defense layer is disabled.
func (c *Catalog) suspects() (Relation, error) {
	if c.ledger == nil {
		return Relation{}, ErrNoLedger
	}
	sus := c.ledger.Suspects()
	rows := make([]Row, len(sus))
	for i, s := range sus {
		rows[i] = Row{
			float64(s.Worker),
			b2f(s.Qualified),
			float64(s.GoldenPassed),
			float64(s.GoldenFailed),
			b2f(s.Banned),
			banReasonCode(s.BanReason),
			b2f(s.DownWeighted),
			s.CollusionScore,
			float64(s.CollusionPartners),
			s.QualityDrop,
			b2f(s.Banned || s.DownWeighted || s.GoldenFailed > 0 || s.CollusionPartners > 0 || s.QualityDrop > 0),
		}
	}
	return fromRows([]string{"worker", "qualified", "golden_passed", "golden_failed", "banned",
		"ban_reason", "down_weighted", "collusion_score", "collusion_partners", "quality_drop",
		"suspect"}, rows), nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// banReasonCode maps the ledger's ban reason onto the numeric column
// (relations carry float64 cells only).
func banReasonCode(reason string) float64 {
	switch reason {
	case "golden":
		return 1
	case "quality":
		return 2
	case "collusion":
		return 3
	default:
		return 0
	}
}

// budget is the single-row spend-vs-budget relation:
// (budget, spent, remaining, outstanding, completed, expired).
// budget and remaining are -1 when the ledger is unlimited; spent is
// the committed side of the ledger's accounting (completed + live
// leases, or the store total with charge-existing budgets).
func (c *Catalog) budget() (Relation, error) {
	if c.ledger == nil {
		return Relation{}, ErrNoLedger
	}
	st := c.ledger.Stats()
	budget, remaining, spent := -1.0, -1.0, float64(st.Completed)+float64(st.Outstanding)
	if st.Budget > 0 {
		budget = float64(st.Budget)
		remaining = float64(st.BudgetRemaining)
		spent = budget - remaining
	}
	row := Row{budget, spent, remaining, float64(st.Outstanding), float64(st.Completed), float64(st.Expired)}
	return fromRows([]string{"budget", "spent", "remaining", "outstanding", "completed", "expired"}, []Row{row}), nil
}
