package query

import "fmt"

// Canned view names (the "view" field of a query request). Each is a
// pre-built operator plan over the same catalog the raw AST sees —
// views have no private fast path, they are just saved queries.
const (
	// ViewDisagreement lists tasks where the serving method's posterior
	// argmax disagrees with a majority vote recomputed over the pinned
	// answers: (task, mv_label, mv_share, top_label, top_p). On an
	// MV-serving project the two sides coincide and the view is empty —
	// it is meaningful for iterative methods (D&S, GLAD, ...), where a
	// disagreeing task is one the model overrode the crowd on.
	ViewDisagreement = "disagreement"
	// ViewWorkerQualityDrop lists workers whose quality estimate fell
	// since the previous published epoch, largest drop being the most
	// interesting: (worker, quality, prev_quality, drop), drop > 0.
	ViewWorkerQualityDrop = "worker-quality-drop"
	// ViewSpendVsBudget is the single-row budget accounting of the
	// project's assignment ledger: (budget, spent, remaining,
	// outstanding, completed, expired); -1 budget means unlimited.
	ViewSpendVsBudget = "spend-vs-budget"
	// ViewWorkerSuspect lists workers the defense layer has something
	// on — banned, down-weighted, failed golden answers, flagged
	// collusion partners, or a detected quality drop — with the full
	// dossier columns of the suspects relation. Empty when no defenses
	// are configured or nobody tripped one.
	ViewWorkerSuspect = "worker-suspect"
)

// ViewNames lists the canned views.
var ViewNames = []string{ViewDisagreement, ViewWorkerQualityDrop, ViewSpendVsBudget, ViewWorkerSuspect}

// ErrUnknownView distinguishes "no such view" (HTTP 404) from
// structural plan errors (422).
type ErrUnknownView struct{ Name string }

func (e ErrUnknownView) Error() string {
	return fmt.Sprintf("query: unknown view %q (have %v)", e.Name, ViewNames)
}

// View compiles a canned view against the catalog.
func View(c *Catalog, name string) (Relation, error) {
	switch name {
	case ViewDisagreement:
		mv, err := c.Relation("mv")
		if err != nil {
			return Relation{}, err
		}
		top, err := c.Relation("posterior_top")
		if err != nil {
			return Relation{}, err
		}
		// mv and posterior_top are the same size class; build on the mv
		// side (it only has rows for tasks with answers).
		joined, err := HashJoin(mv, top, []string{"task"})
		if err != nil {
			return Relation{}, err
		}
		return Select(joined, func(r Row) bool {
			return r[colIndexMust(joined.Cols, "mv_label")] != r[colIndexMust(joined.Cols, "top_label")]
		}), nil

	case ViewWorkerQualityDrop:
		workers, err := c.Relation("workers")
		if err != nil {
			return Relation{}, err
		}
		drop := colIndexMust(workers.Cols, "drop")
		return Select(workers, func(r Row) bool { return r[drop] > 0 }), nil

	case ViewSpendVsBudget:
		return c.Relation("budget")

	case ViewWorkerSuspect:
		sus, err := c.Relation("suspects")
		if err != nil {
			return Relation{}, err
		}
		flag := colIndexMust(sus.Cols, "suspect")
		return Select(sus, func(r Row) bool { return r[flag] == 1 }), nil

	default:
		return Relation{}, ErrUnknownView{name}
	}
}

// colIndexMust is colIndex for columns this package itself emitted.
func colIndexMust(cols []string, name string) int {
	i := colIndex(cols, name)
	if i < 0 {
		panic(fmt.Sprintf("query: internal: column %q missing from %v", name, cols))
	}
	return i
}
