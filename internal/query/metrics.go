package query

import (
	"truthinference/internal/telemetry"
)

// Metrics is the query plane's instrument bundle, bound to one tenant
// at construction. The view label stays dynamic (canned view names plus
// "plan" for ad-hoc operator trees — bounded cardinality either way). A
// nil *Metrics is inert.
type Metrics struct {
	tenant       string
	queries      *telemetry.CounterVec // tenant, view
	rowsReturned *telemetry.Counter
	rowsScanned  *telemetry.Counter
	truncated    *telemetry.Counter
}

// NewMetrics registers the query instruments on reg with a per-tenant
// label. Returns nil — an inert bundle — for a nil registry.
func NewMetrics(reg *telemetry.Registry, tenant string) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		tenant: tenant,
		queries: reg.Counter("truthserve_query_total",
			"Queries answered, by tenant and view (\"plan\" for ad-hoc plans).",
			"tenant", "view"),
		rowsReturned: reg.Counter("truthserve_query_rows_returned_total",
			"Rows returned to query clients, by tenant.",
			"tenant").With(tenant),
		rowsScanned: reg.Counter("truthserve_query_rows_scanned_total",
			"Answers scanned out of the store to serve queries, by tenant.",
			"tenant").With(tenant),
		truncated: reg.Counter("truthserve_query_truncated_total",
			"Queries cut short by the row limit, by tenant.",
			"tenant").With(tenant),
	}
}

func (m *Metrics) observe(view string, returned, scanned int, truncated bool) {
	if m == nil {
		return
	}
	if view == "" {
		view = "plan"
	}
	m.queries.With(m.tenant, view).Inc()
	m.rowsReturned.Add(uint64(returned))
	m.rowsScanned.Add(uint64(scanned))
	if truncated {
		m.truncated.Inc()
	}
}
