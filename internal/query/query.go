// Package query is the relational read plane over the serving stack: a
// small relational algebra — scan, select (σ), project (π), hash join
// (⋈), group-aggregate, limit — whose operators are lazy pull-based
// iterators streaming straight out of the sharded answer store, the
// inference surfaces on the serving service, and the assignment ledger.
// Nothing materializes the store: the answer scan copies one small chunk
// at a time under short shard read-locks, and every answer-sourced
// relation in one query is pinned to a single store version (see
// Catalog), so results are consistent even under concurrent ingest.
//
// Plans arrive as a JSON AST over POST /v1/query (see Node and Handler)
// or as one of the canned operator views (see Views): method
// disagreement, worker-quality drop, and spend-vs-budget. Join ordering
// is greedy and statistics-free: every relation in the catalog has a
// known cardinality class (a single budget row < outstanding leases <
// workers < per-task rows < answers), so the planner just joins
// smallest-first and always builds the hash table on the smaller side —
// the janus-datalog observation that known-shape queries need no
// optimizer.
//
// Rows are flat []float64 and columns are named; values that do not
// exist yet (no posterior before the first epoch, unlimited budget) are
// reported as -1 sentinels rather than NaN, which JSON cannot encode.
package query

import (
	"fmt"
	"sort"
)

// Row is one tuple; its meaning is given by the relation's Cols.
type Row []float64

// Relation is a lazily-evaluated stream of rows with a named schema.
// Next returns the next row and true, or nil and false once drained.
// Iterators are single-use: a Relation is consumed by exactly one
// downstream operator (or the result encoder) and never rewound.
type Relation struct {
	Cols []string
	Next func() (Row, bool)
}

// colIndex resolves a column name to its position, or -1.
func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

// fromRows wraps an already-built row slice as a Relation (used for the
// small derived relations — never for the answer store).
func fromRows(cols []string, rows []Row) Relation {
	i := 0
	return Relation{Cols: cols, Next: func() (Row, bool) {
		if i >= len(rows) {
			return nil, false
		}
		r := rows[i]
		i++
		return r, true
	}}
}

// Select is σ: it streams the rows of in that satisfy pred.
func Select(in Relation, pred func(Row) bool) Relation {
	return Relation{Cols: in.Cols, Next: func() (Row, bool) {
		for {
			r, ok := in.Next()
			if !ok {
				return nil, false
			}
			if pred(r) {
				return r, true
			}
		}
	}}
}

// Project is π: it keeps exactly the named columns, in the given order.
func Project(in Relation, cols []string) (Relation, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := colIndex(in.Cols, c)
		if j < 0 {
			return Relation{}, fmt.Errorf("project: unknown column %q (have %v)", c, in.Cols)
		}
		idx[i] = j
	}
	out := append([]string(nil), cols...)
	return Relation{Cols: out, Next: func() (Row, bool) {
		r, ok := in.Next()
		if !ok {
			return nil, false
		}
		p := make(Row, len(idx))
		for i, j := range idx {
			p[i] = r[j]
		}
		return p, true
	}}, nil
}

// Limit truncates the stream after n rows (n < 0 means no limit).
func Limit(in Relation, n int) Relation {
	seen := 0
	return Relation{Cols: in.Cols, Next: func() (Row, bool) {
		if n >= 0 && seen >= n {
			return nil, false
		}
		r, ok := in.Next()
		if ok {
			seen++
		}
		return r, ok
	}}
}

// HashJoin is ⋈ on the named key columns: it drains build into a hash
// table keyed by the join columns, then streams probe, emitting one
// output row per match. The output schema is build's columns followed
// by probe's non-key columns; a non-key column name shared by both
// sides is an error (the algebra has no rename). The caller arranges
// build to be the known-smaller side — see greedy ordering in ast.go.
func HashJoin(build, probe Relation, on []string) (Relation, error) {
	if len(on) == 0 {
		return Relation{}, fmt.Errorf("join: no join columns (cross joins are not supported)")
	}
	bIdx := make([]int, len(on))
	pIdx := make([]int, len(on))
	for i, c := range on {
		if bIdx[i] = colIndex(build.Cols, c); bIdx[i] < 0 {
			return Relation{}, fmt.Errorf("join: column %q missing on build side %v", c, build.Cols)
		}
		if pIdx[i] = colIndex(probe.Cols, c); pIdx[i] < 0 {
			return Relation{}, fmt.Errorf("join: column %q missing on probe side %v", c, probe.Cols)
		}
	}
	// Probe columns that survive into the output (everything but keys).
	var pKeep []int
	cols := append([]string(nil), build.Cols...)
	for j, c := range probe.Cols {
		if colIndex(on, c) >= 0 {
			continue
		}
		if colIndex(build.Cols, c) >= 0 {
			return Relation{}, fmt.Errorf("join: ambiguous column %q on both sides (project it away first)", c)
		}
		pKeep = append(pKeep, j)
		cols = append(cols, c)
	}

	var table map[string][]Row
	key := func(r Row, idx []int) string {
		// Keys are exact float64 bit patterns formatted compactly; every
		// key column in the catalog is an integer id, so this is exact.
		k := make([]byte, 0, 16*len(idx))
		for _, j := range idx {
			k = appendKey(k, r[j])
		}
		return string(k)
	}
	var bucket []Row // pending matches for the current probe row
	var probeRow Row
	return Relation{Cols: cols, Next: func() (Row, bool) {
		if table == nil {
			table = make(map[string][]Row)
			for {
				r, ok := build.Next()
				if !ok {
					break
				}
				k := key(r, bIdx)
				table[k] = append(table[k], r)
			}
		}
		for {
			if len(bucket) > 0 {
				b := bucket[0]
				bucket = bucket[1:]
				out := make(Row, 0, len(cols))
				out = append(out, b...)
				for _, j := range pKeep {
					out = append(out, probeRow[j])
				}
				return out, true
			}
			r, ok := probe.Next()
			if !ok {
				return nil, false
			}
			probeRow = r
			bucket = table[key(r, pIdx)]
		}
	}}, nil
}

// appendKey appends an exact, self-delimiting encoding of v.
func appendKey(k []byte, v float64) []byte {
	return append(k, fmt.Sprintf("%x|", v)...)
}

// AggOp is one aggregation function.
type AggOp string

const (
	AggCount AggOp = "count"
	AggSum   AggOp = "sum"
	AggAvg   AggOp = "avg"
	AggMin   AggOp = "min"
	AggMax   AggOp = "max"
)

// Agg is one aggregate output column: Op applied to Col (Col is ignored
// for count), emitted under the name As.
type Agg struct {
	Op  AggOp  `json:"op"`
	Col string `json:"col,omitempty"`
	As  string `json:"as"`
}

// GroupAggregate groups in by the named columns and computes the
// aggregates per group; with no group columns it emits exactly one row
// over the whole input (zero rows of input still yield one: count 0,
// sum 0, min/max -1). The input is drained on the first Next; output
// rows are sorted by the group columns so results are deterministic.
func GroupAggregate(in Relation, by []string, aggs []Agg) (Relation, error) {
	if len(aggs) == 0 {
		return Relation{}, fmt.Errorf("aggregate: no aggregate columns")
	}
	byIdx := make([]int, len(by))
	for i, c := range by {
		if byIdx[i] = colIndex(in.Cols, c); byIdx[i] < 0 {
			return Relation{}, fmt.Errorf("aggregate: unknown group column %q (have %v)", c, in.Cols)
		}
	}
	aggIdx := make([]int, len(aggs))
	cols := append([]string(nil), by...)
	for i, a := range aggs {
		switch a.Op {
		case AggCount, AggSum, AggAvg, AggMin, AggMax:
		default:
			return Relation{}, fmt.Errorf("aggregate: unknown op %q", a.Op)
		}
		if a.As == "" {
			return Relation{}, fmt.Errorf("aggregate: missing output name (as) for %q", a.Op)
		}
		aggIdx[i] = -1
		if a.Op != AggCount {
			if aggIdx[i] = colIndex(in.Cols, a.Col); aggIdx[i] < 0 {
				return Relation{}, fmt.Errorf("aggregate: unknown column %q for %q", a.Col, a.Op)
			}
		}
		cols = append(cols, a.As)
	}

	type acc struct {
		group      Row
		count      []float64
		sum        []float64
		min, max   []float64
		minMaxInit []bool
	}
	var out []Row
	done := false
	pos := 0
	drain := func() {
		groups := map[string]*acc{}
		var order []string
		for {
			r, ok := in.Next()
			if !ok {
				break
			}
			k := make([]byte, 0, 16*len(byIdx))
			for _, j := range byIdx {
				k = appendKey(k, r[j])
			}
			a := groups[string(k)]
			if a == nil {
				g := make(Row, len(byIdx))
				for i, j := range byIdx {
					g[i] = r[j]
				}
				a = &acc{
					group: g,
					count: make([]float64, len(aggs)), sum: make([]float64, len(aggs)),
					min: make([]float64, len(aggs)), max: make([]float64, len(aggs)),
					minMaxInit: make([]bool, len(aggs)),
				}
				groups[string(k)] = a
				order = append(order, string(k))
			}
			for i := range aggs {
				a.count[i]++
				if aggIdx[i] >= 0 {
					v := r[aggIdx[i]]
					a.sum[i] += v
					if !a.minMaxInit[i] || v < a.min[i] {
						a.min[i] = v
					}
					if !a.minMaxInit[i] || v > a.max[i] {
						a.max[i] = v
					}
					a.minMaxInit[i] = true
				}
			}
		}
		if len(by) == 0 && len(order) == 0 {
			a := &acc{
				group: Row{},
				count: make([]float64, len(aggs)), sum: make([]float64, len(aggs)),
				min: make([]float64, len(aggs)), max: make([]float64, len(aggs)),
				minMaxInit: make([]bool, len(aggs)),
			}
			groups[""] = a
			order = append(order, "")
		}
		for _, k := range order {
			a := groups[k]
			row := append(Row{}, a.group...)
			for i, spec := range aggs {
				switch spec.Op {
				case AggCount:
					row = append(row, a.count[i])
				case AggSum:
					row = append(row, a.sum[i])
				case AggAvg:
					if a.count[i] == 0 {
						row = append(row, -1)
					} else {
						row = append(row, a.sum[i]/a.count[i])
					}
				case AggMin:
					if !a.minMaxInit[i] {
						row = append(row, -1)
					} else {
						row = append(row, a.min[i])
					}
				case AggMax:
					if !a.minMaxInit[i] {
						row = append(row, -1)
					} else {
						row = append(row, a.max[i])
					}
				}
			}
			out = append(out, row)
		}
		sort.Slice(out, func(i, j int) bool {
			for c := range byIdx {
				if out[i][c] != out[j][c] {
					return out[i][c] < out[j][c]
				}
			}
			return false
		})
	}
	return Relation{Cols: cols, Next: func() (Row, bool) {
		if !done {
			drain()
			done = true
		}
		if pos >= len(out) {
			return nil, false
		}
		r := out[pos]
		pos++
		return r, true
	}}, nil
}

// Collect drains a relation into at most limit rows (limit < 0 means
// unbounded), reporting whether the stream had more. It is the terminal
// operator the HTTP handler encodes from.
func Collect(in Relation, limit int) (rows []Row, truncated bool) {
	for {
		r, ok := in.Next()
		if !ok {
			return rows, false
		}
		if limit >= 0 && len(rows) >= limit {
			return rows, true
		}
		rows = append(rows, r)
	}
}
