package query

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"truthinference/internal/api"
)

// Row-limit policy of the query endpoint: a request without a limit
// gets DefaultLimit rows; asking for more than MaxLimit is rejected —
// the plane is for analytical reads, not bulk export (that is what the
// batch codec is for).
const (
	DefaultLimit = 1000
	MaxLimit     = 10000
)

// NewHandler returns the HTTP face of the query plane, one route:
//
//	POST /v1/query  {"view":"disagreement"} |
//	                {"plan":{"op":...},"limit":100}
//
// Request bodies are capped at api.MaxAdminBody and decoded strictly
// (unknown fields rejected). Failures use the shared error envelope:
// 400 malformed body or view+plan confusion, 404 unknown view, 409 the
// backing data does not exist yet (retry after an epoch), 413 oversized
// body, 422 structurally invalid plan. ledger may be nil (no assignment
// plane): lease/budget relations then answer 422. m, when non-nil,
// counts served queries, rows scanned vs returned, and truncations.
func NewHandler(src Source, ledger Ledger, m *Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(w, r, src, ledger, m)
	})
	return mux
}

func handleQuery(w http.ResponseWriter, r *http.Request, src Source, ledger Ledger, m *Metrics) {
	var req api.QueryRequest
	if !api.DecodeJSON(w, r, api.MaxAdminBody, &req) {
		return
	}
	switch {
	case req.View == "" && len(req.Plan) == 0:
		api.Error(w, http.StatusBadRequest, errors.New("query requires a view or a plan"))
		return
	case req.View != "" && len(req.Plan) > 0:
		api.Error(w, http.StatusBadRequest, errors.New("view and plan are mutually exclusive"))
		return
	case req.Limit < 0 || req.Limit > MaxLimit:
		api.Error(w, http.StatusUnprocessableEntity,
			fmt.Errorf("limit %d out of range [0, %d]", req.Limit, MaxLimit))
		return
	}
	limit := req.Limit
	if limit == 0 {
		limit = DefaultLimit
	}

	cat := NewCatalog(src, ledger)
	var (
		rel Relation
		err error
	)
	if req.View != "" {
		rel, err = View(cat, req.View)
	} else {
		var node Node
		dec := json.NewDecoder(bytes.NewReader(req.Plan))
		dec.DisallowUnknownFields()
		if derr := dec.Decode(&node); derr != nil {
			api.Error(w, http.StatusBadRequest, fmt.Errorf("decode plan: %w", derr))
			return
		}
		rel, err = Compile(cat, &node)
	}
	if err != nil {
		api.Error(w, statusFor(err), err)
		return
	}

	rows, truncated := Collect(rel, limit)
	m.observe(req.View, len(rows), cat.Scanned, truncated)
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	api.WriteJSON(w, http.StatusOK, api.QueryResponse{
		StoreVersion:  cat.StoreVersion,
		ResultVersion: cat.ResultVersion,
		Cols:          rel.Cols,
		Rows:          out,
		Truncated:     truncated,
	})
}

// statusFor maps plan/catalog errors onto HTTP statuses.
func statusFor(err error) int {
	var unknown ErrUnknownView
	var unavailable ErrUnavailable
	switch {
	case errors.As(err, &unknown):
		return http.StatusNotFound
	case errors.As(err, &unavailable):
		// The plan is fine; the epoch it needs has not published yet.
		return http.StatusConflict
	default:
		// Structural: unknown relation/column/op, caps, no-ledger.
		return http.StatusUnprocessableEntity
	}
}
