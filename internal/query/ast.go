package query

import (
	"fmt"
)

// MaxNodes caps the size of a query AST (joins count their inputs):
// deep or wide hostile plans are rejected before anything executes.
const MaxNodes = 64

// Node is one operator of the JSON query AST. Exactly one shape is
// valid per op:
//
//	{"op":"scan","relation":"answers"}
//	{"op":"select","input":N,"where":P}
//	{"op":"project","input":N,"cols":["task","value"]}
//	{"op":"join","inputs":[N,...]}            // natural join on shared columns
//	{"op":"aggregate","input":N,"by":["worker"],"aggs":[{"op":"count","as":"n"}]}
//	{"op":"limit","input":N,"n":100}
//
// Joins take two or more inputs and are ordered greedily by the known
// cardinality class of each input's base relations — no statistics.
type Node struct {
	Op string `json:"op"`

	Relation string   `json:"relation,omitempty"` // scan
	Input    *Node    `json:"input,omitempty"`    // select/project/aggregate/limit
	Inputs   []*Node  `json:"inputs,omitempty"`   // join
	Where    *Pred    `json:"where,omitempty"`    // select
	Cols     []string `json:"cols,omitempty"`     // project
	By       []string `json:"by,omitempty"`       // aggregate
	Aggs     []Agg    `json:"aggs,omitempty"`     // aggregate
	N        *int     `json:"n,omitempty"`        // limit
}

// Pred is one predicate of a select's where clause:
//
//	{"op":"eq","col":"mv_label","value":2}     // column vs literal
//	{"op":"ne","col":"mv_label","col2":"top_label"}  // column vs column
//	{"op":"and","args":[P,...]} / {"op":"or",...} / {"op":"not","args":[P]}
//
// Comparison ops: eq, ne, lt, le, gt, ge.
type Pred struct {
	Op    string   `json:"op"`
	Col   string   `json:"col,omitempty"`
	Col2  string   `json:"col2,omitempty"`
	Value *float64 `json:"value,omitempty"`
	Args  []*Pred  `json:"args,omitempty"`
}

// plan is a compiled subtree: its relation plus the cardinality rank
// the greedy join orderer plans with (the max rank of any base relation
// it reads — a conservative size class for a join result).
type plan struct {
	rel  Relation
	rank int
}

// Compile turns an AST into an executable Relation against the catalog.
// Structural errors (unknown op/relation/column, oversized AST, bad
// predicate) are plain errors — the HTTP layer maps them to 422;
// ErrUnavailable/ErrNoLedger pass through for their own mappings.
func Compile(c *Catalog, root *Node) (Relation, error) {
	if root == nil {
		return Relation{}, fmt.Errorf("query: empty plan")
	}
	n := countNodes(root)
	if n > MaxNodes {
		return Relation{}, fmt.Errorf("query: plan has %d nodes, max %d", n, MaxNodes)
	}
	p, err := compile(c, root)
	if err != nil {
		return Relation{}, err
	}
	return p.rel, nil
}

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	total := 1 + countNodes(n.Input)
	for _, in := range n.Inputs {
		total += countNodes(in)
	}
	return total
}

func compile(c *Catalog, n *Node) (plan, error) {
	switch n.Op {
	case "scan":
		rank, ok := relationRank[n.Relation]
		if !ok {
			return plan{}, fmt.Errorf("query: unknown relation %q (have %v)", n.Relation, RelationNames)
		}
		rel, err := c.Relation(n.Relation)
		if err != nil {
			return plan{}, err
		}
		return plan{rel: rel, rank: rank}, nil

	case "select":
		in, err := compileInput(c, n)
		if err != nil {
			return plan{}, err
		}
		if n.Where == nil {
			return plan{}, fmt.Errorf("query: select without a where predicate")
		}
		pred, err := compilePred(in.rel.Cols, n.Where)
		if err != nil {
			return plan{}, err
		}
		return plan{rel: Select(in.rel, pred), rank: in.rank}, nil

	case "project":
		in, err := compileInput(c, n)
		if err != nil {
			return plan{}, err
		}
		rel, err := Project(in.rel, n.Cols)
		if err != nil {
			return plan{}, err
		}
		return plan{rel: rel, rank: in.rank}, nil

	case "aggregate":
		in, err := compileInput(c, n)
		if err != nil {
			return plan{}, err
		}
		rel, err := GroupAggregate(in.rel, n.By, n.Aggs)
		if err != nil {
			return plan{}, err
		}
		return plan{rel: rel, rank: in.rank}, nil

	case "limit":
		in, err := compileInput(c, n)
		if err != nil {
			return plan{}, err
		}
		if n.N == nil || *n.N < 0 {
			return plan{}, fmt.Errorf("query: limit requires n >= 0")
		}
		return plan{rel: Limit(in.rel, *n.N), rank: in.rank}, nil

	case "join":
		return compileJoin(c, n)

	default:
		return plan{}, fmt.Errorf("query: unknown operator %q", n.Op)
	}
}

func compileInput(c *Catalog, n *Node) (plan, error) {
	if n.Input == nil {
		return plan{}, fmt.Errorf("query: operator %q requires an input", n.Op)
	}
	if len(n.Inputs) > 0 {
		return plan{}, fmt.Errorf("query: operator %q takes a single input, not inputs", n.Op)
	}
	return compile(c, n.Input)
}

// compileJoin compiles an n-way natural join with greedy known-shape
// ordering: start from the smallest-ranked input, then repeatedly fold
// in the joinable input (shares >= 1 column) with the smallest rank.
// Each pairwise HashJoin builds its hash table on the smaller-ranked
// side and streams the larger; the accumulated result's rank is the max
// of its members, so the answer scan — when present — is always the
// probe side and is never materialized.
func compileJoin(c *Catalog, n *Node) (plan, error) {
	if n.Input != nil {
		return plan{}, fmt.Errorf("query: join takes inputs, not a single input")
	}
	if len(n.Inputs) < 2 {
		return plan{}, fmt.Errorf("query: join requires at least 2 inputs")
	}
	plans := make([]plan, len(n.Inputs))
	for i, in := range n.Inputs {
		p, err := compile(c, in)
		if err != nil {
			return plan{}, err
		}
		plans[i] = p
	}

	// Pick the smallest-ranked input as the seed (ties: first written).
	seed := 0
	for i := 1; i < len(plans); i++ {
		if plans[i].rank < plans[seed].rank {
			seed = i
		}
	}
	acc := plans[seed]
	remaining := append(plans[:seed:seed], plans[seed+1:]...)

	for len(remaining) > 0 {
		// Greedy step: among inputs sharing a column with the
		// accumulated schema, take the smallest-ranked.
		best, bestShared := -1, []string(nil)
		for i, p := range remaining {
			shared := sharedCols(acc.rel.Cols, p.rel.Cols)
			if len(shared) == 0 {
				continue
			}
			if best == -1 || p.rank < remaining[best].rank {
				best, bestShared = i, shared
			}
		}
		if best == -1 {
			return plan{}, fmt.Errorf("query: join inputs share no columns with %v (cross joins are not supported)", acc.rel.Cols)
		}
		next := remaining[best]
		remaining = append(remaining[:best:best], remaining[best+1:]...)

		build, probe := acc, next
		if next.rank < acc.rank {
			build, probe = next, acc
		}
		rel, err := HashJoin(build.rel, probe.rel, bestShared)
		if err != nil {
			return plan{}, err
		}
		rank := acc.rank
		if next.rank > rank {
			rank = next.rank
		}
		acc = plan{rel: rel, rank: rank}
	}
	return acc, nil
}

// sharedCols returns the column names present in both schemas, in a's
// order — the natural-join key set.
func sharedCols(a, b []string) []string {
	var out []string
	for _, c := range a {
		if colIndex(b, c) >= 0 {
			out = append(out, c)
		}
	}
	return out
}

// compilePred resolves a predicate tree against a schema.
func compilePred(cols []string, p *Pred) (func(Row) bool, error) {
	if p == nil {
		return nil, fmt.Errorf("query: empty predicate")
	}
	switch p.Op {
	case "and", "or":
		if len(p.Args) == 0 {
			return nil, fmt.Errorf("query: %q requires args", p.Op)
		}
		kids := make([]func(Row) bool, len(p.Args))
		for i, a := range p.Args {
			k, err := compilePred(cols, a)
			if err != nil {
				return nil, err
			}
			kids[i] = k
		}
		if p.Op == "and" {
			return func(r Row) bool {
				for _, k := range kids {
					if !k(r) {
						return false
					}
				}
				return true
			}, nil
		}
		return func(r Row) bool {
			for _, k := range kids {
				if k(r) {
					return true
				}
			}
			return false
		}, nil

	case "not":
		if len(p.Args) != 1 {
			return nil, fmt.Errorf("query: \"not\" requires exactly one arg")
		}
		k, err := compilePred(cols, p.Args[0])
		if err != nil {
			return nil, err
		}
		return func(r Row) bool { return !k(r) }, nil

	case "eq", "ne", "lt", "le", "gt", "ge":
		i := colIndex(cols, p.Col)
		if i < 0 {
			return nil, fmt.Errorf("query: unknown column %q (have %v)", p.Col, cols)
		}
		var rhs func(Row) float64
		switch {
		case p.Col2 != "" && p.Value != nil:
			return nil, fmt.Errorf("query: predicate has both col2 and value")
		case p.Col2 != "":
			j := colIndex(cols, p.Col2)
			if j < 0 {
				return nil, fmt.Errorf("query: unknown column %q (have %v)", p.Col2, cols)
			}
			rhs = func(r Row) float64 { return r[j] }
		case p.Value != nil:
			v := *p.Value
			rhs = func(Row) float64 { return v }
		default:
			return nil, fmt.Errorf("query: predicate %q requires col2 or value", p.Op)
		}
		switch p.Op {
		case "eq":
			return func(r Row) bool { return r[i] == rhs(r) }, nil
		case "ne":
			return func(r Row) bool { return r[i] != rhs(r) }, nil
		case "lt":
			return func(r Row) bool { return r[i] < rhs(r) }, nil
		case "le":
			return func(r Row) bool { return r[i] <= rhs(r) }, nil
		case "gt":
			return func(r Row) bool { return r[i] > rhs(r) }, nil
		default:
			return func(r Row) bool { return r[i] >= rhs(r) }, nil
		}

	default:
		return nil, fmt.Errorf("query: unknown predicate op %q", p.Op)
	}
}
