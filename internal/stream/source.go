package stream

import (
	"errors"
	"math"

	"truthinference/internal/dataset"
)

// This file is the serving-state surface the assignment subsystem
// (internal/assign) scores tasks from: per-task posterior distributions
// and their entropies, worker qualities, and the store/result versions
// that say how fresh they are. The Service satisfies assign.Source
// structurally — neither package imports the other. The same is true of
// the relational query plane: the Service satisfies query.Source
// (internal/query) through the pinned-scan forwarders and
// WorkerQualities below, again with no import in either direction.

// ErrNoPosterior is returned by Posteriors and Entropies when the serving
// method publishes no per-task posterior (the numeric methods Mean and
// Median, and iterative methods without a categorical posterior).
var ErrNoPosterior = errors.New("stream: serving method publishes no task posterior")

// StoreVersion returns the current version of the underlying store (every
// ingested batch bumps it).
func (s *Service) StoreVersion() uint64 { return s.store.Version() }

// Dims returns the store's current task, worker and answer counts.
func (s *Service) Dims() (tasks, workers, answers int) { return s.store.Dims() }

// TaskAnswerCounts returns the per-task answer counts of the underlying
// store (the redundancy each task has already collected).
func (s *Service) TaskAnswerCounts() []int { return s.store.AnswerCounts() }

// NumChoices returns the store's normalized choice count (ℓ for
// categorical stores, 0 for numeric).
func (s *Service) NumChoices() int { return s.store.NumChoices() }

// ForEachAnswer streams every (task, worker) pair currently in the
// store; see Store.ForEachAnswer for the locking contract.
func (s *Service) ForEachAnswer(f func(task, worker int)) { s.store.ForEachAnswer(f) }

// ForEachAnswerValue streams every (task, worker, value) triple currently
// in the store; see Store.ForEachAnswerValue. The assignment ledger's
// defense layer rebuilds golden-gate and correlation state from it.
func (s *Service) ForEachAnswerValue(f func(task, worker int, value float64)) {
	s.store.ForEachAnswerValue(f)
}

// ForEachGolden streams every task with recorded ground truth; see
// Store.ForEachGolden. This is the golden pool the assignment ledger
// grades qualification answers against.
func (s *Service) ForEachGolden(f func(task int, truth float64)) { s.store.ForEachGolden(f) }

// QualityHistoryEpochs bounds the per-epoch worker-quality history the
// service retains for QualityHistory.
const QualityHistoryEpochs = 16

// QualityHistory returns copies of the worker-quality vectors of up to
// the last QualityHistoryEpochs published epochs, oldest first, plus the
// result version of the newest. Incremental methods model workers
// uniformly and publish no epochs, so their history is empty — quality
// change-detection is only meaningful under iterative methods (D&S and
// kin) that actually estimate workers.
func (s *Service) QualityHistory() (hist [][]float64, version uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.qualityHist) == 0 {
		return nil, s.resultVersionLocked()
	}
	hist = make([][]float64, len(s.qualityHist))
	for i, row := range s.qualityHist {
		hist[i] = append([]float64(nil), row...)
	}
	return hist, s.resVersion
}

// Pin returns a consistent (version, answer count) pair for a
// non-materializing pinned read of the underlying store; see Store.Pin.
func (s *Service) Pin() (version uint64, answers int) { return s.store.Pin() }

// Shards returns the underlying store's shard count (the ScanShard
// index space).
func (s *Service) Shards() int { return s.store.Shards() }

// ScanShard streams one shard of the underlying store's pinned answer
// log; see Store.ScanShard for the chunking and locking contract.
func (s *Service) ScanShard(si, pos, beforeIdx int, dst []dataset.Answer) (n, next int, done bool) {
	return s.store.ScanShard(si, pos, beforeIdx, dst)
}

// WorkerQualities returns every worker's quality estimate from the last
// published result alongside the previous published epoch's estimate
// (equal to the current one before a second epoch exists, and for
// workers that joined since), plus the store version the vector
// reflects. The incremental methods model workers uniformly and report
// 1 for both. Iterative methods return ErrNotInferred before their
// first epoch. The pair is what the query plane's worker-quality-drop
// view differences across the epoch boundary.
func (s *Service) WorkerQualities() (cur, prev []float64, version uint64, err error) {
	if s.inc != nil {
		_, workers, _ := s.store.Dims()
		cur = make([]float64, workers)
		prev = make([]float64, workers)
		for i := range cur {
			cur[i], prev[i] = 1, 1
		}
		s.mu.RLock()
		version = s.incVersion
		s.mu.RUnlock()
		return cur, prev, version, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.res == nil {
		return nil, nil, 0, ErrNotInferred
	}
	cur = append([]float64(nil), s.res.WorkerQuality...)
	prev = make([]float64, len(cur))
	n := copy(prev, s.prevQuality)
	// Workers first seen this epoch (and every worker before the second
	// epoch) have no history; their "previous" estimate is the current
	// one, so their delta reads 0 rather than a phantom drop.
	copy(prev[n:], cur[n:])
	return cur, prev, s.resVersion, nil
}

// ResultVersion returns the store version the published inference state
// reflects: the last epoch's snapshot version for iterative methods, the
// always-fresh incremental version for MV/Mean/Median, and 0 before any
// result exists. Consumers caching derived scores (the assignment
// ledger) re-derive when this changes — that is the epoch boundary.
func (s *Service) ResultVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.inc != nil {
		return s.incVersion
	}
	return s.resVersion
}

// Posteriors returns a copy of every task's posterior distribution over
// the choice labels, plus the result version the rows reflect. For the
// incremental MV the posterior is each task's vote-share vector (uniform
// for answer-less tasks); iterative methods serve their last published
// Result.Posterior. Numeric methods return ErrNoPosterior, and iterative
// methods return ErrNotInferred before their first epoch.
func (s *Service) Posteriors() ([][]float64, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.inc != nil {
		if s.inc.method != "MV" {
			return nil, 0, ErrNoPosterior
		}
		ell := s.inc.ell
		out := make([][]float64, len(s.inc.truth))
		for i := range out {
			row := s.inc.counts[i*ell : (i+1)*ell]
			cp := make([]float64, ell)
			var total float64
			for _, c := range row {
				total += c
			}
			if total == 0 {
				u := 1 / float64(ell)
				for k := range cp {
					cp[k] = u
				}
			} else {
				for k, c := range row {
					cp[k] = c / total
				}
			}
			out[i] = cp
		}
		return out, s.incVersion, nil
	}
	if s.res == nil {
		return nil, 0, ErrNotInferred
	}
	if s.res.Posterior == nil {
		return nil, 0, ErrNoPosterior
	}
	out := make([][]float64, len(s.res.Posterior))
	for i, row := range s.res.Posterior {
		out[i] = append([]float64(nil), row...)
	}
	return out, s.resVersion, nil
}

// Entropies returns every task's posterior Shannon entropy (nats) and the
// result version the vector reflects. The vector is cached on the
// service and recomputed only when a new result publishes — the
// epoch-boundary invalidation the assignment ledger relies on — so
// repeated calls between epochs are O(1) copies.
func (s *Service) Entropies() ([]float64, uint64, error) {
	s.mu.RLock()
	if s.entropies != nil && s.entVersion == s.resultVersionLocked() {
		out, v := append([]float64(nil), s.entropies...), s.entVersion
		s.mu.RUnlock()
		return out, v, nil
	}
	s.mu.RUnlock()

	post, version, err := s.Posteriors()
	if err != nil {
		return nil, 0, err
	}
	ent := make([]float64, len(post))
	for i, row := range post {
		ent[i] = Entropy(row)
	}
	s.mu.Lock()
	// Another goroutine may have cached a newer epoch meanwhile; only
	// install if this computation is at least as fresh.
	if s.entropies == nil || version >= s.entVersion {
		s.entropies = ent
		s.entVersion = version
	}
	s.mu.Unlock()
	return append([]float64(nil), ent...), version, nil
}

// resultVersionLocked is ResultVersion with s.mu already held.
func (s *Service) resultVersionLocked() uint64 {
	if s.inc != nil {
		return s.incVersion
	}
	return s.resVersion
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
// Zero-mass entries contribute nothing; a nil or empty row is 0.
func Entropy(p []float64) float64 {
	var h float64
	for _, x := range p {
		if x > 0 {
			h -= x * math.Log(x)
		}
	}
	return h
}
