package stream

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"truthinference/internal/api"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
)

// memPersister is an in-memory DurablePersister: Record buffers, SyncTo
// advances the watermark, and the durable/recorded split is observable.
type memPersister struct {
	mu       sync.Mutex
	recorded uint64
	durable  uint64
	syncs    int
}

func (p *memPersister) Record(version uint64, _ Batch) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.recorded = version
	return nil
}

func (p *memPersister) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.durable = p.recorded
	return nil
}

func (p *memPersister) SyncTo(version uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if version > p.recorded {
		return ErrClosed // cannot flush what was never recorded
	}
	if p.durable < p.recorded {
		p.syncs++
		p.durable = p.recorded
	}
	return nil
}

func (p *memPersister) DurableVersion() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.durable
}

func batchServer(t *testing.T, cfg Config) (*httptest.Server, *Service) {
	t.Helper()
	store, err := NewStore("batch-http", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Method == nil {
		cfg.Method = direct.NewMV()
	}
	svc, err := NewService(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv, svc
}

func postBatchStream(t *testing.T, srv *httptest.Server, batches []Batch) (*http.Response, []byte) {
	t.Helper()
	body, err := EncodeBatchStream(batches)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/ingest-batch", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestIngestBatchEndpoint(t *testing.T) {
	p := &memPersister{}
	srv, _ := batchServer(t, Config{Persist: p})

	batches := []Batch{
		{NumTasks: 4, NumWorkers: 3},
		{Answers: []dataset.Answer{{Task: 0, Worker: 0, Value: 1}, {Task: 1, Worker: 1, Value: 0}}},
		{Answers: []dataset.Answer{{Task: 2, Worker: 2, Value: 1}}, Truth: map[int]float64{2: 1}},
	}
	resp, body := postBatchStream(t, srv, batches)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out api.BatchIngestResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Batches != 3 || out.Ingested != 3 || out.Answers != 3 {
		t.Fatalf("response = %+v", out)
	}
	if out.Version != 3 {
		t.Fatalf("version = %d, want 3", out.Version)
	}
	// The bugfix under test: the ack must state durability explicitly,
	// and with a DurablePersister the whole request must be durable.
	if !out.Durable || out.DurableVersion != out.Version {
		t.Fatalf("durable=%v durable_version=%d, want durable through %d", out.Durable, out.DurableVersion, out.Version)
	}
	if p.syncs != 1 {
		t.Fatalf("syncs = %d, want exactly 1 for a 3-frame request (group commit)", p.syncs)
	}
}

func TestIngestBatchWithoutWALReportsNotDurable(t *testing.T) {
	srv, _ := batchServer(t, Config{})
	resp, body := postBatchStream(t, srv, []Batch{{NumTasks: 1, NumWorkers: 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out api.BatchIngestResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Durable || out.DurableVersion != 0 {
		t.Fatalf("a WAL-less project claimed durability: %+v", out)
	}
}

func TestIngestBatchRejectsGarbage(t *testing.T) {
	srv, _ := batchServer(t, Config{})
	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"empty body", nil, http.StatusBadRequest},
		{"bad magic", []byte("NOTMAGIC"), http.StatusBadRequest},
		{"no frames", []byte(BatchStreamMagic), http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := srv.Client().Post(srv.URL+"/v1/ingest-batch", "application/octet-stream", bytes.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, c.want)
			}
			var env api.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("error response is not the envelope: %v", err)
			}
			if env.Error.Code == "" || env.Error.Message == "" {
				t.Fatalf("envelope incomplete: %+v", env)
			}
		})
	}
}

func TestIngestBatchShedsBeforeCommitting(t *testing.T) {
	srv, svc := batchServer(t, Config{Limits: Limits{RatePerSec: 0.001, Burst: 5}})

	// First request overspends the bucket (6 answers against a burst of
	// 5 — admitted by borrowing, leaving the bucket in debt).
	resp, body := postBatchStream(t, srv, []Batch{
		{NumTasks: 3, NumWorkers: 2},
		{Answers: []dataset.Answer{
			{Task: 0, Worker: 0, Value: 1}, {Task: 1, Worker: 0, Value: 0}, {Task: 2, Worker: 0, Value: 1},
			{Task: 0, Worker: 1, Value: 1}, {Task: 1, Worker: 1, Value: 0}, {Task: 2, Worker: 1, Value: 1},
		}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status = %d: %s", resp.StatusCode, body)
	}
	before := svc.store.Version()

	// Second request must be shed as a unit: 429, Retry-After, and —
	// critically — no frame committed.
	resp, body = postBatchStream(t, srv, []Batch{
		{Answers: []dataset.Answer{{Task: 1, Worker: 1, Value: 0}}},
		{Answers: []dataset.Answer{{Task: 0, Worker: 1, Value: 1}}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != api.CodeRateLimited {
		t.Fatalf("code = %q, want rate_limited", env.Error.Code)
	}
	if got := svc.store.Version(); got != before {
		t.Fatalf("shed request committed data: version %d → %d", before, got)
	}
}

func TestIngestQuotaRejects(t *testing.T) {
	srv, _ := batchServer(t, Config{Limits: Limits{MaxAnswers: 2}})
	resp, body := postBatchStream(t, srv, []Batch{
		{NumTasks: 2, NumWorkers: 2, Answers: []dataset.Answer{{Task: 0, Worker: 0, Value: 1}, {Task: 1, Worker: 1, Value: 0}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("within-quota request: %d: %s", resp.StatusCode, body)
	}
	resp, body = postBatchStream(t, srv, []Batch{
		{Answers: []dataset.Answer{{Task: 0, Worker: 1, Value: 1}}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 without Retry-After")
	}
}

func TestIngestQuotaAllowsMetadataOnlyGrowth(t *testing.T) {
	// Hitting the answer quota must not freeze the board: batches that
	// carry no answers (task/worker growth, golden truth) reserve
	// nothing against MaxAnswers and still commit. Only answer-bearing
	// ingest is refused.
	srv, svc := batchServer(t, Config{Limits: Limits{MaxAnswers: 2}})
	resp, body := postBatchStream(t, srv, []Batch{
		{NumTasks: 2, NumWorkers: 2, Answers: []dataset.Answer{{Task: 0, Worker: 0, Value: 1}, {Task: 1, Worker: 1, Value: 0}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("within-quota request: %d: %s", resp.StatusCode, body)
	}

	// At quota: board growth and golden truth still land.
	resp, body = postBatchStream(t, srv, []Batch{
		{NumTasks: 5, NumWorkers: 3, Truth: map[int]float64{0: 1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metadata-only batch at quota: %d, want 200: %s", resp.StatusCode, body)
	}
	if tasks, workers, _ := svc.Dims(); tasks != 5 || workers != 3 {
		t.Fatalf("board did not grow: %d tasks, %d workers", tasks, workers)
	}

	// Answer-bearing ingest is still refused.
	resp, body = postBatchStream(t, srv, []Batch{
		{Answers: []dataset.Answer{{Task: 2, Worker: 2, Value: 1}}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota answers: %d, want 429: %s", resp.StatusCode, body)
	}
}
