package stream

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"truthinference/internal/dataset"
)

// TestShardedStoreConcurrentStress hammers one sharded store with
// concurrent Ingest / Snapshot / View / Version / TaskValues traffic for
// about a second (shorter under -short) and asserts the consistency
// contract the serving layer depends on:
//
//   - every snapshot is internally consistent: it builds through
//     dataset.New (which validates every answer against the snapshot
//     dims) and its answer count equals the dataset's own bookkeeping;
//   - versions never regress, and a later snapshot never has fewer
//     answers than an earlier one;
//   - after the writers quiesce, the version equals the number of
//     successful ingests and the answer count the number of ingested
//     answers.
//
// The CI race job runs this under -race, turning any unsynchronized
// shard access into a hard failure.
func TestShardedStoreConcurrentStress(t *testing.T) {
	duration := time.Second
	if testing.Short() {
		duration = 200 * time.Millisecond
	}
	const writers = 4
	store, err := NewStoreN("stress", dataset.SingleChoice, 4, writers*2)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ingests, ingestedAnswers atomic.Int64

	// Writers: each owns a disjoint chunk-aligned task range, so their
	// shard sets are disjoint and ingests genuinely run in parallel.
	// Every few batches a writer also grows its range (answer-less
	// declaration batches take the dims-only commit path) and records a
	// truth.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * ShardChunk
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				b := Batch{}
				switch n % 8 {
				case 6: // declaration batch: dims only
					b.NumTasks = base + ShardChunk
					b.NumWorkers = 32
				case 7: // truth batch
					b.Truth = map[int]float64{base + n%ShardChunk: float64(n % 4)}
				default:
					for i := 0; i < 16; i++ {
						b.Answers = append(b.Answers, dataset.Answer{
							Task:   base + (n*16+i)%ShardChunk,
							Worker: (w*7 + i) % 32,
							Value:  float64((n + i) % 4),
						})
					}
				}
				if _, _, err := store.Ingest(b); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				ingests.Add(1)
				ingestedAnswers.Add(int64(len(b.Answers)))
			}
		}(w)
	}

	// Snapshot readers: consistency + monotonicity.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			var lastAnswers int
			for {
				select {
				case <-stop:
					return
				default:
				}
				d, v := store.Snapshot() // panics internally if torn
				if v < lastVersion {
					t.Errorf("snapshot version regressed: %d after %d", v, lastVersion)
					return
				}
				if len(d.Answers) < lastAnswers {
					t.Errorf("snapshot answers regressed: %d after %d", len(d.Answers), lastAnswers)
					return
				}
				lastVersion, lastAnswers = v, len(d.Answers)
			}
		}()
	}

	// A View reader and a lock-free metadata reader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			store.View(func(d *dataset.Dataset) {
				if d.NumTasks > 0 {
					_ = store.TaskValues(d.NumTasks - 1)
				}
			})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastVersion uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v := store.Version(); v < lastVersion {
				t.Errorf("Version() regressed: %d after %d", v, lastVersion)
				return
			} else {
				lastVersion = v
			}
			store.Dims()
			_ = store.TaskValues(0)
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	d, version := store.Snapshot()
	if version != uint64(ingests.Load()) {
		t.Errorf("final version %d, want %d (one per successful ingest)", version, ingests.Load())
	}
	if int64(len(d.Answers)) != ingestedAnswers.Load() {
		t.Errorf("final store holds %d answers, ingests appended %d", len(d.Answers), ingestedAnswers.Load())
	}
	tasks, workers, answers := store.Dims()
	if answers != len(d.Answers) || tasks != d.NumTasks || workers != d.NumWorkers {
		t.Errorf("quiescent Dims (%d/%d/%d) disagree with snapshot (%d/%d/%d)",
			tasks, workers, answers, d.NumTasks, d.NumWorkers, len(d.Answers))
	}
}
