package stream

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"truthinference/internal/core"
	"truthinference/internal/engine"
)

// ErrNotInferred is returned by query methods before the first inference
// epoch has published a result.
var ErrNotInferred = errors.New("stream: no inference result published yet — ingest answers and refresh")

// ErrClosed is returned by Ingest and Refresh on a service that has been
// (or is being) closed — e.g. a multi-tenant project deleted while a
// request for it was in flight. Reads keep serving the last published
// result; only mutation and epoch work is rejected.
var ErrClosed = errors.New("stream: service is closed")

// Config parameterizes a Service.
type Config struct {
	// Method is the truth-inference method to serve.
	Method core.Method
	// Options is the base inference configuration applied every epoch
	// (seed, iteration cap, tolerance, parallelism). Pool and WarmStart
	// are managed by the service and must be left unset.
	Options core.Options
	// ColdStart disables warm-start seeding, re-running every epoch from
	// cold initialization. It exists for baselines and debugging; the
	// default (warm) is strictly faster on converged streams.
	ColdStart bool
	// AutoRefresh triggers a background re-inference after every ingested
	// batch (coalesced: at most one inference runs at a time, and a batch
	// arriving mid-run schedules exactly one follow-up). When false the
	// caller drives refreshes explicitly.
	AutoRefresh bool
	// Persist, when non-nil, receives every committed batch in ingestion
	// order (a write-ahead log — see internal/stream/wal) and is flushed
	// on epoch boundaries and on Close. A Record failure is fail-stop:
	// the failing Ingest returns the error (the batch is applied in
	// memory but not durably logged) and every later Ingest is rejected,
	// because recording any further batch would leave a version gap in
	// the log that recovery must treat as corruption.
	Persist Persister
	// Limits is the ingest admission policy the HTTP handlers enforce
	// (rate and quota rejections shed load with 429 + Retry-After). The
	// zero value admits everything. Direct Ingest calls bypass it: WAL
	// replay and in-process pipelines are not tenant traffic.
	Limits Limits
	// Metrics, when non-nil, receives admission, epoch, and incremental
	// fold observations (see NewMetrics). Nil disables instrumentation
	// at the cost of one branch per event.
	Metrics *Metrics
}

// Persister is the durability hook a Service drives: Record appends one
// committed batch (tagged with the store version it produced) to a
// write-ahead log, Sync makes everything recorded so far durable.
// internal/stream/wal provides the file-backed implementation; the
// version tags let recovery replay a WAL on top of a compacted snapshot
// idempotently.
type Persister interface {
	Record(version uint64, b Batch) error
	Sync() error
}

// DurablePersister is the optional group-commit side of a Persister.
// SyncTo blocks until every record through version is on stable storage
// — concurrent callers coalesce into one fsync — and DurableVersion
// reports the watermark already durable, letting ingest responses state
// exactly how much of what they acknowledged would survive a crash.
// wal.Persister implements it.
type DurablePersister interface {
	Persister
	SyncTo(version uint64) error
	DurableVersion() uint64
}

// Service multiplexes concurrent readers against streaming ingestion and
// background re-inference for one method over one Store. Reads always
// serve the last published result — possibly a few versions stale while
// an EM run is in flight — and report the exact store version they
// reflect. Methods with an exact incremental path (MV, Mean, Median)
// bypass re-inference entirely: ingestion folds each delta into the
// maintained statistics in O(delta) and reads are always fresh.
type Service struct {
	store   *Store
	method  core.Method
	cfg     Config
	pool    *engine.Pool // persistent; reused by every epoch's hot loops
	inc     *incremental // non-nil for MV/Mean/Median
	limiter *Limiter     // nil unless cfg.Limits configures a rate

	ingestMu   sync.Mutex // serializes Ingest (store append + incremental fold + WAL record)
	persistErr error      // first Record failure; halts ingestion (guarded by ingestMu)

	inferMu  sync.Mutex // serializes Refresh epochs
	needSync bool       // an epoch-boundary WAL flush is outstanding (guarded by inferMu)
	queued   atomic.Bool
	bg       sync.WaitGroup // tracks in-flight background refreshes so Close can drain them

	// closing flips before Close drains: Ingest and Refresh reject with
	// ErrClosed from that point on, so no new epoch can be scheduled onto
	// the worker pool Close is about to release.
	closing atomic.Bool

	mu         sync.RWMutex // guards the published state below
	res        *core.Result
	resVersion uint64
	incVersion uint64 // store version the incremental state reflects
	epochs     int
	lastInfer  time.Duration
	lastErr    error // most recent epoch failure; nil after a success
	closed     bool

	// entropies caches per-task posterior entropies for the result at
	// entVersion; Entropies recomputes it lazily when a newer result
	// publishes (the epoch-boundary invalidation — see source.go).
	entropies  []float64
	entVersion uint64

	// prevQuality is the previous published epoch's worker-quality
	// vector, retained when a new result replaces it so the query
	// plane's worker-quality-drop view can compare across the epoch
	// boundary (guarded by mu; nil before the second epoch).
	prevQuality []float64

	// qualityHist retains the worker-quality vector of each of the last
	// QualityHistoryEpochs published epochs, oldest first (guarded by
	// mu). The assignment ledger's change-detection defense reads it
	// through QualityHistory to spot sleepers — workers whose estimated
	// quality collapses mid-stream after a trustworthy start.
	qualityHist [][]float64

	// quotaReserved is headroom claimed against Limits.MaxAnswers by
	// admitted-but-not-yet-committed requests. Admission reserves it
	// atomically and releases it once the ingest's outcome is in the
	// store's answer count (or the ingest failed), so concurrent
	// requests can never jointly commit past the quota. See admit.
	quotaReserved atomic.Int64
}

// NewService builds a service for the given method over the store. The
// service owns a persistent worker pool sized from cfg.Options and keeps
// it across epochs; Close releases it.
func NewService(store *Store, cfg Config) (*Service, error) {
	if cfg.Method == nil {
		return nil, errors.New("stream: Config.Method is required")
	}
	if cfg.Options.Pool != nil || cfg.Options.WarmStart != nil {
		return nil, errors.New("stream: Config.Options.Pool and WarmStart are service-managed")
	}
	// Reject method/store type mismatches up front. The batch path would
	// surface this through core.CheckSupport on the first epoch, but the
	// incremental path never calls Infer — MV over a numeric store would
	// otherwise blow up mid-ingest instead of failing at construction.
	if typ := store.TaskType(); !cfg.Method.Capabilities().SupportsType(typ) {
		return nil, fmt.Errorf("stream: %s does not support %s stores", cfg.Method.Name(), typ)
	}
	s := &Service{
		store:   store,
		method:  cfg.Method,
		cfg:     cfg,
		pool:    engine.NewPersistent(cfg.Options.Workers()),
		limiter: NewLimiter(cfg.Limits),
	}
	if incrementalMethods[cfg.Method.Name()] {
		// Fold whatever the store already holds (a preloaded benchmark
		// file, or a recovered snapshot+WAL replay) into the incremental
		// statistics, so the state always reflects answers
		// [0, len(d.Answers)). One snapshot at construction, O(delta)
		// forever after.
		snap, version := store.Snapshot()
		s.inc = newIncremental(cfg.Method.Name(), cfg.Options.Seed, snap.NumChoices)
		s.inc.applyDataset(snap)
		s.incVersion = version
	}
	return s, nil
}

// Ingest applies one batch to the store, records it in the write-ahead
// log when one is configured, and, for incremental methods, folds it
// into the maintained statistics in O(delta). With AutoRefresh set,
// iterative methods schedule a coalesced background re-inference.
func (s *Service) Ingest(b Batch) (uint64, error) {
	s.ingestMu.Lock()
	if s.closing.Load() {
		s.ingestMu.Unlock()
		return 0, ErrClosed
	}
	if s.persistErr != nil {
		// A batch is in memory but missing from the WAL; logging any
		// further batch would leave a version gap recovery reads as
		// corruption, so the stream is halted.
		err := fmt.Errorf("stream: ingestion halted, write-ahead log has a gap: %w", s.persistErr)
		s.ingestMu.Unlock()
		return 0, err
	}
	version, _, err := s.store.Ingest(b)
	if err != nil {
		s.ingestMu.Unlock()
		return 0, err
	}
	if s.inc != nil {
		// Fold the delta under the published-state lock so readers never
		// observe counts and labels from different points in the stream;
		// incVersion advances in the same critical section, so a served
		// version always has its delta folded in. The delta is exactly
		// this batch's answers (ingestMu serializes service writes), and
		// Median re-reads touched tasks through the owning shard only.
		tasks, _, _ := s.store.Dims()
		s.mu.Lock()
		s.inc.apply(b.Answers, tasks, s.store.TaskValues)
		s.incVersion = version
		s.mu.Unlock()
		s.cfg.Metrics.observeFolded(len(b.Answers))
	}
	if s.cfg.Persist != nil {
		// Recorded under ingestMu so WAL order always matches version
		// order — recovery replays records sequentially.
		if err := s.cfg.Persist.Record(version, b); err != nil {
			s.persistErr = err
			s.ingestMu.Unlock()
			return version, fmt.Errorf("stream: batch at version %d applied in memory but not durably logged: %w", version, err)
		}
	}
	if s.inc == nil && s.cfg.AutoRefresh {
		// Scheduled while ingestMu is still held: Close flips closing
		// under the same lock, so every bg.Add here is strictly ordered
		// before Close's bg.Wait — the Add-concurrent-with-Wait panic
		// cannot happen.
		s.refreshAsync()
	}
	s.ingestMu.Unlock()
	return version, nil
}

// IngestDurable applies one batch like Ingest, then blocks until the
// produced version is on stable storage, returning both the committed
// version and the durable watermark at return time. The flush runs
// outside the ingest lock, so concurrent callers coalesce into shared
// fsyncs (group commit) instead of stalling each other's commits.
// Without a DurablePersister configured, durable is false and the
// watermark 0 — the caller is acknowledging data that would not
// survive a crash, and must say so.
func (s *Service) IngestDurable(b Batch) (version, durableVersion uint64, durable bool, err error) {
	version, err = s.Ingest(b)
	if err != nil {
		return version, 0, false, err
	}
	durableVersion, durable, err = s.DurableTo(version)
	if err != nil {
		err = fmt.Errorf("stream: batch at version %d applied but not confirmed durable: %w", version, err)
	}
	return version, durableVersion, durable, err
}

// DurableTo blocks until every committed batch through version is on
// stable storage and returns the durable watermark. durable is false
// when no DurablePersister is configured — there is no stable storage
// to wait for, and the caller must report that honestly.
func (s *Service) DurableTo(version uint64) (durableVersion uint64, durable bool, err error) {
	dp, ok := s.cfg.Persist.(DurablePersister)
	if !ok {
		return 0, false, nil
	}
	if err := dp.SyncTo(version); err != nil {
		return dp.DurableVersion(), true, err
	}
	return dp.DurableVersion(), true, nil
}

// refreshAsync schedules a coalesced background refresh: at most one
// epoch runs at a time, and any number of batches arriving during a
// running epoch collapse into exactly one follow-up (the queued flag is
// held until the follow-up owns inferMu, so its snapshot covers them
// all). Epoch errors are retained in Stats.LastError.
func (s *Service) refreshAsync() {
	if !s.queued.CompareAndSwap(false, true) {
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		s.inferMu.Lock()
		s.queued.Store(false)
		if s.closing.Load() {
			// Close won the inferMu race; the pool is (about to be)
			// released, so this late refresh must not run an epoch.
			s.inferMu.Unlock()
			return
		}
		err := s.refreshLocked()
		s.inferMu.Unlock()
		s.mu.Lock()
		s.lastErr = err
		s.mu.Unlock()
	}()
}

// Refresh runs one inference epoch over a snapshot of the store and
// publishes the result. Iterative methods resume from the previous
// epoch's posterior (unless ColdStart); MV/Mean/Median are always fresh
// and return immediately. Refresh is a no-op when the published result
// already reflects the latest store version.
func (s *Service) Refresh() error {
	if s.closing.Load() {
		return ErrClosed
	}
	if s.inc != nil {
		// No epochs to run, but an explicit refresh is still a durability
		// boundary: flush the WAL so everything served is also on disk.
		// The flush deliberately runs without ingestMu (an fsync must not
		// stall the O(delta) ingest hot path); if it fails because Close
		// won the race and closed the persister, report ErrClosed rather
		// than the persister's own error.
		if s.cfg.Persist != nil {
			if err := s.cfg.Persist.Sync(); err != nil {
				if s.closing.Load() {
					return ErrClosed
				}
				return err
			}
		}
		return nil
	}
	s.inferMu.Lock()
	defer s.inferMu.Unlock()
	if s.closing.Load() {
		// Checked under inferMu: once Close holds this lock and releases
		// it, no later Refresh may touch the released worker pool.
		return ErrClosed
	}
	err := s.refreshLocked()
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
	return err
}

// refreshLocked runs one epoch; the caller holds inferMu.
func (s *Service) refreshLocked() error {
	s.mu.RLock()
	prev, prevVersion := s.res, s.resVersion
	s.mu.RUnlock()
	// Freshness is checked before the O(answers) snapshot clone so no-op
	// refreshes cost nothing. A version bump between this check and the
	// snapshot only makes the epoch serve newer data, never older. A
	// fresh result still retries a failed epoch-boundary flush — Refresh
	// is a documented durability boundary, so it must not report success
	// while a Sync is outstanding.
	if prev != nil && prevVersion == s.store.Version() {
		return s.flushLocked()
	}
	snap, version := s.store.Snapshot()

	opts := s.cfg.Options
	opts.Pool = s.pool
	if !s.cfg.ColdStart && prev != nil {
		opts.WarmStart = prev.Warm()
	}
	start := time.Now()
	res, err := s.method.Infer(snap, opts)
	if err != nil {
		return fmt.Errorf("stream: %s epoch failed: %w", s.method.Name(), err)
	}
	elapsed := time.Since(start)
	s.cfg.Metrics.observeEpoch(elapsed, opts.WarmStart != nil)

	s.mu.Lock()
	if s.res != nil {
		s.prevQuality = append(s.prevQuality[:0], s.res.WorkerQuality...)
	}
	s.res = res
	s.resVersion = version
	s.epochs++
	s.lastInfer = elapsed
	if len(res.WorkerQuality) > 0 {
		s.qualityHist = append(s.qualityHist, append([]float64(nil), res.WorkerQuality...))
		if len(s.qualityHist) > QualityHistoryEpochs {
			s.qualityHist = s.qualityHist[len(s.qualityHist)-QualityHistoryEpochs:]
		}
	}
	s.mu.Unlock()

	// Epoch boundary: everything the published result reflects is now
	// flushed to the write-ahead log, so a crash after this point
	// recovers at least as much data as the result served.
	s.needSync = true
	return s.flushLocked()
}

// flushLocked performs the pending epoch-boundary WAL flush (the caller
// holds inferMu, which also guards needSync). The flag stays set until a
// Sync succeeds, so a transient fsync failure is retried by the next
// Refresh instead of being reported once and then silently dropped.
func (s *Service) flushLocked() error {
	if s.cfg.Persist == nil || !s.needSync {
		return nil
	}
	if err := s.cfg.Persist.Sync(); err != nil {
		return fmt.Errorf("stream: WAL flush at epoch boundary: %w", err)
	}
	s.needSync = false
	return nil
}

// TruthInfo is one task's served inference output.
type TruthInfo struct {
	Task       int
	Truth      float64
	Confidence float64 // posterior mass on the served label; NaN if unavailable
	Version    uint64  // store version the value reflects
}

// Truth returns the inferred truth of one task from the last published
// result.
func (s *Service) Truth(task int) (TruthInfo, error) {
	if s.inc != nil {
		return s.incTruth(task)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.res == nil {
		return TruthInfo{}, ErrNotInferred
	}
	if task < 0 || task >= len(s.res.Truth) {
		return TruthInfo{}, fmt.Errorf("stream: task %d outside the inferred range [0,%d)", task, len(s.res.Truth))
	}
	info := TruthInfo{Task: task, Truth: s.res.Truth[task], Confidence: math.NaN(), Version: s.resVersion}
	if s.res.Posterior != nil && task < len(s.res.Posterior) {
		label := int(s.res.Truth[task])
		row := s.res.Posterior[task]
		if label >= 0 && label < len(row) {
			info.Confidence = row[label]
		}
	}
	return info, nil
}

// incTruth serves a task from the always-fresh incremental state.
// incVersion (not the live store version) is reported, so the version a
// response carries always has its delta folded into the served truth.
func (s *Service) incTruth(task int) (TruthInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if task < 0 || task >= len(s.inc.truth) {
		return TruthInfo{}, fmt.Errorf("stream: task %d outside the ingested range [0,%d)", task, len(s.inc.truth))
	}
	return TruthInfo{
		Task:       task,
		Truth:      s.inc.truth[task],
		Confidence: s.inc.confidence(task),
		Version:    s.incVersion,
	}, nil
}

// Truths returns a copy of every inferred truth and the store version the
// vector reflects.
func (s *Service) Truths() ([]float64, uint64, error) {
	if s.inc != nil {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return append([]float64(nil), s.inc.truth...), s.incVersion, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.res == nil {
		return nil, 0, ErrNotInferred
	}
	return append([]float64(nil), s.res.Truth...), s.resVersion, nil
}

// WorkerQuality returns the estimated quality of one worker (on the
// serving method's scale).
func (s *Service) WorkerQuality(worker int) (float64, error) {
	if s.inc != nil {
		_, workers, _ := s.store.Dims()
		if worker < 0 || worker >= workers {
			return 0, fmt.Errorf("stream: worker %d outside [0,%d)", worker, workers)
		}
		return 1, nil // direct methods report uniform quality
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.res == nil {
		return 0, ErrNotInferred
	}
	if worker < 0 || worker >= len(s.res.WorkerQuality) {
		return 0, fmt.Errorf("stream: worker %d outside the inferred range [0,%d)", worker, len(s.res.WorkerQuality))
	}
	return s.res.WorkerQuality[worker], nil
}

// PersistStats describes the durability layer's live state, for
// operators verifying at runtime that the WAL and snapshot compaction
// are configured and healthy. The wal.Persister implements PersistStatter
// to supply it.
type PersistStats struct {
	// SinceSnapshot is the number of WAL records appended since the last
	// successful snapshot compaction (what a crash right now would replay).
	SinceSnapshot int `json:"records_since_snapshot"`
	// Compacting reports an in-flight background snapshot compaction.
	Compacting bool `json:"compacting"`
	// DurableVersion is the highest store version known to be on stable
	// storage (see DurablePersister).
	DurableVersion uint64 `json:"durable_version"`
	// CompactError is the last failed compaction still pending retry.
	CompactError string `json:"compact_error,omitempty"`
}

// PersistStatter is the optional introspection side of a Persister; when
// the configured Persister implements it, Stats reports the durability
// state under the "wal" key.
type PersistStatter interface {
	PersistStats() PersistStats
}

// Stats summarizes the store and the serving state (also the JSON shape
// of GET /v1/stats).
type Stats struct {
	// Name identifies the store being served — the project id in a
	// multi-tenant daemon — so aggregated per-tenant stats are
	// self-describing.
	Name    string `json:"name"`
	Method  string `json:"method"`
	Tasks   int    `json:"tasks"`
	Workers int    `json:"workers"`
	Answers int    `json:"answers"`
	// Shards is the store's partition count (contention tuning only;
	// state is shard-count independent).
	Shards       int    `json:"shards"`
	StoreVersion uint64 `json:"store_version"`
	// ResultVersion is the store version the served truths reflect;
	// equal to StoreVersion when fresh.
	ResultVersion uint64 `json:"result_version"`
	Fresh         bool   `json:"fresh"`
	Epochs        int    `json:"epochs"`
	Iterations    int    `json:"iterations"`
	Converged     bool   `json:"converged"`
	WarmStart     bool   `json:"warm_start"`
	Incremental   bool   `json:"incremental"`
	// Durable reports whether a write-ahead log is attached; WAL carries
	// its live status when the Persister exposes one.
	Durable     bool          `json:"durable"`
	WAL         *PersistStats `json:"wal,omitempty"`
	LastInferMS float64       `json:"last_infer_ms"`
	// LastError reports the most recent failed epoch (empty after a
	// success) — the only place a background auto-refresh failure
	// surfaces.
	LastError string `json:"last_error,omitempty"`
}

// Stats returns a consistent snapshot of the serving state.
func (s *Service) Stats() Stats {
	tasks, workers, answers := s.store.Dims()
	storeVersion := s.store.Version()
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Name:         s.store.Name(),
		Method:       s.method.Name(),
		Tasks:        tasks,
		Workers:      workers,
		Answers:      answers,
		Shards:       s.store.Shards(),
		StoreVersion: storeVersion,
		WarmStart:    !s.cfg.ColdStart,
		Incremental:  s.inc != nil,
		Durable:      s.cfg.Persist != nil,
	}
	if ps, ok := s.cfg.Persist.(PersistStatter); ok {
		w := ps.PersistStats()
		st.WAL = &w
	}
	if s.inc != nil {
		st.ResultVersion = s.incVersion
		st.Fresh = s.incVersion == storeVersion
		st.Epochs = s.epochs
		st.Iterations = 1
		st.Converged = true
		return st
	}
	st.ResultVersion = s.resVersion
	st.Fresh = s.res != nil && s.resVersion == storeVersion
	st.Epochs = s.epochs
	if s.res != nil {
		st.Iterations = s.res.Iterations
		st.Converged = s.res.Converged
	}
	st.LastInferMS = float64(s.lastInfer.Microseconds()) / 1000
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	return st
}

// Close drains any in-flight background refresh (the epoch finishes and
// publishes), flushes the write-ahead log, and releases the service's
// persistent worker pool. A non-nil error means the final WAL flush
// failed — batches acknowledged since the last successful Sync may not
// be on disk. Close is idempotent, and from the moment it is called
// Ingest and Refresh reject with ErrClosed while reads keep serving the
// last published result — so a multi-tenant registry can delete a
// project out from under in-flight requests without tearing anything.
func (s *Service) Close() error {
	// closing flips under ingestMu: an Ingest that already passed its
	// closing check has also already done its bg.Add (both happen inside
	// the same critical section), so bg.Wait below can never race a
	// concurrent bg.Add from zero.
	s.ingestMu.Lock()
	s.closing.Store(true)
	s.ingestMu.Unlock()
	s.bg.Wait()
	s.inferMu.Lock()
	defer s.inferMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.cfg.Persist != nil {
		if serr := s.cfg.Persist.Sync(); serr != nil {
			err = fmt.Errorf("stream: final WAL flush on Close: %w", serr)
		}
	}
	s.pool.Close()
	return err
}
