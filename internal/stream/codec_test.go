package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"truthinference/internal/dataset"
)

func codecBatch(nAns int) Batch {
	b := Batch{NumTasks: 10, NumWorkers: 5, Truth: map[int]float64{2: 1, 7: 0}}
	for i := 0; i < nAns; i++ {
		b.Answers = append(b.Answers, dataset.Answer{
			Task:   i % 10,
			Worker: i % 5,
			Value:  float64(i%2) + 0.5*float64(i%3),
		})
	}
	return b
}

func TestBatchPayloadRoundTrip(t *testing.T) {
	cases := []Batch{
		{},
		{NumTasks: 3, NumWorkers: 2},
		codecBatch(1),
		codecBatch(257),
		{Answers: []dataset.Answer{{Task: 0, Worker: 0, Value: math.Inf(1)}}},
	}
	for i, b := range cases {
		payload := AppendBatchPayload(nil, b)
		got, err := DecodeBatchPayload(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		// Canonicalize: decode never produces empty non-nil slices/maps.
		want := b
		if len(want.Answers) == 0 {
			want.Answers = nil
		}
		if len(want.Truth) == 0 {
			want.Truth = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestDecodeBatchPayloadRejectsDamage(t *testing.T) {
	payload := AppendBatchPayload(nil, codecBatch(4))

	if _, err := DecodeBatchPayload(payload[:len(payload)-3]); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, err := DecodeBatchPayload(append(append([]byte{}, payload...), 0xff)); err == nil {
		t.Error("trailing bytes decoded without error")
	}
	// A huge declared answer count must be rejected before allocation.
	huge := binary.AppendUvarint(nil, 0)     // NumTasks
	huge = binary.AppendUvarint(huge, 0)     // NumWorkers
	huge = binary.AppendUvarint(huge, 1<<40) // answer count
	if _, err := DecodeBatchPayload(huge); err == nil {
		t.Error("oversized answer count decoded without error")
	}
}

func TestBatchStreamRoundTrip(t *testing.T) {
	batches := []Batch{codecBatch(3), {NumTasks: 1, NumWorkers: 1}, codecBatch(100)}
	body, err := EncodeBatchStream(batches)
	if err != nil {
		t.Fatal(err)
	}
	var got []Batch
	n, err := ReadBatchStream(bytes.NewReader(body), func(b Batch) error {
		got = append(got, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(batches) {
		t.Fatalf("frames = %d, want %d", n, len(batches))
	}
	for i := range batches {
		if len(got[i].Answers) != len(batches[i].Answers) ||
			got[i].NumTasks != batches[i].NumTasks {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestBatchStreamEmpty(t *testing.T) {
	n, err := ReadBatchStream(bytes.NewReader([]byte(BatchStreamMagic)), func(Batch) error {
		t.Fatal("fn called on empty stream")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("empty stream: n=%d err=%v", n, err)
	}
}

func TestBatchStreamRejectsDamage(t *testing.T) {
	body, err := EncodeBatchStream([]Batch{codecBatch(3)})
	if err != nil {
		t.Fatal(err)
	}
	noop := func(Batch) error { return nil }

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, body...)
		bad[0] ^= 0xff
		if _, err := ReadBatchStream(bytes.NewReader(bad), noop); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("missing magic", func(t *testing.T) {
		if _, err := ReadBatchStream(bytes.NewReader(nil), noop); err == nil {
			t.Fatal("empty body accepted")
		}
	})
	t.Run("crc mismatch", func(t *testing.T) {
		bad := append([]byte{}, body...)
		bad[len(bad)-1] ^= 0xff
		if _, err := ReadBatchStream(bytes.NewReader(bad), noop); err == nil {
			t.Fatal("flipped payload byte accepted")
		}
	})
	t.Run("torn header", func(t *testing.T) {
		if _, err := ReadBatchStream(bytes.NewReader(body[:len(BatchStreamMagic)+3]), noop); err == nil {
			t.Fatal("torn header accepted")
		}
	})
	t.Run("torn payload", func(t *testing.T) {
		if _, err := ReadBatchStream(bytes.NewReader(body[:len(body)-2]), noop); err == nil {
			t.Fatal("torn payload accepted")
		}
	})
	t.Run("oversized frame", func(t *testing.T) {
		bad := []byte(BatchStreamMagic)
		bad = binary.LittleEndian.AppendUint32(bad, MaxFramePayload+1)
		bad = binary.LittleEndian.AppendUint32(bad, 0)
		_, err := ReadBatchStream(bytes.NewReader(bad), noop)
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("fn error propagates", func(t *testing.T) {
		boom := errors.New("boom")
		if _, err := ReadBatchStream(bytes.NewReader(body), func(Batch) error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	})
	t.Run("reader error propagates", func(t *testing.T) {
		boom := errors.New("cap hit")
		r := io.MultiReader(bytes.NewReader(body[:len(body)-1]), errReader{boom})
		if _, err := ReadBatchStream(r, noop); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want cap hit", err)
		}
	})
}

type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }
