package stream

import (
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/methods/ds"
	"truthinference/internal/methods/zc"
	"truthinference/internal/simulate"
)

// benchEpoch measures one re-inference epoch after a 20% answer delta:
// cold from scratch versus warm-started from the previous posterior —
// the steady-state cost profile of the serving daemon.
func benchEpoch(b *testing.B, m core.Method) {
	full := simulate.GenerateScaled(simulate.DProduct, 7, 0.15)
	prefix, err := dataset.New(full.Name, full.Type, full.NumChoices,
		full.NumTasks, full.NumWorkers,
		full.Answers[:len(full.Answers)*4/5], full.Truth)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Seed: 11}
	prev, err := m.Infer(prefix, opts)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Infer(full, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		warm := opts
		warm.WarmStart = prev.Warm()
		for i := 0; i < b.N; i++ {
			if _, err := m.Infer(full, warm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStreamEpochDS(b *testing.B) { benchEpoch(b, ds.New()) }
func BenchmarkStreamEpochZC(b *testing.B) { benchEpoch(b, zc.New()) }

// BenchmarkIncrementalIngest measures the O(delta) path: folding one
// 100-answer batch into a live MV service.
func BenchmarkIncrementalIngest(b *testing.B) {
	full := simulate.GenerateScaled(simulate.DProduct, 7, 0.15)
	const batch = 100
	store, err := NewStore(full.Name, full.Type, full.NumChoices)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := NewService(store, Config{Method: direct.NewMV(), Options: core.Options{Seed: 11}})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Ingest(Batch{NumTasks: full.NumTasks, NumWorkers: full.NumWorkers}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * batch) % (len(full.Answers) - batch)
		if _, err := svc.Ingest(Batch{Answers: full.Answers[lo : lo+batch]}); err != nil {
			b.Fatal(err)
		}
	}
}
