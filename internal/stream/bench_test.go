package stream

import (
	"fmt"
	"sync"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/methods/ds"
	"truthinference/internal/methods/zc"
	"truthinference/internal/simulate"
)

// benchEpoch measures one re-inference epoch after a 20% answer delta:
// cold from scratch versus warm-started from the previous posterior —
// the steady-state cost profile of the serving daemon.
func benchEpoch(b *testing.B, m core.Method) {
	full := simulate.GenerateScaled(simulate.DProduct, 7, 0.15)
	prefix, err := dataset.New(full.Name, full.Type, full.NumChoices,
		full.NumTasks, full.NumWorkers,
		full.Answers[:len(full.Answers)*4/5], full.Truth)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Seed: 11}
	prev, err := m.Infer(prefix, opts)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Infer(full, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		warm := opts
		warm.WarmStart = prev.Warm()
		for i := 0; i < b.N; i++ {
			if _, err := m.Infer(full, warm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStreamEpochDS(b *testing.B) { benchEpoch(b, ds.New()) }
func BenchmarkStreamEpochZC(b *testing.B) { benchEpoch(b, zc.New()) }

// BenchmarkIncrementalIngest measures the O(delta) path: folding one
// 100-answer batch into a live MV service.
func BenchmarkIncrementalIngest(b *testing.B) {
	full := simulate.GenerateScaled(simulate.DProduct, 7, 0.15)
	const batch = 100
	store, err := NewStore(full.Name, full.Type, full.NumChoices)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := NewService(store, Config{Method: direct.NewMV(), Options: core.Options{Seed: 11}})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Ingest(Batch{NumTasks: full.NumTasks, NumWorkers: full.NumWorkers}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * batch) % (len(full.Answers) - batch)
		if _, err := svc.Ingest(Batch{Answers: full.Answers[lo : lo+batch]}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedIngest measures concurrent ingest throughput at
// increasing shard counts — shards=1 is the single-lock baseline the
// pre-sharding store was equivalent to. Four writers each own a
// disjoint chunk-aligned task range (disjoint shard sets at ≥4 shards),
// and one op is the four of them pushing a fixed batch schedule into a
// fresh store, so the number reads as wall-clock per fixed workload:
// lower at higher shard counts = the per-shard locking is paying off.
func BenchmarkShardedIngest(b *testing.B) {
	const (
		writers         = 4
		batchesPerWrite = 32
		perBatch        = 64
		numWorkers      = 64
	)
	// Pre-build every writer's batch schedule once: writer w answers
	// tasks [w*ShardChunk, (w+1)*ShardChunk).
	schedules := make([][]Batch, writers)
	for w := range schedules {
		base := w * ShardChunk
		for n := 0; n < batchesPerWrite; n++ {
			batch := Batch{Answers: make([]dataset.Answer, perBatch)}
			for i := range batch.Answers {
				batch.Answers[i] = dataset.Answer{
					Task:   base + (n*perBatch+i)%ShardChunk,
					Worker: (w*13 + n + i) % numWorkers,
					Value:  float64((n + i) % 4),
				}
			}
			schedules[w] = append(schedules[w], batch)
		}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store, err := NewStoreN("bench", dataset.SingleChoice, 4, shards)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := store.Ingest(Batch{NumTasks: writers * ShardChunk, NumWorkers: numWorkers}); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()

				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for _, batch := range schedules[w] {
							if _, _, err := store.Ingest(batch); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			}
		})
	}
}
