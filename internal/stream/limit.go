package stream

import (
	"errors"
	"sync"
	"time"
)

// Limits is a tenant's ingest admission policy. Zero values disable
// each control, so the zero Limits admits everything.
type Limits struct {
	// RatePerSec is the sustained admission rate in answers per second
	// (0 = unlimited). Batches are charged by their answer count, so a
	// 1000-answer batch spends 1000 tokens.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the token-bucket capacity in answers (0 = one second's
	// worth of rate, minimum 1). Bursts above it are admitted by
	// borrowing against future refill rather than starved forever.
	Burst int `json:"burst,omitempty"`
	// MaxAnswers caps the store's total answer count — the tenant's
	// lifetime quota (0 = unlimited).
	MaxAnswers int `json:"max_answers,omitempty"`
}

// Enabled reports whether any control is active.
func (l Limits) Enabled() bool { return l.RatePerSec > 0 || l.MaxAnswers > 0 }

// ErrRateLimited and ErrQuotaExceeded classify admission rejections;
// both surface as 429 + Retry-After on the wire.
var (
	ErrRateLimited   = errors.New("stream: ingest rate limit exceeded")
	ErrQuotaExceeded = errors.New("stream: answer quota exhausted")
)

// QuotaRetryAfter is the Retry-After hint for quota rejections. The
// quota does not refill on its own — the hint is "come back after an
// operator raised it", not a token-bucket wait — but every 429 carries
// a Retry-After so clients need only one backoff path.
const QuotaRetryAfter = 60 * time.Second

// Limiter is a token-bucket admission controller charged in answers.
// A nil Limiter admits everything. Admission uses a borrowing bucket:
// a request is admitted whenever the bucket is positive, and its full
// cost is deducted even when that drives the bucket negative — so one
// batch larger than the burst capacity is admitted (then paid off by
// refill time) instead of being rejected forever, while the sustained
// rate still converges to RatePerSec.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens (answers) per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

// NewLimiter builds a Limiter for the rate half of l, or nil when no
// rate is configured (quota is enforced by the caller against the
// store's answer count, which needs no state here).
func NewLimiter(l Limits) *Limiter {
	if l.RatePerSec <= 0 {
		return nil
	}
	burst := float64(l.Burst)
	if burst <= 0 {
		burst = l.RatePerSec
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: l.RatePerSec, burst: burst, tokens: burst, now: time.Now}
}

// Admit charges n answers against the bucket. It returns ok=true when
// admitted; otherwise retryAfter is how long until the bucket is
// positive again — the Retry-After the rejection should carry.
func (l *Limiter) Admit(n int) (retryAfter time.Duration, ok bool) {
	if l == nil {
		return 0, true
	}
	if n < 1 {
		n = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	if !l.last.IsZero() {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	if l.tokens > 0 {
		l.tokens -= float64(n)
		return 0, true
	}
	// Admission needs tokens > 0, so the hint must cross the boundary:
	// the exact time to refill back to zero would leave a client that
	// honors it re-shed with a zero wait. Bump the wait geometrically
	// until the refill it buys is strictly positive under the same
	// float arithmetic the next Admit will run.
	wait := time.Duration(-l.tokens / l.rate * float64(time.Second))
	for bump := time.Nanosecond; l.tokens+wait.Seconds()*l.rate <= 0; bump *= 2 {
		wait += bump
	}
	return wait, false
}
