package stream

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// incremental maintains the exact state of a direct-computation method
// (MV, Mean or Median) under streaming appends: each ingested answer
// updates per-task sufficient statistics (vote counts, running sums, or
// nothing for Median, which re-reads the touched task) and relabels only
// the touched tasks — O(delta · redundancy) per batch, independent of the
// dataset's size.
//
// The maintained truths are bit-identical to a one-shot batch run of the
// same method on the final dataset:
//
//   - MV's vote counts are small integers (exact in float64) and its
//     tie-break depends only on (seed, task);
//   - Mean accumulates each task's answers in append order — exactly the
//     ascending answer-index order the batch method sums in;
//   - Median sorts the task's answer multiset, which is order-free.
type incremental struct {
	method string // "MV", "Mean" or "Median"
	seed   int64
	ell    int // choices (MV)

	truth  []float64
	counts []float64 // MV: task-major tasks×ℓ vote counts
	sums   []float64 // Mean: per-task running sums
	ns     []int     // Mean: per-task answer counts
}

// incrementalMethods lists the methods with an exact O(delta) streaming
// path.
var incrementalMethods = map[string]bool{"MV": true, "Mean": true, "Median": true}

func newIncremental(method string, seed int64, ell int) *incremental {
	return &incremental{method: method, seed: seed, ell: ell}
}

// grow extends the per-task state to numTasks, labeling the new
// answer-less tasks exactly as the batch method would (the MV tie-break
// over an all-zero count row, or 0 for Mean and Median).
func (inc *incremental) grow(numTasks int) {
	for i := len(inc.truth); i < numTasks; i++ {
		inc.truth = append(inc.truth, 0)
		switch inc.method {
		case "MV":
			inc.counts = append(inc.counts, make([]float64, inc.ell)...)
			inc.relabelMV(i)
		case "Mean":
			inc.sums = append(inc.sums, 0)
			inc.ns = append(inc.ns, 0)
		}
	}
}

// apply folds the answers appended at indices [firstNew, len(d.Answers))
// into the state. It must run under the store lock (View) so no append
// interleaves, with batches applied in ingestion order.
func (inc *incremental) apply(d *dataset.Dataset, firstNew int) {
	inc.grow(d.NumTasks)
	touched := map[int]bool{}
	for _, a := range d.Answers[firstNew:] {
		switch inc.method {
		case "MV":
			inc.counts[a.Task*inc.ell+a.Label()]++
		case "Mean":
			inc.sums[a.Task] += a.Value
			inc.ns[a.Task]++
		}
		touched[a.Task] = true
	}
	for i := range touched {
		switch inc.method {
		case "MV":
			inc.relabelMV(i)
		case "Mean":
			inc.truth[i] = inc.sums[i] / float64(inc.ns[i])
		case "Median":
			inc.relabelMedian(d, i)
		}
	}
}

// relabelMV recomputes task i's plurality label with the same
// (seed, task)-hashed tie-break as the batch MV implementation.
func (inc *incremental) relabelMV(i int) {
	row := inc.counts[i*inc.ell : (i+1)*inc.ell]
	inc.truth[i] = float64(core.ArgmaxTieBreak(row, func(n int) int {
		return randx.HashPick(n, inc.seed, int64(i))
	}))
}

// relabelMedian recomputes task i's median from its full answer list —
// the one statistic without a constant-size update, still O(redundancy)
// per touched task.
func (inc *incremental) relabelMedian(d *dataset.Dataset, i int) {
	idxs := d.TaskAnswers(i)
	vals := make([]float64, len(idxs))
	for k, ai := range idxs {
		vals[k] = d.Answers[ai].Value
	}
	med := mathx.Median(vals)
	if math.IsNaN(med) {
		med = 0
	}
	inc.truth[i] = med
}

// confidence returns MV's posterior confidence in task i's label (its
// vote share), or NaN for the numeric methods.
func (inc *incremental) confidence(i int) float64 {
	if inc.method != "MV" || i >= len(inc.truth) {
		return math.NaN()
	}
	row := inc.counts[i*inc.ell : (i+1)*inc.ell]
	var total float64
	for _, c := range row {
		total += c
	}
	if total == 0 {
		return 1 / float64(inc.ell)
	}
	return row[int(inc.truth[i])] / total
}

// result packages the maintained state as a core.Result equivalent to a
// batch run on the current dataset (uniform worker qualities, like the
// direct methods report).
func (inc *incremental) result(numWorkers int) *core.Result {
	quality := make([]float64, numWorkers)
	for i := range quality {
		quality[i] = 1
	}
	return &core.Result{
		Truth:         append([]float64(nil), inc.truth...),
		WorkerQuality: quality,
		Iterations:    1,
		Converged:     true,
	}
}
