package stream

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// incremental maintains the exact state of a direct-computation method
// (MV, Mean or Median) under streaming appends: each ingested answer
// updates per-task sufficient statistics (vote counts, running sums, or
// nothing for Median, which re-reads the touched task through the
// owning shard) and relabels only the touched tasks —
// O(delta · redundancy) per batch, independent of the dataset's size.
//
// The maintained truths are bit-identical to a one-shot batch run of the
// same method on the final dataset:
//
//   - MV's vote counts are small integers (exact in float64) and its
//     tie-break depends only on (seed, task);
//   - Mean accumulates each task's answers in append order — exactly the
//     ascending answer-index order the batch method sums in;
//   - Median sorts the task's answer multiset, which is order-free.
type incremental struct {
	method string // "MV", "Mean" or "Median"
	seed   int64
	ell    int // choices (MV)

	truth  []float64
	counts []float64 // MV: task-major tasks×ℓ vote counts
	sums   []float64 // Mean: per-task running sums
	ns     []int     // Mean: per-task answer counts
}

// incrementalMethods lists the methods with an exact O(delta) streaming
// path.
var incrementalMethods = map[string]bool{"MV": true, "Mean": true, "Median": true}

func newIncremental(method string, seed int64, ell int) *incremental {
	return &incremental{method: method, seed: seed, ell: ell}
}

// grow extends the per-task state to numTasks, labeling the new
// answer-less tasks exactly as the batch method would (the MV tie-break
// over an all-zero count row, or 0 for Mean and Median).
func (inc *incremental) grow(numTasks int) {
	for i := len(inc.truth); i < numTasks; i++ {
		inc.truth = append(inc.truth, 0)
		switch inc.method {
		case "MV":
			inc.counts = append(inc.counts, make([]float64, inc.ell)...)
			inc.relabelMV(i)
		case "Mean":
			inc.sums = append(inc.sums, 0)
			inc.ns = append(inc.ns, 0)
		}
	}
}

// apply folds a delta of appended answers into the state and relabels
// the touched tasks. numTasks is the store's task range after the delta;
// taskValues returns one task's full answer multiset in append order
// (used only by Median, which has no constant-size update). Batches must
// be applied in ingestion order; the service serializes ingest, so the
// delta of each call is exactly the batch it just committed.
func (inc *incremental) apply(answers []dataset.Answer, numTasks int, taskValues func(task int) []float64) {
	inc.grow(numTasks)
	touched := map[int]bool{}
	for _, a := range answers {
		switch inc.method {
		case "MV":
			inc.counts[a.Task*inc.ell+a.Label()]++
		case "Mean":
			inc.sums[a.Task] += a.Value
			inc.ns[a.Task]++
		}
		touched[a.Task] = true
	}
	for i := range touched {
		switch inc.method {
		case "MV":
			inc.relabelMV(i)
		case "Mean":
			inc.truth[i] = inc.sums[i] / float64(inc.ns[i])
		case "Median":
			inc.relabelMedian(i, taskValues(i))
		}
	}
}

// applyDataset folds a whole existing dataset (e.g. a preloaded store
// or a recovered snapshot) into freshly initialized state.
func (inc *incremental) applyDataset(d *dataset.Dataset) {
	inc.apply(d.Answers, d.NumTasks, func(task int) []float64 {
		idxs := d.TaskAnswers(task)
		vals := make([]float64, len(idxs))
		for k, ai := range idxs {
			vals[k] = d.Answers[ai].Value
		}
		return vals
	})
}

// relabelMV recomputes task i's plurality label with the same
// (seed, task)-hashed tie-break as the batch MV implementation.
func (inc *incremental) relabelMV(i int) {
	row := inc.counts[i*inc.ell : (i+1)*inc.ell]
	inc.truth[i] = float64(core.ArgmaxTieBreak(row, func(n int) int {
		return randx.HashPick(n, inc.seed, int64(i))
	}))
}

// relabelMedian recomputes task i's median from its full answer
// multiset — the one statistic without a constant-size update, still
// O(redundancy) per touched task. vals is a caller-provided copy, so
// sorting it in place is safe.
func (inc *incremental) relabelMedian(i int, vals []float64) {
	med := mathx.Median(vals)
	if math.IsNaN(med) {
		med = 0
	}
	inc.truth[i] = med
}

// confidence returns MV's posterior confidence in task i's label (its
// vote share), or NaN for the numeric methods.
func (inc *incremental) confidence(i int) float64 {
	if inc.method != "MV" || i >= len(inc.truth) {
		return math.NaN()
	}
	row := inc.counts[i*inc.ell : (i+1)*inc.ell]
	var total float64
	for _, c := range row {
		total += c
	}
	if total == 0 {
		return 1 / float64(inc.ell)
	}
	return row[int(inc.truth[i])] / total
}
