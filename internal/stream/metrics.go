package stream

import (
	"time"

	"truthinference/internal/telemetry"
)

// Metrics is the service's operational instrument bundle, bound to one
// tenant (and serving method) at construction so the hot paths record
// without label lookups. A nil *Metrics is fully inert — every observer
// method no-ops — so uninstrumented services (tests, benchmarks, WAL
// replay) pay one predictable branch.
type Metrics struct {
	admitted      *telemetry.Counter
	shedRate      *telemetry.Counter
	shedQuota     *telemetry.Counter
	quotaInFlight *telemetry.Gauge
	epochSeconds  *telemetry.Histogram
	epochs        *telemetry.Counter
	warmStarts    *telemetry.Counter
	folded        *telemetry.Counter
}

// NewMetrics registers the stream service's instruments on reg with
// per-tenant labels (the epoch histogram also carries the serving
// method). Returns nil — an inert bundle — for a nil registry.
func NewMetrics(reg *telemetry.Registry, tenant, method string) *Metrics {
	if reg == nil {
		return nil
	}
	shed := reg.Counter("truthserve_ingest_answers_shed_total",
		"Answers rejected by ingest admission, by tenant and reason (rate|quota).",
		"tenant", "reason")
	return &Metrics{
		admitted: reg.Counter("truthserve_ingest_answers_admitted_total",
			"Answers that passed ingest admission, by tenant.",
			"tenant").With(tenant),
		shedRate:  shed.With(tenant, "rate"),
		shedQuota: shed.With(tenant, "quota"),
		quotaInFlight: reg.Gauge("truthserve_ingest_quota_reserved",
			"Answers reserved against the quota by admitted-but-uncommitted requests.",
			"tenant").With(tenant),
		epochSeconds: reg.Histogram("truthserve_epoch_seconds",
			"Inference epoch latency in seconds, by tenant and method.",
			telemetry.LatencyBuckets, "tenant", "method").With(tenant, method),
		epochs: reg.Counter("truthserve_epochs_total",
			"Completed inference epochs, by tenant and method.",
			"tenant", "method").With(tenant, method),
		warmStarts: reg.Counter("truthserve_warm_start_hits_total",
			"Epochs that resumed from the previous posterior instead of cold init.",
			"tenant").With(tenant),
		folded: reg.Counter("truthserve_incremental_answers_folded_total",
			"Answers folded into incremental (MV/Mean/Median) statistics.",
			"tenant").With(tenant),
	}
}

func (m *Metrics) observeAdmitted(n int) {
	if m == nil {
		return
	}
	m.admitted.Add(uint64(n))
}

func (m *Metrics) observeShed(n int, quota bool) {
	if m == nil {
		return
	}
	if quota {
		m.shedQuota.Add(uint64(n))
	} else {
		m.shedRate.Add(uint64(n))
	}
}

func (m *Metrics) quotaReserve(n int64) {
	if m == nil {
		return
	}
	m.quotaInFlight.Add(float64(n))
}

func (m *Metrics) observeEpoch(d time.Duration, warm bool) {
	if m == nil {
		return
	}
	m.epochSeconds.Observe(d.Seconds())
	m.epochs.Inc()
	if warm {
		m.warmStarts.Inc()
	}
}

func (m *Metrics) observeFolded(n int) {
	if m == nil {
		return
	}
	m.folded.Add(uint64(n))
}
