package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"truthinference/internal/stream"
)

// Options parameterizes Open.
type Options struct {
	// SnapshotEvery compacts the log every N recorded batches: the store
	// is snapshotted to <base>.snap and the WAL reset. 0 disables
	// automatic compaction (the owner can still call Snapshot itself,
	// e.g. on clean shutdown). Compaction runs in the background — the
	// O(answers) snapshot never stalls the ingest path, which only pays
	// for the O(1) log append.
	SnapshotEvery int
	// Shards is the shard count for stores rebuilt from a snapshot
	// (0 = stream.DefaultShards). Shard count never affects recovered
	// state, only contention.
	Shards int
	// Metrics, when non-nil, receives append/fsync observations (see
	// NewMetrics). Nil disables instrumentation.
	Metrics *Metrics
}

// Recovery describes what Open found on disk.
type Recovery struct {
	// Store is the recovered (or freshly created) store.
	Store *stream.Store
	// SnapshotVersion is the store version of the loaded snapshot
	// (0 when no snapshot existed).
	SnapshotVersion uint64
	// Replayed is the number of WAL records applied on top of the
	// snapshot (records the snapshot already covered are skipped and not
	// counted).
	Replayed int
	// TailErr is non-nil when the WAL had a truncated or corrupted tail.
	// The store holds the consistent prefix and the damaged bytes were
	// truncated away, so appending may continue; callers that require a
	// loss-free log should treat it as fatal.
	TailErr *CorruptError
}

// pendingRec is one record appended while a background compaction was
// snapshotting; the log swap re-appends the ones the snapshot missed.
type pendingRec struct {
	version uint64
	b       stream.Batch
}

// Persister is the stream.Persister implementation over a WAL + snapshot
// pair: Record appends each committed batch and, every SnapshotEvery
// records, kicks a background compaction of the log into a fresh
// snapshot. It is safe for one writer (the Service serializes Record
// under its ingest lock) plus concurrent Sync/SyncTo/Snapshot callers.
//
// # Group commit
//
// SyncTo(version) is the commit pipeline for concurrent ingest batches:
// callers needing durability through different versions pile up behind
// one fsync leader (syncMu) instead of issuing one fsync each. The
// leader captures the highest appended version, fsyncs once outside the
// record lock (Record never stalls behind a disk flush), and advances
// the durable watermark past every waiter it covered — the waiters'
// own SyncTo calls then return on the watermark fast path without
// touching the disk. Under N concurrent batch ingests this coalesces N
// fsyncs into a few, which is where the batched endpoint's throughput
// comes from.
type Persister struct {
	mu         sync.Mutex
	idle       sync.Cond // signalled when a background compaction finishes
	store      *stream.Store
	log        *Log
	base       string
	every      int
	since      int    // records appended since the last successful compaction
	appended   uint64 // store version of the last record appended to the log
	compacting bool   // a background compaction is in flight
	pending    []pendingRec
	compactErr error // last failed compaction; retried on a later Record, surfaced by Sync
	closed     bool
	m          *Metrics // nil-safe instrument bundle (see metrics.go)

	// syncMu serializes fsyncs: the group-commit leader lock. Ordered
	// after p.mu is released — never held together with it.
	syncMu sync.Mutex
	// durable is the highest store version known flushed to stable
	// storage (log fsync, snapshot, or swap). Monotone; read lock-free.
	durable atomic.Uint64
}

var _ stream.Persister = (*Persister)(nil)
var _ stream.DurablePersister = (*Persister)(nil)

// Open recovers (or initializes) the durable state at <base>.snap /
// <base>.wal and returns a Persister appending to the log. fresh builds
// the initial store when no snapshot exists — it must be deterministic
// across restarts (same flags → same store), because WAL records are
// replayed on top of what it returns.
//
// Damage handling: a truncated or corrupted log *tail* is truncated
// away and reported in Recovery.TailErr — the store holds the intact
// prefix. A *version gap* between the snapshot and the log's intact
// records (e.g. a snapshot restored from an older backup next to a
// newer log) is a hard error: the records are valid data that is not
// the persister's to destroy, so Open refuses to boot instead of
// truncating them.
func Open(base string, fresh func() (*stream.Store, error), opts Options) (*Persister, *Recovery, error) {
	snapPath, walPath := base+".snap", base+".wal"
	rec := &Recovery{}

	d, snapVersion, err := ReadSnapshot(snapPath)
	switch {
	case err == nil:
		rec.Store = stream.NewStoreAt(d, snapVersion, opts.Shards)
		rec.SnapshotVersion = snapVersion
	case os.IsNotExist(err):
		store, ferr := fresh()
		if ferr != nil {
			return nil, nil, ferr
		}
		rec.Store = store
	default:
		return nil, nil, err
	}

	var log *Log
	if _, statErr := os.Stat(walPath); statErr == nil {
		off, _, rerr := Replay(walPath, func(version uint64, b stream.Batch) error {
			cur := rec.Store.Version()
			if version <= cur {
				// Already covered by the snapshot (or by the crash window
				// between a snapshot and the WAL reset) — skip.
				return nil
			}
			if version != cur+1 {
				// Deliberately NOT a CorruptError: the record is intact,
				// it just cannot belong to this snapshot, and truncating
				// it would destroy valid data.
				return fmt.Errorf("wal: version gap: store at %d, next record at %d — %s does not belong to %s (restored from a different backup?)",
					cur, version, walPath, snapPath)
			}
			got, _, ierr := rec.Store.Ingest(b)
			if ierr != nil {
				return fmt.Errorf("wal: replaying record at version %d: %w", version, ierr)
			}
			if got != version {
				return fmt.Errorf("wal: replay applied record at version %d as %d", version, got)
			}
			rec.Replayed++
			return nil
		})
		if rerr != nil {
			var corrupt *CorruptError
			if !errors.As(rerr, &corrupt) {
				return nil, nil, rerr
			}
			if corrupt.Offset == 0 {
				corrupt.Offset = off
			}
			rec.TailErr = corrupt
		}
		if off < int64(len(logMagic)) {
			// The damage starts in (or before) the magic itself — there
			// is no valid header to append after, so rewrite the log from
			// scratch rather than appending into a magic-less file the
			// next recovery would discard wholesale.
			if log, err = Create(walPath); err != nil {
				return nil, nil, err
			}
		} else {
			// Truncate the damaged tail and append after the intact
			// prefix.
			if log, err = openAppend(walPath, off); err != nil {
				return nil, nil, err
			}
		}
	} else if os.IsNotExist(statErr) {
		if log, err = Create(walPath); err != nil {
			return nil, nil, err
		}
	} else {
		return nil, nil, statErr
	}

	p := &Persister{store: rec.Store, log: log, base: base, every: opts.SnapshotEvery, m: opts.Metrics}
	p.idle.L = &p.mu
	// Everything recovered came off stable storage: the recovered version
	// is both the last appended and the durable watermark.
	p.appended = rec.Store.Version()
	p.durable.Store(p.appended)
	return p, rec, nil
}

// Record appends one committed batch to the log and, every
// SnapshotEvery records, kicks a background compaction. An error means
// the batch was NOT appended — a failed compaction is not a Record
// failure (the batch is in the log); it is remembered, retried on a
// later Record, and surfaced by Sync.
func (p *Persister) Record(version uint64, b stream.Batch) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("wal: persister is closed")
	}
	if err := p.log.Append(version, b); err != nil {
		return err
	}
	if p.compacting {
		// The in-flight compaction may have snapshotted before this
		// record landed; mirror it so the log swap can carry it over.
		p.pending = append(p.pending, pendingRec{version, b})
	}
	p.appended = version
	p.since++
	p.m.observeRecord(version - p.durable.Load())
	if p.every > 0 && p.since >= p.every && !p.compacting {
		p.compacting = true
		go p.compactAsync()
	}
	return nil
}

// Sync flushes the log to stable storage and reports any compaction
// failure still pending retry (the epoch-boundary flush is where the
// service surfaces durability problems). The fsync itself runs through
// the group-commit pipeline, outside the record lock.
func (p *Persister) Sync() error {
	p.mu.Lock()
	target := p.appended
	cerr := p.compactErr
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return errors.New("wal: persister is closed")
	}
	if err := p.SyncTo(target); err != nil {
		return err
	}
	if cerr != nil {
		return fmt.Errorf("wal: snapshot compaction failed (will retry): %w", cerr)
	}
	return nil
}

// SyncTo blocks until every record through the given store version is
// on stable storage, implementing stream.DurablePersister. Concurrent
// callers coalesce: one leader fsyncs for everyone queued behind it
// (see the type comment). version must not exceed the last Recorded
// version — a Persister cannot make data it never saw durable.
func (p *Persister) SyncTo(version uint64) error {
	if p.durable.Load() >= version {
		return nil
	}
	p.syncMu.Lock()
	defer p.syncMu.Unlock()
	if p.durable.Load() >= version {
		// A leader that held syncMu while we waited covered our version.
		return nil
	}
	p.mu.Lock()
	log, target, closed := p.log, p.appended, p.closed
	p.mu.Unlock()
	if closed {
		return errors.New("wal: persister is closed")
	}
	if version > target {
		return fmt.Errorf("wal: SyncTo(%d) beyond last recorded version %d", version, target)
	}
	durableBefore := p.durable.Load()
	start := time.Now()
	if err := log.Sync(); err != nil {
		if errors.Is(err, os.ErrClosed) {
			// A concurrent compaction swapped the log out from under us.
			// The swap is itself a durability point: every record appended
			// before it is in the durably-renamed snapshot or the fsynced
			// fresh log, and target was appended before we captured it —
			// so target is durable even though this fsync lost the race.
			p.advanceDurable(target)
			return nil
		}
		return err
	}
	p.advanceDurable(target)
	if target > durableBefore {
		// The group-commit batch is how many store versions this one
		// fsync made durable — every waiter queued behind this leader
		// returns on the watermark fast path without touching the disk.
		p.m.observeFsync(time.Since(start), target-durableBefore, 0)
	}
	return nil
}

// DurableVersion reports the highest store version known to be on
// stable storage. Lock-free; safe from any goroutine.
func (p *Persister) DurableVersion() uint64 { return p.durable.Load() }

// advanceDurable ratchets the durable watermark up to v (never down —
// a stale leader must not regress a newer leader's advance).
func (p *Persister) advanceDurable(v uint64) {
	for {
		cur := p.durable.Load()
		if cur >= v || p.durable.CompareAndSwap(cur, v) {
			return
		}
	}
}

// PersistStats implements stream.PersistStatter: the live durability
// state GET /v1/stats reports so operators can verify the WAL/snapshot
// config at runtime.
func (p *Persister) PersistStats() stream.PersistStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := stream.PersistStats{
		SinceSnapshot:  p.since,
		Compacting:     p.compacting,
		DurableVersion: p.durable.Load(),
	}
	if p.compactErr != nil {
		st.CompactError = p.compactErr.Error()
	}
	return st
}

// Snapshot compacts now, synchronously: any in-flight background
// compaction is waited out, then the store is snapshotted to
// <base>.snap and the log reset. Recovery cost drops to the snapshot
// read plus whatever arrives afterwards.
func (p *Persister) Snapshot() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.compacting {
		p.idle.Wait()
	}
	if p.closed {
		return errors.New("wal: persister is closed")
	}
	d, version := p.store.Snapshot()
	err := WriteSnapshot(p.base+".snap", d, version)
	if err == nil {
		err = p.swapLogLocked(version)
	}
	p.compactErr = err
	return err
}

// compactAsync is the background half of Record's compaction kick: the
// O(answers) store snapshot and the snapshot file write run without the
// lock, so the ingest path never stalls behind them; only the final log
// swap briefly takes it.
func (p *Persister) compactAsync() {
	d, version := p.store.Snapshot()
	err := WriteSnapshot(p.base+".snap", d, version)

	p.mu.Lock()
	if err == nil {
		if p.closed {
			err = errors.New("wal: persister closed during compaction")
		} else {
			err = p.swapLogLocked(version)
		}
	}
	p.compactErr = err
	if err != nil {
		// Re-arm so the next Record retries.
		p.since = p.every
	}
	p.pending = nil
	p.compacting = false
	p.idle.Broadcast()
	p.mu.Unlock()
}

// waitIdle blocks until no background compaction is in flight (used by
// tests to make the async compaction schedule deterministic).
func (p *Persister) waitIdle() {
	p.mu.Lock()
	for p.compacting {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// swapLogLocked replaces the log with a fresh one containing only the
// pending records the just-written snapshot (at snapVersion) does not
// cover. The caller holds p.mu and has durably renamed the snapshot
// into place, which is the crash-safety argument: the fresh log is
// built at a temp path, fsynced, and renamed over the old log, so a
// crash at any point leaves either the old log (fully intact, its
// covered records skipped on replay) or the new one (holding exactly
// the uncovered records) — acknowledged data is never lost. Failure
// never wedges the persister: on any error the current log stays open
// and untouched, and the next Record retries the whole compaction.
func (p *Persister) swapLogLocked(snapVersion uint64) error {
	walPath := p.base + ".wal"
	tmp := walPath + ".tmp"
	fresh, err := Create(tmp)
	if err != nil {
		return err
	}
	carried := 0
	for _, r := range p.pending {
		if r.version > snapVersion {
			if err := fresh.Append(r.version, r.b); err != nil {
				fresh.Close()
				os.Remove(tmp)
				return err
			}
			carried++
		}
	}
	if err := fresh.Sync(); err != nil {
		fresh.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, walPath); err != nil {
		fresh.Close()
		os.Remove(tmp)
		return err
	}
	fresh.path = walPath
	if dir, derr := os.Open(filepath.Dir(walPath)); derr == nil {
		_ = dir.Sync()
		dir.Close()
	}
	old := p.log
	p.log = fresh
	_ = old.Close()
	p.since = carried
	// The swap is a durability point: the snapshot rename and the fresh
	// log's fsync together cover every record appended so far.
	p.advanceDurable(p.appended)
	return nil
}

// Close waits out any in-flight compaction, then flushes and closes the
// log. The Persister must not be used afterwards.
func (p *Persister) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.compacting {
		p.idle.Wait()
	}
	if p.closed {
		return nil
	}
	p.closed = true
	err := p.log.Close()
	if err == nil {
		p.advanceDurable(p.appended)
	}
	return err
}
