package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"truthinference/internal/dataset"
	"truthinference/internal/stream"
)

func testBatches() []stream.Batch {
	return []stream.Batch{
		{NumTasks: 4, NumWorkers: 3},
		{Answers: []dataset.Answer{
			{Task: 0, Worker: 0, Value: 1}, {Task: 1, Worker: 1, Value: 0}, {Task: 2, Worker: 2, Value: 1},
		}},
		{Answers: []dataset.Answer{
			{Task: 3, Worker: 0, Value: 0}, {Task: 0, Worker: 2, Value: 1},
		}, Truth: map[int]float64{0: 1, 3: 0}},
	}
}

// ingestAll drives batches through a fresh store, appending each to the
// log (mirroring what Service+Persister do together).
func ingestAll(t *testing.T, l *Log, batches []stream.Batch) *stream.Store {
	t.Helper()
	store, err := stream.NewStore("wal-test", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		v, _, err := store.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		if l != nil {
			if err := l.Append(v, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	return store
}

// requireIdentical asserts two stores are bit-identical: version, dims,
// answers in global order, truths.
func requireIdentical(t *testing.T, got, want *stream.Store) {
	t.Helper()
	if got.Version() != want.Version() {
		t.Fatalf("version %d, want %d", got.Version(), want.Version())
	}
	gd, gv := got.Snapshot()
	wd, wv := want.Snapshot()
	if gv != wv {
		t.Fatalf("snapshot version %d, want %d", gv, wv)
	}
	if gd.NumTasks != wd.NumTasks || gd.NumWorkers != wd.NumWorkers {
		t.Fatalf("dims %d/%d, want %d/%d", gd.NumTasks, gd.NumWorkers, wd.NumTasks, wd.NumWorkers)
	}
	if !reflect.DeepEqual(gd.Answers, wd.Answers) {
		t.Fatalf("answers differ:\n got %v\nwant %v", gd.Answers, wd.Answers)
	}
	if !reflect.DeepEqual(gd.Truth, wd.Truth) {
		t.Fatalf("truths differ: got %v, want %v", gd.Truth, wd.Truth)
	}
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := ingestAll(t, l, testBatches())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := stream.NewStore("wal-test", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, n, rerr := Replay(path, func(version uint64, b stream.Batch) error {
		_, _, err := got.Ingest(b)
		return err
	})
	if rerr != nil {
		t.Fatalf("replay: %v", rerr)
	}
	if n != len(testBatches()) {
		t.Fatalf("replayed %d records, want %d", n, len(testBatches()))
	}
	requireIdentical(t, got, want)
}

func TestReplayStopsAtCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, l, testBatches())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries: scan once to collect offsets.
	var bounds []int64
	if _, _, err := Replay(path, func(uint64, stream.Batch) error { return nil }); err != nil {
		t.Fatal(err)
	}
	off := int64(len(logMagic))
	for _, rec := range splitRecords(t, clean) {
		bounds = append(bounds, off)
		off += int64(len(rec))
	}

	cases := map[string]struct {
		data   []byte
		prefix int // intact records expected before the damage
	}{
		"truncated mid-payload":  {clean[:bounds[2]+5], 2},
		"truncated mid-header":   {clean[:bounds[1]+3], 1},
		"flipped payload byte":   {flip(clean, int(bounds[2])+frameLen+2), 2},
		"flipped crc byte":       {flip(clean, int(bounds[2])+4), 2},
		"oversize length header": {overwriteLen(clean, int(bounds[2]), maxRecordLen+1), 2},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "c.wal")
			if err := os.WriteFile(p, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			var versions []uint64
			goodOff, n, rerr := Replay(p, func(v uint64, _ stream.Batch) error {
				versions = append(versions, v)
				return nil
			})
			if rerr == nil {
				t.Fatal("corrupt log replayed cleanly")
			}
			var ce *CorruptError
			if !asCorrupt(rerr, &ce) {
				t.Fatalf("replay error is %T (%v), want *CorruptError", rerr, rerr)
			}
			if n != tc.prefix || len(versions) != tc.prefix {
				t.Fatalf("intact prefix delivered %d records (%v), want the first %d", n, versions, tc.prefix)
			}
			for i, v := range versions {
				if v != uint64(i+1) {
					t.Fatalf("prefix versions %v out of order", versions)
				}
			}
			if goodOff != bounds[tc.prefix] {
				t.Fatalf("good offset %d, want %d", goodOff, bounds[tc.prefix])
			}
		})
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	store := ingestAll(t, nil, testBatches())
	d, version := store.Snapshot()
	path := filepath.Join(t.TempDir(), "t.snap")
	if err := WriteSnapshot(path, d, version); err != nil {
		t.Fatal(err)
	}
	gotD, gotV, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotV != version {
		t.Fatalf("version %d, want %d", gotV, version)
	}
	if !reflect.DeepEqual(gotD.Answers, d.Answers) || !reflect.DeepEqual(gotD.Truth, d.Truth) {
		t.Fatal("snapshot round-trip altered the dataset")
	}

	// Corruption in the dataset bytes must be caught by the CRC.
	raw, _ := os.ReadFile(path)
	bad := flip(raw, len(raw)-1)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(path); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
}

func TestOpenRecoversSnapshotPlusWAL(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "store")
	fresh := func() (*stream.Store, error) { return stream.NewStore("wal-test", dataset.Decision, 2) }

	// Run 1: snapshot after every 2 records, so the state is split
	// across a snapshot and a live WAL record; then "crash" (no Close).
	p, rec, err := Open(base, fresh, Options{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotVersion != 0 || rec.Replayed != 0 {
		t.Fatalf("fresh open recovered something: %+v", rec)
	}
	want, err := fresh()
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range testBatches() {
		v, _, err := rec.Store.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Record(v, b); err != nil {
			t.Fatal(err)
		}
		if _, _, err := want.Ingest(b); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			// Record 2 kicked the background compaction; wait it out
			// before batch 3 lands so the snapshot deterministically
			// covers exactly versions 1–2.
			p.waitIdle()
		}
	}
	// 3 records, SnapshotEvery=2 → one compaction happened; the .snap
	// must exist and the live WAL hold exactly one record.
	if _, err := os.Stat(base + ".snap"); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}

	// Run 2: recover.
	p2, rec2, err := Open(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if rec2.TailErr != nil {
		t.Fatalf("clean files reported tail corruption: %v", rec2.TailErr)
	}
	if rec2.SnapshotVersion != 2 || rec2.Replayed != 1 {
		t.Fatalf("recovered snapshot@%d + %d records, want snapshot@2 + 1", rec2.SnapshotVersion, rec2.Replayed)
	}
	requireIdentical(t, rec2.Store, want)
}

// TestOpenSkipsRecordsCoveredBySnapshot pins the crash window between a
// snapshot rename and the WAL reset: old records at versions the
// snapshot already covers are skipped, not double-applied.
func TestOpenSkipsRecordsCoveredBySnapshot(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "store")
	fresh := func() (*stream.Store, error) { return stream.NewStore("wal-test", dataset.Decision, 2) }

	l, err := Create(base + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	want := ingestAll(t, l, testBatches())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Snapshot covers version 2 of 3; the full WAL (versions 1..3) stays.
	ref, _ := fresh()
	for _, b := range testBatches()[:2] {
		if _, _, err := ref.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	d, v := ref.Snapshot()
	if err := WriteSnapshot(base+".snap", d, v); err != nil {
		t.Fatal(err)
	}

	p, rec, err := Open(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if rec.SnapshotVersion != 2 || rec.Replayed != 1 {
		t.Fatalf("recovered snapshot@%d + %d replayed, want snapshot@2 + 1 (2 skipped)", rec.SnapshotVersion, rec.Replayed)
	}
	requireIdentical(t, rec.Store, want)
}

func TestOpenTruncatesCorruptTailAndContinues(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "store")
	fresh := func() (*stream.Store, error) { return stream.NewStore("wal-test", dataset.Decision, 2) }

	l, err := Create(base + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, l, testBatches())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half, as a crash mid-append would.
	raw, _ := os.ReadFile(base + ".wal")
	if err := os.WriteFile(base+".wal", raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	p, rec, err := Open(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TailErr == nil {
		t.Fatal("torn tail not reported")
	}
	if rec.Replayed != 2 || rec.Store.Version() != 2 {
		t.Fatalf("recovered %d records to version %d, want the 2-record prefix", rec.Replayed, rec.Store.Version())
	}
	// The damaged tail is gone: appending and re-recovering works.
	b := stream.Batch{Answers: []dataset.Answer{{Task: 1, Worker: 2, Value: 1}}}
	v, _, err := rec.Store.Ingest(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Record(v, b); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, rec2, err := Open(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if rec2.TailErr != nil {
		t.Fatalf("tail corruption persisted across truncation: %v", rec2.TailErr)
	}
	requireIdentical(t, rec2.Store, rec.Store)
}

// TestCompactionFailureDoesNotWedgePersister pins the degraded-disk
// behavior: when compaction cannot write its files, Record still
// succeeds (the batch IS in the log), Sync surfaces the pending
// failure, and once the disk heals the next compaction succeeds and
// Sync goes quiet — the persister is never left wedged on a closed or
// half-swapped log.
func TestCompactionFailureDoesNotWedgePersister(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "state")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "store")
	fresh := func() (*stream.Store, error) { return stream.NewStore("wal-test", dataset.Decision, 2) }

	p, rec, err := Open(base, fresh, Options{SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	record := func(b stream.Batch) error {
		v, _, err := rec.Store.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		return p.Record(v, b)
	}

	// Break the "disk": the directory disappears, so snapshot tmp files
	// cannot be created, but the already-open log fd keeps working.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := record(stream.Batch{NumTasks: 2, NumWorkers: 2}); err != nil {
		t.Fatalf("Record failed although the append succeeded: %v", err)
	}
	p.waitIdle() // the failed background compaction settles
	if err := p.Sync(); err == nil {
		t.Fatal("Sync hid the pending compaction failure")
	}
	if err := p.Snapshot(); err == nil {
		t.Fatal("synchronous Snapshot succeeded on a missing directory")
	}

	// Heal the disk: the next Record retries the compaction.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := record(stream.Batch{Answers: []dataset.Answer{{Task: 0, Worker: 0, Value: 1}}}); err != nil {
		t.Fatalf("Record after healing: %v", err)
	}
	p.waitIdle()
	if err := p.Sync(); err != nil {
		t.Fatalf("Sync still failing after successful compaction: %v", err)
	}
	if _, err := os.Stat(base + ".snap"); err != nil {
		t.Fatalf("healed compaction wrote no snapshot: %v", err)
	}
}

// TestOpenRefusesVersionGap pins the restore-mistake path: a snapshot
// from one history next to a log from another (the log's first
// unapplied record is not snapshot version + 1) must fail Open loudly —
// and must NOT truncate the intact records, which are valid data the
// operator may still need.
func TestOpenRefusesVersionGap(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "store")
	fresh := func() (*stream.Store, error) { return stream.NewStore("wal-test", dataset.Decision, 2) }

	l, err := Create(base + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	// Records claiming versions 5 and 6 — as if the matching snapshot
	// (at version 4) was lost or replaced by an older backup.
	for v, b := range map[uint64]stream.Batch{
		5: {Answers: []dataset.Answer{{Task: 0, Worker: 0, Value: 1}}, NumTasks: 2, NumWorkers: 2},
		6: {Answers: []dataset.Answer{{Task: 1, Worker: 1, Value: 0}}},
	} {
		if err := l.Append(v, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(base + ".wal")
	if err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(base, fresh, Options{})
	if err == nil || !strings.Contains(err.Error(), "version gap") {
		t.Fatalf("Open with a version gap: %v, want a hard version-gap error", err)
	}
	after, err := os.ReadFile(base + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("refused Open still modified the log file")
	}
}

// TestOpenRewritesMagiclessLog pins the crash-inside-Create window: a
// zero-byte (or magic-torn) log must be rewritten with a fresh magic,
// so batches appended after recovery survive the NEXT restart instead
// of being discarded as one big bad-magic file.
func TestOpenRewritesMagiclessLog(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "store")
	fresh := func() (*stream.Store, error) { return stream.NewStore("wal-test", dataset.Decision, 2) }

	for name, contents := range map[string][]byte{
		"zero-byte":  {},
		"torn magic": []byte("TIW"),
		"bad magic":  []byte("GARBAGEGARBAGE"),
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(base+".wal", contents, 0o644); err != nil {
				t.Fatal(err)
			}
			os.Remove(base + ".snap")
			p, rec, err := Open(base, fresh, Options{})
			if err != nil {
				t.Fatalf("Open on %s log: %v", name, err)
			}
			if rec.TailErr == nil {
				t.Error("damaged magic not reported")
			}
			b := stream.Batch{Answers: []dataset.Answer{{Task: 0, Worker: 0, Value: 1}}}
			v, _, err := rec.Store.Ingest(b)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Record(v, b); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			// The batch recorded after recovery must survive the next
			// restart — this is exactly what silently appending to a
			// magic-less file would lose.
			p2, rec2, err := Open(base, fresh, Options{})
			if err != nil {
				t.Fatalf("re-open: %v", err)
			}
			defer p2.Close()
			if rec2.TailErr != nil {
				t.Fatalf("rewritten log still reads as damaged: %v", rec2.TailErr)
			}
			if rec2.Replayed != 1 || rec2.Store.Version() != 1 {
				t.Fatalf("post-recovery batch lost: replayed %d, version %d", rec2.Replayed, rec2.Store.Version())
			}
		})
	}
}

// --- helpers ---

// splitRecords cuts a clean log file into its framed records.
func splitRecords(t *testing.T, data []byte) [][]byte {
	t.Helper()
	var recs [][]byte
	off := len(logMagic)
	for off < len(data) {
		plen := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		recs = append(recs, data[off:off+frameLen+plen])
		off += frameLen + plen
	}
	return recs
}

func flip(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xFF
	return out
}

func overwriteLen(data []byte, off int, v uint32) []byte {
	out := append([]byte(nil), data...)
	out[off] = byte(v)
	out[off+1] = byte(v >> 8)
	out[off+2] = byte(v >> 16)
	out[off+3] = byte(v >> 24)
	return out
}

func asCorrupt(err error, target **CorruptError) bool {
	return errors.As(err, target)
}
