package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Namespaced durable state: a multi-tenant daemon keeps one WAL +
// snapshot pair per project under <root>/<id>/, so tenants never share a
// log and a project delete is one directory removal. Namespace ids flow
// in from an admin API, so they are validated as single, safe path
// components before ever touching the filesystem — "../../etc" is a
// config error, not a traversal.

// MaxNamespaceLen bounds a namespace id's length (filesystem name limits
// minus room for the ".wal"/".snap" suffixes).
const MaxNamespaceLen = 128

// ValidNamespace reports whether id is acceptable as a namespace: 1 to
// MaxNamespaceLen characters drawn from [a-z0-9._-], starting with a
// letter or digit. That rules out path separators, "..", hidden-file
// prefixes and case-collision surprises in one rule.
func ValidNamespace(id string) error {
	if id == "" {
		return fmt.Errorf("wal: empty namespace id")
	}
	if len(id) > MaxNamespaceLen {
		return fmt.Errorf("wal: namespace id longer than %d characters", MaxNamespaceLen)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		lowerOrDigit := (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
		if i == 0 && !lowerOrDigit {
			return fmt.Errorf("wal: namespace id %q must start with a lowercase letter or digit", id)
		}
		if !lowerOrDigit && c != '.' && c != '_' && c != '-' {
			return fmt.Errorf("wal: namespace id %q contains %q (valid: lowercase letters, digits, '.', '_', '-')", id, string(c))
		}
	}
	return nil
}

// NamespaceDir validates id and returns its directory under root. It
// does not create the directory.
func NamespaceDir(root, id string) (string, error) {
	if err := ValidNamespace(id); err != nil {
		return "", err
	}
	return filepath.Join(root, id), nil
}

// Namespaces lists the namespace ids present under root: subdirectories
// whose names validate and which hold at least one durable artifact
// (<dir>/*.wal or <dir>/*.snap). A missing root is an empty listing, not
// an error — a fresh daemon has recovered nothing yet. The multi-tenant
// registry uses the listing at boot to recover every tenant and to warn
// about orphaned state no manifest entry claims.
func Namespaces(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() || ValidNamespace(e.Name()) != nil {
			continue
		}
		dir := filepath.Join(root, e.Name())
		wals, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
		snaps, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
		if len(wals) > 0 || len(snaps) > 0 {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}
