package wal

import (
	"time"

	"truthinference/internal/telemetry"
)

// Metrics is the persister's instrument bundle, bound to one tenant at
// construction. A nil *Metrics is inert — every observer no-ops — so
// uninstrumented persisters (tests, recovery tooling) pay one branch.
type Metrics struct {
	fsyncSeconds *telemetry.Histogram
	batchSize    *telemetry.Histogram
	records      *telemetry.Counter
	durableLag   *telemetry.Gauge
}

// NewMetrics registers the WAL instruments on reg with a per-tenant
// label. Returns nil — an inert bundle — for a nil registry.
func NewMetrics(reg *telemetry.Registry, tenant string) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		fsyncSeconds: reg.Histogram("truthserve_wal_fsync_seconds",
			"Group-commit fsync latency in seconds, by tenant.",
			telemetry.FsyncBuckets, "tenant").With(tenant),
		batchSize: reg.Histogram("truthserve_wal_group_commit_batch",
			"Store versions made durable per group-commit fsync, by tenant.",
			telemetry.BatchSizeBuckets, "tenant").With(tenant),
		records: reg.Counter("truthserve_wal_records_total",
			"Batches appended to the write-ahead log, by tenant.",
			"tenant").With(tenant),
		durableLag: reg.Gauge("truthserve_wal_durable_lag",
			"Store versions appended to the log but not yet fsynced, by tenant.",
			"tenant").With(tenant),
	}
}

func (m *Metrics) observeRecord(lag uint64) {
	if m == nil {
		return
	}
	m.records.Inc()
	m.durableLag.Set(float64(lag))
}

func (m *Metrics) observeFsync(d time.Duration, batch, lag uint64) {
	if m == nil {
		return
	}
	m.fsyncSeconds.Observe(d.Seconds())
	m.batchSize.Observe(float64(batch))
	m.durableLag.Set(float64(lag))
}
