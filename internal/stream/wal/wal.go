// Package wal is the durability layer under the streaming subsystem: an
// append-only, CRC32-framed, length-prefixed write-ahead log of ingested
// batches, periodic compacted snapshots of the whole store (the stable
// binary dataset encoding plus the store version), and a recovery path
// that replays the log on top of the latest snapshot to a bit-identical
// store — same version, same dims, same answers in the same global
// order.
//
// # File formats
//
// <base>.wal — the log:
//
//	8-byte magic "TIWAL\x01\r\n"
//	records, each: uint32 LE payload length
//	               uint32 LE CRC-32 (IEEE) of the payload
//	               payload
//	payload:       uint64 LE store version after applying this batch
//	               uvarint batch NumTasks, uvarint batch NumWorkers
//	               uvarint answer count, per answer:
//	                 uvarint task, uvarint worker, 8-byte LE value bits
//	               uvarint truth count, per truth (ascending task id):
//	                 uvarint task, 8-byte LE value bits
//
// <base>.snap — the compacted snapshot, written atomically
// (tmp + rename):
//
//	8-byte magic "TISNP\x01\r\n"
//	uint64 LE store version
//	uint32 LE CRC-32 (IEEE) of the dataset encoding
//	dataset.MarshalBinary bytes
//
// # Recovery contract
//
// Every record carries the store version its batch produced, so replay
// is idempotent: records at or below the snapshot's version are skipped,
// and the next record must be exactly snapshot version+1 — a gap means
// the log does not belong to the snapshot (e.g. a mismatched backup
// restore), which Open refuses with a hard error rather than destroying
// intact records. A truncated or corrupted tail stops replay at the
// last intact record — recovery returns the consistent prefix plus a
// *CorruptError describing the damage, never a torn store. Open
// truncates the damaged tail before appending so the log stays readable
// (or rewrites the log wholesale when the magic itself is damaged).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"truthinference/internal/dataset"
	"truthinference/internal/stream"
)

const (
	logMagic  = "TIWAL\x01\r\n"
	snapMagic = "TISNP\x01\r\n"

	// maxRecordLen bounds one record's payload (64 MiB ≈ 2.7M answers);
	// a larger declared length is treated as corruption, so a damaged
	// length field cannot drive a huge allocation.
	maxRecordLen = 1 << 26

	frameLen = 8 // uint32 length + uint32 crc
)

// CorruptError reports damaged log or snapshot bytes: where the damage
// starts and what was wrong. Replay and recovery stop at the last intact
// record; the state built from the prefix before Offset is consistent.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s corrupt at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Log is an open write-ahead log. Append writes one framed record per
// committed batch (buffered only by the OS — a process crash loses
// nothing already Appended); Sync makes the log durable against machine
// crashes too.
type Log struct {
	f    *os.File
	path string
}

// Create truncates (or creates) the log at path and writes the magic.
func Create(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(logMagic)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, path: path}, nil
}

// openAppend opens an existing log for appending at offset off (the end
// of its intact prefix), truncating anything after it.
func openAppend(path string, off int64) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, path: path}, nil
}

// Append writes one framed record: the batch plus the store version it
// produced. The frame and payload go out in a single write, so a crash
// mid-append leaves at most one torn record at the tail — exactly what
// replay tolerates.
func (l *Log) Append(version uint64, b stream.Batch) error {
	payload := appendBatch(make([]byte, 0, 16+len(b.Answers)*12+len(b.Truth)*10), version, b)
	if len(payload) > maxRecordLen {
		// Replay would reject the record as corrupt, silently destroying
		// it and everything after — refuse up front instead. Unreachable
		// through Store.Ingest, whose MaxBatch cap keeps every admissible
		// batch well under this limit.
		return fmt.Errorf("wal: record payload %d bytes exceeds the %d cap", len(payload), maxRecordLen)
	}
	rec := make([]byte, frameLen, frameLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	_, err := l.f.Write(rec)
	return err
}

// Sync flushes the log to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// Close syncs and closes the log file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// appendBatch encodes one record payload: the version prefix plus the
// shared batch-payload encoding from the stream package (the same
// encoding the batched HTTP ingest endpoint frames on the wire).
func appendBatch(buf []byte, version uint64, b stream.Batch) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, version)
	return stream.AppendBatchPayload(buf, b)
}

// decodeBatch decodes one record payload. It enforces wire shape only;
// semantic validation (label ranges, finite numerics) happens in
// Store.Ingest during replay.
func decodeBatch(payload []byte) (version uint64, b stream.Batch, err error) {
	if len(payload) < 8 {
		return 0, stream.Batch{}, errors.New("payload shorter than version field")
	}
	version = binary.LittleEndian.Uint64(payload[:8])
	b, err = stream.DecodeBatchPayload(payload[8:])
	if err != nil {
		return 0, stream.Batch{}, err
	}
	return version, b, nil
}

// Replay streams the log at path and calls fn for every intact record
// in order, holding O(maxRecordLen) memory regardless of log size (a
// crashed daemon running without automatic compaction can leave an
// arbitrarily long log behind). It returns the byte offset of the end
// of the intact prefix and the number of records delivered. A truncated
// or corrupted tail stops the scan and is reported as a *CorruptError;
// an error returned by fn stops the scan and is returned as-is (with
// the offset still pointing before the record that fn rejected).
func Replay(path string, fn func(version uint64, b stream.Batch) error) (goodOffset int64, records int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != logMagic {
		return 0, 0, &CorruptError{Path: path, Offset: 0, Reason: "bad log magic"}
	}
	off := int64(len(logMagic))
	hdr := make([]byte, frameLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return off, records, nil
			}
			return off, records, &CorruptError{Path: path, Offset: off, Reason: "torn frame header"}
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if plen > maxRecordLen {
			return off, records, &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("record length %d exceeds cap", plen)}
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, records, &CorruptError{Path: path, Offset: off, Reason: "torn record payload"}
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return off, records, &CorruptError{Path: path, Offset: off, Reason: "payload CRC mismatch"}
		}
		version, b, derr := decodeBatch(payload)
		if derr != nil {
			return off, records, &CorruptError{Path: path, Offset: off, Reason: derr.Error()}
		}
		if err := fn(version, b); err != nil {
			return off, records, err
		}
		off += frameLen + int64(plen)
		records++
	}
}

// WriteSnapshot atomically writes a compacted snapshot of d at the given
// store version: the bytes go to a temp file, are fsynced, and replace
// path in one rename, so a crash mid-write never damages an existing
// snapshot.
func WriteSnapshot(path string, d *dataset.Dataset, version uint64) error {
	enc, err := d.MarshalBinary()
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(snapMagic)+12+len(enc))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(enc))
	buf = append(buf, enc...)

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// ReadSnapshot loads a snapshot written by WriteSnapshot, verifying the
// magic and the dataset CRC before decoding.
func ReadSnapshot(path string) (*dataset.Dataset, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	hdr := len(snapMagic) + 12
	if len(data) < hdr || string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, &CorruptError{Path: path, Offset: 0, Reason: "bad snapshot magic"}
	}
	version := binary.LittleEndian.Uint64(data[len(snapMagic):])
	crc := binary.LittleEndian.Uint32(data[len(snapMagic)+8:])
	enc := data[hdr:]
	if crc32.ChecksumIEEE(enc) != crc {
		return nil, 0, &CorruptError{Path: path, Offset: int64(hdr), Reason: "dataset CRC mismatch"}
	}
	d, err := dataset.UnmarshalDataset(enc)
	if err != nil {
		return nil, 0, &CorruptError{Path: path, Offset: int64(hdr), Reason: err.Error()}
	}
	return d, version, nil
}
