package wal

import (
	"os"
	"path/filepath"
	"testing"

	"truthinference/internal/dataset"
	"truthinference/internal/stream"
)

// fuzzSeedLog builds a small valid log in memory (magic + framed
// records) by writing through the real Log and reading the file back.
func fuzzSeedLog(f *testing.F) []byte {
	f.Helper()
	dir, err := os.MkdirTemp("", "walfuzz")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.wal")
	l, err := Create(path)
	if err != nil {
		f.Fatal(err)
	}
	store, err := stream.NewStore("seed", dataset.Decision, 2)
	if err != nil {
		f.Fatal(err)
	}
	for _, b := range []stream.Batch{
		{NumTasks: 3, NumWorkers: 2},
		{Answers: []dataset.Answer{{Task: 0, Worker: 0, Value: 1}, {Task: 1, Worker: 1, Value: 0}}},
		{Answers: []dataset.Answer{{Task: 2, Worker: 0, Value: 1}}, Truth: map[int]float64{2: 1}},
	} {
		v, _, err := store.Ingest(b)
		if err != nil {
			f.Fatal(err)
		}
		if err := l.Append(v, b); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzWALReplay feeds arbitrary bytes to the replay path as a WAL file
// and asserts the recovery contract: Replay either errors or delivers a
// prefix that applies cleanly — and applying it never panics, never
// tears the store, and leaves version == applied record count. The
// corpus seeds a valid log plus truncated/corrupted variants so the
// fuzzer starts at the format's edge cases instead of rediscovering the
// magic.
func FuzzWALReplay(f *testing.F) {
	seed := fuzzSeedLog(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-5])        // torn tail
	f.Add(seed[:len(logMagic)])      // empty log
	f.Add([]byte{})                  // no magic
	f.Add([]byte("TIWAL\x01\r\nxx")) // magic + garbage frame
	f.Add([]byte("NOTAWAL\x00data")) // wrong magic
	corrupted := append([]byte(nil), seed...)
	corrupted[len(seed)/2] ^= 0x40
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		store, err := stream.NewStore("fuzz", dataset.Decision, 2)
		if err != nil {
			t.Fatal(err)
		}
		applied := 0
		goodOff, n, rerr := Replay(path, func(version uint64, b stream.Batch) error {
			if version != store.Version()+1 {
				// Out-of-sequence version in a CRC-valid record: not
				// corruption of this file, but not applicable either.
				return &CorruptError{Path: path, Reason: "version out of sequence"}
			}
			if _, _, err := store.Ingest(b); err != nil {
				// Semantically invalid batch behind a valid CRC — replay
				// must stop without having torn the store (checked below).
				return err
			}
			applied++
			return nil
		})
		if goodOff < int64(0) || goodOff > int64(len(data)) {
			t.Fatalf("good offset %d outside file of %d bytes", goodOff, len(data))
		}
		if n < applied {
			t.Fatalf("replay reports %d records but %d were applied", n, applied)
		}
		if store.Version() != uint64(applied) {
			t.Fatalf("store at version %d after %d applied records", store.Version(), applied)
		}
		_ = rerr // error or consistent prefix are both acceptable outcomes

		// The store must always be internally consistent — Snapshot
		// re-validates through dataset.New and panics on a torn commit.
		// Skip only if a hostile record grew dims beyond what a test
		// should allocate.
		if tasks, workers, _ := store.Dims(); tasks <= 1<<20 && workers <= 1<<20 {
			d, _ := store.Snapshot()
			if _, _, answers := store.Dims(); len(d.Answers) != answers {
				t.Fatalf("snapshot has %d answers, dims say %d", len(d.Answers), answers)
			}
		}
	})
}
