package wal

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"truthinference/internal/api"
	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/stream"
)

// TestKillMidIngestRecovery drives the live batched HTTP endpoint with
// admission limits over a real WAL, "kills" the daemon mid-stream by
// abandoning the persister without Close, recovers, and checks the two
// halves of the backpressure/durability contract:
//
//   - no answer from a 429-shed request is present after recovery (a
//     rejected request acknowledged nothing), and
//   - every answer from a request acked durable (durable_version covers
//     its version) survives with its full count.
//
// Each request uses a unique worker id, so recovered answers attribute
// exactly to the request that carried them.
func TestKillMidIngestRecovery(t *testing.T) {
	const (
		answersPerReq = 10
		numTasks      = answersPerReq
		numRequests   = 8
	)
	base := t.TempDir() + "/proj"
	fresh := func() (*stream.Store, error) {
		return stream.NewStore("crash-http", dataset.Decision, 2)
	}
	p, rec, err := Open(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.waitIdle) // abandoned below; let background work settle
	svc, err := stream.NewService(rec.Store, stream.Config{
		Method:  direct.NewMV(),
		Options: core.Options{Seed: 1},
		Persist: p,
		// Burst 25 with a near-zero refill: the first three 10-answer
		// requests are admitted (the third by borrowing), then the bucket
		// is in debt and everything after is shed.
		Limits: stream.Limits{RatePerSec: 1e-6, Burst: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	ackedDurable := map[int]bool{} // worker id → acked with durability coverage
	rejected := map[int]bool{}     // worker id → shed with 429
	var lastDurable uint64
	for i := 0; i < numRequests; i++ {
		answers := make([]dataset.Answer, answersPerReq)
		for j := range answers {
			answers[j] = dataset.Answer{Task: j, Worker: i, Value: float64(j % 2)}
		}
		body, err := stream.EncodeBatchStream([]stream.Batch{{
			NumTasks:   numTasks,
			NumWorkers: numRequests,
			Answers:    answers,
		}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Post(srv.URL+"/v1/ingest-batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var ack api.BatchIngestResponse
			if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
				t.Fatalf("request %d: decode ack: %v", i, err)
			}
			if !ack.Durable || ack.DurableVersion < ack.Version {
				t.Fatalf("request %d acked without durability coverage: %+v", i, ack)
			}
			ackedDurable[i] = true
			lastDurable = ack.DurableVersion
		case http.StatusTooManyRequests:
			if _, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil {
				t.Fatalf("request %d: 429 without a parseable Retry-After: %q", i, resp.Header.Get("Retry-After"))
			}
			rejected[i] = true
		default:
			t.Fatalf("request %d: unexpected status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if len(ackedDurable) == 0 || len(rejected) == 0 {
		t.Fatalf("test needs both outcomes: %d acked, %d rejected", len(ackedDurable), len(rejected))
	}

	// "Kill": the HTTP server stops and the persister is abandoned with
	// no Close/Sync — whatever the group-committed flushes made durable
	// is all the next boot may rely on.
	srv.Close()

	p2, rec2, err := Open(base, fresh, Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer p2.Close()
	if got := rec2.Store.Version(); got < lastDurable {
		t.Fatalf("recovered version %d is behind the acked durable watermark %d", got, lastDurable)
	}
	perWorker := map[int]int{}
	rec2.Store.ForEachAnswer(func(_, worker int) { perWorker[worker]++ })
	for w := range rejected {
		if perWorker[w] != 0 {
			t.Errorf("worker %d: %d answers recovered from a request that was shed with 429", w, perWorker[w])
		}
	}
	for w := range ackedDurable {
		if perWorker[w] != answersPerReq {
			t.Errorf("worker %d: %d/%d answers recovered from a request acked durable", w, perWorker[w], answersPerReq)
		}
	}
}
