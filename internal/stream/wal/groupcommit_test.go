package wal

import (
	"path/filepath"
	"sync"
	"testing"

	"truthinference/internal/dataset"
	"truthinference/internal/stream"
)

// The coalescing tests observe group commit through the durable
// watermark (which only advances at a real durability point) plus a
// stress run under -race; fsync counts themselves are not observable
// without faking the filesystem.

func openGC(t *testing.T, every int) (*Persister, *stream.Store) {
	t.Helper()
	base := filepath.Join(t.TempDir(), "store")
	fresh := func() (*stream.Store, error) { return stream.NewStore("gc", dataset.Decision, 2) }
	p, rec, err := Open(base, fresh, Options{SnapshotEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, rec.Store
}

func TestSyncToAdvancesDurableWatermark(t *testing.T) {
	p, store := openGC(t, 0)
	if got := p.DurableVersion(); got != 0 {
		t.Fatalf("fresh durable = %d, want 0", got)
	}
	var versions []uint64
	for i := 0; i < 5; i++ {
		b := stream.Batch{Answers: []dataset.Answer{{Task: i, Worker: i, Value: 1}}}
		v, _, err := store.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Record(v, b); err != nil {
			t.Fatal(err)
		}
		versions = append(versions, v)
	}
	if got := p.DurableVersion(); got != 0 {
		t.Fatalf("durable before any sync = %d, want 0", got)
	}
	if err := p.SyncTo(versions[2]); err != nil {
		t.Fatal(err)
	}
	// The leader flushes everything appended, not just the asked-for
	// version — that is the group-commit contract.
	if got := p.DurableVersion(); got != versions[4] {
		t.Fatalf("durable after SyncTo(%d) = %d, want %d (whole log)", versions[2], got, versions[4])
	}
	// Asking for an already-durable version is a lock-free no-op.
	if err := p.SyncTo(versions[0]); err != nil {
		t.Fatal(err)
	}
}

func TestSyncToBeyondAppendedFails(t *testing.T) {
	p, store := openGC(t, 0)
	b := stream.Batch{NumTasks: 1, NumWorkers: 1}
	v, _, err := store.Ingest(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Record(v, b); err != nil {
		t.Fatal(err)
	}
	if err := p.SyncTo(v + 1); err == nil {
		t.Fatal("SyncTo beyond the last recorded version succeeded")
	}
}

func TestSyncToAfterClose(t *testing.T) {
	p, store := openGC(t, 0)
	b := stream.Batch{NumTasks: 1, NumWorkers: 1}
	v, _, _ := store.Ingest(b)
	if err := p.Record(v, b); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Close flushed the log, so the watermark covers v and SyncTo(v)
	// succeeds on the fast path without touching the closed file.
	if got := p.DurableVersion(); got != v {
		t.Fatalf("durable after close = %d, want %d", got, v)
	}
	if err := p.SyncTo(v); err != nil {
		t.Fatal(err)
	}
	if err := p.SyncTo(v + 1); err == nil {
		t.Fatal("SyncTo past the watermark on a closed persister succeeded")
	}
}

// TestGroupCommitConcurrent hammers Record+SyncTo from many goroutines
// (each serializing its own Record under a shared mutex, as the Service
// does) while background compaction swaps the log underneath — the
// -race build checks the locking, and every SyncTo must return with the
// watermark at or past its version.
func TestGroupCommitConcurrent(t *testing.T) {
	p, store := openGC(t, 7) // compaction kicks mid-run
	const goroutines, perG = 8, 25

	var ingestMu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				b := stream.Batch{Answers: []dataset.Answer{{Task: g, Worker: i % 4, Value: 1}}}
				ingestMu.Lock()
				v, _, err := store.Ingest(b)
				if err == nil {
					err = p.Record(v, b)
				}
				ingestMu.Unlock()
				if err != nil {
					errs <- err
					return
				}
				if err := p.SyncTo(v); err != nil {
					errs <- err
					return
				}
				if d := p.DurableVersion(); d < v {
					errs <- &CorruptError{Reason: "watermark behind acked version"}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	p.waitIdle()
	if d := p.DurableVersion(); d != store.Version() {
		t.Fatalf("final durable = %d, want store version %d", d, store.Version())
	}

	// The log + snapshot must recover to the full ingested state.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, rec, err := Open(p.base, func() (*stream.Store, error) { return stream.NewStore("gc", dataset.Decision, 2) }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if rec.TailErr != nil {
		t.Fatalf("tail error after clean close: %v", rec.TailErr)
	}
	if rec.Store.Version() != store.Version() {
		t.Fatalf("recovered version %d, want %d", rec.Store.Version(), store.Version())
	}
	if _, _, answers := rec.Store.Dims(); answers != goroutines*perG {
		t.Fatalf("recovered %d answers, want %d", answers, goroutines*perG)
	}
}
