package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestValidNamespace(t *testing.T) {
	for _, ok := range []string{"a", "p1", "my-project", "img_labels.v2", "0day"} {
		if err := ValidNamespace(ok); err != nil {
			t.Errorf("ValidNamespace(%q) = %v, want nil", ok, err)
		}
	}
	bad := []string{
		"", "..", ".hidden", "-lead", "_lead", "UPPER", "has space",
		"slash/inside", "back\\slash", "../traverse", "nul\x00byte",
		strings.Repeat("x", MaxNamespaceLen+1),
	}
	for _, id := range bad {
		if err := ValidNamespace(id); err == nil {
			t.Errorf("ValidNamespace(%q) accepted", id)
		}
	}
}

func TestNamespaceDirRejectsTraversal(t *testing.T) {
	if _, err := NamespaceDir("/tmp/root", "../../etc"); err == nil {
		t.Fatal("traversal id accepted")
	}
	dir, err := NamespaceDir("/tmp/root", "ok")
	if err != nil || dir != filepath.Join("/tmp/root", "ok") {
		t.Fatalf("NamespaceDir = %q, %v", dir, err)
	}
}

func TestNamespacesListing(t *testing.T) {
	root := t.TempDir()
	// Missing root: empty, no error.
	if ids, err := Namespaces(filepath.Join(root, "absent")); err != nil || ids != nil {
		t.Fatalf("missing root: %v, %v", ids, err)
	}
	mk := func(id, file string) {
		dir := filepath.Join(root, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if file != "" {
			if err := os.WriteFile(filepath.Join(dir, file), []byte("x"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	mk("beta", "store.wal")
	mk("alpha", "store.snap")
	mk("empty", "")         // no durable artifacts → skipped
	mk("notes", "todo.txt") // unrelated file → skipped
	mk("BadName", "a.wal")  // invalid id → skipped
	ids, err := Namespaces(root)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "beta"}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("Namespaces = %v, want %v", ids, want)
	}
}
