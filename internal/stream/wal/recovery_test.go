package wal

import (
	"fmt"
	"path/filepath"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/methods/ds"
	"truthinference/internal/simulate"
	"truthinference/internal/stream"
)

// splitBatches cuts a dataset's answer stream into k contiguous batches;
// the first declares the final id ranges, the last carries the truths
// (mirroring the streaming test harness in internal/stream).
func splitBatches(d *dataset.Dataset, k int) []stream.Batch {
	batches := make([]stream.Batch, k)
	per := (len(d.Answers) + k - 1) / k
	for i := range batches {
		lo, hi := i*per, (i+1)*per
		if hi > len(d.Answers) {
			hi = len(d.Answers)
		}
		if lo > hi {
			lo = hi
		}
		batches[i].Answers = append([]dataset.Answer(nil), d.Answers[lo:hi]...)
	}
	batches[0].NumTasks = d.NumTasks
	batches[0].NumWorkers = d.NumWorkers
	batches[k-1].Truth = d.Truth
	return batches
}

// runPersisted streams batches through a persisted service for the given
// method and returns the served truths. refresh runs an epoch after each
// batch (required for the iterative methods; a no-op durability flush
// for the incremental ones).
func runPersisted(t *testing.T, base string, method core.Method, batches []stream.Batch, snapshotEvery int) []float64 {
	t.Helper()
	p, rec, err := Open(base, freshFor(batches), Options{SnapshotEvery: snapshotEvery})
	if err != nil {
		t.Fatal(err)
	}
	// The persister is abandoned below to simulate a crash, but a
	// background compaction it kicked may still be writing snapshot
	// files; wait it out before the TempDir is destroyed (a completed
	// compaction is itself a legal crash boundary, so this changes
	// nothing the assertions care about).
	t.Cleanup(p.waitIdle)
	svc, err := stream.NewService(rec.Store, stream.Config{
		Method:  method,
		Options: core.Options{Seed: 11},
		Persist: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, b := range batches {
		if _, err := svc.Ingest(b); err != nil {
			t.Fatal(err)
		}
		if err := svc.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	truths, _, err := svc.Truths()
	if err != nil {
		t.Fatal(err)
	}
	// Simulated crash: the persister is abandoned, not closed — no final
	// snapshot, no explicit fsync beyond the epoch-boundary ones.
	return truths
}

// freshFor builds a deterministic empty-store factory matching the task
// type the batch schedule implies.
func freshFor(batches []stream.Batch) func() (*stream.Store, error) {
	numeric := false
	for _, b := range batches {
		for _, a := range b.Answers {
			if a.Value != float64(int(a.Value)) || a.Value > 1 {
				numeric = true
			}
		}
	}
	return func() (*stream.Store, error) {
		if numeric {
			return stream.NewStore("recovery", dataset.Numeric, 0)
		}
		return stream.NewStore("recovery", dataset.Decision, 2)
	}
}

// TestRecoveryEquivalenceAtEveryBoundary is the crash-recovery golden
// gate: a stream of K batches is killed after every batch boundary j,
// recovered from <base>.snap + <base>.wal, and the recovered store must
// be bit-identical to an in-memory store that ingested the same j
// batches (version, dims, answers in global order, truths). The
// recovered stream then continues to the end, and its final served
// truths must be bit-identical to the uninterrupted run for the exact
// incremental methods (MV on decision data, Mean and Median on numeric
// data). SnapshotEvery=2 makes alternate boundaries recover from a
// snapshot+WAL mix rather than the WAL alone.
func TestRecoveryEquivalenceAtEveryBoundary(t *testing.T) {
	const k = 5
	cases := []struct {
		name   string
		data   *dataset.Dataset
		method func() core.Method
	}{
		{"MV", simulate.GenerateScaled(simulate.DProduct, 7, 0.03), func() core.Method { return direct.NewMV() }},
		{"Mean", simulate.GenerateScaled(simulate.NEmotion, 7, 0.08), func() core.Method { return direct.NewMean() }},
		{"Median", simulate.GenerateScaled(simulate.NEmotion, 7, 0.08), func() core.Method { return direct.NewMedian() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batches := splitBatches(tc.data, k)
			fresh := freshFor(batches)

			// Uninterrupted persisted run = the golden truths.
			golden := runPersisted(t, filepath.Join(t.TempDir(), "golden"), tc.method(), batches, 2)

			for j := 1; j <= k; j++ {
				base := filepath.Join(t.TempDir(), fmt.Sprintf("boundary-%d", j))
				// Phase 1: stream j batches, then crash.
				runPersisted(t, base, tc.method(), batches[:j], 2)

				// Phase 2: recover and compare against an in-memory
				// reference that ingested the same prefix.
				p, rec, err := Open(base, fresh, Options{})
				if err != nil {
					t.Fatalf("boundary %d: recover: %v", j, err)
				}
				if rec.TailErr != nil {
					t.Fatalf("boundary %d: clean crash produced corrupt tail: %v", j, rec.TailErr)
				}
				want, err := fresh()
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range batches[:j] {
					if _, _, err := want.Ingest(b); err != nil {
						t.Fatal(err)
					}
				}
				requireIdentical(t, rec.Store, want)

				// Phase 3: continue the stream on the recovered store and
				// compare the final truths bit-for-bit.
				svc, err := stream.NewService(rec.Store, stream.Config{
					Method:  tc.method(),
					Options: core.Options{Seed: 11},
					Persist: p,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range batches[j:] {
					if _, err := svc.Ingest(b); err != nil {
						t.Fatal(err)
					}
					if err := svc.Refresh(); err != nil {
						t.Fatal(err)
					}
				}
				got, _, err := svc.Truths()
				if err != nil {
					t.Fatal(err)
				}
				svc.Close()
				p.Close()
				if len(got) != len(golden) {
					t.Fatalf("boundary %d: %d truths, golden has %d", j, len(got), len(golden))
				}
				for i := range got {
					if got[i] != golden[i] {
						t.Fatalf("boundary %d: task %d recovered truth %v, uninterrupted %v (must be bit-identical)",
							j, i, got[i], golden[i])
					}
				}
			}
		})
	}
}

// TestRecoveryWarmStartLabelEquivalence extends the gate to the
// warm-started iterative path: D&S killed and recovered at every batch
// boundary must serve (nearly) the same labels as the uninterrupted
// warm-started stream. Recovery restarts the EM chain cold at the
// boundary, so the guarantee is label agreement within convergence
// tolerance — the same contract the streaming equivalence gates pin —
// rather than bit equality.
func TestRecoveryWarmStartLabelEquivalence(t *testing.T) {
	const k = 4
	data := simulate.GenerateScaled(simulate.DProduct, 7, 0.03)
	batches := splitBatches(data, k)
	fresh := freshFor(batches)

	golden := runPersisted(t, filepath.Join(t.TempDir(), "golden"), ds.New(), batches, 2)

	for j := 1; j <= k; j++ {
		base := filepath.Join(t.TempDir(), fmt.Sprintf("boundary-%d", j))
		runPersisted(t, base, ds.New(), batches[:j], 2)

		p, rec, err := Open(base, fresh, Options{})
		if err != nil {
			t.Fatalf("boundary %d: recover: %v", j, err)
		}
		want, err := fresh()
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:j] {
			if _, _, err := want.Ingest(b); err != nil {
				t.Fatal(err)
			}
		}
		requireIdentical(t, rec.Store, want)

		svc, err := stream.NewService(rec.Store, stream.Config{
			Method:  ds.New(),
			Options: core.Options{Seed: 11},
			Persist: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Refresh(); err != nil { // first epoch over the recovered prefix
			t.Fatal(err)
		}
		for _, b := range batches[j:] {
			if _, err := svc.Ingest(b); err != nil {
				t.Fatal(err)
			}
			if err := svc.Refresh(); err != nil {
				t.Fatal(err)
			}
		}
		got, _, err := svc.Truths()
		if err != nil {
			t.Fatal(err)
		}
		svc.Close()
		agree := 0
		for i := range got {
			if got[i] == golden[i] {
				agree++
			}
		}
		if frac := float64(agree) / float64(len(got)); frac < 0.98 {
			t.Errorf("boundary %d: recovered D&S labels agree with uninterrupted run on %.4f < 0.98 of tasks", j, frac)
		}
	}
}
