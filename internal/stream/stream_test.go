package stream

import (
	"errors"
	"math"
	"sync"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/catd"
	"truthinference/internal/methods/direct"
	"truthinference/internal/methods/ds"
	"truthinference/internal/methods/glad"
	"truthinference/internal/methods/lfc"
	"truthinference/internal/methods/pm"
	"truthinference/internal/methods/vi"
	"truthinference/internal/methods/zc"
	"truthinference/internal/simulate"
)

// splitBatches cuts the dataset's answer stream into k contiguous batches.
// The first batch declares the final id ranges (so answer-less tasks
// exist from the start, as on a real platform where tasks are published
// before workers answer) and the last carries the ground truths.
func splitBatches(d *dataset.Dataset, k int) []Batch {
	batches := make([]Batch, k)
	per := (len(d.Answers) + k - 1) / k
	for i := range batches {
		lo := i * per
		hi := lo + per
		if hi > len(d.Answers) {
			hi = len(d.Answers)
		}
		if lo > hi {
			lo = hi
		}
		batches[i].Answers = append([]dataset.Answer(nil), d.Answers[lo:hi]...)
	}
	batches[0].NumTasks = d.NumTasks
	batches[0].NumWorkers = d.NumWorkers
	batches[k-1].Truth = d.Truth
	return batches
}

func newServiceOver(t *testing.T, d *dataset.Dataset, m core.Method, opts core.Options) *Service {
	t.Helper()
	store, err := NewStore(d.Name, d.Type, d.NumChoices)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(store, Config{Method: m, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// TestIncrementalExactEquivalence is the streaming equivalence gate for
// the exact O(delta) methods: ingesting in batches must reproduce
// one-shot batch inference bit-for-bit, at 1 and 8 workers.
func TestIncrementalExactEquivalence(t *testing.T) {
	decision := simulate.GenerateScaled(simulate.DProduct, 7, 0.04)
	numeric := simulate.GenerateScaled(simulate.NEmotion, 7, 0.1)
	cases := []struct {
		method core.Method
		data   *dataset.Dataset
	}{
		{direct.NewMV(), decision},
		{direct.NewMean(), numeric},
		{direct.NewMedian(), numeric},
	}
	for _, tc := range cases {
		for _, par := range []int{1, 8} {
			opts := core.Options{Seed: 11, Parallelism: par}
			want, err := tc.method.Infer(tc.data, opts)
			if err != nil {
				t.Fatalf("%s batch: %v", tc.method.Name(), err)
			}
			svc := newServiceOver(t, tc.data, tc.method, opts)
			for _, b := range splitBatches(tc.data, 5) {
				if _, err := svc.Ingest(b); err != nil {
					t.Fatalf("%s ingest: %v", tc.method.Name(), err)
				}
			}
			got, _, err := svc.Truths()
			if err != nil {
				t.Fatalf("%s truths: %v", tc.method.Name(), err)
			}
			if len(got) != len(want.Truth) {
				t.Fatalf("%s: %d truths streamed vs %d batch", tc.method.Name(), len(got), len(want.Truth))
			}
			for i := range got {
				if got[i] != want.Truth[i] {
					t.Fatalf("%s par=%d: task %d streamed %v, batch %v (must be bit-identical)",
						tc.method.Name(), par, i, got[i], want.Truth[i])
				}
			}
		}
	}
}

// TestWarmStartLabelEquivalence is the streaming equivalence gate for the
// warm-started iterative methods: streaming N batches with a refresh
// after each must serve (nearly) the same labels as a cold one-shot run
// on the final dataset, at 1 and 8 workers.
func TestWarmStartLabelEquivalence(t *testing.T) {
	decision := simulate.GenerateScaled(simulate.DProduct, 7, 0.04)
	single := simulate.GenerateScaled(simulate.SRel, 7, 0.04)
	numeric := simulate.GenerateScaled(simulate.NEmotion, 7, 0.1)
	cases := []struct {
		method core.Method
		data   *dataset.Dataset
		// minAgree is the minimum fraction of identical labels
		// (categorical); numeric methods instead bound the truth RMSE
		// between the warm and cold runs by maxRMSE. GLAD's gate is
		// looser because its gradient-ascent M-step does not converge
		// within the iteration cap even cold, so residual label churn is
		// cap noise rather than warm-start drift; PM's hard-label
		// coordinate descent admits several fixed points of equal
		// accuracy.
		minAgree float64
		maxRMSE  float64
	}{
		{ds.New(), decision, 0.98, 0},
		{glad.New(), decision, 0.93, 0},
		{zc.New(), decision, 0.98, 0},
		{lfc.New(), single, 0.98, 0},
		{pm.New(), single, 0.95, 0},
		{catd.New(), decision, 0.98, 0},
		{vi.NewMF(), decision, 0.98, 0},
		{vi.NewBP(), decision, 0.98, 0},
		// LFC_N resumes its full EM state (truths and learned worker
		// variances) and must still descend into the cold run's basin.
		// Before PR 6 this case was vacuous: the warm start discarded
		// variances, so the first truth step rebuilt exactly the cold
		// trajectory and the old 1e-9 gate compared a run with itself.
		// Now the bound is a real one — fixed-point agreement within
		// convergence tolerance on truths — and checkWorkerModel below
		// additionally requires the learned per-worker qualities to
		// match, which pins the basin, not just the labels.
		{lfc.NewNumeric(), numeric, 0, 1e-3},
	}
	for _, tc := range cases {
		for _, par := range []int{1, 8} {
			opts := core.Options{Seed: 11, Parallelism: par}
			cold, err := tc.method.Infer(tc.data, opts)
			if err != nil {
				t.Fatalf("%s cold: %v", tc.method.Name(), err)
			}
			svc := newServiceOver(t, tc.data, tc.method, opts)
			for _, b := range splitBatches(tc.data, 4) {
				if _, err := svc.Ingest(b); err != nil {
					t.Fatalf("%s ingest: %v", tc.method.Name(), err)
				}
				if err := svc.Refresh(); err != nil {
					t.Fatalf("%s refresh: %v", tc.method.Name(), err)
				}
			}
			got, version, err := svc.Truths()
			if err != nil {
				t.Fatalf("%s truths: %v", tc.method.Name(), err)
			}
			if version != svc.Stats().StoreVersion {
				t.Fatalf("%s: served version %d is stale after explicit refresh", tc.method.Name(), version)
			}
			if len(got) != len(cold.Truth) {
				t.Fatalf("%s: %d truths streamed vs %d batch", tc.method.Name(), len(got), len(cold.Truth))
			}
			if tc.data.Categorical() {
				agree := 0
				for i := range got {
					if got[i] == cold.Truth[i] {
						agree++
					}
				}
				frac := float64(agree) / float64(len(got))
				if frac < tc.minAgree {
					t.Errorf("%s par=%d: warm-started labels agree with cold one-shot on %.4f < %.2f of tasks",
						tc.method.Name(), par, frac, tc.minAgree)
				}
			} else {
				var ss float64
				for i := range got {
					dv := got[i] - cold.Truth[i]
					ss += dv * dv
				}
				rmse := math.Sqrt(ss / float64(len(got)))
				if rmse > tc.maxRMSE {
					t.Errorf("%s par=%d: warm vs cold truth RMSE %.4f > %g", tc.method.Name(), par, rmse, tc.maxRMSE)
				}
				checkWorkerModel(t, svc, cold, tc.method.Name(), par)
			}
		}
	}
}

// checkWorkerModel requires the warm-started service's learned per-worker
// qualities to match the cold run's within 5% relative error. Label
// agreement alone cannot distinguish the cold basin from a degenerate one
// that happens to rank the same answers first; the worker model can.
func checkWorkerModel(t *testing.T, svc *Service, cold *core.Result, name string, par int) {
	t.Helper()
	for w := range cold.WorkerQuality {
		got, err := svc.WorkerQuality(w)
		if err != nil {
			t.Fatalf("%s par=%d: WorkerQuality(%d): %v", name, par, w, err)
		}
		want := cold.WorkerQuality[w]
		if math.Abs(got-want) > 0.05*math.Abs(want) {
			t.Errorf("%s par=%d: worker %d warm quality %.6g vs cold %.6g (>5%% apart — different basin)",
				name, par, w, got, want)
		}
	}
}

// TestWarmStartConvergesFaster checks the point of warm starts: the final
// epoch (a small delta on top of a converged posterior) takes no more
// iterations than the cold one-shot run on the same data.
func TestWarmStartConvergesFaster(t *testing.T) {
	data := simulate.GenerateScaled(simulate.DProduct, 7, 0.04)
	opts := core.Options{Seed: 11}
	for _, m := range []core.Method{ds.New(), zc.New()} {
		cold, err := m.Infer(data, opts)
		if err != nil {
			t.Fatal(err)
		}
		svc := newServiceOver(t, data, m, opts)
		for _, b := range splitBatches(data, 4) {
			if _, err := svc.Ingest(b); err != nil {
				t.Fatal(err)
			}
			if err := svc.Refresh(); err != nil {
				t.Fatal(err)
			}
		}
		st := svc.Stats()
		if !st.Converged {
			t.Errorf("%s: warm-started final epoch did not converge", m.Name())
		}
		if st.Iterations > cold.Iterations {
			t.Errorf("%s: warm-started final epoch took %d iterations, cold one-shot %d",
				m.Name(), st.Iterations, cold.Iterations)
		}
	}
}

func TestServiceQueryBeforeFirstEpoch(t *testing.T) {
	store, err := NewStore("empty", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(store, Config{Method: ds.New(), Options: core.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Truth(0); !errors.Is(err, ErrNotInferred) {
		t.Errorf("Truth before refresh: %v, want ErrNotInferred", err)
	}
	if _, _, err := svc.Truths(); !errors.Is(err, ErrNotInferred) {
		t.Errorf("Truths before refresh: %v, want ErrNotInferred", err)
	}
	if _, err := svc.WorkerQuality(0); !errors.Is(err, ErrNotInferred) {
		t.Errorf("WorkerQuality before refresh: %v, want ErrNotInferred", err)
	}
}

func TestNewServiceRejectsTypeMismatch(t *testing.T) {
	// MV over a numeric store must fail at construction, not mid-ingest:
	// the incremental path never reaches core.CheckSupport.
	numeric, err := NewStore("n", dataset.Numeric, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewService(numeric, Config{Method: direct.NewMV(), Options: core.Options{Seed: 1}}); err == nil {
		t.Error("MV over a numeric store accepted")
	}
	if _, err := NewService(numeric, Config{Method: ds.New(), Options: core.Options{Seed: 1}}); err == nil {
		t.Error("D&S over a numeric store accepted")
	}
	decision, err := NewStore("d", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewService(decision, Config{Method: direct.NewMean(), Options: core.Options{Seed: 1}}); err == nil {
		t.Error("Mean over a decision store accepted")
	}
}

func TestStoreRejectsBadBatchAtomically(t *testing.T) {
	store, err := NewStore("guard", dataset.SingleChoice, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Ingest(Batch{Answers: []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1},
		{Task: 1, Worker: 0, Value: 9}, // invalid label
	}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if tasks, workers, answers := store.Dims(); tasks != 0 || workers != 0 || answers != 0 {
		t.Errorf("rejected batch mutated the store: %d/%d/%d", tasks, workers, answers)
	}
	if store.Version() != 0 {
		t.Errorf("rejected batch bumped the version to %d", store.Version())
	}
	if _, _, err := store.Ingest(Batch{Truth: map[int]float64{5: 0.5}}); err == nil {
		t.Fatal("fractional categorical truth accepted")
	}
}

// TestStoreRejectsAbsurdDims pins the id cap: ids are dense, so one
// absurd task or worker id would commit the incremental state, the
// snapshot index build — and, with a WAL attached, every future restart
// — to allocations proportional to it. Such batches must be rejected
// atomically, not accepted into the version history.
func TestStoreRejectsAbsurdDims(t *testing.T) {
	store, err := NewStore("cap", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Batch{
		{NumTasks: MaxDim + 1},
		{NumWorkers: MaxDim + 1},
		{Answers: []dataset.Answer{{Task: MaxDim, Worker: 0, Value: 1}}},
		{Answers: []dataset.Answer{{Task: 0, Worker: MaxDim, Value: 1}}},
		{Truth: map[int]float64{MaxDim: 1}},
	} {
		if _, _, err := store.Ingest(b); err == nil {
			t.Errorf("batch growing dims beyond MaxDim accepted: %+v", b)
		}
	}
	if v := store.Version(); v != 0 {
		t.Errorf("rejected batches bumped the version to %d", v)
	}
	if tasks, workers, answers := store.Dims(); tasks != 0 || workers != 0 || answers != 0 {
		t.Errorf("rejected batches grew the store: %d/%d/%d", tasks, workers, answers)
	}
	// The cap itself is admissible.
	if _, _, err := store.Ingest(Batch{NumTasks: MaxDim, NumWorkers: 8}); err != nil {
		t.Errorf("dims at the cap rejected: %v", err)
	}
}

// TestStoreRejectsOversizedBatch pins the per-batch cap that keeps
// every admissible batch within the WAL's per-record limit: a batch the
// store acknowledges must never be one that replay rejects as corrupt.
func TestStoreRejectsOversizedBatch(t *testing.T) {
	store, err := NewStore("batchcap", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The cap check is O(1) and runs before validation, so the huge
	// zero-valued slice is never even inspected.
	if _, _, err := store.Ingest(Batch{Answers: make([]dataset.Answer, MaxBatch+1)}); err == nil {
		t.Error("batch beyond the answer cap accepted")
	}
	if v := store.Version(); v != 0 {
		t.Errorf("rejected oversized batch bumped the version to %d", v)
	}
}

// flakyPersister fails Record or Sync on demand, simulating a full or
// failing disk under the write-ahead log.
type flakyPersister struct {
	fail     bool
	records  int
	syncFail bool
	syncs    int
}

func (f *flakyPersister) Record(uint64, Batch) error {
	if f.fail {
		return errors.New("disk full")
	}
	f.records++
	return nil
}

func (f *flakyPersister) Sync() error {
	if f.syncFail {
		return errors.New("fsync failed")
	}
	f.syncs++
	return nil
}

// TestIngestHaltsAfterPersistFailure pins the fail-stop contract: after
// one batch is applied in memory but not logged, recording any later
// batch would leave a version gap recovery reads as corruption — so the
// service must reject all further ingestion, not keep streaming.
func TestIngestHaltsAfterPersistFailure(t *testing.T) {
	store, err := NewStore("halt", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyPersister{}
	svc, err := NewService(store, Config{Method: direct.NewMV(), Options: core.Options{Seed: 1}, Persist: p})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ok := Batch{Answers: []dataset.Answer{{Task: 0, Worker: 0, Value: 1}}}
	if _, err := svc.Ingest(ok); err != nil {
		t.Fatal(err)
	}
	p.fail = true
	if _, err := svc.Ingest(ok); err == nil {
		t.Fatal("ingest with failing WAL succeeded")
	}
	p.fail = false
	if _, err := svc.Ingest(ok); err == nil {
		t.Fatal("ingestion continued after a WAL gap formed")
	}
	if p.records != 1 {
		t.Fatalf("%d batches recorded after the gap, want the 1 pre-failure record", p.records)
	}
}

// TestRefreshRetriesFailedEpochFlush pins the durability-boundary
// contract: when the epoch-boundary fsync fails after the result was
// published, the result is fresh — but Refresh must keep failing (and
// retrying the flush) until a Sync succeeds, never report success while
// acknowledged data might not be on disk.
func TestRefreshRetriesFailedEpochFlush(t *testing.T) {
	store, err := NewStore("flush", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyPersister{}
	svc, err := NewService(store, Config{Method: zc.New(), Options: core.Options{Seed: 1}, Persist: p})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Ingest(Batch{Answers: []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 1}, {Task: 1, Worker: 0, Value: 0},
	}}); err != nil {
		t.Fatal(err)
	}

	p.syncFail = true
	if err := svc.Refresh(); err == nil {
		t.Fatal("Refresh with a failing fsync reported success")
	}
	if !svc.Stats().Fresh {
		t.Fatal("epoch result was not published despite the flush failure")
	}
	// Still failing: the store is fresh, but the flush is outstanding.
	if err := svc.Refresh(); err == nil {
		t.Fatal("fresh Refresh dropped the outstanding flush failure")
	}
	p.syncFail = false
	if err := svc.Refresh(); err != nil {
		t.Fatalf("Refresh after the disk healed: %v", err)
	}
	if p.syncs == 0 {
		t.Fatal("healed Refresh never retried the fsync")
	}
	if err := svc.Refresh(); err != nil {
		t.Fatalf("steady-state fresh Refresh: %v", err)
	}
}

// TestConcurrentReadersDuringIngest hammers the service with parallel
// readers while batches stream in and epochs run — the race detector in
// CI turns any unsynchronized access into a failure.
func TestConcurrentReadersDuringIngest(t *testing.T) {
	data := simulate.GenerateScaled(simulate.DProduct, 7, 0.02)
	svc := newServiceOver(t, data, zc.New(), core.Options{Seed: 3, Parallelism: 4})
	batches := splitBatches(data, 8)
	if _, err := svc.Ingest(batches[0]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Refresh(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := svc.Truths(); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if _, err := svc.Truth(0); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				_ = svc.Stats()
			}
		}()
	}
	for _, b := range batches[1:] {
		if _, err := svc.Ingest(b); err != nil {
			t.Fatal(err)
		}
		if err := svc.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestAutoRefreshEventuallyFresh checks the coalesced background path:
// after the stream quiesces, the published result catches up with the
// store version without explicit refreshes.
func TestAutoRefreshEventuallyFresh(t *testing.T) {
	data := simulate.GenerateScaled(simulate.DProduct, 7, 0.02)
	store, err := NewStore(data.Name, data.Type, data.NumChoices)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(store, Config{Method: zc.New(), Options: core.Options{Seed: 3}, AutoRefresh: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, b := range splitBatches(data, 3) {
		if _, err := svc.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	// The last background epoch may still be in flight; a final
	// synchronous Refresh joins it and is a no-op if already fresh.
	if err := svc.Refresh(); err != nil {
		t.Fatal(err)
	}
	for !svc.Stats().Fresh {
		if err := svc.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
}
