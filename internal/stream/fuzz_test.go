package stream

import (
	"encoding/binary"
	"math"
	"testing"

	"truthinference/internal/dataset"
)

// FuzzStoreIngest feeds the sharded store batches derived from arbitrary
// bytes — valid ones, out-of-range ids, fractional and non-finite
// values, negative dims — and asserts the ingest invariants the serving
// and durability layers build on:
//
//   - Ingest never panics;
//   - a rejected batch never tears a partial delta (version, dims and
//     answer count are all unchanged);
//   - an accepted batch bumps the version by exactly 1 and appends at
//     the previous answer count;
//   - the final store always snapshots to a structurally valid dataset
//     whose answer count matches the reported dims.
//
// The byte→batch mapping is generative (every input produces a batch),
// so the fuzzer explores the validator and the shard commit path rather
// than a decoder's error returns.
func FuzzStoreIngest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0xFF, 0x00, 0x41, 0x80, 0x01, 0x7F, 0xFE, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70})
	// A long input drives many batches through one store.
	long := make([]byte, 256)
	for i := range long {
		long[i] = byte(i * 37)
	}
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		store, err := NewStoreN("fuzz", dataset.SingleChoice, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		r := fuzzReader{data: data}
		for batches := 0; batches < 16 && !r.done(); batches++ {
			b := nextFuzzBatch(&r)

			beforeVersion := store.Version()
			beforeTasks, beforeWorkers, beforeAnswers := store.Dims()
			version, firstNew, err := store.Ingest(b)
			if err != nil {
				v := store.Version()
				tasks, workers, answers := store.Dims()
				if v != beforeVersion || tasks != beforeTasks || workers != beforeWorkers || answers != beforeAnswers {
					t.Fatalf("rejected batch tore the store: version %d→%d, dims %d/%d/%d → %d/%d/%d",
						beforeVersion, v, beforeTasks, beforeWorkers, beforeAnswers, tasks, workers, answers)
				}
				continue
			}
			if version != beforeVersion+1 {
				t.Fatalf("accepted batch moved version %d → %d, want +1", beforeVersion, version)
			}
			if firstNew != beforeAnswers {
				t.Fatalf("firstNew = %d, want previous answer count %d", firstNew, beforeAnswers)
			}
		}

		// Snapshot re-validates the whole store through dataset.New: a
		// torn commit would surface as a panic or count mismatch here.
		d, version := store.Snapshot()
		if version != store.Version() {
			t.Fatalf("quiescent snapshot at version %d, store at %d", version, store.Version())
		}
		_, _, answers := store.Dims()
		if len(d.Answers) != answers {
			t.Fatalf("snapshot has %d answers, dims say %d", len(d.Answers), answers)
		}
	})
}

// fuzzReader doles out bytes; exhausted input reads zeros so every
// prefix still decodes into some batch sequence.
type fuzzReader struct {
	data []byte
	off  int
}

func (r *fuzzReader) done() bool { return r.off >= len(r.data) }

func (r *fuzzReader) byte() byte {
	if r.off >= len(r.data) {
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// nextFuzzBatch derives one batch: mostly plausible ids with occasional
// hostile ones (negative, huge, fractional/non-finite values).
func nextFuzzBatch(r *fuzzReader) Batch {
	var b Batch
	mode := r.byte()
	if mode&1 != 0 { // declare dims, sometimes negative
		b.NumTasks = int(int8(r.byte())) * 4
		b.NumWorkers = int(int8(r.byte())) * 2
	}
	n := int(r.byte() % 8)
	for i := 0; i < n; i++ {
		a := dataset.Answer{
			Task:   int(int8(r.byte())),
			Worker: int(int8(r.byte())),
			Value:  float64(r.byte() % 5), // labels 0..4 against ℓ=3: some invalid
		}
		switch r.byte() % 16 {
		case 0:
			a.Value = math.NaN()
		case 1:
			a.Value = math.Inf(1)
		case 2:
			a.Value += 0.5 // fractional label
		case 3:
			a.Task = int(binary.LittleEndian.Uint16([]byte{r.byte(), r.byte()})) // large id: grows dims across many chunks
		}
		b.Answers = append(b.Answers, a)
	}
	if mode&2 != 0 {
		b.Truth = map[int]float64{}
		for i := byte(0); i < r.byte()%3; i++ {
			b.Truth[int(int8(r.byte()))] = float64(r.byte()%4) + float64(r.byte()%2)/2
		}
	}
	return b
}
