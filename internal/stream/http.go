package stream

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"truthinference/internal/api"
	"truthinference/internal/dataset"
)

// The HTTP API over a Service, mounted by cmd/truthserve and exercised
// end-to-end by the httptest suite:
//
//	POST /v1/ingest        {"answers":[{"task":0,"worker":1,"value":1}],
//	                        "truth":{"0":1}, "num_tasks":10, "num_workers":5}
//	POST /v1/ingest-batch  binary batch stream (see codec.go): magic
//	                       "TIBAT\x01\r\n" + CRC-framed batch payloads;
//	                       the response distinguishes accepted (version)
//	                       from durable (durable_version)
//	POST /v1/refresh       run one inference epoch now (no-op when fresh)
//	GET  /v1/truth/{task}  one task's truth + confidence
//	GET  /v1/truths        the full truth vector + the version it reflects
//	GET  /v1/worker/{id}   one worker's estimated quality
//	GET  /v1/stats         store + serving statistics
//	GET  /v1/healthz       liveness probe
//
// Errors use the shared envelope from internal/api; both ingest
// endpoints enforce Config.Limits, shedding load with 429 + Retry-After
// before committing anything — a rejected request acknowledges nothing.
//
// Reads are served from the last published result and never block behind
// a running inference epoch; the reported version says how fresh they are.

func toBatch(r api.IngestRequest) (Batch, error) {
	b := Batch{NumTasks: r.NumTasks, NumWorkers: r.NumWorkers}
	if len(r.Answers) > 0 {
		b.Answers = make([]dataset.Answer, len(r.Answers))
		for i, a := range r.Answers {
			b.Answers[i] = dataset.Answer{Task: a.Task, Worker: a.Worker, Value: a.Value}
		}
	}
	if len(r.Truth) > 0 {
		b.Truth = make(map[int]float64, len(r.Truth))
		for k, v := range r.Truth {
			t, err := strconv.Atoi(k)
			if err != nil {
				return Batch{}, fmt.Errorf("truth key %q is not a task id", k)
			}
			b.Truth[t] = v
		}
	}
	return b, nil
}

// Handler returns the HTTP API over the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/ingest-batch", s.handleIngestBatch)
	mux.HandleFunc("POST /v1/refresh", s.handleRefresh)
	mux.HandleFunc("GET /v1/truth/{task}", s.handleTruth)
	mux.HandleFunc("GET /v1/truths", s.handleTruths)
	mux.HandleFunc("GET /v1/worker/{worker}", s.handleWorker)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.Health{Status: "ok"})
	})
	return mux
}

// admit charges n answers against the service's rate and quota limits,
// writing the 429 itself on rejection. Nothing may be committed before
// admit says yes: a shed request must acknowledge no data.
//
// Quota headroom is *reserved* atomically here, not merely checked:
// checking Dims() and committing later would let two concurrent
// requests, each individually under MaxAnswers, pass the check together
// and jointly exceed it. The returned release hands the reservation
// back and must run only once the request's outcome is reflected in the
// store's answer count (after Ingest returned, success or failure) —
// callers defer it — so at every instant the quota covers stored plus
// in-flight answers and the cap is hard under concurrency.
func (s *Service) admit(w http.ResponseWriter, n int) (release func(), ok bool) {
	// The rate limiter charges at least 1 so probes are never free, but
	// the quota reserves only the actual answer count: MaxAnswers caps
	// stored answers, and charging metadata-only requests against it
	// would leave a tenant at quota unable to ever grow its task board
	// or post workers again.
	charge := n
	if charge < 1 {
		charge = 1
	}
	release = func() {}
	if q := s.cfg.Limits.MaxAnswers; q > 0 && n > 0 {
		for {
			// The reservation is loaded before the store count: a racing
			// request releases only after its answers are in the count, so
			// this order can at worst see both (a spurious 429), never
			// neither (an over-commit past the quota).
			reserved := s.quotaReserved.Load()
			_, _, answers := s.store.Dims()
			if answers+int(reserved)+n > q {
				s.cfg.Metrics.observeShed(n, true)
				api.RateLimited(w, QuotaRetryAfter,
					fmt.Errorf("%w: %d stored + %d in flight + %d incoming exceeds the %d-answer quota",
						ErrQuotaExceeded, answers, reserved, n, q))
				return nil, false
			}
			if s.quotaReserved.CompareAndSwap(reserved, reserved+int64(n)) {
				break
			}
		}
		m := int64(n)
		s.cfg.Metrics.quotaReserve(m)
		release = func() {
			s.quotaReserved.Add(-m)
			s.cfg.Metrics.quotaReserve(-m)
		}
	}
	if wait, limOK := s.limiter.Admit(charge); !limOK {
		release()
		s.cfg.Metrics.observeShed(charge, false)
		api.RateLimited(w, wait, ErrRateLimited)
		return nil, false
	}
	s.cfg.Metrics.observeAdmitted(charge)
	return release, true
}

// ingestStatus maps an Ingest error onto its HTTP status.
func ingestStatus(err error) int {
	if errors.Is(err, ErrClosed) {
		// The project was deleted while this request was in flight.
		return http.StatusGone
	}
	return http.StatusUnprocessableEntity
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req api.IngestRequest
	if !api.DecodeJSON(w, r, api.MaxIngestBody, &req) {
		return
	}
	b, err := toBatch(req)
	if err != nil {
		api.Error(w, http.StatusBadRequest, err)
		return
	}
	release, ok := s.admit(w, len(b.Answers))
	if !ok {
		return
	}
	defer release()
	version, err := s.Ingest(b)
	if err != nil {
		api.Error(w, ingestStatus(err), err)
		return
	}
	tasks, workers, answers := s.store.Dims()
	api.WriteJSON(w, http.StatusOK, api.IngestResponse{
		Version:  version,
		Ingested: len(b.Answers),
		Tasks:    tasks,
		Workers:  workers,
		Answers:  answers,
	})
}

func (s *Service) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, api.MaxBatchBody)
	var batches []Batch
	total := 0
	if _, err := ReadBatchStream(body, func(b Batch) error {
		batches = append(batches, b)
		total += len(b.Answers)
		return nil
	}); err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			api.Error(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch stream exceeds the %d-byte cap", tooBig.Limit))
		case errors.Is(err, ErrFrameTooLarge):
			api.Error(w, http.StatusRequestEntityTooLarge, err)
		default:
			api.Error(w, http.StatusBadRequest, err)
		}
		return
	}
	if len(batches) == 0 {
		api.Error(w, http.StatusBadRequest, errors.New("batch stream carries no frames"))
		return
	}
	// The whole request is admitted or shed as one unit, before any
	// frame commits — a 429 therefore never acknowledges an answer. The
	// reservation is held until this handler returns: by then every
	// committed frame is in the store count and every failed one never
	// will be.
	release, ok := s.admit(w, total)
	if !ok {
		return
	}
	defer release()
	var version uint64
	for i, b := range batches {
		v, err := s.Ingest(b)
		if err != nil {
			// Frames commit in order; i of them are already in. Report
			// the commit point so the client can resume past it.
			api.Error(w, ingestStatus(err),
				fmt.Errorf("frame %d of %d rejected after %d committed through version %d: %w",
					i, len(batches), i, version, err))
			return
		}
		version = v
	}
	// One group-committed flush for the whole request: concurrent
	// requests queue behind a shared fsync leader instead of paying one
	// fsync per frame. The response states the durable watermark
	// explicitly — "accepted" (version) is not "durable"
	// (durable_version) until the WAL has flushed past it.
	durableVersion, durable, err := s.DurableTo(version)
	if err != nil {
		api.Error(w, http.StatusInternalServerError,
			fmt.Errorf("committed through version %d but durability not confirmed past %d: %w",
				version, durableVersion, err))
		return
	}
	tasks, workers, answers := s.store.Dims()
	api.WriteJSON(w, http.StatusOK, api.BatchIngestResponse{
		Batches:        len(batches),
		Ingested:       total,
		Version:        version,
		Durable:        durable,
		DurableVersion: durableVersion,
		Tasks:          tasks,
		Workers:        workers,
		Answers:        answers,
	})
}

func (s *Service) handleRefresh(w http.ResponseWriter, _ *http.Request) {
	if err := s.Refresh(); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			status = http.StatusGone
		}
		api.Error(w, status, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleTruth(w http.ResponseWriter, r *http.Request) {
	task, err := strconv.Atoi(r.PathValue("task"))
	if err != nil {
		api.Error(w, http.StatusBadRequest, fmt.Errorf("task id %q is not an integer", r.PathValue("task")))
		return
	}
	info, err := s.Truth(task)
	if err != nil {
		api.Error(w, queryStatus(err), err)
		return
	}
	resp := map[string]any{"task": info.Task, "truth": info.Truth, "version": info.Version}
	if !math.IsNaN(info.Confidence) {
		resp["confidence"] = info.Confidence
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

func (s *Service) handleTruths(w http.ResponseWriter, _ *http.Request) {
	truths, version, err := s.Truths()
	if err != nil {
		api.Error(w, queryStatus(err), err)
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{"version": version, "truths": truths})
}

func (s *Service) handleWorker(w http.ResponseWriter, r *http.Request) {
	worker, err := strconv.Atoi(r.PathValue("worker"))
	if err != nil {
		api.Error(w, http.StatusBadRequest, fmt.Errorf("worker id %q is not an integer", r.PathValue("worker")))
		return
	}
	quality, err := s.WorkerQuality(worker)
	if err != nil {
		api.Error(w, queryStatus(err), err)
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{"worker": worker, "quality": quality})
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	api.WriteJSON(w, http.StatusOK, s.Stats())
}

// queryStatus maps service query errors onto HTTP statuses: asking before
// the first epoch is a conflict the client resolves by refreshing, an
// unknown id is a plain 404.
func queryStatus(err error) int {
	if err == ErrNotInferred {
		return http.StatusConflict
	}
	return http.StatusNotFound
}
