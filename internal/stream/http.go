package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"truthinference/internal/dataset"
)

// The HTTP JSON API over a Service, mounted by cmd/truthserve and
// exercised end-to-end by the httptest suite:
//
//	POST /v1/ingest        {"answers":[{"task":0,"worker":1,"value":1}],
//	                        "truth":{"0":1}, "num_tasks":10, "num_workers":5}
//	POST /v1/refresh       run one inference epoch now (no-op when fresh)
//	GET  /v1/truth/{task}  one task's truth + confidence
//	GET  /v1/truths        the full truth vector + the version it reflects
//	GET  /v1/worker/{id}   one worker's estimated quality
//	GET  /v1/stats         store + serving statistics
//	GET  /v1/healthz       liveness probe
//
// Reads are served from the last published result and never block behind
// a running inference epoch; the reported version says how fresh they are.

// wireAnswer is the JSON shape of one answer.
type wireAnswer struct {
	Task   int     `json:"task"`
	Worker int     `json:"worker"`
	Value  float64 `json:"value"`
}

// ingestRequest is the JSON shape of POST /v1/ingest. Truth keys are
// strings because JSON objects cannot have integer keys.
type ingestRequest struct {
	Answers    []wireAnswer       `json:"answers"`
	Truth      map[string]float64 `json:"truth,omitempty"`
	NumTasks   int                `json:"num_tasks,omitempty"`
	NumWorkers int                `json:"num_workers,omitempty"`
}

func (r ingestRequest) batch() (Batch, error) {
	b := Batch{NumTasks: r.NumTasks, NumWorkers: r.NumWorkers}
	if len(r.Answers) > 0 {
		b.Answers = make([]dataset.Answer, len(r.Answers))
		for i, a := range r.Answers {
			b.Answers[i] = dataset.Answer{Task: a.Task, Worker: a.Worker, Value: a.Value}
		}
	}
	if len(r.Truth) > 0 {
		b.Truth = make(map[int]float64, len(r.Truth))
		for k, v := range r.Truth {
			t, err := strconv.Atoi(k)
			if err != nil {
				return Batch{}, fmt.Errorf("truth key %q is not a task id", k)
			}
			b.Truth[t] = v
		}
	}
	return b, nil
}

// Handler returns the HTTP API over the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/refresh", s.handleRefresh)
	mux.HandleFunc("GET /v1/truth/{task}", s.handleTruth)
	mux.HandleFunc("GET /v1/truths", s.handleTruths)
	mux.HandleFunc("GET /v1/worker/{worker}", s.handleWorker)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode ingest body: %w", err))
		return
	}
	b, err := req.batch()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	version, err := s.Ingest(b)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, ErrClosed) {
			// The project was deleted while this request was in flight.
			status = http.StatusGone
		}
		writeError(w, status, err)
		return
	}
	tasks, workers, answers := s.store.Dims()
	writeJSON(w, http.StatusOK, map[string]any{
		"version":  version,
		"ingested": len(b.Answers),
		"tasks":    tasks,
		"workers":  workers,
		"answers":  answers,
	})
}

func (s *Service) handleRefresh(w http.ResponseWriter, _ *http.Request) {
	if err := s.Refresh(); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			status = http.StatusGone
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleTruth(w http.ResponseWriter, r *http.Request) {
	task, err := strconv.Atoi(r.PathValue("task"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("task id %q is not an integer", r.PathValue("task")))
		return
	}
	info, err := s.Truth(task)
	if err != nil {
		writeError(w, queryStatus(err), err)
		return
	}
	resp := map[string]any{"task": info.Task, "truth": info.Truth, "version": info.Version}
	if !math.IsNaN(info.Confidence) {
		resp["confidence"] = info.Confidence
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleTruths(w http.ResponseWriter, _ *http.Request) {
	truths, version, err := s.Truths()
	if err != nil {
		writeError(w, queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"version": version, "truths": truths})
}

func (s *Service) handleWorker(w http.ResponseWriter, r *http.Request) {
	worker, err := strconv.Atoi(r.PathValue("worker"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("worker id %q is not an integer", r.PathValue("worker")))
		return
	}
	quality, err := s.WorkerQuality(worker)
	if err != nil {
		writeError(w, queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"worker": worker, "quality": quality})
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// queryStatus maps service query errors onto HTTP statuses: asking before
// the first epoch is a conflict the client resolves by refreshing, an
// unknown id is a plain 404.
func queryStatus(err error) int {
	if err == ErrNotInferred {
		return http.StatusConflict
	}
	return http.StatusNotFound
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
