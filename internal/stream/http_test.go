package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"truthinference/internal/api"
	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/methods/ds"
	"truthinference/internal/simulate"
)

func postJSON(t *testing.T, client *http.Client, url string, body any) map[string]any {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s → %d: %v", url, resp.StatusCode, out)
	}
	return out
}

func getJSON(t *testing.T, client *http.Client, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s → %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// wireBatch converts a Batch into the JSON ingest shape.
func wireBatch(b Batch) api.IngestRequest {
	req := api.IngestRequest{NumTasks: b.NumTasks, NumWorkers: b.NumWorkers}
	for _, a := range b.Answers {
		req.Answers = append(req.Answers, api.Answer{Task: a.Task, Worker: a.Worker, Value: a.Value})
	}
	if len(b.Truth) > 0 {
		req.Truth = make(map[string]float64, len(b.Truth))
		for task, v := range b.Truth {
			req.Truth[strconv.Itoa(task)] = v
		}
	}
	return req
}

// TestHTTPStreamingEquivalence drives the full API over an httptest
// server: ingest in batches, refresh, and check the served truths match
// one-shot batch inference — bit-identical for MV, within the warm-start
// gate for D&S.
func TestHTTPStreamingEquivalence(t *testing.T) {
	data := simulate.GenerateScaled(simulate.DProduct, 7, 0.04)
	cases := []struct {
		method   core.Method
		minAgree float64 // 1 = bit-identical
	}{
		{direct.NewMV(), 1},
		{ds.New(), 0.98},
	}
	for _, tc := range cases {
		opts := core.Options{Seed: 11, Parallelism: 2}
		want, err := tc.method.Infer(data, opts)
		if err != nil {
			t.Fatal(err)
		}
		svc := newServiceOver(t, data, tc.method, opts)
		srv := httptest.NewServer(svc.Handler())
		client := srv.Client()

		for _, b := range splitBatches(data, 3) {
			out := postJSON(t, client, srv.URL+"/v1/ingest", wireBatch(b))
			if out["version"] == nil {
				t.Fatalf("%s ingest response missing version: %v", tc.method.Name(), out)
			}
			postJSON(t, client, srv.URL+"/v1/refresh", struct{}{})
		}

		truths := getJSON(t, client, srv.URL+"/v1/truths", http.StatusOK)["truths"].([]any)
		if len(truths) != len(want.Truth) {
			t.Fatalf("%s: served %d truths, want %d", tc.method.Name(), len(truths), len(want.Truth))
		}
		agree := 0
		for i, v := range truths {
			if v.(float64) == want.Truth[i] {
				agree++
			}
		}
		if frac := float64(agree) / float64(len(truths)); frac < tc.minAgree {
			t.Errorf("%s over HTTP: agreement %.4f < %.2f vs one-shot batch", tc.method.Name(), frac, tc.minAgree)
		}

		// Single-task and worker lookups round-trip.
		one := getJSON(t, client, srv.URL+"/v1/truth/0", http.StatusOK)
		if one["truth"].(float64) != truths[0].(float64) {
			t.Errorf("%s: /v1/truth/0 = %v disagrees with /v1/truths[0] = %v", tc.method.Name(), one["truth"], truths[0])
		}
		wq := getJSON(t, client, srv.URL+"/v1/worker/0", http.StatusOK)
		if _, ok := wq["quality"].(float64); !ok {
			t.Errorf("%s: /v1/worker/0 missing quality: %v", tc.method.Name(), wq)
		}
		stats := getJSON(t, client, srv.URL+"/v1/stats", http.StatusOK)
		if stats["fresh"] != true {
			t.Errorf("%s: stats not fresh after refresh: %v", tc.method.Name(), stats)
		}
		if int(stats["answers"].(float64)) != len(data.Answers) {
			t.Errorf("%s: stats answers = %v, want %d", tc.method.Name(), stats["answers"], len(data.Answers))
		}
		srv.Close()
	}
}

func TestHTTPErrors(t *testing.T) {
	store, err := NewStore("t", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(store, Config{Method: ds.New(), Options: core.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	// Queries before the first epoch are a 409; the body says why.
	out := getJSON(t, client, srv.URL+"/v1/truths", http.StatusConflict)
	if out["error"] == nil {
		t.Errorf("conflict body missing error: %v", out)
	}
	// Malformed JSON and invalid batches are 4xx, not 500s.
	resp, err := client.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON → %d, want 400", resp.StatusCode)
	}
	buf, _ := json.Marshal(wireBatch(Batch{Answers: []dataset.Answer{{Task: 0, Worker: 0, Value: 7}}}))
	resp, err = client.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("invalid label → %d, want 422", resp.StatusCode)
	}
	// Unknown ids are 404s.
	if _, err := client.Get(srv.URL + "/v1/worker/99"); err != nil {
		t.Fatal(err)
	}
	got := getJSON(t, client, fmt.Sprintf("%s/v1/truth/%d", srv.URL, 5), http.StatusConflict)
	if got["error"] == nil {
		t.Errorf("expected error body, got %v", got)
	}
	if h := getJSON(t, client, srv.URL+"/v1/healthz", http.StatusOK); h["status"] != "ok" {
		t.Errorf("healthz = %v", h)
	}
}
