package stream

import (
	"net/http"
	"sync"
	"testing"

	"truthinference/internal/dataset"
)

// TestQuotaHardCapUnderConcurrentIngest is the regression gate for the
// admission TOCTOU: the old admit read store.Dims() and committed later,
// so N concurrent batches, each individually under MaxAnswers, could
// all pass the check and jointly blow the quota. With atomic
// reservation the cap must hold no matter how the requests interleave.
// Run under -race (the CI race job greps for this test by name).
func TestQuotaHardCapUnderConcurrentIngest(t *testing.T) {
	const (
		quota     = 50
		clients   = 20
		batchSize = 5 // every batch fits the quota on its own
	)
	srv, svc := batchServer(t, Config{Limits: Limits{MaxAnswers: quota}})

	start := make(chan struct{})
	var wg sync.WaitGroup
	var admitted, shed int
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Distinct (task, worker) pairs per client so batches never
			// collide on content, only on the quota.
			answers := make([]dataset.Answer, batchSize)
			for i := range answers {
				answers[i] = dataset.Answer{Task: c*batchSize + i, Worker: c, Value: 1}
			}
			<-start
			resp, body := postBatchStream(t, srv, []Batch{{Answers: answers}})
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				admitted++
			case http.StatusTooManyRequests:
				shed++
			default:
				t.Errorf("client %d: unexpected status %d: %s", c, resp.StatusCode, body)
			}
		}(c)
	}
	close(start)
	wg.Wait()

	_, _, answers := svc.store.Dims()
	if answers > quota {
		t.Fatalf("store holds %d answers, quota is %d: concurrent admission overshot the cap", answers, quota)
	}
	if got := admitted * batchSize; got != answers {
		t.Fatalf("%d requests admitted (%d answers) but the store holds %d", admitted, got, answers)
	}
	if admitted+shed != clients {
		t.Fatalf("admitted %d + shed %d != %d clients", admitted, shed, clients)
	}
	// Every reservation must have been handed back once its request
	// settled — a leak here would shrink the usable quota forever.
	if r := svc.quotaReserved.Load(); r != 0 {
		t.Fatalf("%d answers still reserved after all requests finished", r)
	}
	// The quota itself must still be reachable: exactly the remaining
	// headroom is admitted in one batch.
	if answers < quota {
		rest := make([]dataset.Answer, quota-answers)
		for i := range rest {
			rest[i] = dataset.Answer{Task: i, Worker: clients + 1, Value: 0}
		}
		resp, body := postBatchStream(t, srv, []Batch{{Answers: rest}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("filling the remaining %d answers of headroom failed: %d: %s", len(rest), resp.StatusCode, body)
		}
	}
}

// TestQuotaReservationReleasedOnIngestFailure proves a batch that passes
// admission but fails ingest (invalid answer) hands its reservation
// back: the failed answers never occupy quota headroom.
func TestQuotaReservationReleasedOnIngestFailure(t *testing.T) {
	const quota = 10
	srv, svc := batchServer(t, Config{Limits: Limits{MaxAnswers: quota}})

	// 8 answers, one invalid: admitted (8 <= 10), then rejected by the
	// store's validation — nothing commits.
	bad := make([]dataset.Answer, 8)
	for i := range bad {
		bad[i] = dataset.Answer{Task: i, Worker: 0, Value: 1}
	}
	bad[7].Task = -1
	resp, body := postBatchStream(t, srv, []Batch{{Answers: bad}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid batch: status = %d, want 422: %s", resp.StatusCode, body)
	}
	if _, _, answers := svc.store.Dims(); answers != 0 {
		t.Fatalf("failed batch committed %d answers", answers)
	}
	if r := svc.quotaReserved.Load(); r != 0 {
		t.Fatalf("failed batch leaked a reservation of %d", r)
	}

	// The full quota must still be available.
	full := make([]dataset.Answer, quota)
	for i := range full {
		full[i] = dataset.Answer{Task: i, Worker: 1, Value: 1}
	}
	resp, body = postBatchStream(t, srv, []Batch{{Answers: full}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full-quota batch after a failed ingest: status = %d, want 200: %s", resp.StatusCode, body)
	}
}
