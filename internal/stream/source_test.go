package stream

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/methods/ds"
)

// optsSeq is a sequential single-seeded Options for the source tests.
func optsSeq(seed int64) core.Options { return core.Options{Seed: seed} }

func ingestT(t *testing.T, svc *Service, b Batch) {
	t.Helper()
	if _, err := svc.Ingest(b); err != nil {
		t.Fatal(err)
	}
}

func newMVService(t *testing.T) *Service {
	t.Helper()
	store, err := NewStore("src", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(store, Config{Method: direct.NewMV(), Options: optsSeq(1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// TestWorkerQualityErrorPaths pins every failure mode of the quality
// query: out-of-range ids on both the incremental and the iterative
// paths, and querying an iterative service before its first epoch.
func TestWorkerQualityErrorPaths(t *testing.T) {
	t.Run("incremental out of range", func(t *testing.T) {
		svc := newMVService(t)
		ingestT(t, svc, Batch{NumTasks: 2, NumWorkers: 3})
		for _, w := range []int{-1, 3, 1 << 20} {
			if _, err := svc.WorkerQuality(w); err == nil {
				t.Errorf("WorkerQuality(%d) on a 3-worker store succeeded", w)
			} else if !strings.Contains(err.Error(), "worker") {
				t.Errorf("WorkerQuality(%d) error is not actionable: %v", w, err)
			}
		}
		// In range: incremental methods report uniform quality 1.
		if q, err := svc.WorkerQuality(2); err != nil || q != 1 {
			t.Errorf("WorkerQuality(2) = %v, %v; want 1, nil", q, err)
		}
	})
	t.Run("iterative before first epoch", func(t *testing.T) {
		store, err := NewStore("src", dataset.Decision, 2)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(store, Config{Method: ds.New(), Options: optsSeq(1)})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		if _, err := svc.WorkerQuality(0); !errors.Is(err, ErrNotInferred) {
			t.Fatalf("WorkerQuality before first epoch = %v, want ErrNotInferred", err)
		}
		ingestT(t, svc, Batch{Answers: []dataset.Answer{
			{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 1}, {Task: 1, Worker: 0, Value: 0},
		}})
		if err := svc.Refresh(); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.WorkerQuality(0); err != nil {
			t.Errorf("WorkerQuality after epoch: %v", err)
		}
		if _, err := svc.WorkerQuality(2); err == nil {
			t.Error("WorkerQuality beyond the inferred range succeeded")
		}
	})
}

func TestPosteriorsIncrementalMV(t *testing.T) {
	svc := newMVService(t)
	ingestT(t, svc, Batch{NumTasks: 3, NumWorkers: 4})
	ingestT(t, svc, Batch{Answers: []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 1}, {Task: 0, Worker: 2, Value: 0},
		{Task: 1, Worker: 3, Value: 0},
	}})
	post, version, err := svc.Posteriors()
	if err != nil {
		t.Fatal(err)
	}
	if version != svc.StoreVersion() {
		t.Errorf("posterior version %d, want fresh store version %d", version, svc.StoreVersion())
	}
	want := [][]float64{{1. / 3, 2. / 3}, {1, 0}, {0.5, 0.5}}
	for i, row := range want {
		for k := range row {
			if math.Abs(post[i][k]-row[k]) > 1e-12 {
				t.Errorf("posterior[%d] = %v, want %v", i, post[i], row)
			}
		}
	}
}

func TestPosteriorsUnavailable(t *testing.T) {
	// Numeric incremental method: no posterior, ever.
	store, err := NewStore("num", dataset.Numeric, 0)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(store, Config{Method: direct.NewMean(), Options: optsSeq(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, _, err := svc.Posteriors(); !errors.Is(err, ErrNoPosterior) {
		t.Fatalf("Posteriors on Mean = %v, want ErrNoPosterior", err)
	}
	if _, _, err := svc.Entropies(); !errors.Is(err, ErrNoPosterior) {
		t.Fatalf("Entropies on Mean = %v, want ErrNoPosterior", err)
	}

	// Iterative method before its first epoch: not inferred yet.
	store2, err := NewStore("d", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := NewService(store2, Config{Method: ds.New(), Options: optsSeq(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if _, _, err := svc2.Posteriors(); !errors.Is(err, ErrNotInferred) {
		t.Fatalf("Posteriors before first epoch = %v, want ErrNotInferred", err)
	}
}

// TestEntropiesCacheInvalidation checks the epoch-boundary contract: the
// entropy vector is cached between epochs and recomputed when new data
// publishes.
func TestEntropiesCacheInvalidation(t *testing.T) {
	svc := newMVService(t)
	ingestT(t, svc, Batch{Answers: []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 0},
	}})
	ent, v1, err := svc.Entropies()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ent[0]-math.Log(2)) > 1e-12 {
		t.Errorf("entropy of a 1-1 split = %v, want ln 2", ent[0])
	}
	// Same version → served from cache (same values).
	ent2, v2, _ := svc.Entropies()
	if v2 != v1 || ent2[0] != ent[0] {
		t.Errorf("cached entropies changed without an epoch: v%d→v%d", v1, v2)
	}
	// New answers break the tie → entropy must drop after the boundary.
	ingestT(t, svc, Batch{Answers: []dataset.Answer{{Task: 0, Worker: 2, Value: 1}}})
	ent3, v3, err := svc.Entropies()
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("entropy version did not advance past the epoch boundary")
	}
	if ent3[0] >= ent[0] {
		t.Errorf("entropy after a tie-breaking vote = %v, want < %v", ent3[0], ent[0])
	}
}

func TestEntropyHelper(t *testing.T) {
	if h := Entropy([]float64{1, 0}); h != 0 {
		t.Errorf("Entropy(one-hot) = %v, want 0", h)
	}
	if h := Entropy([]float64{0.25, 0.25, 0.25, 0.25}); math.Abs(h-math.Log(4)) > 1e-12 {
		t.Errorf("Entropy(uniform-4) = %v, want ln 4", h)
	}
	if h := Entropy(nil); h != 0 {
		t.Errorf("Entropy(nil) = %v, want 0", h)
	}
}

func TestAnswerCounts(t *testing.T) {
	svc := newMVService(t)
	ingestT(t, svc, Batch{NumTasks: 4, NumWorkers: 3})
	ingestT(t, svc, Batch{Answers: []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 1},
		{Task: 2, Worker: 2, Value: 0},
	}})
	got := svc.TaskAnswerCounts()
	want := []int{2, 0, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("AnswerCounts length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestStatsReportsShardsAndDurability pins the operator-facing stats
// additions: shard count always, WAL status when a stats-capable
// persister is attached.
func TestStatsReportsShardsAndDurability(t *testing.T) {
	store, err := NewStoreN("st", dataset.Decision, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(store, Config{Method: direct.NewMV(), Options: optsSeq(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st := svc.Stats()
	if st.Shards != 5 {
		t.Errorf("Stats.Shards = %d, want 5", st.Shards)
	}
	if st.Durable || st.WAL != nil {
		t.Errorf("non-durable service reports durability: %+v", st)
	}

	svc2, err := NewService(mustNewStore(t), Config{
		Method: direct.NewMV(), Options: optsSeq(1), Persist: statPersister{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	st2 := svc2.Stats()
	if !st2.Durable {
		t.Error("durable service reports Durable=false")
	}
	if st2.WAL == nil || st2.WAL.SinceSnapshot != 7 {
		t.Errorf("Stats.WAL = %+v, want SinceSnapshot 7", st2.WAL)
	}
}

func mustNewStore(t *testing.T) *Store {
	t.Helper()
	store, err := NewStore("st", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// statPersister is a no-op Persister that reports a fixed status.
type statPersister struct{}

func (statPersister) Record(uint64, Batch) error { return nil }
func (statPersister) Sync() error                { return nil }
func (statPersister) PersistStats() PersistStats { return PersistStats{SinceSnapshot: 7} }

func TestQualityHistoryRetainsEpochWindow(t *testing.T) {
	store, err := NewStore("qh", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(store, Config{Method: ds.New(), Options: optsSeq(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ingestT(t, svc, Batch{NumTasks: 4, NumWorkers: 3, Answers: []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 1, Worker: 1, Value: 0}, {Task: 2, Worker: 2, Value: 1},
	}})

	if hist, _ := svc.QualityHistory(); len(hist) != 0 {
		t.Fatalf("history before any epoch: %d rows", len(hist))
	}
	for i := 0; i < QualityHistoryEpochs+5; i++ {
		ingestT(t, svc, Batch{Answers: []dataset.Answer{{Task: i % 4, Worker: i % 3, Value: 1}}})
		if err := svc.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	hist, ver := svc.QualityHistory()
	if len(hist) != QualityHistoryEpochs {
		t.Fatalf("retained %d epochs, want %d", len(hist), QualityHistoryEpochs)
	}
	if ver == 0 {
		t.Fatal("history version is zero after publishes")
	}
	for i, row := range hist {
		if len(row) != 3 {
			t.Fatalf("epoch %d has %d workers, want 3", i, len(row))
		}
	}
	// The returned rows are copies: scribbling on them must not corrupt
	// the retained history.
	hist[0][0] = math.Inf(1)
	again, _ := svc.QualityHistory()
	if math.IsInf(again[0][0], 1) {
		t.Fatal("QualityHistory returned aliased rows")
	}
}

// TestQualityHistoryConcurrentReads hammers QualityHistory from reader
// goroutines while epoch publishes append to the retained window — the
// race tripwire for the defense layer's detector input (run under
// -race in CI).
func TestQualityHistoryConcurrentReads(t *testing.T) {
	store, err := NewStore("qhrace", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(store, Config{Method: ds.New(), Options: optsSeq(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ingestT(t, svc, Batch{NumTasks: 8, NumWorkers: 4, Answers: []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 1, Worker: 1, Value: 0},
		{Task: 2, Worker: 2, Value: 1}, {Task: 3, Worker: 3, Value: 0},
	}})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hist, _ := svc.QualityHistory()
				for _, row := range hist {
					for _, q := range row {
						_ = q
					}
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		ingestT(t, svc, Batch{Answers: []dataset.Answer{{Task: i % 8, Worker: i % 4, Value: float64(i % 2)}}})
		if err := svc.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
