package stream

// Batch wire codec, shared between the write-ahead log and the batched
// HTTP ingest endpoint.
//
// A batch payload encodes one Batch:
//
//	uvarint NumTasks, uvarint NumWorkers
//	uvarint answer count, per answer:
//	  uvarint task, uvarint worker, 8-byte LE value bits
//	uvarint truth count, per truth (ascending task id):
//	  uvarint task, 8-byte LE value bits
//
// The WAL prefixes each payload with the store version the batch
// produced; the HTTP batch stream carries raw payloads (clients do not
// know versions) framed as:
//
//	8-byte magic "TIBAT\x01\r\n"
//	frames, each: uint32 LE payload length
//	              uint32 LE CRC-32 (IEEE) of the payload
//	              payload
//
// ending at clean EOF after a complete frame. The framing is the WAL's
// own record framing, so a proxy or client library implementing one
// implements both.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"truthinference/internal/dataset"
)

// BatchStreamMagic opens every batched-ingest request body.
const BatchStreamMagic = "TIBAT\x01\r\n"

// MaxFramePayload bounds one frame's payload (64 MiB ≈ 2.7M answers),
// matching the WAL's per-record cap so any batch accepted over HTTP is
// guaranteed to be recordable.
const MaxFramePayload = 1 << 26

// ErrFrameTooLarge reports a frame whose declared payload length
// exceeds MaxFramePayload.
var ErrFrameTooLarge = errors.New("stream: frame payload exceeds cap")

// AppendBatchPayload appends the batch-payload encoding of b to buf.
func AppendBatchPayload(buf []byte, b Batch) []byte {
	buf = binary.AppendUvarint(buf, uint64(max(b.NumTasks, 0)))
	buf = binary.AppendUvarint(buf, uint64(max(b.NumWorkers, 0)))
	buf = binary.AppendUvarint(buf, uint64(len(b.Answers)))
	for _, a := range b.Answers {
		buf = binary.AppendUvarint(buf, uint64(a.Task))
		buf = binary.AppendUvarint(buf, uint64(a.Worker))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Value))
	}
	ids := make([]int, 0, len(b.Truth))
	for t := range b.Truth {
		ids = append(ids, t)
	}
	sort.Ints(ids)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, t := range ids {
		buf = binary.AppendUvarint(buf, uint64(t))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b.Truth[t]))
	}
	return buf
}

// DecodeBatchPayload decodes one batch payload. It enforces wire shape
// only; semantic validation (label ranges, finite numerics, dim caps)
// happens in Store.Ingest.
func DecodeBatchPayload(payload []byte) (Batch, error) {
	var b Batch
	c := cursor{data: payload}
	b.NumTasks = int(c.uvarint())
	b.NumWorkers = int(c.uvarint())
	nAns := c.uvarint()
	if nAns > uint64(c.remaining()/10) { // min 10 bytes per answer
		return Batch{}, fmt.Errorf("answer count %d exceeds payload", nAns)
	}
	if nAns > 0 {
		b.Answers = make([]dataset.Answer, nAns)
		for i := range b.Answers {
			b.Answers[i] = dataset.Answer{
				Task:   int(c.uvarint()),
				Worker: int(c.uvarint()),
				Value:  math.Float64frombits(c.u64()),
			}
		}
	}
	nTruth := c.uvarint()
	if nTruth > uint64(c.remaining()/9) { // min 9 bytes per truth
		return Batch{}, fmt.Errorf("truth count %d exceeds payload", nTruth)
	}
	if nTruth > 0 {
		b.Truth = make(map[int]float64, nTruth)
		for i := uint64(0); i < nTruth; i++ {
			t := int(c.uvarint())
			b.Truth[t] = math.Float64frombits(c.u64())
		}
	}
	if c.err {
		return Batch{}, errors.New("truncated payload")
	}
	if c.remaining() != 0 {
		return Batch{}, fmt.Errorf("%d trailing payload bytes", c.remaining())
	}
	return b, nil
}

// AppendBatchFrame appends one CRC-framed batch to buf (no magic — the
// caller writes BatchStreamMagic once per stream). It errors if the
// encoded payload exceeds MaxFramePayload.
func AppendBatchFrame(buf []byte, b Batch) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	buf = AppendBatchPayload(buf, b)
	payload := buf[start+8:]
	if len(payload) > MaxFramePayload {
		return buf[:start], fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf, nil
}

// EncodeBatchStream encodes a complete batch-stream body (magic plus
// one frame per batch) — the client half of the batched ingest wire.
func EncodeBatchStream(batches []Batch) ([]byte, error) {
	buf := []byte(BatchStreamMagic)
	var err error
	for _, b := range batches {
		if buf, err = AppendBatchFrame(buf, b); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// ReadBatchStream reads a batch stream from r, calling fn once per
// intact frame in order. Unlike WAL replay, a damaged frame is not a
// recoverable tail: the stream arrived over a reliable transport, so
// any CRC mismatch, torn frame, or trailing garbage fails the whole
// read. Read errors from r (e.g. a body-size cap) are returned as-is,
// so callers can map them onto transport-specific failures.
func ReadBatchStream(r io.Reader, fn func(b Batch) error) (frames int, err error) {
	magic := make([]byte, len(BatchStreamMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, errors.New("stream: short batch stream: missing magic")
		}
		return 0, err
	}
	if string(magic) != BatchStreamMagic {
		return 0, errors.New("stream: bad batch stream magic")
	}
	hdr := make([]byte, 8)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return frames, nil
			}
			if err == io.ErrUnexpectedEOF {
				return frames, errors.New("stream: torn frame header")
			}
			return frames, err
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if plen > MaxFramePayload {
			return frames, fmt.Errorf("%w: declared length %d", ErrFrameTooLarge, plen)
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return frames, errors.New("stream: torn frame payload")
			}
			return frames, err
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return frames, errors.New("stream: frame CRC mismatch")
		}
		b, derr := DecodeBatchPayload(payload)
		if derr != nil {
			return frames, fmt.Errorf("stream: frame %d: %w", frames, derr)
		}
		if err := fn(b); err != nil {
			return frames, err
		}
		frames++
	}
}

// cursor is a bounds-checked sequential reader over a payload.
type cursor struct {
	data []byte
	off  int
	err  bool
}

func (c *cursor) remaining() int { return len(c.data) - c.off }

func (c *cursor) uvarint() uint64 {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		c.err = true
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) u64() uint64 {
	if c.remaining() < 8 {
		c.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.data[c.off:])
	c.off += 8
	return v
}
