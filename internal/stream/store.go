// Package stream is the online truth-inference subsystem: a mutable,
// concurrency-safe answer store that accepts batched answer/task/worker
// deltas while inference keeps serving (Store), a warm-start incremental
// driver that re-runs the iterative methods seeded from the previous
// epoch's posterior — with exact O(delta) incremental updates for the
// direct-computation methods MV, Mean and Median (Service) — and an HTTP
// JSON API over both (Service.Handler, served by cmd/truthserve).
//
// # Equivalence contract
//
// Streaming a dataset in any number of batches and then inferring yields
// the same answer as one-shot batch inference over the final dataset:
// bit-identical truths for MV, Mean and Median (their incremental updates
// are exact), and label-identical truths within convergence tolerance for
// the warm-started iterative methods (a warm start changes only the EM
// starting point, not the fixed point a converged run reaches). The
// end-to-end tests in this package and the repository root enforce the
// contract at 1 and 8 workers.
package stream

import (
	"fmt"
	"sync"

	"truthinference/internal/dataset"
)

// Batch is one ingestion delta: new answers, optionally new ground
// truths, and optionally explicit lower bounds on the task/worker id
// ranges (for declaring tasks or workers before any answer mentions
// them). Ids beyond the store's current ranges grow the dataset
// automatically.
type Batch struct {
	Answers []dataset.Answer
	// Truth maps task id → ground truth to record (used for evaluation
	// and golden-task experiments; inference does not require it).
	Truth map[int]float64
	// NumTasks and NumWorkers, when positive, grow the store's id ranges
	// to at least these sizes even if no answer mentions the new ids.
	NumTasks   int
	NumWorkers int
}

// targetDims returns the task/worker ranges the store must grow to before
// this batch can be applied on top of the current dims.
func (b Batch) targetDims(tasks, workers int) (int, int) {
	if b.NumTasks > tasks {
		tasks = b.NumTasks
	}
	if b.NumWorkers > workers {
		workers = b.NumWorkers
	}
	for _, a := range b.Answers {
		if a.Task >= tasks {
			tasks = a.Task + 1
		}
		if a.Worker >= workers {
			workers = a.Worker + 1
		}
	}
	for t := range b.Truth {
		if t >= tasks {
			tasks = t + 1
		}
	}
	return tasks, workers
}

// Store is a mutable, concurrency-safe crowdsourced answer set. Writers
// ingest batched deltas; readers take consistent snapshots for
// re-inference or run short read-only views. Every successful ingest
// bumps a monotonic version, which the serving layer uses to report how
// fresh a published inference result is.
type Store struct {
	mu      sync.RWMutex
	d       *dataset.Dataset
	version uint64
}

// NewStore returns an empty store for the given task type. numChoices is
// ℓ for single-choice tasks (decision tasks force 2, numeric tasks 0).
func NewStore(name string, typ dataset.TaskType, numChoices int) (*Store, error) {
	d, err := dataset.New(name, typ, numChoices, 0, 0, nil, nil)
	if err != nil {
		return nil, err
	}
	return &Store{d: d}, nil
}

// NewStoreFrom wraps an existing dataset (e.g. a preloaded benchmark
// file) as the store's initial state. The dataset must not be mutated by
// the caller afterwards.
func NewStoreFrom(d *dataset.Dataset) *Store {
	return &Store{d: d, version: 1}
}

// Ingest applies one batch atomically: the id ranges grow to cover every
// referenced task and worker, the answers are appended, and the truths
// recorded. It returns the new store version and the index of the first
// appended answer. On error the store is unchanged (rejecting a batch
// does not tear a partial delta into the dataset).
func (s *Store) Ingest(b Batch) (version uint64, firstNew int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	tgtTasks, tgtWorkers := b.targetDims(s.d.NumTasks, s.d.NumWorkers)
	// Validate against the grown ranges before mutating anything.
	probe := dataset.Dataset{Name: s.d.Name, Type: s.d.Type, NumChoices: s.d.NumChoices,
		NumTasks: tgtTasks, NumWorkers: tgtWorkers}
	for i, a := range b.Answers {
		if err := probe.CheckAnswer(a); err != nil {
			return 0, 0, fmt.Errorf("stream: batch answer %d: %w", i, err)
		}
	}
	for t, v := range b.Truth {
		if err := checkTruth(&probe, t, v); err != nil {
			return 0, 0, fmt.Errorf("stream: %w", err)
		}
	}

	s.d.Grow(tgtTasks, tgtWorkers)
	firstNew = len(s.d.Answers)
	if err := s.d.AppendAnswers(b.Answers...); err != nil {
		// Unreachable after the validation pass above, but never leave a
		// grown-yet-unappended store silently inconsistent.
		return 0, 0, err
	}
	for t, v := range b.Truth {
		if err := s.d.SetTruth(t, v); err != nil {
			return 0, 0, err
		}
	}
	s.version++
	return s.version, firstNew, nil
}

// checkTruth mirrors dataset.SetTruth validation without mutating.
func checkTruth(d *dataset.Dataset, task int, v float64) error {
	if task < 0 || task >= d.NumTasks {
		return fmt.Errorf("truth references task %d outside [0,%d)", task, d.NumTasks)
	}
	if d.Type != dataset.Numeric {
		l := int(v)
		if float64(l) != v || l < 0 || l >= d.NumChoices {
			return fmt.Errorf("truth for task %d has invalid label %v", task, v)
		}
	}
	return nil
}

// Snapshot returns a deep copy of the current dataset together with the
// store version it reflects. Re-inference runs on snapshots so ingestion
// never blocks behind a long EM run.
func (s *Store) Snapshot() (*dataset.Dataset, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Clone(), s.version
}

// View runs f with read access to the live dataset. f must not retain or
// mutate the dataset; it is the O(delta) path the incremental methods use
// to read a touched task's answers without paying for a snapshot.
func (s *Store) View(f func(d *dataset.Dataset)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f(s.d)
}

// TaskType returns the store's task family.
func (s *Store) TaskType() dataset.TaskType {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Type
}

// Version returns the current store version (0 for a never-ingested
// empty store).
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Dims returns the current task, worker and answer counts.
func (s *Store) Dims() (tasks, workers, answers int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.NumTasks, s.d.NumWorkers, len(s.d.Answers)
}
