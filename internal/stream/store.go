// Package stream is the online truth-inference subsystem: a mutable,
// sharded, concurrency-safe answer store that accepts batched
// answer/task/worker deltas while inference keeps serving (Store), a
// warm-start incremental driver that re-runs the iterative methods
// seeded from the previous epoch's posterior — with exact O(delta)
// incremental updates for the direct-computation methods MV, Mean and
// Median (Service) — and an HTTP JSON API over both (Service.Handler,
// served by cmd/truthserve). Durability (write-ahead logging and
// compacted snapshots) is layered on through the Persister hook,
// implemented by internal/stream/wal.
//
// # Equivalence contract
//
// Streaming a dataset in any number of batches and then inferring yields
// the same answer as one-shot batch inference over the final dataset:
// bit-identical truths for MV, Mean and Median (their incremental updates
// are exact), and label-identical truths within convergence tolerance for
// the warm-started iterative methods (a warm start changes only the EM
// starting point, not the fixed point a converged run reaches). The
// end-to-end tests in this package and the repository root enforce the
// contract at 1 and 8 workers.
package stream

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"truthinference/internal/dataset"
)

// Batch is one ingestion delta: new answers, optionally new ground
// truths, and optionally explicit lower bounds on the task/worker id
// ranges (for declaring tasks or workers before any answer mentions
// them). Ids beyond the store's current ranges grow the dataset
// automatically.
type Batch struct {
	Answers []dataset.Answer
	// Truth maps task id → ground truth to record (used for evaluation
	// and golden-task experiments; inference does not require it).
	Truth map[int]float64
	// NumTasks and NumWorkers, when positive, grow the store's id ranges
	// to at least these sizes even if no answer mentions the new ids.
	NumTasks   int
	NumWorkers int
}

// targetDims returns the task/worker ranges the store must grow to before
// this batch can be applied on top of the current dims.
func (b Batch) targetDims(tasks, workers int) (int, int) {
	if b.NumTasks > tasks {
		tasks = b.NumTasks
	}
	if b.NumWorkers > workers {
		workers = b.NumWorkers
	}
	for _, a := range b.Answers {
		if a.Task >= tasks {
			tasks = a.Task + 1
		}
		if a.Worker >= workers {
			workers = a.Worker + 1
		}
	}
	for t := range b.Truth {
		if t >= tasks {
			tasks = t + 1
		}
	}
	return tasks, workers
}

// Sharding constants. Tasks map onto shards in contiguous chunks —
// shardOf(task) = (task / ShardChunk) % shards — so a writer ingesting a
// contiguous task range touches one (or few) shards and concurrent
// ingests of disjoint ranges never contend on a shard lock.
const (
	// ShardChunk is the number of consecutive task ids per shard chunk.
	ShardChunk = 64
	// DefaultShards is the shard count of the convenience constructors.
	DefaultShards = 8
	// MaxDim bounds the task and worker id ranges a batch may grow the
	// store to. Ids are dense, so admitting one absurd id commits every
	// downstream consumer (incremental state, snapshot index build) to
	// allocations proportional to it — and with a WAL attached the
	// poison batch would replay on every restart. Matches the binary
	// codec's decode guard.
	MaxDim = 1 << 26
	// MaxBatch bounds one batch's answer and truth counts. The cap
	// guarantees an accepted batch always encodes within the WAL's
	// per-record limit (worst case ~16 bytes per answer at MaxDim-sized
	// varint ids), so a batch acknowledged as durable can never be
	// rejected as oversized by replay. Split larger deltas into several
	// batches.
	MaxBatch = 1 << 21
)

// entry is one answer in a shard's log, tagged with its global append
// index so snapshots can reassemble the exact global ingestion order.
type entry struct {
	idx int
	ans dataset.Answer
}

// shard is one partition of the store: the answers and truths of the
// tasks it owns, behind its own lock. Within a shard the log is ascending
// in global index (batches sharing a shard serialize on its lock before
// global indices are assigned).
type shard struct {
	mu    sync.RWMutex
	log   []entry
	vals  map[int][]float64 // task → answer values in append order (O(redundancy) reads)
	truth map[int]float64
}

// Store is a mutable, concurrency-safe crowdsourced answer set,
// partitioned across shards keyed by task id. Writers ingest batched
// deltas under the touched shards' locks only — plus one short global
// critical section that assigns the batch's version and global answer
// indices — so concurrent ingests of disjoint task ranges scale across
// cores. Readers take consistent snapshots (all shard read locks,
// reassembled in parallel) or run short per-task reads. Every successful
// ingest bumps a monotonic version, which the serving and durability
// layers use to report how fresh a published result is and which WAL
// records a recovery must still replay.
type Store struct {
	name       string
	typ        dataset.TaskType
	numChoices int
	shards     []shard

	// seq orders batch commits: it assigns the version and the global
	// answer-index range, and grows the dims. It is held for O(1) work
	// per batch, never while copying answers.
	seq        sync.Mutex
	version    atomic.Uint64
	numTasks   atomic.Int64
	numWorkers atomic.Int64
	numAnswers atomic.Int64
}

// NewStore returns an empty store with DefaultShards partitions for the
// given task type. numChoices is ℓ for single-choice tasks (decision
// tasks force 2, numeric tasks 0).
func NewStore(name string, typ dataset.TaskType, numChoices int) (*Store, error) {
	return NewStoreN(name, typ, numChoices, DefaultShards)
}

// NewStoreN is NewStore with an explicit shard count. The shard count
// affects only contention, never observable state: snapshots, versions
// and recovery are bit-identical at any shard count.
func NewStoreN(name string, typ dataset.TaskType, numChoices, shards int) (*Store, error) {
	// Validate and normalize the type/choices combination exactly as the
	// dataset package would.
	d, err := dataset.New(name, typ, numChoices, 0, 0, nil, nil)
	if err != nil {
		return nil, err
	}
	return newStore(d.Name, d.Type, d.NumChoices, shards), nil
}

// maxShards caps the partition count: beyond it more shards only add
// per-shard fixed costs (snapshot fan-out, lock array) with no
// contention benefit.
const maxShards = 4096

func newStore(name string, typ dataset.TaskType, numChoices, shards int) *Store {
	if shards < 1 {
		shards = DefaultShards
	}
	if shards > maxShards {
		shards = maxShards
	}
	s := &Store{name: name, typ: typ, numChoices: numChoices, shards: make([]shard, shards)}
	for i := range s.shards {
		s.shards[i].vals = map[int][]float64{}
		s.shards[i].truth = map[int]float64{}
	}
	return s
}

// NewStoreFrom wraps an existing dataset (e.g. a preloaded benchmark
// file) as the store's initial state, at version 1. The dataset is
// copied into the shards; the caller keeps ownership of d.
func NewStoreFrom(d *dataset.Dataset) *Store {
	return NewStoreAt(d, 1, DefaultShards)
}

// NewStoreAt builds a store whose state is exactly d at the given
// version — the recovery constructor internal/stream/wal uses to resume
// from a snapshot before replaying newer WAL records on top.
func NewStoreAt(d *dataset.Dataset, version uint64, shards int) *Store {
	s := newStore(d.Name, d.Type, d.NumChoices, shards)
	s.numTasks.Store(int64(d.NumTasks))
	s.numWorkers.Store(int64(d.NumWorkers))
	s.numAnswers.Store(int64(len(d.Answers)))
	s.version.Store(version)
	for i, a := range d.Answers {
		sh := &s.shards[s.shardOf(a.Task)]
		sh.log = append(sh.log, entry{idx: i, ans: a})
		sh.vals[a.Task] = append(sh.vals[a.Task], a.Value)
	}
	for t, v := range d.Truth {
		s.shards[s.shardOf(t)].truth[t] = v
	}
	return s
}

// shardOf maps a task id onto its owning shard (chunked modulo).
func (s *Store) shardOf(task int) int {
	return (task / ShardChunk) % len(s.shards)
}

// Shards returns the store's shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Ingest applies one batch atomically: the id ranges grow to cover every
// referenced task and worker, the answers are appended, and the truths
// recorded. It returns the new store version and the global index of the
// first appended answer. On error the store is unchanged (rejecting a
// batch never tears a partial delta into the shards). Only the shards
// owning the batch's tasks are write-locked, so concurrent ingests of
// disjoint task ranges proceed in parallel.
func (s *Store) Ingest(b Batch) (version uint64, firstNew int, err error) {
	if len(b.Answers) > MaxBatch || len(b.Truth) > MaxBatch {
		return 0, 0, fmt.Errorf("stream: batch holds %d answers / %d truths, beyond the %d per-batch cap (split the delta)",
			len(b.Answers), len(b.Truth), MaxBatch)
	}
	curTasks := int(s.numTasks.Load())
	curWorkers := int(s.numWorkers.Load())
	tgtTasks, tgtWorkers := b.targetDims(curTasks, curWorkers)
	if tgtTasks > MaxDim || tgtWorkers > MaxDim {
		return 0, 0, fmt.Errorf("stream: batch grows the store to %d tasks / %d workers, beyond the %d id cap",
			tgtTasks, tgtWorkers, MaxDim)
	}
	// Validate against the grown ranges before touching any lock. Dims
	// only ever grow, so a batch valid against this target stays valid
	// even if a concurrent ingest grows them further.
	probe := dataset.Dataset{Name: s.name, Type: s.typ, NumChoices: s.numChoices,
		NumTasks: tgtTasks, NumWorkers: tgtWorkers}
	for i, a := range b.Answers {
		if err := probe.CheckAnswer(a); err != nil {
			return 0, 0, fmt.Errorf("stream: batch answer %d: %w", i, err)
		}
	}
	for t, v := range b.Truth {
		if err := checkTruth(&probe, t, v); err != nil {
			return 0, 0, fmt.Errorf("stream: %w", err)
		}
	}

	// Write-lock the touched shards in ascending order (the same order
	// Snapshot read-locks all shards, so lock acquisition never cycles).
	// The locks are held across the commit — including the version bump
	// below — so a snapshot that observes version v sees every batch up
	// to v fully applied.
	touched := s.touchedShards(b)
	for _, si := range touched {
		s.shards[si].mu.Lock()
	}
	defer func() {
		for _, si := range touched {
			s.shards[si].mu.Unlock()
		}
	}()

	// Short global critical section: commit order, dims, index range.
	s.seq.Lock()
	tgtTasks, tgtWorkers = b.targetDims(int(s.numTasks.Load()), int(s.numWorkers.Load()))
	s.numTasks.Store(int64(tgtTasks))
	s.numWorkers.Store(int64(tgtWorkers))
	firstNew = int(s.numAnswers.Load())
	s.numAnswers.Add(int64(len(b.Answers)))
	version = s.version.Add(1)
	s.seq.Unlock()

	for i, a := range b.Answers {
		sh := &s.shards[s.shardOf(a.Task)]
		sh.log = append(sh.log, entry{idx: firstNew + i, ans: a})
		sh.vals[a.Task] = append(sh.vals[a.Task], a.Value)
	}
	for t, v := range b.Truth {
		s.shards[s.shardOf(t)].truth[t] = v
	}
	return version, firstNew, nil
}

// touchedShards returns the sorted shard indices the batch writes to.
func (s *Store) touchedShards(b Batch) []int {
	hit := make([]bool, len(s.shards))
	for _, a := range b.Answers {
		hit[s.shardOf(a.Task)] = true
	}
	for t := range b.Truth {
		hit[s.shardOf(t)] = true
	}
	touched := make([]int, 0, len(s.shards))
	for si, h := range hit {
		if h {
			touched = append(touched, si)
		}
	}
	return touched
}

// checkTruth mirrors dataset.SetTruth validation without mutating.
func checkTruth(d *dataset.Dataset, task int, v float64) error {
	if task < 0 || task >= d.NumTasks {
		return fmt.Errorf("truth references task %d outside [0,%d)", task, d.NumTasks)
	}
	if d.Type != dataset.Numeric {
		l := int(v)
		if float64(l) != v || l < 0 || l >= d.NumChoices {
			return fmt.Errorf("truth for task %d has invalid label %v", task, v)
		}
	}
	return nil
}

// Pin returns a consistent (version, answer count) pair for a
// non-materializing read: every answer with global index < answers is
// part of the pinned view, everything at or beyond it is newer. The
// pair is read under the commit lock, so it can never tear across a
// concurrent ingest. The visibility guarantee ScanShard relies on: a
// batch's indices are assigned (under seq) while its shards' write
// locks are held, and those locks are released only after the answers
// are physically appended — so by the time a reader acquires a shard's
// read lock, every entry below the pinned count is present in that
// shard's log. The query plane (internal/query) streams whole relations
// at one pinned version this way without copying the store.
func (s *Store) Pin() (version uint64, answers int) {
	s.seq.Lock()
	defer s.seq.Unlock()
	return s.version.Load(), int(s.numAnswers.Load())
}

// ScanShard copies up to len(dst) answers from shard si's append log
// into dst, starting at log position pos and excluding everything at
// global index >= beforeIdx (the Pin answer count). It returns the
// number of answers copied, the next log position, and whether the
// pinned view of this shard is exhausted. The shard's read lock is held
// only for the copy — never across calls — so a caller streaming a
// large store chunk by chunk cannot starve writers or deadlock against
// a queued writer by re-locking the shard it already holds. Shard logs
// are ascending in global index, so the first out-of-pin entry ends the
// shard.
func (s *Store) ScanShard(si, pos, beforeIdx int, dst []dataset.Answer) (n, next int, done bool) {
	if si < 0 || si >= len(s.shards) || len(dst) == 0 {
		return 0, pos, true
	}
	sh := &s.shards[si]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for pos < len(sh.log) && n < len(dst) {
		e := sh.log[pos]
		if e.idx >= beforeIdx {
			return n, pos, true
		}
		dst[n] = e.ans
		n++
		pos++
	}
	return n, pos, pos >= len(sh.log)
}

// parallelCopyThreshold is the answer count below which Snapshot
// reassembles the shards serially (goroutine fan-out costs more than it
// saves on tiny stores).
const parallelCopyThreshold = 1 << 14

// Snapshot returns a consistent deep copy of the store as a dataset,
// together with the store version it reflects. All shard read locks are
// held while the shards copy their partitions in parallel into the
// global answer order; re-inference runs on snapshots so ingestion never
// blocks behind a long EM run.
func (s *Store) Snapshot() (*dataset.Dataset, uint64) {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	// seq is taken so answer-less batches (pure dims growth), which hold
	// no shard locks, can never leave version and dims torn here.
	s.seq.Lock()
	version := s.version.Load()
	tasks := int(s.numTasks.Load())
	workers := int(s.numWorkers.Load())
	total := int(s.numAnswers.Load())
	s.seq.Unlock()

	answers := make([]dataset.Answer, total)
	truths := make([]map[int]float64, len(s.shards))
	copyShard := func(i int) {
		sh := &s.shards[i]
		for _, e := range sh.log {
			answers[e.idx] = e.ans
		}
		if len(sh.truth) > 0 {
			cp := make(map[int]float64, len(sh.truth))
			for t, v := range sh.truth {
				cp[t] = v
			}
			truths[i] = cp
		}
	}
	if total >= parallelCopyThreshold && len(s.shards) > 1 {
		// Fan out at most one goroutine per CPU; each claims shards off a
		// shared counter, so a high -shards value costs nothing extra.
		workers := runtime.GOMAXPROCS(0)
		if workers > len(s.shards) {
			workers = len(s.shards)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(s.shards) {
						return
					}
					copyShard(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range s.shards {
			copyShard(i)
		}
	}
	for i := range s.shards {
		s.shards[i].mu.RUnlock()
	}

	truth := map[int]float64{}
	for _, m := range truths {
		for t, v := range m {
			truth[t] = v
		}
	}
	d, err := dataset.New(s.name, s.typ, s.numChoices, tasks, workers, answers, truth)
	if err != nil {
		// Every committed batch was validated against its target dims, so
		// a consistent store always snapshots to a valid dataset.
		panic("stream: snapshot of consistent store failed: " + err.Error())
	}
	return d, version
}

// View runs f over a consistent materialized copy of the store. f must
// not retain the dataset beyond the call. It costs a full Snapshot; the
// per-task O(redundancy) read path is TaskValues.
func (s *Store) View(f func(d *dataset.Dataset)) {
	d, _ := s.Snapshot()
	f(d)
}

// TaskValues returns a copy of one task's answer values in global append
// order, read-locking only the owning shard — the O(redundancy) path the
// incremental Median uses. It returns nil for tasks outside the current
// range.
func (s *Store) TaskValues(task int) []float64 {
	if task < 0 || task >= int(s.numTasks.Load()) {
		return nil
	}
	sh := &s.shards[s.shardOf(task)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]float64(nil), sh.vals[task]...)
}

// AnswerCounts returns the per-task answer counts for every task in the
// current range, read-locking one shard at a time. Counts only ever
// grow; the vector may straddle a concurrent ingest (task A's count from
// before it, task B's from after), which is fine for the monotone uses
// (assignment redundancy accounting) it serves.
func (s *Store) AnswerCounts() []int {
	counts := make([]int, int(s.numTasks.Load()))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for task, vals := range sh.vals {
			if task < len(counts) {
				counts[task] = len(vals)
			}
		}
		sh.mu.RUnlock()
	}
	return counts
}

// ForEachAnswer streams every (task, worker) pair currently in the
// store, one shard at a time under that shard's read lock (so f must be
// quick and must not call back into the store). The assignment ledger
// seeds its self-exclusion sets from it at construction, so a worker is
// never assigned a task it already answered — in a preloaded dataset or
// before a daemon restart.
func (s *Store) ForEachAnswer(f func(task, worker int)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.log {
			f(e.ans.Task, e.ans.Worker)
		}
		sh.mu.RUnlock()
	}
}

// ForEachAnswerValue streams every (task, worker, value) triple currently
// in the store under the same locking contract as ForEachAnswer. The
// assignment ledger's defense layer rebuilds its golden-gate and
// answer-correlation state from it at construction, so qualification
// decisions survive a daemon restart exactly like the exclusion sets do.
func (s *Store) ForEachAnswerValue(f func(task, worker int, value float64)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.log {
			f(e.ans.Task, e.ans.Worker, e.ans.Value)
		}
		sh.mu.RUnlock()
	}
}

// ForEachGolden streams every task whose ground truth has been recorded
// (Batch.Truth), one shard at a time under that shard's read lock. These
// are the tasks the assignment ledger can grade qualification answers
// against; truth is persisted in snapshots and the WAL, so the golden
// pool too survives restarts.
func (s *Store) ForEachGolden(f func(task int, truth float64)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for t, v := range sh.truth {
			f(t, v)
		}
		sh.mu.RUnlock()
	}
}

// Name returns the store's name (the project id in a multi-tenant
// deployment, or the preloaded dataset's name).
func (s *Store) Name() string { return s.name }

// SetName renames the store. It must be called before the store is
// shared (no lock is taken); the tenant layer uses it so stores
// recovered from pre-multi-tenant snapshots — which persisted the old
// hardcoded name — report their project id in stats and in every later
// snapshot.
func (s *Store) SetName(name string) { s.name = name }

// TaskType returns the store's task family.
func (s *Store) TaskType() dataset.TaskType { return s.typ }

// NumChoices returns the store's normalized choice count (2 for
// decision, ℓ for single-choice, 0 for numeric).
func (s *Store) NumChoices() int { return s.numChoices }

// Version returns the current store version (0 for a never-ingested
// empty store). The read is lock-free: a version may be visible a moment
// before its batch's answers are (Snapshot is the consistent read).
func (s *Store) Version() uint64 {
	return s.version.Load()
}

// Dims returns the current task, worker and answer counts. Like Version,
// the counts are monotonic lock-free reads.
func (s *Store) Dims() (tasks, workers, answers int) {
	return int(s.numTasks.Load()), int(s.numWorkers.Load()), int(s.numAnswers.Load())
}
