package stream

import (
	"testing"
	"time"
)

// fakeClock drives a Limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestLimiter(l Limits) (*Limiter, *fakeClock) {
	lim := NewLimiter(l)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	lim.now = clk.now
	return lim, clk
}

func TestLimiterNilAdmitsEverything(t *testing.T) {
	var l *Limiter
	if _, ok := l.Admit(1 << 30); !ok {
		t.Fatal("nil limiter rejected")
	}
	if NewLimiter(Limits{MaxAnswers: 10}) != nil {
		t.Fatal("quota-only Limits built a rate limiter")
	}
}

func TestLimiterBurstThenRefill(t *testing.T) {
	lim, clk := newTestLimiter(Limits{RatePerSec: 10, Burst: 20})

	// The full burst is admitted immediately.
	if _, ok := lim.Admit(20); !ok {
		t.Fatal("burst-sized request rejected on a full bucket")
	}
	// The bucket is empty; the next request is shed with a finite wait.
	wait, ok := lim.Admit(5)
	if ok {
		t.Fatal("request admitted on an empty bucket")
	}
	if wait < 0 || wait > 2*time.Second {
		t.Fatalf("retry-after = %v, want (0, 2s]", wait)
	}
	// After refill time, admission resumes.
	clk.advance(1 * time.Second) // +10 tokens
	if _, ok := lim.Admit(5); !ok {
		t.Fatal("request rejected after refill")
	}
}

func TestLimiterBorrowsForOversizedBatch(t *testing.T) {
	lim, clk := newTestLimiter(Limits{RatePerSec: 10, Burst: 10})

	// A batch larger than the burst is admitted by borrowing — it must
	// not be starved forever.
	if _, ok := lim.Admit(50); !ok {
		t.Fatal("oversized batch rejected outright")
	}
	// The debt (40 tokens) now blocks everything for 4 seconds.
	wait, ok := lim.Admit(1)
	if ok {
		t.Fatal("request admitted while in debt")
	}
	if wait < 3*time.Second || wait > 5*time.Second {
		t.Fatalf("retry-after = %v, want ≈4s", wait)
	}
	clk.advance(wait + 100*time.Millisecond)
	if _, ok := lim.Admit(1); !ok {
		t.Fatal("request rejected after the debt was paid off")
	}
}

func TestLimiterSustainedRateConverges(t *testing.T) {
	lim, clk := newTestLimiter(Limits{RatePerSec: 100, Burst: 100})

	// Offer 10 answers every 10ms for 10 simulated seconds (1000/s
	// offered against a 100/s limit) and count admissions.
	admitted := 0
	for i := 0; i < 1000; i++ {
		if _, ok := lim.Admit(10); ok {
			admitted += 10
		}
		clk.advance(10 * time.Millisecond)
	}
	// 10s at 100/s plus the initial burst: ≈1100 admitted. Borrowing
	// makes the exact count step-dependent; assert the envelope.
	if admitted < 900 || admitted > 1300 {
		t.Fatalf("admitted %d answers over 10s at 100/s, want ≈1100", admitted)
	}
}

func TestLimiterZeroChargeSpendsOne(t *testing.T) {
	lim, _ := newTestLimiter(Limits{RatePerSec: 1, Burst: 1})
	if _, ok := lim.Admit(0); !ok {
		t.Fatal("first zero-charge request rejected")
	}
	if _, ok := lim.Admit(0); ok {
		t.Fatal("empty requests are free — probe storms would bypass the limiter")
	}
}

func TestLimiterDefaultBurst(t *testing.T) {
	lim := NewLimiter(Limits{RatePerSec: 50})
	if lim.burst != 50 {
		t.Fatalf("default burst = %v, want rate (50)", lim.burst)
	}
	lim = NewLimiter(Limits{RatePerSec: 0.1})
	if lim.burst != 1 {
		t.Fatalf("tiny-rate burst = %v, want floor of 1", lim.burst)
	}
}

func TestLimiterRetryAfterIsSufficient(t *testing.T) {
	// The Retry-After hint must be an upper bound: a client that waits
	// exactly the hinted duration is always admitted. The refill
	// arithmetic is float; a hint computed as the exact zero-crossing
	// lands the bucket at 0 tokens, and admission needs tokens > 0 — the
	// hint has to round up past the boundary. Odd rates maximize the
	// float mismatch.
	for _, rate := range []float64{3, 7, 10, 0.3, 1234.5} {
		lim, clk := newTestLimiter(Limits{RatePerSec: rate, Burst: 5})
		for i := 0; i < 50; i++ {
			if _, ok := lim.Admit(3); ok {
				continue
			}
			wait, ok := lim.Admit(3)
			if ok {
				continue
			}
			clk.advance(wait)
			if _, ok := lim.Admit(1); !ok {
				t.Fatalf("rate %v iter %d: waited exactly Retry-After (%v) and was shed again", rate, i, wait)
			}
		}
	}
}
