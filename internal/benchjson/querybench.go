package benchjson

import (
	"fmt"
	"time"

	"truthinference/internal/assign"
	"truthinference/internal/core"
	"truthinference/internal/methods/direct"
	"truthinference/internal/query"
	"truthinference/internal/simulate"
	"truthinference/internal/stream"
)

// QueryBench is the relational read-path measurement: the three canned
// operator views evaluated round-robin against a live service, each
// query pinning a fresh catalog and draining its relation to completion.
// It is an additive, optional report section: earlier schema v1 reports
// without it stay valid.
type QueryBench struct {
	// QueriesPerSec counts completed view evaluations (catalog pin +
	// relation build + full drain) per second.
	QueriesPerSec float64 `json:"queries_per_sec"`
	// RowsPerSec counts rows produced across all views. Informational
	// only: the disagreement view legitimately yields zero rows when
	// methods agree, so the gate is on QueriesPerSec.
	RowsPerSec float64 `json:"rows_per_sec"`
	// Normalized is queries per calibration-loop unit of work, the
	// machine-independent value.
	Normalized float64 `json:"normalized"`
	// Views records which canned views were driven.
	Views []string `json:"views"`
	// Answers is the pinned store size the views ran over.
	Answers int `json:"answers"`
}

// MeasureQuery drives the three canned views against a fresh in-process
// service (majority vote over a simulated dataset at the given scale,
// with a live assignment ledger so spend-vs-budget has something to
// read) for the given window. calibrationNs is the report's calibration
// constant; duration is the total measurement window.
func MeasureQuery(calibrationNs float64, seed int64, scale float64, duration time.Duration) (*QueryBench, error) {
	d := simulate.GenerateScaled(simulate.DProduct, seed, scale)
	store, err := stream.NewStore(d.Name, d.Type, d.NumChoices)
	if err != nil {
		return nil, err
	}
	svc, err := stream.NewService(store, stream.Config{
		Method:  direct.NewMV(),
		Options: core.Options{Seed: seed},
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	if _, err := svc.Ingest(stream.Batch{
		NumTasks:   d.NumTasks,
		NumWorkers: d.NumWorkers,
		Answers:    d.Answers,
	}); err != nil {
		return nil, err
	}
	if err := svc.Refresh(); err != nil {
		return nil, err
	}
	policy, err := assign.ParsePolicy("uncertainty")
	if err != nil {
		return nil, err
	}
	ledger, err := assign.NewLedger(svc, assign.Config{
		Policy:     policy,
		Redundancy: 1 << 30,
		LeaseTTL:   time.Hour,
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	// A few live leases so the budget and lease surfaces are non-trivial.
	for w := 0; w < 8; w++ {
		if _, err := ledger.Assign(d.NumWorkers + w); err != nil {
			return nil, fmt.Errorf("seeding leases: %w", err)
		}
	}

	views := append([]string(nil), query.ViewNames...)
	var queries, rows int
	start := time.Now()
	for time.Since(start) < duration {
		name := views[queries%len(views)]
		cat := query.NewCatalog(svc, ledger)
		rel, err := query.View(cat, name)
		if err != nil {
			return nil, fmt.Errorf("view %s: %w", name, err)
		}
		out, _ := query.Collect(rel, -1)
		rows += len(out)
		queries++
	}
	el := time.Since(start)
	if queries == 0 || el <= 0 {
		return nil, fmt.Errorf("measurement window %v completed no queries", duration)
	}
	qps := float64(queries) / el.Seconds()
	return &QueryBench{
		QueriesPerSec: qps,
		RowsPerSec:    float64(rows) / el.Seconds(),
		Normalized:    qps * calibrationNs / 1e9,
		Views:         views,
		Answers:       len(d.Answers),
	}, nil
}
