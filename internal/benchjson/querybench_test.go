package benchjson

import (
	"strings"
	"testing"
	"time"

	"truthinference/internal/query"
)

func validQueryBench() *QueryBench {
	return &QueryBench{
		QueriesPerSec: 2e3,
		RowsPerSec:    5e4,
		Normalized:    2,
		Views:         []string{"disagreement", "worker-quality-drop", "spend-vs-budget"},
		Answers:       1000,
	}
}

func TestValidateQueryBench(t *testing.T) {
	// Absent is valid (BENCH_7-era reports predate the section).
	r := validReport()
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	r.Query = validQueryBench()
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	// Zero rows is valid: the disagreement view may legitimately be empty.
	r.Query.RowsPerSec = 0
	if err := Validate(r); err != nil {
		t.Fatalf("zero rows/sec rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*QueryBench)
	}{
		{"zero queries", func(q *QueryBench) { q.QueriesPerSec = 0 }},
		{"zero normalized", func(q *QueryBench) { q.Normalized = 0 }},
		{"no views", func(q *QueryBench) { q.Views = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validReport()
			r.Query = validQueryBench()
			tc.mutate(r.Query)
			err := Validate(r)
			if err == nil {
				t.Fatal("Validate accepted a malformed query section")
			}
			if !strings.Contains(err.Error(), "query") {
				t.Fatalf("error %q does not mention the query section", err)
			}
		})
	}
}

// TestMeasureQuerySmoke drives the canned views briefly against a small
// simulated service: positive query throughput, every canned view listed.
func TestMeasureQuerySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a live service")
	}
	q, err := MeasureQuery(1e6, 1, 0.05, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !(q.QueriesPerSec > 0) || !(q.Normalized > 0) {
		t.Fatalf("non-positive measurement: %+v", q)
	}
	if len(q.Views) != len(query.ViewNames) || q.Answers <= 0 {
		t.Fatalf("unexpected shape: %+v", q)
	}
	// Spend-vs-budget always yields a row, so rows flow even if the
	// disagreement view is empty.
	if !(q.RowsPerSec > 0) {
		t.Fatalf("no rows produced: %+v", q)
	}
	r := validReport()
	r.Query = q
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
}
