package benchjson

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"time"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/loadgen"
	"truthinference/internal/methods/direct"
	"truthinference/internal/stream"
	"truthinference/internal/telemetry"
)

// Telemetry is the instrumentation-overhead pair: the batched binary
// ingest path measured with the telemetry plane fully wired (metrics
// registry, per-tenant stream instruments, request-ID middleware, HTTP
// histograms) and with no instrumentation at all. OverheadFrac is the
// fraction of throughput the instruments cost; the CI gate bounds it.
// Additive, optional report section like HTTPIngest.
type Telemetry struct {
	// UninstrumentedAnswersPerSec is batched ingest with no telemetry.
	UninstrumentedAnswersPerSec float64 `json:"uninstrumented_answers_per_sec"`
	// InstrumentedAnswersPerSec is the same traffic with the registry,
	// stream metrics bundle, and HTTP middleware in the request path.
	InstrumentedAnswersPerSec float64 `json:"instrumented_answers_per_sec"`
	// OverheadFrac = max(0, 1 − instrumented/uninstrumented).
	OverheadFrac float64 `json:"overhead_frac"`
	// Normalized forms (answers per calibration-loop unit of work).
	UninstrumentedNormalized float64 `json:"uninstrumented_normalized"`
	InstrumentedNormalized   float64 `json:"instrumented_normalized"`
}

// MeasureTelemetry measures batched ingest throughput with and without
// the telemetry plane, interleaving the two modes across repeats (best
// of each) so CPU frequency drift hits both sides evenly.
func MeasureTelemetry(calibrationNs float64, seed int64, duration time.Duration) (*Telemetry, error) {
	const (
		workers   = 4
		batchSize = 500
		frames    = 4
		repeats   = 2
	)
	run := func(instrumented bool) (float64, error) {
		store, err := stream.NewStore("bench-telemetry", dataset.Decision, 2)
		if err != nil {
			return 0, err
		}
		svcCfg := stream.Config{
			Method:  direct.NewMV(),
			Options: core.Options{Seed: seed},
		}
		var reg *telemetry.Registry
		if instrumented {
			reg = telemetry.NewRegistry()
			svcCfg.Metrics = stream.NewMetrics(reg, "bench", "MV")
		}
		svc, err := stream.NewService(store, svcCfg)
		if err != nil {
			return 0, err
		}
		defer svc.Close()
		handler := http.Handler(svc.Handler())
		if instrumented {
			logger := slog.New(slog.NewTextHandler(io.Discard, nil))
			handler = telemetry.Middleware(handler,
				telemetry.NewHTTPMetrics(reg, "truthserve"), logger, 0,
				func(*http.Request) (string, string) { return "/v1/ingest-batch", "bench" })
		}
		srv := httptest.NewServer(handler)
		defer srv.Close()
		res, err := loadgen.Config{
			BaseURL:          srv.URL,
			Workers:          workers,
			Duration:         duration,
			SingleRatio:      0,
			BatchSize:        batchSize,
			FramesPerRequest: frames,
			NumTasks:         2000,
			NumWorkers:       200,
			Seed:             seed,
			Client:           srv.Client(),
		}.Run(context.Background())
		if err != nil {
			return 0, err
		}
		if res.Errors > 0 {
			return 0, fmt.Errorf("load run saw %d errors (first: %s)", res.Errors, res.FirstError)
		}
		if res.AnswersPerSec <= 0 {
			return 0, fmt.Errorf("load run accepted no answers: %+v", res)
		}
		return res.AnswersPerSec, nil
	}

	var uninst, inst float64
	for i := 0; i < repeats; i++ {
		u, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("uninstrumented path: %w", err)
		}
		if u > uninst {
			uninst = u
		}
		in, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("instrumented path: %w", err)
		}
		if in > inst {
			inst = in
		}
	}
	overhead := 1 - inst/uninst
	if overhead < 0 {
		overhead = 0
	}
	return &Telemetry{
		UninstrumentedAnswersPerSec: uninst,
		InstrumentedAnswersPerSec:   inst,
		OverheadFrac:                overhead,
		UninstrumentedNormalized:    uninst * calibrationNs / 1e9,
		InstrumentedNormalized:      inst * calibrationNs / 1e9,
	}, nil
}
