package benchjson

import (
	"strings"
	"testing"
	"time"
)

func validHTTPIngest() *HTTPIngest {
	return &HTTPIngest{
		SingleAnswersPerSec: 1e3,
		BatchAnswersPerSec:  1e5,
		Speedup:             100,
		SingleNormalized:    1,
		BatchNormalized:     100,
		BatchSize:           500,
		Frames:              4,
	}
}

func TestValidateHTTPIngest(t *testing.T) {
	// Absent is valid (BENCH_6-era reports predate the section).
	r := validReport()
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	r.HTTPIngest = validHTTPIngest()
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*HTTPIngest)
	}{
		{"zero single", func(h *HTTPIngest) { h.SingleAnswersPerSec = 0 }},
		{"zero batch", func(h *HTTPIngest) { h.BatchAnswersPerSec = 0 }},
		{"zero speedup", func(h *HTTPIngest) { h.Speedup = 0 }},
		{"zero normalized", func(h *HTTPIngest) { h.BatchNormalized = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validReport()
			r.HTTPIngest = validHTTPIngest()
			tc.mutate(r.HTTPIngest)
			err := Validate(r)
			if err == nil {
				t.Fatal("Validate accepted a malformed http_ingest")
			}
			if !strings.Contains(err.Error(), "http_ingest") {
				t.Fatalf("error %q does not mention http_ingest", err)
			}
		})
	}
}

// TestMeasureHTTPIngestSmoke runs both HTTP modes briefly: positive
// throughputs and a computed speedup. The 5x acceptance floor is gated
// in CI via cmd/benchjson -min-http-speedup, not here — a loaded test
// machine with a sub-second window is not a fair judge.
func TestMeasureHTTPIngestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drives live HTTP load")
	}
	h, err := MeasureHTTPIngest(1e6, 1, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !(h.SingleAnswersPerSec > 0) || !(h.BatchAnswersPerSec > 0) || !(h.Speedup > 0) {
		t.Fatalf("non-positive measurement: %+v", h)
	}
	r := validReport()
	r.HTTPIngest = h
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	if h.BatchAnswersPerSec <= h.SingleAnswersPerSec {
		t.Fatalf("batched path (%.0f/s) did not beat single-answer path (%.0f/s)",
			h.BatchAnswersPerSec, h.SingleAnswersPerSec)
	}
}
