package benchjson

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/loadgen"
	"truthinference/internal/methods/direct"
	"truthinference/internal/stream"
)

// HTTPIngest is the HTTP serving-path throughput pair: the same answers
// pushed through the single-answer JSON endpoint and through the
// batched binary endpoint, measured end to end (request framing, codec,
// admission, store fold). Speedup is batch/single — the number the
// batched API exists to maximize. It is an additive, optional report
// section: schema v1 reports without it stay valid.
type HTTPIngest struct {
	// SingleAnswersPerSec is POST /v1/ingest with one answer per request.
	SingleAnswersPerSec float64 `json:"single_answers_per_sec"`
	// BatchAnswersPerSec is POST /v1/ingest-batch with framed batches.
	BatchAnswersPerSec float64 `json:"batch_answers_per_sec"`
	// Speedup is BatchAnswersPerSec / SingleAnswersPerSec.
	Speedup float64 `json:"speedup"`
	// Normalized forms (answers per calibration-loop unit of work), the
	// machine-independent values.
	SingleNormalized float64 `json:"single_normalized"`
	BatchNormalized  float64 `json:"batch_normalized"`
	// BatchSize and Frames record the batched request shape used.
	BatchSize int `json:"batch_size"`
	Frames    int `json:"frames"`
}

// MeasureHTTPIngest drives the live HTTP surface twice — all
// single-answer JSON, then all batched binary — against fresh in-process
// services and returns the throughput pair. calibrationNs is the
// report's calibration constant (for the normalized forms); duration is
// the per-mode measurement window.
func MeasureHTTPIngest(calibrationNs float64, seed int64, duration time.Duration) (*HTTPIngest, error) {
	const (
		workers   = 4
		batchSize = 500
		frames    = 4
	)
	run := func(singleRatio float64) (float64, error) {
		store, err := stream.NewStore("bench-http", dataset.Decision, 2)
		if err != nil {
			return 0, err
		}
		svc, err := stream.NewService(store, stream.Config{
			Method:  direct.NewMV(),
			Options: core.Options{Seed: seed},
		})
		if err != nil {
			return 0, err
		}
		defer svc.Close()
		srv := httptest.NewServer(svc.Handler())
		defer srv.Close()
		res, err := loadgen.Config{
			BaseURL:          srv.URL,
			Workers:          workers,
			Duration:         duration,
			SingleRatio:      singleRatio,
			BatchSize:        batchSize,
			FramesPerRequest: frames,
			NumTasks:         2000,
			NumWorkers:       200,
			Seed:             seed,
			Client:           srv.Client(),
		}.Run(context.Background())
		if err != nil {
			return 0, err
		}
		if res.Errors > 0 {
			return 0, fmt.Errorf("load run saw %d errors (first: %s)", res.Errors, res.FirstError)
		}
		if res.AnswersPerSec <= 0 {
			return 0, fmt.Errorf("load run accepted no answers: %+v", res)
		}
		return res.AnswersPerSec, nil
	}

	single, err := run(1)
	if err != nil {
		return nil, fmt.Errorf("single-answer JSON path: %w", err)
	}
	batch, err := run(0)
	if err != nil {
		return nil, fmt.Errorf("batched binary path: %w", err)
	}
	return &HTTPIngest{
		SingleAnswersPerSec: single,
		BatchAnswersPerSec:  batch,
		Speedup:             batch / single,
		SingleNormalized:    single * calibrationNs / 1e9,
		BatchNormalized:     batch * calibrationNs / 1e9,
		BatchSize:           batchSize,
		Frames:              frames,
	}, nil
}
