package benchjson

import (
	"path/filepath"
	"strings"
	"testing"
)

func validReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		BenchID:       "BENCH_TEST",
		GoVersion:     "go0.0",
		Scale:         0.1,
		Seed:          1,
		CalibrationNs: 1e6,
		Ingest:        Throughput{OpsPerSec: 5e5, Normalized: 500},
		Assign:        Throughput{OpsPerSec: 1e4, Normalized: 10},
		EpochLatency: []EpochStat{
			{Method: "D&S", Dataset: "s_rel", NsPerEpoch: 2e6, Normalized: 2.0},
			{Method: "PM", Dataset: "d_product", NsPerEpoch: 1e5, Normalized: 0.1},
		},
	}
}

func TestValidateAcceptsWellFormedReport(t *testing.T) {
	if err := Validate(validReport()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"schema version", func(r *Report) { r.SchemaVersion = 99 }, "schema_version"},
		{"empty bench id", func(r *Report) { r.BenchID = "" }, "bench_id"},
		{"zero calibration", func(r *Report) { r.CalibrationNs = 0 }, "calibration_ns"},
		{"negative scale", func(r *Report) { r.Scale = -1 }, "scale"},
		{"zero ingest", func(r *Report) { r.Ingest.OpsPerSec = 0 }, "ingest"},
		{"zero assign", func(r *Report) { r.Assign.Normalized = 0 }, "assign"},
		{"no epochs", func(r *Report) { r.EpochLatency = nil }, "epoch_latency is empty"},
		{"nameless epoch", func(r *Report) { r.EpochLatency[0].Method = "" }, "missing method"},
		{"duplicate epoch", func(r *Report) { r.EpochLatency[1] = r.EpochLatency[0] }, "duplicate"},
		{"zero latency", func(r *Report) { r.EpochLatency[1].NsPerEpoch = 0 }, "not positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validReport()
			tc.mutate(r)
			err := Validate(r)
			if err == nil {
				t.Fatal("Validate accepted a malformed report")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCompareGatesOnNormalizedLatency(t *testing.T) {
	base := validReport()
	cur := validReport()

	// Within the window (+20% exactly is allowed, it is the boundary).
	cur.EpochLatency[0].Normalized = base.EpochLatency[0].Normalized * 1.2
	if err := Compare(base, cur, 0.20); err != nil {
		t.Fatalf("boundary regression rejected: %v", err)
	}

	// Past the window fails and names the offender.
	cur.EpochLatency[0].Normalized = base.EpochLatency[0].Normalized * 1.21
	err := Compare(base, cur, 0.20)
	if err == nil {
		t.Fatal("21% regression passed a 20% gate")
	}
	if !strings.Contains(err.Error(), "D&S@s_rel") {
		t.Fatalf("error %q does not name the regressed entry", err)
	}

	// Raw ns may grow arbitrarily as long as normalized holds: a slower
	// machine is not a regression.
	cur = validReport()
	cur.CalibrationNs *= 10
	for i := range cur.EpochLatency {
		cur.EpochLatency[i].NsPerEpoch *= 10
	}
	if err := Compare(base, cur, 0.20); err != nil {
		t.Fatalf("machine slowdown misread as regression: %v", err)
	}
}

func TestCompareRequiresBaselineCoverage(t *testing.T) {
	base := validReport()
	cur := validReport()
	cur.EpochLatency = cur.EpochLatency[:1] // dropped PM
	err := Compare(base, cur, 0.20)
	if err == nil {
		t.Fatal("Compare accepted a report that dropped a baseline method")
	}
	if !strings.Contains(err.Error(), "PM@d_product") {
		t.Fatalf("error %q does not name the missing entry", err)
	}

	// Extra entries in the current report are fine (new methods land
	// without a baseline).
	cur = validReport()
	cur.EpochLatency = append(cur.EpochLatency, EpochStat{
		Method: "ZC", Dataset: "d_product", NsPerEpoch: 1, Normalized: 1e-6,
	})
	if err := Compare(base, cur, 0.20); err != nil {
		t.Fatal(err)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_TEST.json")
	want := validReport()
	if err := want.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.BenchID != want.BenchID || got.CalibrationNs != want.CalibrationNs ||
		len(got.EpochLatency) != len(want.EpochLatency) ||
		got.EpochLatency[1] != want.EpochLatency[1] {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadRejectsMalformedFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load found a report in an empty directory")
	}
}

// TestMeasureSmoke runs the full measurement once at a tiny scale: every
// canonical method produces a positive, validated epoch latency and both
// throughputs land. This is a functional check, not a performance one —
// the numbers themselves are whatever the test machine gives.
func TestMeasureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement pass is slow")
	}
	r, err := Measure("BENCH_TEST", 0.02, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	if len(r.EpochLatency) != len(epochTargets) {
		t.Fatalf("measured %d epoch latencies, want %d", len(r.EpochLatency), len(epochTargets))
	}
	// A fresh measurement must pass its own gate at any threshold.
	if err := Compare(r, r, 0); err != nil {
		t.Fatal(err)
	}
}
