package benchjson

import (
	"strings"
	"testing"
	"time"
)

func validTelemetry() *Telemetry {
	return &Telemetry{
		UninstrumentedAnswersPerSec: 1e5,
		InstrumentedAnswersPerSec:   9.8e4,
		OverheadFrac:                0.02,
		UninstrumentedNormalized:    100,
		InstrumentedNormalized:      98,
	}
}

func TestValidateTelemetry(t *testing.T) {
	// Absent is valid (pre-telemetry reports stay loadable).
	r := validReport()
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	r.Telemetry = validTelemetry()
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*Telemetry)
	}{
		{"zero uninstrumented", func(tel *Telemetry) { tel.UninstrumentedAnswersPerSec = 0 }},
		{"zero instrumented", func(tel *Telemetry) { tel.InstrumentedAnswersPerSec = 0 }},
		{"zero normalized", func(tel *Telemetry) { tel.InstrumentedNormalized = 0 }},
		{"negative overhead", func(tel *Telemetry) { tel.OverheadFrac = -0.1 }},
		{"overhead of one", func(tel *Telemetry) { tel.OverheadFrac = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validReport()
			r.Telemetry = validTelemetry()
			tc.mutate(r.Telemetry)
			err := Validate(r)
			if err == nil {
				t.Fatal("Validate accepted a malformed telemetry section")
			}
			if !strings.Contains(err.Error(), "telemetry") {
				t.Fatalf("error %q does not mention telemetry", err)
			}
		})
	}
}

// TestMeasureTelemetrySmoke runs both modes briefly: positive
// throughputs and an overhead fraction inside [0,1). The 3% acceptance
// budget is gated in CI via cmd/benchjson -max-telemetry-overhead, not
// here — a loaded test machine with a sub-second window is too noisy.
func TestMeasureTelemetrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drives live HTTP load")
	}
	tel, err := MeasureTelemetry(1e6, 1, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !(tel.UninstrumentedAnswersPerSec > 0) || !(tel.InstrumentedAnswersPerSec > 0) {
		t.Fatalf("non-positive measurement: %+v", tel)
	}
	if tel.OverheadFrac < 0 || tel.OverheadFrac >= 1 {
		t.Fatalf("overhead fraction %v outside [0,1)", tel.OverheadFrac)
	}
	r := validReport()
	r.Telemetry = tel
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
}
