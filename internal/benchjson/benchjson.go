// Package benchjson measures and serializes the repository's performance
// trajectory: a schema'd JSON report (BENCH_<n>.json in the repo root)
// holding ingest throughput, per-method inference epoch latency, and
// assignment QPS, plus the calibration constant that makes the numbers
// comparable across machines.
//
// Epoch latency is the marginal cost of one E/M sweep, measured as
// (T(hi iters) − T(lo iters)) / (hi − lo) so that per-call fixed costs
// (CSR build, buffer allocation) cancel out. Every latency also carries a
// dimensionless normalized form — nanoseconds divided by the calibration
// loop's nanoseconds — which is what the CI regression gate compares, so
// a slower runner does not read as a code regression.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	ti "truthinference"
	"truthinference/internal/assign"
	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/simulate"
	"truthinference/internal/stream"
)

// SchemaVersion identifies the report layout; bump on breaking changes.
const SchemaVersion = 1

// Report is the checked-in benchmark artifact.
type Report struct {
	SchemaVersion int     `json:"schema_version"`
	BenchID       string  `json:"bench_id"`
	GoVersion     string  `json:"go_version"`
	Scale         float64 `json:"scale"`
	Seed          int64   `json:"seed"`
	// CalibrationNs is the wall time of the fixed calibration loop on the
	// machine that produced the report; all Normalized fields are ratios
	// against it.
	CalibrationNs float64     `json:"calibration_ns"`
	Ingest        Throughput  `json:"ingest"`
	Assign        Throughput  `json:"assign"`
	EpochLatency  []EpochStat `json:"epoch_latency"`
	// HTTPIngest is the end-to-end HTTP serving-path measurement
	// (single-answer JSON vs batched binary). Optional and additive:
	// earlier schema v1 reports without it stay valid.
	HTTPIngest *HTTPIngest `json:"http_ingest,omitempty"`
	// Query is the relational read-path measurement (the three canned
	// operator views). Optional and additive like HTTPIngest.
	Query *QueryBench `json:"query,omitempty"`
	// Telemetry is the instrumentation-overhead measurement (batched
	// ingest with vs without the telemetry plane). Optional and additive.
	Telemetry *Telemetry `json:"telemetry,omitempty"`
}

// Throughput is an operations-per-second measurement with its
// machine-normalized form (ops per calibration-loop unit of work).
type Throughput struct {
	OpsPerSec  float64 `json:"ops_per_sec"`
	Normalized float64 `json:"normalized"`
}

// EpochStat is one method's marginal per-iteration inference cost on its
// canonical benchmark dataset.
type EpochStat struct {
	Method  string `json:"method"`
	Dataset string `json:"dataset"`
	// NsPerEpoch is the marginal wall time of one additional E/M sweep.
	NsPerEpoch float64 `json:"ns_per_epoch"`
	// Normalized is NsPerEpoch / CalibrationNs.
	Normalized float64 `json:"normalized"`
}

// epochTargets pairs every CSR-kernel method with its canonical dataset.
var epochTargets = []struct {
	method string
	kind   simulate.Kind
}{
	{"ZC", simulate.DProduct},
	{"GLAD", simulate.DProduct},
	{"D&S", simulate.SRel},
	{"LFC", simulate.SRel},
	{"PM", simulate.DProduct},
	{"CATD", simulate.DProduct},
	{"LFC_N", simulate.NEmotion},
}

// Calibrate times a fixed pure-arithmetic loop (min of eight runs). The
// loop's work is constant, so its wall time is a proxy for the machine's
// single-core speed and serves as the normalization unit.
func Calibrate() float64 {
	const n = 1 << 21
	best := time.Duration(1 << 62)
	for r := 0; r < 8; r++ {
		x := uint64(0x9E3779B97F4A7C15)
		acc := 0.0
		start := time.Now()
		for i := 0; i < n; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			acc += float64(x>>40) * 1e-9
		}
		el := time.Since(start)
		if acc == -1 { // defeat dead-code elimination
			panic("unreachable")
		}
		if el < best {
			best = el
		}
	}
	return float64(best.Nanoseconds())
}

// Measure produces a full report at the given dataset scale. repeats is
// the number of timing repetitions per measurement (the minimum wins).
func Measure(benchID string, scale float64, seed int64, repeats int) (*Report, error) {
	if repeats < 1 {
		repeats = 1
	}
	r := &Report{
		SchemaVersion: SchemaVersion,
		BenchID:       benchID,
		GoVersion:     runtime.Version(),
		Scale:         scale,
		Seed:          seed,
		CalibrationNs: Calibrate(),
	}
	// Re-calibrate after the measurements and keep the faster sample:
	// calibration brackets the measurement window, so a transiently
	// loaded (or still frequency-ramping) CPU at process start cannot
	// skew every normalized value of the run.
	defer func() {
		if c := Calibrate(); c < r.CalibrationNs {
			r.CalibrationNs = c
			for i := range r.EpochLatency {
				r.EpochLatency[i].Normalized = r.EpochLatency[i].NsPerEpoch / c
			}
			r.Ingest.Normalized = r.Ingest.OpsPerSec * c / 1e9
			r.Assign.Normalized = r.Assign.OpsPerSec * c / 1e9
		}
	}()
	datasets := map[simulate.Kind]*dataset.Dataset{}
	data := func(k simulate.Kind) *dataset.Dataset {
		if d, ok := datasets[k]; !ok {
			datasets[k] = simulate.GenerateScaled(k, seed, scale)
		} else {
			return d
		}
		return datasets[k]
	}

	for _, tgt := range epochTargets {
		m, err := ti.GetMethod(tgt.method)
		if err != nil {
			return nil, err
		}
		d := data(tgt.kind)
		ns, err := epochLatency(m, d, seed, repeats)
		if err != nil {
			return nil, fmt.Errorf("epoch latency %s/%s: %w", tgt.method, d.Name, err)
		}
		r.EpochLatency = append(r.EpochLatency, EpochStat{
			Method:     tgt.method,
			Dataset:    d.Name,
			NsPerEpoch: ns,
			Normalized: ns / r.CalibrationNs,
		})
	}

	ing, err := ingestThroughput(data(simulate.DProduct), seed, repeats)
	if err != nil {
		return nil, fmt.Errorf("ingest throughput: %w", err)
	}
	r.Ingest = Throughput{OpsPerSec: ing, Normalized: ing * r.CalibrationNs / 1e9}

	qps, err := assignQPS(data(simulate.DProduct), seed, repeats)
	if err != nil {
		return nil, fmt.Errorf("assign QPS: %w", err)
	}
	r.Assign = Throughput{OpsPerSec: qps, Normalized: qps * r.CalibrationNs / 1e9}
	return r, nil
}

// epochLatency measures the marginal cost of one inference iteration:
// run the method at a low and a high iteration cap (both below its
// convergence point so each run executes exactly cap sweeps) and divide
// the wall-time difference by the extra iterations. Methods that
// converge by exact label equality (PM, CATD) ignore the pinned
// tolerance, so the caps adapt to the observed convergence iteration.
func epochLatency(m ti.Method, d *dataset.Dataset, seed int64, repeats int) (float64, error) {
	probe := core.Options{Seed: seed, MaxIterations: 50, Tolerance: 1e-300, Parallelism: 1}
	res, err := m.Infer(d, probe)
	if err != nil {
		return 0, err
	}
	hi := 12
	if res.Converged && res.Iterations-1 < hi {
		hi = res.Iterations - 1
	}
	lo := hi / 4
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		return 0, fmt.Errorf("converges too fast (iteration %d) to isolate an epoch", res.Iterations)
	}
	loOpts, hiOpts := probe, probe
	loOpts.MaxIterations, hiOpts.MaxIterations = lo, hi

	run := func(o core.Options, k int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < k; i++ {
			if _, err := m.Infer(d, o); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	// Warm up, then size the inner batch so each timed sample covers at
	// least ~25ms of work: methods with microsecond epochs would
	// otherwise drown the lo/hi difference in scheduler jitter.
	warm, err := run(hiOpts, 1)
	if err != nil {
		return 0, err
	}
	const minSample = 25 * time.Millisecond
	k := 1
	if warm > 0 && warm < minSample {
		k = int(minSample/warm) + 1
	}
	best := time.Duration(1 << 62)
	for i := 0; i < repeats; i++ {
		th, err := run(hiOpts, k)
		if err != nil {
			return 0, err
		}
		tl, err := run(loOpts, k)
		if err != nil {
			return 0, err
		}
		if diff := (th - tl) / time.Duration(k); diff > 0 && diff < best {
			best = diff
		}
	}
	return float64(best.Nanoseconds()) / float64(hi-lo), nil
}

// ingestThroughput measures the O(delta) serving path: answers folded
// into a live majority-vote service in 100-answer batches.
func ingestThroughput(d *dataset.Dataset, seed int64, repeats int) (float64, error) {
	const batch = 100
	if len(d.Answers) < 2*batch {
		return 0, fmt.Errorf("dataset %s too small (%d answers)", d.Name, len(d.Answers))
	}
	best := time.Duration(1 << 62)
	var batches int
	for i := 0; i < repeats; i++ {
		store, err := stream.NewStore(d.Name, d.Type, d.NumChoices)
		if err != nil {
			return 0, err
		}
		svc, err := stream.NewService(store, stream.Config{
			Method:  direct.NewMV(),
			Options: core.Options{Seed: seed},
		})
		if err != nil {
			return 0, err
		}
		if _, err := svc.Ingest(stream.Batch{NumTasks: d.NumTasks, NumWorkers: d.NumWorkers}); err != nil {
			svc.Close()
			return 0, err
		}
		batches = len(d.Answers) / batch
		start := time.Now()
		for n := 0; n < batches; n++ {
			if _, err := svc.Ingest(stream.Batch{Answers: d.Answers[n*batch : (n+1)*batch]}); err != nil {
				svc.Close()
				return 0, err
			}
		}
		el := time.Since(start)
		svc.Close()
		if el < best {
			best = el
		}
	}
	return float64(batches*batch) / best.Seconds(), nil
}

// assignQPS measures the control-plane hot path: one assign+complete
// round trip against a live service with a published posterior, under
// the uncertainty policy (the scoring-heavy one).
func assignQPS(d *dataset.Dataset, seed int64, repeats int) (float64, error) {
	const rounds = 2000
	policy, err := assign.ParsePolicy("uncertainty")
	if err != nil {
		return 0, err
	}
	best := time.Duration(1 << 62)
	for i := 0; i < repeats; i++ {
		store, err := stream.NewStore(d.Name, d.Type, d.NumChoices)
		if err != nil {
			return 0, err
		}
		svc, err := stream.NewService(store, stream.Config{
			Method:  direct.NewMV(),
			Options: core.Options{Seed: seed},
		})
		if err != nil {
			return 0, err
		}
		if _, err := svc.Ingest(stream.Batch{
			NumTasks:   d.NumTasks,
			NumWorkers: d.NumWorkers + rounds,
			Answers:    d.Answers,
		}); err != nil {
			svc.Close()
			return 0, err
		}
		if err := svc.Refresh(); err != nil {
			svc.Close()
			return 0, err
		}
		now := time.Unix(1_000_000, 0)
		ledger, err := assign.NewLedger(svc, assign.Config{
			Policy:     policy,
			Redundancy: 1 << 30, // never cap: steady-state scoring cost
			LeaseTTL:   time.Hour,
			Seed:       seed,
			Now:        func() time.Time { return now },
		})
		if err != nil {
			svc.Close()
			return 0, err
		}
		start := time.Now()
		for n := 0; n < rounds; n++ {
			// A fresh worker id each round keeps self-exclusion from
			// draining the board while measuring the full scan.
			w := d.NumWorkers + n
			lease, err := ledger.Assign(w)
			if err != nil {
				svc.Close()
				return 0, fmt.Errorf("assign round %d: %w", n, err)
			}
			if err := ledger.Complete(lease.ID, w, nil); err != nil {
				svc.Close()
				return 0, fmt.Errorf("complete round %d: %w", n, err)
			}
		}
		el := time.Since(start)
		svc.Close()
		if el < best {
			best = el
		}
	}
	return rounds / best.Seconds(), nil
}

// Validate checks a report against the schema: version match, positive
// calibration and throughputs, and a complete, positive epoch-latency
// table.
func Validate(r *Report) error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("schema_version %d (want %d)", r.SchemaVersion, SchemaVersion)
	}
	if r.BenchID == "" {
		return fmt.Errorf("bench_id is empty")
	}
	if !(r.CalibrationNs > 0) {
		return fmt.Errorf("calibration_ns %v is not positive", r.CalibrationNs)
	}
	if !(r.Scale > 0) {
		return fmt.Errorf("scale %v is not positive", r.Scale)
	}
	if !(r.Ingest.OpsPerSec > 0) || !(r.Ingest.Normalized > 0) {
		return fmt.Errorf("ingest throughput %+v is not positive", r.Ingest)
	}
	if !(r.Assign.OpsPerSec > 0) || !(r.Assign.Normalized > 0) {
		return fmt.Errorf("assign throughput %+v is not positive", r.Assign)
	}
	if len(r.EpochLatency) == 0 {
		return fmt.Errorf("epoch_latency is empty")
	}
	seen := map[string]bool{}
	for _, e := range r.EpochLatency {
		key := e.Method + "@" + e.Dataset
		if e.Method == "" || e.Dataset == "" {
			return fmt.Errorf("epoch_latency entry %+v missing method or dataset", e)
		}
		if seen[key] {
			return fmt.Errorf("duplicate epoch_latency entry %s", key)
		}
		seen[key] = true
		if !(e.NsPerEpoch > 0) || !(e.Normalized > 0) {
			return fmt.Errorf("epoch_latency %s is not positive: %+v", key, e)
		}
	}
	if h := r.HTTPIngest; h != nil {
		if !(h.SingleAnswersPerSec > 0) || !(h.BatchAnswersPerSec > 0) {
			return fmt.Errorf("http_ingest throughput %+v is not positive", h)
		}
		if !(h.Speedup > 0) || !(h.SingleNormalized > 0) || !(h.BatchNormalized > 0) {
			return fmt.Errorf("http_ingest derived values %+v are not positive", h)
		}
	}
	if t := r.Telemetry; t != nil {
		if !(t.UninstrumentedAnswersPerSec > 0) || !(t.InstrumentedAnswersPerSec > 0) {
			return fmt.Errorf("telemetry throughput %+v is not positive", t)
		}
		if !(t.UninstrumentedNormalized > 0) || !(t.InstrumentedNormalized > 0) {
			return fmt.Errorf("telemetry normalized values %+v are not positive", t)
		}
		if t.OverheadFrac < 0 || t.OverheadFrac >= 1 {
			return fmt.Errorf("telemetry overhead_frac %v outside [0,1)", t.OverheadFrac)
		}
	}
	if q := r.Query; q != nil {
		// RowsPerSec is deliberately not gated: the disagreement view is
		// allowed to produce zero rows when methods agree.
		if !(q.QueriesPerSec > 0) || !(q.Normalized > 0) {
			return fmt.Errorf("query throughput %+v is not positive", q)
		}
		if len(q.Views) == 0 {
			return fmt.Errorf("query section lists no views")
		}
	}
	return nil
}

// Compare gates the current report against a baseline: every baseline
// epoch-latency entry must still exist and its normalized latency must
// not have grown by more than maxRegress (e.g. 0.20 for +20%). New
// entries in the current report pass without a baseline. Throughputs are
// advisory and not gated: they depend on I/O and lock behavior that
// varies too much across shared CI runners.
func Compare(baseline, current *Report, maxRegress float64) error {
	cur := map[string]EpochStat{}
	for _, e := range current.EpochLatency {
		cur[e.Method+"@"+e.Dataset] = e
	}
	for _, b := range baseline.EpochLatency {
		key := b.Method + "@" + b.Dataset
		c, ok := cur[key]
		if !ok {
			return fmt.Errorf("epoch_latency %s present in baseline but missing from current report", key)
		}
		limit := b.Normalized * (1 + maxRegress)
		if c.Normalized > limit {
			return fmt.Errorf("epoch_latency regression on %s: normalized %.4f > baseline %.4f +%d%%",
				key, c.Normalized, b.Normalized, int(maxRegress*100))
		}
	}
	return nil
}

// Load reads and validates a report file.
func Load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := Validate(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// Write serializes a report with a trailing newline, suitable for
// checking in.
func (r *Report) Write(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
