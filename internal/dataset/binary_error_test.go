package dataset

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// Hand-crafted hostile encodings for UnmarshalDataset. The round-trip
// and flipped-byte cases live in binary_test.go; this table drives the
// decoder through every guard with payloads built field by field, so a
// future layout change that silently drops a check fails here by name.

// enc builds a binary encoding from parts.
type enc []byte

func newEnc() enc                  { return enc(binaryMagic) }
func (e enc) uvarint(v uint64) enc { return binary.AppendUvarint(e, v) }
func (e enc) raw(b ...byte) enc    { return append(e, b...) }
func (e enc) str(s string) enc     { return append(e.uvarint(uint64(len(s))), s...) }
func (e enc) f64(v float64) enc    { return binary.LittleEndian.AppendUint64(e, math.Float64bits(v)) }

// header emits name through numWorkers for a 2-task 2-worker decision
// dataset — the valid prefix the hostile suffixes build on.
func header() enc {
	return newEnc().str("d").uvarint(uint64(Decision)).uvarint(2).uvarint(2).uvarint(2)
}

func TestUnmarshalDatasetErrorPaths(t *testing.T) {
	valid := header().uvarint(1).uvarint(0).uvarint(0).f64(1).uvarint(0)
	if _, err := UnmarshalDataset(valid); err != nil {
		t.Fatalf("fixture encoding rejected: %v", err)
	}

	cases := []struct {
		name    string
		data    []byte
		wantSub string // substring the error must carry (empty = any error)
	}{
		{"empty", nil, "magic"},
		{"short magic", []byte(binaryMagic[:3]), "magic"},
		{"wrong magic", append([]byte("TIDX\x01"), header()[5:]...), "magic"},
		{"name length overruns payload", newEnc().uvarint(1 << 20).raw('d'), "name length"},
		{"truncated after name", newEnc().str("d"), "truncated"},
		{"truncated mid header", newEnc().str("d").uvarint(uint64(Decision)).uvarint(2), "truncated"},
		{"oversized tasks", newEnc().str("d").uvarint(uint64(Decision)).uvarint(2).uvarint(1 << 27).uvarint(2), "implausible dims"},
		{"oversized workers", newEnc().str("d").uvarint(uint64(Decision)).uvarint(2).uvarint(2).uvarint(1 << 27), "implausible dims"},
		{"oversized choices", newEnc().str("d").uvarint(uint64(SingleChoice)).uvarint(1 << 25).uvarint(2).uvarint(2), "implausible dims"},
		{"answer count overruns payload", header().uvarint(1 << 30), "answer count"},
		{"answer shorter than declared", header().uvarint(1).raw(1, 2, 3), "answer count"},
		// Exactly minAnswerEnc bytes follow, so the count guard passes, but
		// they are all varint continuation bytes — the record truncates.
		{"truncated answer", header().uvarint(1).raw(0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80), "truncated"},
		{"truth count overruns payload", header().uvarint(0).uvarint(1 << 30), "truth count"},
		{"truncated truth", header().uvarint(0).uvarint(1).raw(0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80), "truncated"},
		{"missing truth section", header().uvarint(0), "truncated"},
		{"trailing bytes", append(append(enc(nil), valid...), 0xEE), "trailing"},
		// Structurally sound but semantically invalid: Build must reject.
		{"answer beyond task range", header().uvarint(1).uvarint(7).uvarint(0).f64(1).uvarint(0), ""},
		{"label beyond choices", header().uvarint(1).uvarint(0).uvarint(0).f64(9).uvarint(0), ""},
		{"truth beyond task range", header().uvarint(0).uvarint(1).uvarint(7).f64(1), ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := UnmarshalDataset(c.data)
			if err == nil {
				t.Fatalf("hostile encoding accepted")
			}
			if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

// TestUnmarshalDatasetTruncationSweep cuts a valid encoding at every
// byte boundary: no prefix may decode successfully (or panic).
func TestUnmarshalDatasetTruncationSweep(t *testing.T) {
	d, err := New("sweep", SingleChoice, 3, 3, 2, []Answer{
		{Task: 0, Worker: 0, Value: 1},
		{Task: 1, Worker: 1, Value: 2},
		{Task: 2, Worker: 0, Value: 0},
	}, map[int]float64{0: 1, 2: 0})
	if err != nil {
		t.Fatal(err)
	}
	full, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		if _, err := UnmarshalDataset(full[:n]); err == nil {
			t.Fatalf("truncation at byte %d of %d decoded successfully", n, len(full))
		}
	}
	if _, err := UnmarshalDataset(full); err != nil {
		t.Fatalf("full encoding rejected: %v", err)
	}
}
