// Package dataset defines the task/worker/answer data model of the paper
// (Definitions 1–5), TSV persistence compatible with the published
// benchmark format (answer triples and truth pairs), the per-dataset
// statistics reported in Table 5 and Section 6.2 (redundancy, consistency,
// worker quality), and the sub-sampling operations used by the redundancy
// sweep and golden-task experiments in Section 6.3.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// TaskType enumerates the three task families studied in the paper.
type TaskType int

const (
	// Decision is a two-choice decision-making task. Label 1 is the
	// positive ("T") choice and label 0 the negative ("F") choice; the
	// F1-score is computed with respect to label 1.
	Decision TaskType = iota
	// SingleChoice is an ℓ-choice single-label task with labels 0..ℓ-1.
	SingleChoice
	// Numeric is a task whose answer is a real value.
	Numeric
)

// String implements fmt.Stringer.
func (t TaskType) String() string {
	switch t {
	case Decision:
		return "decision"
	case SingleChoice:
		return "single-choice"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("TaskType(%d)", int(t))
	}
}

// Answer is a single worker's answer v^w_i for one task. For categorical
// task types Value holds the choice index (0..ℓ-1) as a float64; for
// numeric tasks it holds the raw value.
type Answer struct {
	Task   int
	Worker int
	Value  float64
}

// Label returns the categorical choice index of the answer.
func (a Answer) Label() int { return int(a.Value) }

// Dataset is a complete crowdsourced answer set V together with optional
// ground truth for a subset of tasks. Tasks and workers are dense integer
// ids 0..NumTasks-1 and 0..NumWorkers-1.
//
// The zero value is not usable; construct datasets with New or a loader
// and always call Build (New does this) after mutating Answers.
type Dataset struct {
	Name       string
	Type       TaskType
	NumChoices int // ℓ; 2 for Decision, 0 for Numeric
	NumTasks   int
	NumWorkers int
	Answers    []Answer

	// Truth maps a task id to its ground truth v*_i. Large benchmark
	// datasets only expose truth for a subset of tasks (Table 5).
	Truth map[int]float64

	byTask   [][]int // answer indices per task
	byWorker [][]int // answer indices per worker
}

// New constructs a dataset and builds its indices. It validates that every
// answer references a task and worker inside the declared ranges and, for
// categorical types, a choice in [0, ℓ).
func New(name string, typ TaskType, numChoices, numTasks, numWorkers int, answers []Answer, truth map[int]float64) (*Dataset, error) {
	d := &Dataset{
		Name:       name,
		Type:       typ,
		NumChoices: numChoices,
		NumTasks:   numTasks,
		NumWorkers: numWorkers,
		Answers:    answers,
		Truth:      truth,
	}
	if err := d.Build(); err != nil {
		return nil, err
	}
	return d, nil
}

// Build validates the dataset and (re)builds the per-task and per-worker
// indices. It must be called after any direct mutation of Answers.
func (d *Dataset) Build() error {
	if d.NumTasks < 0 || d.NumWorkers < 0 {
		return errors.New("dataset: negative task or worker count")
	}
	switch d.Type {
	case Decision:
		if d.NumChoices == 0 {
			d.NumChoices = 2
		}
		if d.NumChoices != 2 {
			return fmt.Errorf("dataset %q: decision tasks need exactly 2 choices, got %d", d.Name, d.NumChoices)
		}
	case SingleChoice:
		if d.NumChoices < 2 {
			return fmt.Errorf("dataset %q: single-choice tasks need >=2 choices, got %d", d.Name, d.NumChoices)
		}
	case Numeric:
		d.NumChoices = 0
	default:
		return fmt.Errorf("dataset %q: unknown task type %d", d.Name, int(d.Type))
	}
	d.byTask = make([][]int, d.NumTasks)
	d.byWorker = make([][]int, d.NumWorkers)
	for idx, a := range d.Answers {
		if a.Task < 0 || a.Task >= d.NumTasks {
			return fmt.Errorf("dataset %q: answer %d references task %d outside [0,%d)", d.Name, idx, a.Task, d.NumTasks)
		}
		if a.Worker < 0 || a.Worker >= d.NumWorkers {
			return fmt.Errorf("dataset %q: answer %d references worker %d outside [0,%d)", d.Name, idx, a.Worker, d.NumWorkers)
		}
		if d.Type != Numeric {
			l := a.Label()
			if float64(l) != a.Value || l < 0 || l >= d.NumChoices {
				return fmt.Errorf("dataset %q: answer %d has invalid label %v for %d choices", d.Name, idx, a.Value, d.NumChoices)
			}
		} else if math.IsNaN(a.Value) || math.IsInf(a.Value, 0) {
			return fmt.Errorf("dataset %q: answer %d has non-finite numeric value", d.Name, idx)
		}
		d.byTask[a.Task] = append(d.byTask[a.Task], idx)
		d.byWorker[a.Worker] = append(d.byWorker[a.Worker], idx)
	}
	for t, v := range d.Truth {
		if t < 0 || t >= d.NumTasks {
			return fmt.Errorf("dataset %q: truth references task %d outside [0,%d)", d.Name, t, d.NumTasks)
		}
		if d.Type != Numeric {
			l := int(v)
			if float64(l) != v || l < 0 || l >= d.NumChoices {
				return fmt.Errorf("dataset %q: truth for task %d has invalid label %v", d.Name, t, v)
			}
		}
	}
	return nil
}

// Categorical reports whether the dataset holds decision-making or
// single-choice tasks (as opposed to numeric ones).
func (d *Dataset) Categorical() bool { return d.Type != Numeric }

// TaskAnswers returns the indices into Answers for task i (W_i in the
// paper's notation, as answer records).
func (d *Dataset) TaskAnswers(task int) []int { return d.byTask[task] }

// WorkerAnswers returns the indices into Answers for worker w (T^w).
func (d *Dataset) WorkerAnswers(worker int) []int { return d.byWorker[worker] }

// Redundancy returns |V|/n, the average number of answers per task
// (Table 5's |V|/n column). It is zero for an empty dataset.
func (d *Dataset) Redundancy() float64 {
	if d.NumTasks == 0 {
		return 0
	}
	return float64(len(d.Answers)) / float64(d.NumTasks)
}

// MaxRedundancy returns the largest number of answers any task received.
func (d *Dataset) MaxRedundancy() int {
	m := 0
	for _, idxs := range d.byTask {
		if len(idxs) > m {
			m = len(idxs)
		}
	}
	return m
}

// Clone returns a deep copy of the dataset, including indices.
func (d *Dataset) Clone() *Dataset {
	cp := &Dataset{
		Name:       d.Name,
		Type:       d.Type,
		NumChoices: d.NumChoices,
		NumTasks:   d.NumTasks,
		NumWorkers: d.NumWorkers,
		Answers:    append([]Answer(nil), d.Answers...),
		Truth:      make(map[int]float64, len(d.Truth)),
	}
	for k, v := range d.Truth {
		cp.Truth[k] = v
	}
	if err := cp.Build(); err != nil {
		// A valid dataset always clones to a valid dataset.
		panic("dataset: Clone of valid dataset failed: " + err.Error())
	}
	return cp
}

// SampleRedundancy returns a new dataset in which every task keeps at most
// r of its answers, selected uniformly at random — the construction used
// for the redundancy sweeps behind Figures 4, 5 and 6. Truth is carried
// over unchanged.
func (d *Dataset) SampleRedundancy(r int, rng *rand.Rand) *Dataset {
	if r < 0 {
		r = 0
	}
	keep := make([]Answer, 0, min(len(d.Answers), r*d.NumTasks))
	perm := make([]int, 0, 64)
	for task := 0; task < d.NumTasks; task++ {
		idxs := d.byTask[task]
		if len(idxs) <= r {
			for _, ai := range idxs {
				keep = append(keep, d.Answers[ai])
			}
			continue
		}
		perm = perm[:0]
		perm = append(perm, idxs...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for _, ai := range perm[:r] {
			keep = append(keep, d.Answers[ai])
		}
	}
	out := &Dataset{
		Name:       d.Name,
		Type:       d.Type,
		NumChoices: d.NumChoices,
		NumTasks:   d.NumTasks,
		NumWorkers: d.NumWorkers,
		Answers:    keep,
		Truth:      d.Truth,
	}
	if err := out.Build(); err != nil {
		panic("dataset: SampleRedundancy produced invalid dataset: " + err.Error())
	}
	return out
}

// SplitGolden selects fraction p (0..1) of the tasks *with known truth*
// uniformly at random and returns their ids and truths as the golden set
// (the hidden-test construction of §6.3.3). The remaining truth-bearing
// tasks form the evaluation set, returned as the second value.
func (d *Dataset) SplitGolden(p float64, rng *rand.Rand) (golden map[int]float64, eval map[int]float64) {
	ids := make([]int, 0, len(d.Truth))
	for t := range d.Truth {
		ids = append(ids, t)
	}
	sort.Ints(ids)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	k := int(math.Round(p * float64(len(ids))))
	if k > len(ids) {
		k = len(ids)
	}
	golden = make(map[int]float64, k)
	eval = make(map[int]float64, len(ids)-k)
	for i, t := range ids {
		if i < k {
			golden[t] = d.Truth[t]
		} else {
			eval[t] = d.Truth[t]
		}
	}
	return golden, eval
}

// TruthVector returns the truth as a dense slice with NaN for tasks whose
// truth is unknown.
func (d *Dataset) TruthVector() []float64 {
	out := make([]float64, d.NumTasks)
	for i := range out {
		out[i] = math.NaN()
	}
	for t, v := range d.Truth {
		out[t] = v
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
