package dataset

import (
	"reflect"
	"testing"
)

func TestGrowAndAppendMatchesBuild(t *testing.T) {
	d, err := New("inc", SingleChoice, 3, 2, 2, []Answer{
		{Task: 0, Worker: 0, Value: 2},
		{Task: 1, Worker: 1, Value: 0},
	}, map[int]float64{0: 2})
	if err != nil {
		t.Fatal(err)
	}

	d.Grow(4, 3)
	if d.NumTasks != 4 || d.NumWorkers != 3 {
		t.Fatalf("Grow → %d tasks, %d workers", d.NumTasks, d.NumWorkers)
	}
	delta := []Answer{
		{Task: 2, Worker: 2, Value: 1},
		{Task: 0, Worker: 2, Value: 2},
		{Task: 3, Worker: 0, Value: 1},
	}
	if err := d.AppendAnswers(delta...); err != nil {
		t.Fatal(err)
	}
	if err := d.SetTruth(3, 1); err != nil {
		t.Fatal(err)
	}

	// The incrementally maintained dataset must be indistinguishable from
	// one built in a single shot over the final answer set.
	want, err := New("inc", SingleChoice, 3, 4, 3, append([]Answer{
		{Task: 0, Worker: 0, Value: 2},
		{Task: 1, Worker: 1, Value: 0},
	}, delta...), map[int]float64{0: 2, 3: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !reflect.DeepEqual(d.TaskAnswers(i), want.TaskAnswers(i)) {
			t.Errorf("task %d indices = %v, want %v", i, d.TaskAnswers(i), want.TaskAnswers(i))
		}
	}
	for w := 0; w < 3; w++ {
		if !reflect.DeepEqual(d.WorkerAnswers(w), want.WorkerAnswers(w)) {
			t.Errorf("worker %d indices = %v, want %v", w, d.WorkerAnswers(w), want.WorkerAnswers(w))
		}
	}
	if !reflect.DeepEqual(d.Truth, want.Truth) {
		t.Errorf("truth = %v, want %v", d.Truth, want.Truth)
	}
}

func TestAppendAnswersRejectsWithoutMutating(t *testing.T) {
	d, err := New("guard", Decision, 2, 2, 2, []Answer{{Task: 0, Worker: 0, Value: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]Answer{
		{{Task: 5, Worker: 0, Value: 1}},                                 // task out of range
		{{Task: 0, Worker: 9, Value: 0}},                                 // worker out of range
		{{Task: 0, Worker: 0, Value: 3}},                                 // invalid label
		{{Task: 1, Worker: 1, Value: 0}, {Task: 1, Worker: 1, Value: 7}}, // valid then invalid
	}
	for i, bad := range cases {
		if err := d.AppendAnswers(bad...); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if len(d.Answers) != 1 || len(d.TaskAnswers(0)) != 1 || len(d.TaskAnswers(1)) != 0 {
		t.Errorf("failed appends mutated the dataset: %+v", d.Answers)
	}
}

func TestSetTruthValidates(t *testing.T) {
	d, err := New("truth", Decision, 2, 1, 1, []Answer{{Task: 0, Worker: 0, Value: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetTruth(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.SetTruth(2, 0); err == nil {
		t.Error("out-of-range task accepted")
	}
	if err := d.SetTruth(0, 0.5); err == nil {
		t.Error("fractional label accepted for categorical task")
	}
	if d.Truth[0] != 1 {
		t.Errorf("truth = %v", d.Truth)
	}
}
