package dataset

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Stable binary encoding of a dataset, used by the durability layer
// (internal/stream/wal) for compacted snapshots. The encoding is
// deterministic — the same dataset always marshals to the same bytes
// (truths are written sorted by task id) — so recovery equivalence can
// be checked bytewise. Layout (all integers unsigned varints, floats
// 8-byte little-endian IEEE-754 bits):
//
//	magic "TIDS\x01"
//	name length, name bytes
//	type, numChoices, numTasks, numWorkers
//	answer count, then per answer: task, worker, value bits
//	truth count, then per truth (ascending task): task, value bits
const binaryMagic = "TIDS\x01"

// minAnswerEnc / minTruthEnc are the smallest possible encodings of one
// answer / truth record; decode caps the declared counts by the
// remaining payload so corrupt counts cannot drive huge allocations.
const (
	minAnswerEnc = 1 + 1 + 8
	minTruthEnc  = 1 + 8
)

// MarshalBinary serializes the dataset in the stable binary format.
func (d *Dataset) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, len(binaryMagic)+len(d.Name)+16+len(d.Answers)*12+len(d.Truth)*10)
	buf = append(buf, binaryMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(d.Name)))
	buf = append(buf, d.Name...)
	buf = binary.AppendUvarint(buf, uint64(d.Type))
	buf = binary.AppendUvarint(buf, uint64(d.NumChoices))
	buf = binary.AppendUvarint(buf, uint64(d.NumTasks))
	buf = binary.AppendUvarint(buf, uint64(d.NumWorkers))
	buf = binary.AppendUvarint(buf, uint64(len(d.Answers)))
	for _, a := range d.Answers {
		buf = binary.AppendUvarint(buf, uint64(a.Task))
		buf = binary.AppendUvarint(buf, uint64(a.Worker))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Value))
	}
	ids := make([]int, 0, len(d.Truth))
	for t := range d.Truth {
		ids = append(ids, t)
	}
	sort.Ints(ids)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, t := range ids {
		buf = binary.AppendUvarint(buf, uint64(t))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.Truth[t]))
	}
	return buf, nil
}

// UnmarshalDataset decodes a dataset marshaled with MarshalBinary and
// rebuilds (and thereby re-validates) its indices.
func UnmarshalDataset(data []byte) (*Dataset, error) {
	c := cursor{data: data}
	if string(c.take(len(binaryMagic))) != binaryMagic {
		return nil, fmt.Errorf("dataset: bad binary magic")
	}
	nameLen := c.uvarint()
	if nameLen > uint64(c.remaining()) {
		return nil, fmt.Errorf("dataset: name length %d exceeds payload", nameLen)
	}
	d := &Dataset{Name: string(c.take(int(nameLen)))}
	d.Type = TaskType(c.uvarint())
	d.NumChoices = int(c.uvarint())
	d.NumTasks = int(c.uvarint())
	d.NumWorkers = int(c.uvarint())
	// Insanity guard: Build allocates per-task/per-worker index slots, so
	// refuse dims no real dataset reaches before attempting that (the
	// same cap stream.MaxDim enforces at ingest time).
	const maxBinaryDim = 1 << 26
	if uint64(d.NumTasks) > maxBinaryDim || uint64(d.NumWorkers) > maxBinaryDim || d.NumChoices > 1<<24 {
		return nil, fmt.Errorf("dataset: implausible dims in binary encoding (%d tasks, %d workers, %d choices)",
			d.NumTasks, d.NumWorkers, d.NumChoices)
	}
	nAns := c.uvarint()
	if nAns > uint64(c.remaining()/minAnswerEnc) {
		return nil, fmt.Errorf("dataset: answer count %d exceeds payload", nAns)
	}
	d.Answers = make([]Answer, nAns)
	for i := range d.Answers {
		d.Answers[i] = Answer{
			Task:   int(c.uvarint()),
			Worker: int(c.uvarint()),
			Value:  math.Float64frombits(c.u64()),
		}
	}
	nTruth := c.uvarint()
	if nTruth > uint64(c.remaining()/minTruthEnc) {
		return nil, fmt.Errorf("dataset: truth count %d exceeds payload", nTruth)
	}
	d.Truth = make(map[int]float64, nTruth)
	for i := uint64(0); i < nTruth; i++ {
		t := int(c.uvarint())
		d.Truth[t] = math.Float64frombits(c.u64())
	}
	if c.err {
		return nil, fmt.Errorf("dataset: truncated binary encoding")
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("dataset: %d trailing bytes after binary encoding", c.remaining())
	}
	if err := d.Build(); err != nil {
		return nil, err
	}
	return d, nil
}

// cursor is a bounds-checked sequential reader over a byte slice; after
// any under-run every further read returns zeros and err is set, so
// decode loops stay simple and never panic on truncated input.
type cursor struct {
	data []byte
	off  int
	err  bool
}

func (c *cursor) remaining() int { return len(c.data) - c.off }

func (c *cursor) take(n int) []byte {
	if n < 0 || c.remaining() < n {
		c.err = true
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) uvarint() uint64 {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		c.err = true
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
