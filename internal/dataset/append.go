package dataset

import (
	"fmt"
	"math"
)

// This file is the mutation API behind the online ingestion path
// (internal/stream): answers arrive in batches while inference keeps
// serving, so the dataset must grow in O(delta) — appending answers and
// extending the id ranges without rebuilding the per-task and per-worker
// indices from scratch. All methods require a built dataset (New, or
// Build after direct mutation) and keep it built on success; on error the
// dataset is unchanged.

// Grow extends the declared task and worker ranges to at least numTasks
// and numWorkers, allocating empty index slots for the new ids. Shrinking
// is not supported; values at or below the current counts are no-ops.
func (d *Dataset) Grow(numTasks, numWorkers int) {
	if numTasks > d.NumTasks {
		d.byTask = append(d.byTask, make([][]int, numTasks-d.NumTasks)...)
		d.NumTasks = numTasks
	}
	if numWorkers > d.NumWorkers {
		d.byWorker = append(d.byWorker, make([][]int, numWorkers-d.NumWorkers)...)
		d.NumWorkers = numWorkers
	}
}

// CheckAnswer validates one answer against the dataset's current ranges
// and task type, with the same rules Build enforces.
func (d *Dataset) CheckAnswer(a Answer) error {
	if a.Task < 0 || a.Task >= d.NumTasks {
		return fmt.Errorf("dataset %q: answer references task %d outside [0,%d)", d.Name, a.Task, d.NumTasks)
	}
	if a.Worker < 0 || a.Worker >= d.NumWorkers {
		return fmt.Errorf("dataset %q: answer references worker %d outside [0,%d)", d.Name, a.Worker, d.NumWorkers)
	}
	if d.Type != Numeric {
		l := a.Label()
		if float64(l) != a.Value || l < 0 || l >= d.NumChoices {
			return fmt.Errorf("dataset %q: answer has invalid label %v for %d choices", d.Name, a.Value, d.NumChoices)
		}
	} else if math.IsNaN(a.Value) || math.IsInf(a.Value, 0) {
		return fmt.Errorf("dataset %q: answer has non-finite numeric value", d.Name)
	}
	return nil
}

// AppendAnswers validates every answer and then appends them, updating
// the per-task and per-worker indices incrementally — O(len(answers))
// regardless of the dataset's size. Tasks or workers outside the current
// ranges are an error; call Grow first to admit new ids. On error nothing
// is appended.
func (d *Dataset) AppendAnswers(answers ...Answer) error {
	for i, a := range answers {
		if err := d.CheckAnswer(a); err != nil {
			return fmt.Errorf("append %d: %w", i, err)
		}
	}
	base := len(d.Answers)
	d.Answers = append(d.Answers, answers...)
	for k, a := range answers {
		idx := base + k
		d.byTask[a.Task] = append(d.byTask[a.Task], idx)
		d.byWorker[a.Worker] = append(d.byWorker[a.Worker], idx)
	}
	return nil
}

// SetTruth records (or overwrites) the ground truth of one task, with the
// same validation Build applies to the Truth map.
func (d *Dataset) SetTruth(task int, v float64) error {
	if task < 0 || task >= d.NumTasks {
		return fmt.Errorf("dataset %q: truth references task %d outside [0,%d)", d.Name, task, d.NumTasks)
	}
	if d.Type != Numeric {
		l := int(v)
		if float64(l) != v || l < 0 || l >= d.NumChoices {
			return fmt.Errorf("dataset %q: truth for task %d has invalid label %v", d.Name, task, v)
		}
	}
	if d.Truth == nil {
		d.Truth = make(map[int]float64)
	}
	d.Truth[task] = v
	return nil
}
