package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The on-disk format mirrors the published benchmark's layout:
//
//	answer file: one "task<TAB>worker<TAB>value" triple per line
//	truth file:  one "task<TAB>value" pair per line
//
// plus a small header line in the answer file carrying the metadata this
// library needs to rebuild the Dataset:
//
//	#dataset<TAB>name<TAB>type<TAB>numChoices<TAB>numTasks<TAB>numWorkers
//
// Lines starting with '#' other than the header are comments.

// WriteAnswers serializes the dataset's answers (with header) to w.
func WriteAnswers(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#dataset\t%s\t%s\t%d\t%d\t%d\n", d.Name, d.Type, d.NumChoices, d.NumTasks, d.NumWorkers)
	for _, a := range d.Answers {
		if d.Categorical() {
			fmt.Fprintf(bw, "%d\t%d\t%d\n", a.Task, a.Worker, a.Label())
		} else {
			fmt.Fprintf(bw, "%d\t%d\t%g\n", a.Task, a.Worker, a.Value)
		}
	}
	return bw.Flush()
}

// WriteTruth serializes the dataset's known truths to w, sorted by task id.
func WriteTruth(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	ids := make([]int, 0, len(d.Truth))
	for t := range d.Truth {
		ids = append(ids, t)
	}
	sort.Ints(ids)
	for _, t := range ids {
		v := d.Truth[t]
		if d.Categorical() {
			fmt.Fprintf(bw, "%d\t%d\n", t, int(v))
		} else {
			fmt.Fprintf(bw, "%d\t%g\n", t, v)
		}
	}
	return bw.Flush()
}

// ReadAnswers parses an answer stream produced by WriteAnswers.
func ReadAnswers(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	d := &Dataset{Truth: map[int]float64{}}
	sawHeader := false
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "#dataset\t") {
				fields := strings.Split(line, "\t")
				if len(fields) != 6 {
					return nil, fmt.Errorf("dataset: malformed header at line %d", lineno)
				}
				d.Name = fields[1]
				typ, err := parseTaskType(fields[2])
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: %w", lineno, err)
				}
				d.Type = typ
				vals := make([]int, 3)
				for i, f := range fields[3:] {
					v, err := strconv.Atoi(f)
					if err != nil {
						return nil, fmt.Errorf("dataset: malformed header field %q at line %d", f, lineno)
					}
					vals[i] = v
				}
				d.NumChoices, d.NumTasks, d.NumWorkers = vals[0], vals[1], vals[2]
				sawHeader = true
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("dataset: expected 3 fields at line %d, got %d", lineno, len(fields))
		}
		task, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: bad task id at line %d: %w", lineno, err)
		}
		worker, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: bad worker id at line %d: %w", lineno, err)
		}
		val, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: bad answer value at line %d: %w", lineno, err)
		}
		d.Answers = append(d.Answers, Answer{Task: task, Worker: worker, Value: val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("dataset: missing #dataset header")
	}
	if err := d.Build(); err != nil {
		return nil, err
	}
	return d, nil
}

// ReadTruthInto parses a truth stream produced by WriteTruth and installs
// the truths into d (validating ranges via Build).
func ReadTruthInto(r io.Reader, d *Dataset) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineno := 0
	if d.Truth == nil {
		d.Truth = map[int]float64{}
	}
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("dataset: expected 2 fields at line %d, got %d", lineno, len(fields))
		}
		task, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("dataset: bad task id at line %d: %w", lineno, err)
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("dataset: bad truth value at line %d: %w", lineno, err)
		}
		d.Truth[task] = val
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return d.Build()
}

// SaveFiles writes <base>.answers.tsv and <base>.truth.tsv.
func SaveFiles(base string, d *Dataset) error {
	af, err := os.Create(base + ".answers.tsv")
	if err != nil {
		return err
	}
	defer af.Close()
	if err := WriteAnswers(af, d); err != nil {
		return err
	}
	tf, err := os.Create(base + ".truth.tsv")
	if err != nil {
		return err
	}
	defer tf.Close()
	return WriteTruth(tf, d)
}

// LoadFiles reads a dataset saved by SaveFiles.
func LoadFiles(base string) (*Dataset, error) {
	af, err := os.Open(base + ".answers.tsv")
	if err != nil {
		return nil, err
	}
	defer af.Close()
	d, err := ReadAnswers(af)
	if err != nil {
		return nil, err
	}
	tf, err := os.Open(base + ".truth.tsv")
	if err != nil {
		if os.IsNotExist(err) {
			return d, nil
		}
		return nil, err
	}
	defer tf.Close()
	if err := ReadTruthInto(tf, d); err != nil {
		return nil, err
	}
	return d, nil
}

func parseTaskType(s string) (TaskType, error) {
	switch s {
	case "decision":
		return Decision, nil
	case "single-choice":
		return SingleChoice, nil
	case "numeric":
		return Numeric, nil
	default:
		return 0, fmt.Errorf("unknown task type %q", s)
	}
}
