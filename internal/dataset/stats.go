package dataset

import (
	"math"
)

// Stats holds the per-dataset statistics reported in Table 5 and
// Section 6.2 of the paper.
type Stats struct {
	Name        string
	Type        TaskType
	NumTasks    int     // n
	NumTruth    int     // #truth
	NumAnswers  int     // |V|
	Redundancy  float64 // |V|/n
	NumWorkers  int     // |W|
	Consistency float64 // C from §6.2.1 (entropy for categorical, deviation for numeric)
}

// ComputeStats returns the Table-5 row plus the consistency value for d.
func ComputeStats(d *Dataset) Stats {
	return Stats{
		Name:        d.Name,
		Type:        d.Type,
		NumTasks:    d.NumTasks,
		NumTruth:    len(d.Truth),
		NumAnswers:  len(d.Answers),
		Redundancy:  d.Redundancy(),
		NumWorkers:  d.NumWorkers,
		Consistency: Consistency(d),
	}
}

// Consistency computes the data-consistency measure C of §6.2.1.
//
// For categorical datasets it is the average per-task entropy of the
// answer distribution with logarithms taken base ℓ, so C ∈ [0,1] and lower
// means more consistent. Tasks with no answers contribute zero entropy.
//
// For numeric datasets it is the average root-mean-square deviation of a
// task's answers around their median; C ∈ [0,∞) and lower is more
// consistent.
func Consistency(d *Dataset) float64 {
	if d.NumTasks == 0 {
		return 0
	}
	if d.Categorical() {
		logBase := math.Log(float64(d.NumChoices))
		var total float64
		counts := make([]float64, d.NumChoices)
		for task := 0; task < d.NumTasks; task++ {
			idxs := d.byTask[task]
			if len(idxs) == 0 {
				continue
			}
			for i := range counts {
				counts[i] = 0
			}
			for _, ai := range idxs {
				counts[d.Answers[ai].Label()]++
			}
			n := float64(len(idxs))
			var h float64
			for _, c := range counts {
				if c > 0 {
					p := c / n
					h -= p * math.Log(p) / logBase
				}
			}
			total += h
		}
		return total / float64(d.NumTasks)
	}
	var total float64
	vals := make([]float64, 0, 64)
	for task := 0; task < d.NumTasks; task++ {
		idxs := d.byTask[task]
		if len(idxs) == 0 {
			continue
		}
		vals = vals[:0]
		for _, ai := range idxs {
			vals = append(vals, d.Answers[ai].Value)
		}
		med := medianOf(vals)
		var ss float64
		for _, v := range vals {
			dv := v - med
			ss += dv * dv
		}
		total += math.Sqrt(ss / float64(len(vals)))
	}
	return total / float64(d.NumTasks)
}

// WorkerRedundancy returns, for each worker, the number of tasks they
// answered — the raw data behind the Figure 2 histograms.
func WorkerRedundancy(d *Dataset) []int {
	out := make([]int, d.NumWorkers)
	for w := range out {
		out[w] = len(d.byWorker[w])
	}
	return out
}

// RedundancyHistogram buckets WorkerRedundancy into nbins equal-width bins
// over [0, max], returning bin upper edges and counts (the shape plotted
// in Figure 2).
func RedundancyHistogram(d *Dataset, nbins int) (edges []float64, counts []int) {
	red := WorkerRedundancy(d)
	maxR := 0
	for _, r := range red {
		if r > maxR {
			maxR = r
		}
	}
	if nbins <= 0 {
		nbins = 10
	}
	edges = make([]float64, nbins)
	counts = make([]int, nbins)
	width := float64(maxR) / float64(nbins)
	if width == 0 {
		width = 1
	}
	for i := range edges {
		edges[i] = width * float64(i+1)
	}
	for _, r := range red {
		bin := int(float64(r) / width)
		if bin >= nbins {
			bin = nbins - 1
		}
		counts[bin]++
	}
	return edges, counts
}

// WorkerAccuracy returns each worker's accuracy against the known truth
// (Figure 3 for categorical datasets). Workers who answered no
// truth-bearing task get NaN.
func WorkerAccuracy(d *Dataset) []float64 {
	out := make([]float64, d.NumWorkers)
	for w := 0; w < d.NumWorkers; w++ {
		correct, total := 0, 0
		for _, ai := range d.byWorker[w] {
			a := d.Answers[ai]
			tv, ok := d.Truth[a.Task]
			if !ok {
				continue
			}
			total++
			if a.Label() == int(tv) {
				correct++
			}
		}
		if total == 0 {
			out[w] = math.NaN()
		} else {
			out[w] = float64(correct) / float64(total)
		}
	}
	return out
}

// WorkerRMSE returns each worker's RMSE against the known truth (Figure 3
// for numeric datasets). Workers who answered no truth-bearing task get
// NaN.
func WorkerRMSE(d *Dataset) []float64 {
	out := make([]float64, d.NumWorkers)
	for w := 0; w < d.NumWorkers; w++ {
		var ss float64
		total := 0
		for _, ai := range d.byWorker[w] {
			a := d.Answers[ai]
			tv, ok := d.Truth[a.Task]
			if !ok {
				continue
			}
			total++
			dv := a.Value - tv
			ss += dv * dv
		}
		if total == 0 {
			out[w] = math.NaN()
		} else {
			out[w] = math.Sqrt(ss / float64(total))
		}
	}
	return out
}

// QualityHistogram buckets a per-worker quality vector (accuracy or RMSE)
// into nbins equal-width bins over [lo, hi], ignoring NaNs — the shape
// plotted in Figure 3.
func QualityHistogram(quality []float64, lo, hi float64, nbins int) (edges []float64, counts []int) {
	if nbins <= 0 {
		nbins = 10
	}
	edges = make([]float64, nbins)
	counts = make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	if width <= 0 {
		width = 1
	}
	for i := range edges {
		edges[i] = lo + width*float64(i+1)
	}
	for _, q := range quality {
		if math.IsNaN(q) {
			continue
		}
		bin := int((q - lo) / width)
		if bin < 0 {
			bin = 0
		}
		if bin >= nbins {
			bin = nbins - 1
		}
		counts[bin]++
	}
	return edges, counts
}

// MeanWorkerQuality returns the mean of a per-worker quality vector,
// skipping NaN entries (the summary numbers quoted in §6.2.3).
func MeanWorkerQuality(quality []float64) float64 {
	var s float64
	n := 0
	for _, q := range quality {
		if math.IsNaN(q) {
			continue
		}
		s += q
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	// insertion sort; per-task answer lists are short
	for i := 1; i < len(cp); i++ {
		x := cp[i]
		j := i
		for j > 0 && cp[j-1] > x {
			cp[j] = cp[j-1]
			j--
		}
		cp[j] = x
	}
	n := len(cp)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
