package dataset

import (
	"bytes"
	"reflect"
	"testing"
)

func binaryFixture(t *testing.T) *Dataset {
	t.Helper()
	d, err := New("bin", SingleChoice, 3, 4, 3, []Answer{
		{Task: 0, Worker: 0, Value: 1},
		{Task: 0, Worker: 1, Value: 2},
		{Task: 2, Worker: 2, Value: 0},
		{Task: 3, Worker: 1, Value: 1},
	}, map[int]float64{0: 1, 3: 2})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBinaryRoundTrip(t *testing.T) {
	d := binaryFixture(t)
	enc, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDataset(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Type != d.Type || got.NumChoices != d.NumChoices ||
		got.NumTasks != d.NumTasks || got.NumWorkers != d.NumWorkers {
		t.Fatalf("header mismatch: %+v vs %+v", got, d)
	}
	if !reflect.DeepEqual(got.Answers, d.Answers) {
		t.Fatalf("answers mismatch: %v vs %v", got.Answers, d.Answers)
	}
	if !reflect.DeepEqual(got.Truth, d.Truth) {
		t.Fatalf("truth mismatch: %v vs %v", got.Truth, d.Truth)
	}

	// Numeric round-trip preserves exact float bits.
	n, err := New("num", Numeric, 0, 2, 2, []Answer{
		{Task: 0, Worker: 0, Value: 3.25}, {Task: 1, Worker: 1, Value: -0.125},
	}, map[int]float64{1: -0.125})
	if err != nil {
		t.Fatal(err)
	}
	enc2, _ := n.MarshalBinary()
	got2, err := UnmarshalDataset(enc2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2.Answers, n.Answers) || !reflect.DeepEqual(got2.Truth, n.Truth) {
		t.Fatalf("numeric round-trip mismatch")
	}
}

// TestBinaryStable pins the determinism contract the WAL snapshot layer
// relies on: marshaling the same dataset twice — and marshaling a
// decoded copy — yields identical bytes.
func TestBinaryStable(t *testing.T) {
	d := binaryFixture(t)
	a, _ := d.MarshalBinary()
	b, _ := d.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("two marshals of the same dataset differ")
	}
	decoded, err := UnmarshalDataset(a)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := decoded.MarshalBinary()
	if !bytes.Equal(a, c) {
		t.Fatal("marshal of decoded copy differs from original encoding")
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	d := binaryFixture(t)
	enc, _ := d.MarshalBinary()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX\x01"), enc[5:]...),
		"truncated":   enc[:len(enc)-3],
		"trailing":    append(append([]byte(nil), enc...), 0xFF),
		"header only": enc[:8],
	}
	for name, data := range cases {
		if _, err := UnmarshalDataset(data); err == nil {
			t.Errorf("%s: corrupt encoding accepted", name)
		}
	}
	// A flipped answer byte must fail validation (label out of range) or
	// decode — never round-trip silently into different data. Flip a
	// value-bits byte of the first answer to an implausible label.
	bad := append([]byte(nil), enc...)
	// Locate the first answer's value bytes: magic(5)+nameLen(1)+name(3)+
	// type(1)+choices(1)+tasks(1)+workers(1)+count(1)+task(1)+worker(1).
	off := 5 + 1 + 3 + 5 + 1 + 1
	bad[off+7] ^= 0x7F // exponent bits → huge/negative label
	if got, err := UnmarshalDataset(bad); err == nil {
		if reflect.DeepEqual(got.Answers, d.Answers) {
			t.Error("flipped byte decoded back to the original answers")
		} else if got.Answers[0].Value == d.Answers[0].Value {
			t.Error("flipped byte silently ignored")
		}
		// A changed-but-valid value is acceptable: the WAL layer's CRC is
		// what detects corruption; this codec only guarantees structural
		// validity (Build ran).
	}
}
