package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConsistencyBoundsCategorical(t *testing.T) {
	// Unanimous answers → C = 0; perfectly split answers → C = 1.
	unanimous, err := New("u", Decision, 2, 2, 2, []Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 1},
		{Task: 1, Worker: 0, Value: 0}, {Task: 1, Worker: 1, Value: 0},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Consistency(unanimous); got != 0 {
		t.Errorf("unanimous consistency = %v, want 0", got)
	}
	split, err := New("s", Decision, 2, 1, 2, []Answer{
		{Task: 0, Worker: 0, Value: 1}, {Task: 0, Worker: 1, Value: 0},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Consistency(split); math.Abs(got-1) > 1e-12 {
		t.Errorf("split consistency = %v, want 1", got)
	}
}

func TestConsistencyInUnitIntervalProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := randomCategorical(seed, 20, 6, 4, 5)
		c := Consistency(d)
		return c >= 0 && c <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConsistencyNumeric(t *testing.T) {
	// Identical answers → 0 deviation.
	d, err := New("n", Numeric, 0, 1, 3, []Answer{
		{Task: 0, Worker: 0, Value: 5}, {Task: 0, Worker: 1, Value: 5}, {Task: 0, Worker: 2, Value: 5},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Consistency(d); got != 0 {
		t.Errorf("identical numeric answers: C = %v, want 0", got)
	}
	// Known small case: answers {0, 10} → median 5, deviation 5.
	d2, err := New("n2", Numeric, 0, 1, 2, []Answer{
		{Task: 0, Worker: 0, Value: 0}, {Task: 0, Worker: 1, Value: 10},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Consistency(d2); math.Abs(got-5) > 1e-12 {
		t.Errorf("C = %v, want 5", got)
	}
}

func TestWorkerRedundancyAndHistogram(t *testing.T) {
	d := small(t)
	red := WorkerRedundancy(d)
	if red[0] != 2 || red[1] != 2 {
		t.Errorf("redundancy = %v", red)
	}
	edges, counts := RedundancyHistogram(d, 4)
	if len(edges) != 4 || len(counts) != 4 {
		t.Fatalf("histogram sizes %d/%d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != d.NumWorkers {
		t.Errorf("histogram total %d, want %d workers", total, d.NumWorkers)
	}
}

func TestWorkerAccuracy(t *testing.T) {
	// Worker 0 answers task 0 (truth 1) with 1 → correct; task 1 has no
	// truth → ignored. Worker 1 answers task 0 with 0 (wrong) and task 2
	// (truth 1) with 1 (right) → 0.5.
	d := small(t)
	acc := WorkerAccuracy(d)
	if acc[0] != 1 {
		t.Errorf("worker 0 accuracy = %v, want 1", acc[0])
	}
	if acc[1] != 0.5 {
		t.Errorf("worker 1 accuracy = %v, want 0.5", acc[1])
	}
}

func TestWorkerAccuracyNaNWithoutTruth(t *testing.T) {
	d, err := New("nt", Decision, 2, 1, 1, []Answer{{Task: 0, Worker: 0, Value: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc := WorkerAccuracy(d); !math.IsNaN(acc[0]) {
		t.Errorf("accuracy without truth = %v, want NaN", acc[0])
	}
}

func TestWorkerRMSE(t *testing.T) {
	d, err := New("wr", Numeric, 0, 2, 1, []Answer{
		{Task: 0, Worker: 0, Value: 3}, {Task: 1, Worker: 0, Value: 4},
	}, map[int]float64{0: 0, 1: 0})
	if err != nil {
		t.Fatal(err)
	}
	rmse := WorkerRMSE(d)
	want := math.Sqrt((9.0 + 16.0) / 2)
	if math.Abs(rmse[0]-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", rmse[0], want)
	}
}

func TestQualityHistogramIgnoresNaN(t *testing.T) {
	q := []float64{0.1, 0.9, math.NaN(), 0.5}
	_, counts := QualityHistogram(q, 0, 1, 5)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("histogram counted %d entries, want 3 (NaN skipped)", total)
	}
}

func TestMeanWorkerQuality(t *testing.T) {
	if got := MeanWorkerQuality([]float64{0.4, math.NaN(), 0.6}); got != 0.5 {
		t.Errorf("MeanWorkerQuality = %v, want 0.5", got)
	}
	if !math.IsNaN(MeanWorkerQuality([]float64{math.NaN()})) {
		t.Error("all-NaN quality mean should be NaN")
	}
}

func TestComputeStatsMatchesTable5Shape(t *testing.T) {
	d := small(t)
	s := ComputeStats(d)
	if s.NumTasks != 3 || s.NumWorkers != 2 || s.NumAnswers != 4 || s.NumTruth != 2 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.Redundancy-4.0/3) > 1e-12 {
		t.Errorf("redundancy = %v", s.Redundancy)
	}
}

// randomCategorical builds a random but valid categorical dataset for
// property tests.
func randomCategorical(seed int64, n, w, ell, perTask int) *Dataset {
	rng := newRand(seed)
	var answers []Answer
	for i := 0; i < n; i++ {
		for k := 0; k < perTask; k++ {
			answers = append(answers, Answer{
				Task: i, Worker: rng.Intn(w), Value: float64(rng.Intn(ell)),
			})
		}
	}
	typ := SingleChoice
	if ell == 2 {
		typ = Decision
	}
	d, err := New("rand", typ, ell, n, w, answers, nil)
	if err != nil {
		panic(err)
	}
	return d
}

func newRand(seed int64) *randSource {
	return &randSource{state: uint64(seed)*2862933555777941757 + 3037000493}
}

// randSource is a tiny deterministic generator for property tests,
// avoiding a math/rand import cycle in this file.
type randSource struct{ state uint64 }

func (r *randSource) Intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}
