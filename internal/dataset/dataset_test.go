package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Dataset {
	t.Helper()
	d, err := New("small", Decision, 2, 3, 2, []Answer{
		{Task: 0, Worker: 0, Value: 1},
		{Task: 0, Worker: 1, Value: 0},
		{Task: 1, Worker: 0, Value: 0},
		{Task: 2, Worker: 1, Value: 1},
	}, map[int]float64{0: 1, 2: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func() (*Dataset, error)
	}{
		{"task out of range", func() (*Dataset, error) {
			return New("x", Decision, 2, 1, 1, []Answer{{Task: 5, Worker: 0, Value: 0}}, nil)
		}},
		{"worker out of range", func() (*Dataset, error) {
			return New("x", Decision, 2, 1, 1, []Answer{{Task: 0, Worker: 2, Value: 0}}, nil)
		}},
		{"label out of range", func() (*Dataset, error) {
			return New("x", Decision, 2, 1, 1, []Answer{{Task: 0, Worker: 0, Value: 3}}, nil)
		}},
		{"fractional label", func() (*Dataset, error) {
			return New("x", Decision, 2, 1, 1, []Answer{{Task: 0, Worker: 0, Value: 0.5}}, nil)
		}},
		{"NaN numeric answer", func() (*Dataset, error) {
			return New("x", Numeric, 0, 1, 1, []Answer{{Task: 0, Worker: 0, Value: math.NaN()}}, nil)
		}},
		{"truth out of range", func() (*Dataset, error) {
			return New("x", Decision, 2, 1, 1, nil, map[int]float64{3: 0})
		}},
		{"truth bad label", func() (*Dataset, error) {
			return New("x", SingleChoice, 4, 1, 1, nil, map[int]float64{0: 9})
		}},
		{"decision with 3 choices", func() (*Dataset, error) {
			return New("x", Decision, 3, 1, 1, nil, nil)
		}},
		{"single-choice with 1 choice", func() (*Dataset, error) {
			return New("x", SingleChoice, 1, 1, 1, nil, nil)
		}},
	}
	for _, c := range cases {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestIndices(t *testing.T) {
	d := small(t)
	if got := len(d.TaskAnswers(0)); got != 2 {
		t.Errorf("task 0 has %d answers, want 2", got)
	}
	if got := len(d.WorkerAnswers(1)); got != 2 {
		t.Errorf("worker 1 has %d answers, want 2", got)
	}
	if got := d.Redundancy(); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("redundancy %v, want 4/3", got)
	}
	if got := d.MaxRedundancy(); got != 2 {
		t.Errorf("max redundancy %d, want 2", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := small(t)
	cp := d.Clone()
	cp.Answers[0].Value = 0
	cp.Truth[0] = 0
	if d.Answers[0].Value != 1 || d.Truth[0] != 1 {
		t.Error("Clone shares state with the original")
	}
}

func TestSampleRedundancy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	var answers []Answer
	for i := 0; i < n; i++ {
		for w := 0; w < 5; w++ {
			answers = append(answers, Answer{Task: i, Worker: w, Value: float64(w % 2)})
		}
	}
	d, err := New("r", Decision, 2, n, 5, answers, map[int]float64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 1, 3, 5, 9} {
		sub := d.SampleRedundancy(r, rng)
		for i := 0; i < n; i++ {
			got := len(sub.TaskAnswers(i))
			want := r
			if want > 5 {
				want = 5
			}
			if got != want {
				t.Fatalf("r=%d: task %d kept %d answers, want %d", r, i, got, want)
			}
		}
		if len(sub.Truth) != len(d.Truth) {
			t.Errorf("r=%d: truth not carried over", r)
		}
	}
}

func TestSampleRedundancySubsetProperty(t *testing.T) {
	// Every kept answer must exist in the original (same triple).
	rng := rand.New(rand.NewSource(2))
	d := small(t)
	sub := d.SampleRedundancy(1, rng)
	orig := map[Answer]bool{}
	for _, a := range d.Answers {
		orig[a] = true
	}
	for _, a := range sub.Answers {
		if !orig[a] {
			t.Errorf("answer %+v not in original", a)
		}
	}
}

func TestSplitGoldenPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	truth := map[int]float64{}
	for i := 0; i < n; i++ {
		truth[i] = float64(i % 2)
	}
	d, err := New("g", Decision, 2, n, 1, nil, truth)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 0.1, 0.5, 1} {
		golden, eval := d.SplitGolden(p, rng)
		if len(golden)+len(eval) != n {
			t.Fatalf("p=%v: partition sizes %d+%d != %d", p, len(golden), len(eval), n)
		}
		wantGolden := int(math.Round(p * float64(n)))
		if len(golden) != wantGolden {
			t.Errorf("p=%v: golden size %d, want %d", p, len(golden), wantGolden)
		}
		for id, v := range golden {
			if _, dup := eval[id]; dup {
				t.Fatalf("task %d in both splits", id)
			}
			if v != truth[id] {
				t.Fatalf("golden truth corrupted for task %d", id)
			}
		}
	}
}

func TestTruthVector(t *testing.T) {
	d := small(t)
	v := d.TruthVector()
	if v[0] != 1 || v[2] != 1 {
		t.Errorf("TruthVector = %v", v)
	}
	if !math.IsNaN(v[1]) {
		t.Errorf("unknown truth should be NaN, got %v", v[1])
	}
}

func TestQuickRandomDatasetsValid(t *testing.T) {
	// Property: any structurally valid random dataset builds, and its
	// indices are consistent with its answers.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		w := 1 + rng.Intn(10)
		ell := 2 + rng.Intn(4)
		var answers []Answer
		for i := 0; i < n*3; i++ {
			answers = append(answers, Answer{
				Task: rng.Intn(n), Worker: rng.Intn(w), Value: float64(rng.Intn(ell)),
			})
		}
		typ := SingleChoice
		if ell == 2 {
			typ = Decision
		}
		d, err := New("q", typ, ell, n, w, answers, nil)
		if err != nil {
			return false
		}
		total := 0
		for i := 0; i < n; i++ {
			for _, ai := range d.TaskAnswers(i) {
				if d.Answers[ai].Task != i {
					return false
				}
				total++
			}
		}
		return total == len(answers)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
