package dataset

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestAnswerRoundTrip(t *testing.T) {
	d := small(t)
	var buf bytes.Buffer
	if err := WriteAnswers(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnswers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Type != d.Type || got.NumChoices != d.NumChoices ||
		got.NumTasks != d.NumTasks || got.NumWorkers != d.NumWorkers {
		t.Errorf("header mismatch: %+v vs %+v", got, d)
	}
	if !reflect.DeepEqual(got.Answers, d.Answers) {
		t.Errorf("answers mismatch")
	}
}

func TestTruthRoundTrip(t *testing.T) {
	d := small(t)
	var abuf, tbuf bytes.Buffer
	if err := WriteAnswers(&abuf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteTruth(&tbuf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnswers(&abuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadTruthInto(&tbuf, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Truth, d.Truth) {
		t.Errorf("truth mismatch: %v vs %v", got.Truth, d.Truth)
	}
}

func TestNumericRoundTripPreservesValues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var answers []Answer
	truth := map[int]float64{}
	for i := 0; i < 20; i++ {
		truth[i] = 100 * rng.NormFloat64()
		for w := 0; w < 3; w++ {
			answers = append(answers, Answer{Task: i, Worker: w, Value: truth[i] + rng.NormFloat64()})
		}
	}
	d, err := New("num", Numeric, 0, 20, 3, answers, truth)
	if err != nil {
		t.Fatal(err)
	}
	var abuf, tbuf bytes.Buffer
	if err := WriteAnswers(&abuf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteTruth(&tbuf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnswers(&abuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadTruthInto(&tbuf, got); err != nil {
		t.Fatal(err)
	}
	for i, a := range d.Answers {
		if got.Answers[i] != a {
			t.Fatalf("answer %d: %+v vs %+v", i, got.Answers[i], a)
		}
	}
	for k, v := range d.Truth {
		if got.Truth[k] != v {
			t.Fatalf("truth %d: %v vs %v", k, got.Truth[k], v)
		}
	}
}

func TestSaveLoadFiles(t *testing.T) {
	d := small(t)
	base := filepath.Join(t.TempDir(), "ds")
	if err := SaveFiles(base, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFiles(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Answers, d.Answers) || !reflect.DeepEqual(got.Truth, d.Truth) {
		t.Error("SaveFiles/LoadFiles round trip mismatch")
	}
}

func TestReadAnswersErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"missing header", "0\t0\t1\n"},
		{"malformed header", "#dataset\tname\tdecision\n"},
		{"bad field count", "#dataset\tx\tdecision\t2\t1\t1\n0\t0\n"},
		{"bad task id", "#dataset\tx\tdecision\t2\t1\t1\nz\t0\t1\n"},
		{"bad value", "#dataset\tx\tdecision\t2\t1\t1\n0\t0\tz\n"},
		{"unknown type", "#dataset\tx\twat\t2\t1\t1\n"},
		{"answer out of range", "#dataset\tx\tdecision\t2\t1\t1\n5\t0\t1\n"},
	}
	for _, c := range cases {
		if _, err := ReadAnswers(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCommentsAndBlankLinesIgnored(t *testing.T) {
	in := "# a comment\n\n#dataset\tx\tdecision\t2\t2\t1\n\n0\t0\t1\n# trailing comment\n1\t0\t0\n"
	d, err := ReadAnswers(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Answers) != 2 {
		t.Errorf("got %d answers, want 2", len(d.Answers))
	}
}
