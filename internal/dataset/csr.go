package dataset

import "fmt"

// CSR is the columnar (structure-of-arrays) view of a dataset's answer
// graph: the bipartite task–worker adjacency flattened into two
// CSR/CSC-style offset+value layouts, one task-major for E-steps and one
// worker-major for M-steps. The iterative methods build it once per Infer
// call and run their inner sweeps over these arrays instead of walking
// Answers through the per-task/per-worker index slices — every sweep then
// reads contiguous memory with no per-answer struct loads, no bounds-check
// chains through [][]int, and no allocations.
//
// Task and worker ids are already dense ints in the data model
// (Definitions 1–5 intern external ids at ingestion), so no id
// dictionaries are needed here; ids narrow to int32 and categorical labels
// to uint16 codes, halving the bytes the hot loops pull through cache.
//
// Iteration order is load-bearing: within a task row (and a worker row)
// answers appear in ascending answer-index order, exactly the order
// TaskAnswers/WorkerAnswers yield. Floating-point accumulation over a row
// therefore happens in the same order as the pre-columnar loops, keeping
// results bit-identical and preserving the engine determinism contract.
//
// Exactly one of the Label/Value pairs is populated: categorical datasets
// carry labels (TaskValue/WorkerValue are nil), numeric datasets carry
// values (TaskLabel/WorkerLabel are nil).
type CSR struct {
	NumTasks   int
	NumWorkers int
	NumChoices int

	// Task-major layout: answers of task i occupy [TaskOff[i], TaskOff[i+1]).
	TaskOff    []int32 // len NumTasks+1
	TaskWorker []int32 // worker of each answer
	TaskLabel  []uint16
	TaskValue  []float64

	// Worker-major layout: answers of worker w occupy [WorkerOff[w], WorkerOff[w+1]).
	WorkerOff   []int32 // len NumWorkers+1
	WorkerTask  []int32 // task of each answer
	WorkerLabel []uint16
	WorkerValue []float64
}

// BuildCSR flattens d's answer graph into a fresh CSR. It is O(answers)
// with two counting-sort passes and never mutates d; the returned arrays
// are independent of the dataset's own indices.
func BuildCSR(d *Dataset) *CSR {
	const maxID = 1<<31 - 2
	if d.NumTasks > maxID || d.NumWorkers > maxID || len(d.Answers) > maxID {
		panic(fmt.Sprintf("dataset %q: too large for int32 CSR ids (%d tasks, %d workers, %d answers)",
			d.Name, d.NumTasks, d.NumWorkers, len(d.Answers)))
	}
	if d.Categorical() && d.NumChoices > 1<<16 {
		panic(fmt.Sprintf("dataset %q: %d choices overflow uint16 label codes", d.Name, d.NumChoices))
	}
	c := &CSR{
		NumTasks:   d.NumTasks,
		NumWorkers: d.NumWorkers,
		NumChoices: d.NumChoices,
		TaskOff:    make([]int32, d.NumTasks+1),
		WorkerOff:  make([]int32, d.NumWorkers+1),
	}
	n := len(d.Answers)
	c.TaskWorker = make([]int32, n)
	c.WorkerTask = make([]int32, n)
	if d.Categorical() {
		c.TaskLabel = make([]uint16, n)
		c.WorkerLabel = make([]uint16, n)
	} else {
		c.TaskValue = make([]float64, n)
		c.WorkerValue = make([]float64, n)
	}

	// Counting pass: row sizes into the offset slots shifted by one, so the
	// prefix sum turns them into offsets in place.
	for i := range d.Answers {
		c.TaskOff[d.Answers[i].Task+1]++
		c.WorkerOff[d.Answers[i].Worker+1]++
	}
	for i := 1; i <= d.NumTasks; i++ {
		c.TaskOff[i] += c.TaskOff[i-1]
	}
	for w := 1; w <= d.NumWorkers; w++ {
		c.WorkerOff[w] += c.WorkerOff[w-1]
	}

	// Fill pass in ascending answer order (a stable scatter), so each row's
	// internal order matches TaskAnswers/WorkerAnswers exactly. The offset
	// slices double as fill cursors and are rewound afterwards.
	taskCur := make([]int32, d.NumTasks)
	workerCur := make([]int32, d.NumWorkers)
	copy(taskCur, c.TaskOff[:d.NumTasks])
	copy(workerCur, c.WorkerOff[:d.NumWorkers])
	for i := range d.Answers {
		a := &d.Answers[i]
		ti, wi := taskCur[a.Task], workerCur[a.Worker]
		taskCur[a.Task]++
		workerCur[a.Worker]++
		c.TaskWorker[ti] = int32(a.Worker)
		c.WorkerTask[wi] = int32(a.Task)
		if c.TaskLabel != nil {
			l := a.Label()
			c.TaskLabel[ti] = uint16(l)
			c.WorkerLabel[wi] = uint16(l)
		} else {
			c.TaskValue[ti] = a.Value
			c.WorkerValue[wi] = a.Value
		}
	}
	return c
}

// TaskDegree returns the number of answers task i received.
func (c *CSR) TaskDegree(i int) int { return int(c.TaskOff[i+1] - c.TaskOff[i]) }

// WorkerDegree returns the number of answers worker w gave.
func (c *CSR) WorkerDegree(w int) int { return int(c.WorkerOff[w+1] - c.WorkerOff[w]) }
