package dataset

import (
	"math/rand"
	"testing"
)

// randomDataset builds a dataset with an adversarial answer order (shuffled,
// with answer-less tasks and workers) for CSR cross-checks.
func randomDataset(t *testing.T, typ TaskType, seed int64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const tasks, workers, choices = 37, 11, 5
	var answers []Answer
	for task := 0; task < tasks; task++ {
		if task%9 == 3 {
			continue // answer-less task
		}
		red := 1 + rng.Intn(6)
		perm := rng.Perm(workers)
		for _, w := range perm[:red] {
			if w == 7 {
				continue // worker 7 stays answer-less
			}
			v := float64(rng.Intn(choices))
			if typ == Numeric {
				v = rng.NormFloat64() * 10
			}
			answers = append(answers, Answer{Task: task, Worker: w, Value: v})
		}
	}
	rng.Shuffle(len(answers), func(i, j int) { answers[i], answers[j] = answers[j], answers[i] })
	nc := choices
	if typ == Decision {
		nc = 2
		for i := range answers {
			answers[i].Value = float64(int(answers[i].Value) % 2)
		}
	} else if typ == Numeric {
		nc = 0
	}
	d, err := New("csr-random", typ, nc, tasks, workers, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCSRMatchesIndices cross-checks both CSR layouts against the
// dataset's own byTask/byWorker index slices: same rows, same in-row
// answer order, same labels/values — the property the kernels' bit-exact
// equivalence rests on.
func TestCSRMatchesIndices(t *testing.T) {
	for _, typ := range []TaskType{Decision, SingleChoice, Numeric} {
		d := randomDataset(t, typ, int64(typ)+1)
		c := BuildCSR(d)
		if c.NumTasks != d.NumTasks || c.NumWorkers != d.NumWorkers || c.NumChoices != d.NumChoices {
			t.Fatalf("%v: dims (%d,%d,%d) != dataset (%d,%d,%d)", typ,
				c.NumTasks, c.NumWorkers, c.NumChoices, d.NumTasks, d.NumWorkers, d.NumChoices)
		}
		if int(c.TaskOff[d.NumTasks]) != len(d.Answers) || int(c.WorkerOff[d.NumWorkers]) != len(d.Answers) {
			t.Fatalf("%v: offsets do not cover all %d answers", typ, len(d.Answers))
		}
		for i := 0; i < d.NumTasks; i++ {
			idxs := d.TaskAnswers(i)
			if c.TaskDegree(i) != len(idxs) {
				t.Fatalf("%v task %d: CSR degree %d, index degree %d", typ, i, c.TaskDegree(i), len(idxs))
			}
			for k, ai := range idxs {
				p := int(c.TaskOff[i]) + k
				a := d.Answers[ai]
				if int(c.TaskWorker[p]) != a.Worker {
					t.Fatalf("%v task %d pos %d: worker %d, want %d", typ, i, k, c.TaskWorker[p], a.Worker)
				}
				if d.Categorical() {
					if int(c.TaskLabel[p]) != a.Label() {
						t.Fatalf("%v task %d pos %d: label %d, want %d", typ, i, k, c.TaskLabel[p], a.Label())
					}
				} else if c.TaskValue[p] != a.Value {
					t.Fatalf("%v task %d pos %d: value %v, want %v", typ, i, k, c.TaskValue[p], a.Value)
				}
			}
		}
		for w := 0; w < d.NumWorkers; w++ {
			idxs := d.WorkerAnswers(w)
			if c.WorkerDegree(w) != len(idxs) {
				t.Fatalf("%v worker %d: CSR degree %d, index degree %d", typ, w, c.WorkerDegree(w), len(idxs))
			}
			for k, ai := range idxs {
				p := int(c.WorkerOff[w]) + k
				a := d.Answers[ai]
				if int(c.WorkerTask[p]) != a.Task {
					t.Fatalf("%v worker %d pos %d: task %d, want %d", typ, w, k, c.WorkerTask[p], a.Task)
				}
				if d.Categorical() {
					if int(c.WorkerLabel[p]) != a.Label() {
						t.Fatalf("%v worker %d pos %d: label %d, want %d", typ, w, k, c.WorkerLabel[p], a.Label())
					}
				} else if c.WorkerValue[p] != a.Value {
					t.Fatalf("%v worker %d pos %d: value %v, want %v", typ, w, k, c.WorkerValue[p], a.Value)
				}
			}
		}
		// Layout invariant: exactly one of the label/value pairs populated.
		if d.Categorical() {
			if c.TaskLabel == nil || c.TaskValue != nil || c.WorkerLabel == nil || c.WorkerValue != nil {
				t.Fatalf("%v: categorical CSR must carry labels only", typ)
			}
		} else if c.TaskValue == nil || c.TaskLabel != nil || c.WorkerValue == nil || c.WorkerLabel != nil {
			t.Fatalf("%v: numeric CSR must carry values only", typ)
		}
	}
}

// TestCSREmptyDataset covers the degenerate shapes: no answers, and a
// dataset with tasks/workers declared but nothing answered.
func TestCSREmptyDataset(t *testing.T) {
	d, err := New("empty", Decision, 2, 4, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := BuildCSR(d)
	if len(c.TaskOff) != 5 || len(c.WorkerOff) != 4 {
		t.Fatalf("offset lengths %d/%d, want 5/4", len(c.TaskOff), len(c.WorkerOff))
	}
	for i := 0; i < 4; i++ {
		if c.TaskDegree(i) != 0 {
			t.Fatalf("task %d degree %d, want 0", i, c.TaskDegree(i))
		}
	}
}
