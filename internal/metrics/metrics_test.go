package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccuracyBasics(t *testing.T) {
	inferred := []float64{1, 0, 1}
	truth := map[int]float64{0: 1, 1: 1, 2: 1}
	if got := Accuracy(inferred, truth); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v, want 2/3", got)
	}
	if !math.IsNaN(Accuracy(inferred, nil)) {
		t.Error("Accuracy with empty truth should be NaN")
	}
	// Truth referencing tasks outside the inferred range counts as wrong
	// (it cannot possibly have been inferred).
	if got := Accuracy([]float64{1}, map[int]float64{0: 1, 9: 1}); got != 0.5 {
		t.Errorf("out-of-range truth: Accuracy = %v, want 0.5", got)
	}
}

func TestF1DegenerateCases(t *testing.T) {
	// No positives anywhere → 0 (the paper's convention for BCC at r=1).
	if got := F1([]float64{0, 0}, map[int]float64{0: 0, 1: 0}, 1); got != 0 {
		t.Errorf("no-positive F1 = %v, want 0", got)
	}
	// All positive and all predicted positive → 1.
	if got := F1([]float64{1, 1}, map[int]float64{0: 1, 1: 1}, 1); got != 1 {
		t.Errorf("perfect F1 = %v, want 1", got)
	}
	// Predicts everything positive on a skewed truth: F1 = 2p/(p+1) with
	// p the positive rate.
	truth := map[int]float64{0: 1, 1: 0, 2: 0, 3: 0}
	got := F1([]float64{1, 1, 1, 1}, truth, 1)
	if math.Abs(got-2.0/5) > 1e-12 {
		t.Errorf("all-positive F1 = %v, want 0.4", got)
	}
}

func TestF1IsHarmonicMeanOfPrecisionRecall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		inferred := make([]float64, n)
		truth := make(map[int]float64, n)
		for i := 0; i < n; i++ {
			inferred[i] = float64(rng.Intn(2))
			truth[i] = float64(rng.Intn(2))
		}
		f1 := F1(inferred, truth, 1)
		p, r := PrecisionRecall(inferred, truth, 1)
		if math.IsNaN(p) || math.IsNaN(r) || p+r == 0 {
			return f1 >= 0 && f1 <= 1
		}
		want := 2 * p * r / (p + r)
		return math.Abs(f1-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMetricsInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		inferred := make([]float64, n)
		truth := map[int]float64{}
		for i := 0; i < n; i++ {
			inferred[i] = float64(rng.Intn(3))
			truth[i] = float64(rng.Intn(3))
		}
		a := Accuracy(inferred, truth)
		f1 := F1(inferred, truth, 1)
		return a >= 0 && a <= 1 && f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMAERMSERelationship(t *testing.T) {
	// RMSE ≥ MAE always (power-mean inequality), equality iff all errors
	// have equal magnitude.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		inferred := make([]float64, n)
		truth := map[int]float64{}
		for i := 0; i < n; i++ {
			inferred[i] = 10 * rng.NormFloat64()
			truth[i] = 10 * rng.NormFloat64()
		}
		return RMSE(inferred, truth) >= MAE(inferred, truth)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Equal-magnitude errors: MAE = RMSE.
	inferred := []float64{1, -1}
	truth := map[int]float64{0: 0, 1: 0}
	if m, r := MAE(inferred, truth), RMSE(inferred, truth); math.Abs(m-r) > 1e-12 {
		t.Errorf("MAE %v != RMSE %v for equal-magnitude errors", m, r)
	}
}

func TestPerfectPredictionIsZeroError(t *testing.T) {
	inferred := []float64{3.5, -2, 0}
	truth := map[int]float64{0: 3.5, 1: -2, 2: 0}
	if got := MAE(inferred, truth); got != 0 {
		t.Errorf("perfect MAE = %v", got)
	}
	if got := RMSE(inferred, truth); got != 0 {
		t.Errorf("perfect RMSE = %v", got)
	}
}
