// Package metrics implements the evaluation metrics of Section 6.1.2 of
// the paper: Accuracy (Eq. 3) and F1-score (Eq. 4) for categorical tasks,
// and MAE and RMSE (Eq. 5) for numeric tasks, together with
// precision/recall and confusion counting helpers.
//
// All metrics evaluate an inferred truth assignment against a ground-truth
// map over a subset of tasks, matching the benchmark setup in which large
// datasets only publish truth for some tasks (Table 5).
package metrics

import (
	"math"
)

// Accuracy is the fraction of truth-bearing tasks whose inferred label
// equals the ground truth (Eq. 3). inferred[i] holds the inferred label of
// task i (as a float64 label index); truth maps task ids to true labels.
// It returns NaN when truth is empty.
func Accuracy(inferred []float64, truth map[int]float64) float64 {
	if len(truth) == 0 {
		return math.NaN()
	}
	correct := 0
	for t, tv := range truth {
		if t < 0 || t >= len(inferred) {
			continue
		}
		if int(inferred[t]) == int(tv) {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}

// PrecisionRecall returns the precision and recall of the positive class
// `positive` over the truth-bearing tasks. Conventions follow Eq. 4 of the
// paper: precision = TP/(TP+FP), recall = TP/(TP+FN). Empty denominators
// produce NaN.
func PrecisionRecall(inferred []float64, truth map[int]float64, positive int) (precision, recall float64) {
	tp, fp, fn := 0, 0, 0
	for t, tv := range truth {
		if t < 0 || t >= len(inferred) {
			continue
		}
		predPos := int(inferred[t]) == positive
		truePos := int(tv) == positive
		switch {
		case predPos && truePos:
			tp++
		case predPos && !truePos:
			fp++
		case !predPos && truePos:
			fn++
		}
	}
	precision = math.NaN()
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	recall = math.NaN()
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// F1 is the harmonic mean of precision and recall of the positive class
// (Eq. 4). Following the equation's direct form it equals
// 2·TP / (#true-positive-class + #predicted-positive-class); when both
// counts are zero it returns 0, matching the paper's treatment of
// degenerate predictors (e.g. BCC at r=1, §6.3.1(5)).
func F1(inferred []float64, truth map[int]float64, positive int) float64 {
	tp, trueP, predP := 0, 0, 0
	for t, tv := range truth {
		if t < 0 || t >= len(inferred) {
			continue
		}
		predPos := int(inferred[t]) == positive
		truePos := int(tv) == positive
		if predPos && truePos {
			tp++
		}
		if predPos {
			predP++
		}
		if truePos {
			trueP++
		}
	}
	if trueP+predP == 0 {
		return 0
	}
	return 2 * float64(tp) / float64(trueP+predP)
}

// MAE is the mean absolute error over truth-bearing tasks (Eq. 5). It
// returns NaN when truth is empty.
func MAE(inferred []float64, truth map[int]float64) float64 {
	if len(truth) == 0 {
		return math.NaN()
	}
	var s float64
	for t, tv := range truth {
		if t < 0 || t >= len(inferred) {
			continue
		}
		s += math.Abs(inferred[t] - tv)
	}
	return s / float64(len(truth))
}

// RMSE is the root mean square error over truth-bearing tasks (Eq. 5). It
// returns NaN when truth is empty.
func RMSE(inferred []float64, truth map[int]float64) float64 {
	if len(truth) == 0 {
		return math.NaN()
	}
	var s float64
	for t, tv := range truth {
		if t < 0 || t >= len(inferred) {
			continue
		}
		d := inferred[t] - tv
		s += d * d
	}
	return math.Sqrt(s / float64(len(truth)))
}
