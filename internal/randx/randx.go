// Package randx provides the deterministic random-sampling substrate used
// by the stochastic inference methods (Gibbs sampling in BCC/CBCC, random
// initialization, tie-breaking) and by the dataset simulators: categorical,
// Beta, Dirichlet and truncated-Gaussian sampling, shuffles, and the
// bootstrap resampling used by the qualification-test experiment (§6.3.2
// of the paper).
//
// All functions take an explicit *rand.Rand so that every experiment in
// the repository is reproducible from a seed.
package randx

import (
	"math"
	"math/rand"
)

// New returns a seeded *rand.Rand with the splittable source from
// math/rand. Use distinct seeds for independent experiment repetitions.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Categorical draws an index from the (not necessarily normalized)
// non-negative weight vector w. If all weights are zero it draws uniformly.
// It panics on an empty weight vector, which is always a programming error
// at the call sites in this repository.
func Categorical(rng *rand.Rand, w []float64) int {
	if len(w) == 0 {
		panic("randx: Categorical on empty weights")
	}
	var total float64
	for _, x := range w {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		return rng.Intn(len(w))
	}
	u := rng.Float64() * total
	var c float64
	for i, x := range w {
		if x > 0 {
			c += x
		}
		if u < c {
			return i
		}
	}
	return len(w) - 1
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// Gamma draws from the Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method, with the standard shape<1 boost.
func Gamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return math.NaN()
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta draws from the Beta(a, b) distribution.
func Beta(rng *rand.Rand, a, b float64) float64 {
	x := Gamma(rng, a)
	y := Gamma(rng, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Dirichlet draws a probability vector from Dirichlet(alpha). The result
// has the same length as alpha.
func Dirichlet(rng *rand.Rand, alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	var sum float64
	for i, a := range alpha {
		g := Gamma(rng, a)
		out[i] = g
		sum += g
	}
	if sum <= 0 {
		u := 1 / float64(len(alpha))
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// TruncNormal draws from N(mu, sigma²) truncated to [lo, hi] by rejection
// with a safe fallback to clamping after too many rejections (which can
// only happen for pathological intervals far in the tail).
func TruncNormal(rng *rand.Rand, mu, sigma, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := 0; i < 1000; i++ {
		x := mu + sigma*rng.NormFloat64()
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(math.Max(mu, lo), hi)
}

// Shuffle permutes xs in place.
func Shuffle[T any](rng *rand.Rand, xs []T) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). If k >= n it returns the full identity permutation (shuffled).
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	Shuffle(rng, idx)
	if k >= n {
		return idx
	}
	return idx[:k]
}

// Bootstrap returns k indices drawn uniformly with replacement from [0, n).
// This is the bootstrap resampling used to simulate a worker's answers to
// a qualification test (paper §6.3.2).
func Bootstrap(rng *rand.Rand, n, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 (Steele, Lea, Flood; OOPSLA 2014) passes BigCrush and is
// cheap enough to seed per task or per worker inside a Gibbs sweep —
// unlike math/rand's lagged-Fibonacci source, whose Seed runs a ~20µs
// warm-up loop that would dominate per-entity derivation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix hashes the parts into one 64-bit value by chaining them through
// SplitMix64. Equal part sequences always produce equal outputs.
func Mix(parts ...int64) uint64 {
	var state uint64 = 0x6A09E667F3BCC909 // golden-ratio-free arbitrary start
	var out uint64
	for _, p := range parts {
		state ^= uint64(p)
		out = splitmix64(&state)
	}
	return out
}

// HashPick deterministically picks an index in [0, n) from the hashed
// parts. The parallel truth steps of PM and CATD use it to break vote
// ties: unlike a shared *rand.Rand, the pick depends only on (seed,
// iteration, task), so it is identical at every parallelism level.
func HashPick(n int, parts ...int64) int {
	if n <= 1 {
		return 0
	}
	return int(Mix(parts...) % uint64(n))
}

// HashPick3 is HashPick with exactly three parts — the (seed, iteration,
// entity) triple every tie-breaking call site uses — without the variadic
// slice, so the zero-allocation inference kernels can call it on their hot
// path. HashPick3(n, a, b, c) == HashPick(n, a, b, c) always.
func HashPick3(n int, a, b, c int64) int {
	if n <= 1 {
		return 0
	}
	var state uint64 = 0x6A09E667F3BCC909
	state ^= uint64(a)
	splitmix64(&state)
	state ^= uint64(b)
	splitmix64(&state)
	state ^= uint64(c)
	return int(splitmix64(&state) % uint64(n))
}

// splitmixSource adapts SplitMix64 to rand.Source64.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Uint64() uint64  { return splitmix64(&s.state) }
func (s *splitmixSource) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

// Derived returns a *rand.Rand seeded from Mix(parts...). It is the
// per-entity RNG used by the parallel Gibbs sweeps: each (sweep, entity)
// pair gets an independent deterministic stream, so entities can be
// sampled concurrently without any draw-order dependence.
func Derived(parts ...int64) *rand.Rand {
	return rand.New(&splitmixSource{state: Mix(parts...)})
}

// Zipf draws from a bounded Zipf-like distribution over {0,...,n-1} with
// exponent s, i.e. Pr(i) ∝ 1/(i+1)^s. It is used by the dataset
// simulators to produce the long-tail worker redundancy of Figure 2.
type Zipf struct {
	cum []float64
}

// NewZipf precomputes the cumulative weights for a bounded Zipf
// distribution with n atoms and exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &Zipf{cum: cum}
}

// Draw samples an atom index in [0, n).
func (z *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
