package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCategoricalRespectsWeights(t *testing.T) {
	rng := New(1)
	counts := [3]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		counts[Categorical(rng, []float64{1, 2, 1})]++
	}
	want := [3]float64{0.25, 0.5, 0.25}
	for i, c := range counts {
		got := float64(c) / n
		if math.Abs(got-want[i]) > 0.02 {
			t.Errorf("atom %d frequency %.3f, want %.3f", i, got, want[i])
		}
	}
}

func TestCategoricalZeroWeightsUniform(t *testing.T) {
	rng := New(2)
	counts := [4]int{}
	for i := 0; i < 40000; i++ {
		counts[Categorical(rng, []float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if got := float64(c) / 40000; math.Abs(got-0.25) > 0.02 {
			t.Errorf("atom %d frequency %.3f under zero weights", i, got)
		}
	}
}

func TestCategoricalNeverPicksZeroAtom(t *testing.T) {
	rng := New(3)
	for i := 0; i < 10000; i++ {
		if got := Categorical(rng, []float64{0, 1, 0}); got != 1 {
			t.Fatalf("picked zero-weight atom %d", got)
		}
	}
}

func TestCategoricalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty weights")
		}
	}()
	Categorical(New(1), nil)
}

func TestGammaMoments(t *testing.T) {
	rng := New(4)
	for _, shape := range []float64{0.5, 1, 3, 10} {
		var sum, sum2 float64
		const n = 40000
		for i := 0; i < n; i++ {
			g := Gamma(rng, shape)
			sum += g
			sum2 += g * g
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if math.Abs(mean-shape) > 0.08*shape+0.02 {
			t.Errorf("Gamma(%v) sample mean %.3f, want %.3f", shape, mean, shape)
		}
		if math.Abs(variance-shape) > 0.15*shape+0.05 {
			t.Errorf("Gamma(%v) sample variance %.3f, want %.3f", shape, variance, shape)
		}
	}
	if !math.IsNaN(Gamma(New(1), -1)) {
		t.Error("Gamma with non-positive shape should be NaN")
	}
}

func TestBetaMomentsAndRange(t *testing.T) {
	rng := New(5)
	const a, b, n = 2.0, 5.0, 40000
	var sum float64
	for i := 0; i < n; i++ {
		x := Beta(rng, a, b)
		if x < 0 || x > 1 {
			t.Fatalf("Beta draw %v outside [0,1]", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-a/(a+b)) > 0.01 {
		t.Errorf("Beta(%v,%v) sample mean %.4f, want %.4f", a, b, mean, a/(a+b))
	}
}

func TestDirichletIsDistribution(t *testing.T) {
	rng := New(6)
	f := func(seed uint8) bool {
		alpha := []float64{0.5 + float64(seed%7), 1.5, 3}
		x := Dirichlet(rng, alpha)
		var sum float64
		for _, v := range x {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncNormalStaysInRange(t *testing.T) {
	rng := New(7)
	for i := 0; i < 10000; i++ {
		x := TruncNormal(rng, 0, 10, -5, 5)
		if x < -5 || x > 5 {
			t.Fatalf("TruncNormal draw %v outside [-5,5]", x)
		}
	}
	// Degenerate far-tail interval falls back to clamping.
	if x := TruncNormal(rng, 0, 0.001, 100, 101); x != 100 {
		t.Errorf("far-tail TruncNormal = %v, want clamp to 100", x)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := New(8)
	idx := SampleWithoutReplacement(rng, 100, 30)
	if len(idx) != 30 {
		t.Fatalf("got %d indices, want 30", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	// k >= n returns all indices.
	all := SampleWithoutReplacement(rng, 5, 10)
	if len(all) != 5 {
		t.Errorf("k>n returned %d indices, want 5", len(all))
	}
}

func TestBootstrapRangeAndSize(t *testing.T) {
	rng := New(9)
	idx := Bootstrap(rng, 7, 20)
	if len(idx) != 20 {
		t.Fatalf("got %d indices, want 20", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 7 {
			t.Fatalf("bootstrap index %d out of [0,7)", i)
		}
	}
}

func TestZipfLongTail(t *testing.T) {
	rng := New(10)
	z := NewZipf(50, 1.0)
	counts := make([]int, 50)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw(rng)]++
	}
	// Frequency must broadly decrease with rank and the head must
	// dominate (long-tail shape of Figure 2).
	if counts[0] < counts[10] || counts[10] < counts[49] {
		t.Errorf("Zipf counts not decreasing: head %d, mid %d, tail %d", counts[0], counts[10], counts[49])
	}
	if float64(counts[0])/n < 0.1 {
		t.Errorf("Zipf head share %.3f too small", float64(counts[0])/n)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if Gamma(a, 2.5) != Gamma(b, 2.5) {
			t.Fatal("Gamma not deterministic under equal seeds")
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	cp := append([]int(nil), xs...)
	Shuffle(rng, cp)
	if len(cp) != len(xs) {
		t.Fatal("length changed")
	}
	seen := map[int]int{}
	for _, v := range cp {
		seen[v]++
	}
	for _, v := range xs {
		if seen[v] != 1 {
			t.Fatalf("element %d count %d after shuffle", v, seen[v])
		}
	}
}

// TestHashPick3MatchesHashPick pins the fixed-arity hot-path variant to
// the variadic original for a spread of keys and moduli, and checks it
// never allocates (the property the CSR kernels rely on).
func TestHashPick3MatchesHashPick(t *testing.T) {
	keys := []int64{0, 1, -1, 7, 1 << 40, -9999999}
	for _, n := range []int{1, 2, 3, 5, 17} {
		for _, a := range keys {
			for _, b := range keys {
				for _, c := range keys {
					if got, want := HashPick3(n, a, b, c), HashPick(n, a, b, c); got != want {
						t.Fatalf("HashPick3(%d,%d,%d,%d) = %d, HashPick = %d", n, a, b, c, got, want)
					}
				}
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() { HashPick3(5, 1, 2, 3) })
	if allocs != 0 {
		t.Fatalf("HashPick3 allocated %.1f times per call, want 0", allocs)
	}
}
