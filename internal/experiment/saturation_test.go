package experiment

import (
	"math"
	"testing"
)

func sweepFixture() []SweepPoint {
	mk := func(r int, acc, rmse float64) SweepPoint {
		return SweepPoint{Redundancy: r, Scores: []Score{
			{Method: "M", Accuracy: acc, F1: acc, MAE: rmse, RMSE: rmse},
		}}
	}
	return []SweepPoint{
		mk(1, 0.60, 30),
		mk(3, 0.85, 20),
		mk(5, 0.90, 16),
		mk(7, 0.905, 15.8),
		mk(9, 0.906, 15.7),
	}
}

func TestSaturationRedundancyAccuracy(t *testing.T) {
	pts := sweepFixture()
	// Within 0.001 of the best (0.906): threshold 0.905, first at r=7.
	if got := SaturationRedundancy(pts, "M", MetricAccuracy, 0.001); got != 7 {
		t.Errorf("saturation = %d, want 7", got)
	}
	// A loose epsilon (0.06 → threshold 0.846) saturates already at r=3.
	if got := SaturationRedundancy(pts, "M", MetricAccuracy, 0.06); got != 3 {
		t.Errorf("loose saturation = %d, want 3", got)
	}
	// Unknown method → -1.
	if got := SaturationRedundancy(pts, "nope", MetricAccuracy, 0.01); got != -1 {
		t.Errorf("unknown method = %d, want -1", got)
	}
}

func TestSaturationRedundancyErrorMetric(t *testing.T) {
	pts := sweepFixture()
	// RMSE best 15.7; within 0.5 first at r=5 (16 ≤ 15.7+0.5).
	if got := SaturationRedundancy(pts, "M", MetricRMSE, 0.5); got != 5 {
		t.Errorf("error-metric saturation = %d, want 5", got)
	}
}

func TestMarginalGain(t *testing.T) {
	pts := sweepFixture()
	// Between r=1 (0.60) and r=3 (0.85): slope 0.125 per answer.
	if got := MarginalGain(pts, "M", MetricAccuracy, 1); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("gain at r=1 = %v, want 0.125", got)
	}
	// Past the sweep → NaN.
	if got := MarginalGain(pts, "M", MetricAccuracy, 9); !math.IsNaN(got) {
		t.Errorf("gain past sweep = %v, want NaN", got)
	}
	// The gain must shrink as redundancy grows (diminishing returns).
	if MarginalGain(pts, "M", MetricAccuracy, 5) >= MarginalGain(pts, "M", MetricAccuracy, 1) {
		t.Error("marginal gain did not diminish with redundancy")
	}
}
