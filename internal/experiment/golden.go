package experiment

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/randx"
)

// QualificationSize is the number of golden tasks in a qualification test
// (the paper uses 20, §6.3.2).
const QualificationSize = 20

// QualificationVectors simulates a qualification test for every worker by
// bootstrap-resampling QualificationSize of the worker's answers on
// truth-bearing tasks and measuring performance against the truth —
// exactly the paper's §6.3.2 construction ("sample with replacement ...
// which can uncover the real distribution, i.e., worker's quality").
//
// It returns the per-worker accuracy vector (categorical datasets) or the
// per-worker mean-squared-error vector (numeric datasets); the unused
// vector is nil. Workers with no truth-bearing answers get NaN, which
// methods interpret as "keep the default initialization".
func QualificationVectors(d *dataset.Dataset, seed int64) (acc []float64, mse []float64) {
	rng := randx.New(seed)
	if d.Categorical() {
		acc = make([]float64, d.NumWorkers)
	} else {
		mse = make([]float64, d.NumWorkers)
	}
	// Collect each worker's answers on truth-bearing tasks.
	for w := 0; w < d.NumWorkers; w++ {
		var pool []dataset.Answer
		for _, ai := range d.WorkerAnswers(w) {
			a := d.Answers[ai]
			if _, ok := d.Truth[a.Task]; ok {
				pool = append(pool, a)
			}
		}
		if len(pool) == 0 {
			if acc != nil {
				acc[w] = math.NaN()
			} else {
				mse[w] = math.NaN()
			}
			continue
		}
		idxs := randx.Bootstrap(rng, len(pool), QualificationSize)
		if acc != nil {
			correct := 0
			for _, pi := range idxs {
				a := pool[pi]
				if a.Label() == int(d.Truth[a.Task]) {
					correct++
				}
			}
			acc[w] = float64(correct) / QualificationSize
		} else {
			var ss float64
			for _, pi := range idxs {
				a := pool[pi]
				dv := a.Value - d.Truth[a.Task]
				ss += dv * dv
			}
			mse[w] = ss / QualificationSize
		}
	}
	return acc, mse
}

// QualificationResult pairs the with-qualification score with the plain
// score, exposing the paper's Δ = c̃ - c columns of Table 7.
type QualificationResult struct {
	Method   string
	With     Score // c̃: quality with qualification-test initialization
	Without  Score // c: quality with default initialization
	DeltaAcc float64
	DeltaF1  float64
	DeltaMAE float64
	DeltaRMS float64
}

// QualificationTest reproduces Table 7: for every method that supports
// qualification-test initialization it compares quality with and without
// the simulated qualification vectors, averaging over Config.Repeats
// (fresh bootstrap per repetition, as in the paper's 100 repetitions).
// The (method × variant × repetition) cells run concurrently on
// cfg.Parallelism workers.
func QualificationTest(methods []core.Method, d *dataset.Dataset, cfg Config) []QualificationResult {
	var applicable []core.Method
	for _, m := range methods {
		caps := m.Capabilities()
		if caps.SupportsType(d.Type) && caps.Qualification {
			applicable = append(applicable, m)
		}
	}
	// Cell layout per method: cfg.repeats() "without" cells followed by
	// cfg.repeats() "with" cells.
	nr := cfg.repeats()
	cells := make([]*Score, len(applicable)*2*nr)
	cfg.pool().Each(len(cells), func(c int) {
		mi, rem := c/(2*nr), c%(2*nr)
		withQual, rep := rem/nr, rem%nr
		var opts core.Options
		if withQual == 0 {
			opts = core.Options{Seed: cfg.Seed + int64(rep)*repSeedStride}
		} else {
			acc, mse := QualificationVectors(d, cfg.Seed+int64(rep)*131)
			opts = core.Options{
				Seed:                  cfg.Seed + int64(rep),
				QualificationAccuracy: acc,
				QualificationError:    mse,
			}
		}
		one := evaluateOnce(applicable[mi], d, cfg.mergeOpts(opts), d.Truth)
		cells[c] = &one
	})
	var out []QualificationResult
	for mi, m := range applicable {
		base := mi * 2 * nr
		without := foldReps(m.Name(), cells[base:base+nr])
		with := foldReps(m.Name(), cells[base+nr:base+2*nr])
		out = append(out, QualificationResult{
			Method:   m.Name(),
			With:     with,
			Without:  without,
			DeltaAcc: with.Accuracy - without.Accuracy,
			DeltaF1:  with.F1 - without.F1,
			DeltaMAE: with.MAE - without.MAE,
			DeltaRMS: with.RMSE - without.RMSE,
		})
	}
	return out
}

// HiddenPoint is one golden-fraction level of a Figure-7/8/9 series.
type HiddenPoint struct {
	Percent int
	Scores  []Score
}

// HiddenTest reproduces Figures 7–9: for each percentage p it selects p%
// of the truth-bearing tasks as golden (fresh split per repetition),
// feeds them to every golden-capable method, and evaluates on the
// remaining truth-bearing tasks. The (percentage × method × repetition)
// cells run concurrently on cfg.Parallelism workers; each cell re-derives
// its golden split from the (seed, percentage, repetition) coordinates.
func HiddenTest(methods []core.Method, d *dataset.Dataset, percents []int, cfg Config) []HiddenPoint {
	var applicable []core.Method
	for _, m := range methods {
		caps := m.Capabilities()
		if caps.SupportsType(d.Type) && caps.Golden {
			applicable = append(applicable, m)
		}
	}
	nm, nr := len(applicable), cfg.repeats()
	cells := make([]*Score, len(percents)*nm*nr)
	cfg.pool().Each(len(cells), func(c int) {
		pi, rem := c/(nm*nr), c%(nm*nr)
		mi, rep := rem/nr, rem%nr
		p := percents[pi]
		rng := randx.New(cfg.Seed + int64(p)*65_537 + int64(rep)*89)
		golden, eval := d.SplitGolden(float64(p)/100, rng)
		if len(eval) == 0 {
			return // skipped repetition; foldReps ignores the nil slot
		}
		opts := cfg.mergeOpts(core.Options{Seed: cfg.Seed + int64(rep), Golden: golden})
		one := evaluateOnce(applicable[mi], d, opts, eval)
		cells[c] = &one
	})
	out := make([]HiddenPoint, 0, len(percents))
	for pi, p := range percents {
		point := HiddenPoint{Percent: p}
		for mi, m := range applicable {
			base := (pi*nm + mi) * nr
			point.Scores = append(point.Scores, foldReps(m.Name(), cells[base:base+nr]))
		}
		out = append(out, point)
	}
	return out
}
