package experiment

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/randx"
)

// QualificationSize is the number of golden tasks in a qualification test
// (the paper uses 20, §6.3.2).
const QualificationSize = 20

// QualificationVectors simulates a qualification test for every worker by
// bootstrap-resampling QualificationSize of the worker's answers on
// truth-bearing tasks and measuring performance against the truth —
// exactly the paper's §6.3.2 construction ("sample with replacement ...
// which can uncover the real distribution, i.e., worker's quality").
//
// It returns the per-worker accuracy vector (categorical datasets) or the
// per-worker mean-squared-error vector (numeric datasets); the unused
// vector is nil. Workers with no truth-bearing answers get NaN, which
// methods interpret as "keep the default initialization".
func QualificationVectors(d *dataset.Dataset, seed int64) (acc []float64, mse []float64) {
	rng := randx.New(seed)
	if d.Categorical() {
		acc = make([]float64, d.NumWorkers)
	} else {
		mse = make([]float64, d.NumWorkers)
	}
	// Collect each worker's answers on truth-bearing tasks.
	for w := 0; w < d.NumWorkers; w++ {
		var pool []dataset.Answer
		for _, ai := range d.WorkerAnswers(w) {
			a := d.Answers[ai]
			if _, ok := d.Truth[a.Task]; ok {
				pool = append(pool, a)
			}
		}
		if len(pool) == 0 {
			if acc != nil {
				acc[w] = math.NaN()
			} else {
				mse[w] = math.NaN()
			}
			continue
		}
		idxs := randx.Bootstrap(rng, len(pool), QualificationSize)
		if acc != nil {
			correct := 0
			for _, pi := range idxs {
				a := pool[pi]
				if a.Label() == int(d.Truth[a.Task]) {
					correct++
				}
			}
			acc[w] = float64(correct) / QualificationSize
		} else {
			var ss float64
			for _, pi := range idxs {
				a := pool[pi]
				dv := a.Value - d.Truth[a.Task]
				ss += dv * dv
			}
			mse[w] = ss / QualificationSize
		}
	}
	return acc, mse
}

// QualificationResult pairs the with-qualification score with the plain
// score, exposing the paper's Δ = c̃ - c columns of Table 7.
type QualificationResult struct {
	Method   string
	With     Score // c̃: quality with qualification-test initialization
	Without  Score // c: quality with default initialization
	DeltaAcc float64
	DeltaF1  float64
	DeltaMAE float64
	DeltaRMS float64
}

// QualificationTest reproduces Table 7: for every method that supports
// qualification-test initialization it compares quality with and without
// the simulated qualification vectors, averaging over Config.Repeats
// (fresh bootstrap per repetition, as in the paper's 100 repetitions).
func QualificationTest(methods []core.Method, d *dataset.Dataset, cfg Config) []QualificationResult {
	var out []QualificationResult
	for _, m := range methods {
		caps := m.Capabilities()
		if !caps.SupportsType(d.Type) || !caps.Qualification {
			continue
		}
		without := Evaluate(m, d, core.Options{Seed: cfg.Seed}, d.Truth, cfg)
		accum := newAccumulator(m.Name())
		for rep := 0; rep < cfg.repeats(); rep++ {
			acc, mse := QualificationVectors(d, cfg.Seed+int64(rep)*131)
			opts := core.Options{
				Seed:                  cfg.Seed + int64(rep),
				QualificationAccuracy: acc,
				QualificationError:    mse,
			}
			one := Evaluate(m, d, opts, d.Truth, cfg.single())
			if !accum.add(one) {
				break
			}
		}
		with := accum.finish()
		out = append(out, QualificationResult{
			Method:   m.Name(),
			With:     with,
			Without:  without,
			DeltaAcc: with.Accuracy - without.Accuracy,
			DeltaF1:  with.F1 - without.F1,
			DeltaMAE: with.MAE - without.MAE,
			DeltaRMS: with.RMSE - without.RMSE,
		})
	}
	return out
}

// HiddenPoint is one golden-fraction level of a Figure-7/8/9 series.
type HiddenPoint struct {
	Percent int
	Scores  []Score
}

// HiddenTest reproduces Figures 7–9: for each percentage p it selects p%
// of the truth-bearing tasks as golden (fresh split per repetition),
// feeds them to every golden-capable method, and evaluates on the
// remaining truth-bearing tasks.
func HiddenTest(methods []core.Method, d *dataset.Dataset, percents []int, cfg Config) []HiddenPoint {
	out := make([]HiddenPoint, 0, len(percents))
	for _, p := range percents {
		point := HiddenPoint{Percent: p}
		for _, m := range methods {
			caps := m.Capabilities()
			if !caps.SupportsType(d.Type) || !caps.Golden {
				continue
			}
			accum := newAccumulator(m.Name())
			for rep := 0; rep < cfg.repeats(); rep++ {
				rng := randx.New(cfg.Seed + int64(p)*65_537 + int64(rep)*89)
				golden, eval := d.SplitGolden(float64(p)/100, rng)
				if len(eval) == 0 {
					continue
				}
				opts := core.Options{Seed: cfg.Seed + int64(rep), Golden: golden}
				one := Evaluate(m, d, opts, eval, cfg.single())
				if !accum.add(one) {
					break
				}
			}
			point.Scores = append(point.Scores, accum.finish())
		}
		out = append(out, point)
	}
	return out
}
